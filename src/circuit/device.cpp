#include "circuit/device.hpp"

#include "base/error.hpp"
#include "circuit/mna.hpp"

namespace vls {

void Device::stampDeviceBatch(std::span<Device* const> devs, std::span<const uint32_t> op_begin,
                              std::span<const uint32_t> op_end, Stamper& stamper,
                              const EvalContext& ctx) {
  for (size_t i = 0; i < devs.size(); ++i) {
    stamper.seek(op_begin[i]);
    devs[i]->stamp(stamper, ctx);
    if (stamper.cursor() != op_end[i]) {
      throw Error("Device " + devs[i]->name() +
                  " changed its stamp sequence without a topology revision bump");
    }
  }
}

ChargeCompanion integrateCharge(IntegrationMethod method, double dt, double q, double c,
                                const ChargeHistory& history) {
  ChargeCompanion out;
  switch (method) {
    case IntegrationMethod::None:
      // DC: capacitors are open circuits.
      out.geq = 0.0;
      out.i_now = 0.0;
      return out;
    case IntegrationMethod::BackwardEuler:
      out.geq = c / dt;
      out.i_now = (q - history.q) / dt;
      return out;
    case IntegrationMethod::Trapezoidal:
      out.geq = 2.0 * c / dt;
      out.i_now = 2.0 * (q - history.q) / dt - history.i;
      return out;
  }
  throw NumericalError("integrateCharge: unknown method");
}

}  // namespace vls
