#include "circuit/device.hpp"

#include "base/error.hpp"

namespace vls {

ChargeCompanion integrateCharge(IntegrationMethod method, double dt, double q, double c,
                                const ChargeHistory& history) {
  ChargeCompanion out;
  switch (method) {
    case IntegrationMethod::None:
      // DC: capacitors are open circuits.
      out.geq = 0.0;
      out.i_now = 0.0;
      return out;
    case IntegrationMethod::BackwardEuler:
      out.geq = c / dt;
      out.i_now = (q - history.q) / dt;
      return out;
    case IntegrationMethod::Trapezoidal:
      out.geq = 2.0 * c / dt;
      out.i_now = 2.0 * (q - history.q) / dt - history.i;
      return out;
  }
  throw NumericalError("integrateCharge: unknown method");
}

}  // namespace vls
