// Device abstraction. Each device knows how to linearize itself around a
// candidate solution and stamp the companion (conductance + current
// source) into the MNA system. Reactive devices keep their own
// integration state (previous charge / current) which the transient
// engine commits via acceptStep().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "circuit/node.hpp"

namespace vls {

class Stamper;
class ReactiveStamper;
class LaneStamper;

/// One physical noise generator: a current source a -> b with the given
/// one-sided PSD [A^2/Hz] as a function of frequency. Devices register
/// these during noise analysis (see Device::collectNoiseSources).
struct NoiseSource {
  std::string label;  ///< "r1.thermal", "m1.flicker", ...
  NodeId a = kGround;
  NodeId b = kGround;
  std::function<double(double freq)> psd;
};

/// Numerical integration scheme for charge storage elements.
enum class IntegrationMethod { None, BackwardEuler, Trapezoidal };

/// Everything a device needs to evaluate itself at a candidate solution.
struct EvalContext {
  std::span<const double> x;  ///< candidate unknowns (node voltages then branch currents)
  double time = 0.0;          ///< simulation time [s]
  double dt = 0.0;            ///< current timestep [s]; 0 in DC analyses
  IntegrationMethod method = IntegrationMethod::None;
  double temperature = 300.15;  ///< device temperature [K]
  double source_scale = 1.0;    ///< homotopy scale for source stepping (0..1)
  double gmin = 1e-12;          ///< minimum conductance for convergence aid

  /// Voltage of node n (0 for ground).
  double v(NodeId n) const { return isGround(n) ? 0.0 : x[static_cast<size_t>(n)]; }
  /// Value of branch unknown b (absolute index into x).
  double branch(size_t b) const { return x[b]; }
};

/// State carried across timesteps by one charge-storage element.
struct ChargeHistory {
  double q = 0.0;  ///< charge at last accepted step
  double i = 0.0;  ///< capacitive current at last accepted step
};

/// Companion model of dQ/dt for the active integration method:
/// i(v) = geq * v + (ieq evaluated at the linearization point).
struct ChargeCompanion {
  double geq = 0.0;     ///< equivalent conductance dI/dV
  double i_now = 0.0;   ///< capacitive current at the candidate point
};

/// Linearized capacitive current for candidate charge `q` with local
/// capacitance `c` = dq/dv, given the element history.
ChargeCompanion integrateCharge(IntegrationMethod method, double dt, double q, double c,
                                const ChargeHistory& history);

/// Evaluation context for the ensemble (lane-batched) engine: K
/// Monte-Carlo variants of one topology advance in lockstep, with every
/// unknown stored structure-of-arrays as x[i * lanes + lane].
struct LaneContext {
  std::span<const double> x;         ///< SoA unknowns, size() * lanes doubles
  const double* zero = nullptr;      ///< shared double[lanes] of zeros (ground voltages)
  size_t lanes = 1;
  const uint8_t* active = nullptr;   ///< per-lane mask; null = every lane active
  double time = 0.0;
  double dt = 0.0;
  IntegrationMethod method = IntegrationMethod::None;
  double temperature = 300.15;      ///< device temperature [K]
  double source_scale = 1.0;        ///< homotopy scale for source stepping (0..1)
  double gmin = 1e-12;

  /// Contiguous double[lanes] run of node n's candidate voltages.
  const double* v(NodeId n) const {
    return isGround(n) ? zero : &x[static_cast<size_t>(n) * lanes];
  }
  bool laneActive(size_t l) const { return active == nullptr || active[l] != 0; }
};

///// Opaque per-device ensemble state: per-lane geometry overrides,
/// cached operating points, and charge histories. Created by the device
/// (createLaneState), owned by the EnsembleSimulator, and passed back
/// into every lane-wise call — the device object itself stays untouched
/// so the scalar reference path is never perturbed by ensemble runs.
struct DeviceLaneState {
  virtual ~DeviceLaneState() = default;
};

/// Base class of all circuit elements.
class Device {
 public:
  explicit Device(std::string name) : name_(std::move(name)) {}
  virtual ~Device() = default;

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  const std::string& name() const { return name_; }

  /// Number of extra MNA branch unknowns this device needs (voltage
  /// sources and inductors carry their current as an unknown).
  virtual size_t branchCount() const { return 0; }
  /// Called once by the simulator with the absolute index of the first
  /// branch unknown allocated to this device.
  virtual void assignBranches(size_t first_index) { (void)first_index; }

  /// Linearize at ctx.x and stamp the companion into the system.
  virtual void stamp(Stamper& stamper, const EvalContext& ctx) = 0;

  /// Whether stamp() may be bypassed — its last recorded values
  /// replayed without re-evaluating the model — when the terminal
  /// voltages are unchanged since the last linearization. Only safe
  /// for devices whose stamps depend solely on terminal voltages,
  /// temperature, and per-timestep state that is constant within one
  /// Newton solve (charge histories, dt). Time-dependent sources and
  /// externally tunable elements must return false.
  virtual bool supportsBypass() const { return false; }

  // --- device-batched evaluation (parallel sharded assembly) ---------
  /// Devices returning the same non-null key (e.g. the shared model
  /// card) may be linearized together, K at a time, through
  /// stampDeviceBatch — the sharded assembler groups same-key devices
  /// within a shard. Null (the default) means scalar stamp() only.
  virtual const void* deviceBatchKey() const { return nullptr; }

  /// Evaluate a batch of same-key devices (`this` is devs.front()) at
  /// ctx and emit every device's stamp sequence through `stamper`,
  /// which is consuming a recorded tape: implementations must
  /// stamper.seek(op_begin[i]) before device i's stamps and leave the
  /// cursor exactly at op_end[i] — a mismatch means the stamp sequence
  /// changed without a topology revision bump and must throw. The base
  /// implementation evaluates each device through scalar stamp();
  /// devices with SoA lane kernels override it to evaluate the whole
  /// batch per model-card pass. Must produce identical values for
  /// every batch width (elementwise math only).
  virtual void stampDeviceBatch(std::span<Device* const> devs, std::span<const uint32_t> op_begin,
                                std::span<const uint32_t> op_end, Stamper& stamper,
                                const EvalContext& ctx);

  /// Initialize integration state from a converged DC solution (called
  /// once when a transient starts).
  virtual void startTransient(const EvalContext& ctx) { (void)ctx; }

  /// Commit integration state after an accepted timestep.
  virtual void acceptStep(const EvalContext& ctx) { (void)ctx; }

  // --- ensemble (lane-batched) evaluation ----------------------------
  /// Whether this device implements the lane-wise stamping API. Devices
  /// that do not are still usable in ensembles: the ensemble assembler
  /// falls back to per-lane scalar stamp() through a scratch system.
  virtual bool supportsLanes() const { return false; }

  /// Whether the per-lane scalar fallback (stamp() run once per lane
  /// through a scratch system) is correct for this device. False for
  /// devices whose stamp()/acceptStep() carry integration state that
  /// would be shared — and corrupted — across lanes. The ensemble
  /// engine refuses circuits containing a device that neither supports
  /// lanes nor is fallback-safe.
  virtual bool laneFallbackSafe() const { return true; }

  /// Allocate per-lane state for an ensemble of the given width. Only
  /// called when supportsLanes() is true; may return null if the device
  /// is stateless across lanes.
  virtual std::unique_ptr<DeviceLaneState> createLaneState(size_t lanes) const {
    (void)lanes;
    return nullptr;
  }

  /// Linearize all lanes at ctx.x and stamp companion models for every
  /// active lane (inactive lanes' slots must be left as assembled, i.e.
  /// zero). Only called when supportsLanes() is true.
  virtual void stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                          DeviceLaneState* state) {
    (void)stamper;
    (void)ctx;
    (void)state;
  }

  /// Lane-wise analogue of startTransient / acceptStep, operating purely
  /// on `state`.
  virtual void startTransientLanes(const LaneContext& ctx, DeviceLaneState* state) {
    (void)ctx;
    (void)state;
  }
  virtual void acceptStepLanes(const LaneContext& ctx, DeviceLaneState* state) {
    (void)ctx;
    (void)state;
  }

  /// Lane-aware breakpoint collection: devices whose lane state carries
  /// per-lane waveforms (parameter lanes) append the union of every
  /// lane's corner times, so the lockstep transient never steps over
  /// any lane's input edge. Defaults to the scalar breakpoints.
  virtual void collectLaneBreakpoints(double t_stop, const DeviceLaneState* state,
                                      std::vector<double>& times) const {
    (void)state;
    collectBreakpoints(t_stop, times);
  }

  /// Terminals (for netlist export and current probes).
  virtual size_t terminalCount() const = 0;
  virtual NodeId terminalNode(size_t t) const = 0;

  /// Current flowing *into* terminal t at the given solution, amperes.
  /// Devices that cannot report (ideal elements without branch vars)
  /// return 0; all physical devices implement this.
  virtual double terminalCurrent(size_t t, const EvalContext& ctx) const {
    (void)t;
    (void)ctx;
    return 0.0;
  }

  /// Hard timepoints this device requires the transient engine to hit
  /// (e.g. PWL/PULSE corners). Appends to `times`.
  virtual void collectBreakpoints(double t_stop, std::vector<double>& times) const {
    (void)t_stop;
    (void)times;
  }

  /// AC analysis: contribute small-signal capacitances (evaluated at
  /// the operating point in ctx) to the imaginary part of the system.
  /// The conductive part reuses stamp() — the Newton Jacobian IS the
  /// small-signal conductance matrix.
  virtual void stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) {
    (void)stamper;
    (void)ctx;
  }

  /// AC analysis: contribute the independent AC excitation (magnitude
  /// into the real RHS; sources default to zero AC).
  virtual void stampAcSource(std::vector<double>& rhs_real) const { (void)rhs_real; }

  /// Noise analysis: register physical noise generators evaluated at
  /// the operating point in ctx. Defaults to noiseless.
  virtual void collectNoiseSources(std::vector<NoiseSource>& sources,
                                   const EvalContext& ctx) const {
    (void)sources;
    (void)ctx;
  }

 private:
  std::string name_;
};

}  // namespace vls
