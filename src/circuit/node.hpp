// Node identifiers. Ground is a reserved sentinel so devices can stamp
// without special-casing; the MNA layer drops ground rows/columns.
#pragma once

namespace vls {

/// Index of a circuit node. Non-negative values index solution unknowns;
/// kGround is the reference node (fixed at 0 V).
using NodeId = int;

inline constexpr NodeId kGround = -1;

inline constexpr bool isGround(NodeId n) { return n < 0; }

}  // namespace vls
