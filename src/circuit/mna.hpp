// Modified Nodal Analysis system and the Stamper facade devices write
// through. Unknown ordering: node voltages [0, numNodes) followed by
// branch currents [numNodes, numNodes + numBranches).
//
// The Stamper has four modes. Direct (default) resolves every write
// by coordinates through the matrix's hash index. Record additionally
// captures each high-level call as a TapeOp — the resolved entry
// handles and RHS slots — into an AssemblyTape. Replay consumes the
// tape instead of resolving: the steady-state Newton inner loop then
// contains zero hash lookups, zero ground checks, and zero allocation.
// Capture consumes the tape like Replay (same cursor protocol, same
// divergence checks) but only stores each call's scalar into the tape
// without touching the matrix/RHS — the parallel sharded assembler
// evaluates devices concurrently in Capture mode (disjoint per-device
// op spans, so no data races) and applies the captured values in a
// separate deterministic pass.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuit/node.hpp"
#include "numeric/sparse_matrix.hpp"

namespace vls {

class MnaSystem {
 public:
  MnaSystem(size_t num_nodes, size_t num_branches)
      : num_nodes_(num_nodes),
        num_branches_(num_branches),
        matrix_(num_nodes + num_branches),
        rhs_(num_nodes + num_branches, 0.0) {}

  size_t numNodes() const { return num_nodes_; }
  size_t numBranches() const { return num_branches_; }
  size_t size() const { return num_nodes_ + num_branches_; }

  SparseMatrix& matrix() { return matrix_; }
  const SparseMatrix& matrix() const { return matrix_; }
  std::vector<double>& rhs() { return rhs_; }
  const std::vector<double>& rhs() const { return rhs_; }

  /// Zero the values (pattern retained) and the RHS.
  void clear();

 private:
  size_t num_nodes_;
  size_t num_branches_;
  SparseMatrix matrix_;
  std::vector<double> rhs_;
};

/// One recorded high-level Stamper call. `m` holds SparseMatrix value
/// handles, `r` absolute RHS indices; kNone marks a write dropped on
/// ground at record time. Every Stamper call records exactly one op —
/// including fully-dropped ones — so record and replay stay in step.
struct TapeOp {
  enum class Kind : uint8_t {
    Conductance,       ///< m(aa,bb,ab,ba) += (+g,+g,-g,-g)
    CurrentSource,     ///< r(a,b) += (-i,+i)
    Transconductance,  ///< m(ac,ad,bc,bd) += (+gm,-gm,-gm,+gm)
    VoltageBranch,     ///< m((p,row),(m,row),(row,p),(row,m)) += (+1,-1,+1,-1); r(row) += v
    Matrix,            ///< m[0] += v
    Rhs,               ///< r[0] += v
  };
  static constexpr uint32_t kNone = 0xffffffffu;

  Kind kind = Kind::Matrix;
  std::array<uint32_t, 4> m = {kNone, kNone, kNone, kNone};
  std::array<uint32_t, 2> r = {kNone, kNone};
};

/// Recorded assembly of one circuit into one MnaSystem for one analysis
/// mode: per-device op spans, the scalar each op carried at the last
/// model evaluation (for bypass replay), the terminal voltages at the
/// last linearization, and the gmin diagonal handles. Valid as long as
/// the circuit topology revision and target system are unchanged —
/// SparseMatrix handles are append-only stable, so pattern growth by a
/// later-recorded tape never invalidates an earlier one.
class AssemblyTape {
 public:
  struct Span {
    uint32_t op_begin = 0, op_end = 0;
    uint32_t volt_begin = 0, volt_end = 0;
  };

  bool recorded() const { return recorded_; }
  bool matches(const void* system_key, uint64_t revision, size_t device_count) const {
    return recorded_ && system_key_ == system_key && revision_ == revision &&
           spans_.size() == device_count;
  }
  void reset();

  // --- recording protocol (driven by the Assembler + Stamper) --------
  void beginRecording(const void* system_key, uint64_t revision);
  void beginDevice();
  void recordTerminalVoltage(double v) { v_last_.push_back(v); }
  void endDevice();
  /// Seals the tape and resolves the per-node gmin diagonal handles.
  void finishRecording(SparseMatrix& matrix, size_t num_nodes);
  /// Appends one op and applies it (record mode write-through).
  void pushOp(const TapeOp& op, double value) {
    ops_.push_back(op);
    op_values_.push_back(value);
  }

  // --- replay access -------------------------------------------------
  size_t deviceCount() const { return spans_.size(); }
  const Span& span(size_t device) const { return spans_[device]; }
  size_t opCount() const { return ops_.size(); }
  const TapeOp& op(size_t i) const { return ops_[i]; }
  void setOpValue(size_t i, double v) { op_values_[i] = v; }
  double opValue(size_t i) const { return op_values_[i]; }
  double vLast(size_t k) const { return v_last_[k]; }
  void setVLast(size_t k, double v) { v_last_[k] = v; }
  const std::vector<size_t>& gminHandles() const { return gmin_handles_; }

  /// Re-applies a device's recorded ops with their last-evaluated
  /// scalars: the SPICE bypass path — no model evaluation at all.
  void replayStored(size_t device, SparseMatrix& matrix, std::vector<double>& rhs) const;

 private:
  std::vector<TapeOp> ops_;
  std::vector<double> op_values_;  ///< scalar per op at last evaluation
  std::vector<double> v_last_;     ///< terminal voltages at last linearization
  std::vector<Span> spans_;        ///< per device, in circuit order
  std::vector<size_t> gmin_handles_;
  const void* system_key_ = nullptr;
  uint64_t revision_ = 0;
  bool recorded_ = false;
};

/// Device-facing stamping interface. All methods silently drop ground
/// rows/columns. Sign conventions:
///   * conductance g between a and b: current g*(va-vb) leaves a.
///   * current source i from a to b (through the element): i leaves a.
///   * branch rows enforce element equations for voltage-defined parts.
class Stamper {
 public:
  explicit Stamper(MnaSystem& system) : sys_(system) {}

  /// Two-terminal conductance.
  void conductance(NodeId a, NodeId b, double g);

  /// Independent/companion current source: `i` flows from a to b.
  void currentSource(NodeId a, NodeId b, double i);

  /// Transconductance: current gm*(vc - vd) flows from a to b.
  void transconductance(NodeId a, NodeId b, NodeId c, NodeId d, double gm);

  /// Voltage-defined branch (V source, inductor, VCVS):
  ///   KCL: branch current `ib` leaves `plus`, enters `minus`;
  ///   branch row: v(plus) - v(minus) - sum(coeffs) = v_value.
  /// Call branchVoltageRow then add extra dependencies via addMatrix.
  void voltageBranch(size_t branch_index, NodeId plus, NodeId minus, double v_value);

  /// Raw access for exotic stamps. Indices are absolute unknown indices;
  /// negative = ground (dropped).
  void addMatrix(int row, int col, double value);
  void addRhs(int row, double value);

  /// Absolute unknown index of node n (or -1 for ground).
  int nodeIndex(NodeId n) const { return isGround(n) ? -1 : n; }

  size_t numNodes() const { return sys_.numNodes(); }

  // --- tape protocol (used by the Assembler) -------------------------
  /// Switch to record mode: every call resolves handles once and
  /// appends a TapeOp to `tape` while writing through.
  void startRecording(AssemblyTape& tape);
  /// Switch to replay mode: calls consume ops from `tape` at the
  /// cursor instead of resolving coordinates. `store_values` writes
  /// each replayed scalar back into the tape — required whenever the
  /// bypass path may later replayStored() them, pure overhead
  /// otherwise.
  void startReplay(AssemblyTape& tape, bool store_values = true);
  /// Switch to capture mode: calls consume ops from `tape` like replay
  /// but only update the stored op scalars — nothing is written to the
  /// matrix or RHS. Safe to run concurrently on disjoint device spans.
  void startCapture(AssemblyTape& tape);
  size_t cursor() const { return cursor_; }
  void seek(size_t op_cursor) { cursor_ = op_cursor; }

 private:
  enum class Mode : uint8_t { Direct, Record, Replay, Capture };

  bool consumingTape() const { return mode_ == Mode::Replay || mode_ == Mode::Capture; }

  void recordOp(const TapeOp& op, double value);
  void replayOp(TapeOp::Kind kind, double value);

  MnaSystem& sys_;
  AssemblyTape* tape_ = nullptr;
  Mode mode_ = Mode::Direct;
  bool store_values_ = true;
  size_t cursor_ = 0;
};

/// Collects the frequency-proportional (capacitive/inductive) part of
/// the MNA system for AC analysis. Devices stamp their small-signal
/// capacitances here; the AC engine scales the collected matrix by
/// j*omega per frequency point.
class ReactiveStamper {
 public:
  ReactiveStamper(SparseMatrix& c_matrix, size_t num_nodes)
      : c_(c_matrix), num_nodes_(num_nodes) {}

  /// Two-terminal capacitance between nodes a and b.
  void capacitance(NodeId a, NodeId b, double c);

  /// Inductance on a branch row: contributes -jwL to the branch
  /// equation (pass the absolute branch index).
  void branchInductance(size_t branch_index, double inductance);

  size_t numNodes() const { return num_nodes_; }

 private:
  SparseMatrix& c_;
  size_t num_nodes_;
};

}  // namespace vls
