// Modified Nodal Analysis system and the Stamper facade devices write
// through. Unknown ordering: node voltages [0, numNodes) followed by
// branch currents [numNodes, numNodes + numBranches).
#pragma once

#include <cstddef>
#include <vector>

#include "circuit/node.hpp"
#include "numeric/sparse_matrix.hpp"

namespace vls {

class MnaSystem {
 public:
  MnaSystem(size_t num_nodes, size_t num_branches)
      : num_nodes_(num_nodes),
        num_branches_(num_branches),
        matrix_(num_nodes + num_branches),
        rhs_(num_nodes + num_branches, 0.0) {}

  size_t numNodes() const { return num_nodes_; }
  size_t numBranches() const { return num_branches_; }
  size_t size() const { return num_nodes_ + num_branches_; }

  SparseMatrix& matrix() { return matrix_; }
  const SparseMatrix& matrix() const { return matrix_; }
  std::vector<double>& rhs() { return rhs_; }
  const std::vector<double>& rhs() const { return rhs_; }

  /// Zero the values (pattern retained) and the RHS.
  void clear();

 private:
  size_t num_nodes_;
  size_t num_branches_;
  SparseMatrix matrix_;
  std::vector<double> rhs_;
};

/// Device-facing stamping interface. All methods silently drop ground
/// rows/columns. Sign conventions:
///   * conductance g between a and b: current g*(va-vb) leaves a.
///   * current source i from a to b (through the element): i leaves a.
///   * branch rows enforce element equations for voltage-defined parts.
class Stamper {
 public:
  explicit Stamper(MnaSystem& system) : sys_(system) {}

  /// Two-terminal conductance.
  void conductance(NodeId a, NodeId b, double g);

  /// Independent/companion current source: `i` flows from a to b.
  void currentSource(NodeId a, NodeId b, double i);

  /// Transconductance: current gm*(vc - vd) flows from a to b.
  void transconductance(NodeId a, NodeId b, NodeId c, NodeId d, double gm);

  /// Voltage-defined branch (V source, inductor, VCVS):
  ///   KCL: branch current `ib` leaves `plus`, enters `minus`;
  ///   branch row: v(plus) - v(minus) - sum(coeffs) = v_value.
  /// Call branchVoltageRow then add extra dependencies via addMatrix.
  void voltageBranch(size_t branch_index, NodeId plus, NodeId minus, double v_value);

  /// Raw access for exotic stamps. Indices are absolute unknown indices;
  /// negative = ground (dropped).
  void addMatrix(int row, int col, double value);
  void addRhs(int row, double value);

  /// Absolute unknown index of node n (or -1 for ground).
  int nodeIndex(NodeId n) const { return isGround(n) ? -1 : n; }

  size_t numNodes() const { return sys_.numNodes(); }

 private:
  MnaSystem& sys_;
};

/// Collects the frequency-proportional (capacitive/inductive) part of
/// the MNA system for AC analysis. Devices stamp their small-signal
/// capacitances here; the AC engine scales the collected matrix by
/// j*omega per frequency point.
class ReactiveStamper {
 public:
  ReactiveStamper(SparseMatrix& c_matrix, size_t num_nodes)
      : c_(c_matrix), num_nodes_(num_nodes) {}

  /// Two-terminal capacitance between nodes a and b.
  void capacitance(NodeId a, NodeId b, double c);

  /// Inductance on a branch row: contributes -jwL to the branch
  /// equation (pass the absolute branch index).
  void branchInductance(size_t branch_index, double inductance);

  size_t numNodes() const { return num_nodes_; }

 private:
  SparseMatrix& c_;
  size_t num_nodes_;
};

}  // namespace vls
