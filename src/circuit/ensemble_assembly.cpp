#include "circuit/ensemble_assembly.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {

namespace {
[[noreturn]] void laneTapeDivergence() {
  throw Error("LaneStamper: stamp call sequence diverged from the recorded lane tape "
              "(stale tape not invalidated?)");
}

/// True when every terminal voltage of the device moved at most `tol`
/// in every lane since its last full linearization — the lane-widened
/// bypass qualification test.
bool lanesQuiet(const Device& dev, const LaneTape& tape, const LaneTape::Span& sp,
                const LaneContext& ctx, double tol) {
  const size_t K = ctx.lanes;
  for (uint32_t t = 0, k = sp.volt_begin; k < sp.volt_end; ++t, ++k) {
    const double* v = ctx.v(dev.terminalNode(t));
    const double* last = tape.vLast(k);
    for (size_t l = 0; l < K; ++l) {
      if (std::fabs(v[l] - last[l]) > tol) return false;
    }
  }
  return true;
}
}  // namespace

void LaneStamper::startRecording(LaneTape& tape) {
  tape_ = &tape;
  mode_ = Mode::Record;
  store_values_ = true;
  cursor_ = 0;
}

void LaneStamper::startReplay(LaneTape& tape, bool store_values) {
  tape_ = &tape;
  mode_ = Mode::Replay;
  store_values_ = store_values;
  cursor_ = 0;
}

const double* LaneStamper::fillSlot(size_t op_index, const double* v, double uniform,
                                    double scale) {
  double* slot = tape_->opLanes(op_index);
  const size_t K = sys_.lanes();
  if (v != nullptr) {
    for (size_t l = 0; l < K; ++l) slot[l] = scale * v[l];
  } else {
    const double u = scale * uniform;
    for (size_t l = 0; l < K; ++l) slot[l] = u;
  }
  return slot;
}

void LaneStamper::replayStored(size_t op_begin, size_t op_end) {
  for (size_t i = op_begin; i < op_end; ++i) {
    const TapeOp& op = tape_->op(i);
    const double* v = tape_->opLanes(i);
    switch (op.kind) {
      case TapeOp::Kind::Conductance:
        applyConductance(op, v, 0.0, 1.0);
        break;
      case TapeOp::Kind::CurrentSource:
        applyCurrentSource(op, v, 0.0, 1.0);
        break;
      case TapeOp::Kind::VoltageBranch:
        applyVoltageBranch(op, v, 0.0);
        break;
      case TapeOp::Kind::Matrix:
        applyMatrix(op, v, 0.0, 1.0);
        break;
      case TapeOp::Kind::Rhs:
        applyRhs(op, v, 0.0, 1.0);
        break;
      default:
        laneTapeDivergence();
    }
  }
  cursor_ = op_end;
}

const TapeOp& LaneStamper::nextOp(TapeOp::Kind kind) {
  if (cursor_ >= tape_->opCount()) laneTapeDivergence();
  const TapeOp& op = tape_->op(cursor_);
  if (op.kind != kind) laneTapeDivergence();
  ++cursor_;
  return op;
}

void LaneStamper::applyConductance(const TapeOp& op, const double* g, double uniform,
                                   double scale) {
  constexpr uint32_t kNone = TapeOp::kNone;
  const size_t K = sys_.lanes();
  LaneMatrix& mat = sys_.matrix();
  auto addRun = [&](uint32_t handle, double sign) {
    if (handle == kNone) return;
    double* v = mat.laneValues(handle);
    if (g != nullptr) {
      const double s = sign * scale;
      for (size_t l = 0; l < K; ++l) v[l] += s * g[l];
    } else {
      const double s = sign * uniform;
      for (size_t l = 0; l < K; ++l) v[l] += s;
    }
  };
  addRun(op.m[0], 1.0);
  addRun(op.m[1], 1.0);
  addRun(op.m[2], -1.0);
  addRun(op.m[3], -1.0);
}

void LaneStamper::applyCurrentSource(const TapeOp& op, const double* i, double uniform,
                                     double scale) {
  constexpr uint32_t kNone = TapeOp::kNone;
  const size_t K = sys_.lanes();
  auto addRun = [&](uint32_t row, double sign) {
    if (row == kNone) return;
    double* r = sys_.rhsLanes(row);
    if (i != nullptr) {
      const double s = sign * scale;
      for (size_t l = 0; l < K; ++l) r[l] += s * i[l];
    } else {
      const double s = sign * uniform;
      for (size_t l = 0; l < K; ++l) r[l] += s;
    }
  };
  addRun(op.r[0], -1.0);
  addRun(op.r[1], 1.0);
}

void LaneStamper::applyVoltageBranch(const TapeOp& op, const double* v, double uniform) {
  constexpr uint32_t kNone = TapeOp::kNone;
  const size_t K = sys_.lanes();
  LaneMatrix& mat = sys_.matrix();
  auto addOnes = [&](uint32_t handle, double sign) {
    if (handle == kNone) return;
    double* m = mat.laneValues(handle);
    for (size_t l = 0; l < K; ++l) m[l] += sign;
  };
  addOnes(op.m[0], 1.0);
  addOnes(op.m[1], -1.0);
  addOnes(op.m[2], 1.0);
  addOnes(op.m[3], -1.0);
  double* r = sys_.rhsLanes(op.r[0]);  // the branch row always exists
  if (v != nullptr) {
    for (size_t l = 0; l < K; ++l) r[l] += v[l];
  } else {
    for (size_t l = 0; l < K; ++l) r[l] += uniform;
  }
}

void LaneStamper::applyMatrix(const TapeOp& op, const double* v, double uniform, double scale) {
  if (op.m[0] == TapeOp::kNone) return;
  const size_t K = sys_.lanes();
  double* dst = sys_.matrix().laneValues(op.m[0]);
  if (v != nullptr) {
    for (size_t l = 0; l < K; ++l) dst[l] += scale * v[l];
  } else {
    for (size_t l = 0; l < K; ++l) dst[l] += uniform;
  }
}

void LaneStamper::applyRhs(const TapeOp& op, const double* v, double uniform, double scale) {
  if (op.r[0] == TapeOp::kNone) return;
  const size_t K = sys_.lanes();
  double* dst = sys_.rhsLanes(op.r[0]);
  if (v != nullptr) {
    for (size_t l = 0; l < K; ++l) dst[l] += scale * v[l];
  } else {
    for (size_t l = 0; l < K; ++l) dst[l] += uniform;
  }
}

void LaneStamper::conductance(NodeId a, NodeId b, const double* g) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::Conductance);
    applyConductance(op, store_values_ ? fillSlot(idx, g, 0.0, 1.0) : g, 0.0, 1.0);
    return;
  }
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  TapeOp op;
  op.kind = TapeOp::Kind::Conductance;
  LaneMatrix& mat = sys_.matrix();
  if (ia >= 0) op.m[0] = static_cast<uint32_t>(mat.entryHandle(ia, ia));
  if (ib >= 0) op.m[1] = static_cast<uint32_t>(mat.entryHandle(ib, ib));
  if (ia >= 0 && ib >= 0) {
    op.m[2] = static_cast<uint32_t>(mat.entryHandle(ia, ib));
    op.m[3] = static_cast<uint32_t>(mat.entryHandle(ib, ia));
  }
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyConductance(op, fillSlot(tape_->opCount() - 1, g, 0.0, 1.0), 0.0, 1.0);
    return;
  }
  applyConductance(op, g, 0.0, 1.0);
}

void LaneStamper::conductanceUniform(NodeId a, NodeId b, double g) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::Conductance);
    if (store_values_) {
      applyConductance(op, fillSlot(idx, nullptr, g, 1.0), 0.0, 1.0);
    } else {
      applyConductance(op, nullptr, g, 1.0);
    }
    return;
  }
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  TapeOp op;
  op.kind = TapeOp::Kind::Conductance;
  LaneMatrix& mat = sys_.matrix();
  if (ia >= 0) op.m[0] = static_cast<uint32_t>(mat.entryHandle(ia, ia));
  if (ib >= 0) op.m[1] = static_cast<uint32_t>(mat.entryHandle(ib, ib));
  if (ia >= 0 && ib >= 0) {
    op.m[2] = static_cast<uint32_t>(mat.entryHandle(ia, ib));
    op.m[3] = static_cast<uint32_t>(mat.entryHandle(ib, ia));
  }
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyConductance(op, fillSlot(tape_->opCount() - 1, nullptr, g, 1.0), 0.0, 1.0);
    return;
  }
  applyConductance(op, nullptr, g, 1.0);
}

void LaneStamper::currentSource(NodeId a, NodeId b, const double* i) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::CurrentSource);
    applyCurrentSource(op, store_values_ ? fillSlot(idx, i, 0.0, 1.0) : i, 0.0, 1.0);
    return;
  }
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  TapeOp op;
  op.kind = TapeOp::Kind::CurrentSource;
  if (ia >= 0) op.r[0] = static_cast<uint32_t>(ia);
  if (ib >= 0) op.r[1] = static_cast<uint32_t>(ib);
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyCurrentSource(op, fillSlot(tape_->opCount() - 1, i, 0.0, 1.0), 0.0, 1.0);
    return;
  }
  applyCurrentSource(op, i, 0.0, 1.0);
}

void LaneStamper::currentSourceUniform(NodeId a, NodeId b, double i) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::CurrentSource);
    if (store_values_) {
      applyCurrentSource(op, fillSlot(idx, nullptr, i, 1.0), 0.0, 1.0);
    } else {
      applyCurrentSource(op, nullptr, i, 1.0);
    }
    return;
  }
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  TapeOp op;
  op.kind = TapeOp::Kind::CurrentSource;
  if (ia >= 0) op.r[0] = static_cast<uint32_t>(ia);
  if (ib >= 0) op.r[1] = static_cast<uint32_t>(ib);
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyCurrentSource(op, fillSlot(tape_->opCount() - 1, nullptr, i, 1.0), 0.0, 1.0);
    return;
  }
  applyCurrentSource(op, nullptr, i, 1.0);
}

void LaneStamper::voltageBranch(size_t branch_index, NodeId plus, NodeId minus,
                                const double* v_values) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::VoltageBranch);
    applyVoltageBranch(op, store_values_ ? fillSlot(idx, v_values, 0.0, 1.0) : v_values, 0.0);
    return;
  }
  const int row = static_cast<int>(branch_index);
  const int ip = nodeIndex(plus);
  const int im = nodeIndex(minus);
  TapeOp op;
  op.kind = TapeOp::Kind::VoltageBranch;
  LaneMatrix& mat = sys_.matrix();
  if (ip >= 0) op.m[0] = static_cast<uint32_t>(mat.entryHandle(ip, row));
  if (im >= 0) op.m[1] = static_cast<uint32_t>(mat.entryHandle(im, row));
  if (ip >= 0) op.m[2] = static_cast<uint32_t>(mat.entryHandle(row, ip));
  if (im >= 0) op.m[3] = static_cast<uint32_t>(mat.entryHandle(row, im));
  op.r[0] = static_cast<uint32_t>(row);
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyVoltageBranch(op, fillSlot(tape_->opCount() - 1, v_values, 0.0, 1.0), 0.0);
    return;
  }
  applyVoltageBranch(op, v_values, 0.0);
}

void LaneStamper::voltageBranchUniform(size_t branch_index, NodeId plus, NodeId minus,
                                       double v_value) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::VoltageBranch);
    if (store_values_) {
      applyVoltageBranch(op, fillSlot(idx, nullptr, v_value, 1.0), 0.0);
    } else {
      applyVoltageBranch(op, nullptr, v_value);
    }
    return;
  }
  const int row = static_cast<int>(branch_index);
  const int ip = nodeIndex(plus);
  const int im = nodeIndex(minus);
  TapeOp op;
  op.kind = TapeOp::Kind::VoltageBranch;
  LaneMatrix& mat = sys_.matrix();
  if (ip >= 0) op.m[0] = static_cast<uint32_t>(mat.entryHandle(ip, row));
  if (im >= 0) op.m[1] = static_cast<uint32_t>(mat.entryHandle(im, row));
  if (ip >= 0) op.m[2] = static_cast<uint32_t>(mat.entryHandle(row, ip));
  if (im >= 0) op.m[3] = static_cast<uint32_t>(mat.entryHandle(row, im));
  op.r[0] = static_cast<uint32_t>(row);
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyVoltageBranch(op, fillSlot(tape_->opCount() - 1, nullptr, v_value, 1.0), 0.0);
    return;
  }
  applyVoltageBranch(op, nullptr, v_value);
}

void LaneStamper::addMatrix(int row, int col, const double* value, double scale) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::Matrix);
    if (store_values_) {
      applyMatrix(op, fillSlot(idx, value, 0.0, scale), 0.0, 1.0);
    } else {
      applyMatrix(op, value, 0.0, scale);
    }
    return;
  }
  TapeOp op;
  op.kind = TapeOp::Kind::Matrix;
  if (row >= 0 && col >= 0) {
    op.m[0] = static_cast<uint32_t>(
        sys_.matrix().entryHandle(static_cast<size_t>(row), static_cast<size_t>(col)));
  }
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyMatrix(op, fillSlot(tape_->opCount() - 1, value, 0.0, scale), 0.0, 1.0);
    return;
  }
  applyMatrix(op, value, 0.0, scale);
}

void LaneStamper::addMatrixUniform(int row, int col, double value) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::Matrix);
    if (store_values_) {
      applyMatrix(op, fillSlot(idx, nullptr, value, 1.0), 0.0, 1.0);
    } else {
      applyMatrix(op, nullptr, value, 1.0);
    }
    return;
  }
  TapeOp op;
  op.kind = TapeOp::Kind::Matrix;
  if (row >= 0 && col >= 0) {
    op.m[0] = static_cast<uint32_t>(
        sys_.matrix().entryHandle(static_cast<size_t>(row), static_cast<size_t>(col)));
  }
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyMatrix(op, fillSlot(tape_->opCount() - 1, nullptr, value, 1.0), 0.0, 1.0);
    return;
  }
  applyMatrix(op, nullptr, value, 1.0);
}

void LaneStamper::addRhs(int row, const double* value, double scale) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::Rhs);
    if (store_values_) {
      applyRhs(op, fillSlot(idx, value, 0.0, scale), 0.0, 1.0);
    } else {
      applyRhs(op, value, 0.0, scale);
    }
    return;
  }
  TapeOp op;
  op.kind = TapeOp::Kind::Rhs;
  if (row >= 0) op.r[0] = static_cast<uint32_t>(row);
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyRhs(op, fillSlot(tape_->opCount() - 1, value, 0.0, scale), 0.0, 1.0);
    return;
  }
  applyRhs(op, value, 0.0, scale);
}

void LaneStamper::addRhsUniform(int row, double value) {
  if (mode_ == Mode::Replay) {
    const size_t idx = cursor_;
    const TapeOp& op = nextOp(TapeOp::Kind::Rhs);
    if (store_values_) {
      applyRhs(op, fillSlot(idx, nullptr, value, 1.0), 0.0, 1.0);
    } else {
      applyRhs(op, nullptr, value, 1.0);
    }
    return;
  }
  TapeOp op;
  op.kind = TapeOp::Kind::Rhs;
  if (row >= 0) op.r[0] = static_cast<uint32_t>(row);
  if (mode_ == Mode::Record) {
    tape_->pushOp(op);
    applyRhs(op, fillSlot(tape_->opCount() - 1, nullptr, value, 1.0), 0.0, 1.0);
    return;
  }
  applyRhs(op, nullptr, value, 1.0);
}

EnsembleAssembler::EnsembleAssembler(const Circuit& circuit, EnsembleSystem& system)
    : circuit_(circuit), sys_(system), scratch_(system.numNodes(), system.numBranches()) {}

void EnsembleAssembler::assemble(const LaneContext& ctx,
                                 const std::vector<DeviceLaneState*>& states,
                                 const AssemblyOptions& options) {
  sys_.clear();
  const auto& devices = circuit_.devices();
  LaneTape& tape = ctx.method == IntegrationMethod::None ? tape_dc_ : tape_tran_;
  LaneStamper stamper(sys_);
  const bool record = !tape.matches(&sys_, circuit_.revision(), devices.size());
  if (record) {
    tape.beginRecording(&sys_, circuit_.revision(), devices.size(), sys_.lanes());
    stamper.startRecording(tape);
    for (size_t i = 0; i < devices.size(); ++i) {
      Device* dev = devices[i].get();
      tape.beginDevice();
      if (dev->supportsLanes()) {
        dev->stampLanes(stamper, ctx, states[i]);
      } else {
        assembleGeneric(*dev, ctx);
      }
      for (size_t t = 0; t < dev->terminalCount(); ++t) {
        tape.recordTerminalVoltages(ctx.v(dev->terminalNode(t)));
      }
      tape.endDevice();
    }
    tape.finishRecording(sys_.matrix(), sys_.numNodes());
  } else {
    // Stored op values only feed replayStored (bypass); with bypass off
    // the replay loop stays read-only over the tape.
    stamper.startReplay(tape, /*store_values=*/options.enable_bypass);
    const bool bypass_active = options.enable_bypass && options.allow_bypass_now;
    const bool track_voltages = options.enable_bypass;
    for (size_t i = 0; i < devices.size(); ++i) {
      Device* dev = devices[i].get();
      if (!dev->supportsLanes()) {
        assembleGeneric(*dev, ctx);
        continue;
      }
      const LaneTape::Span& sp = tape.span(i);
      if (bypass_active && dev->supportsBypass() &&
          lanesQuiet(*dev, tape, sp, ctx, options.bypass_tol)) {
        ++bypassed_;
        stamper.replayStored(sp.op_begin, sp.op_end);
        continue;
      }
      stamper.seek(sp.op_begin);
      dev->stampLanes(stamper, ctx, states[i]);
      if (stamper.cursor() != sp.op_end) laneTapeDivergence();
      if (track_voltages) {
        const size_t K = ctx.lanes;
        for (size_t t = 0, k = sp.volt_begin; k < sp.volt_end; ++t, ++k) {
          const double* v = ctx.v(dev->terminalNode(t));
          std::copy(v, v + K, tape.vLast(k));
        }
      }
    }
    if (stamper.cursor() != tape.opCount()) laneTapeDivergence();
  }
  // Convergence-aid gmin on every node diagonal, all lanes.
  const size_t K = sys_.lanes();
  for (size_t handle : tape.gminHandles()) {
    double* v = sys_.matrix().laneValues(handle);
    for (size_t l = 0; l < K; ++l) v[l] += ctx.gmin;
  }
}

void EnsembleAssembler::assembleGeneric(Device& dev, const LaneContext& ctx) {
  // Per-lane scalar fallback: gather one lane's unknowns into AoS form,
  // run the device's scalar stamp() into the scratch system, and
  // scatter the scratch entries into that lane's slots. Correct for any
  // device whose stamp is stateless between Newton iterations; devices
  // with integration state must implement the lane API (enforced by the
  // EnsembleSimulator).
  const size_t K = ctx.lanes;
  const size_t n = sys_.size();
  x_lane_.resize(n);
  for (size_t l = 0; l < K; ++l) {
    for (size_t i = 0; i < n; ++i) x_lane_[i] = ctx.x[i * K + l];
    EvalContext ectx;
    ectx.x = x_lane_;
    ectx.time = ctx.time;
    ectx.dt = ctx.dt;
    ectx.method = ctx.method;
    ectx.temperature = ctx.temperature;
    ectx.source_scale = ctx.source_scale;
    ectx.gmin = ctx.gmin;
    scratch_.clear();
    Stamper st(scratch_);
    dev.stamp(st, ectx);
    const auto& coords = scratch_.matrix().entries();
    for (size_t h = scratch_map_.size(); h < coords.size(); ++h) {
      scratch_map_.push_back(sys_.matrix().entryHandle(coords[h].row, coords[h].col));
    }
    for (size_t h = 0; h < coords.size(); ++h) {
      const double v = scratch_.matrix().value(h);
      if (v != 0.0) sys_.matrix().laneValues(scratch_map_[h])[l] += v;
    }
    const auto& rhs = scratch_.rhs();
    for (size_t r = 0; r < n; ++r) {
      if (rhs[r] != 0.0) sys_.rhsLanes(r)[l] += rhs[r];
    }
  }
}

}  // namespace vls
