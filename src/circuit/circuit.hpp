// Flat circuit container: named nodes plus owned devices. Hierarchy
// (subcircuits, cell generators) is flattened into this container with
// dotted instance names ("x1.mn1"), which keeps the solver simple and
// every internal node probeable.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "base/error.hpp"
#include "circuit/device.hpp"
#include "circuit/node.hpp"

namespace vls {

class Circuit {
 public:
  Circuit() = default;

  /// Get or create the node with this name. "0" and "gnd" (any case)
  /// are the ground node.
  NodeId node(std::string_view name);

  /// Find an existing node; nullopt if absent.
  std::optional<NodeId> findNode(std::string_view name) const;

  /// Name of a node (ground reports "0").
  const std::string& nodeName(NodeId id) const;

  size_t nodeCount() const { return names_.size(); }

  /// Construct and own a device. Returns a reference valid for the
  /// circuit's lifetime. Duplicate device names are rejected.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    registerDevice(std::move(dev));
    return ref;
  }

  Device* findDevice(std::string_view name) const;

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

  /// Total branch unknowns across devices; also assigns branch indices.
  /// Called by the simulator before stamping.
  size_t assignBranchIndices();

  /// Monotonic topology revision: bumped whenever a device is added or
  /// branch indices are (re)assigned. Assembly tapes record the
  /// revision they were built at and rebuild on mismatch, so cached
  /// entry handles can never go stale silently.
  uint64_t revision() const { return revision_; }

  /// All node names in index order (for result labeling).
  const std::vector<std::string>& nodeNames() const { return names_; }

 private:
  void registerDevice(std::unique_ptr<Device> dev);
  static bool isGroundName(std::string_view name);

  std::vector<std::string> names_;
  std::unordered_map<std::string, NodeId> index_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::unordered_map<std::string, Device*> device_index_;
  uint64_t revision_ = 0;
};

}  // namespace vls
