// Ensemble (lane-batched) MNA assembly. One EnsembleSystem holds the
// shared sparsity pattern plus K lanes of numeric values (SoA: each
// matrix entry and RHS row is a contiguous double[K] run). Lane-capable
// devices stamp all K Monte-Carlo variants of themselves in one pass
// through the LaneStamper; devices without lane support fall back to
// their scalar stamp() run once per lane through a scratch system whose
// entries are scattered into the matching lane slots.
//
// The LaneStamper reuses the scalar TapeOp record/replay protocol with
// lane stride: record mode resolves LaneMatrix handles once per
// topology revision, replay mode applies double[K] value runs through
// the cached handles — no hash lookups or ground checks in the ensemble
// Newton inner loop.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/assembly.hpp"
#include "circuit/circuit.hpp"
#include "circuit/device.hpp"
#include "circuit/mna.hpp"
#include "numeric/lane_matrix.hpp"

namespace vls {

class EnsembleSystem {
 public:
  EnsembleSystem(size_t num_nodes, size_t num_branches, size_t lanes)
      : num_nodes_(num_nodes),
        num_branches_(num_branches),
        lanes_(lanes),
        matrix_(num_nodes + num_branches, lanes),
        rhs_((num_nodes + num_branches) * lanes, 0.0) {}

  size_t numNodes() const { return num_nodes_; }
  size_t numBranches() const { return num_branches_; }
  size_t size() const { return num_nodes_ + num_branches_; }
  size_t lanes() const { return lanes_; }

  LaneMatrix& matrix() { return matrix_; }
  const LaneMatrix& matrix() const { return matrix_; }
  std::vector<double>& rhs() { return rhs_; }
  const std::vector<double>& rhs() const { return rhs_; }
  double* rhsLanes(size_t row) { return rhs_.data() + row * lanes_; }

  void clear() {
    matrix_.clearValues();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
  }

 private:
  size_t num_nodes_;
  size_t num_branches_;
  size_t lanes_;
  LaneMatrix matrix_;
  std::vector<double> rhs_;
};

/// Recorded lane-stamp sequence for one (system, topology revision,
/// analysis mode). Besides the resolved TapeOps it keeps the bypass
/// bookkeeping of the scalar AssemblyTape, widened to lane stride:
/// per-device op/terminal spans, each op's last fully-evaluated
/// double[lanes] value run, and per-terminal double[lanes] voltage
/// snapshots — enough to re-apply a quiet device's contribution
/// without re-evaluating its model in any lane.
class LaneTape {
 public:
  /// Per-device slice of the tape (indexed by circuit device order).
  struct Span {
    uint32_t op_begin = 0;
    uint32_t op_end = 0;
    uint32_t volt_begin = 0;
    uint32_t volt_end = 0;
  };

  bool matches(const void* system_key, uint64_t revision, size_t device_count) const {
    return recorded_ && system_key_ == system_key && revision_ == revision &&
           device_count_ == device_count;
  }
  void beginRecording(const void* system_key, uint64_t revision, size_t device_count,
                      size_t lanes) {
    ops_.clear();
    op_values_.clear();
    spans_.clear();
    v_last_.clear();
    gmin_handles_.clear();
    system_key_ = system_key;
    revision_ = revision;
    device_count_ = device_count;
    lanes_ = lanes;
    recorded_ = false;
  }
  void finishRecording(LaneMatrix& matrix, size_t num_nodes) {
    gmin_handles_.resize(num_nodes);
    for (size_t n = 0; n < num_nodes; ++n) gmin_handles_[n] = matrix.entryHandle(n, n);
    recorded_ = true;
  }
  void beginDevice() {
    current_.op_begin = static_cast<uint32_t>(ops_.size());
    current_.volt_begin = static_cast<uint32_t>(v_last_.size() / lanes_);
  }
  void endDevice() {
    current_.op_end = static_cast<uint32_t>(ops_.size());
    current_.volt_end = static_cast<uint32_t>(v_last_.size() / lanes_);
    spans_.push_back(current_);
  }
  /// Snapshot one terminal's double[lanes] voltage run.
  void recordTerminalVoltages(const double* v) { v_last_.insert(v_last_.end(), v, v + lanes_); }
  void pushOp(const TapeOp& op) {
    ops_.push_back(op);
    op_values_.resize(op_values_.size() + lanes_, 0.0);
  }
  size_t opCount() const { return ops_.size(); }
  size_t lanes() const { return lanes_; }
  const TapeOp& op(size_t i) const { return ops_[i]; }
  const Span& span(size_t device) const { return spans_[device]; }
  /// Op i's effective per-lane values as of the last full evaluation.
  double* opLanes(size_t i) { return op_values_.data() + i * lanes_; }
  const double* opLanes(size_t i) const { return op_values_.data() + i * lanes_; }
  /// Terminal snapshot k's double[lanes] run (k in a device's volt span).
  double* vLast(size_t k) { return v_last_.data() + k * lanes_; }
  const double* vLast(size_t k) const { return v_last_.data() + k * lanes_; }
  const std::vector<size_t>& gminHandles() const { return gmin_handles_; }

 private:
  std::vector<TapeOp> ops_;
  std::vector<double> op_values_;  ///< opCount * lanes effective values
  std::vector<Span> spans_;        ///< one per device, circuit order
  std::vector<double> v_last_;     ///< terminal snapshots * lanes
  Span current_{};
  std::vector<size_t> gmin_handles_;
  const void* system_key_ = nullptr;
  uint64_t revision_ = 0;
  size_t device_count_ = 0;
  size_t lanes_ = 1;
  bool recorded_ = false;
};

/// Device-facing lane stamping interface. Value parameters are either
/// contiguous double[lanes] arrays (one value per Monte-Carlo variant)
/// or uniform scalars broadcast to every lane (lane-invariant stamps:
/// sources, linear resistors, topology constants). Sign conventions
/// match the scalar Stamper exactly.
class LaneStamper {
 public:
  explicit LaneStamper(EnsembleSystem& system) : sys_(system) {}

  void conductance(NodeId a, NodeId b, const double* g);
  void conductanceUniform(NodeId a, NodeId b, double g);
  void currentSource(NodeId a, NodeId b, const double* i);
  void currentSourceUniform(NodeId a, NodeId b, double i);
  void voltageBranch(size_t branch_index, NodeId plus, NodeId minus, const double* v_values);
  void voltageBranchUniform(size_t branch_index, NodeId plus, NodeId minus, double v_value);
  /// Raw entry accumulation: value[l] * scale into (row, col) lane l.
  void addMatrix(int row, int col, const double* value, double scale = 1.0);
  void addMatrixUniform(int row, int col, double value);
  void addRhs(int row, const double* value, double scale = 1.0);
  void addRhsUniform(int row, double value);

  int nodeIndex(NodeId n) const { return isGround(n) ? -1 : n; }
  size_t lanes() const { return sys_.lanes(); }
  size_t numNodes() const { return sys_.numNodes(); }

  // --- tape protocol (driven by the EnsembleAssembler) ---------------
  void startRecording(LaneTape& tape);
  /// store_values mirrors the per-lane effective value of every replayed
  /// op into the tape — required whenever replayStored may later re-apply
  /// them (bypass), pure overhead otherwise.
  void startReplay(LaneTape& tape, bool store_values = false);
  /// Jump the replay cursor to an absolute op index (bypass skips).
  void seek(size_t op_index) { cursor_ = op_index; }
  /// Re-apply ops [op_begin, op_end) from their stored per-lane values
  /// (no device evaluation) and leave the cursor at op_end.
  void replayStored(size_t op_begin, size_t op_end);
  size_t cursor() const { return cursor_; }

 private:
  enum class Mode : uint8_t { Direct, Record, Replay };

  /// m[0..1] += v, m[2..3] -= v (per lane; scale applied).
  void applyConductance(const TapeOp& op, const double* g, double uniform, double scale);
  void applyCurrentSource(const TapeOp& op, const double* i, double uniform, double scale);
  void applyVoltageBranch(const TapeOp& op, const double* v, double uniform);
  void applyMatrix(const TapeOp& op, const double* v, double uniform, double scale);
  void applyRhs(const TapeOp& op, const double* v, double uniform, double scale);
  const TapeOp& nextOp(TapeOp::Kind kind);
  /// Write op_index's effective per-lane values (scale * v[l], or the
  /// broadcast scale * uniform) into the tape and return the slot.
  const double* fillSlot(size_t op_index, const double* v, double uniform, double scale);
  /// True when this stamp call must mirror values into the tape.
  bool storing() const { return mode_ == Mode::Record || store_values_; }

  EnsembleSystem& sys_;
  LaneTape* tape_ = nullptr;
  Mode mode_ = Mode::Direct;
  bool store_values_ = false;
  size_t cursor_ = 0;
};

/// Assembles every device of a circuit into an EnsembleSystem for one
/// lane context: lane-capable devices through the LaneStamper (with
/// per-mode record/replay tapes), the rest through the per-lane scalar
/// fallback. Adds ctx.gmin on every node diagonal (all lanes).
///
/// With AssemblyOptions bypass enabled, a replay skips the model
/// evaluation of any bypass-capable device whose terminal voltages
/// moved at most bypass_tol in EVERY lane since its last full
/// linearization, re-applying its stored per-lane op values instead —
/// the scalar Assembler's bypass fast path, lane-widened.
class EnsembleAssembler {
 public:
  EnsembleAssembler(const Circuit& circuit, EnsembleSystem& system);

  /// states[i] belongs to circuit.devices()[i] (null for devices
  /// without lane support).
  void assemble(const LaneContext& ctx, const std::vector<DeviceLaneState*>& states,
                const AssemblyOptions& options = {});

  /// Devices whose model evaluation was skipped by bypass (all lanes
  /// quiet), summed over every replay.
  size_t bypassedEvaluations() const { return bypassed_; }

 private:
  void assembleGeneric(Device& dev, const LaneContext& ctx);

  const Circuit& circuit_;
  EnsembleSystem& sys_;
  LaneTape tape_dc_;
  LaneTape tape_tran_;
  MnaSystem scratch_;               // per-lane scalar fallback target
  std::vector<size_t> scratch_map_;  // scratch matrix handle -> ensemble handle
  std::vector<double> x_lane_;       // gathered AoS unknowns of one lane
  size_t bypassed_ = 0;
};

}  // namespace vls
