// Ensemble (lane-batched) MNA assembly. One EnsembleSystem holds the
// shared sparsity pattern plus K lanes of numeric values (SoA: each
// matrix entry and RHS row is a contiguous double[K] run). Lane-capable
// devices stamp all K Monte-Carlo variants of themselves in one pass
// through the LaneStamper; devices without lane support fall back to
// their scalar stamp() run once per lane through a scratch system whose
// entries are scattered into the matching lane slots.
//
// The LaneStamper reuses the scalar TapeOp record/replay protocol with
// lane stride: record mode resolves LaneMatrix handles once per
// topology revision, replay mode applies double[K] value runs through
// the cached handles — no hash lookups or ground checks in the ensemble
// Newton inner loop.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/device.hpp"
#include "circuit/mna.hpp"
#include "numeric/lane_matrix.hpp"

namespace vls {

class EnsembleSystem {
 public:
  EnsembleSystem(size_t num_nodes, size_t num_branches, size_t lanes)
      : num_nodes_(num_nodes),
        num_branches_(num_branches),
        lanes_(lanes),
        matrix_(num_nodes + num_branches, lanes),
        rhs_((num_nodes + num_branches) * lanes, 0.0) {}

  size_t numNodes() const { return num_nodes_; }
  size_t numBranches() const { return num_branches_; }
  size_t size() const { return num_nodes_ + num_branches_; }
  size_t lanes() const { return lanes_; }

  LaneMatrix& matrix() { return matrix_; }
  const LaneMatrix& matrix() const { return matrix_; }
  std::vector<double>& rhs() { return rhs_; }
  const std::vector<double>& rhs() const { return rhs_; }
  double* rhsLanes(size_t row) { return rhs_.data() + row * lanes_; }

  void clear() {
    matrix_.clearValues();
    std::fill(rhs_.begin(), rhs_.end(), 0.0);
  }

 private:
  size_t num_nodes_;
  size_t num_branches_;
  size_t lanes_;
  LaneMatrix matrix_;
  std::vector<double> rhs_;
};

/// Recorded lane-stamp sequence for one (system, topology revision,
/// analysis mode). Stores resolved TapeOps only — values always come
/// from the device at replay time (the ensemble engine has no bypass).
class LaneTape {
 public:
  bool matches(const void* system_key, uint64_t revision, size_t device_count) const {
    return recorded_ && system_key_ == system_key && revision_ == revision &&
           device_count_ == device_count;
  }
  void beginRecording(const void* system_key, uint64_t revision, size_t device_count) {
    ops_.clear();
    gmin_handles_.clear();
    system_key_ = system_key;
    revision_ = revision;
    device_count_ = device_count;
    recorded_ = false;
  }
  void finishRecording(LaneMatrix& matrix, size_t num_nodes) {
    gmin_handles_.resize(num_nodes);
    for (size_t n = 0; n < num_nodes; ++n) gmin_handles_[n] = matrix.entryHandle(n, n);
    recorded_ = true;
  }
  void pushOp(const TapeOp& op) { ops_.push_back(op); }
  size_t opCount() const { return ops_.size(); }
  const TapeOp& op(size_t i) const { return ops_[i]; }
  const std::vector<size_t>& gminHandles() const { return gmin_handles_; }

 private:
  std::vector<TapeOp> ops_;
  std::vector<size_t> gmin_handles_;
  const void* system_key_ = nullptr;
  uint64_t revision_ = 0;
  size_t device_count_ = 0;
  bool recorded_ = false;
};

/// Device-facing lane stamping interface. Value parameters are either
/// contiguous double[lanes] arrays (one value per Monte-Carlo variant)
/// or uniform scalars broadcast to every lane (lane-invariant stamps:
/// sources, linear resistors, topology constants). Sign conventions
/// match the scalar Stamper exactly.
class LaneStamper {
 public:
  explicit LaneStamper(EnsembleSystem& system) : sys_(system) {}

  void conductance(NodeId a, NodeId b, const double* g);
  void conductanceUniform(NodeId a, NodeId b, double g);
  void currentSource(NodeId a, NodeId b, const double* i);
  void currentSourceUniform(NodeId a, NodeId b, double i);
  void voltageBranchUniform(size_t branch_index, NodeId plus, NodeId minus, double v_value);
  /// Raw entry accumulation: value[l] * scale into (row, col) lane l.
  void addMatrix(int row, int col, const double* value, double scale = 1.0);
  void addMatrixUniform(int row, int col, double value);
  void addRhs(int row, const double* value, double scale = 1.0);
  void addRhsUniform(int row, double value);

  int nodeIndex(NodeId n) const { return isGround(n) ? -1 : n; }
  size_t lanes() const { return sys_.lanes(); }
  size_t numNodes() const { return sys_.numNodes(); }

  // --- tape protocol (driven by the EnsembleAssembler) ---------------
  void startRecording(LaneTape& tape);
  void startReplay(LaneTape& tape);
  size_t cursor() const { return cursor_; }

 private:
  enum class Mode : uint8_t { Direct, Record, Replay };

  /// m[0..1] += v, m[2..3] -= v (per lane; scale applied).
  void applyConductance(const TapeOp& op, const double* g, double uniform, double scale);
  void applyCurrentSource(const TapeOp& op, const double* i, double uniform, double scale);
  void applyVoltageBranch(const TapeOp& op, double v_value);
  void applyMatrix(const TapeOp& op, const double* v, double uniform, double scale);
  void applyRhs(const TapeOp& op, const double* v, double uniform, double scale);
  const TapeOp& nextOp(TapeOp::Kind kind);

  EnsembleSystem& sys_;
  LaneTape* tape_ = nullptr;
  Mode mode_ = Mode::Direct;
  size_t cursor_ = 0;
};

/// Assembles every device of a circuit into an EnsembleSystem for one
/// lane context: lane-capable devices through the LaneStamper (with
/// per-mode record/replay tapes), the rest through the per-lane scalar
/// fallback. Adds ctx.gmin on every node diagonal (all lanes).
class EnsembleAssembler {
 public:
  EnsembleAssembler(const Circuit& circuit, EnsembleSystem& system);

  /// states[i] belongs to circuit.devices()[i] (null for devices
  /// without lane support).
  void assemble(const LaneContext& ctx, const std::vector<DeviceLaneState*>& states);

 private:
  void assembleGeneric(Device& dev, const LaneContext& ctx);

  const Circuit& circuit_;
  EnsembleSystem& sys_;
  LaneTape tape_dc_;
  LaneTape tape_tran_;
  MnaSystem scratch_;               // per-lane scalar fallback target
  std::vector<size_t> scratch_map_;  // scratch matrix handle -> ensemble handle
  std::vector<double> x_lane_;       // gathered AoS unknowns of one lane
};

}  // namespace vls
