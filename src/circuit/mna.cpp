#include "circuit/mna.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace vls {
namespace {

/// Applies one recorded op with scalar `s`. The write order matches the
/// direct-mode call order exactly, so replayed accumulation is
/// bit-identical to hashed assembly.
void applyTapeOp(const TapeOp& op, double s, SparseMatrix& matrix, std::vector<double>& rhs) {
  constexpr uint32_t kNone = TapeOp::kNone;
  switch (op.kind) {
    case TapeOp::Kind::Conductance:
      if (op.m[0] != kNone) matrix.addAt(op.m[0], s);
      if (op.m[1] != kNone) matrix.addAt(op.m[1], s);
      if (op.m[2] != kNone) {
        matrix.addAt(op.m[2], -s);
        matrix.addAt(op.m[3], -s);
      }
      break;
    case TapeOp::Kind::CurrentSource:
      if (op.r[0] != kNone) rhs[op.r[0]] -= s;
      if (op.r[1] != kNone) rhs[op.r[1]] += s;
      break;
    case TapeOp::Kind::Transconductance:
      if (op.m[0] != kNone) matrix.addAt(op.m[0], s);
      if (op.m[1] != kNone) matrix.addAt(op.m[1], -s);
      if (op.m[2] != kNone) matrix.addAt(op.m[2], -s);
      if (op.m[3] != kNone) matrix.addAt(op.m[3], s);
      break;
    case TapeOp::Kind::VoltageBranch:
      if (op.m[0] != kNone) matrix.addAt(op.m[0], 1.0);
      if (op.m[1] != kNone) matrix.addAt(op.m[1], -1.0);
      if (op.m[2] != kNone) matrix.addAt(op.m[2], 1.0);
      if (op.m[3] != kNone) matrix.addAt(op.m[3], -1.0);
      rhs[op.r[0]] += s;  // the branch row always exists
      break;
    case TapeOp::Kind::Matrix:
      if (op.m[0] != kNone) matrix.addAt(op.m[0], s);
      break;
    case TapeOp::Kind::Rhs:
      if (op.r[0] != kNone) rhs[op.r[0]] += s;
      break;
  }
}

}  // namespace

void MnaSystem::clear() {
  matrix_.clearValues();
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
}

void AssemblyTape::reset() {
  ops_.clear();
  op_values_.clear();
  v_last_.clear();
  spans_.clear();
  gmin_handles_.clear();
  system_key_ = nullptr;
  revision_ = 0;
  recorded_ = false;
}

void AssemblyTape::beginRecording(const void* system_key, uint64_t revision) {
  reset();
  system_key_ = system_key;
  revision_ = revision;
}

void AssemblyTape::beginDevice() {
  Span span;
  span.op_begin = static_cast<uint32_t>(ops_.size());
  span.op_end = span.op_begin;
  span.volt_begin = static_cast<uint32_t>(v_last_.size());
  span.volt_end = span.volt_begin;
  spans_.push_back(span);
}

void AssemblyTape::endDevice() {
  spans_.back().op_end = static_cast<uint32_t>(ops_.size());
  spans_.back().volt_end = static_cast<uint32_t>(v_last_.size());
}

void AssemblyTape::finishRecording(SparseMatrix& matrix, size_t num_nodes) {
  gmin_handles_.resize(num_nodes);
  for (size_t n = 0; n < num_nodes; ++n) gmin_handles_[n] = matrix.entryHandle(n, n);
  recorded_ = true;
}

void AssemblyTape::replayStored(size_t device, SparseMatrix& matrix,
                                std::vector<double>& rhs) const {
  const Span& sp = spans_[device];
  for (uint32_t i = sp.op_begin; i < sp.op_end; ++i) {
    applyTapeOp(ops_[i], op_values_[i], matrix, rhs);
  }
}

void Stamper::startRecording(AssemblyTape& tape) {
  tape_ = &tape;
  mode_ = Mode::Record;
  cursor_ = 0;
}

void Stamper::startReplay(AssemblyTape& tape, bool store_values) {
  tape_ = &tape;
  mode_ = Mode::Replay;
  store_values_ = store_values;
  cursor_ = 0;
}

void Stamper::startCapture(AssemblyTape& tape) {
  tape_ = &tape;
  mode_ = Mode::Capture;
  cursor_ = 0;
}

void Stamper::recordOp(const TapeOp& op, double value) {
  tape_->pushOp(op, value);
  applyTapeOp(op, value, sys_.matrix(), sys_.rhs());
}

namespace {
[[noreturn]] void tapeDivergence() {
  throw Error("Stamper: stamp call sequence diverged from the recorded tape "
              "(stale tape not invalidated?)");
}
}  // namespace

void Stamper::replayOp(TapeOp::Kind kind, double value) {
  if (cursor_ >= tape_->opCount()) tapeDivergence();
  const TapeOp& op = tape_->op(cursor_);
  if (op.kind != kind) tapeDivergence();
  // Storing the scalar back into the tape only serves the bypass path
  // (replayStored) — skipping the store when bypass is off keeps the
  // replay inner loop read-only over the tape (satellite benefit on
  // small circuits, where the store is a measurable share of replay).
  if (mode_ == Mode::Capture || store_values_) tape_->setOpValue(cursor_, value);
  ++cursor_;
  if (mode_ == Mode::Capture) return;  // values applied by a later pass
  applyTapeOp(op, value, sys_.matrix(), sys_.rhs());
}

void Stamper::conductance(NodeId a, NodeId b, double g) {
  if (consumingTape()) {
    replayOp(TapeOp::Kind::Conductance, g);
    return;
  }
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  if (mode_ == Mode::Record) {
    TapeOp op;
    op.kind = TapeOp::Kind::Conductance;
    SparseMatrix& mat = sys_.matrix();
    if (ia >= 0) op.m[0] = static_cast<uint32_t>(mat.entryHandle(ia, ia));
    if (ib >= 0) op.m[1] = static_cast<uint32_t>(mat.entryHandle(ib, ib));
    if (ia >= 0 && ib >= 0) {
      op.m[2] = static_cast<uint32_t>(mat.entryHandle(ia, ib));
      op.m[3] = static_cast<uint32_t>(mat.entryHandle(ib, ia));
    }
    recordOp(op, g);
    return;
  }
  if (ia >= 0) addMatrix(ia, ia, g);
  if (ib >= 0) addMatrix(ib, ib, g);
  if (ia >= 0 && ib >= 0) {
    addMatrix(ia, ib, -g);
    addMatrix(ib, ia, -g);
  }
}

void Stamper::currentSource(NodeId a, NodeId b, double i) {
  if (consumingTape()) {
    replayOp(TapeOp::Kind::CurrentSource, i);
    return;
  }
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  if (mode_ == Mode::Record) {
    TapeOp op;
    op.kind = TapeOp::Kind::CurrentSource;
    if (ia >= 0) op.r[0] = static_cast<uint32_t>(ia);
    if (ib >= 0) op.r[1] = static_cast<uint32_t>(ib);
    recordOp(op, i);
    return;
  }
  if (ia >= 0) addRhs(ia, -i);
  if (ib >= 0) addRhs(ib, i);
}

void Stamper::transconductance(NodeId a, NodeId b, NodeId c, NodeId d, double gm) {
  if (consumingTape()) {
    replayOp(TapeOp::Kind::Transconductance, gm);
    return;
  }
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  const int ic = nodeIndex(c);
  const int id = nodeIndex(d);
  if (mode_ == Mode::Record) {
    TapeOp op;
    op.kind = TapeOp::Kind::Transconductance;
    SparseMatrix& mat = sys_.matrix();
    if (ia >= 0 && ic >= 0) op.m[0] = static_cast<uint32_t>(mat.entryHandle(ia, ic));
    if (ia >= 0 && id >= 0) op.m[1] = static_cast<uint32_t>(mat.entryHandle(ia, id));
    if (ib >= 0 && ic >= 0) op.m[2] = static_cast<uint32_t>(mat.entryHandle(ib, ic));
    if (ib >= 0 && id >= 0) op.m[3] = static_cast<uint32_t>(mat.entryHandle(ib, id));
    recordOp(op, gm);
    return;
  }
  if (ia >= 0 && ic >= 0) addMatrix(ia, ic, gm);
  if (ia >= 0 && id >= 0) addMatrix(ia, id, -gm);
  if (ib >= 0 && ic >= 0) addMatrix(ib, ic, -gm);
  if (ib >= 0 && id >= 0) addMatrix(ib, id, gm);
}

void Stamper::voltageBranch(size_t branch_index, NodeId plus, NodeId minus, double v_value) {
  if (consumingTape()) {
    replayOp(TapeOp::Kind::VoltageBranch, v_value);
    return;
  }
  const int row = static_cast<int>(branch_index);
  const int ip = nodeIndex(plus);
  const int im = nodeIndex(minus);
  if (mode_ == Mode::Record) {
    TapeOp op;
    op.kind = TapeOp::Kind::VoltageBranch;
    SparseMatrix& mat = sys_.matrix();
    if (ip >= 0) op.m[0] = static_cast<uint32_t>(mat.entryHandle(ip, row));
    if (im >= 0) op.m[1] = static_cast<uint32_t>(mat.entryHandle(im, row));
    if (ip >= 0) op.m[2] = static_cast<uint32_t>(mat.entryHandle(row, ip));
    if (im >= 0) op.m[3] = static_cast<uint32_t>(mat.entryHandle(row, im));
    op.r[0] = static_cast<uint32_t>(row);
    recordOp(op, v_value);
    return;
  }
  // KCL coupling: branch current leaves `plus`, enters `minus`.
  if (ip >= 0) addMatrix(ip, row, 1.0);
  if (im >= 0) addMatrix(im, row, -1.0);
  // Branch equation: v(plus) - v(minus) = v_value.
  if (ip >= 0) addMatrix(row, ip, 1.0);
  if (im >= 0) addMatrix(row, im, -1.0);
  addRhs(row, v_value);
}

void Stamper::addMatrix(int row, int col, double value) {
  if (consumingTape()) {
    replayOp(TapeOp::Kind::Matrix, value);
    return;
  }
  if (mode_ == Mode::Record) {
    TapeOp op;
    op.kind = TapeOp::Kind::Matrix;
    if (row >= 0 && col >= 0) {
      op.m[0] = static_cast<uint32_t>(
          sys_.matrix().entryHandle(static_cast<size_t>(row), static_cast<size_t>(col)));
    }
    recordOp(op, value);
    return;
  }
  if (row < 0 || col < 0) return;
  sys_.matrix().add(static_cast<size_t>(row), static_cast<size_t>(col), value);
}

void Stamper::addRhs(int row, double value) {
  if (consumingTape()) {
    replayOp(TapeOp::Kind::Rhs, value);
    return;
  }
  if (mode_ == Mode::Record) {
    TapeOp op;
    op.kind = TapeOp::Kind::Rhs;
    if (row >= 0) op.r[0] = static_cast<uint32_t>(row);
    recordOp(op, value);
    return;
  }
  if (row < 0) return;
  sys_.rhs()[static_cast<size_t>(row)] += value;
}

void ReactiveStamper::capacitance(NodeId a, NodeId b, double c) {
  const bool ga = isGround(a);
  const bool gb = isGround(b);
  if (!ga) c_.add(static_cast<size_t>(a), static_cast<size_t>(a), c);
  if (!gb) c_.add(static_cast<size_t>(b), static_cast<size_t>(b), c);
  if (!ga && !gb) {
    c_.add(static_cast<size_t>(a), static_cast<size_t>(b), -c);
    c_.add(static_cast<size_t>(b), static_cast<size_t>(a), -c);
  }
}

void ReactiveStamper::branchInductance(size_t branch_index, double inductance) {
  c_.add(branch_index, branch_index, -inductance);
}

}  // namespace vls
