#include "circuit/mna.hpp"

#include <algorithm>

namespace vls {

void MnaSystem::clear() {
  matrix_.clearValues();
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
}

void Stamper::conductance(NodeId a, NodeId b, double g) {
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  if (ia >= 0) addMatrix(ia, ia, g);
  if (ib >= 0) addMatrix(ib, ib, g);
  if (ia >= 0 && ib >= 0) {
    addMatrix(ia, ib, -g);
    addMatrix(ib, ia, -g);
  }
}

void Stamper::currentSource(NodeId a, NodeId b, double i) {
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  if (ia >= 0) addRhs(ia, -i);
  if (ib >= 0) addRhs(ib, i);
}

void Stamper::transconductance(NodeId a, NodeId b, NodeId c, NodeId d, double gm) {
  const int ia = nodeIndex(a);
  const int ib = nodeIndex(b);
  const int ic = nodeIndex(c);
  const int id = nodeIndex(d);
  if (ia >= 0 && ic >= 0) addMatrix(ia, ic, gm);
  if (ia >= 0 && id >= 0) addMatrix(ia, id, -gm);
  if (ib >= 0 && ic >= 0) addMatrix(ib, ic, -gm);
  if (ib >= 0 && id >= 0) addMatrix(ib, id, gm);
}

void Stamper::voltageBranch(size_t branch_index, NodeId plus, NodeId minus, double v_value) {
  const int row = static_cast<int>(branch_index);
  const int ip = nodeIndex(plus);
  const int im = nodeIndex(minus);
  // KCL coupling: branch current leaves `plus`, enters `minus`.
  if (ip >= 0) addMatrix(ip, row, 1.0);
  if (im >= 0) addMatrix(im, row, -1.0);
  // Branch equation: v(plus) - v(minus) = v_value.
  if (ip >= 0) addMatrix(row, ip, 1.0);
  if (im >= 0) addMatrix(row, im, -1.0);
  addRhs(row, v_value);
}

void Stamper::addMatrix(int row, int col, double value) {
  if (row < 0 || col < 0) return;
  sys_.matrix().add(static_cast<size_t>(row), static_cast<size_t>(col), value);
}

void Stamper::addRhs(int row, double value) {
  if (row < 0) return;
  sys_.rhs()[static_cast<size_t>(row)] += value;
}

void ReactiveStamper::capacitance(NodeId a, NodeId b, double c) {
  const bool ga = isGround(a);
  const bool gb = isGround(b);
  if (!ga) c_.add(static_cast<size_t>(a), static_cast<size_t>(a), c);
  if (!gb) c_.add(static_cast<size_t>(b), static_cast<size_t>(b), c);
  if (!ga && !gb) {
    c_.add(static_cast<size_t>(a), static_cast<size_t>(b), -c);
    c_.add(static_cast<size_t>(b), static_cast<size_t>(a), -c);
  }
}

void ReactiveStamper::branchInductance(size_t branch_index, double inductance) {
  c_.add(branch_index, branch_index, -inductance);
}

}  // namespace vls
