#include "circuit/circuit.hpp"

#include "base/string_util.hpp"

namespace vls {

namespace {
const std::string kGroundName = "0";
}

bool Circuit::isGroundName(std::string_view name) {
  return name == "0" || iequals(name, "gnd") || iequals(name, "vss!");
}

NodeId Circuit::node(std::string_view name) {
  if (isGroundName(name)) return kGround;
  const std::string key(name);
  auto it = index_.find(key);
  if (it != index_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(names_.size());
  names_.push_back(key);
  index_.emplace(key, id);
  return id;
}

std::optional<NodeId> Circuit::findNode(std::string_view name) const {
  if (isGroundName(name)) return kGround;
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Circuit::nodeName(NodeId id) const {
  if (isGround(id)) return kGroundName;
  const auto idx = static_cast<size_t>(id);
  if (idx >= names_.size()) throw InvalidInputError("Circuit::nodeName: bad node id");
  return names_[idx];
}

Device* Circuit::findDevice(std::string_view name) const {
  auto it = device_index_.find(std::string(name));
  return it == device_index_.end() ? nullptr : it->second;
}

void Circuit::registerDevice(std::unique_ptr<Device> dev) {
  auto [it, inserted] = device_index_.emplace(dev->name(), dev.get());
  (void)it;
  if (!inserted) {
    throw InvalidInputError("Circuit: duplicate device name '" + dev->name() + "'");
  }
  devices_.push_back(std::move(dev));
  ++revision_;
}

size_t Circuit::assignBranchIndices() {
  ++revision_;
  size_t next = nodeCount();
  for (const auto& dev : devices_) {
    const size_t count = dev->branchCount();
    if (count > 0) {
      dev->assignBranches(next);
      next += count;
    }
  }
  return next - nodeCount();
}

}  // namespace vls
