#include "circuit/assembly.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <unordered_map>

#include "base/error.hpp"
#include "base/parallel.hpp"
#include "circuit/device.hpp"
#include "numeric/lanes.hpp"

namespace vls {
namespace {

/// Records the whole circuit into `tape` (write-through), shared by the
/// serial and sharded assemblers so their record semantics cannot drift.
void recordTape(AssemblyTape& tape, Stamper& stamper, MnaSystem& system, const Circuit& circuit,
                const EvalContext& ctx) {
  tape.beginRecording(&system, circuit.revision());
  stamper.startRecording(tape);
  for (const auto& dev : circuit.devices()) {
    tape.beginDevice();
    dev->stamp(stamper, ctx);
    for (size_t t = 0; t < dev->terminalCount(); ++t) {
      tape.recordTerminalVoltage(ctx.v(dev->terminalNode(t)));
    }
    tape.endDevice();
  }
  tape.finishRecording(system.matrix(), system.numNodes());
}

/// True when every terminal voltage of device i moved by at most `tol`
/// since its last linearization — the bypass qualification test.
bool terminalsQuiet(const Device& dev, const AssemblyTape& tape, const AssemblyTape::Span& sp,
                    const EvalContext& ctx, double tol) {
  for (uint32_t t = 0, k = sp.volt_begin; k < sp.volt_end; ++t, ++k) {
    if (std::fabs(ctx.v(dev.terminalNode(t)) - tape.vLast(k)) > tol) return false;
  }
  return true;
}

[[noreturn]] void staleSequence(const Device& dev) {
  throw Error("Assembler: device '" + dev.name() +
              "' changed its stamp sequence without a topology revision bump");
}

}  // namespace

void Assembler::invalidate() {
  tape_dc_.reset();
  tape_tran_.reset();
}

void Assembler::assemble(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx,
                         const AssemblyOptions& options) {
  system.clear();
  AssemblyTape& tape = tapeFor(ctx.method);
  const auto& devices = circuit.devices();
  Stamper stamper(system);

  if (!tape.matches(&system, circuit.revision(), devices.size())) {
    // Record: resolve every handle once for this topology + mode.
    ++recordings_;
    recordTape(tape, stamper, system, circuit, ctx);
  } else {
    ++replays_;
    // Stored op values only feed replayStored (bypass); with bypass off
    // the replay loop stays read-only over the tape.
    stamper.startReplay(tape, /*store_values=*/options.enable_bypass);
    const bool bypass_active = options.enable_bypass && options.allow_bypass_now;
    // Terminal-voltage tracking is bypass bookkeeping. While bypass is
    // disabled the snapshots are left stale — harmless, because the
    // forced full evaluations at the start of every bypass-enabled
    // Newton solve refresh them before any bypass decision is taken.
    const bool track_voltages = options.enable_bypass;
    for (size_t i = 0; i < devices.size(); ++i) {
      Device& dev = *devices[i];
      const AssemblyTape::Span& sp = tape.span(i);
      if (bypass_active && dev.supportsBypass() &&
          terminalsQuiet(dev, tape, sp, ctx, options.bypass_tol)) {
        ++bypassed_;
        tape.replayStored(i, system.matrix(), system.rhs());
        continue;
      }
      stamper.seek(sp.op_begin);
      dev.stamp(stamper, ctx);
      if (stamper.cursor() != sp.op_end) staleSequence(dev);
      if (track_voltages) {
        for (uint32_t t = 0, k = sp.volt_begin; k < sp.volt_end; ++t, ++k) {
          tape.setVLast(k, ctx.v(dev.terminalNode(t)));
        }
      }
    }
  }

  // gmin from every node to ground, through the cached diagonal
  // handles: keeps floating nodes solvable and Newton matrices
  // nonsingular in cutoff.
  SparseMatrix& matrix = system.matrix();
  for (const size_t h : tape.gminHandles()) matrix.addAt(h, ctx.gmin);
}

void assembleDirect(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx) {
  system.clear();
  Stamper stamper(system);
  for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
  for (size_t n = 0; n < system.numNodes(); ++n) {
    system.matrix().add(n, n, ctx.gmin);
  }
}

namespace {

/// One flattened scalar write of a TapeOp: value = coeff (unit entries
/// of a voltage branch) or coeff * the op's captured scalar. `target`
/// is a matrix value handle / absolute RHS index in the direct list, a
/// per-shard scratch slot in the border list.
struct TapeWrite {
  uint32_t op = 0;
  uint32_t target = 0;
  double coeff = 1.0;
  uint8_t is_matrix = 0;
  uint8_t is_const = 0;
};

/// Enumerates the writes of one op in exactly applyTapeOp's order, so
/// the flattened apply accumulates bit-identically to serial replay.
/// fn(is_matrix, target, coeff, is_const).
template <typename Fn>
void forEachTapeWrite(const TapeOp& op, Fn&& fn) {
  constexpr uint32_t kNone = TapeOp::kNone;
  switch (op.kind) {
    case TapeOp::Kind::Conductance:
      if (op.m[0] != kNone) fn(true, op.m[0], 1.0, false);
      if (op.m[1] != kNone) fn(true, op.m[1], 1.0, false);
      if (op.m[2] != kNone) {
        fn(true, op.m[2], -1.0, false);
        fn(true, op.m[3], -1.0, false);
      }
      break;
    case TapeOp::Kind::CurrentSource:
      if (op.r[0] != kNone) fn(false, op.r[0], -1.0, false);
      if (op.r[1] != kNone) fn(false, op.r[1], 1.0, false);
      break;
    case TapeOp::Kind::Transconductance:
      if (op.m[0] != kNone) fn(true, op.m[0], 1.0, false);
      if (op.m[1] != kNone) fn(true, op.m[1], -1.0, false);
      if (op.m[2] != kNone) fn(true, op.m[2], -1.0, false);
      if (op.m[3] != kNone) fn(true, op.m[3], 1.0, false);
      break;
    case TapeOp::Kind::VoltageBranch:
      if (op.m[0] != kNone) fn(true, op.m[0], 1.0, true);
      if (op.m[1] != kNone) fn(true, op.m[1], -1.0, true);
      if (op.m[2] != kNone) fn(true, op.m[2], 1.0, true);
      if (op.m[3] != kNone) fn(true, op.m[3], -1.0, true);
      fn(false, op.r[0], 1.0, false);  // the branch row always exists
      break;
    case TapeOp::Kind::Matrix:
      if (op.m[0] != kNone) fn(true, op.m[0], 1.0, false);
      break;
    case TapeOp::Kind::Rhs:
      if (op.r[0] != kNone) fn(false, op.r[0], 1.0, false);
      break;
  }
}

}  // namespace

struct ShardedAssembler::Shard {
  /// One evaluation-schedule entry: a run of same-batch-key devices
  /// (batched) or of key-less devices stamped one by one (scalar).
  struct Group {
    std::vector<uint32_t> devices;  ///< circuit device indices, ascending
    bool batched = false;
  };
  /// Target of one scratch slot, flushed during the serial reduction.
  struct Slot {
    uint32_t target = 0;
    uint8_t is_matrix = 0;
  };

  std::vector<Group> groups;
  std::vector<TapeWrite> direct;  ///< targets owned by this shard alone
  std::vector<TapeWrite> border;  ///< contested targets, via slots
  std::vector<Slot> slots;
  std::vector<double> slot_values;
  size_t bypassed = 0;
  size_t batched = 0;
};

struct ShardedAssembler::Plan {
  std::vector<Shard> shards;
};

ShardedAssembler::ShardedAssembler(ShardedAssemblyConfig config) : config_(std::move(config)) {}

ShardedAssembler::~ShardedAssembler() = default;

ShardedAssembler::Plan& ShardedAssembler::planFor(IntegrationMethod method) {
  std::unique_ptr<Plan>& plan = method == IntegrationMethod::None ? plan_dc_ : plan_tran_;
  if (plan == nullptr) plan = std::make_unique<Plan>();
  return *plan;
}

void ShardedAssembler::invalidate() {
  tape_dc_.reset();
  tape_tran_.reset();
  plan_dc_.reset();
  plan_tran_.reset();
}

void ShardedAssembler::buildPlan(Plan& plan, const AssemblyTape& tape, const MnaSystem& system,
                                 const Circuit& circuit) const {
  const auto& devices = circuit.devices();
  const size_t n_dev = devices.size();

  // Shard assignment from the labels (negative labels hash-distribute),
  // round-robin without them. Never depends on the thread count.
  const std::vector<int32_t>* labels = config_.device_shard.get();
  int num_shards = config_.num_shards;
  if (labels != nullptr) {
    if (labels->size() != n_dev) {
      throw InvalidInputError("ShardedAssembler: device_shard has " +
                              std::to_string(labels->size()) + " labels for " +
                              std::to_string(n_dev) + " devices");
    }
    int32_t max_label = -1;
    for (const int32_t l : *labels) max_label = std::max(max_label, l);
    if (num_shards <= 0) num_shards = static_cast<int>(max_label) + 1;
    if (max_label >= num_shards) {
      throw InvalidInputError("ShardedAssembler: shard label " + std::to_string(max_label) +
                              " out of range for " + std::to_string(num_shards) + " shards");
    }
  }
  if (num_shards <= 0) {
    num_shards = static_cast<int>(std::clamp<size_t>(n_dev / 64, size_t{1}, size_t{64}));
  }

  std::vector<uint32_t> shard_of(n_dev);
  for (size_t d = 0; d < n_dev; ++d) {
    const int32_t label = labels != nullptr ? (*labels)[d] : -1;
    shard_of[d] = label >= 0 ? static_cast<uint32_t>(label)
                             : static_cast<uint32_t>(d % static_cast<size_t>(num_shards));
  }

  plan.shards.assign(static_cast<size_t>(num_shards), Shard{});

  // Evaluation schedule: same-key devices of a shard share one batched
  // group (first-appearance order); key-less devices coalesce into
  // scalar runs. Device order within every group stays ascending.
  std::vector<std::unordered_map<const void*, size_t>> group_of(plan.shards.size());
  for (size_t d = 0; d < n_dev; ++d) {
    Shard& shard = plan.shards[shard_of[d]];
    const void* key = devices[d]->deviceBatchKey();
    if (key == nullptr) {
      if (shard.groups.empty() || shard.groups.back().batched) {
        shard.groups.push_back({{}, false});
      }
      shard.groups.back().devices.push_back(static_cast<uint32_t>(d));
      continue;
    }
    auto [it, inserted] = group_of[shard_of[d]].try_emplace(key, shard.groups.size());
    if (inserted) shard.groups.push_back({{}, true});
    shard.groups[it->second].devices.push_back(static_cast<uint32_t>(d));
  }

  // Ownership claim: a matrix entry / RHS row written by exactly one
  // shard is written directly in the parallel apply pass; anything
  // contested goes through per-shard scratch slots.
  constexpr uint32_t kUnclaimed = 0xffffffffu;
  constexpr uint32_t kContested = 0xfffffffeu;
  std::vector<uint32_t> matrix_owner(system.matrix().nonZeros(), kUnclaimed);
  std::vector<uint32_t> rhs_owner(system.size(), kUnclaimed);
  for (size_t d = 0; d < n_dev; ++d) {
    const AssemblyTape::Span& sp = tape.span(d);
    for (uint32_t i = sp.op_begin; i < sp.op_end; ++i) {
      forEachTapeWrite(tape.op(i), [&](bool is_matrix, uint32_t target, double, bool) {
        uint32_t& owner = is_matrix ? matrix_owner[target] : rhs_owner[target];
        if (owner == kUnclaimed) {
          owner = shard_of[d];
        } else if (owner != shard_of[d]) {
          owner = kContested;
        }
      });
    }
  }

  std::vector<std::unordered_map<uint64_t, uint32_t>> slot_of(plan.shards.size());
  for (size_t d = 0; d < n_dev; ++d) {
    const uint32_t s = shard_of[d];
    Shard& shard = plan.shards[s];
    const AssemblyTape::Span& sp = tape.span(d);
    for (uint32_t i = sp.op_begin; i < sp.op_end; ++i) {
      forEachTapeWrite(tape.op(i), [&](bool is_matrix, uint32_t target, double coeff,
                                       bool is_const) {
        TapeWrite w;
        w.op = i;
        w.target = target;
        w.coeff = coeff;
        w.is_matrix = is_matrix ? 1 : 0;
        w.is_const = is_const ? 1 : 0;
        if ((is_matrix ? matrix_owner[target] : rhs_owner[target]) == s) {
          shard.direct.push_back(w);
          return;
        }
        const uint64_t slot_key = (uint64_t{is_matrix} << 32) | target;
        auto [it, inserted] = slot_of[s].try_emplace(slot_key,
                                                     static_cast<uint32_t>(shard.slots.size()));
        if (inserted) shard.slots.push_back({target, w.is_matrix});
        w.target = it->second;
        shard.border.push_back(w);
      });
    }
  }
  for (Shard& shard : plan.shards) shard.slot_values.assign(shard.slots.size(), 0.0);
}

void ShardedAssembler::evalShard(Shard& shard, AssemblyTape& tape, MnaSystem& system,
                                 const Circuit& circuit, const EvalContext& ctx,
                                 const AssemblyOptions& options, int width) const {
  shard.bypassed = 0;
  shard.batched = 0;
  const bool bypass_active = options.enable_bypass && options.allow_bypass_now;
  const bool track_voltages = options.enable_bypass;
  const auto& devices = circuit.devices();

  // Capture mode: scalars land in the tape's per-device op spans —
  // disjoint across shards, so concurrent evaluation is race-free.
  Stamper stamper(system);
  stamper.startCapture(tape);

  Device* batch[kMaxLanes];
  uint32_t op_begin[kMaxLanes];
  uint32_t op_end[kMaxLanes];
  size_t pending = 0;
  const auto flush = [&]() {
    if (pending == 0) return;
    batch[0]->stampDeviceBatch({batch, pending}, {op_begin, pending}, {op_end, pending}, stamper,
                               ctx);
    shard.batched += pending;
    pending = 0;
  };

  for (const Shard::Group& group : shard.groups) {
    for (const uint32_t di : group.devices) {
      Device& dev = *devices[di];
      const AssemblyTape::Span& sp = tape.span(di);
      if (bypass_active && dev.supportsBypass() &&
          terminalsQuiet(dev, tape, sp, ctx, options.bypass_tol)) {
        // The apply pass re-applies the stored op values — exactly the
        // serial replayStored semantics, voltage snapshot untouched.
        ++shard.bypassed;
        continue;
      }
      if (track_voltages) {
        for (uint32_t t = 0, k = sp.volt_begin; k < sp.volt_end; ++t, ++k) {
          tape.setVLast(k, ctx.v(dev.terminalNode(t)));
        }
      }
      if (!group.batched) {
        stamper.seek(sp.op_begin);
        dev.stamp(stamper, ctx);
        if (stamper.cursor() != sp.op_end) staleSequence(dev);
        continue;
      }
      batch[pending] = &dev;
      op_begin[pending] = sp.op_begin;
      op_end[pending] = sp.op_end;
      if (++pending == static_cast<size_t>(width)) flush();
    }
    flush();  // scalar tail of a batched group; no-op after scalar runs
  }
}

void ShardedAssembler::applyShard(Shard& shard, const AssemblyTape& tape, MnaSystem& system) {
  SparseMatrix& matrix = system.matrix();
  std::vector<double>& rhs = system.rhs();
  for (const TapeWrite& w : shard.direct) {
    const double v = w.is_const ? w.coeff : w.coeff * tape.opValue(w.op);
    if (w.is_matrix) {
      matrix.addAt(w.target, v);
    } else {
      rhs[w.target] += v;
    }
  }
  std::fill(shard.slot_values.begin(), shard.slot_values.end(), 0.0);
  for (const TapeWrite& w : shard.border) {
    shard.slot_values[w.target] += w.is_const ? w.coeff : w.coeff * tape.opValue(w.op);
  }
}

void ShardedAssembler::assemble(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx,
                                const AssemblyOptions& options) {
  system.clear();
  AssemblyTape& tape = tapeFor(ctx.method);
  const auto& devices = circuit.devices();
  SparseMatrix& matrix = system.matrix();

  if (!tape.matches(&system, circuit.revision(), devices.size())) {
    // Record serially (write-through, like the serial Assembler), then
    // derive the shard plan for every later replay.
    ++recordings_;
    Stamper stamper(system);
    recordTape(tape, stamper, system, circuit, ctx);
    Plan& plan = planFor(ctx.method);
    buildPlan(plan, tape, system, circuit);
    last_shard_count_ = plan.shards.size();
    for (const size_t h : tape.gminHandles()) matrix.addAt(h, ctx.gmin);
    return;
  }

  ++replays_;
  Plan& plan = planFor(ctx.method);
  const int width = std::clamp(config_.device_batch_width, 1, static_cast<int>(kMaxLanes));
  ParallelOptions popt;
  popt.num_threads = config_.num_threads;
  popt.chunk = 1;  // one shard per work item; shards are coarse already

  // Phase 1 — model evaluation (the expensive region, timed for the
  // bench's phase attribution): capture every non-bypassed device's
  // scalars into the tape, batched groups K devices per lane-kernel
  // pass.
  const auto t0 = std::chrono::steady_clock::now();
  parallelForChunked(
      plan.shards.size(),
      [&](size_t s) { evalShard(plan.shards[s], tape, system, circuit, ctx, options, width); },
      popt);
  model_eval_sec_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();

  // Phase 2 — parallel apply: shard-owned targets are written
  // concurrently (disjoint by construction), contested border targets
  // accumulate into per-shard scratch.
  parallelForChunked(
      plan.shards.size(), [&](size_t s) { applyShard(plan.shards[s], tape, system); }, popt);

  // Phase 3 — serial reduction in fixed shard order, so contested
  // targets accumulate bit-identically for every thread count.
  std::vector<double>& rhs = system.rhs();
  for (Shard& shard : plan.shards) {
    for (size_t k = 0; k < shard.slots.size(); ++k) {
      if (shard.slots[k].is_matrix) {
        matrix.addAt(shard.slots[k].target, shard.slot_values[k]);
      } else {
        rhs[shard.slots[k].target] += shard.slot_values[k];
      }
    }
    bypassed_ += shard.bypassed;
    batched_ += shard.batched;
  }
  for (const size_t h : tape.gminHandles()) matrix.addAt(h, ctx.gmin);
}

}  // namespace vls
