#include "circuit/assembly.hpp"

#include <cmath>

#include "base/error.hpp"

namespace vls {

void Assembler::invalidate() {
  tape_dc_.reset();
  tape_tran_.reset();
}

void Assembler::assemble(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx,
                         const AssemblyOptions& options) {
  system.clear();
  AssemblyTape& tape = tapeFor(ctx.method);
  const auto& devices = circuit.devices();
  Stamper stamper(system);

  if (!tape.matches(&system, circuit.revision(), devices.size())) {
    // Record: resolve every handle once for this topology + mode.
    ++recordings_;
    tape.beginRecording(&system, circuit.revision());
    stamper.startRecording(tape);
    for (const auto& dev : devices) {
      tape.beginDevice();
      dev->stamp(stamper, ctx);
      for (size_t t = 0; t < dev->terminalCount(); ++t) {
        tape.recordTerminalVoltage(ctx.v(dev->terminalNode(t)));
      }
      tape.endDevice();
    }
    tape.finishRecording(system.matrix(), system.numNodes());
  } else {
    ++replays_;
    stamper.startReplay(tape);
    const bool bypass_active = options.enable_bypass && options.allow_bypass_now;
    // Terminal-voltage tracking is bypass bookkeeping. While bypass is
    // disabled the snapshots are left stale — harmless, because the
    // forced full evaluations at the start of every bypass-enabled
    // Newton solve refresh them before any bypass decision is taken.
    const bool track_voltages = options.enable_bypass;
    for (size_t i = 0; i < devices.size(); ++i) {
      Device& dev = *devices[i];
      const AssemblyTape::Span& sp = tape.span(i);
      if (bypass_active && dev.supportsBypass()) {
        bool unchanged = true;
        for (uint32_t t = 0, k = sp.volt_begin; k < sp.volt_end; ++t, ++k) {
          if (std::fabs(ctx.v(dev.terminalNode(t)) - tape.vLast(k)) > options.bypass_tol) {
            unchanged = false;
            break;
          }
        }
        if (unchanged) {
          ++bypassed_;
          tape.replayStored(i, system.matrix(), system.rhs());
          continue;
        }
      }
      stamper.seek(sp.op_begin);
      dev.stamp(stamper, ctx);
      if (stamper.cursor() != sp.op_end) {
        throw Error("Assembler: device '" + dev.name() +
                    "' changed its stamp sequence without a topology revision bump");
      }
      if (track_voltages) {
        for (uint32_t t = 0, k = sp.volt_begin; k < sp.volt_end; ++t, ++k) {
          tape.setVLast(k, ctx.v(dev.terminalNode(t)));
        }
      }
    }
  }

  // gmin from every node to ground, through the cached diagonal
  // handles: keeps floating nodes solvable and Newton matrices
  // nonsingular in cutoff.
  SparseMatrix& matrix = system.matrix();
  for (const size_t h : tape.gminHandles()) matrix.addAt(h, ctx.gmin);
}

void assembleDirect(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx) {
  system.clear();
  Stamper stamper(system);
  for (const auto& dev : circuit.devices()) dev->stamp(stamper, ctx);
  for (size_t n = 0; n < system.numNodes(); ++n) {
    system.matrix().add(n, n, ctx.gmin);
  }
}

}  // namespace vls
