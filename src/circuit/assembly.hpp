// Stamp-tape assembly engine. The Assembler owns one AssemblyTape per
// analysis mode (DC vs transient — the two modes stamp different call
// sequences) for a (circuit, MnaSystem) pairing. The first assembly of
// a given topology records every device's resolved entry handles; every
// later assembly replays through those handles with zero hashing, and
// — when bypass is enabled — devices whose terminal voltages are
// unchanged since their last linearization replay their stored values
// without re-evaluating the model at all.
//
// The ShardedAssembler parallelizes the replay path: the tape is split
// into per-shard device sets (island partition labels when available,
// hash fallback otherwise), each shard's devices are linearized on
// parallelForChunked workers in Stamper Capture mode (values land in
// the tape, nothing touches the shared matrix), and the captured
// values are applied through pre-flattened write lists — targets owned
// by exactly one shard are written concurrently, contested border
// targets accumulate into per-shard scratch reduced serially in shard
// order. Results are bit-identical across every thread count.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/mna.hpp"

namespace vls {

struct AssemblyOptions {
  /// Master switch for SPICE-style device bypass (see Device::supportsBypass).
  bool enable_bypass = false;
  /// Max terminal-voltage move [V] since the last linearization for a
  /// device to qualify for bypass.
  double bypass_tol = 1e-7;
  /// Caller-side gate: the Newton loop forces full re-evaluation on the
  /// first iterations of every solve (fresh dt / charge histories /
  /// post-breakpoint state), then sets this true.
  bool allow_bypass_now = false;
};

class Assembler {
 public:
  /// Assemble `circuit` linearized at `ctx` into `system`. Records a
  /// fresh tape when the topology revision, target system, or analysis
  /// mode changed; replays otherwise. The per-node gmin diagonal is
  /// routed through cached handles in both cases.
  void assemble(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx,
                const AssemblyOptions& options = {});

  /// Drop all recorded tapes (next assemble re-records).
  void invalidate();

  // Introspection for tests and benchmarks.
  size_t recordings() const { return recordings_; }
  size_t replays() const { return replays_; }
  size_t bypassedEvaluations() const { return bypassed_; }

 private:
  AssemblyTape& tapeFor(IntegrationMethod method) {
    return method == IntegrationMethod::None ? tape_dc_ : tape_tran_;
  }

  AssemblyTape tape_dc_;    ///< OP / DC sweep / gmin- and source-stepping
  AssemblyTape tape_tran_;  ///< BE and trapezoidal (identical stamp sequences)
  size_t recordings_ = 0;
  size_t replays_ = 0;
  size_t bypassed_ = 0;
};

/// One-shot hashed assembly — the reference implementation the tape is
/// tested against bit-for-bit, and the right tool for systems assembled
/// once (AC/noise linearization).
void assembleDirect(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx);

/// Configuration of the parallel sharded assembler.
struct ShardedAssemblyConfig {
  /// Per-device shard labels (e.g. fabric island tags). Devices with a
  /// negative label, and all devices when the vector is null, are
  /// hash-distributed round-robin across the shards. Length must match
  /// the circuit's device count when set.
  std::shared_ptr<const std::vector<int32_t>> device_shard;
  /// Shard count. With labels, 0 means max(label)+1; without labels,
  /// 0 derives one shard per ~64 devices (clamped to [1, 64]). Shard
  /// composition never depends on the thread count.
  int num_shards = 0;
  /// Worker threads for the evaluate/apply regions; 0 = the
  /// VLS_THREADS pool width (parallelThreadCount()).
  int num_threads = 0;
  /// Devices per batched model evaluation, clamped to [1, kMaxLanes].
  /// Width 1 still runs every batchable device through the same
  /// elementwise lane kernels one at a time, so assembled values are
  /// bit-identical for every width.
  int device_batch_width = 8;
};

/// Parallel replacement for Assembler::assemble with identical
/// observable semantics on the tape protocol (recording, revision
/// invalidation, divergence detection, gmin handles, bypass) — see the
/// file header for the evaluate/apply/reduce structure. Model
/// evaluation of grouped same-key devices (Device::deviceBatchKey) goes
/// K-wide through Device::stampDeviceBatch.
class ShardedAssembler {
 public:
  explicit ShardedAssembler(ShardedAssemblyConfig config = {});
  ~ShardedAssembler();

  /// Parallel analogue of Assembler::assemble. Records serially (and
  /// builds the shard plan) when the topology revision, target system,
  /// or analysis mode changed; replays sharded otherwise.
  void assemble(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx,
                const AssemblyOptions& options = {});

  /// Drop all recorded tapes and plans (next assemble re-records).
  void invalidate();

  // Introspection for tests and benchmarks.
  size_t recordings() const { return recordings_; }
  size_t replays() const { return replays_; }
  size_t bypassedEvaluations() const { return bypassed_; }
  /// Devices evaluated through stampDeviceBatch (any batch width).
  size_t batchedEvaluations() const { return batched_; }
  /// Shards of the most recently built plan.
  size_t shardCount() const { return last_shard_count_; }
  /// Cumulative wall time of the model-evaluation region across all
  /// replays — the phase-attribution number the bench reports.
  double modelEvalSeconds() const { return model_eval_sec_; }

 private:
  struct Shard;
  struct Plan;

  AssemblyTape& tapeFor(IntegrationMethod method) {
    return method == IntegrationMethod::None ? tape_dc_ : tape_tran_;
  }
  Plan& planFor(IntegrationMethod method);

  void buildPlan(Plan& plan, const AssemblyTape& tape, const MnaSystem& system,
                 const Circuit& circuit) const;
  void evalShard(Shard& shard, AssemblyTape& tape, MnaSystem& system, const Circuit& circuit,
                 const EvalContext& ctx, const AssemblyOptions& options, int width) const;
  static void applyShard(Shard& shard, const AssemblyTape& tape, MnaSystem& system);

  ShardedAssemblyConfig config_;
  AssemblyTape tape_dc_;
  AssemblyTape tape_tran_;
  std::unique_ptr<Plan> plan_dc_;
  std::unique_ptr<Plan> plan_tran_;
  size_t recordings_ = 0;
  size_t replays_ = 0;
  size_t bypassed_ = 0;
  size_t batched_ = 0;
  size_t last_shard_count_ = 0;
  double model_eval_sec_ = 0.0;
};

}  // namespace vls
