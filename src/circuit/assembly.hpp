// Stamp-tape assembly engine. The Assembler owns one AssemblyTape per
// analysis mode (DC vs transient — the two modes stamp different call
// sequences) for a (circuit, MnaSystem) pairing. The first assembly of
// a given topology records every device's resolved entry handles; every
// later assembly replays through those handles with zero hashing, and
// — when bypass is enabled — devices whose terminal voltages are
// unchanged since their last linearization replay their stored values
// without re-evaluating the model at all.
#pragma once

#include "circuit/circuit.hpp"
#include "circuit/mna.hpp"

namespace vls {

struct AssemblyOptions {
  /// Master switch for SPICE-style device bypass (see Device::supportsBypass).
  bool enable_bypass = false;
  /// Max terminal-voltage move [V] since the last linearization for a
  /// device to qualify for bypass.
  double bypass_tol = 1e-7;
  /// Caller-side gate: the Newton loop forces full re-evaluation on the
  /// first iterations of every solve (fresh dt / charge histories /
  /// post-breakpoint state), then sets this true.
  bool allow_bypass_now = false;
};

class Assembler {
 public:
  /// Assemble `circuit` linearized at `ctx` into `system`. Records a
  /// fresh tape when the topology revision, target system, or analysis
  /// mode changed; replays otherwise. The per-node gmin diagonal is
  /// routed through cached handles in both cases.
  void assemble(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx,
                const AssemblyOptions& options = {});

  /// Drop all recorded tapes (next assemble re-records).
  void invalidate();

  // Introspection for tests and benchmarks.
  size_t recordings() const { return recordings_; }
  size_t replays() const { return replays_; }
  size_t bypassedEvaluations() const { return bypassed_; }

 private:
  AssemblyTape& tapeFor(IntegrationMethod method) {
    return method == IntegrationMethod::None ? tape_dc_ : tape_tran_;
  }

  AssemblyTape tape_dc_;    ///< OP / DC sweep / gmin- and source-stepping
  AssemblyTape tape_tran_;  ///< BE and trapezoidal (identical stamp sequences)
  size_t recordings_ = 0;
  size_t replays_ = 0;
  size_t bypassed_ = 0;
};

/// One-shot hashed assembly — the reference implementation the tape is
/// tested against bit-for-bit, and the right tool for systems assembled
/// once (AC/noise linearization).
void assembleDirect(MnaSystem& system, const Circuit& circuit, const EvalContext& ctx);

}  // namespace vls
