// Error hierarchy for the simulator. Exceptions are used for
// unrecoverable user errors (malformed netlists, singular systems,
// convergence failure); printf-style formatting keeps call sites short.
#pragma once

#include <stdexcept>
#include <string>

namespace vls {

/// Base class of all simulator errors.
class Error : public std::runtime_error {
 public:
  explicit Error(std::string message) : std::runtime_error(std::move(message)) {}
};

/// Malformed input: bad netlist text, invalid parameter, unknown node.
class InvalidInputError : public Error {
 public:
  using Error::Error;
};

/// Numerical failure: singular matrix, NaN in the solution vector.
class NumericalError : public Error {
 public:
  using Error::Error;
};

/// Newton iteration or timestep control failed to converge.
class ConvergenceError : public Error {
 public:
  using Error::Error;
};

/// printf-style message formatter for exception construction.
std::string formatMessage(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace vls
