// Cooperative job control: a cancellation token plus a monotonic
// wall-clock deadline shared by every long-running engine. The handle
// is checked at the natural progress boundaries of the stack — each
// parallelForChunked chunk dispatch, the top of both Newton iteration
// loops (scalar Simulator and EnsembleSimulator), each transient
// time step, and every RecoveryEngine ladder stage — so a cancel()
// or an expired deadline stops a run within one Newton iteration and
// surfaces as a structured JobInterrupted diagnostic rather than a
// hang or a generic throw.
//
// JobInterrupted deliberately derives from std::runtime_error, NOT
// from vls::Error: the degrade-don't-abort handlers in the analysis
// engines catch `const Error&` to isolate per-unit solver failures,
// and an interruption must never be classified as one — it has to
// propagate straight through the retry ladders and the parallel-for
// first-exception-wins machinery to the job's caller.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <stdexcept>
#include <string>

namespace vls {

enum class JobInterruptReason : uint8_t {
  Cancelled,        ///< JobControl::cancel() was called
  DeadlineExpired,  ///< the monotonic deadline passed
};

const char* jobInterruptReasonName(JobInterruptReason reason);

/// Structured interruption diagnostic: which cancellation point fired
/// (stage), where the simulation was (sim time), and how long the job
/// had been running (elapsed wall clock).
class JobInterrupted : public std::runtime_error {
 public:
  JobInterrupted(JobInterruptReason reason, std::string stage, double sim_time,
                 double elapsed_sec);

  JobInterruptReason reason() const { return reason_; }
  /// Cancellation point that observed the interrupt: "newton",
  /// "transient", "recovery:<stage>", "parallel-for", ...
  const std::string& stage() const { return stage_; }
  /// Simulation time at the cancellation point [s] (0 outside a run).
  double simTime() const { return sim_time_; }
  /// Wall-clock seconds since the JobControl was created.
  double elapsedSeconds() const { return elapsed_sec_; }

 private:
  JobInterruptReason reason_;
  std::string stage_;
  double sim_time_;
  double elapsed_sec_;
};

/// Shared cancellation token + deadline. Thread-safe: cancel() and the
/// check methods may race freely (release/acquire on one atomic word);
/// setDeadline / cancelAfterUnits are configuration and must happen
/// before the job is handed to workers.
class JobControl {
 public:
  JobControl();

  /// Request cooperative cancellation (idempotent, thread-safe).
  void cancel() { cancelled_.store(true, std::memory_order_release); }

  /// Arm a wall-clock budget, measured from now (monotonic clock).
  void setDeadline(double seconds_from_now);

  /// Deterministic-interruption hook for tests and checkpoint drills:
  /// after `units` unitDone() notifications the job auto-cancels. The
  /// engines call unitDone() once per completed work unit (Monte-Carlo
  /// sample, characterization batch), so a "kill at watermark W" run
  /// is reproducible without wall-clock races. 0 disarms.
  void cancelAfterUnits(uint64_t units);

  /// Progress notification from the engines (see cancelAfterUnits).
  void unitDone(uint64_t count = 1);

  bool cancelled() const { return cancelled_.load(std::memory_order_acquire); }
  bool deadlineExpired() const;
  bool interrupted() const { return cancelled() || deadlineExpired(); }

  /// Wall-clock seconds since construction.
  double elapsedSeconds() const;

  /// Throws JobInterrupted when cancelled or past the deadline; the
  /// single call every cancellation point makes.
  void throwIfInterrupted(const char* stage, double sim_time = 0.0) const;

 private:
  std::atomic<bool> cancelled_{false};
  std::atomic<uint64_t> units_done_{0};
  uint64_t cancel_after_units_ = 0;  ///< 0 = disarmed
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point start_;
  std::chrono::steady_clock::time_point deadline_{};
};

}  // namespace vls
