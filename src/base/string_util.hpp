// Small string helpers shared by the netlist parser and table printers.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace vls {

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view text);

/// Lower-case copy (ASCII only — netlists are ASCII).
std::string toLower(std::string_view text);

/// Upper-case copy (ASCII only).
std::string toUpper(std::string_view text);

/// Split on any of the given delimiter characters, dropping empty fields.
std::vector<std::string> splitFields(std::string_view text, std::string_view delims = " \t");

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// True if `text` starts with `prefix`, case-insensitively.
bool istartsWith(std::string_view text, std::string_view prefix);

/// Parse a SPICE-style number with an optional engineering suffix
/// (f p n u m k meg g t, and an ignored trailing unit like "15pF").
/// Returns nullopt on malformed input.
std::optional<double> parseSpiceNumber(std::string_view text);

}  // namespace vls
