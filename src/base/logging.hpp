// Minimal leveled logger. The simulator is a library, so logging is
// opt-in: default level is Warn and output goes to stderr. Benches and
// examples raise the level for progress reporting.
#pragma once

#include <string>

namespace vls {

enum class LogLevel { Trace, Debug, Info, Warn, Error, Off };

/// Set the global log threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one message at the given level (no newline needed).
void logMessage(LogLevel level, const std::string& message);

/// printf-style convenience wrappers.
void logf(LogLevel level, const char* fmt, ...) __attribute__((format(printf, 2, 3)));

}  // namespace vls

#define VLS_LOG_DEBUG(...) ::vls::logf(::vls::LogLevel::Debug, __VA_ARGS__)
#define VLS_LOG_INFO(...) ::vls::logf(::vls::LogLevel::Info, __VA_ARGS__)
#define VLS_LOG_WARN(...) ::vls::logf(::vls::LogLevel::Warn, __VA_ARGS__)
#define VLS_LOG_ERROR(...) ::vls::logf(::vls::LogLevel::Error, __VA_ARGS__)
