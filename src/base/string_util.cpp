#include "base/string_util.hpp"

#include <cctype>
#include <cstdlib>

namespace vls {

std::string_view trim(std::string_view text) {
  size_t begin = 0;
  size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string toLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string toUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

std::vector<std::string> splitFields(std::string_view text, std::string_view delims) {
  std::vector<std::string> fields;
  size_t pos = 0;
  while (pos < text.size()) {
    const size_t start = text.find_first_not_of(delims, pos);
    if (start == std::string_view::npos) break;
    size_t end = text.find_first_of(delims, start);
    if (end == std::string_view::npos) end = text.size();
    fields.emplace_back(text.substr(start, end - start));
    pos = end;
  }
  return fields;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

bool istartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && iequals(text.substr(0, prefix.size()), prefix);
}

std::optional<double> parseSpiceNumber(std::string_view text) {
  text = trim(text);
  if (text.empty()) return std::nullopt;
  std::string buf(text);
  char* endp = nullptr;
  const double base = std::strtod(buf.c_str(), &endp);
  if (endp == buf.c_str()) return std::nullopt;
  std::string_view suffix = trim(std::string_view(endp));
  if (suffix.empty()) return base;

  // Engineering suffixes; "meg" must be checked before "m".
  struct Suffix {
    std::string_view name;
    double scale;
  };
  static constexpr Suffix kSuffixes[] = {
      {"meg", 1e6}, {"t", 1e12}, {"g", 1e9}, {"k", 1e3},  {"m", 1e-3},
      {"u", 1e-6},  {"n", 1e-9}, {"p", 1e-12}, {"f", 1e-15},
  };
  for (const auto& s : kSuffixes) {
    if (istartsWith(suffix, s.name)) {
      // Anything after the scale factor is a unit ("pF", "nS") — it must
      // be purely alphabetic to be ignored.
      std::string_view rest = suffix.substr(s.name.size());
      for (char c : rest) {
        if (!std::isalpha(static_cast<unsigned char>(c))) return std::nullopt;
      }
      return base * s.scale;
    }
  }
  // A bare unit like "V" or "A" is allowed too.
  for (char c : suffix) {
    if (!std::isalpha(static_cast<unsigned char>(c))) return std::nullopt;
  }
  return base;
}

}  // namespace vls
