#include "base/logging.hpp"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <vector>

namespace vls {
namespace {

std::atomic<LogLevel> g_level{LogLevel::Warn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::Trace: return "TRACE";
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logMessage(LogLevel level, const std::string& message) {
  if (level < g_level.load() || level == LogLevel::Off) return;
  std::fprintf(stderr, "[%s] %s\n", levelName(level), message.c_str());
}

void logf(LogLevel level, const char* fmt, ...) {
  if (level < g_level.load() || level == LogLevel::Off) return;
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return;
  }
  std::vector<char> buf(static_cast<size_t>(needed) + 1);
  std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
  va_end(args_copy);
  logMessage(level, std::string(buf.data(), static_cast<size_t>(needed)));
}

}  // namespace vls
