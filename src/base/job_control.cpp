#include "base/job_control.hpp"

#include <sstream>

namespace vls {

const char* jobInterruptReasonName(JobInterruptReason reason) {
  switch (reason) {
    case JobInterruptReason::Cancelled: return "cancelled";
    case JobInterruptReason::DeadlineExpired: return "deadline-expired";
  }
  return "unknown";
}

namespace {

std::string formatInterrupt(JobInterruptReason reason, const std::string& stage,
                            double sim_time, double elapsed_sec) {
  std::ostringstream os;
  os << "job " << jobInterruptReasonName(reason) << " at stage '" << stage << "'";
  if (sim_time > 0.0) os << ", sim time " << sim_time << " s";
  os << ", elapsed " << elapsed_sec << " s";
  return os.str();
}

}  // namespace

JobInterrupted::JobInterrupted(JobInterruptReason reason, std::string stage,
                               double sim_time, double elapsed_sec)
    : std::runtime_error(formatInterrupt(reason, stage, sim_time, elapsed_sec)),
      reason_(reason),
      stage_(std::move(stage)),
      sim_time_(sim_time),
      elapsed_sec_(elapsed_sec) {}

JobControl::JobControl() : start_(std::chrono::steady_clock::now()) {}

void JobControl::setDeadline(double seconds_from_now) {
  deadline_ = std::chrono::steady_clock::now() +
              std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                  std::chrono::duration<double>(seconds_from_now));
  has_deadline_ = true;
}

void JobControl::cancelAfterUnits(uint64_t units) { cancel_after_units_ = units; }

void JobControl::unitDone(uint64_t count) {
  const uint64_t done = units_done_.fetch_add(count, std::memory_order_acq_rel) + count;
  if (cancel_after_units_ != 0 && done >= cancel_after_units_) cancel();
}

bool JobControl::deadlineExpired() const {
  return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
}

double JobControl::elapsedSeconds() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

void JobControl::throwIfInterrupted(const char* stage, double sim_time) const {
  if (cancelled()) {
    throw JobInterrupted(JobInterruptReason::Cancelled, stage, sim_time, elapsedSeconds());
  }
  if (deadlineExpired()) {
    throw JobInterrupted(JobInterruptReason::DeadlineExpired, stage, sim_time,
                         elapsedSeconds());
  }
}

}  // namespace vls
