// Physical constants and SI-scaled unit helpers used throughout the
// simulator. All internal quantities are plain SI (volts, amperes,
// seconds, farads, metres); these helpers exist so that source code can
// say `0.8_V` or `1.0_fF` instead of raw exponents.
#pragma once

namespace vls {

/// Boltzmann constant [J/K].
inline constexpr double kBoltzmann = 1.380649e-23;
/// Elementary charge [C].
inline constexpr double kElementaryCharge = 1.602176634e-19;
/// Absolute zero offset: T[K] = T[degC] + kCelsiusToKelvin.
inline constexpr double kCelsiusToKelvin = 273.15;
/// Vacuum permittivity [F/m].
inline constexpr double kEpsilon0 = 8.8541878128e-12;
/// Relative permittivity of SiO2.
inline constexpr double kEpsSiO2 = 3.9;
/// Relative permittivity of silicon.
inline constexpr double kEpsSi = 11.7;

/// Thermal voltage kT/q [V] at the given temperature [K].
inline constexpr double thermalVoltage(double temp_kelvin) {
  return kBoltzmann * temp_kelvin / kElementaryCharge;
}

/// Convert degrees Celsius to Kelvin.
inline constexpr double celsiusToKelvin(double temp_celsius) {
  return temp_celsius + kCelsiusToKelvin;
}

namespace literals {

// Voltage / current / time / capacitance / length literals.
inline constexpr double operator""_V(long double v) { return static_cast<double>(v); }
inline constexpr double operator""_mV(long double v) { return static_cast<double>(v) * 1e-3; }
inline constexpr double operator""_uA(long double v) { return static_cast<double>(v) * 1e-6; }
inline constexpr double operator""_nA(long double v) { return static_cast<double>(v) * 1e-9; }
inline constexpr double operator""_s(long double v) { return static_cast<double>(v); }
inline constexpr double operator""_ns(long double v) { return static_cast<double>(v) * 1e-9; }
inline constexpr double operator""_ps(long double v) { return static_cast<double>(v) * 1e-12; }
inline constexpr double operator""_fF(long double v) { return static_cast<double>(v) * 1e-15; }
inline constexpr double operator""_pF(long double v) { return static_cast<double>(v) * 1e-12; }
inline constexpr double operator""_um(long double v) { return static_cast<double>(v) * 1e-6; }
inline constexpr double operator""_nm(long double v) { return static_cast<double>(v) * 1e-9; }
inline constexpr double operator""_kOhm(long double v) { return static_cast<double>(v) * 1e3; }

inline constexpr double operator""_V(unsigned long long v) { return static_cast<double>(v); }
inline constexpr double operator""_ns(unsigned long long v) { return static_cast<double>(v) * 1e-9; }
inline constexpr double operator""_ps(unsigned long long v) { return static_cast<double>(v) * 1e-12; }
inline constexpr double operator""_fF(unsigned long long v) { return static_cast<double>(v) * 1e-15; }
inline constexpr double operator""_um(unsigned long long v) { return static_cast<double>(v) * 1e-6; }
inline constexpr double operator""_nm(unsigned long long v) { return static_cast<double>(v) * 1e-9; }

}  // namespace literals

}  // namespace vls
