#include "base/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <new>
#include <thread>
#include <vector>

#include "base/job_control.hpp"
#include "base/logging.hpp"

namespace vls {

namespace {

thread_local bool tl_in_parallel_region = false;

/// One worker's remaining index range over the current super-block,
/// packed {begin:32, end:32} so pop-front (owner) and steal-back
/// (thief) are each a single CAS. Padded to a cache line so deques of
/// adjacent workers never false-share.
struct alignas(64) WorkerRange {
  std::atomic<uint64_t> range{0};
};

constexpr uint64_t packRange(uint32_t begin, uint32_t end) {
  return (static_cast<uint64_t>(begin) << 32) | end;
}
constexpr uint32_t rangeBegin(uint64_t r) { return static_cast<uint32_t>(r >> 32); }
constexpr uint32_t rangeEnd(uint64_t r) { return static_cast<uint32_t>(r); }

struct RegionGuard {
  RegionGuard() { tl_in_parallel_region = true; }
  ~RegionGuard() { tl_in_parallel_region = false; }
};

/// One dispatched super-block, living on the submitting thread's stack
/// for the duration of the dispatch. Workers claim a lane id, drain the
/// deques, and report back through `active`.
struct Job {
  WorkerRange* deques = nullptr;
  void (*range)(void*, size_t, size_t) = nullptr;
  void* ctx = nullptr;
  size_t base = 0;
  uint32_t chunk = 1;
  size_t workers = 1;
  const JobControl* control = nullptr;
  std::atomic<bool> cancelled{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  size_t claims_remaining = 0;  ///< worker ids left to hand out (guarded by pool mutex)
  size_t active = 0;            ///< pool workers currently inside the job (pool mutex)
};

/// The work loop one participant (caller or pool worker) runs over a
/// job: pop chunks from its own deque, steal the back half of a victim
/// when drained, stop when one full scan finds every deque empty.
void drainJob(Job& job, size_t self) {
  RegionGuard guard;
  WorkerRange* deques = job.deques;
  const size_t workers = job.workers;
  const uint32_t chunk = job.chunk;
  while (!job.cancelled.load(std::memory_order_relaxed)) {
    if (job.control != nullptr && job.control->interrupted()) {
      // Surface the interrupt through the normal first-exception-wins
      // path so the caller sees a structured JobInterrupted.
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.first_error) {
        try {
          job.control->throwIfInterrupted("parallel-for");
        } catch (...) {
          job.first_error = std::current_exception();
        }
      }
      job.cancelled.store(true, std::memory_order_relaxed);
      return;
    }
    uint32_t begin = 0, end = 0;
    bool got = false;
    uint64_t cur = deques[self].range.load(std::memory_order_acquire);
    while (rangeBegin(cur) < rangeEnd(cur)) {
      const uint32_t b = rangeBegin(cur);
      const uint32_t e = rangeEnd(cur);
      const uint32_t take = std::min(chunk, e - b);
      if (deques[self].range.compare_exchange_weak(cur, packRange(b + take, e),
                                                   std::memory_order_acq_rel)) {
        begin = b;
        end = b + take;
        got = true;
        break;
      }
    }
    if (!got) {
      // Own range drained: steal the back half of the first victim
      // that still has work, install it as our own range, and go pop
      // from it normally (so others can steal from us in turn).
      // Ranges only ever shrink or move, so one full scan finding
      // everyone empty means the block is done.
      bool stole = false;
      for (size_t k = 1; k < workers && !stole; ++k) {
        const size_t victim = (self + k) % workers;
        uint64_t vc = deques[victim].range.load(std::memory_order_acquire);
        while (rangeBegin(vc) < rangeEnd(vc)) {
          const uint32_t b = rangeBegin(vc);
          const uint32_t e = rangeEnd(vc);
          const uint32_t take = (e - b + 1) / 2;
          if (deques[victim].range.compare_exchange_weak(vc, packRange(b, e - take),
                                                         std::memory_order_acq_rel)) {
            deques[self].range.store(packRange(e - take, e), std::memory_order_release);
            stole = true;
            break;
          }
        }
      }
      if (!stole) return;
      continue;
    }
    try {
      job.range(job.ctx, job.base + begin, job.base + end);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mutex);
      if (!job.first_error) job.first_error = std::current_exception();
      job.cancelled.store(true, std::memory_order_relaxed);
    }
  }
}

/// Persistent parked-worker pool. Spawning and joining fresh
/// std::threads per dispatch costs ~1 ms — ruinous for callers that
/// dispatch per Newton iteration (the sharded assembler). Workers are
/// created lazily up to the largest width ever requested, park on a
/// condition variable between jobs, and claim lane ids from the current
/// job when woken. Concurrent top-level dispatches from different
/// threads serialize on submit_mutex_ (nested dispatches from inside a
/// worker never reach the pool — they run inline via the region guard).
class WorkerPool {
 public:
  static WorkerPool& instance() {
    static WorkerPool pool;
    return pool;
  }

  void run(size_t base, uint32_t n, uint32_t chunk, size_t workers,
           void (*range)(void*, size_t, size_t), void* ctx, const JobControl* control) {
    std::lock_guard<std::mutex> submit(submit_mutex_);

    std::vector<WorkerRange> deques(workers);
    for (size_t w = 0; w < workers; ++w) {
      const uint32_t begin = static_cast<uint32_t>(static_cast<uint64_t>(n) * w / workers);
      const uint32_t end = static_cast<uint32_t>(static_cast<uint64_t>(n) * (w + 1) / workers);
      deques[w].range.store(packRange(begin, end), std::memory_order_relaxed);
    }

    Job job;
    job.deques = deques.data();
    job.range = range;
    job.ctx = ctx;
    job.base = base;
    job.chunk = chunk;
    job.workers = workers;
    job.control = control;
    job.claims_remaining = workers - 1;

    {
      std::lock_guard<std::mutex> lock(m_);
      while (threads_.size() < workers - 1) {
        threads_.emplace_back([this] { workerLoop(); });
      }
      job_ = &job;
      cv_.notify_all();
    }

    // The caller is participant 0.
    drainJob(job, 0);

    // Close the job to further claims, then wait out workers still
    // inside it (they exit promptly once the deques are dry).
    {
      std::unique_lock<std::mutex> lock(m_);
      job_ = nullptr;
      done_cv_.wait(lock, [&] { return job.active == 0; });
    }
    if (job.first_error) std::rethrow_exception(job.first_error);
  }

  ~WorkerPool() {
    {
      std::lock_guard<std::mutex> lock(m_);
      shutdown_ = true;
      cv_.notify_all();
    }
    for (auto& th : threads_) th.join();
  }

 private:
  void workerLoop() {
    while (true) {
      Job* job = nullptr;
      size_t self = 0;
      {
        std::unique_lock<std::mutex> lock(m_);
        cv_.wait(lock, [&] {
          return shutdown_ || (job_ != nullptr && job_->claims_remaining > 0);
        });
        if (shutdown_) return;
        job = job_;
        self = job->workers - job->claims_remaining;  // lane ids 1..workers-1
        --job->claims_remaining;
        ++job->active;
      }
      drainJob(*job, self);
      {
        std::lock_guard<std::mutex> lock(m_);
        if (--job->active == 0) done_cv_.notify_all();
      }
    }
  }

  std::mutex submit_mutex_;  ///< serializes top-level dispatches
  std::mutex m_;             ///< guards job_ / claims / active / threads_
  std::condition_variable cv_;
  std::condition_variable done_cv_;
  Job* job_ = nullptr;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace

int parallelThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  const int fallback = hw > 0 ? static_cast<int>(hw) : 1;
  if (const char* env = std::getenv("VLS_THREADS")) {
    char* end = nullptr;
    errno = 0;
    const long v = std::strtol(env, &end, 10);
    const bool parsed = end != env && end != nullptr && *end == '\0' && errno != ERANGE;
    if (parsed && v >= 1 && v <= 1 << 20) return static_cast<int>(v);
    // Garbage, zero, negative, or overflowed values fall back to the
    // hardware width; warn once per process, not per dispatch.
    static std::atomic<bool> warned{false};
    if (!warned.exchange(true)) {
      VLS_LOG_WARN("VLS_THREADS='%s' is not a positive integer; using %d worker(s)", env,
                   fallback);
    }
  }
  return fallback;
}

const char* parallelSchedulerName() { return "chunked-work-stealing-pooled"; }

size_t parallelAutoChunk(size_t count, size_t workers) {
  if (workers == 0) workers = 1;
  return std::clamp<size_t>(count / (workers * 8), 1, 2048);
}

bool inParallelRegion() { return tl_in_parallel_region; }

namespace detail {

void parallelForRanges(size_t count, size_t chunk, int num_threads,
                       void (*range)(void*, size_t, size_t), void* ctx,
                       const JobControl* job) {
  if (count == 0) return;
  size_t workers = num_threads > 0 ? static_cast<size_t>(num_threads)
                                   : static_cast<size_t>(parallelThreadCount());
  workers = std::min(workers, count);
  if (workers <= 1 || tl_in_parallel_region) {
    // Single worker, or a nested call from inside a worker: run inline
    // on the calling thread (the nested guard against oversubscription).
    if (job == nullptr) {
      range(ctx, 0, count);
      return;
    }
    // Self-chunk so the cancellation point keeps chunk granularity
    // even without pool workers.
    if (chunk == 0) chunk = parallelAutoChunk(count, 1);
    for (size_t b = 0; b < count; b += chunk) {
      job->throwIfInterrupted("parallel-for");
      range(ctx, b, std::min(count, b + chunk));
    }
    return;
  }
  if (chunk == 0) chunk = parallelAutoChunk(count, workers);
  chunk = std::min<size_t>(chunk, uint32_t{1} << 30);

  // The packed ranges address 32-bit offsets; larger counts run as
  // sequential super-blocks, each fully parallel.
  constexpr size_t kSuperBlock = size_t{1} << 31;
  for (size_t base = 0; base < count; base += kSuperBlock) {
    const uint32_t n = static_cast<uint32_t>(std::min(kSuperBlock, count - base));
    WorkerPool::instance().run(base, n, static_cast<uint32_t>(chunk),
                               std::min(workers, static_cast<size_t>(n)), range, ctx, job);
  }
}

}  // namespace detail

void parallelFor(size_t count, const std::function<void(size_t)>& body, int num_threads) {
  parallelForChunked(count, [&body](size_t i) { body(i); },
                     ParallelOptions{num_threads, 0});
}

}  // namespace vls
