#include "base/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace vls {

int parallelThreadCount() {
  if (const char* env = std::getenv("VLS_THREADS")) {
    const int v = std::atoi(env);
    if (v >= 1) return v;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void parallelFor(size_t count, const std::function<void(size_t)>& body, int num_threads) {
  if (count == 0) return;
  size_t workers = num_threads > 0 ? static_cast<size_t>(num_threads)
                                   : static_cast<size_t>(parallelThreadCount());
  workers = std::min(workers, count);
  if (workers <= 1) {
    for (size_t i = 0; i < count; ++i) body(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mutex;
  auto run = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
      }
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(workers - 1);
  for (size_t t = 1; t < workers; ++t) threads.emplace_back(run);
  run();
  for (auto& th : threads) th.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vls
