// Chunked work-stealing parallel-for over std::thread. The analysis
// engines (Monte-Carlo, supply sweeps, corners, sensitivity) dispatch
// independent simulations through it; each iteration builds its own
// Circuit/Simulator, so no simulator state is shared between workers.
//
// Scheduling: the index space is split into one contiguous range per
// worker; owners pop fixed-size chunks from the front of their own
// range, idle workers steal the back half of a victim's remaining
// range. Both operations are a single CAS on a packed 64-bit
// {begin,end} word, so there are no locks on the work path and a
// worker that finishes early drains the stragglers instead of idling.
// parallelForChunked is templated on the body: the per-index call
// inlines into the chunk loop (no std::function virtual call per
// iteration); only a per-chunk indirect call remains.
//
// Determinism contract: callers derive any randomness serially up front
// (one RNG stream per index) and write results into pre-sized slot i,
// so the work product is bit-identical for every thread count,
// including 1. Callers that must *accumulate* across indices (the
// sharded assembler's border stamps) follow the same discipline one
// level up: workers write into per-index scratch (per shard, never per
// worker — worker identity is scheduling-dependent), and the caller
// reduces the scratch serially in fixed index order after the join.
//
// Exception semantics: the first exception thrown by any chunk wins —
// it cancels the dispatch of further chunks (chunks already running,
// including stolen ones, complete or throw into the void) and is
// rethrown on the calling thread after all workers have joined, so no
// worker is ever left running and no deadlock is possible. Exceptions
// thrown by later chunks after cancellation are discarded.
//
// Nesting: a parallelFor issued from inside a parallelFor worker runs
// inline on the calling worker (serially, over its full range) instead
// of spawning a second pool — composed engines cannot oversubscribe
// the machine by accident.
#pragma once

#include <cstddef>
#include <functional>
#include <type_traits>
#include <utility>

namespace vls {

class JobControl;

/// Worker count used when num_threads = 0: the VLS_THREADS environment
/// variable if set to a positive integer, else
/// std::thread::hardware_concurrency() (min 1). A VLS_THREADS value
/// that is not a positive integer (garbage, zero, negative, overflow)
/// falls back to hardware_concurrency with a one-line warning. Read on
/// every call, so tests can flip VLS_THREADS between runs.
int parallelThreadCount();

/// Scheduler implementation name, recorded in BENCH_perf.json so perf
/// regressions can be attributed to scheduler changes.
const char* parallelSchedulerName();

/// Chunk size chosen when ParallelOptions::chunk == 0: roughly eight
/// chunks per worker, clamped to [1, 2048]. Exposed so benchmarks can
/// record the effective granularity.
size_t parallelAutoChunk(size_t count, size_t workers);

/// True while the calling thread is executing inside a parallelFor
/// worker (used by the nested-call guard; exposed for tests).
bool inParallelRegion();

struct ParallelOptions {
  int num_threads = 0;  ///< 0 = parallelThreadCount()
  size_t chunk = 0;     ///< indices per work item; 0 = parallelAutoChunk
  /// Optional cooperative cancellation / deadline handle, checked
  /// before every chunk dispatch (including the inline single-worker
  /// path, which then self-chunks). An interrupt surfaces as a
  /// JobInterrupted rethrown on the calling thread through the
  /// first-exception-wins machinery. Not owned; must outlive the call.
  const JobControl* job = nullptr;
};

namespace detail {
/// Type-erased scheduler core (implementation in parallel.cpp): runs
/// range(ctx, begin, end) callbacks covering [0, count) exactly once.
void parallelForRanges(size_t count, size_t chunk, int num_threads,
                       void (*range)(void*, size_t, size_t), void* ctx,
                       const JobControl* job);
}  // namespace detail

/// Run body(i) for every i in [0, count) on the work-stealing pool.
/// The calling thread participates. Blocks until every dispatched
/// chunk finished; see the header comment for the exception and
/// nesting contracts.
template <typename Body>
void parallelForChunked(size_t count, Body&& body, ParallelOptions opt = {}) {
  using Fn = std::remove_reference_t<Body>;
  auto range = [](void* ctx, size_t begin, size_t end) {
    Fn& f = *static_cast<Fn*>(ctx);
    for (size_t i = begin; i < end; ++i) f(i);
  };
  detail::parallelForRanges(count, opt.chunk, opt.num_threads, range,
                            const_cast<std::remove_const_t<Fn>*>(&body), opt.job);
}

/// Compatibility wrapper over parallelForChunked for callers holding a
/// std::function (one indirect call per index; hot loops should call
/// the template directly).
void parallelFor(size_t count, const std::function<void(size_t)>& body, int num_threads = 0);

}  // namespace vls
