// Minimal parallel-for over std::thread with an atomic work queue. The
// analysis engines (Monte-Carlo, supply sweeps, corners, sensitivity)
// dispatch independent simulations through parallelFor; each iteration
// builds its own Circuit/Simulator, so no simulator state is shared
// between workers.
//
// Determinism contract: callers derive any randomness serially up front
// (one RNG stream per index) and write results into pre-sized slot i,
// so the work product is bit-identical for every thread count,
// including 1.
#pragma once

#include <cstddef>
#include <functional>

namespace vls {

/// Worker count used when parallelFor is called with num_threads = 0:
/// the VLS_THREADS environment variable if set to a positive integer,
/// else std::thread::hardware_concurrency() (min 1). Read on every
/// call, so tests can flip VLS_THREADS between runs.
int parallelThreadCount();

/// Run body(i) for every i in [0, count), distributing indices across
/// up to num_threads workers (0 = parallelThreadCount()). The calling
/// thread participates. Blocks until all dispatched iterations finish;
/// the first exception thrown by any iteration stops the dispatch of
/// further indices and is rethrown on the calling thread.
void parallelFor(size_t count, const std::function<void(size_t)>& body, int num_threads = 0);

}  // namespace vls
