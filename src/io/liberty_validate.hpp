// Minimal structural validator for generated Liberty text: balanced
// group braces, lu_table_template references that resolve, strictly
// monotone index vectors, and values-matrix dimensions consistent with
// the table's (or its template's) indexes. Not a full Liberty parser —
// just enough to catch the ways a generator goes wrong (truncated
// groups, transposed tables, unsorted axes) before a .lib ships.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vls {

struct LibertyIssue {
  size_t line = 0;  ///< 1-based line of the offending construct
  std::string message;
};

struct LibertyValidation {
  std::vector<LibertyIssue> issues;
  size_t cell_count = 0;      ///< cell (...) groups seen
  size_t table_count = 0;     ///< NLDM-style table groups seen
  size_t template_count = 0;  ///< lu_table_template groups seen

  bool ok() const { return issues.empty(); }
  /// One-line summary ("ok, 8 cells, 48 tables" or the first issue).
  std::string summary() const;
};

/// Validate Liberty source text.
LibertyValidation validateLiberty(const std::string& text);

}  // namespace vls
