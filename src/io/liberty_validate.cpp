#include "io/liberty_validate.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

namespace vls {
namespace {

/// Group keywords that carry an NLDM values matrix.
bool isTableKeyword(const std::string& kw) {
  return kw == "cell_rise" || kw == "cell_fall" || kw == "rise_transition" ||
         kw == "fall_transition" || kw == "rise_power" || kw == "fall_power";
}

std::string trim(const std::string& s) {
  size_t a = 0;
  size_t b = s.size();
  while (a < b && std::isspace(static_cast<unsigned char>(s[a]))) ++a;
  while (b > a && std::isspace(static_cast<unsigned char>(s[b - 1]))) --b;
  return s.substr(a, b - a);
}

/// First identifier of a statement ("cell_rise (tmpl)" -> "cell_rise").
std::string keywordOf(const std::string& stmt) {
  size_t i = 0;
  while (i < stmt.size() &&
         (std::isalnum(static_cast<unsigned char>(stmt[i])) || stmt[i] == '_')) {
    ++i;
  }
  return stmt.substr(0, i);
}

/// The parenthesized argument of a statement ("cell (foo)" -> "foo").
std::string argOf(const std::string& stmt) {
  const size_t open = stmt.find('(');
  if (open == std::string::npos) return "";
  const size_t close = stmt.rfind(')');
  if (close == std::string::npos || close < open) return "";
  return trim(stmt.substr(open + 1, close - open - 1));
}

/// Every double-quoted string in the statement, in order.
std::vector<std::string> quotedStrings(const std::string& stmt) {
  std::vector<std::string> out;
  size_t i = 0;
  while (true) {
    const size_t a = stmt.find('"', i);
    if (a == std::string::npos) break;
    const size_t b = stmt.find('"', a + 1);
    if (b == std::string::npos) break;
    out.push_back(stmt.substr(a + 1, b - a - 1));
    i = b + 1;
  }
  return out;
}

/// Comma/whitespace-separated doubles; sets ok=false on a parse error.
/// strtod-based so "nan"/"inf" tokens parse as the IEEE specials they
/// are (and get rejected by the finiteness checks) instead of tripping
/// a generic parse failure.
std::vector<double> parseNumbers(const std::string& s, bool* ok) {
  std::vector<double> out;
  std::string cleaned = s;
  for (char& ch : cleaned) {
    if (ch == ',') ch = ' ';
  }
  const char* p = cleaned.c_str();
  while (*p != '\0') {
    while (*p != '\0' && std::isspace(static_cast<unsigned char>(*p))) ++p;
    if (*p == '\0') break;
    char* end = nullptr;
    const double v = std::strtod(p, &end);
    if (end == p) {
      *ok = false;
      return out;
    }
    out.push_back(v);
    p = end;
  }
  return out;
}

/// One open group on the parse stack.
struct Group {
  std::string keyword;
  std::string arg;
  size_t line = 0;
  // Table payload (filled while the group is open).
  std::vector<double> index_1;
  std::vector<double> index_2;
  std::vector<std::vector<double>> value_rows;
  bool has_values = false;
};

}  // namespace

std::string LibertyValidation::summary() const {
  std::ostringstream os;
  if (ok()) {
    os << "ok, " << cell_count << " cells, " << table_count << " tables, " << template_count
       << " templates";
  } else {
    os << issues.size() << " issue(s); first: line " << issues.front().line << ": "
       << issues.front().message;
  }
  return os.str();
}

LibertyValidation validateLiberty(const std::string& text) {
  LibertyValidation result;
  auto issue = [&](size_t line, const std::string& message) {
    result.issues.push_back({line, message});
  };

  // Template name -> (index_1 size, index_2 size).
  std::map<std::string, std::pair<size_t, size_t>> templates;
  std::vector<Group> stack;

  auto checkMonotone = [&](const std::vector<double>& xs, const char* which, size_t line) {
    for (size_t i = 1; i < xs.size(); ++i) {
      if (!(xs[i] > xs[i - 1])) {
        issue(line, std::string(which) + " is not strictly increasing");
        return;
      }
    }
  };

  auto checkFinite = [&](const std::vector<double>& xs, const std::string& which, size_t line) {
    for (double v : xs) {
      if (!std::isfinite(v)) {
        issue(line, which + " holds a non-finite value (NaN/Inf)");
        return;
      }
    }
  };

  auto closeGroup = [&](const Group& g, size_t line) {
    if (g.keyword == "lu_table_template") {
      ++result.template_count;
      if (g.arg.empty()) issue(g.line, "lu_table_template without a name");
      checkFinite(g.index_1, "template index_1", g.line);
      checkFinite(g.index_2, "template index_2", g.line);
      checkMonotone(g.index_1, "template index_1", g.line);
      checkMonotone(g.index_2, "template index_2", g.line);
      templates[g.arg] = {g.index_1.size(), g.index_2.size()};
      return;
    }
    if (!isTableKeyword(g.keyword)) return;
    ++result.table_count;
    // Payload sanity: no NaN/Inf anywhere, and delay/transition tables
    // must be non-negative — a negative delay is always a generator or
    // measurement bug, never legitimate NLDM data. One issue per table.
    const bool is_timing = g.keyword == "cell_rise" || g.keyword == "cell_fall" ||
                           g.keyword == "rise_transition" || g.keyword == "fall_transition";
    checkFinite(g.index_1, g.keyword + " index_1", g.line);
    checkFinite(g.index_2, g.keyword + " index_2", g.line);
    bool flagged_nonfinite = false;
    bool flagged_negative = false;
    for (const std::vector<double>& row : g.value_rows) {
      for (double v : row) {
        if (!std::isfinite(v) && !flagged_nonfinite) {
          issue(g.line, g.keyword + " holds a non-finite value (NaN/Inf)");
          flagged_nonfinite = true;
        } else if (is_timing && v < 0.0 && !flagged_negative) {
          issue(g.line, g.keyword + " holds a negative delay/transition value");
          flagged_negative = true;
        }
      }
    }
    const std::string where = g.keyword + " at line " + std::to_string(g.line);
    if (!g.has_values) {
      issue(g.line, g.keyword + " has no values group");
      return;
    }
    if (g.arg == "scalar") {
      if (g.value_rows.size() != 1 || g.value_rows[0].size() != 1) {
        issue(g.line, g.keyword + " (scalar) must hold exactly one value");
      }
      return;
    }
    size_t n1 = g.index_1.size();
    size_t n2 = g.index_2.size();
    auto tmpl = templates.find(g.arg);
    if (tmpl == templates.end()) {
      issue(g.line, g.keyword + " references unknown template '" + g.arg + "'");
    } else {
      if (n1 == 0) n1 = tmpl->second.first;
      if (n2 == 0) n2 = tmpl->second.second;
      if ((g.index_1.size() && g.index_1.size() != tmpl->second.first) ||
          (g.index_2.size() && g.index_2.size() != tmpl->second.second)) {
        issue(g.line, g.keyword + " index sizes disagree with template '" + g.arg + "'");
      }
    }
    checkMonotone(g.index_1, "index_1", g.line);
    checkMonotone(g.index_2, "index_2", g.line);
    if (g.value_rows.size() != n1) {
      issue(g.line, g.keyword + " has " + std::to_string(g.value_rows.size()) +
                        " value rows, expected " + std::to_string(n1));
      return;
    }
    for (size_t r = 0; r < g.value_rows.size(); ++r) {
      if (g.value_rows[r].size() != n2) {
        issue(g.line, g.keyword + " row " + std::to_string(r) + " has " +
                          std::to_string(g.value_rows[r].size()) + " values, expected " +
                          std::to_string(n2));
        return;
      }
    }
    (void)line;
  };

  auto handleStatement = [&](const std::string& raw, size_t line) {
    const std::string stmt = trim(raw);
    if (stmt.empty()) return;
    const std::string kw = keywordOf(stmt);
    if (stack.empty() || (kw != "index_1" && kw != "index_2" && kw != "values")) return;
    Group& g = stack.back();
    if (!isTableKeyword(g.keyword) && g.keyword != "lu_table_template") return;
    bool parse_ok = true;
    if (kw == "index_1" || kw == "index_2") {
      const std::vector<std::string> qs = quotedStrings(stmt);
      if (qs.size() != 1) {
        issue(line, kw + " must hold exactly one quoted list");
        return;
      }
      std::vector<double> xs = parseNumbers(qs[0], &parse_ok);
      if (!parse_ok || xs.empty()) {
        issue(line, kw + " holds no parseable numbers");
        return;
      }
      (kw == "index_1" ? g.index_1 : g.index_2) = std::move(xs);
    } else {  // values
      g.has_values = true;
      for (const std::string& q : quotedStrings(stmt)) {
        std::vector<double> row = parseNumbers(q, &parse_ok);
        if (!parse_ok) {
          issue(line, "values row holds unparseable numbers");
          return;
        }
        g.value_rows.push_back(std::move(row));
      }
      if (g.value_rows.empty()) issue(line, "values group holds no rows");
    }
  };

  // Statement scanner: accumulate text until '{', '}' or ';' (outside
  // quotes and /* */ comments), tracking line numbers.
  std::string stmt;
  size_t line = 1;
  size_t stmt_line = 1;
  bool in_comment = false;
  bool in_quote = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\n') ++line;
    if (in_comment) {
      if (c == '*' && i + 1 < text.size() && text[i + 1] == '/') {
        in_comment = false;
        ++i;
      }
      continue;
    }
    if (!in_quote && c == '/' && i + 1 < text.size() && text[i + 1] == '*') {
      in_comment = true;
      ++i;
      continue;
    }
    if (c == '"') in_quote = !in_quote;
    if (in_quote) {
      stmt += c;
      continue;
    }
    if (c == '\\') continue;  // Liberty line continuations
    if (c == '{') {
      Group g;
      const std::string header = trim(stmt);
      g.keyword = keywordOf(header);
      g.arg = argOf(header);
      g.line = stmt_line;
      if (g.keyword == "cell") ++result.cell_count;
      stack.push_back(std::move(g));
      stmt.clear();
      stmt_line = line;
    } else if (c == '}') {
      if (!trim(stmt).empty()) handleStatement(stmt, stmt_line);
      stmt.clear();
      stmt_line = line;
      if (stack.empty()) {
        issue(line, "unbalanced '}'");
      } else {
        closeGroup(stack.back(), line);
        stack.pop_back();
      }
    } else if (c == ';') {
      handleStatement(stmt, stmt_line);
      stmt.clear();
      stmt_line = line;
    } else {
      if (trim(stmt).empty() && !std::isspace(static_cast<unsigned char>(c))) stmt_line = line;
      stmt += c;
    }
  }
  if (in_quote) issue(line, "unterminated string");
  if (in_comment) issue(line, "unterminated comment");
  for (const Group& g : stack) {
    issue(g.line, "unclosed group '" + (g.keyword.empty() ? "?" : g.keyword) + "'");
  }
  return result;
}

}  // namespace vls
