// CSV export of waveforms and generic columns (for plotting the paper's
// figures with external tools).
#pragma once

#include <string>
#include <vector>

#include "sim/result.hpp"

namespace vls {

struct CsvColumn {
  std::string name;
  std::vector<double> values;
};

/// Write columns (equal lengths required) to a CSV file.
void writeCsv(const std::string& path, const std::vector<CsvColumn>& columns);

/// Write selected node waveforms of a transient run, resampled onto the
/// simulation timepoints ("time" column first).
void writeWaveformsCsv(const std::string& path, const TransientResult& result,
                       const std::vector<std::string>& nodes);

/// Render columns as CSV text (testing / stdout).
std::string csvToString(const std::vector<CsvColumn>& columns);

}  // namespace vls
