// Terminal waveform rendering: multi-trace ASCII charts for bench
// output (the paper's Figure 5 timing diagram, printable anywhere).
#pragma once

#include <string>
#include <vector>

#include "sim/result.hpp"

namespace vls {

struct AsciiPlotOptions {
  int width = 100;        ///< plot columns (time axis)
  int height = 12;        ///< plot rows per trace band (voltage axis)
  double t_start = 0.0;   ///< window start [s]
  double t_stop = -1.0;   ///< window end; <0 = full signal
  bool shared_axis = false;  ///< one band with all traces overlaid
};

/// Render one or more named traces as stacked ASCII bands (or one
/// overlaid band). Each trace auto-scales to its own min/max unless the
/// axis is shared.
std::string renderAsciiPlot(const std::vector<std::pair<std::string, Signal>>& traces,
                            const AsciiPlotOptions& options = {});

/// Convenience: plot selected nodes of a transient run.
std::string plotNodes(const TransientResult& result, const std::vector<std::string>& nodes,
                      const AsciiPlotOptions& options = {});

}  // namespace vls
