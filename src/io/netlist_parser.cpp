#include "io/netlist_parser.hpp"

#include <cctype>
#include <fstream>
#include <map>
#include <sstream>
#include <unordered_map>

#include "base/error.hpp"
#include "base/string_util.hpp"
#include "devices/diode.hpp"
#include "devices/model_library.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"

namespace vls {
namespace {

[[noreturn]] void fail(size_t line_no, const std::string& message) {
  throw InvalidInputError("netlist line " + std::to_string(line_no) + ": " + message);
}

double needNumber(size_t line_no, const std::string& token) {
  const auto v = parseSpiceNumber(token);
  if (!v) fail(line_no, "expected a number, got '" + token + "'");
  return *v;
}

// Substitute {param} references (and bare parameter-name tokens used as
// values) from the .param table.
std::string substituteParams(const std::string& token,
                             const std::unordered_map<std::string, double>& params,
                             size_t line_no) {
  // Brace form anywhere in the token: w={width}
  std::string out = token;
  size_t open;
  while ((open = out.find('{')) != std::string::npos) {
    const size_t close = out.find('}', open);
    if (close == std::string::npos) fail(line_no, "unterminated '{' in '" + token + "'");
    const std::string key = toLower(out.substr(open + 1, close - open - 1));
    auto it = params.find(key);
    if (it == params.end()) fail(line_no, "unknown parameter '" + key + "'");
    char buf[48];
    std::snprintf(buf, sizeof buf, "%.17g", it->second);
    out = out.substr(0, open) + buf + out.substr(close + 1);
  }
  return out;
}

struct Card {
  size_t line_no = 0;
  std::vector<std::string> tokens;
};

struct SubcktDef {
  std::vector<std::string> ports;
  std::vector<Card> body;
};

// Split a logical line into tokens; parentheses and commas become
// whitespace so "PULSE(0 1 0,10p)" tokenizes uniformly.
std::vector<std::string> tokenize(std::string_view text) {
  std::string norm;
  norm.reserve(text.size());
  for (char ch : text) {
    if (ch == '(' || ch == ')' || ch == ',') {
      norm += ' ';
    } else {
      norm += ch;
    }
  }
  return splitFields(norm);
}

// key=value token? Returns true and splits if so.
bool splitKeyValue(const std::string& token, std::string& key, std::string& value) {
  const size_t eq = token.find('=');
  if (eq == std::string::npos || eq == 0 || eq + 1 >= token.size()) return false;
  key = toLower(token.substr(0, eq));
  value = token.substr(eq + 1);
  return true;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  ParsedNetlist run() {
    collectCards();
    // First pass: definitions (.model / .subckt already collected).
    for (const Card& card : top_) emitCard(card, "", {});
    return std::move(out_);
  }

 private:
  void collectCards() {
    std::vector<std::string> raw;
    {
      std::string line;
      std::istringstream in{std::string(text_)};
      while (std::getline(in, line)) raw.push_back(line);
    }
    // Expand .include directives in place (depth-limited).
    for (size_t i = 1; i < raw.size(); ++i) {
      const std::string_view t = trim(raw[i]);
      if (!istartsWith(t, ".include")) continue;
      if (++include_depth_ > 10) fail(i + 1, ".include nesting too deep");
      const auto fields = splitFields(t);
      if (fields.size() < 2) fail(i + 1, ".include needs a file path");
      std::string path = fields[1];
      if (path.size() >= 2 && (path.front() == '"' || path.front() == '\'')) {
        path = path.substr(1, path.size() - 2);
      }
      std::ifstream inc(path);
      if (!inc) fail(i + 1, "cannot open include file '" + path + "'");
      std::vector<std::string> body;
      std::string line;
      while (std::getline(inc, line)) body.push_back(line);
      raw[i] = "* (included " + path + ")";
      raw.insert(raw.begin() + static_cast<long>(i) + 1, body.begin(), body.end());
    }
    // Merge continuations, strip comments.
    struct Logical {
      size_t line_no;
      std::string text;
    };
    std::vector<Logical> logical;
    for (size_t i = 0; i < raw.size(); ++i) {
      std::string line = raw[i];
      const size_t semi = line.find_first_of(";$");
      if (semi != std::string::npos) line.resize(semi);
      const std::string_view t = trim(line);
      if (i == 0) {
        out_.title = std::string(t);
        continue;
      }
      if (t.empty() || t.front() == '*') continue;
      if (t.front() == '+') {
        if (logical.empty()) fail(i + 1, "continuation with no previous card");
        logical.back().text += ' ';
        logical.back().text += std::string(t.substr(1));
      } else {
        logical.push_back({i + 1, std::string(t)});
      }
    }

    // Separate .subckt bodies, .model cards, and top-level cards.
    SubcktDef* open_subckt = nullptr;
    std::vector<std::string> subckt_stack;
    for (const auto& l : logical) {
      Card card{l.line_no, tokenize(l.text)};
      if (card.tokens.empty()) continue;
      const std::string head = toLower(card.tokens[0]);
      if (head == ".subckt") {
        if (card.tokens.size() < 2) fail(card.line_no, ".subckt needs a name");
        if (open_subckt) fail(card.line_no, "nested .subckt definitions are not supported");
        const std::string name = toLower(card.tokens[1]);
        SubcktDef def;
        for (size_t k = 2; k < card.tokens.size(); ++k) def.ports.push_back(card.tokens[k]);
        auto [it, inserted] = subckts_.emplace(name, std::move(def));
        if (!inserted) fail(card.line_no, "duplicate .subckt '" + name + "'");
        open_subckt = &it->second;
        continue;
      }
      if (head == ".ends") {
        if (!open_subckt) fail(card.line_no, ".ends without .subckt");
        open_subckt = nullptr;
        continue;
      }
      if (open_subckt) {
        open_subckt->body.push_back(std::move(card));
        continue;
      }
      if (head == ".param") {
        // .param name=value [name=value ...]
        for (size_t k = 1; k < card.tokens.size(); ++k) {
          std::string key, value;
          if (!splitKeyValue(card.tokens[k], key, value)) {
            fail(card.line_no, ".param expects name=value");
          }
          params_[key] = needNumber(card.line_no, substituteParams(value, params_, card.line_no));
        }
        continue;
      }
      if (head == ".model") {
        parseModel(card);
        continue;
      }
      if (head == ".end") break;
      top_.push_back(std::move(card));
    }
    if (open_subckt) throw InvalidInputError("netlist: unterminated .subckt");
  }

  void parseModel(const Card& card) {
    if (card.tokens.size() < 3) fail(card.line_no, ".model needs name and type");
    const std::string name = toLower(card.tokens[1]);
    const std::string type = toLower(card.tokens[2]);
    MosModelCard m;
    if (type == "nmos") {
      m = *nmos90();
      m.type = MosType::Nmos;
    } else if (type == "pmos") {
      m = *pmos90();
      m.type = MosType::Pmos;
    } else {
      fail(card.line_no, "unsupported .model type '" + type + "'");
    }
    m.name = name;
    for (size_t k = 3; k < card.tokens.size(); ++k) {
      std::string key, value;
      if (!splitKeyValue(card.tokens[k], key, value)) {
        fail(card.line_no, "expected key=value, got '" + card.tokens[k] + "'");
      }
      const double v = needNumber(card.line_no, value);
      if (key == "vto" || key == "vt0") m.vt0 = std::fabs(v);
      else if (key == "kp") m.kp = v;
      else if (key == "gamma") m.gamma = v;
      else if (key == "phi") m.phi = v;
      else if (key == "lambda") m.lambda = v;
      else if (key == "theta") m.theta = v;
      else if (key == "n" || key == "nfactor") m.n_slope = v;
      else if (key == "sigma" || key == "eta") m.sigma_dibl = v;
      else if (key == "tox") m.tox = v;
      else if (key == "cgso") m.cgso = v;
      else if (key == "cgdo") m.cgdo = v;
      else if (key == "cj") m.cj = v;
      else if (key == "cjsw") m.cjsw = v;
      else if (key == "pb") m.pb = v;
      else if (key == "mj") m.mj = v;
      else if (key == "js") m.js = v;
      else if (key == "jg") m.jg = v;
      else if (key == "tnom") m.tnom = v + 273.15;
      else fail(card.line_no, "unknown .model parameter '" + key + "'");
    }
    models_[name] = std::make_shared<const MosModelCard>(m);
  }

  MosModelRef lookupModel(size_t line_no, const std::string& name) const {
    auto it = models_.find(toLower(name));
    if (it != models_.end()) return it->second;
    try {
      return modelByName(name);
    } catch (const InvalidInputError&) {
      fail(line_no, "unknown MOS model '" + name + "'");
    }
  }

  // Node resolution: ports map to parent nodes; internals get prefixed.
  NodeId resolveNode(const std::string& name, const std::string& prefix,
                     const std::unordered_map<std::string, std::string>& port_map) {
    auto it = port_map.find(toLower(name));
    if (it != port_map.end()) return out_.circuit.node(it->second);
    if (name == "0" || iequals(name, "gnd")) return kGround;
    return out_.circuit.node(prefix.empty() ? name : prefix + name);
  }

  Waveform parseSourceValue(const Card& card, size_t first) {
    const auto& t = card.tokens;
    if (first >= t.size()) return Waveform::dc(0.0);
    const std::string kind = toLower(t[first]);
    auto args = [&](size_t from) {
      std::vector<double> xs;
      for (size_t k = from; k < t.size(); ++k) xs.push_back(needNumber(card.line_no, t[k]));
      return xs;
    };
    if (kind == "dc") {
      if (first + 1 >= t.size()) fail(card.line_no, "DC needs a value");
      return Waveform::dc(needNumber(card.line_no, t[first + 1]));
    }
    if (kind == "pulse") {
      const auto a = args(first + 1);
      if (a.size() < 7) fail(card.line_no, "PULSE needs 7 arguments");
      PulseSpec p{a[0], a[1], a[2], a[3], a[4], a[5], a[6]};
      return Waveform::pulse(p);
    }
    if (kind == "pwl") {
      const auto a = args(first + 1);
      if (a.size() < 4 || a.size() % 2 != 0) fail(card.line_no, "PWL needs t/v pairs");
      std::vector<double> ts, vs;
      for (size_t k = 0; k < a.size(); k += 2) {
        ts.push_back(a[k]);
        vs.push_back(a[k + 1]);
      }
      return Waveform::pwl(std::move(ts), std::move(vs));
    }
    if (kind == "sin") {
      const auto a = args(first + 1);
      if (a.size() < 3) fail(card.line_no, "SIN needs at least 3 arguments");
      SinSpec s;
      s.offset = a[0];
      s.amplitude = a[1];
      s.freq = a[2];
      if (a.size() > 3) s.delay = a[3];
      if (a.size() > 4) s.damping = a[4];
      return Waveform::sine(s);
    }
    if (kind == "exp") {
      const auto a = args(first + 1);
      if (a.size() < 6) fail(card.line_no, "EXP needs 6 arguments");
      ExpSpec e{a[0], a[1], a[2], a[3], a[4], a[5]};
      return Waveform::exponential(e);
    }
    // Plain value.
    return Waveform::dc(needNumber(card.line_no, t[first]));
  }

  void emitCard(const Card& card_in, const std::string& prefix,
                const std::unordered_map<std::string, std::string>& port_map) {
    // Parameter substitution applies uniformly to top-level cards and
    // subcircuit bodies at expansion time.
    Card card = card_in;
    for (std::string& tok : card.tokens) {
      tok = substituteParams(tok, params_, card.line_no);
    }
    const auto& t = card.tokens;
    const std::string raw_name = t[0];
    const char kind = static_cast<char>(std::tolower(static_cast<unsigned char>(raw_name[0])));
    const std::string name = prefix + toLower(raw_name);
    Circuit& c = out_.circuit;
    auto node = [&](size_t idx) {
      if (idx >= t.size()) fail(card.line_no, "missing node");
      return resolveNode(t[idx], prefix, port_map);
    };

    if (kind == '.') {
      parseDotCard(card, prefix);
      return;
    }
    switch (kind) {
      case 'r': {
        if (t.size() < 4) fail(card.line_no, "R card: Rname n1 n2 value");
        c.add<Resistor>(name, node(1), node(2), needNumber(card.line_no, t[3]));
        return;
      }
      case 'c': {
        if (t.size() < 4) fail(card.line_no, "C card: Cname n1 n2 value");
        double ic = 0.0;
        bool use_ic = false;
        for (size_t k = 4; k < t.size(); ++k) {
          std::string key, value;
          if (splitKeyValue(t[k], key, value) && key == "ic") {
            ic = needNumber(card.line_no, value);
            use_ic = true;
          }
        }
        c.add<Capacitor>(name, node(1), node(2), needNumber(card.line_no, t[3]), ic, use_ic);
        return;
      }
      case 'l': {
        if (t.size() < 4) fail(card.line_no, "L card: Lname n1 n2 value");
        c.add<Inductor>(name, node(1), node(2), needNumber(card.line_no, t[3]));
        return;
      }
      case 'v': {
        if (t.size() < 3) fail(card.line_no, "V card: Vname n+ n- value");
        // Peel a trailing "AC <mag>" clause (SPICE small-signal spec).
        double ac_mag = 0.0;
        size_t value_end = t.size();
        if (t.size() >= 5 && iequals(t[t.size() - 2], "ac")) {
          ac_mag = needNumber(card.line_no, t.back());
          value_end -= 2;
        }
        Card dc_card = card;
        dc_card.tokens.assign(t.begin(), t.begin() + value_end);
        auto& src = c.add<VoltageSource>(name, node(1), node(2), parseSourceValue(dc_card, 3));
        src.setAcMagnitude(ac_mag);
        return;
      }
      case 'i': {
        if (t.size() < 3) fail(card.line_no, "I card: Iname n+ n- value");
        c.add<CurrentSource>(name, node(1), node(2), parseSourceValue(card, 3));
        return;
      }
      case 'e': {
        if (t.size() < 6) fail(card.line_no, "E card: Ename n+ n- nc+ nc- gain");
        c.add<Vcvs>(name, node(1), node(2), node(3), node(4), needNumber(card.line_no, t[5]));
        return;
      }
      case 'g': {
        if (t.size() < 6) fail(card.line_no, "G card: Gname n+ n- nc+ nc- gm");
        c.add<Vccs>(name, node(1), node(2), node(3), node(4), needNumber(card.line_no, t[5]));
        return;
      }
      case 'd': {
        if (t.size() < 3) fail(card.line_no, "D card: Dname anode cathode [params]");
        DiodeParams p;
        for (size_t k = 3; k < t.size(); ++k) {
          std::string key, value;
          if (!splitKeyValue(t[k], key, value)) continue;
          const double v = needNumber(card.line_no, value);
          if (key == "is") p.i_sat = v;
          else if (key == "n") p.n_ideal = v;
          else if (key == "cj0" || key == "cjo") p.cj0 = v;
        }
        c.add<Diode>(name, node(1), node(2), p);
        return;
      }
      case 'm': {
        if (t.size() < 6) fail(card.line_no, "M card: Mname d g s b model [w= l=]");
        MosGeometry geom;
        for (size_t k = 6; k < t.size(); ++k) {
          std::string key, value;
          if (!splitKeyValue(t[k], key, value)) {
            fail(card.line_no, "expected key=value, got '" + t[k] + "'");
          }
          const double v = needNumber(card.line_no, value);
          if (key == "w") geom.w = v;
          else if (key == "l") geom.l = v;
          else if (key == "ad") geom.area_d = v;
          else if (key == "as") geom.area_s = v;
          else fail(card.line_no, "unknown MOS parameter '" + key + "'");
        }
        c.add<Mosfet>(name, node(1), node(2), node(3), node(4),
                      lookupModel(card.line_no, t[5]), geom);
        return;
      }
      case 'x': {
        if (t.size() < 3) fail(card.line_no, "X card: Xname nodes... subckt");
        const std::string sub_name = toLower(t.back());
        auto it = subckts_.find(sub_name);
        if (it == subckts_.end()) fail(card.line_no, "unknown subcircuit '" + sub_name + "'");
        const SubcktDef& def = it->second;
        if (t.size() - 2 != def.ports.size()) {
          fail(card.line_no, "subcircuit '" + sub_name + "' expects " +
                                 std::to_string(def.ports.size()) + " nodes");
        }
        if (++expansion_depth_ > 20) fail(card.line_no, "subcircuit nesting too deep");
        std::unordered_map<std::string, std::string> map;
        for (size_t k = 0; k < def.ports.size(); ++k) {
          // Port binds to the parent node name as seen from this scope.
          const NodeId parent = resolveNode(t[k + 1], prefix, port_map);
          map[toLower(def.ports[k])] = out_.circuit.nodeName(parent);
        }
        const std::string sub_prefix = name + ".";
        for (const Card& body_card : def.body) emitCard(body_card, sub_prefix, map);
        --expansion_depth_;
        return;
      }
      default:
        fail(card.line_no, std::string("unsupported element '") + raw_name + "'");
    }
  }

  void parseDotCard(const Card& card, const std::string& prefix) {
    if (!prefix.empty()) fail(card.line_no, "analysis cards are not allowed inside .subckt");
    const auto& t = card.tokens;
    const std::string head = toLower(t[0]);
    if (head == ".op") {
      out_.analyses.push_back({AnalysisCommand::Kind::Op, 0, 0, "", 0, 0, 0});
      return;
    }
    if (head == ".tran") {
      if (t.size() < 3) fail(card.line_no, ".tran step stop");
      AnalysisCommand a;
      a.kind = AnalysisCommand::Kind::Tran;
      a.tran_step = needNumber(card.line_no, t[1]);
      a.tran_stop = needNumber(card.line_no, t[2]);
      out_.analyses.push_back(a);
      return;
    }
    if (head == ".dc") {
      if (t.size() < 5) fail(card.line_no, ".dc source from to step");
      AnalysisCommand a;
      a.kind = AnalysisCommand::Kind::DcSweep;
      a.dc_source = toLower(t[1]);
      a.dc_from = needNumber(card.line_no, t[2]);
      a.dc_to = needNumber(card.line_no, t[3]);
      a.dc_step = needNumber(card.line_no, t[4]);
      out_.analyses.push_back(a);
      return;
    }
    if (head == ".ac") {
      // .ac dec <points/decade> <fstart> <fstop>
      if (t.size() < 5 || !iequals(t[1], "dec")) {
        fail(card.line_no, ".ac dec points fstart fstop");
      }
      AnalysisCommand a;
      a.kind = AnalysisCommand::Kind::Ac;
      a.ac_points_per_decade = static_cast<int>(needNumber(card.line_no, t[2]));
      a.ac_fstart = needNumber(card.line_no, t[3]);
      a.ac_fstop = needNumber(card.line_no, t[4]);
      out_.analyses.push_back(a);
      return;
    }
    if (head == ".temp") {
      if (t.size() < 2) fail(card.line_no, ".temp value");
      out_.temperature_c = needNumber(card.line_no, t[1]);
      return;
    }
    if (head == ".save" || head == ".print" || head == ".probe") {
      for (size_t k = 1; k < t.size(); ++k) {
        std::string item = toLower(t[k]);
        if (item == "tran" || item == "dc") continue;
        // Accept v n or plain node names (parens already stripped).
        if (item == "v") continue;
        out_.save_nodes.push_back(item);
      }
      return;
    }
    if (head == ".options" || head == ".option" || head == ".ic" || head == ".nodeset" ||
        head == ".title") {
      return;  // accepted and ignored (documented subset)
    }
    fail(card.line_no, "unsupported card '" + head + "'");
  }

  std::string_view text_;
  ParsedNetlist out_;
  std::vector<Card> top_;
  std::map<std::string, SubcktDef> subckts_;
  std::unordered_map<std::string, MosModelRef> models_;
  std::unordered_map<std::string, double> params_;
  int expansion_depth_ = 0;
  int include_depth_ = 0;
};

}  // namespace

ParsedNetlist parseNetlist(std::string_view text) { return Parser(text).run(); }

ParsedNetlist parseNetlistFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw InvalidInputError("cannot open netlist file '" + path + "'");
  std::ostringstream oss;
  oss << in.rdbuf();
  return parseNetlist(oss.str());
}

}  // namespace vls
