// Export a programmatically built Circuit back to SPICE text (for
// inspection, diffing against the paper's schematics, or running in an
// external simulator).
#pragma once

#include <string>

#include "circuit/circuit.hpp"

namespace vls {

/// Render the circuit as a SPICE deck. `title` becomes the first line.
/// Models referenced by MOSFETs are emitted as .model cards.
std::string writeNetlist(const Circuit& circuit, const std::string& title);

/// Write to a file.
void writeNetlistFile(const std::string& path, const Circuit& circuit, const std::string& title);

}  // namespace vls
