#include "io/checkpoint.hpp"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>

#include "base/error.hpp"

namespace vls {

namespace {

constexpr char kMagic[8] = {'V', 'L', 'S', 'C', 'K', 'P', 'T', '\0'};

void putU32(std::vector<uint8_t>& out, uint32_t v) {
  out.push_back(static_cast<uint8_t>(v));
  out.push_back(static_cast<uint8_t>(v >> 8));
  out.push_back(static_cast<uint8_t>(v >> 16));
  out.push_back(static_cast<uint8_t>(v >> 24));
}

void putU64(std::vector<uint8_t>& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

uint32_t getU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t getU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(p[i]) << (8 * i);
  return v;
}

}  // namespace

uint32_t crc32(const uint8_t* data, size_t n) {
  static const auto table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) crc = table[(crc ^ data[i]) & 0xFFu] ^ (crc >> 8);
  return crc ^ 0xFFFFFFFFu;
}

void CheckpointWriter::u32(uint32_t v) { putU32(bytes_, v); }
void CheckpointWriter::u64(uint64_t v) { putU64(bytes_, v); }

void CheckpointWriter::f64(double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof bits);
  putU64(bytes_, bits);
}

void CheckpointWriter::str(const std::string& s) {
  putU64(bytes_, s.size());
  bytes_.insert(bytes_.end(), s.begin(), s.end());
}

void CheckpointWriter::f64vec(const std::vector<double>& v) {
  putU64(bytes_, v.size());
  for (double d : v) f64(d);
}

void CheckpointWriter::blob(const std::vector<uint8_t>& v) {
  putU64(bytes_, v.size());
  bytes_.insert(bytes_.end(), v.begin(), v.end());
}

void CheckpointReader::need(size_t n) const {
  if (pos_ + n > bytes_.size()) {
    throw InvalidInputError("checkpoint payload truncated");
  }
}

uint8_t CheckpointReader::u8() {
  need(1);
  return bytes_[pos_++];
}

uint32_t CheckpointReader::u32() {
  need(4);
  const uint32_t v = getU32(bytes_.data() + pos_);
  pos_ += 4;
  return v;
}

uint64_t CheckpointReader::u64() {
  need(8);
  const uint64_t v = getU64(bytes_.data() + pos_);
  pos_ += 8;
  return v;
}

double CheckpointReader::f64() {
  const uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string CheckpointReader::str() {
  const uint64_t n = u64();
  need(n);
  std::string s(reinterpret_cast<const char*>(bytes_.data() + pos_), n);
  pos_ += n;
  return s;
}

std::vector<double> CheckpointReader::f64vec() {
  const uint64_t n = u64();
  std::vector<double> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(f64());
  return v;
}

std::vector<uint8_t> CheckpointReader::blob() {
  const uint64_t n = u64();
  need(n);
  std::vector<uint8_t> v(bytes_.begin() + static_cast<long>(pos_),
                         bytes_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return v;
}

bool checkpointFileExists(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return in.good();
}

void writeCheckpointFile(const std::string& path, uint32_t kind,
                         const CheckpointWriter& payload) {
  std::vector<uint8_t> file;
  file.reserve(24 + payload.bytes().size() + 4);
  file.insert(file.end(), kMagic, kMagic + sizeof kMagic);
  putU32(file, kCheckpointFormatVersion);
  putU32(file, kind);
  putU64(file, payload.bytes().size());
  file.insert(file.end(), payload.bytes().begin(), payload.bytes().end());
  putU32(file, crc32(payload.bytes().data(), payload.bytes().size()));

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) throw Error("checkpoint: cannot open '" + tmp + "' for writing");
    out.write(reinterpret_cast<const char*>(file.data()),
              static_cast<std::streamsize>(file.size()));
    out.flush();
    if (!out) throw Error("checkpoint: short write to '" + tmp + "'");
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw Error("checkpoint: cannot rename '" + tmp + "' to '" + path + "'");
  }
}

CheckpointReader readCheckpointFile(const std::string& path, uint32_t kind) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InvalidInputError("checkpoint: cannot open '" + path + "'");
  std::vector<uint8_t> file((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
  if (file.size() < 28 || std::memcmp(file.data(), kMagic, sizeof kMagic) != 0) {
    throw InvalidInputError("checkpoint: '" + path + "' is not a VLS checkpoint");
  }
  const uint32_t format = getU32(file.data() + 8);
  if (format != kCheckpointFormatVersion) {
    throw InvalidInputError("checkpoint: '" + path + "' has unsupported format version " +
                            std::to_string(format));
  }
  const uint32_t file_kind = getU32(file.data() + 12);
  if (file_kind != kind) {
    throw InvalidInputError("checkpoint: '" + path + "' holds payload kind " +
                            std::to_string(file_kind) + ", expected " + std::to_string(kind));
  }
  const uint64_t size = getU64(file.data() + 16);
  if (file.size() != 24 + size + 4) {
    throw InvalidInputError("checkpoint: '" + path + "' payload size mismatch");
  }
  const uint32_t stored_crc = getU32(file.data() + 24 + size);
  if (crc32(file.data() + 24, size) != stored_crc) {
    throw InvalidInputError("checkpoint: '" + path + "' failed CRC verification");
  }
  return CheckpointReader(
      std::vector<uint8_t>(file.begin() + 24, file.begin() + 24 + static_cast<long>(size)));
}

}  // namespace vls
