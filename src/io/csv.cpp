#include "io/csv.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "base/error.hpp"

namespace vls {
namespace {

void renderCsv(std::ostream& os, const std::vector<CsvColumn>& columns) {
  if (columns.empty()) throw InvalidInputError("writeCsv: no columns");
  const size_t n = columns.front().values.size();
  for (const auto& col : columns) {
    if (col.values.size() != n) throw InvalidInputError("writeCsv: ragged columns");
  }
  for (size_t c = 0; c < columns.size(); ++c) {
    if (c) os << ',';
    os << columns[c].name;
  }
  os << '\n';
  char buf[48];
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < columns.size(); ++c) {
      if (c) os << ',';
      std::snprintf(buf, sizeof buf, "%.9g", columns[c].values[r]);
      os << buf;
    }
    os << '\n';
  }
}

}  // namespace

void writeCsv(const std::string& path, const std::vector<CsvColumn>& columns) {
  std::ofstream out(path);
  if (!out) throw InvalidInputError("writeCsv: cannot open '" + path + "'");
  renderCsv(out, columns);
}

std::string csvToString(const std::vector<CsvColumn>& columns) {
  std::ostringstream oss;
  renderCsv(oss, columns);
  return oss.str();
}

void writeWaveformsCsv(const std::string& path, const TransientResult& result,
                       const std::vector<std::string>& nodes) {
  std::vector<CsvColumn> cols;
  cols.push_back({"time", result.time()});
  for (const auto& name : nodes) {
    cols.push_back({name, result.node(name).value});
  }
  writeCsv(path, cols);
}

}  // namespace vls
