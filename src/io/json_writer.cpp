#include "io/json_writer.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>

#include "base/error.hpp"

namespace vls {
namespace {

void appendEscaped(std::string& out, const std::string& s) {
  out += '"';
  for (char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += ch;
    }
  }
  out += '"';
}

}  // namespace

void JsonValue::dumpTo(std::string& out, int indent) const {
  const std::string pad(static_cast<size_t>(indent) * 2, ' ');
  const std::string pad_in(static_cast<size_t>(indent + 1) * 2, ' ');
  if (std::holds_alternative<std::nullptr_t>(value_)) {
    out += "null";
  } else if (const bool* b = std::get_if<bool>(&value_)) {
    out += *b ? "true" : "false";
  } else if (const double* d = std::get_if<double>(&value_)) {
    if (!std::isfinite(*d)) {
      out += "null";
    } else {
      char buf[48];
      std::snprintf(buf, sizeof buf, "%.12g", *d);
      out += buf;
    }
  } else if (const std::string* s = std::get_if<std::string>(&value_)) {
    appendEscaped(out, *s);
  } else if (const Array* a = std::get_if<Array>(&value_)) {
    if (a->empty()) {
      out += "[]";
      return;
    }
    out += "[\n";
    for (size_t i = 0; i < a->size(); ++i) {
      out += pad_in;
      (*a)[i].dumpTo(out, indent + 1);
      if (i + 1 < a->size()) out += ',';
      out += '\n';
    }
    out += pad + ']';
  } else if (const Object* o = std::get_if<Object>(&value_)) {
    if (o->empty()) {
      out += "{}";
      return;
    }
    out += "{\n";
    size_t i = 0;
    for (const auto& [key, val] : *o) {
      out += pad_in;
      appendEscaped(out, key);
      out += ": ";
      val.dumpTo(out, indent + 1);
      if (++i < o->size()) out += ',';
      out += '\n';
    }
    out += pad + '}';
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dumpTo(out, 0);
  out += '\n';
  return out;
}

void writeJsonFile(const std::string& path, const JsonValue& value) {
  std::ofstream out(path);
  if (!out) throw InvalidInputError("writeJsonFile: cannot open '" + path + "'");
  out << value.dump();
}

}  // namespace vls
