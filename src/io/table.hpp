// ASCII table formatter used by the benchmark binaries to print the
// paper's tables with aligned columns.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace vls {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Add one row (must match the header count).
  void addRow(std::vector<std::string> cells);

  /// Formatting helpers for numeric cells.
  static std::string fmt(double value, int precision = 3);
  /// Scaled by unit (e.g. 1e-12 with suffix "ps").
  static std::string fmtScaled(double value, double unit, int precision = 1);

  void print(std::ostream& os) const;
  std::string toString() const;

  size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vls
