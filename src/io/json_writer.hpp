// Minimal JSON emitter for experiment result archiving (no external
// dependencies; write-only).
#pragma once

#include <initializer_list>
#include <map>
#include <string>
#include <variant>
#include <vector>

namespace vls {

class JsonValue {
 public:
  using Array = std::vector<JsonValue>;
  using Object = std::map<std::string, JsonValue>;

  JsonValue() : value_(nullptr) {}
  JsonValue(std::nullptr_t) : value_(nullptr) {}
  JsonValue(bool b) : value_(b) {}
  JsonValue(double d) : value_(d) {}
  JsonValue(int i) : value_(static_cast<double>(i)) {}
  JsonValue(size_t i) : value_(static_cast<double>(i)) {}
  JsonValue(const char* s) : value_(std::string(s)) {}
  JsonValue(std::string s) : value_(std::move(s)) {}
  JsonValue(Array a) : value_(std::move(a)) {}
  JsonValue(Object o) : value_(std::move(o)) {}
  JsonValue(const std::vector<double>& xs) {
    Array a;
    a.reserve(xs.size());
    for (double x : xs) a.emplace_back(x);
    value_ = std::move(a);
  }

  /// Serialize (pretty-printed with 2-space indent).
  std::string dump() const;

 private:
  void dumpTo(std::string& out, int indent) const;
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> value_;
};

/// Write JSON to a file.
void writeJsonFile(const std::string& path, const JsonValue& value);

}  // namespace vls
