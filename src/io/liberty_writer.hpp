// Liberty (.lib) export of level-shifter characterization results — the
// handoff format a standard-cell methodology team expects. One cell per
// (VDDI, VDDO) characterization corner with pin timing/power groups and
// cell leakage.
#pragma once

#include <string>
#include <vector>

#include "analysis/shifter_harness.hpp"

namespace vls {

struct LibertyCellData {
  std::string cell_name;
  double vddi = 0.8;
  double vddo = 1.2;
  double area_um2 = 0.0;
  bool inverting = true;
  ShifterMetrics metrics;
};

struct LibertyLibrarySpec {
  std::string library_name = "sstvs_ls_lib";
  double nom_temperature_c = 27.0;
  std::string process = "typical";
};

/// Render a Liberty library containing the given cells.
std::string writeLiberty(const LibertyLibrarySpec& spec,
                         const std::vector<LibertyCellData>& cells);

/// Write to a file.
void writeLibertyFile(const std::string& path, const LibertyLibrarySpec& spec,
                      const std::vector<LibertyCellData>& cells);

}  // namespace vls
