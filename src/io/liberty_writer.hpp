// Liberty (.lib) export of level-shifter characterization results — the
// handoff format a standard-cell methodology team expects. One cell per
// (VDDI, VDDO) characterization corner with pin timing/power groups and
// cell leakage. Cells carry either scalar point metrics (the quick
// harness summary) or full NLDM lookup tables (the characterization
// farm: input-slew x output-load grids for delay, output transition and
// switching power).
#pragma once

#include <string>
#include <vector>

#include "analysis/characterize.hpp"
#include "analysis/shifter_harness.hpp"

namespace vls {

/// One NLDM lookup table: index_1 = input transition [ps], index_2 =
/// output load [fF], values in row-major index_1-major order (the
/// Liberty `values` group emits one quoted row per index_1 entry).
struct LibertyNldmTable {
  std::vector<double> index_1;
  std::vector<double> index_2;
  std::vector<double> values;

  bool empty() const { return values.empty(); }
  double at(size_t i1, size_t i2) const { return values[i1 * index_2.size() + i2]; }
};

/// One annotated characterization hole: a grid point whose simulation
/// failed every degrade-don't-abort attempt. The NLDM tables carry 0
/// at the point; the writer emits a comment naming it so downstream
/// consumers see the gap instead of silently interpolating through it.
struct LibertyTableHole {
  size_t i1 = 0;     ///< index_1 (slew) position
  size_t i2 = 0;     ///< index_2 (load) position
  std::string note;  ///< failure attribution (stage / node / message)
};

struct LibertyCellData {
  std::string cell_name;
  double vddi = 0.8;
  double vddo = 1.2;
  double area_um2 = 0.0;
  bool inverting = true;
  ShifterMetrics metrics;
  /// Failed grid points to annotate (empty on a clean run).
  std::vector<LibertyTableHole> holes;

  // NLDM groups (all six present together or all absent; absent =
  // legacy scalar timing/power groups from `metrics`). Delay and
  // transition values in ps, power values in fJ.
  LibertyNldmTable cell_rise;
  LibertyNldmTable cell_fall;
  LibertyNldmTable rise_transition;
  LibertyNldmTable fall_transition;
  LibertyNldmTable rise_power;
  LibertyNldmTable fall_power;

  bool hasNldm() const { return !cell_rise.empty(); }
};

struct LibertyLibrarySpec {
  std::string library_name = "sstvs_ls_lib";
  double nom_temperature_c = 27.0;
  std::string process = "typical";
};

/// Render a Liberty library containing the given cells. Cells with NLDM
/// tables reference auto-emitted lu_table_template groups (one per
/// distinct table shape).
std::string writeLiberty(const LibertyLibrarySpec& spec,
                         const std::vector<LibertyCellData>& cells);

/// Write to a file.
void writeLibertyFile(const std::string& path, const LibertyLibrarySpec& spec,
                      const std::vector<LibertyCellData>& cells);

/// Convert characterization-farm output into Liberty cells: one cell
/// per (kind, corner) table, named "<kind>_<corner>", with the six NLDM
/// groups filled from the grid and leakage from the static harness.
std::vector<LibertyCellData> libertyCellsFromCharacterization(
    const std::vector<CharTable>& tables);

}  // namespace vls
