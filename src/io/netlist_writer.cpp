#include "io/netlist_writer.hpp"

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>

#include "base/error.hpp"
#include "devices/diode.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"

namespace vls {
namespace {

std::string num(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

// Netlist element names must be single tokens; hierarchical names from
// cell builders contain dots which SPICE accepts, but spaces would not.
std::string sanitize(const std::string& name) {
  std::string out = name;
  for (char& ch : out) {
    if (ch == ' ' || ch == '\t') ch = '_';
  }
  return out;
}

}  // namespace

std::string writeNetlist(const Circuit& circuit, const std::string& title) {
  std::ostringstream os;
  os << title << '\n';
  const EvalContext dummy{};  // unused by name/terminal queries

  std::map<std::string, const MosModelCard*> used_models;
  auto node_name = [&](NodeId n) { return circuit.nodeName(n); };

  for (const auto& dev : circuit.devices()) {
    const std::string name = sanitize(dev->name());
    if (const auto* r = dynamic_cast<const Resistor*>(dev.get())) {
      os << "R" << name << ' ' << node_name(r->terminalNode(0)) << ' '
         << node_name(r->terminalNode(1)) << ' ' << num(r->resistance()) << '\n';
    } else if (const auto* cp = dynamic_cast<const Capacitor*>(dev.get())) {
      os << "C" << name << ' ' << node_name(cp->terminalNode(0)) << ' '
         << node_name(cp->terminalNode(1)) << ' ' << num(cp->capacitance()) << '\n';
    } else if (const auto* l = dynamic_cast<const Inductor*>(dev.get())) {
      os << "L" << name << ' ' << node_name(l->terminalNode(0)) << ' '
         << node_name(l->terminalNode(1)) << ' ' << num(l->inductance()) << '\n';
    } else if (const auto* v = dynamic_cast<const VoltageSource*>(dev.get())) {
      os << "V" << name << ' ' << node_name(v->terminalNode(0)) << ' '
         << node_name(v->terminalNode(1)) << ' ' << v->waveform().toSpice() << '\n';
    } else if (const auto* i = dynamic_cast<const CurrentSource*>(dev.get())) {
      os << "I" << name << ' ' << node_name(i->terminalNode(0)) << ' '
         << node_name(i->terminalNode(1)) << ' ' << i->waveform().toSpice() << '\n';
    } else if (const auto* m = dynamic_cast<const Mosfet*>(dev.get())) {
      const MosGeometry& g = m->geometry();
      os << "M" << name;
      for (size_t t = 0; t < 4; ++t) os << ' ' << node_name(m->terminalNode(t));
      os << ' ' << m->model().name << " w=" << num(g.w) << " l=" << num(g.l) << '\n';
      used_models.emplace(m->model().name, &m->model());
    } else if (const auto* d = dynamic_cast<const Diode*>(dev.get())) {
      os << "D" << name << ' ' << node_name(d->terminalNode(0)) << ' '
         << node_name(d->terminalNode(1)) << '\n';
    } else {
      os << "* (unexported device: " << name << ")\n";
    }
    (void)dummy;
  }

  for (const auto& [mname, card] : used_models) {
    os << ".model " << mname << ' ' << (card->type == MosType::Nmos ? "nmos" : "pmos")
       << " vto=" << num(card->vt0) << " kp=" << num(card->kp) << " gamma=" << num(card->gamma)
       << " phi=" << num(card->phi) << " lambda=" << num(card->lambda)
       << " theta=" << num(card->theta) << " n=" << num(card->n_slope)
       << " sigma=" << num(card->sigma_dibl) << " tox=" << num(card->tox) << '\n';
  }
  os << ".end\n";
  return os.str();
}

void writeNetlistFile(const std::string& path, const Circuit& circuit, const std::string& title) {
  std::ofstream out(path);
  if (!out) throw InvalidInputError("writeNetlistFile: cannot open '" + path + "'");
  out << writeNetlist(circuit, title);
}

}  // namespace vls
