#include "io/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "base/error.hpp"
#include "numeric/interpolation.hpp"

namespace vls {
namespace {

constexpr char kMarks[] = {'*', '+', 'o', 'x', '#', '@'};

std::string engTime(double t) {
  char buf[32];
  if (t < 1e-9) {
    std::snprintf(buf, sizeof buf, "%.0fps", t * 1e12);
  } else if (t < 1e-6) {
    std::snprintf(buf, sizeof buf, "%.2fns", t * 1e9);
  } else {
    std::snprintf(buf, sizeof buf, "%.2fus", t * 1e6);
  }
  return buf;
}

}  // namespace

std::string renderAsciiPlot(const std::vector<std::pair<std::string, Signal>>& traces,
                            const AsciiPlotOptions& options) {
  if (traces.empty()) throw InvalidInputError("renderAsciiPlot: no traces");
  const int w = std::max(10, options.width);
  const int h = std::max(3, options.height);

  double t0 = options.t_start;
  double t1 = options.t_stop;
  if (t1 <= t0) {
    t1 = 0.0;
    for (const auto& [name, sig] : traces) {
      if (!sig.time.empty()) t1 = std::max(t1, sig.time.back());
    }
  }
  if (t1 <= t0) throw InvalidInputError("renderAsciiPlot: empty time window");

  // Global range for a shared axis.
  double g_lo = 1e300;
  double g_hi = -1e300;
  for (const auto& [name, sig] : traces) {
    for (size_t i = 0; i < sig.time.size(); ++i) {
      if (sig.time[i] < t0 || sig.time[i] > t1) continue;
      g_lo = std::min(g_lo, sig.value[i]);
      g_hi = std::max(g_hi, sig.value[i]);
    }
  }
  if (g_lo > g_hi) {
    g_lo = 0.0;
    g_hi = 1.0;
  }

  std::string out;
  auto render_band = [&](const std::vector<size_t>& trace_ids, double lo, double hi) {
    if (hi - lo < 1e-12) hi = lo + 1.0;
    std::vector<std::string> grid(h, std::string(w, ' '));
    for (size_t which = 0; which < trace_ids.size(); ++which) {
      const auto& [name, sig] = traces[trace_ids[which]];
      const char mark = kMarks[which % sizeof kMarks];
      for (int col = 0; col < w; ++col) {
        const double t = t0 + (t1 - t0) * col / (w - 1);
        const double v = interpLinear(sig.time, sig.value, t);
        int row = static_cast<int>(std::lround((v - lo) / (hi - lo) * (h - 1)));
        row = std::clamp(row, 0, h - 1);
        grid[h - 1 - row][col] = mark;
      }
    }
    char label[64];
    for (int r = 0; r < h; ++r) {
      const double v = hi - (hi - lo) * r / (h - 1);
      std::snprintf(label, sizeof label, "%8.3f |", v);
      out += label;
      out += grid[r];
      out += '\n';
    }
    out += "         +" + std::string(w, '-') + '\n';
    out += "          " + engTime(t0) + std::string(std::max(1, w - 16), ' ') + engTime(t1) + '\n';
  };

  if (options.shared_axis) {
    out += "traces:";
    std::vector<size_t> ids;
    for (size_t i = 0; i < traces.size(); ++i) {
      ids.push_back(i);
      out += " [";
      out += kMarks[i % sizeof kMarks];
      out += "] " + traces[i].first;
    }
    out += '\n';
    render_band(ids, g_lo, g_hi);
  } else {
    for (size_t i = 0; i < traces.size(); ++i) {
      double lo = 1e300;
      double hi = -1e300;
      const Signal& sig = traces[i].second;
      for (size_t k = 0; k < sig.time.size(); ++k) {
        if (sig.time[k] < t0 || sig.time[k] > t1) continue;
        lo = std::min(lo, sig.value[k]);
        hi = std::max(hi, sig.value[k]);
      }
      if (lo > hi) {
        lo = 0.0;
        hi = 1.0;
      }
      out += traces[i].first + ":\n";
      render_band({i}, lo, hi);
    }
  }
  return out;
}

std::string plotNodes(const TransientResult& result, const std::vector<std::string>& nodes,
                      const AsciiPlotOptions& options) {
  std::vector<std::pair<std::string, Signal>> traces;
  traces.reserve(nodes.size());
  for (const auto& n : nodes) traces.emplace_back(n, result.node(n));
  return renderAsciiPlot(traces, options);
}

}  // namespace vls
