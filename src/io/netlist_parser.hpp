// SPICE-subset netlist parser. Supported:
//   * title line (first line), '*' comments, ';'/'$' inline comments,
//     '+' continuations, case-insensitive keywords
//   * elements: R, C, L, V, I, E (VCVS), G (VCCS), D, M, X
//   * sources: DC value, PULSE(...), PWL(...), SIN(...), EXP(...)
//   * .model (NMOS/PMOS level-agnostic cards mapped onto the EKV model),
//     built-in cards by name: nmos, nmos_hvt, nmos_lvt, pmos, pmos_hvt
//   * .subckt / .ends with nested X expansion (flattened at parse time)
//   * .tran step stop | .op | .dc <vsrc> from to step | .temp | .save
//   * .end
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "circuit/circuit.hpp"

namespace vls {

struct AnalysisCommand {
  enum class Kind { Op, Tran, DcSweep, Ac };
  Kind kind = Kind::Op;
  double tran_step = 0.0;
  double tran_stop = 0.0;
  std::string dc_source;
  double dc_from = 0.0;
  double dc_to = 0.0;
  double dc_step = 0.0;
  double ac_fstart = 0.0;
  double ac_fstop = 0.0;
  int ac_points_per_decade = 10;
};

struct ParsedNetlist {
  std::string title;
  Circuit circuit;
  std::vector<AnalysisCommand> analyses;
  std::vector<std::string> save_nodes;
  double temperature_c = 27.0;
};

/// Parse netlist text. Throws InvalidInputError with a line reference on
/// malformed input.
ParsedNetlist parseNetlist(std::string_view text);

/// Parse a netlist file from disk.
ParsedNetlist parseNetlistFile(const std::string& path);

}  // namespace vls
