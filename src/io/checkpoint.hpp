// Versioned, CRC-guarded binary checkpoint container for the long
// batch workloads (Monte-Carlo, the characterization farm). This layer
// owns only the envelope and the primitive encodings; each engine
// defines its own payload layout (with its own sub-version tag) on top
// of CheckpointWriter / CheckpointReader.
//
// File layout (all integers little-endian):
//   magic   "VLSCKPT\0"            8 bytes
//   format  u32                     container format version
//   kind    u32                     payload kind tag (engine-specific)
//   size    u64                     payload byte count
//   payload size bytes
//   crc     u32                     CRC-32 (IEEE) over the payload
//
// Writes are atomic: the file is written to "<path>.tmp" and renamed
// over the destination, so a checkpoint on disk is always complete —
// a killed writer can never leave a torn file behind. Doubles are
// stored as raw IEEE-754 bit patterns, so round-trips are bit-exact
// (the foundation of the resume-bit-identity guarantee).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace vls {

/// Container format version (bumped on envelope layout changes).
constexpr uint32_t kCheckpointFormatVersion = 1;

/// Payload kind tags (one per engine; each payload carries its own
/// engine-level sub-version as its first u32).
constexpr uint32_t kCheckpointKindMonteCarlo = 1;
constexpr uint32_t kCheckpointKindCharFarm = 2;

/// CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) of a byte range.
uint32_t crc32(const uint8_t* data, size_t n);

/// Append-only primitive encoder for a checkpoint payload.
class CheckpointWriter {
 public:
  void u8(uint8_t v) { bytes_.push_back(v); }
  void u32(uint32_t v);
  void u64(uint64_t v);
  void f64(double v);  ///< raw IEEE-754 bit pattern (bit-exact round-trip)
  void str(const std::string& s);
  void f64vec(const std::vector<double>& v);
  void blob(const std::vector<uint8_t>& v);  ///< length-prefixed byte blob

  const std::vector<uint8_t>& bytes() const { return bytes_; }

 private:
  std::vector<uint8_t> bytes_;
};

/// Sequential decoder over a checkpoint payload. Every read throws
/// InvalidInputError on underrun, so a truncated or mislabeled payload
/// fails loudly instead of yielding garbage.
class CheckpointReader {
 public:
  explicit CheckpointReader(std::vector<uint8_t> bytes) : bytes_(std::move(bytes)) {}

  uint8_t u8();
  uint32_t u32();
  uint64_t u64();
  double f64();
  std::string str();
  std::vector<double> f64vec();
  std::vector<uint8_t> blob();

  bool atEnd() const { return pos_ == bytes_.size(); }

 private:
  void need(size_t n) const;

  std::vector<uint8_t> bytes_;
  size_t pos_ = 0;
};

/// True when a checkpoint file exists at `path`.
bool checkpointFileExists(const std::string& path);

/// Atomically write a checkpoint file (tmp + rename). Throws Error on
/// I/O failure.
void writeCheckpointFile(const std::string& path, uint32_t kind,
                         const CheckpointWriter& payload);

/// Read and verify a checkpoint file: magic, format version, kind tag
/// and payload CRC must all match or InvalidInputError is thrown.
/// Returns a reader positioned at the start of the payload.
CheckpointReader readCheckpointFile(const std::string& path, uint32_t kind);

}  // namespace vls
