#include "io/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "base/error.hpp"

namespace vls {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw InvalidInputError("Table: need at least one column");
}

void Table::addRow(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw InvalidInputError("Table::addRow: wrong cell count");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::fmt(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*g", precision, value);
  return buf;
}

std::string Table::fmtScaled(double value, double unit, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value / unit);
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }
  auto line = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  auto emit = [&](const std::vector<std::string>& cells) {
    os << '|';
    for (size_t c = 0; c < cells.size(); ++c) {
      os << ' ' << cells[c] << std::string(widths[c] - cells[c].size(), ' ') << " |";
    }
    os << '\n';
  };
  line();
  emit(headers_);
  line();
  for (const auto& row : rows_) emit(row);
  line();
}

std::string Table::toString() const {
  std::ostringstream oss;
  print(oss);
  return oss.str();
}

}  // namespace vls
