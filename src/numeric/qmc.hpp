// Quasi-Monte-Carlo sample generators for variance-reduced process
// variation analysis: scrambled Sobol digital sequences and Latin
// hypercube sampling, plus the inverse normal CDF that maps their
// uniform coordinates onto the Gaussian W/L/VT/temperature draws.
//
// Determinism contract (shared with the pseudo-random path): point(s)
// depends only on (construction parameters, index s) — never on call
// order, thread count, or how many points were generated before — so
// Monte-Carlo sample s receives identical perturbations for every
// {threads, ensemble_width, streaming} combination. Both generators
// are O(1) memory per point and safe to call concurrently on a const
// instance.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace vls {

/// How Monte-Carlo perturbations are drawn.
enum class SamplingMode {
  Pseudo,          ///< independent xoshiro streams per sample (the default)
  LatinHypercube,  ///< one stratum per sample and dimension
  Sobol,           ///< scrambled Sobol digital (t,s)-sequence
};

const char* samplingModeName(SamplingMode mode);

/// Inverse standard-normal CDF. Monotone, accurate to ~1 ulp of the
/// erfc-based forward CDF (Abramowitz–Stegun 26.2.23 initial guess
/// refined by Newton on 0.5*erfc(-x/sqrt 2)). Returns +/-infinity for
/// p outside (0, 1); QMC callers keep coordinates strictly inside by
/// construction.
double inverseNormalCdf(double p);

/// Scrambled Sobol sequence, up to kMaxDims dimensions and 2^32
/// points. Direction numbers come from primitive polynomials over
/// GF(2) found by exhaustive search at construction (deterministic:
/// polynomials are assigned to dimensions in increasing numeric
/// order) with deterministically derived odd initial values;
/// dimension 0 is the van der Corput sequence in base 2. Scrambling is
/// Matousek-style: a random unit-lower-triangular linear scramble of
/// the direction numbers plus a random digital shift, both derived
/// from `scramble_seed` — distinct seeds give independent randomized
/// QMC replicates (the standard RQMC variance estimate), seed-equal
/// instances are identical.
class SobolSequence {
 public:
  static constexpr unsigned kMaxDims = 64;

  /// scramble = false gives the raw (unscrambled) sequence, whose
  /// first dimension is exactly van der Corput — used by tests.
  explicit SobolSequence(unsigned dims, uint64_t scramble_seed = 0, bool scramble = true);

  unsigned dims() const { return dims_; }

  /// Writes the index-th point into out[0..dims). Coordinates are
  /// centered digital values ((x + 0.5) * 2^-32), strictly inside
  /// (0, 1). Throws InvalidInputError for index >= 2^32.
  void point(uint64_t index, double* out) const;
  std::vector<double> point(uint64_t index) const;

 private:
  unsigned dims_;
  /// 32 direction numbers per dimension, scrambled at construction.
  std::vector<std::array<uint32_t, 32>> directions_;
  std::vector<uint32_t> shift_;
};

/// Latin hypercube sampler over a fixed number of samples: in every
/// dimension, each of the n strata [j/n, (j+1)/n) is hit by exactly
/// one sample. The stratum permutation is a seeded 4-round Feistel
/// cipher (cycle-walked onto [0, n)), so point(s) is O(1) time and
/// memory — no materialized permutation tables, which matters at 10^6
/// samples x dozens of dimensions. Within-stratum jitter is a
/// per-(dimension, sample) hash.
class LatinHypercube {
 public:
  LatinHypercube(unsigned dims, uint64_t samples, uint64_t seed);

  unsigned dims() const { return dims_; }
  uint64_t samples() const { return n_; }

  /// Writes the index-th point into out[0..dims); index < samples().
  void point(uint64_t index, double* out) const;
  std::vector<double> point(uint64_t index) const;

 private:
  uint64_t permute(unsigned dim, uint64_t index) const;

  unsigned dims_;
  uint64_t n_;
  uint64_t seed_;
  unsigned half_bits_;  ///< Feistel half-width; domain is 2^(2*half_bits)
};

}  // namespace vls
