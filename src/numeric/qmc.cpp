#include "numeric/qmc.hpp"

#include <cmath>

#include "base/error.hpp"

namespace vls {

namespace {

uint64_t splitmix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Standard-normal CDF via erfc (accurate in both tails).
double normalCdf(double x) { return 0.5 * std::erfc(-x * M_SQRT1_2); }

/// True iff `poly` (monic, degree d, constant term 1, bits d..0) is
/// primitive over GF(2): x must have multiplicative order 2^d - 1 in
/// GF(2)[x]/(poly). The order of any unit is at most 2^d - 1, and it
/// equals 2^d - 1 only when the quotient is the field GF(2^d) and x
/// generates it, so checking that no smaller power of x is 1 suffices.
bool isPrimitivePoly(uint32_t poly, int d) {
  const uint32_t period = (1u << d) - 1;
  uint32_t r = 2;  // the element x
  for (uint32_t k = 1; k < period; ++k) {
    if (r == 1) return false;  // order k < period
    r <<= 1;
    if (r & (1u << d)) r ^= poly;
  }
  return r == 1;
}

/// Parity of the population count (GF(2) dot product helper).
uint32_t parity32(uint32_t x) {
  x ^= x >> 16;
  x ^= x >> 8;
  x ^= x >> 4;
  x ^= x >> 2;
  x ^= x >> 1;
  return x & 1u;
}

}  // namespace

const char* samplingModeName(SamplingMode mode) {
  switch (mode) {
    case SamplingMode::Pseudo: return "pseudo";
    case SamplingMode::LatinHypercube: return "lhs";
    case SamplingMode::Sobol: return "sobol";
  }
  return "?";
}

double inverseNormalCdf(double p) {
  if (!(p > 0.0)) return -HUGE_VAL;
  if (!(p < 1.0)) return HUGE_VAL;
  if (p == 0.5) return 0.0;

  // Work in the lower tail (x <= 0) where 0.5*erfc(-x/sqrt2) keeps
  // full relative accuracy, and mirror at the end.
  const bool upper = p > 0.5;
  const double pl = upper ? 1.0 - p : p;

  // Abramowitz & Stegun 26.2.23 rational approximation (|error| <
  // 4.5e-4 over the whole tail), then Newton: each step roughly
  // squares the error, so four steps reach machine precision even at
  // p ~ 1e-300.
  const double t = std::sqrt(-2.0 * std::log(pl));
  double x = -(t - (2.515517 + t * (0.802853 + t * 0.010328)) /
                       (1.0 + t * (1.432788 + t * (0.189269 + t * 0.001308))));
  for (int i = 0; i < 4; ++i) {
    const double density = std::exp(-0.5 * x * x) * 0.3989422804014327;  // 1/sqrt(2 pi)
    if (density <= 0.0) break;  // |x| > ~38: beyond double's tail resolution
    const double step = (normalCdf(x) - pl) / density;
    x -= step;
    if (std::fabs(step) < 1e-15 * std::fabs(x)) break;
  }
  return upper ? -x : x;
}

SobolSequence::SobolSequence(unsigned dims, uint64_t scramble_seed, bool scramble)
    : dims_(dims) {
  if (dims == 0 || dims > kMaxDims) {
    throw InvalidInputError("SobolSequence: dims must be in [1, 64]");
  }
  directions_.resize(dims);
  shift_.assign(dims, 0);

  // Dimension 0: van der Corput (v_k = 2^-k as a binary fraction).
  for (int k = 0; k < 32; ++k) directions_[0][k] = 1u << (31 - k);

  // Dimensions 1..: one primitive polynomial each, assigned in
  // increasing numeric (hence degree) order. Initial direction values
  // m_1..m_d are odd, m_j < 2^j, derived deterministically from the
  // (dimension, j) pair with a fixed internal constant so the base
  // construction never depends on the scramble seed.
  unsigned dim = 1;
  for (int degree = 1; degree <= 10 && dim < dims; ++degree) {
    const uint32_t lo = (1u << degree) | 1u;
    const uint32_t hi = 1u << (degree + 1);
    for (uint32_t poly = lo; poly < hi && dim < dims; poly += 2) {
      if (!isPrimitivePoly(poly, degree)) continue;
      uint32_t m[33];
      for (int j = 1; j <= degree; ++j) {
        const uint64_t h = splitmix64(0x53624F4C00000000ull ^ (uint64_t(dim) << 16) ^ uint64_t(j));
        m[j] = (static_cast<uint32_t>(h) & ((1u << j) - 1u)) | 1u;
      }
      for (int k = degree + 1; k <= 32; ++k) {
        uint32_t v = m[k - degree] ^ (m[k - degree] << degree);
        for (int i = 1; i < degree; ++i) {
          if ((poly >> (degree - i)) & 1u) v ^= m[k - i] << i;
        }
        m[k] = v;
      }
      for (int k = 1; k <= 32; ++k) directions_[dim][k - 1] = m[k] << (32 - k);
      ++dim;
    }
  }
  if (dim < dims_ && dims_ > 1) {
    throw NumericalError("SobolSequence: primitive polynomial search exhausted");
  }

  if (!scramble) return;

  // Matousek linear scramble: left-multiply every direction number by
  // a random unit-lower-triangular bit matrix L (per dimension), then
  // add a random digital shift. Row i of L (digit i, MSB first) may
  // mix in any earlier digit j < i; the unit diagonal keeps L
  // invertible, so the scrambled sequence remains a digital net.
  for (unsigned d = 0; d < dims_; ++d) {
    uint32_t rows[32];
    for (int i = 0; i < 32; ++i) {
      const uint64_t h =
          splitmix64(scramble_seed ^ 0x4C4D530000000000ull ^ (uint64_t(d) << 8) ^ uint64_t(i));
      // Digit i lives in bit (31 - i); allowed mix bits are the strictly
      // higher bits (earlier digits) plus the diagonal.
      const uint32_t diag = 1u << (31 - i);
      const uint32_t earlier = i == 0 ? 0u : ~((diag << 1) - 1u);
      rows[i] = (static_cast<uint32_t>(h) & earlier) | diag;
    }
    for (int k = 0; k < 32; ++k) {
      const uint32_t v = directions_[d][k];
      uint32_t sv = 0;
      for (int i = 0; i < 32; ++i) sv |= parity32(rows[i] & v) << (31 - i);
      directions_[d][k] = sv;
    }
    shift_[d] = static_cast<uint32_t>(
        splitmix64(scramble_seed ^ 0x5348494654000000ull ^ uint64_t(d)));
  }
}

void SobolSequence::point(uint64_t index, double* out) const {
  if (index >> 32) throw InvalidInputError("SobolSequence: index beyond 2^32 period");
  // Gray-code construction evaluated directly at `index` so points are
  // index-addressable (no sequential state).
  const uint32_t gray = static_cast<uint32_t>(index) ^ static_cast<uint32_t>(index >> 1);
  for (unsigned d = 0; d < dims_; ++d) {
    uint32_t x = shift_[d];
    uint32_t g = gray;
    int k = 0;
    while (g) {
      if (g & 1u) x ^= directions_[d][k];
      g >>= 1;
      ++k;
    }
    out[d] = (static_cast<double>(x) + 0.5) * 0x1.0p-32;
  }
}

std::vector<double> SobolSequence::point(uint64_t index) const {
  std::vector<double> out(dims_);
  point(index, out.data());
  return out;
}

LatinHypercube::LatinHypercube(unsigned dims, uint64_t samples, uint64_t seed)
    : dims_(dims), n_(samples), seed_(seed) {
  if (dims == 0) throw InvalidInputError("LatinHypercube: dims must be positive");
  if (samples == 0) throw InvalidInputError("LatinHypercube: samples must be positive");
  unsigned bits = 1;
  while ((uint64_t{1} << bits) < n_ && bits < 62) ++bits;
  half_bits_ = (bits + 1) / 2;
}

uint64_t LatinHypercube::permute(unsigned dim, uint64_t index) const {
  // 4-round Feistel network over [0, 2^(2*half_bits)), cycle-walked
  // until the value lands back in [0, n): a seeded bijection on the
  // strata with O(1) evaluation and no permutation tables.
  const uint64_t mask = (uint64_t{1} << half_bits_) - 1u;
  uint64_t x = index;
  do {
    uint64_t lo = x & mask;
    uint64_t hi = x >> half_bits_;
    for (int round = 0; round < 4; ++round) {
      const uint64_t f =
          splitmix64(seed_ ^ (uint64_t(dim) << 32) ^ (uint64_t(round) << 24) ^ lo) & mask;
      const uint64_t next_lo = hi ^ f;
      hi = lo;
      lo = next_lo;
    }
    x = (hi << half_bits_) | lo;
  } while (x >= n_);
  return x;
}

void LatinHypercube::point(uint64_t index, double* out) const {
  if (index >= n_) throw InvalidInputError("LatinHypercube: index beyond sample count");
  for (unsigned d = 0; d < dims_; ++d) {
    const uint64_t stratum = permute(d, index);
    // Centered 53-bit jitter keeps the coordinate strictly inside the
    // stratum and away from 0/1 (the normal inverse must stay finite).
    const uint64_t h = splitmix64(seed_ ^ 0x4C48530000000000ull ^ (uint64_t(d) << 40) ^ index);
    const double jitter = (static_cast<double>(h >> 11) + 0.5) * 0x1.0p-53;
    out[d] = (static_cast<double>(stratum) + jitter) / static_cast<double>(n_);
  }
}

std::vector<double> LatinHypercube::point(uint64_t index) const {
  std::vector<double> out(dims_);
  point(index, out.data());
  return out;
}

}  // namespace vls
