// Lane math for the ensemble (structure-of-arrays) engine. An ensemble
// runs K Monte-Carlo variants of one topology in lockstep; per-sample
// numbers live in contiguous double[K] lanes and the hot model loops
// iterate over lanes with branch-free bodies so the compiler can
// auto-vectorize them.
//
// fastExp/fastLog are Cephes-style double-precision kernels (Pade /
// rational polynomial plus exponent bit manipulation) accurate to a few
// ulp over the ranges the device models use. They exist because libm's
// exp/log dominate the scalar Newton profile and their library entry
// points defeat vectorization; the scalar simulation path keeps
// std::exp / std::log and stays the reference.
#pragma once

#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>

namespace vls {

/// Compile-time cap on ensemble width. Keeps scratch sizing simple and
/// bounds the memory amplification of lane state (the MC driver splits
/// wider requests into chunks).
inline constexpr size_t kMaxLanes = 16;

/// exp(x) for |x| <= ~700, ~2 ulp. Branch-free except for the range
/// clamp (compiled to min/max); safe inside auto-vectorized lane loops.
inline double fastExp(double x) {
  // Clamp: below -700 the true result underflows to ~0 anyway and above
  // +700 it overflows; callers (softplus/sigmoid/junction limiting)
  // clamp harder than this.
  x = x > 700.0 ? 700.0 : x;
  x = x < -700.0 ? -700.0 : x;
  // x = n*ln2 + r, |r| <= ln2/2; exp(x) = 2^n * exp(r).
  const double fn = std::floor(1.4426950408889634074 * x + 0.5);
  x -= fn * 6.93145751953125e-1;    // ln2 high part
  x -= fn * 1.42860682030941723212e-6;  // ln2 low part
  const double z = x * x;
  // exp(r) = 1 + 2r P(r^2) / (Q(r^2) - r P(r^2))  (Cephes exp.c)
  double px = 1.26177193074810590878e-4;
  px = px * z + 3.02994407707441961300e-2;
  px = px * z + 9.99999999999999999910e-1;
  px *= x;
  double qx = 3.00198505138664455042e-6;
  qx = qx * z + 2.52448340349684104192e-3;
  qx = qx * z + 2.27265548208155028766e-1;
  qx = qx * z + 2.00000000000000000005e0;
  const double r = 1.0 + 2.0 * px / (qx - px);
  // Scale by 2^n through the exponent field; n is in [-1011, 1011] after
  // the clamp so the biased exponent stays normal. n is kept in 32 bits:
  // the f64->i64 vector convert needs AVX-512DQ, the i32 one only SSE2,
  // so this is what lets the surrounding lane loops vectorize on AVX2.
  const int32_t n = static_cast<int32_t>(fn);
  const double scale =
      std::bit_cast<double>(static_cast<uint64_t>(static_cast<uint32_t>(1023 + n)) << 52);
  return r * scale;
}

/// log(x) for normal positive x, ~2 ulp (Cephes log.c). No checks:
/// callers guarantee x > 0 (softplus feeds 1 + exp(r) >= 1).
inline double fastLog(double x) {
  const uint64_t bits = std::bit_cast<uint64_t>(x);
  // 32-bit exponent for the same reason as in fastExp: the i32->f64
  // vector convert is SSE2, the i64 one is AVX-512DQ.
  int32_t e = static_cast<int32_t>((bits >> 52) & 0x7ff) - 1022;
  double m = std::bit_cast<double>((bits & 0x000fffffffffffffULL) | 0x3fe0000000000000ULL);
  // m in [0.5, 1): fold into [sqrt(1/2), sqrt(2)) around 1.
  const bool low = m < 7.07106781186547524401e-1;
  m = low ? m + m : m;
  e = low ? e - 1 : e;
  m -= 1.0;
  // log(1+m) = m - m^2/2 + m^3 P(m)/Q(m).
  double p = 1.01875663804580931796e-4;
  p = p * m + 4.97494994976747001425e-1;
  p = p * m + 4.70579119878881725854e0;
  p = p * m + 1.44989225341610930846e1;
  p = p * m + 1.79368678507819816313e1;
  p = p * m + 7.70838733755885391666e0;
  double q = m + 1.12873587189167450590e1;
  q = q * m + 4.52279145837532221105e1;
  q = q * m + 8.29875266912776603211e1;
  q = q * m + 7.11544750618563894466e1;
  q = q * m + 2.31251620126765340583e1;
  const double z = m * m;
  double y = m * (z * p / q);
  const double fe = static_cast<double>(e);
  y += fe * -2.121944400546905827679e-4;  // ln2 low part
  y -= 0.5 * z;
  return m + y + fe * 0.693359375;  // ln2 high part
}

/// log(1 + y) for y >= 0. Loses relative accuracy below ~1e-16 where
/// softplus tails are physically negligible; absolute error stays tiny.
inline double fastLog1p(double y) { return fastLog(1.0 + y); }

/// Softplus value + derivative (sigmoid), matching the branch structure
/// of Dual softplus / the scalar model code: saturate at |x| > 40.
struct SoftplusVD {
  double v;  ///< softplus(x) = log(1 + e^x)
  double d;  ///< sigmoid(x) = d/dx softplus(x)
};

inline SoftplusVD fastSoftplus(double x) {
  const double xc = x > 40.0 ? 40.0 : (x < -40.0 ? -40.0 : x);
  const double e = fastExp(xc);
  const double mid_v = fastLog1p(e);
  const double mid_d = e / (1.0 + e);
  SoftplusVD out;
  out.v = x > 40.0 ? x : (x < -40.0 ? e : mid_v);
  out.d = x > 40.0 ? 1.0 : (x < -40.0 ? e : mid_d);
  return out;
}

/// sigmoid(x) with the same +-40 clamp the scalar device code uses.
inline double fastSigmoid(double x) {
  const double xc = x > 40.0 ? 40.0 : (x < -40.0 ? -40.0 : x);
  const double e = fastExp(-xc);
  return 1.0 / (1.0 + e);
}

/// tanh(x), clamped (exact saturation beyond |x| > 20 at double
/// precision).
inline double fastTanh(double x) {
  const double xc = x > 20.0 ? 20.0 : (x < -20.0 ? -20.0 : x);
  const double e2 = fastExp(2.0 * xc);
  return (e2 - 1.0) / (e2 + 1.0);
}

}  // namespace vls
