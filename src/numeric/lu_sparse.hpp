// Sparse LU with partial pivoting over row-list storage: rows are kept
// as sorted (column, value) vectors and merged during elimination.
//
// Elimination order matters. Cell-sized circuits (tens of unknowns)
// factor fine in natural column order, but at fabric scale (thousands
// of unknowns spanning voltage islands) natural order lets fill-in
// explode quadratically. setOrdering(LuOrdering::MinDegree) enables an
// approximate-minimum-degree column pre-ordering (src/numeric/ordering)
// computed once in the symbolic phase and reused by every refactor().
// Invariants with ordering enabled:
//   - solutions match natural order to within LU pivot-tolerance
//     semantics (same matrix, different elimination order);
//   - lastSingularColumn() always reports the *original* column id, so
//     singular-pivot node attribution is ordering-independent;
//   - fillCount() (factor entries beyond the source pattern) is the
//     regression metric for ordering quality.
//
// The factorization is split into a symbolic phase (pivot order, L/U
// fill pattern, and a row-grouped index of the source matrix, computed
// once per sparsity pattern) and a numeric phase. refactor() reruns
// only the numeric phase into the preallocated factor storage, which is
// the Newton hot path: the MNA pattern is fixed per circuit, only the
// values change between iterations.
#pragma once

#include <vector>

#include "numeric/ordering.hpp"
#include "numeric/sparse_matrix.hpp"

namespace vls {

class SparseLu {
 public:
  /// Empty factorization; call factor() or refactor() before solving.
  SparseLu() = default;

  /// Factor the given matrix. Throws NumericalError if singular.
  explicit SparseLu(const SparseMatrix& a, double pivot_threshold = 1e-13);

  /// Full factorization: recompute pivot order and fill pattern
  /// (symbolic) and the factor values (numeric). Throws NumericalError
  /// if singular.
  void factor(const SparseMatrix& a, double pivot_threshold = 1e-13);

  /// Refactor for a matrix with new values. Reuses the cached pivot
  /// order and fill pattern (numeric-only, no searching, sorting, or
  /// allocation) when the sparsity pattern matches and every cached
  /// pivot stays well-conditioned; transparently falls back to a full
  /// factor() otherwise. Throws NumericalError only if the fresh
  /// factorization is singular too.
  void refactor(const SparseMatrix& a);

  std::vector<double> solve(const std::vector<double>& b) const;
  void solveInPlace(std::vector<double>& b) const;

  /// Select the column pre-ordering for subsequent factorizations.
  /// Takes effect at the next factor(); changing it invalidates the
  /// cached symbolic analysis so the next refactor() re-runs it.
  void setOrdering(LuOrdering ordering);
  LuOrdering ordering() const { return ordering_; }

  size_t size() const { return n_; }
  /// Total stored L+U entries (fill-in diagnostics).
  size_t factorNonZeros() const;
  /// Factor entries beyond the (deduplicated) source pattern — the
  /// fill-in produced by the current elimination order.
  size_t fillCount() const;

  /// Lifetime counters (tests and perf diagnostics).
  size_t symbolicFactorizations() const { return symbolic_count_; }
  size_t numericRefactorizations() const { return numeric_count_; }

  /// Original column of the most recent singular/non-finite pivot
  /// (-1 after a successful factorization). The elimination step is
  /// mapped back through the column pre-ordering, so this is always
  /// the original unknown index regardless of LuOrdering — callers map
  /// it to a circuit node name for diagnostics.
  int lastSingularColumn() const { return last_singular_col_; }

 private:
  struct Term {
    size_t col;
    double val;
  };
  using Row = std::vector<Term>;

  /// Numeric-only replay of the cached elimination. Returns false when a
  /// cached pivot falls below the threshold (or goes non-finite), leaving
  /// the factorization invalid until the caller re-runs factor().
  bool refactorNumeric(const SparseMatrix& a);
  bool patternMatches(const SparseMatrix& a) const;

  /// Original column eliminated at step k (k itself in natural order).
  size_t colAtStep(size_t k) const { return permuted_ ? col_at_step_[k] : k; }

  size_t n_ = 0;
  bool valid_ = false;  // false until a factorization completes; a throwing
                        // factor() leaves partially overwritten caches behind
  double pivot_threshold_ = 1e-13;
  LuOrdering ordering_ = LuOrdering::Natural;
  bool permuted_ = false;               // column permutation in effect
  std::vector<uint32_t> col_at_step_;   // step -> original column
  std::vector<uint32_t> step_of_col_;   // original column -> step
  std::vector<Row> lower_;          // strictly lower triangle, unit diagonal implied
  std::vector<Row> upper_;          // upper triangle including diagonal
  std::vector<double> diag_inv_;    // 1 / U(k,k)
  std::vector<size_t> perm_;        // row permutation: perm_[k] = original row index

  // Symbolic cache for refactor(): snapshot of the source pattern (for
  // the exact-match check) plus its entries grouped by row so new values
  // scatter straight into a dense workspace without sorting or merging.
  struct SourceRef {
    size_t col;
    size_t handle;  // index into the source matrix's value array
  };
  std::vector<SparseMatrix::Entry> pattern_;
  std::vector<size_t> row_start_;       // per original row, offsets into row_entry_
  std::vector<SourceRef> row_entry_;
  std::vector<double> work_;            // dense scatter workspace, size n
  size_t source_nnz_ = 0;               // deduplicated source entries
  mutable std::vector<double> solve_scratch_;
  size_t symbolic_count_ = 0;
  size_t numeric_count_ = 0;
  int last_singular_col_ = -1;
};

}  // namespace vls
