// Sparse LU with partial pivoting over row-list storage. Circuit
// matrices are nearly structurally symmetric and diagonally dominant
// after gmin insertion, so fill-in stays modest without a fancy
// ordering; rows are kept as sorted (column, value) vectors and merged
// during elimination.
//
// The factorization is split into a symbolic phase (pivot order, L/U
// fill pattern, and a row-grouped index of the source matrix, computed
// once per sparsity pattern) and a numeric phase. refactor() reruns
// only the numeric phase into the preallocated factor storage, which is
// the Newton hot path: the MNA pattern is fixed per circuit, only the
// values change between iterations.
#pragma once

#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace vls {

class SparseLu {
 public:
  /// Empty factorization; call factor() or refactor() before solving.
  SparseLu() = default;

  /// Factor the given matrix. Throws NumericalError if singular.
  explicit SparseLu(const SparseMatrix& a, double pivot_threshold = 1e-13);

  /// Full factorization: recompute pivot order and fill pattern
  /// (symbolic) and the factor values (numeric). Throws NumericalError
  /// if singular.
  void factor(const SparseMatrix& a, double pivot_threshold = 1e-13);

  /// Refactor for a matrix with new values. Reuses the cached pivot
  /// order and fill pattern (numeric-only, no searching, sorting, or
  /// allocation) when the sparsity pattern matches and every cached
  /// pivot stays well-conditioned; transparently falls back to a full
  /// factor() otherwise. Throws NumericalError only if the fresh
  /// factorization is singular too.
  void refactor(const SparseMatrix& a);

  std::vector<double> solve(const std::vector<double>& b) const;
  void solveInPlace(std::vector<double>& b) const;

  size_t size() const { return n_; }
  /// Total stored L+U entries (fill-in diagnostics).
  size_t factorNonZeros() const;

  /// Lifetime counters (tests and perf diagnostics).
  size_t symbolicFactorizations() const { return symbolic_count_; }
  size_t numericRefactorizations() const { return numeric_count_; }

  /// Elimination column of the most recent singular/non-finite pivot
  /// (-1 after a successful factorization). Row pivoting preserves
  /// column order, so this is directly the original unknown index —
  /// callers map it to a circuit node name for diagnostics.
  int lastSingularColumn() const { return last_singular_col_; }

 private:
  struct Term {
    size_t col;
    double val;
  };
  using Row = std::vector<Term>;

  /// Numeric-only replay of the cached elimination. Returns false when a
  /// cached pivot falls below the threshold (or goes non-finite), leaving
  /// the factorization invalid until the caller re-runs factor().
  bool refactorNumeric(const SparseMatrix& a);
  bool patternMatches(const SparseMatrix& a) const;

  size_t n_ = 0;
  bool valid_ = false;  // false until a factorization completes; a throwing
                        // factor() leaves partially overwritten caches behind
  double pivot_threshold_ = 1e-13;
  std::vector<Row> lower_;          // strictly lower triangle, unit diagonal implied
  std::vector<Row> upper_;          // upper triangle including diagonal
  std::vector<double> diag_inv_;    // 1 / U(k,k)
  std::vector<size_t> perm_;        // row permutation: perm_[k] = original row index

  // Symbolic cache for refactor(): snapshot of the source pattern (for
  // the exact-match check) plus its entries grouped by row so new values
  // scatter straight into a dense workspace without sorting or merging.
  struct SourceRef {
    size_t col;
    size_t handle;  // index into the source matrix's value array
  };
  std::vector<SparseMatrix::Entry> pattern_;
  std::vector<size_t> row_start_;       // per original row, offsets into row_entry_
  std::vector<SourceRef> row_entry_;
  std::vector<double> work_;            // dense scatter workspace, size n
  mutable std::vector<double> solve_scratch_;
  size_t symbolic_count_ = 0;
  size_t numeric_count_ = 0;
  int last_singular_col_ = -1;
};

}  // namespace vls
