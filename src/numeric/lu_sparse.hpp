// Sparse LU with partial pivoting over row-list storage. Circuit
// matrices are nearly structurally symmetric and diagonally dominant
// after gmin insertion, so fill-in stays modest without a fancy
// ordering; rows are kept as sorted (column, value) vectors and merged
// during elimination.
#pragma once

#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace vls {

class SparseLu {
 public:
  /// Factor the given matrix. Throws NumericalError if singular.
  explicit SparseLu(const SparseMatrix& a, double pivot_threshold = 1e-13);

  std::vector<double> solve(const std::vector<double>& b) const;
  void solveInPlace(std::vector<double>& b) const;

  size_t size() const { return n_; }
  /// Total stored L+U entries (fill-in diagnostics).
  size_t factorNonZeros() const;

 private:
  struct Term {
    size_t col;
    double val;
  };
  using Row = std::vector<Term>;

  size_t n_ = 0;
  std::vector<Row> lower_;          // strictly lower triangle, unit diagonal implied
  std::vector<Row> upper_;          // upper triangle including diagonal
  std::vector<double> diag_inv_;    // 1 / U(k,k)
  std::vector<size_t> perm_;        // row permutation: perm_[k] = original row index
};

}  // namespace vls
