#include "numeric/lu_bbd.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <string>

#include "base/error.hpp"
#include "base/parallel.hpp"

namespace vls {

BbdLu::BbdLu(std::vector<int32_t> partition, int32_t num_blocks, LuOrdering ordering, bool latency)
    : partition_(std::move(partition)),
      num_blocks_(num_blocks),
      ordering_(ordering),
      latency_(latency) {
  if (num_blocks_ < 1) throw InvalidInputError("BbdLu: need at least one block");
  for (size_t u = 0; u < partition_.size(); ++u) {
    if (partition_[u] < -1 || partition_[u] >= num_blocks_) {
      throw InvalidInputError("BbdLu: partition label out of range at unknown " +
                              std::to_string(u));
    }
  }
}

void BbdLu::factor(const SparseMatrix& a) {
  n_ = a.size();
  valid_ = false;
  schur_valid_ = false;
  if (partition_.size() != n_) {
    throw InvalidInputError("BbdLu: partition covers " + std::to_string(partition_.size()) +
                            " unknowns, matrix has " + std::to_string(n_));
  }

  const auto& coords = a.entries();
  pattern_.assign(coords.begin(), coords.end());

  // Number unknowns within their block (or within the border).
  blocks_.clear();
  blocks_.resize(static_cast<size_t>(num_blocks_));
  border_.clear();
  local_index_.assign(n_, 0);
  for (size_t u = 0; u < n_; ++u) {
    const int32_t p = partition_[u];
    if (p < 0) {
      local_index_[u] = border_.size();
      border_.push_back(u);
    } else {
      local_index_[u] = blocks_[p].unknowns.size();
      blocks_[p].unknowns.push_back(u);
    }
  }
  for (auto& blk : blocks_) blk.a = SparseMatrix(blk.unknowns.size());
  schur_ = SparseMatrix(border_.size());
  d_copies_.clear();

  // Classify every source entry as block-interior, coupling, or border.
  for (size_t h = 0; h < coords.size(); ++h) {
    const size_t r = coords[h].row;
    const size_t c = coords[h].col;
    const int32_t pr = partition_[r];
    const int32_t pc = partition_[c];
    if (pr >= 0 && pr == pc) {
      Block& blk = blocks_[pr];
      blk.copies.push_back({blk.a.entryHandle(local_index_[r], local_index_[c]), h});
    } else if (pr < 0 && pc < 0) {
      d_copies_.push_back({schur_.entryHandle(local_index_[r], local_index_[c]), h});
    } else if (pr >= 0 && pc < 0) {
      blocks_[pr].f.push_back({local_index_[r], local_index_[c], h});
    } else if (pr < 0 && pc >= 0) {
      blocks_[pc].e.push_back({local_index_[r], local_index_[c], 0, h});
    } else {
      throw InvalidInputError("BbdLu: direct coupling between blocks " + std::to_string(pr) +
                              " and " + std::to_string(pc) + " at entry (" + std::to_string(r) +
                              ", " + std::to_string(c) + ") — partition is not BBD");
    }
  }
  d_seen_.assign(d_copies_.size(), 0.0);

  // Per-block coupling indexes and Schur contribution storage.
  for (auto& blk : blocks_) {
    std::sort(blk.f.begin(), blk.f.end(), [](const FTerm& x, const FTerm& y) {
      return x.border_col != y.border_col ? x.border_col < y.border_col
                                          : x.local_row < y.local_row;
    });
    blk.f_cols.clear();
    blk.f_col_start.clear();
    for (size_t t = 0; t < blk.f.size(); ++t) {
      if (blk.f_cols.empty() || blk.f_cols.back() != blk.f[t].border_col) {
        blk.f_cols.push_back(blk.f[t].border_col);
        blk.f_col_start.push_back(t);
      }
    }
    blk.f_col_start.push_back(blk.f.size());

    blk.e_rows.clear();
    for (const ETerm& et : blk.e) blk.e_rows.push_back(et.border_row);
    std::sort(blk.e_rows.begin(), blk.e_rows.end());
    blk.e_rows.erase(std::unique(blk.e_rows.begin(), blk.e_rows.end()), blk.e_rows.end());
    for (ETerm& et : blk.e) {
      et.row_pos = static_cast<size_t>(
          std::lower_bound(blk.e_rows.begin(), blk.e_rows.end(), et.border_row) -
          blk.e_rows.begin());
    }

    blk.contrib.assign(blk.e_rows.size() * blk.f_cols.size(), 0.0);
    blk.contrib_handles.resize(blk.contrib.size());
    for (size_t i = 0; i < blk.e_rows.size(); ++i) {
      for (size_t j = 0; j < blk.f_cols.size(); ++j) {
        blk.contrib_handles[i * blk.f_cols.size() + j] =
            schur_.entryHandle(blk.e_rows[i], blk.f_cols[j]);
      }
    }

    blk.seen_vals.assign(blk.copies.size() + blk.f.size() + blk.e.size(), 0.0);
    blk.f_vals.assign(blk.f.size(), 0.0);
    blk.e_vals.assign(blk.e.size(), 0.0);
    blk.lu.setOrdering(ordering_);
    blk.lu_valid = false;
  }
  schur_lu_.setOrdering(ordering_);

  refactorImpl(a, /*force_all=*/true);
}

void BbdLu::refactor(const SparseMatrix& a) {
  if (valid_ && patternMatches(a)) {
    refactorImpl(a, /*force_all=*/false);
    return;
  }
  factor(a);
}

bool BbdLu::patternMatches(const SparseMatrix& a) const {
  if (a.size() != n_ || a.entries().size() != pattern_.size()) return false;
  const auto& coords = a.entries();
  for (size_t i = 0; i < coords.size(); ++i) {
    if (coords[i].row != pattern_[i].row || coords[i].col != pattern_[i].col) return false;
  }
  return true;
}

bool BbdLu::loadBlockValues(Block& blk, const SparseMatrix& a) const {
  // Exact value comparison: bypass-tape replays are bit-identical, so a
  // quiescent island compares clean; !(v == seen) is deliberately
  // NaN-safe (a poisoned value always reads as changed).
  bool changed = false;
  size_t s = 0;
  for (const CopyPair& cp : blk.copies) {
    const double v = a.value(cp.global_handle);
    if (!(v == blk.seen_vals[s])) changed = true;
    blk.seen_vals[s++] = v;
    blk.a.setAt(cp.local_handle, v);
  }
  for (size_t t = 0; t < blk.f.size(); ++t) {
    const double v = a.value(blk.f[t].handle);
    if (!(v == blk.seen_vals[s])) changed = true;
    blk.seen_vals[s++] = v;
    blk.f_vals[t] = v;
  }
  for (size_t t = 0; t < blk.e.size(); ++t) {
    const double v = a.value(blk.e[t].handle);
    if (!(v == blk.seen_vals[s])) changed = true;
    blk.seen_vals[s++] = v;
    blk.e_vals[t] = v;
  }
  return changed;
}

void BbdLu::computeContrib(Block& blk, const SparseMatrix& a) {
  (void)a;  // coupling values already cached by loadBlockValues
  const size_t nf = blk.f_cols.size();
  std::fill(blk.contrib.begin(), blk.contrib.end(), 0.0);
  if (nf == 0 || blk.e_rows.empty()) return;
  // One block solve per distinct F column: contrib = E_i (A_i^{-1} F_i).
  for (size_t j = 0; j < nf; ++j) {
    blk.rhs.assign(blk.unknowns.size(), 0.0);
    for (size_t t = blk.f_col_start[j]; t < blk.f_col_start[j + 1]; ++t) {
      blk.rhs[blk.f[t].local_row] += blk.f_vals[t];
    }
    blk.lu.solveInPlace(blk.rhs);
    for (size_t t = 0; t < blk.e.size(); ++t) {
      blk.contrib[blk.e[t].row_pos * nf + j] += blk.e_vals[t] * blk.rhs[blk.e[t].local_col];
    }
  }
}

void BbdLu::refactorImpl(const SparseMatrix& a, bool force_all) {
  valid_ = false;
  std::atomic<int> singular{-1};
  std::atomic<size_t> refactors{0};
  std::atomic<size_t> skips{0};
  std::atomic<bool> any_block_changed{false};

  try {
    parallelForChunked(blocks_.size(), [&](size_t bi) {
      Block& blk = blocks_[bi];
      const bool changed = loadBlockValues(blk, a);
      if (!force_all && latency_ && !changed && blk.lu_valid) {
        skips.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      any_block_changed.store(true, std::memory_order_relaxed);
      blk.lu_valid = false;
      try {
        blk.lu.refactor(blk.a);
      } catch (const NumericalError&) {
        const int local = blk.lu.lastSingularColumn();
        int expected = -1;
        const int global =
            local >= 0 ? static_cast<int>(blk.unknowns[static_cast<size_t>(local)]) : -1;
        singular.compare_exchange_strong(expected, global);
        throw;
      }
      computeContrib(blk, a);
      blk.lu_valid = true;
      refactors.fetch_add(1, std::memory_order_relaxed);
    });
  } catch (...) {
    block_refactors_ += refactors.load();
    block_skips_ += skips.load();
    last_singular_col_ = singular.load();
    schur_valid_ = false;
    throw;
  }
  block_refactors_ += refactors.load();
  block_skips_ += skips.load();

  // Border values, compared for the Schur latency check.
  bool d_changed = false;
  for (size_t i = 0; i < d_copies_.size(); ++i) {
    const double v = a.value(d_copies_[i].global_handle);
    if (!(v == d_seen_[i])) d_changed = true;
    d_seen_[i] = v;
  }

  if (force_all || d_changed || any_block_changed.load() || !schur_valid_) {
    // Rebuild S = D - sum_i E_i A_i^{-1} F_i and refactor it (serial:
    // the border is thin by construction).
    schur_.clearValues();
    for (size_t i = 0; i < d_copies_.size(); ++i) {
      schur_.addAt(d_copies_[i].local_handle, d_seen_[i]);
    }
    for (const Block& blk : blocks_) {
      for (size_t idx = 0; idx < blk.contrib.size(); ++idx) {
        schur_.addAt(blk.contrib_handles[idx], -blk.contrib[idx]);
      }
    }
    schur_valid_ = false;
    try {
      schur_lu_.refactor(schur_);
    } catch (const NumericalError&) {
      const int local = schur_lu_.lastSingularColumn();
      last_singular_col_ = local >= 0 ? static_cast<int>(border_[static_cast<size_t>(local)]) : -1;
      throw;
    }
    schur_valid_ = true;
  }

  valid_ = true;
  last_singular_col_ = -1;
}

std::vector<double> BbdLu::solve(const std::vector<double>& b) const {
  std::vector<double> x(b);
  solveInPlace(x);
  return x;
}

void BbdLu::solveInPlace(std::vector<double>& b) const {
  if (!valid_) throw InvalidInputError("BbdLu::solve: no valid factorization");
  if (b.size() != n_) throw InvalidInputError("BbdLu::solve: size mismatch");

  // Forward block sweep: y_i = A_i^{-1} b_i.
  for (const Block& blk : blocks_) {
    blk.y.resize(blk.unknowns.size());
    for (size_t i = 0; i < blk.unknowns.size(); ++i) blk.y[i] = b[blk.unknowns[i]];
    blk.lu.solveInPlace(blk.y);
  }

  // Border system: S x_B = b_B - sum_i E_i y_i.
  std::vector<double>& g = border_scratch_;
  g.resize(border_.size());
  for (size_t i = 0; i < border_.size(); ++i) g[i] = b[border_[i]];
  for (const Block& blk : blocks_) {
    for (size_t t = 0; t < blk.e.size(); ++t) {
      g[blk.e[t].border_row] -= blk.e_vals[t] * blk.y[blk.e[t].local_col];
    }
  }
  schur_lu_.solveInPlace(g);

  // Back-substitution: x_i = A_i^{-1}(b_i - F_i x_B).
  for (const Block& blk : blocks_) {
    blk.rhs.resize(blk.unknowns.size());
    for (size_t i = 0; i < blk.unknowns.size(); ++i) blk.rhs[i] = b[blk.unknowns[i]];
    for (size_t t = 0; t < blk.f.size(); ++t) {
      blk.rhs[blk.f[t].local_row] -= blk.f_vals[t] * g[blk.f[t].border_col];
    }
    blk.lu.solveInPlace(blk.rhs);
    for (size_t i = 0; i < blk.unknowns.size(); ++i) b[blk.unknowns[i]] = blk.rhs[i];
  }
  for (size_t i = 0; i < border_.size(); ++i) b[border_[i]] = g[i];
}

size_t BbdLu::factorNonZeros() const {
  size_t nnz = schur_lu_.factorNonZeros();
  for (const Block& blk : blocks_) nnz += blk.lu.factorNonZeros();
  return nnz;
}

size_t BbdLu::fillCount() const {
  size_t fill = schur_lu_.fillCount();
  for (const Block& blk : blocks_) fill += blk.lu.fillCount();
  return fill;
}

}  // namespace vls
