// Bordered-block-diagonal LU for partitioned circuits. A voltage-island
// fabric couples island-interior unknowns only through a thin set of
// boundary nets, so with unknowns labelled by island the MNA matrix is
//
//   [ A_0          F_0 ]
//   [      ...     ... ]      A_i : island-interior block
//   [          A_B F_B ]      E_i/F_i : island<->border coupling
//   [ E_0  ... E_B  D  ]      D   : border-border entries
//
// Each diagonal block is factored independently (parallelForChunked)
// and coupled through the sparse Schur complement
// S = D - sum_i E_i A_i^{-1} F_i over the border unknowns. Solves do
// two block-triangular sweeps: y_i = A_i^{-1} b_i, solve S x_B = b_B -
// sum E_i y_i, then x_i = A_i^{-1}(b_i - F_i x_B).
//
// Per-partition latency: a block whose matrix values (interior + E/F
// coupling) are bit-identical to the previous refactor keeps its factor
// and cached Schur contribution — quiescent islands whose devices ride
// the assembly bypass tape cost nothing per Newton iteration. The
// compare runs on post-assembly values, so gmin rungs, source scaling
// and pseudo-transient anchors are all seen (NaN compares unequal, so a
// poisoned block is always re-examined).
//
// lastSingularColumn() reports the original (global) unknown index for
// both block and Schur pivot failures, matching SparseLu semantics so
// ConvergenceDiagnostics node attribution works unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/lu_sparse.hpp"
#include "numeric/ordering.hpp"
#include "numeric/sparse_matrix.hpp"

namespace vls {

/// Block count above which the BBD solve beats flat min-degree LU. The
/// Schur complement adds serial overhead that the per-block work only
/// amortizes on wide fabrics: measured single-thread transient ratios
/// (bbd vs flat, both min-degree) are ~0.89x at 10 islands, ~0.96-0.98x
/// at 50-200 — BBD's edge is parallel block factorization and per-block
/// latency, which need enough blocks to matter. Callers with
/// PartitionUse::Auto route through recommendPartitionedSolve.
inline constexpr int32_t kBbdAutoMinBlocks = 24;

/// Heuristic: should a partition with this many diagonal blocks be
/// solved BBD rather than flat? (The partition itself remains useful
/// for sharded assembly either way.)
inline bool recommendPartitionedSolve(int32_t num_blocks) {
  return num_blocks >= kBbdAutoMinBlocks;
}

class BbdLu {
 public:
  /// partition[u] = diagonal block of unknown u, or -1 for the border.
  /// Throws InvalidInputError on out-of-range labels. The matrix handed
  /// to factor()/refactor() must have no direct block-to-block entries
  /// (every cross-block path goes through the border) — factor()
  /// validates and throws otherwise.
  BbdLu(std::vector<int32_t> partition, int32_t num_blocks,
        LuOrdering ordering = LuOrdering::MinDegree, bool latency = true);

  /// Full symbolic + numeric factorization.
  void factor(const SparseMatrix& a);

  /// Numeric re-factorization reusing the partition/symbolic analysis;
  /// transparently falls back to factor() on a pattern change. Blocks
  /// with unchanged values are skipped when latency is enabled.
  void refactor(const SparseMatrix& a);

  std::vector<double> solve(const std::vector<double>& b) const;
  void solveInPlace(std::vector<double>& b) const;

  size_t size() const { return n_; }
  size_t blockCount() const { return blocks_.size(); }
  size_t borderSize() const { return border_.size(); }
  size_t factorNonZeros() const;
  size_t fillCount() const;

  /// Lifetime counters: numeric block factorizations actually performed
  /// vs skipped by the value-identity latency check.
  size_t blockRefactors() const { return block_refactors_; }
  size_t blockRefactorsSkipped() const { return block_skips_; }

  /// Original (global) column of the most recent singular pivot, -1
  /// after success. Block-local and Schur columns are mapped back.
  int lastSingularColumn() const { return last_singular_col_; }

 private:
  struct FTerm {
    size_t local_row;   // block-local row
    size_t border_col;  // border-local column
    size_t handle;      // source-matrix value handle
  };
  struct ETerm {
    size_t border_row;  // border-local row
    size_t local_col;   // block-local column
    size_t row_pos;     // index into e_rows (contrib row)
    size_t handle;
  };
  struct CopyPair {
    size_t local_handle;
    size_t global_handle;
  };

  struct Block {
    std::vector<size_t> unknowns;  // global ids, ascending
    SparseMatrix a;                // interior block values
    SparseLu lu;
    bool lu_valid = false;
    std::vector<CopyPair> copies;       // global -> local value routing
    std::vector<FTerm> f;               // sorted by border_col
    std::vector<size_t> f_col_start;    // per distinct f column, offsets into f
    std::vector<ETerm> e;
    std::vector<size_t> f_cols;         // distinct border-local F columns
    std::vector<size_t> e_rows;         // distinct border-local E rows
    std::vector<double> seen_vals;      // last copied values (interior, F, E)
    std::vector<double> f_vals;         // cached coupling values for solves
    std::vector<double> e_vals;
    std::vector<double> contrib;        // dense E_i A_i^{-1} F_i, e_rows x f_cols
    std::vector<size_t> contrib_handles;  // matching Schur entry handles
    mutable std::vector<double> y;      // solve scratch (A_i^{-1} b_i)
    mutable std::vector<double> rhs;    // solve/back-substitution scratch
  };

  void refactorImpl(const SparseMatrix& a, bool force_all);
  /// Copies current values into the block; returns false when they are
  /// bit-identical to the previous refactor (latency skip candidate).
  bool loadBlockValues(Block& blk, const SparseMatrix& a) const;
  void computeContrib(Block& blk, const SparseMatrix& a);
  bool patternMatches(const SparseMatrix& a) const;

  size_t n_ = 0;
  bool valid_ = false;
  std::vector<int32_t> partition_;
  int32_t num_blocks_;
  LuOrdering ordering_;
  bool latency_;

  std::vector<Block> blocks_;
  std::vector<size_t> border_;       // global ids of border unknowns, ascending
  std::vector<size_t> local_index_;  // per unknown: index within its block/border
  SparseMatrix schur_;
  SparseLu schur_lu_;
  bool schur_valid_ = false;
  std::vector<CopyPair> d_copies_;   // D entries: global -> Schur routing
  std::vector<double> d_seen_;       // last D values (Schur latency check)
  std::vector<SparseMatrix::Entry> pattern_;  // source-pattern snapshot
  mutable std::vector<double> border_scratch_;

  size_t block_refactors_ = 0;
  size_t block_skips_ = 0;
  int last_singular_col_ = -1;
};

}  // namespace vls
