// Fill-reducing column orderings for sparse LU. Circuit matrices are
// cheap to factor in natural order only while they stay tiny; at
// floorplan scale (thousands of unknowns across voltage islands) the
// elimination order dominates fill-in and factor time, so SparseLu can
// pre-order its columns with a quotient-graph minimum-degree heuristic
// (the approximate-minimum-degree family: external degree is bounded by
// |adjacent variables| + sum of element boundary sizes instead of being
// recomputed exactly).
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace vls {

/// Column pre-ordering applied by SparseLu::factor's symbolic phase.
enum class LuOrdering : uint8_t {
  Natural = 0,    ///< eliminate columns in index order (the historical default)
  MinDegree = 1,  ///< approximate-minimum-degree on the symmetrized pattern
};

const char* luOrderingName(LuOrdering ordering);

/// Approximate-minimum-degree elimination order for the symmetrized
/// pattern of an n x n matrix: order[k] is the original column
/// eliminated at step k. Deterministic (ties break toward the lower
/// column index), ignores numerical values, tolerates duplicate and
/// unsymmetric entries. Returns the identity for n <= 2, where no
/// reordering can change fill.
std::vector<uint32_t> minimumDegreeOrder(size_t n,
                                         const std::vector<SparseMatrix::Entry>& entries);

}  // namespace vls
