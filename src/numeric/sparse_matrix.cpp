#include "numeric/sparse_matrix.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace vls {

size_t SparseMatrix::entryHandle(size_t row, size_t col) {
  if (row >= n_ || col >= n_) throw InvalidInputError("SparseMatrix: index out of range");
  const uint64_t key = (static_cast<uint64_t>(row) << 32) | static_cast<uint64_t>(col);
  auto [it, inserted] = index_.try_emplace(key, values_.size());
  if (inserted) {
    coords_.push_back({row, col});
    values_.push_back(0.0);
  }
  return it->second;
}

void SparseMatrix::clearValues() { std::fill(values_.begin(), values_.end(), 0.0); }

std::vector<double> SparseMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != n_) throw InvalidInputError("SparseMatrix::multiply: size mismatch");
  std::vector<double> y(n_, 0.0);
  for (size_t k = 0; k < coords_.size(); ++k) {
    y[coords_[k].row] += values_[k] * x[coords_[k].col];
  }
  return y;
}

std::vector<std::vector<double>> SparseMatrix::toDense() const {
  std::vector<std::vector<double>> dense(n_, std::vector<double>(n_, 0.0));
  for (size_t k = 0; k < coords_.size(); ++k) {
    dense[coords_[k].row][coords_[k].col] += values_[k];
  }
  return dense;
}

}  // namespace vls
