#include "numeric/lu_sparse.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {

SparseLu::SparseLu(const SparseMatrix& a, double pivot_threshold) : n_(a.size()) {
  // Build working rows (sorted column order) from the assembled matrix.
  std::vector<Row> work(n_);
  {
    const auto& coords = a.entries();
    std::vector<size_t> counts(n_, 0);
    for (const auto& e : coords) ++counts[e.row];
    for (size_t r = 0; r < n_; ++r) work[r].reserve(counts[r]);
    for (size_t k = 0; k < coords.size(); ++k) {
      work[coords[k].row].push_back({coords[k].col, a.value(k)});
    }
    for (auto& row : work) {
      std::sort(row.begin(), row.end(), [](const Term& x, const Term& y) { return x.col < y.col; });
      // Collapse duplicates (multiple stamps on one position).
      size_t w = 0;
      for (size_t i = 0; i < row.size(); ++i) {
        if (w > 0 && row[w - 1].col == row[i].col) {
          row[w - 1].val += row[i].val;
        } else {
          row[w++] = row[i];
        }
      }
      row.resize(w);
    }
  }

  lower_.assign(n_, {});
  upper_.assign(n_, {});
  diag_inv_.assign(n_, 0.0);
  perm_.resize(n_);
  std::vector<size_t> active(n_);  // active[k] = index into `work` of the row currently at position k
  for (size_t i = 0; i < n_; ++i) active[i] = i;

  Row merged;
  for (size_t k = 0; k < n_; ++k) {
    // Partial pivoting: among remaining rows, pick the one with the
    // largest magnitude in column k.
    size_t best_pos = k;
    double best_mag = -1.0;
    for (size_t pos = k; pos < n_; ++pos) {
      const Row& row = work[active[pos]];
      auto it = std::lower_bound(row.begin(), row.end(), k,
                                 [](const Term& t, size_t col) { return t.col < col; });
      const double mag = (it != row.end() && it->col == k) ? std::fabs(it->val) : 0.0;
      if (mag > best_mag) {
        best_mag = mag;
        best_pos = pos;
      }
    }
    if (best_mag <= pivot_threshold || !std::isfinite(best_mag)) {
      throw NumericalError("SparseLu: singular matrix at column " + std::to_string(k));
    }
    std::swap(active[k], active[best_pos]);
    const size_t prow = active[k];
    perm_[k] = prow;

    // Split pivot row into U(k, k..n).
    Row& pivot_row = work[prow];
    auto split = std::lower_bound(pivot_row.begin(), pivot_row.end(), k,
                                  [](const Term& t, size_t col) { return t.col < col; });
    upper_[k].assign(split, pivot_row.end());
    const double pivot = upper_[k].front().val;
    diag_inv_[k] = 1.0 / pivot;

    // Eliminate column k from remaining rows.
    for (size_t pos = k + 1; pos < n_; ++pos) {
      Row& row = work[active[pos]];
      auto it = std::lower_bound(row.begin(), row.end(), k,
                                 [](const Term& t, size_t col) { return t.col < col; });
      if (it == row.end() || it->col != k) continue;
      const double factor = it->val * diag_inv_[k];
      lower_[active[pos]].push_back({k, factor});

      // row(k+1..) -= factor * U(k, k+1..), merged in sorted order.
      merged.clear();
      auto ri = it + 1;
      auto ui = upper_[k].begin() + 1;  // skip diagonal
      while (ri != row.end() && ui != upper_[k].end()) {
        if (ri->col < ui->col) {
          merged.push_back(*ri++);
        } else if (ri->col > ui->col) {
          merged.push_back({ui->col, -factor * ui->val});
          ++ui;
        } else {
          merged.push_back({ri->col, ri->val - factor * ui->val});
          ++ri;
          ++ui;
        }
      }
      for (; ri != row.end(); ++ri) merged.push_back(*ri);
      for (; ui != upper_[k].end(); ++ui) merged.push_back({ui->col, -factor * ui->val});

      // Keep the (untouched) part with columns < k ... there is none:
      // columns < k were already eliminated for this row. Replace row
      // with the merged tail.
      row.assign(merged.begin(), merged.end());
    }
  }
}

size_t SparseLu::factorNonZeros() const {
  size_t nnz = 0;
  for (const auto& r : lower_) nnz += r.size();
  for (const auto& r : upper_) nnz += r.size();
  return nnz;
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
  std::vector<double> x(b);
  solveInPlace(x);
  return x;
}

void SparseLu::solveInPlace(std::vector<double>& b) const {
  if (b.size() != n_) throw InvalidInputError("SparseLu::solve: size mismatch");
  // Forward: L y = P b. lower_[perm_[k]] holds multipliers indexed by
  // elimination step, already expressed in step coordinates.
  std::vector<double> y(n_);
  for (size_t k = 0; k < n_; ++k) {
    double acc = b[perm_[k]];
    for (const Term& t : lower_[perm_[k]]) acc -= t.val * y[t.col];
    y[k] = acc;
  }
  // Backward: U x = y.
  for (size_t kk = n_; kk-- > 0;) {
    double acc = y[kk];
    const Row& row = upper_[kk];
    for (size_t i = 1; i < row.size(); ++i) acc -= row[i].val * y[row[i].col];
    y[kk] = acc * diag_inv_[kk];
  }
  b = std::move(y);
}

}  // namespace vls
