#include "numeric/lu_sparse.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {

SparseLu::SparseLu(const SparseMatrix& a, double pivot_threshold) { factor(a, pivot_threshold); }

void SparseLu::factor(const SparseMatrix& a, double pivot_threshold) {
  n_ = a.size();
  valid_ = false;
  pivot_threshold_ = pivot_threshold;
  ++symbolic_count_;

  const auto& coords = a.entries();

  // Column pre-ordering: every column index below lives in "step space"
  // (step k eliminates original column col_at_step_[k]), so the whole
  // elimination, refactor replay, and forward/backward substitution run
  // unchanged; only the solve output scatter and singular-column
  // reporting map back to original ids. Natural order skips the
  // indirection entirely.
  permuted_ = (ordering_ == LuOrdering::MinDegree) && n_ > 0;
  if (permuted_) {
    col_at_step_ = minimumDegreeOrder(n_, coords);
    step_of_col_.resize(n_);
    for (size_t k = 0; k < n_; ++k) step_of_col_[col_at_step_[k]] = static_cast<uint32_t>(k);
  } else {
    col_at_step_.clear();
    step_of_col_.clear();
  }
  const auto map_col = [this](size_t col) -> size_t {
    return permuted_ ? step_of_col_[col] : col;
  };

  // Cache the source pattern grouped by row: refactor() scatters new
  // values through these handles, and patternMatches() compares against
  // the snapshot. row_entry_ columns are pre-mapped to step space.
  pattern_.assign(coords.begin(), coords.end());
  row_start_.assign(n_ + 1, 0);
  for (const auto& e : coords) ++row_start_[e.row + 1];
  for (size_t r = 0; r < n_; ++r) row_start_[r + 1] += row_start_[r];
  row_entry_.resize(coords.size());
  {
    std::vector<size_t> fill(row_start_.begin(), row_start_.end() - 1);
    for (size_t h = 0; h < coords.size(); ++h) {
      row_entry_[fill[coords[h].row]++] = {map_col(coords[h].col), h};
    }
  }

  // Build working rows (sorted column order) from the assembled matrix.
  std::vector<Row> work(n_);
  {
    for (size_t r = 0; r < n_; ++r) work[r].reserve(row_start_[r + 1] - row_start_[r]);
    for (size_t k = 0; k < coords.size(); ++k) {
      work[coords[k].row].push_back({map_col(coords[k].col), a.value(k)});
    }
    for (auto& row : work) {
      std::sort(row.begin(), row.end(), [](const Term& x, const Term& y) { return x.col < y.col; });
      // Collapse duplicates (multiple stamps on one position).
      size_t w = 0;
      for (size_t i = 0; i < row.size(); ++i) {
        if (w > 0 && row[w - 1].col == row[i].col) {
          row[w - 1].val += row[i].val;
        } else {
          row[w++] = row[i];
        }
      }
      row.resize(w);
    }
    source_nnz_ = 0;
    for (const auto& row : work) source_nnz_ += row.size();
  }

  lower_.assign(n_, {});
  upper_.assign(n_, {});
  diag_inv_.assign(n_, 0.0);
  perm_.resize(n_);
  work_.assign(n_, 0.0);
  std::vector<size_t> active(n_);  // active[k] = index into `work` of the row currently at position k
  for (size_t i = 0; i < n_; ++i) active[i] = i;

  Row merged;
  for (size_t k = 0; k < n_; ++k) {
    // Partial pivoting: among remaining rows, pick the one with the
    // largest magnitude in column k.
    size_t best_pos = k;
    double best_mag = -1.0;
    for (size_t pos = k; pos < n_; ++pos) {
      const Row& row = work[active[pos]];
      auto it = std::lower_bound(row.begin(), row.end(), k,
                                 [](const Term& t, size_t col) { return t.col < col; });
      const double mag = (it != row.end() && it->col == k) ? std::fabs(it->val) : 0.0;
      if (mag > best_mag) {
        best_mag = mag;
        best_pos = pos;
      }
    }
    if (best_mag <= pivot_threshold || !std::isfinite(best_mag)) {
      last_singular_col_ = static_cast<int>(colAtStep(k));
      throw NumericalError("SparseLu: singular matrix at column " +
                           std::to_string(last_singular_col_));
    }
    std::swap(active[k], active[best_pos]);
    const size_t prow = active[k];
    perm_[k] = prow;

    // Split pivot row into U(k, k..n).
    Row& pivot_row = work[prow];
    auto split = std::lower_bound(pivot_row.begin(), pivot_row.end(), k,
                                  [](const Term& t, size_t col) { return t.col < col; });
    upper_[k].assign(split, pivot_row.end());
    const double pivot = upper_[k].front().val;
    diag_inv_[k] = 1.0 / pivot;

    // Eliminate column k from remaining rows.
    for (size_t pos = k + 1; pos < n_; ++pos) {
      Row& row = work[active[pos]];
      auto it = std::lower_bound(row.begin(), row.end(), k,
                                 [](const Term& t, size_t col) { return t.col < col; });
      if (it == row.end() || it->col != k) continue;
      const double factor = it->val * diag_inv_[k];
      lower_[active[pos]].push_back({k, factor});

      // row(k+1..) -= factor * U(k, k+1..), merged in sorted order.
      merged.clear();
      auto ri = it + 1;
      auto ui = upper_[k].begin() + 1;  // skip diagonal
      while (ri != row.end() && ui != upper_[k].end()) {
        if (ri->col < ui->col) {
          merged.push_back(*ri++);
        } else if (ri->col > ui->col) {
          merged.push_back({ui->col, -factor * ui->val});
          ++ui;
        } else {
          merged.push_back({ri->col, ri->val - factor * ui->val});
          ++ri;
          ++ui;
        }
      }
      for (; ri != row.end(); ++ri) merged.push_back(*ri);
      for (; ui != upper_[k].end(); ++ui) merged.push_back({ui->col, -factor * ui->val});

      // Keep the (untouched) part with columns < k ... there is none:
      // columns < k were already eliminated for this row. Replace row
      // with the merged tail.
      row.assign(merged.begin(), merged.end());
    }
  }
  valid_ = true;
  last_singular_col_ = -1;
}

bool SparseLu::patternMatches(const SparseMatrix& a) const {
  if (a.size() != n_ || a.entries().size() != pattern_.size()) return false;
  const auto& coords = a.entries();
  for (size_t i = 0; i < coords.size(); ++i) {
    if (coords[i].row != pattern_[i].row || coords[i].col != pattern_[i].col) return false;
  }
  return true;
}

bool SparseLu::refactorNumeric(const SparseMatrix& a) {
  // Replay the cached elimination row by row in pivot order through a
  // dense scatter workspace. At step k the final pattern of permuted row
  // k is exactly {cols of lower_[r]} U {cols of upper_[k]} (the symbolic
  // phase computed the fill), so zeroing those positions, scattering the
  // source row, and applying the cached updates stays inside the
  // pattern — no searching, sorting, or allocation.
  for (size_t k = 0; k < n_; ++k) {
    const size_t r = perm_[k];
    Row& lrow = lower_[r];
    Row& urow = upper_[k];
    for (const Term& t : lrow) work_[t.col] = 0.0;
    for (const Term& t : urow) work_[t.col] = 0.0;
    for (size_t e = row_start_[r]; e < row_start_[r + 1]; ++e) {
      work_[row_entry_[e].col] += a.value(row_entry_[e].handle);
    }
    for (Term& t : lrow) {  // lrow cols are increasing elimination steps < k
      const double factor = work_[t.col] * diag_inv_[t.col];
      t.val = factor;
      const Row& u = upper_[t.col];
      for (size_t i = 1; i < u.size(); ++i) work_[u[i].col] -= factor * u[i].val;
    }
    const double pivot = work_[k];
    if (!(std::fabs(pivot) > pivot_threshold_) || !std::isfinite(pivot)) {
      last_singular_col_ = static_cast<int>(colAtStep(k));
      return false;
    }
    for (Term& t : urow) t.val = work_[t.col];
    diag_inv_[k] = 1.0 / pivot;
  }
  ++numeric_count_;
  last_singular_col_ = -1;
  return true;
}

void SparseLu::setOrdering(LuOrdering ordering) {
  if (ordering == ordering_) return;
  ordering_ = ordering;
  valid_ = false;  // forces a fresh symbolic phase on the next (re)factor
}

void SparseLu::refactor(const SparseMatrix& a) {
  if (valid_ && patternMatches(a)) {
    valid_ = refactorNumeric(a);
    if (valid_) return;
  }
  // Pattern changed, no valid factorization to reuse, or a cached pivot
  // went bad under the new values: redo the symbolic analysis.
  factor(a, pivot_threshold_);
}

size_t SparseLu::factorNonZeros() const {
  size_t nnz = 0;
  for (const auto& r : lower_) nnz += r.size();
  for (const auto& r : upper_) nnz += r.size();
  return nnz;
}

size_t SparseLu::fillCount() const {
  const size_t nnz = factorNonZeros();
  return nnz > source_nnz_ ? nnz - source_nnz_ : 0;
}

std::vector<double> SparseLu::solve(const std::vector<double>& b) const {
  std::vector<double> x(b);
  solveInPlace(x);
  return x;
}

void SparseLu::solveInPlace(std::vector<double>& b) const {
  if (!valid_) throw InvalidInputError("SparseLu::solve: no valid factorization");
  if (b.size() != n_) throw InvalidInputError("SparseLu::solve: size mismatch");
  // Forward: L y = P b. lower_[perm_[k]] holds multipliers indexed by
  // elimination step, already expressed in step coordinates.
  std::vector<double>& y = solve_scratch_;
  y.resize(n_);
  for (size_t k = 0; k < n_; ++k) {
    double acc = b[perm_[k]];
    for (const Term& t : lower_[perm_[k]]) acc -= t.val * y[t.col];
    y[k] = acc;
  }
  // Backward: U x = y (still in step space: y[k] is the solution of the
  // column eliminated at step k).
  for (size_t kk = n_; kk-- > 0;) {
    double acc = y[kk];
    const Row& row = upper_[kk];
    for (size_t i = 1; i < row.size(); ++i) acc -= row[i].val * y[row[i].col];
    y[kk] = acc * diag_inv_[kk];
  }
  if (permuted_) {
    for (size_t k = 0; k < n_; ++k) b[col_at_step_[k]] = y[k];
  } else {
    std::swap(b, y);
  }
}

}  // namespace vls
