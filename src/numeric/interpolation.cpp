#include "numeric/interpolation.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {
namespace {

void checkSeries(const std::vector<double>& xs, const std::vector<double>& ys) {
  if (xs.size() != ys.size()) throw InvalidInputError("interpolation: xs/ys size mismatch");
  if (xs.empty()) throw InvalidInputError("interpolation: empty series");
}

// Exact crossing abscissa within segment [i, i+1], or nullopt.
std::optional<double> segmentCrossing(const std::vector<double>& xs, const std::vector<double>& ys,
                                      size_t i, double level, CrossDir dir) {
  const double y0 = ys[i];
  const double y1 = ys[i + 1];
  const bool rising = y0 < level && y1 >= level;
  const bool falling = y0 > level && y1 <= level;
  const bool want_rising = dir == CrossDir::Rising || dir == CrossDir::Either;
  const bool want_falling = dir == CrossDir::Falling || dir == CrossDir::Either;
  if (!((rising && want_rising) || (falling && want_falling))) return std::nullopt;
  if (y1 == y0) return xs[i];
  const double frac = (level - y0) / (y1 - y0);
  return xs[i] + frac * (xs[i + 1] - xs[i]);
}

}  // namespace

double interpLinear(const std::vector<double>& xs, const std::vector<double>& ys, double x) {
  checkSeries(xs, ys);
  if (x <= xs.front()) return ys.front();
  if (x >= xs.back()) return ys.back();
  const auto it = std::upper_bound(xs.begin(), xs.end(), x);
  const size_t hi = static_cast<size_t>(it - xs.begin());
  const size_t lo = hi - 1;
  const double span = xs[hi] - xs[lo];
  if (span <= 0.0) return ys[lo];
  const double frac = (x - xs[lo]) / span;
  return ys[lo] * (1.0 - frac) + ys[hi] * frac;
}

std::optional<double> firstCrossing(const std::vector<double>& xs, const std::vector<double>& ys,
                                    double level, CrossDir dir, double from) {
  checkSeries(xs, ys);
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i + 1] < from) continue;
    const auto t = segmentCrossing(xs, ys, i, level, dir);
    if (t && *t >= from) return t;
  }
  return std::nullopt;
}

std::optional<double> firstCrossingCubic(const std::vector<double>& xs,
                                         const std::vector<double>& ys, double level, CrossDir dir,
                                         double from) {
  checkSeries(xs, ys);
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i + 1] < from) continue;
    const auto linear = segmentCrossing(xs, ys, i, level, dir);
    if (!linear || *linear < from) continue;
    const double x0 = xs[i];
    const double x1 = xs[i + 1];
    const double span = x1 - x0;
    if (span <= 0.0 || ys[i + 1] == ys[i]) return linear;
    // Endpoint slopes from centered differences (one-sided at the
    // series ends), then bisect the Hermite cubic for the level. The
    // bracket endpoints straddle the level, so a root is guaranteed.
    auto slope = [&](size_t k) {
      const size_t lo = k > 0 ? k - 1 : k;
      const size_t hi = k + 1 < xs.size() ? k + 1 : k;
      const double dx = xs[hi] - xs[lo];
      return dx > 0.0 ? (ys[hi] - ys[lo]) / dx : 0.0;
    };
    const double y0 = ys[i] - level;
    const double y1 = ys[i + 1] - level;
    const double m0 = slope(i) * span;
    const double m1 = slope(i + 1) * span;
    auto hermite = [&](double s) {
      const double s2 = s * s;
      const double s3 = s2 * s;
      return (2.0 * s3 - 3.0 * s2 + 1.0) * y0 + (s3 - 2.0 * s2 + s) * m0 +
             (-2.0 * s3 + 3.0 * s2) * y1 + (s3 - s2) * m1;
    };
    double lo = 0.0, hi = 1.0;
    double f_lo = y0;
    if (f_lo == 0.0) return x0;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      const double f_mid = hermite(mid);
      if ((f_mid > 0.0) == (f_lo > 0.0)) {
        lo = mid;
        f_lo = f_mid;
      } else {
        hi = mid;
      }
    }
    const double refined = x0 + 0.5 * (lo + hi) * span;
    return refined >= from ? refined : *linear;
  }
  return std::nullopt;
}

std::vector<double> allCrossings(const std::vector<double>& xs, const std::vector<double>& ys,
                                 double level, CrossDir dir, double from) {
  checkSeries(xs, ys);
  std::vector<double> out;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    if (xs[i + 1] < from) continue;
    const auto t = segmentCrossing(xs, ys, i, level, dir);
    if (t && *t >= from) out.push_back(*t);
  }
  return out;
}

double integrateTrapezoid(const std::vector<double>& xs, const std::vector<double>& ys, double x0,
                          double x1) {
  checkSeries(xs, ys);
  if (x1 <= x0) return 0.0;
  double acc = 0.0;
  for (size_t i = 0; i + 1 < xs.size(); ++i) {
    const double a = std::max(xs[i], x0);
    const double b = std::min(xs[i + 1], x1);
    if (b <= a) continue;
    const double ya = interpLinear(xs, ys, a);
    const double yb = interpLinear(xs, ys, b);
    acc += 0.5 * (ya + yb) * (b - a);
  }
  // Extend with clamped end values if the window sticks out of the domain.
  if (x0 < xs.front()) acc += ys.front() * (std::min(x1, xs.front()) - x0);
  if (x1 > xs.back()) acc += ys.back() * (x1 - std::max(x0, xs.back()));
  return acc;
}

}  // namespace vls
