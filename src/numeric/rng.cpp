#include "numeric/rng.hpp"

#include <cmath>

namespace vls {
namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& w : state_) w = splitmix64(s);
}

uint64_t Rng::nextU64() {
  const uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(nextU64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box–Muller; reject u1 == 0 to keep log() finite.
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

uint64_t Rng::below(uint64_t bound) {
  if (bound == 0) return 0;
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  uint64_t v = nextU64();
  while (v >= limit) v = nextU64();
  return v % bound;
}

Rng Rng::split() { return Rng(nextU64() ^ 0xA3C59AC2ull); }

}  // namespace vls
