#include "numeric/dense_matrix.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {

DenseMatrix DenseMatrix::identity(size_t n) {
  DenseMatrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

void DenseMatrix::setZero() { std::fill(data_.begin(), data_.end(), 0.0); }

void DenseMatrix::resize(size_t rows, size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.assign(rows * cols, 0.0);
}

std::vector<double> DenseMatrix::multiply(const std::vector<double>& x) const {
  if (x.size() != cols_) throw InvalidInputError("DenseMatrix::multiply: size mismatch");
  std::vector<double> y(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double acc = 0.0;
    const double* row = data_.data() + r * cols_;
    for (size_t c = 0; c < cols_; ++c) acc += row[c] * x[c];
    y[r] = acc;
  }
  return y;
}

DenseMatrix DenseMatrix::multiply(const DenseMatrix& other) const {
  if (cols_ != other.rows_) throw InvalidInputError("DenseMatrix::multiply: size mismatch");
  DenseMatrix out(rows_, other.cols_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) out(r, c) += a * other(k, c);
    }
  }
  return out;
}

DenseMatrix DenseMatrix::transposed() const {
  DenseMatrix out(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r)
    for (size_t c = 0; c < cols_; ++c) out(c, r) = (*this)(r, c);
  return out;
}

double DenseMatrix::maxAbs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

}  // namespace vls
