#include "numeric/lu_ensemble.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {

namespace {
struct Term {
  size_t col;
  double val;
};
using Row = std::vector<Term>;
}  // namespace

void EnsembleLu::analyze(const LaneMatrix& a, size_t pivot_lane, double pivot_threshold,
                         const uint8_t* live, uint8_t* ok) {
  n_ = a.size();
  lanes_ = a.lanes();
  valid_ = false;
  pivot_threshold_ = pivot_threshold;
  ++symbolic_count_;

  // Source scatter index: entries grouped by row, with their LaneMatrix
  // handles, so numeric refactors stream straight into the workspace.
  const auto& coords = a.entries();
  pattern_.assign(coords.begin(), coords.end());
  row_start_.assign(n_ + 1, 0);
  for (const auto& e : coords) ++row_start_[e.row + 1];
  for (size_t r = 0; r < n_; ++r) row_start_[r + 1] += row_start_[r];
  row_entry_col_.resize(coords.size());
  row_entry_handle_.resize(coords.size());
  {
    std::vector<uint32_t> fill(row_start_.begin(), row_start_.end() - 1);
    for (size_t h = 0; h < coords.size(); ++h) {
      const uint32_t slot = fill[coords[h].row]++;
      row_entry_col_[slot] = static_cast<uint32_t>(coords[h].col);
      row_entry_handle_[slot] = static_cast<uint32_t>(h);
    }
  }

  // Scalar elimination on the pivot lane's values: same algorithm as
  // SparseLu::factor (row pivoting only, so elimination step k clears
  // original column k), but we keep only the structure — per-lane values
  // are recomputed by the numeric replay below.
  std::vector<Row> work(n_);
  for (size_t r = 0; r < n_; ++r) work[r].reserve(row_start_[r + 1] - row_start_[r]);
  for (size_t h = 0; h < coords.size(); ++h) {
    work[coords[h].row].push_back({coords[h].col, a.value(h, pivot_lane)});
  }
  for (auto& row : work) {
    std::sort(row.begin(), row.end(), [](const Term& x, const Term& y) { return x.col < y.col; });
    size_t w = 0;
    for (size_t i = 0; i < row.size(); ++i) {
      if (w > 0 && row[w - 1].col == row[i].col) {
        row[w - 1].val += row[i].val;
      } else {
        row[w++] = row[i];
      }
    }
    row.resize(w);
  }

  std::vector<std::vector<uint32_t>> lower_cols(n_);  // per original row
  std::vector<Row> upper(n_);                         // per step, with pivot-lane values
  perm_.resize(n_);
  std::vector<size_t> active(n_);
  for (size_t i = 0; i < n_; ++i) active[i] = i;

  Row merged;
  for (size_t k = 0; k < n_; ++k) {
    size_t best_pos = k;
    double best_mag = -1.0;
    for (size_t pos = k; pos < n_; ++pos) {
      const Row& row = work[active[pos]];
      auto it = std::lower_bound(row.begin(), row.end(), k,
                                 [](const Term& t, size_t col) { return t.col < col; });
      const double mag = (it != row.end() && it->col == k) ? std::fabs(it->val) : 0.0;
      if (mag > best_mag) {
        best_mag = mag;
        best_pos = pos;
      }
    }
    if (best_mag <= pivot_threshold || !std::isfinite(best_mag)) {
      throw NumericalError("EnsembleLu: pivot lane singular at column " + std::to_string(k));
    }
    std::swap(active[k], active[best_pos]);
    const size_t prow = active[k];
    perm_[k] = prow;

    Row& pivot_row = work[prow];
    auto split = std::lower_bound(pivot_row.begin(), pivot_row.end(), k,
                                  [](const Term& t, size_t col) { return t.col < col; });
    upper[k].assign(split, pivot_row.end());
    const double diag_inv = 1.0 / upper[k].front().val;

    for (size_t pos = k + 1; pos < n_; ++pos) {
      Row& row = work[active[pos]];
      auto it = std::lower_bound(row.begin(), row.end(), k,
                                 [](const Term& t, size_t col) { return t.col < col; });
      if (it == row.end() || it->col != k) continue;
      const double factor = it->val * diag_inv;
      lower_cols[active[pos]].push_back(static_cast<uint32_t>(k));

      merged.clear();
      auto ri = it + 1;
      auto ui = upper[k].begin() + 1;
      while (ri != row.end() && ui != upper[k].end()) {
        if (ri->col < ui->col) {
          merged.push_back(*ri++);
        } else if (ri->col > ui->col) {
          merged.push_back({ui->col, -factor * ui->val});
          ++ui;
        } else {
          merged.push_back({ri->col, ri->val - factor * ui->val});
          ++ri;
          ++ui;
        }
      }
      for (; ri != row.end(); ++ri) merged.push_back(*ri);
      for (; ui != upper[k].end(); ++ui) merged.push_back({ui->col, -factor * ui->val});
      row.assign(merged.begin(), merged.end());
    }
  }

  // Flatten the structure to CSR and size the SoA value arrays.
  lo_start_.assign(n_ + 1, 0);
  for (size_t r = 0; r < n_; ++r) {
    lo_start_[r + 1] = lo_start_[r] + static_cast<uint32_t>(lower_cols[r].size());
  }
  lo_cols_.resize(lo_start_[n_]);
  for (size_t r = 0; r < n_; ++r) {
    std::copy(lower_cols[r].begin(), lower_cols[r].end(), lo_cols_.begin() + lo_start_[r]);
  }
  up_start_.assign(n_ + 1, 0);
  for (size_t k = 0; k < n_; ++k) {
    up_start_[k + 1] = up_start_[k] + static_cast<uint32_t>(upper[k].size());
  }
  up_cols_.resize(up_start_[n_]);
  for (size_t k = 0; k < n_; ++k) {
    for (size_t i = 0; i < upper[k].size(); ++i) {
      up_cols_[up_start_[k] + i] = static_cast<uint32_t>(upper[k][i].col);
    }
  }
  lo_vals_.assign(lo_cols_.size() * lanes_, 0.0);
  up_vals_.assign(up_cols_.size() * lanes_, 0.0);
  diag_inv_.assign(n_ * lanes_, 0.0);
  work_.assign(n_ * lanes_, 0.0);
  valid_ = true;

  refactorNumeric(a, live);
  if (ok != nullptr) std::copy(lane_ok_.begin(), lane_ok_.end(), ok);
}

bool EnsembleLu::patternMatches(const LaneMatrix& a) const {
  if (a.size() != n_ || a.lanes() != lanes_ || a.entries().size() != pattern_.size()) return false;
  const auto& coords = a.entries();
  for (size_t i = 0; i < coords.size(); ++i) {
    if (coords[i].row != pattern_[i].row || coords[i].col != pattern_[i].col) return false;
  }
  return true;
}

bool EnsembleLu::refactorNumeric(const LaneMatrix& a, const uint8_t* live) {
  // Lane-parallel replay of the cached elimination. Every lane runs the
  // same structural walk with contiguous double[K] inner loops; lanes are
  // numerically independent columns of the SoA arrays, so a lane whose
  // pivot collapses (flagged in lane_ok_, its 1/pivot deadened to 0)
  // cannot contaminate its siblings.
  const size_t K = lanes_;
  lane_ok_.assign(K, 1);
  lane_singular_col_.assign(K, -1);
  for (size_t k = 0; k < n_; ++k) {
    const size_t r = perm_[k];
    for (uint32_t idx = lo_start_[r]; idx < lo_start_[r + 1]; ++idx) {
      double* w = &work_[lo_cols_[idx] * K];
      for (size_t l = 0; l < K; ++l) w[l] = 0.0;
    }
    for (uint32_t idx = up_start_[k]; idx < up_start_[k + 1]; ++idx) {
      double* w = &work_[up_cols_[idx] * K];
      for (size_t l = 0; l < K; ++l) w[l] = 0.0;
    }
    for (uint32_t e = row_start_[r]; e < row_start_[r + 1]; ++e) {
      const double* src = a.laneValues(row_entry_handle_[e]);
      double* w = &work_[row_entry_col_[e] * K];
      for (size_t l = 0; l < K; ++l) w[l] += src[l];
    }
    for (uint32_t idx = lo_start_[r]; idx < lo_start_[r + 1]; ++idx) {
      const uint32_t c = lo_cols_[idx];
      double* f = &lo_vals_[idx * K];
      const double* wc = &work_[c * K];
      const double* dinv = &diag_inv_[c * K];
      for (size_t l = 0; l < K; ++l) f[l] = wc[l] * dinv[l];
      for (uint32_t i = up_start_[c] + 1; i < up_start_[c + 1]; ++i) {
        double* w = &work_[up_cols_[i] * K];
        const double* uv = &up_vals_[i * K];
        for (size_t l = 0; l < K; ++l) w[l] -= f[l] * uv[l];
      }
    }
    const double* wk = &work_[k * K];
    double* dk = &diag_inv_[k * K];
    for (size_t l = 0; l < K; ++l) {
      const double pv = wk[l];
      const bool good = (std::fabs(pv) > pivot_threshold_) && std::isfinite(pv);
      if (!good) {
        if (lane_ok_[l]) lane_singular_col_[l] = static_cast<int>(k);
        lane_ok_[l] = 0;
      }
      dk[l] = good ? 1.0 / pv : 0.0;
    }
    for (uint32_t idx = up_start_[k]; idx < up_start_[k + 1]; ++idx) {
      const double* w = &work_[up_cols_[idx] * K];
      double* uv = &up_vals_[idx * K];
      for (size_t l = 0; l < K; ++l) uv[l] = w[l];
    }
  }
  ++numeric_count_;
  bool all_ok = true;
  for (size_t l = 0; l < K; ++l) {
    if (live != nullptr && !live[l]) {
      lane_ok_[l] = 0;  // never factored meaningfully; don't solve with it
    } else if (!lane_ok_[l]) {
      all_ok = false;
    }
  }
  return all_ok;
}

void EnsembleLu::refactor(const LaneMatrix& a, const uint8_t* live, uint8_t* ok) {
  if (valid_ && patternMatches(a) && refactorNumeric(a, live)) {
    if (ok != nullptr) std::copy(lane_ok_.begin(), lane_ok_.end(), ok);
    return;
  }
  // Pattern changed, or some live lane's pivot degraded under the shared
  // order: re-analyze with a fresh pivot order. Prefer choosing it on a
  // lane that just failed (that is where the old order went bad), then
  // fall back to the remaining live lanes.
  const size_t K = lanes_ == 0 ? a.lanes() : lanes_;
  std::vector<size_t> candidates;
  if (valid_ && lane_ok_.size() == K) {
    for (size_t l = 0; l < K; ++l) {
      if ((live == nullptr || live[l]) && !lane_ok_[l]) candidates.push_back(l);
    }
  }
  for (size_t l = 0; l < K; ++l) {
    if ((live == nullptr || live[l]) &&
        std::find(candidates.begin(), candidates.end(), l) == candidates.end()) {
      candidates.push_back(l);
    }
  }
  std::vector<uint8_t> dead(K, 0);
  for (size_t p : candidates) {
    try {
      analyze(a, p, pivot_threshold_, live, nullptr);
    } catch (const NumericalError&) {
      dead[p] = 1;  // structurally hopeless as a pivot source; try another
      continue;
    }
    for (size_t l = 0; l < K; ++l) {
      if (dead[l]) lane_ok_[l] = 0;
    }
    if (ok != nullptr) std::copy(lane_ok_.begin(), lane_ok_.end(), ok);
    return;
  }
  throw NumericalError("EnsembleLu: every live lane is singular");
}

void EnsembleLu::solveInPlace(std::vector<double>& b, const uint8_t* live) const {
  if (!valid_) throw InvalidInputError("EnsembleLu::solve: no valid factorization");
  const size_t K = lanes_;
  if (b.size() != n_ * K) throw InvalidInputError("EnsembleLu::solve: size mismatch");
  std::vector<double>& y = solve_scratch_;
  y.resize(n_ * K);
  // Forward: L y = P b (all lanes; dead lanes compute garbage into the
  // scratch but are filtered out by the masked copy-back).
  for (size_t k = 0; k < n_; ++k) {
    double* yk = &y[k * K];
    const double* bp = &b[perm_[k] * K];
    for (size_t l = 0; l < K; ++l) yk[l] = bp[l];
    for (uint32_t idx = lo_start_[perm_[k]]; idx < lo_start_[perm_[k] + 1]; ++idx) {
      const double* lv = &lo_vals_[idx * K];
      const double* yc = &y[lo_cols_[idx] * K];
      for (size_t l = 0; l < K; ++l) yk[l] -= lv[l] * yc[l];
    }
  }
  // Backward: U x = y.
  for (size_t kk = n_; kk-- > 0;) {
    double* yk = &y[kk * K];
    for (uint32_t i = up_start_[kk] + 1; i < up_start_[kk + 1]; ++i) {
      const double* uv = &up_vals_[i * K];
      const double* yc = &y[up_cols_[i] * K];
      for (size_t l = 0; l < K; ++l) yk[l] -= uv[l] * yc[l];
    }
    const double* dk = &diag_inv_[kk * K];
    for (size_t l = 0; l < K; ++l) yk[l] *= dk[l];
  }
  if (live == nullptr) {
    std::swap(b, y);
  } else {
    for (size_t i = 0; i < n_; ++i) {
      for (size_t l = 0; l < K; ++l) {
        if (live[l]) b[i * K + l] = y[i * K + l];
      }
    }
  }
}

}  // namespace vls
