// Lane-strided sparse matrix for the ensemble engine: one shared
// sparsity pattern (all Monte-Carlo variants of a topology stamp the
// same positions), per-lane numeric values stored structure-of-arrays
// as contiguous double[lanes] runs per entry. Mirrors SparseMatrix's
// handle contract: the pattern is append-only and handles, once
// resolved (e.g. into a lane stamp tape), stay valid forever.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "numeric/sparse_matrix.hpp"

namespace vls {

class LaneMatrix {
 public:
  LaneMatrix(size_t n, size_t lanes) : n_(n), lanes_(lanes) {}

  size_t size() const { return n_; }
  size_t lanes() const { return lanes_; }
  size_t nonZeros() const { return coords_.size(); }

  /// Register (or find) the entry at (row, col); returns a stable handle.
  size_t entryHandle(size_t row, size_t col) {
    const uint64_t key = (static_cast<uint64_t>(row) << 32) | static_cast<uint64_t>(col);
    auto it = index_.find(key);
    if (it != index_.end()) return it->second;
    const size_t handle = coords_.size();
    coords_.push_back({row, col});
    values_.resize(values_.size() + lanes_, 0.0);
    index_.emplace(key, handle);
    return handle;
  }

  /// Contiguous double[lanes] run for one entry.
  double* laneValues(size_t handle) { return values_.data() + handle * lanes_; }
  const double* laneValues(size_t handle) const { return values_.data() + handle * lanes_; }

  double value(size_t handle, size_t lane) const { return values_[handle * lanes_ + lane]; }

  /// Zero all values, keep the pattern.
  void clearValues() { std::fill(values_.begin(), values_.end(), 0.0); }

  const std::vector<SparseMatrix::Entry>& entries() const { return coords_; }

 private:
  size_t n_;
  size_t lanes_;
  std::vector<SparseMatrix::Entry> coords_;
  std::vector<double> values_;  // [handle * lanes_ + lane]
  std::unordered_map<uint64_t, size_t> index_;
};

}  // namespace vls
