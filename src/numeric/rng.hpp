// Deterministic random number generation for Monte-Carlo runs.
// xoshiro256** seeded via splitmix64: fast, reproducible across
// platforms (unlike std::normal_distribution, whose output is
// implementation-defined).
#pragma once

#include <cstdint>

namespace vls {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  uint64_t nextU64();

  /// Uniform in [0, 1).
  double uniform();

  /// Uniform in [lo, hi).
  double uniform(double lo, double hi);

  /// Standard normal via Box–Muller (cached second deviate).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double sigma) { return mean + sigma * gaussian(); }

  /// Uniform integer in [0, bound).
  uint64_t below(uint64_t bound);

  /// Derive an independent stream (for per-sample generators).
  Rng split();

 private:
  uint64_t state_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace vls
