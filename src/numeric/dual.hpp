// Forward-mode automatic differentiation with a fixed number of
// directions. The MOSFET model evaluates its drain current on
// Dual<3> (partials w.r.t. gate/drain/source referenced to bulk), which
// gives exact Jacobian stamps from a single code path — no hand-derived
// derivative bugs, no finite-difference noise in Newton iterations.
#pragma once

#include <array>
#include <cmath>
#include <cstddef>

namespace vls {

template <size_t N>
struct Dual {
  double v = 0.0;
  std::array<double, N> d{};

  Dual() = default;
  /*implicit*/ Dual(double value) : v(value) {}  // NOLINT: constants promote silently

  static Dual seed(double value, size_t direction) {
    Dual out(value);
    out.d[direction] = 1.0;
    return out;
  }

  Dual operator-() const {
    Dual out(-v);
    for (size_t i = 0; i < N; ++i) out.d[i] = -d[i];
    return out;
  }

  Dual& operator+=(const Dual& o) {
    v += o.v;
    for (size_t i = 0; i < N; ++i) d[i] += o.d[i];
    return *this;
  }
  Dual& operator-=(const Dual& o) {
    v -= o.v;
    for (size_t i = 0; i < N; ++i) d[i] -= o.d[i];
    return *this;
  }
  Dual& operator*=(const Dual& o) {
    for (size_t i = 0; i < N; ++i) d[i] = d[i] * o.v + v * o.d[i];
    v *= o.v;
    return *this;
  }
  Dual& operator/=(const Dual& o) {
    const double inv = 1.0 / o.v;
    for (size_t i = 0; i < N; ++i) d[i] = (d[i] - v * inv * o.d[i]) * inv;
    v *= inv;
    return *this;
  }

  friend Dual operator+(Dual a, const Dual& b) { return a += b; }
  friend Dual operator-(Dual a, const Dual& b) { return a -= b; }
  friend Dual operator*(Dual a, const Dual& b) { return a *= b; }
  friend Dual operator/(Dual a, const Dual& b) { return a /= b; }

  friend bool operator<(const Dual& a, const Dual& b) { return a.v < b.v; }
  friend bool operator>(const Dual& a, const Dual& b) { return a.v > b.v; }
};

template <size_t N>
Dual<N> exp(const Dual<N>& x) {
  Dual<N> out(std::exp(x.v));
  for (size_t i = 0; i < N; ++i) out.d[i] = out.v * x.d[i];
  return out;
}

template <size_t N>
Dual<N> log(const Dual<N>& x) {
  Dual<N> out(std::log(x.v));
  const double inv = 1.0 / x.v;
  for (size_t i = 0; i < N; ++i) out.d[i] = inv * x.d[i];
  return out;
}

template <size_t N>
Dual<N> log1p(const Dual<N>& x) {
  Dual<N> out(std::log1p(x.v));
  const double inv = 1.0 / (1.0 + x.v);
  for (size_t i = 0; i < N; ++i) out.d[i] = inv * x.d[i];
  return out;
}

template <size_t N>
Dual<N> sqrt(const Dual<N>& x) {
  Dual<N> out(std::sqrt(x.v));
  const double scale = out.v > 0.0 ? 0.5 / out.v : 0.0;
  for (size_t i = 0; i < N; ++i) out.d[i] = scale * x.d[i];
  return out;
}

/// Numerically safe softplus: ln(1 + e^x), linear for large x.
template <size_t N>
Dual<N> softplus(const Dual<N>& x) {
  if (x.v > 40.0) return x;  // derivative -> 1 exactly in this regime
  if (x.v < -40.0) {
    Dual<N> out(std::exp(x.v));  // ~0 with vanishing derivative
    for (size_t i = 0; i < N; ++i) out.d[i] = out.v * x.d[i];
    return out;
  }
  return log1p(exp(x));
}

/// Scalar value extraction that works for both double and Dual (for
/// generic code that needs value-based branching).
inline constexpr double scalarValue(double x) { return x; }
template <size_t N>
constexpr double scalarValue(const Dual<N>& x) {
  return x.v;
}

inline double softplus(double x) {
  if (x > 40.0) return x;
  if (x < -40.0) return std::exp(x);
  return std::log1p(std::exp(x));
}

}  // namespace vls
