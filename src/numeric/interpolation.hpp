// Piecewise-linear interpolation over sorted abscissae. Used by PWL
// sources, waveform sampling, and threshold-crossing measurements.
#pragma once

#include <optional>
#include <vector>

namespace vls {

/// Value of the piecewise-linear function through (xs, ys) at x.
/// Clamps outside the domain. xs must be strictly increasing.
double interpLinear(const std::vector<double>& xs, const std::vector<double>& ys, double x);

/// First x >= from where the piecewise-linear function crosses `level`
/// in the requested direction (rising: from below to >= level).
enum class CrossDir { Rising, Falling, Either };
std::optional<double> firstCrossing(const std::vector<double>& xs, const std::vector<double>& ys,
                                    double level, CrossDir dir, double from = 0.0);

/// All crossings of `level` after `from`.
std::vector<double> allCrossings(const std::vector<double>& xs, const std::vector<double>& ys,
                                 double level, CrossDir dir, double from = 0.0);

/// firstCrossing with the abscissa refined on a Hermite cubic through
/// the bracketing segment (centered-difference endpoint slopes). The
/// linear estimate's error is O(dt^2 * curvature), which differs
/// between two otherwise-converged time grids of the same waveform;
/// the cubic's O(dt^3) error makes crossing times grid-robust, so the
/// characterization farm's lane and scalar paths agree to the table
/// tolerance. Falls back to the linear estimate on degenerate brackets.
std::optional<double> firstCrossingCubic(const std::vector<double>& xs,
                                         const std::vector<double>& ys, double level, CrossDir dir,
                                         double from = 0.0);

/// Trapezoidal integral of y(x) over [x0, x1] (clamped to the domain).
double integrateTrapezoid(const std::vector<double>& xs, const std::vector<double>& ys, double x0,
                          double x1);

}  // namespace vls
