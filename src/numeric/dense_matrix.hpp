// Row-major dense matrix. Sized for MNA systems of a few hundred
// unknowns; storage is a single contiguous buffer.
#pragma once

#include <cstddef>
#include <vector>

namespace vls {

class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  static DenseMatrix identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Reset every entry to zero without reallocating.
  void setZero();
  /// Resize (destroys contents) and zero-fill.
  void resize(size_t rows, size_t cols);

  /// y = A * x. `x` must have cols() entries.
  std::vector<double> multiply(const std::vector<double>& x) const;
  DenseMatrix multiply(const DenseMatrix& other) const;

  DenseMatrix transposed() const;

  /// Max-abs entry (used by conditioning heuristics and tests).
  double maxAbs() const;

  const double* data() const { return data_.data(); }
  double* data() { return data_.data(); }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace vls
