// Batched sparse LU for ensembles: K same-pattern matrices (lanes)
// factored in lockstep. The symbolic phase (pivot order + L/U fill
// pattern + row-grouped source scatter index) runs once on a designated
// pivot lane and is shared by every lane; the numeric phase replays the
// cached elimination with structure-of-arrays values, so the inner
// updates are contiguous double[K] loops the compiler can vectorize.
//
// Failure is per-lane: a lane whose pivot degrades under the shared
// pivot order is flagged (ok[l] = 0) without disturbing its siblings —
// the ensemble Newton drops that lane and the Monte-Carlo driver
// re-runs the sample through the scalar reference path.
#pragma once

#include <cstdint>
#include <vector>

#include "numeric/lane_matrix.hpp"

namespace vls {

class EnsembleLu {
 public:
  EnsembleLu() = default;

  /// Symbolic + numeric factorization of every lane, sharing the pivot
  /// order chosen on `pivot_lane`'s values. Throws NumericalError if the
  /// pivot lane is structurally singular. Per-lane numeric outcomes go
  /// to ok[l] (1 = usable) when `ok` is non-null.
  void analyze(const LaneMatrix& a, size_t pivot_lane = 0, double pivot_threshold = 1e-13,
               const uint8_t* live = nullptr, uint8_t* ok = nullptr);

  /// Numeric-only refactorization for lanes with live[l] != 0 (null =
  /// all lanes). Reuses the cached pivot order when the pattern matches;
  /// if any live lane's pivot degrades, re-analyzes once with a fresh
  /// pivot order chosen on the first failing lane and retries. Lanes
  /// still failing get ok[l] = 0; throws only if no live lane can be
  /// factored at all.
  void refactor(const LaneMatrix& a, const uint8_t* live, uint8_t* ok);

  /// In-place forward/back substitution on SoA vector b (size n*lanes)
  /// for lanes with live[l] != 0 (null = all). Dead lanes keep their b
  /// entries untouched.
  void solveInPlace(std::vector<double>& b, const uint8_t* live = nullptr) const;

  size_t size() const { return n_; }
  size_t lanes() const { return lanes_; }
  size_t factorNonZeros() const { return lo_cols_.size() + up_cols_.size(); }
  size_t symbolicFactorizations() const { return symbolic_count_; }
  size_t numericRefactorizations() const { return numeric_count_; }

  /// First elimination column whose pivot collapsed for lane l in the
  /// most recent numeric pass (-1 when the lane factored cleanly). Row
  /// pivoting preserves column order, so this is the original unknown
  /// index — the ensemble engine maps it to the circuit node name for
  /// per-lane failure diagnostics.
  int laneSingularColumn(size_t l) const {
    return l < lane_singular_col_.size() ? lane_singular_col_[l] : -1;
  }

 private:
  bool patternMatches(const LaneMatrix& a) const;
  /// Replays the cached elimination for the selected lanes. Returns true
  /// if every selected lane factored; per-lane outcomes in lane_ok_.
  bool refactorNumeric(const LaneMatrix& a, const uint8_t* live);

  size_t n_ = 0;
  size_t lanes_ = 0;
  bool valid_ = false;
  double pivot_threshold_ = 1e-13;

  // Shared symbolic structure (CSR-style):
  std::vector<size_t> perm_;      // perm_[k] = original row at elimination step k
  std::vector<uint32_t> lo_start_;  // per original row r: [lo_start_[r], lo_start_[r+1])
  std::vector<uint32_t> lo_cols_;   // elimination-step columns, increasing
  std::vector<uint32_t> up_start_;  // per step k: [up_start_[k], up_start_[k+1]); first col == k
  std::vector<uint32_t> up_cols_;
  std::vector<SparseMatrix::Entry> pattern_;
  std::vector<uint32_t> row_start_;      // source scatter: per original row
  std::vector<uint32_t> row_entry_col_;  // step-space column of each source entry
  std::vector<uint32_t> row_entry_handle_;

  // Per-lane numeric values (SoA, [idx * lanes_ + lane]):
  std::vector<double> lo_vals_;
  std::vector<double> up_vals_;
  std::vector<double> diag_inv_;
  std::vector<double> work_;  // dense scatter workspace, n * lanes_
  mutable std::vector<double> solve_scratch_;
  std::vector<uint8_t> lane_ok_;
  std::vector<int> lane_singular_col_;  // first bad pivot column per lane, -1 = clean

  size_t symbolic_count_ = 0;
  size_t numeric_count_ = 0;
};

}  // namespace vls
