#include "numeric/ordering.hpp"

#include <algorithm>
#include <queue>
#include <utility>

namespace vls {

const char* luOrderingName(LuOrdering ordering) {
  switch (ordering) {
    case LuOrdering::Natural:
      return "natural";
    case LuOrdering::MinDegree:
      return "mindeg";
  }
  return "unknown";
}

// Quotient-graph minimum degree. Eliminating pivot p replaces p and
// every element (prior pivot clique) touching p with one new element
// whose variables are p's combined neighborhood; absorbed elements die,
// so the graph never grows beyond the original adjacency plus one live
// clique per elimination. Degrees are the AMD-style upper bound
// |A_i| + sum_e (|L_e| - 1), kept in a lazy heap: stale entries (degree
// changed since push) are skipped on pop instead of being re-keyed.
std::vector<uint32_t> minimumDegreeOrder(size_t n,
                                         const std::vector<SparseMatrix::Entry>& entries) {
  std::vector<uint32_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = static_cast<uint32_t>(i);
  if (n <= 2) return order;

  // Symmetrized off-diagonal adjacency, sorted and deduplicated.
  std::vector<std::vector<uint32_t>> adj(n);
  for (const auto& e : entries) {
    if (e.row == e.col || e.row >= n || e.col >= n) continue;
    adj[e.row].push_back(static_cast<uint32_t>(e.col));
    adj[e.col].push_back(static_cast<uint32_t>(e.row));
  }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  std::vector<std::vector<uint32_t>> elem_vars;     // element -> live variables
  std::vector<std::vector<uint32_t>> var_elems(n);  // variable -> elements containing it
  std::vector<char> elem_dead;
  std::vector<uint32_t> degree(n);
  std::vector<char> eliminated(n, 0);
  std::vector<uint32_t> mark(n, 0);
  uint32_t stamp = 0;

  // Min-heap of (degree, variable); ties break toward the lower index,
  // which keeps the order deterministic for a given pattern.
  using HeapItem = std::pair<uint32_t, uint32_t>;
  std::priority_queue<HeapItem, std::vector<HeapItem>, std::greater<HeapItem>> heap;
  for (size_t i = 0; i < n; ++i) {
    degree[i] = static_cast<uint32_t>(adj[i].size());
    heap.push({degree[i], static_cast<uint32_t>(i)});
  }

  size_t count = 0;
  std::vector<uint32_t> lp;  // neighborhood of the pivot being eliminated
  while (count < n) {
    const HeapItem top = heap.top();
    heap.pop();
    const uint32_t p = top.second;
    if (eliminated[p] || top.first != degree[p]) continue;  // stale heap entry

    // L_p = (A_p U union of p's elements) \ {p, eliminated}.
    ++stamp;
    mark[p] = stamp;
    lp.clear();
    for (uint32_t v : adj[p]) {
      if (!eliminated[v] && mark[v] != stamp) {
        mark[v] = stamp;
        lp.push_back(v);
      }
    }
    for (uint32_t e : var_elems[p]) {
      if (elem_dead[e]) continue;
      for (uint32_t v : elem_vars[e]) {
        if (mark[v] != stamp) {
          mark[v] = stamp;
          lp.push_back(v);
        }
      }
      elem_dead[e] = 1;  // absorbed into the new element
    }
    std::sort(lp.begin(), lp.end());
    eliminated[p] = 1;
    order[count++] = p;
    adj[p].clear();
    var_elems[p].clear();
    if (lp.empty()) continue;

    const uint32_t enew = static_cast<uint32_t>(elem_vars.size());
    elem_vars.push_back(lp);
    elem_dead.push_back(0);

    for (uint32_t i : lp) {
      // Variables covered by the new element leave A_i (still marked
      // with this stamp); eliminating symmetric neighbors keeps A
      // symmetric because every j with p in A_j is in L_p.
      auto& ai = adj[i];
      size_t w = 0;
      for (uint32_t v : ai) {
        if (!eliminated[v] && mark[v] != stamp) ai[w++] = v;
      }
      ai.resize(w);

      auto& ei = var_elems[i];
      w = 0;
      for (uint32_t e : ei) {
        if (!elem_dead[e]) ei[w++] = e;
      }
      ei.resize(w);
      ei.push_back(enew);

      uint64_t deg = ai.size();
      for (uint32_t e : ei) deg += elem_vars[e].size() - 1;
      degree[i] = static_cast<uint32_t>(std::min<uint64_t>(deg, n - 1));
      heap.push({degree[i], i});
    }
  }
  return order;
}

}  // namespace vls
