#include "numeric/lu_dense.hpp"

#include <cmath>
#include <utility>

#include "base/error.hpp"

namespace vls {

DenseLu::DenseLu(DenseMatrix a) : lu_(std::move(a)) {
  if (lu_.rows() != lu_.cols()) throw InvalidInputError("DenseLu: matrix not square");
  const size_t n = lu_.rows();
  perm_.resize(n);
  for (size_t i = 0; i < n; ++i) perm_[i] = i;

  for (size_t k = 0; k < n; ++k) {
    // Partial pivoting: pick the largest magnitude in column k.
    size_t pivot = k;
    double best = std::fabs(lu_(k, k));
    for (size_t r = k + 1; r < n; ++r) {
      const double v = std::fabs(lu_(r, k));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best == 0.0 || !std::isfinite(best)) {
      throw NumericalError("DenseLu: singular matrix at column " + std::to_string(k));
    }
    if (pivot != k) {
      for (size_t c = 0; c < n; ++c) std::swap(lu_(k, c), lu_(pivot, c));
      std::swap(perm_[k], perm_[pivot]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (size_t r = k + 1; r < n; ++r) {
      const double factor = lu_(r, k) * inv_pivot;
      lu_(r, k) = factor;
      if (factor == 0.0) continue;
      for (size_t c = k + 1; c < n; ++c) lu_(r, c) -= factor * lu_(k, c);
    }
  }
}

std::vector<double> DenseLu::solve(const std::vector<double>& b) const {
  std::vector<double> x(b);
  solveInPlace(x);
  return x;
}

void DenseLu::solveInPlace(std::vector<double>& b) const {
  const size_t n = lu_.rows();
  if (b.size() != n) throw InvalidInputError("DenseLu::solve: size mismatch");
  // Apply permutation.
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) y[i] = b[perm_[i]];
  // Forward substitution (L has unit diagonal).
  for (size_t i = 0; i < n; ++i) {
    double acc = y[i];
    for (size_t j = 0; j < i; ++j) acc -= lu_(i, j) * y[j];
    y[i] = acc;
  }
  // Back substitution.
  for (size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (size_t j = ii + 1; j < n; ++j) acc -= lu_(ii, j) * y[j];
    y[ii] = acc / lu_(ii, ii);
  }
  b = std::move(y);
}

double DenseLu::determinant() const {
  double det = perm_sign_;
  for (size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

}  // namespace vls
