// Sparse square matrix tailored to MNA assembly: the sparsity pattern is
// fixed once (device stamps register their positions), then values are
// rewritten every Newton iteration through cached entry handles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace vls {

class SparseMatrix {
 public:
  explicit SparseMatrix(size_t n = 0) : n_(n) {}

  size_t size() const { return n_; }
  size_t nonZeros() const { return values_.size(); }

  /// Register (or find) the entry at (row, col) and return a stable
  /// handle usable with addAt()/setAt(). Safe to call repeatedly.
  /// Stability guarantee: handles are never invalidated — the pattern
  /// is append-only, so a handle resolved once (e.g. into an assembly
  /// tape) stays valid even as later stamps grow the pattern.
  size_t entryHandle(size_t row, size_t col);

  /// Accumulate into an entry via its handle.
  void addAt(size_t handle, double value) { values_[handle] += value; }
  void setAt(size_t handle, double value) { values_[handle] = value; }
  double at(size_t handle) const { return values_[handle]; }

  /// Accumulate by coordinates (slow path; creates the entry if new).
  void add(size_t row, size_t col, double value) { addAt(entryHandle(row, col), value); }

  /// Zero all values, keep the pattern.
  void clearValues();

  /// Entry coordinate lookup for iteration.
  struct Entry {
    size_t row;
    size_t col;
  };
  const std::vector<Entry>& entries() const { return coords_; }
  double value(size_t handle) const { return values_[handle]; }

  /// y = A * x (for residual checks and tests).
  std::vector<double> multiply(const std::vector<double>& x) const;

  /// Dense copy (tests and small-system fallback solves).
  std::vector<std::vector<double>> toDense() const;

 private:
  size_t n_;
  std::vector<Entry> coords_;
  std::vector<double> values_;
  std::unordered_map<uint64_t, size_t> index_;  // (row<<32|col) -> handle
};

}  // namespace vls
