// Dense LU factorization with partial pivoting. Used as the reference
// solver in tests and as a fallback for small systems; the transient
// engine uses the sparse solver.
#pragma once

#include <vector>

#include "numeric/dense_matrix.hpp"

namespace vls {

class DenseLu {
 public:
  /// Factor A = P·L·U in place. Throws NumericalError if singular to
  /// working precision.
  explicit DenseLu(DenseMatrix a);

  /// Solve A x = b using the stored factors.
  std::vector<double> solve(const std::vector<double>& b) const;

  /// Solve in place.
  void solveInPlace(std::vector<double>& b) const;

  /// |det(A)| growth estimate via product of pivots (log scale avoided:
  /// only used by tests on tiny systems).
  double determinant() const;

  size_t size() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<size_t> perm_;
  int perm_sign_ = 1;
};

}  // namespace vls
