// Descriptive statistics for Monte-Carlo result reporting (the paper's
// Tables 3 and 4 report mean and standard deviation of six metrics).
#pragma once

#include <cstddef>
#include <vector>

namespace vls {

/// Streaming mean/variance/extremes (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch summary of a sample vector.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
};

Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample vector, q in [0,1].
double percentileSorted(const std::vector<double>& sorted, double q);

}  // namespace vls
