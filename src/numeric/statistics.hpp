// Descriptive statistics for Monte-Carlo result reporting (the paper's
// Tables 3 and 4 report mean and standard deviation of six metrics).
//
// Two tiers: exact batch summaries over materialized sample vectors
// (summarize/percentileSorted), and O(1)-memory streaming accumulators
// (OnlineStats, P2Quantile, StreamingSummary) for sample counts where
// keeping per-sample arrays is memory-hostile — a million-sample run
// summarizes through a few hundred bytes per metric instead of 8 MB.
#pragma once

#include <cstddef>
#include <vector>

namespace vls {

/// Streaming mean/variance/extremes (Welford's algorithm).
class OnlineStats {
 public:
  void add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  /// Checkpoint support: the exact accumulator state as raw doubles.
  /// restoreState(saveState(...)) round-trips bit-identically.
  void saveState(std::vector<double>& out) const;
  void restoreState(const std::vector<double>& state, size_t& pos);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantile estimator (Jain & Chlamtac's P² algorithm):
/// five markers track {min, q/2, q, (1+q)/2, max} height/position pairs
/// and are nudged by parabolic (fallback linear) interpolation as
/// observations arrive. O(1) memory, O(1) per observation; exact for
/// the first five observations, approximate after. Estimates are
/// mildly sensitive to ingestion order — summaries built concurrently
/// are reproducible only up to the estimator's accuracy, which is why
/// streaming Monte-Carlo summaries are compared against the exact path
/// with tolerances while failure records stay bit-exact.
class P2Quantile {
 public:
  explicit P2Quantile(double q);

  void add(double x);

  /// Current estimate: exact (interpolated order statistic) below five
  /// observations, the P² middle marker after. 0 with no observations.
  double value() const;

  size_t count() const { return count_; }
  double quantile() const { return q_; }

  /// Checkpoint support (see OnlineStats::saveState).
  void saveState(std::vector<double>& out) const;
  void restoreState(const std::vector<double>& state, size_t& pos);

 private:
  double q_;
  size_t count_ = 0;
  double heights_[5] = {0, 0, 0, 0, 0};    ///< marker heights
  double positions_[5] = {1, 2, 3, 4, 5};  ///< actual marker positions
  double desired_[5] = {0, 0, 0, 0, 0};    ///< desired marker positions
  double increment_[5] = {0, 0, 0, 0, 0};  ///< desired-position increments
};

/// O(1)-memory replacement for a per-sample vector + summarize():
/// Welford moments and extremes plus P² estimators for the three
/// quantiles Summary reports.
class StreamingSummary {
 public:
  void add(double x) {
    moments_.add(x);
    p05_.add(x);
    median_.add(x);
    p95_.add(x);
  }

  size_t count() const { return moments_.count(); }
  struct Summary summary() const;

  /// Checkpoint support: full accumulator state (moments + all three
  /// P² marker sets) as raw doubles; round-trips bit-identically.
  std::vector<double> saveState() const;
  void restoreState(const std::vector<double>& state);

 private:
  OnlineStats moments_;
  P2Quantile p05_{0.05};
  P2Quantile median_{0.50};
  P2Quantile p95_{0.95};
};

/// Batch summary of a sample vector.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p95 = 0.0;
};

Summary summarize(std::vector<double> samples);

/// Linear-interpolated percentile of a *sorted* sample vector, q in [0,1].
double percentileSorted(const std::vector<double>& sorted, double q);

}  // namespace vls
