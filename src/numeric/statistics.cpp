#include "numeric/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

void OnlineStats::saveState(std::vector<double>& out) const {
  out.push_back(static_cast<double>(count_));
  out.push_back(mean_);
  out.push_back(m2_);
  out.push_back(min_);
  out.push_back(max_);
}

void OnlineStats::restoreState(const std::vector<double>& state, size_t& pos) {
  if (pos + 5 > state.size()) throw InvalidInputError("OnlineStats: truncated state");
  count_ = static_cast<size_t>(state[pos++]);
  mean_ = state[pos++];
  m2_ = state[pos++];
  min_ = state[pos++];
  max_ = state[pos++];
}

P2Quantile::P2Quantile(double q) : q_(std::clamp(q, 0.0, 1.0)) {
  increment_[0] = 0.0;
  increment_[1] = q_ / 2.0;
  increment_[2] = q_;
  increment_[3] = (1.0 + q_) / 2.0;
  increment_[4] = 1.0;
}

void P2Quantile::add(double x) {
  if (count_ < 5) {
    heights_[count_++] = x;
    if (count_ == 5) {
      std::sort(heights_, heights_ + 5);
      for (int i = 0; i < 5; ++i) {
        positions_[i] = i + 1;
        desired_[i] = 1.0 + 4.0 * increment_[i];
      }
    }
    return;
  }

  // Locate the cell containing x, updating the extreme markers.
  int k;
  if (x < heights_[0]) {
    heights_[0] = x;
    k = 0;
  } else if (x >= heights_[4]) {
    heights_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= heights_[k + 1]) ++k;
  }

  for (int i = k + 1; i < 5; ++i) positions_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += increment_[i];
  ++count_;

  // Nudge the three interior markers toward their desired positions:
  // piecewise-parabolic (P²) prediction, linear fallback when the
  // parabola would leave the bracketing heights non-monotone.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - positions_[i];
    const double below = positions_[i] - positions_[i - 1];
    const double above = positions_[i + 1] - positions_[i];
    if ((d >= 1.0 && above > 1.0) || (d <= -1.0 && below > 1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double parabolic =
          heights_[i] +
          s / (positions_[i + 1] - positions_[i - 1]) *
              ((below + s) * (heights_[i + 1] - heights_[i]) / above +
               (above - s) * (heights_[i] - heights_[i - 1]) / below);
      if (heights_[i - 1] < parabolic && parabolic < heights_[i + 1]) {
        heights_[i] = parabolic;
      } else {
        const int j = i + static_cast<int>(s);
        heights_[i] += s * (heights_[j] - heights_[i]) / (positions_[j] - positions_[i]);
      }
      positions_[i] += s;
    }
  }
}

void P2Quantile::saveState(std::vector<double>& out) const {
  out.push_back(q_);
  out.push_back(static_cast<double>(count_));
  for (double h : heights_) out.push_back(h);
  for (double p : positions_) out.push_back(p);
  for (double d : desired_) out.push_back(d);
  // increment_ is derived from q_ in the constructor; not stored.
}

void P2Quantile::restoreState(const std::vector<double>& state, size_t& pos) {
  if (pos + 17 > state.size()) throw InvalidInputError("P2Quantile: truncated state");
  if (state[pos] != q_) throw InvalidInputError("P2Quantile: state quantile mismatch");
  ++pos;
  count_ = static_cast<size_t>(state[pos++]);
  for (double& h : heights_) h = state[pos++];
  for (double& p : positions_) p = state[pos++];
  for (double& d : desired_) d = state[pos++];
}

double P2Quantile::value() const {
  if (count_ == 0) return 0.0;
  if (count_ < 5) {
    double sorted[5];
    std::copy(heights_, heights_ + count_, sorted);
    std::sort(sorted, sorted + count_);
    const std::vector<double> v(sorted, sorted + count_);
    return percentileSorted(v, q_);
  }
  return heights_[2];
}

std::vector<double> StreamingSummary::saveState() const {
  std::vector<double> out;
  moments_.saveState(out);
  p05_.saveState(out);
  median_.saveState(out);
  p95_.saveState(out);
  return out;
}

void StreamingSummary::restoreState(const std::vector<double>& state) {
  size_t pos = 0;
  moments_.restoreState(state, pos);
  p05_.restoreState(state, pos);
  median_.restoreState(state, pos);
  p95_.restoreState(state, pos);
  if (pos != state.size()) throw InvalidInputError("StreamingSummary: trailing state");
}

Summary StreamingSummary::summary() const {
  Summary s;
  if (moments_.count() == 0) return s;
  s.count = moments_.count();
  s.mean = moments_.mean();
  s.stddev = moments_.stddev();
  s.min = moments_.min();
  s.max = moments_.max();
  s.median = median_.value();
  s.p05 = p05_.value();
  s.p95 = p95_.value();
  return s;
}

double percentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw InvalidInputError("percentileSorted: empty sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  OnlineStats online;
  for (double x : samples) online.add(x);
  std::sort(samples.begin(), samples.end());
  s.count = online.count();
  s.mean = online.mean();
  s.stddev = online.stddev();
  s.min = online.min();
  s.max = online.max();
  s.median = percentileSorted(samples, 0.5);
  s.p05 = percentileSorted(samples, 0.05);
  s.p95 = percentileSorted(samples, 0.95);
  return s;
}

}  // namespace vls
