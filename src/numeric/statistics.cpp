#include "numeric/statistics.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {

void OnlineStats::add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

double percentileSorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) throw InvalidInputError("percentileSorted: empty sample");
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(pos);
  const double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= sorted.size()) return sorted.back();
  return sorted[lo] * (1.0 - frac) + sorted[lo + 1] * frac;
}

Summary summarize(std::vector<double> samples) {
  Summary s;
  if (samples.empty()) return s;
  OnlineStats online;
  for (double x : samples) online.add(x);
  std::sort(samples.begin(), samples.end());
  s.count = online.count();
  s.mean = online.mean();
  s.stddev = online.stddev();
  s.min = online.min();
  s.max = online.max();
  s.median = percentileSorted(samples, 0.5);
  s.p05 = percentileSorted(samples, 0.05);
  s.p95 = percentileSorted(samples, 0.95);
  return s;
}

}  // namespace vls
