#include "sim/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>

#include "base/error.hpp"
#include "numeric/lanes.hpp"
#include "sim/fault_injection.hpp"
#include "sim/recovery.hpp"

namespace vls {

namespace {

size_t checkedLanes(size_t lanes) {
  if (lanes == 0 || lanes > kMaxLanes) {
    throw InvalidInputError("EnsembleSimulator: lanes must be in [1, " +
                            std::to_string(kMaxLanes) + "], got " + std::to_string(lanes));
  }
  return lanes;
}

}  // namespace

EnsembleSimulator::EnsembleSimulator(Circuit& circuit, size_t lanes, SimOptions options)
    : circuit_(circuit),
      options_(options),
      num_nodes_(circuit.nodeCount()),
      num_unknowns_(circuit.nodeCount() + circuit.assignBranchIndices()),
      lanes_(checkedLanes(lanes)),
      sys_(num_nodes_, num_unknowns_ - num_nodes_, lanes_),
      assembler_(circuit, sys_) {
  const auto& devices = circuit_.devices();
  states_.resize(devices.size());
  state_ptrs_.resize(devices.size(), nullptr);
  for (size_t i = 0; i < devices.size(); ++i) {
    Device* dev = devices[i].get();
    if (dev->supportsLanes()) {
      states_[i] = dev->createLaneState(lanes_);
      state_ptrs_[i] = states_[i].get();
    } else if (!dev->laneFallbackSafe()) {
      throw InvalidInputError("EnsembleSimulator: device " + dev->name() +
                              " carries integration state but has no lane support; "
                              "run this circuit through the scalar Simulator");
    }
    device_index_[dev] = i;
  }
  zeros_.assign(lanes_, 0.0);
  failed_.assign(lanes_, 0);
  lane_failures_.resize(lanes_);
  x_new_.resize(num_unknowns_ * lanes_);
  pending_.assign(lanes_, 0);
  lane_ok_.assign(lanes_, 1);
  attempt_failure_.resize(lanes_);
}

std::vector<double> EnsembleSimulator::coldStartSoA() const {
  std::vector<double> x(num_unknowns_ * lanes_, 0.0);
  if (options_.nodeset) {
    const std::vector<double>& ns = *options_.nodeset;
    const size_t n = std::min(ns.size(), num_unknowns_);
    for (size_t i = 0; i < n; ++i) {
      for (size_t l = 0; l < lanes_; ++l) x[i * lanes_ + l] = ns[i];
    }
  }
  return x;
}

std::string EnsembleSimulator::unknownName(size_t index) const {
  if (index < num_nodes_) return circuit_.nodeName(static_cast<NodeId>(index));
  return "branch#" + std::to_string(index - num_nodes_);
}

void EnsembleSimulator::recordLaneFailure(size_t l, RecoveryStage stage) {
  LaneFailure& failure = lane_failures_[l];
  failure = attempt_failure_[l];
  failure.valid = true;
  failure.stage = stage;
  if (failure.reason == NewtonFailureReason::None) {
    failure.reason = NewtonFailureReason::IterationLimit;
  }
}

DeviceLaneState* EnsembleSimulator::laneState(const Device& dev) {
  auto it = device_index_.find(&dev);
  if (it == device_index_.end()) {
    throw InvalidInputError("EnsembleSimulator: device " + dev.name() +
                            " is not part of this circuit");
  }
  return state_ptrs_[it->second];
}

size_t EnsembleSimulator::aliveLaneCount() const {
  size_t n = 0;
  for (uint8_t f : failed_) n += f == 0 ? 1 : 0;
  return n;
}

LaneContext EnsembleSimulator::contextFor(const std::vector<double>& x, double time, double dt,
                                          IntegrationMethod method, double gmin) const {
  LaneContext ctx;
  ctx.x = std::span<const double>(x);
  ctx.zero = zeros_.data();
  ctx.lanes = lanes_;
  ctx.time = time;
  ctx.dt = dt;
  ctx.method = method;
  ctx.temperature = options_.temperatureK();
  ctx.gmin = gmin;
  return ctx;
}

bool EnsembleSimulator::newtonLanes(double time, double dt, IntegrationMethod method,
                                    double source_scale, double gmin, std::vector<double>& x,
                                    const uint8_t* live, uint8_t* converged,
                                    size_t* iterations) {
  const size_t K = lanes_;
  LaneContext ctx;
  ctx.zero = zeros_.data();
  ctx.lanes = K;
  ctx.time = time;
  ctx.dt = dt;
  ctx.method = method;
  ctx.temperature = options_.temperatureK();
  ctx.source_scale = source_scale;
  ctx.gmin = gmin;

  FaultInjector* injector = options_.fault_injector.get();

  AssemblyOptions assembly_opts;
  assembly_opts.enable_bypass = options_.enable_bypass;
  assembly_opts.bypass_tol = options_.bypass_tol;
  // Iteration 0 of every solve must fully re-linearize (fresh dt,
  // committed charge histories, post-breakpoint state), so the settle
  // count is clamped to at least one — after that the stored op values
  // replayed for quiet devices were computed in this same solve.
  const int bypass_settle = std::max(1, options_.bypass_settle_iterations);

  bool any_selected = false;
  for (size_t l = 0; l < K; ++l) {
    pending_[l] = live ? live[l] : static_cast<uint8_t>(failed_[l] == 0);
    converged[l] = 0;
    if (pending_[l]) attempt_failure_[l] = LaneFailure{};
    any_selected = any_selected || pending_[l] != 0;
  }
  if (!any_selected) return true;

  for (int iter = 0; iter < options_.max_newton_iter; ++iter) {
    // Cancellation point: interrupts stop the lockstep run within one
    // Newton iteration, same contract as the scalar engine.
    if (options_.job_control != nullptr) {
      options_.job_control->throwIfInterrupted("ensemble-newton", time);
    }
    bool any_pending = false;
    for (size_t l = 0; l < K; ++l) any_pending = any_pending || pending_[l] != 0;
    if (!any_pending) break;
    if (iterations) ++*iterations;

    if (injector != nullptr && injector->shouldFailNewton(iter, time)) {
      for (size_t l = 0; l < K; ++l) {
        if (!pending_[l] || !injector->laneAffected(l)) continue;
        pending_[l] = 0;
        attempt_failure_[l].reason = NewtonFailureReason::InjectedFault;
        attempt_failure_[l].message = injector->describeNewtonFault();
      }
      continue;
    }

    ctx.x = std::span<const double>(x);
    assembly_opts.allow_bypass_now = iter >= bypass_settle;
    assembler_.assemble(ctx, state_ptrs_, assembly_opts);

    // Post-assembly fault injection (applying faults inside device
    // stamps would desync the shared lane tape).
    std::string stamp_fault;
    if (injector != nullptr) {
      std::string what;
      if (injector->applyLaneStampFault(sys_, circuit_, time, &what)) stamp_fault = what;
      if (injector->applyLanePivotFault(sys_, circuit_, time, &what)) stamp_fault = what;
    }

    // Residual guard: a non-finite RHS row names the offending node
    // before the solve smears it across the lane.
    for (size_t l = 0; l < K; ++l) {
      if (!pending_[l]) continue;
      for (size_t i = 0; i < num_unknowns_; ++i) {
        if (std::isfinite(sys_.rhs()[i * K + l])) continue;
        pending_[l] = 0;
        attempt_failure_[l].reason = NewtonFailureReason::NonFinite;
        attempt_failure_[l].node = unknownName(i);
        attempt_failure_[l].message = stamp_fault;
        break;
      }
    }

    try {
      // Shared symbolic structure, per-lane numeric refactorization. A
      // lane whose pivot degrades under the shared order is deadened
      // (lane_ok_ = 0) without disturbing its siblings.
      lu_.refactor(sys_.matrix(), pending_.data(), lane_ok_.data());
    } catch (const NumericalError& e) {
      // Every selected lane is singular (the re-analyze found no viable
      // pivot source). The numeric pass that preceded it still recorded
      // each lane's first collapsed column, so attribution survives.
      for (size_t l = 0; l < K; ++l) {
        if (!pending_[l]) continue;
        pending_[l] = 0;
        attempt_failure_[l].reason = NewtonFailureReason::SingularPivot;
        const int col = lu_.laneSingularColumn(l);
        if (col >= 0) attempt_failure_[l].node = unknownName(static_cast<size_t>(col));
        if (attempt_failure_[l].message.empty()) attempt_failure_[l].message = e.what();
        if (!stamp_fault.empty()) attempt_failure_[l].message = stamp_fault;
      }
      break;
    }
    for (size_t l = 0; l < K; ++l) {
      if (pending_[l] && !lane_ok_[l]) {
        pending_[l] = 0;
        attempt_failure_[l].reason = NewtonFailureReason::SingularPivot;
        const int col = lu_.laneSingularColumn(l);
        if (col >= 0) attempt_failure_[l].node = unknownName(static_cast<size_t>(col));
        if (!stamp_fault.empty()) attempt_failure_[l].message = stamp_fault;
      }
    }
    x_new_ = sys_.rhs();
    lu_.solveInPlace(x_new_, pending_.data());

    // Per-lane damping, bounding and tolerance checks — the scalar
    // Newton formulas applied lane by lane. Converged lanes freeze:
    // their unknowns stop moving while siblings keep iterating.
    for (size_t l = 0; l < K; ++l) {
      if (!pending_[l]) continue;
      // Solution guard: abort the lane on the first NaN/Inf unknown,
      // naming it, instead of letting NaN comparisons fake convergence.
      int bad = -1;
      double max_delta = 0.0;
      int worst = -1;
      for (size_t i = 0; i < num_unknowns_; ++i) {
        const double v = x_new_[i * K + l];
        if (!std::isfinite(v)) {
          bad = static_cast<int>(i);
          break;
        }
        const double delta = std::fabs(v - x[i * K + l]);
        if (delta > max_delta) {
          max_delta = delta;
          worst = static_cast<int>(i);
        }
      }
      if (bad >= 0) {
        pending_[l] = 0;
        attempt_failure_[l].reason = NewtonFailureReason::NonFinite;
        attempt_failure_[l].node = unknownName(static_cast<size_t>(bad));
        if (!stamp_fault.empty()) attempt_failure_[l].message = stamp_fault;
        continue;
      }
      if (worst >= 0) attempt_failure_[l].node = unknownName(static_cast<size_t>(worst));
      double scale = 1.0;
      if (max_delta > options_.max_step_voltage) scale = options_.max_step_voltage / max_delta;

      bool conv = scale == 1.0;
      for (size_t i = 0; i < num_unknowns_; ++i) {
        const size_t k = i * K + l;
        const double next = x[k] + scale * (x_new_[k] - x[k]);
        const double bounded = std::clamp(next, -options_.voltage_bound, options_.voltage_bound);
        const double tol = (i < num_nodes_ ? options_.vntol : options_.abstol) +
                           options_.reltol * std::max(std::fabs(bounded), std::fabs(x[k]));
        if (std::fabs(bounded - x[k]) > tol) conv = false;
        x[k] = bounded;
      }
      if (conv && iter > 0) {
        converged[l] = 1;
        pending_[l] = 0;
      }
    }
  }

  for (size_t l = 0; l < K; ++l) {
    const bool selected = live ? live[l] != 0 : failed_[l] == 0;
    if (selected && !converged[l]) return false;
  }
  return true;
}

std::vector<double> EnsembleSimulator::solveOp() {
  const size_t K = lanes_;
  FaultInjector* injector = options_.fault_injector.get();
  const std::vector<double> cold = coldStartSoA();
  std::vector<double> x = cold;
  std::vector<uint8_t> conv(K, 0);

  // 1) Direct Newton on every live lane.
  if (injector != nullptr) injector->setStage(RecoveryStage::DirectNewton);
  newtonLanes(0.0, 0.0, IntegrationMethod::None, 1.0, options_.gmin, x, nullptr, conv.data(),
              nullptr);

  // 2) Gmin ladder, in lockstep, for the holdouts — the same schedule
  // the scalar RecoveryEngine runs. Lanes failing a rung fall through
  // to source stepping.
  std::vector<uint8_t> retry(K, 0);
  bool any_retry = false;
  for (size_t l = 0; l < K; ++l) {
    if (failed_[l] == 0 && !conv[l]) {
      retry[l] = 1;
      any_retry = true;
    }
  }
  std::vector<uint8_t> holdout(K, 0);
  bool any_holdout = false;
  if (any_retry) {
    if (injector != nullptr) injector->setStage(RecoveryStage::GminStepping);
    for (size_t i = 0; i < num_unknowns_; ++i) {
      for (size_t l = 0; l < K; ++l) {
        if (retry[l]) x[i * K + l] = cold[i * K + l];
      }
    }
    for (const double gmin : RecoveryEngine::gminSchedule(options_.recovery, options_.gmin)) {
      newtonLanes(0.0, 0.0, IntegrationMethod::None, 1.0, gmin, x, retry.data(), conv.data(),
                  nullptr);
      bool any_left = false;
      for (size_t l = 0; l < K; ++l) {
        if (retry[l] && !conv[l]) {
          retry[l] = 0;
          holdout[l] = 1;
          any_holdout = true;
        }
        any_left = any_left || retry[l] != 0;
      }
      if (!any_left) break;
    }
  }

  // 3) Source stepping, in lockstep, for lanes the gmin ladder lost.
  // Lanes failing a rung drop out permanently with their failure
  // record (the Monte-Carlo driver re-runs them through the scalar
  // reference path, which additionally owns pseudo-transient).
  if (any_holdout && options_.recovery.source_stepping) {
    if (injector != nullptr) injector->setStage(RecoveryStage::SourceStepping);
    for (size_t i = 0; i < num_unknowns_; ++i) {
      for (size_t l = 0; l < K; ++l) {
        if (holdout[l]) x[i * K + l] = cold[i * K + l];
      }
    }
    for (const double scale : RecoveryEngine::sourceSchedule(options_.recovery)) {
      newtonLanes(0.0, 0.0, IntegrationMethod::None, scale, options_.gmin, x, holdout.data(),
                  conv.data(), nullptr);
      bool any_left = false;
      for (size_t l = 0; l < K; ++l) {
        if (holdout[l] && !conv[l]) {
          holdout[l] = 0;
          failed_[l] = 1;
          recordLaneFailure(l, RecoveryStage::SourceStepping);
        }
        any_left = any_left || holdout[l] != 0;
      }
      if (!any_left) break;
    }
  } else if (any_holdout) {
    for (size_t l = 0; l < K; ++l) {
      if (holdout[l]) {
        failed_[l] = 1;
        recordLaneFailure(l, RecoveryStage::GminStepping);
      }
    }
  }
  if (injector != nullptr) injector->setStage(RecoveryStage::DirectNewton);

  if (aliveLaneCount() == 0) {
    throw ConvergenceError("EnsembleSimulator: operating point failed on every lane");
  }
  return x;
}

std::vector<double> EnsembleSimulator::solveOpAt(double time, std::vector<double> x0_soa) {
  const size_t K = lanes_;
  FaultInjector* injector = options_.fault_injector.get();
  x0_soa.resize(num_unknowns_ * K, 0.0);
  const std::vector<double> x0 = x0_soa;  // pristine guess for ladder restarts
  std::vector<uint8_t> conv(K, 0);
  if (injector != nullptr) injector->setStage(RecoveryStage::DirectNewton);
  newtonLanes(time, 0.0, IntegrationMethod::None, 1.0, options_.gmin, x0_soa, nullptr,
              conv.data(), nullptr);

  // Gmin-ladder retry for the holdouts, from the pristine guess — the
  // same escalation solveOpAt gets on the scalar path.
  std::vector<uint8_t> retry(K, 0);
  bool any_retry = false;
  for (size_t l = 0; l < K; ++l) {
    if (failed_[l] == 0 && !conv[l]) {
      retry[l] = 1;
      any_retry = true;
    }
  }
  if (any_retry && options_.recovery.gmin_stepping) {
    if (injector != nullptr) injector->setStage(RecoveryStage::GminStepping);
    for (size_t i = 0; i < num_unknowns_ * K; ++i) {
      const size_t l = i % K;
      if (retry[l]) x0_soa[i] = x0[i];
    }
    for (const double gmin : RecoveryEngine::gminSchedule(options_.recovery, options_.gmin)) {
      newtonLanes(time, 0.0, IntegrationMethod::None, 1.0, gmin, x0_soa, retry.data(),
                  conv.data(), nullptr);
      bool any_left = false;
      for (size_t l = 0; l < K; ++l) {
        if (retry[l] && !conv[l]) {
          retry[l] = 0;
          failed_[l] = 1;
          recordLaneFailure(l, RecoveryStage::GminStepping);
        }
        any_left = any_left || retry[l] != 0;
      }
      if (!any_left) break;
    }
    if (injector != nullptr) injector->setStage(RecoveryStage::DirectNewton);
  } else {
    for (size_t l = 0; l < K; ++l) {
      if (retry[l]) {
        failed_[l] = 1;
        recordLaneFailure(l, RecoveryStage::DirectNewton);
      }
    }
  }
  if (aliveLaneCount() == 0) {
    throw ConvergenceError("EnsembleSimulator: solveOpAt failed on every lane at t = " +
                           std::to_string(time));
  }
  return x0_soa;
}

void EnsembleSimulator::transient(double t_stop, double dt_max, double dt_initial) {
  if (t_stop <= 0.0 || dt_max <= 0.0) throw InvalidInputError("transient: bad time arguments");
  const size_t K = lanes_;

  time_.clear();
  data_.clear();
  total_newton_iterations_ = 0;
  rejected_steps_ = 0;
  std::fill(failed_.begin(), failed_.end(), 0);
  std::fill(lane_failures_.begin(), lane_failures_.end(), LaneFailure{});

  // Operating point at t = 0 (per-lane failures already handled there).
  std::vector<double> x = solveOp();
  {
    const LaneContext ctx = contextFor(x, 0.0, 0.0, IntegrationMethod::None, options_.gmin);
    const auto& devices = circuit_.devices();
    for (size_t i = 0; i < devices.size(); ++i) {
      if (devices[i]->supportsLanes()) devices[i]->startTransientLanes(ctx, state_ptrs_[i]);
    }
  }
  time_.push_back(0.0);
  data_.push_back(x);

  // Breakpoints: the union over lanes — devices carrying per-lane
  // waveforms (parameter lanes) contribute every lane's corner times,
  // so the lockstep time axis never steps over any lane's input edge.
  std::vector<double> breaks;
  {
    const auto& devices = circuit_.devices();
    for (size_t i = 0; i < devices.size(); ++i) {
      devices[i]->collectLaneBreakpoints(t_stop, state_ptrs_[i], breaks);
    }
  }
  breaks.push_back(t_stop);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::fabs(a - b) < 1e-18; }),
               breaks.end());

  double t = 0.0;
  double dt = dt_initial > 0.0 ? dt_initial : dt_max / 100.0;
  dt = std::min(dt, dt_max);
  std::vector<double> x_prev = x;
  double dt_prev = 0.0;
  double dt_lte_accepted = -1.0;
  int steps_since_break = 0;
  size_t next_break = 0;
  while (next_break < breaks.size() && breaks[next_break] <= 1e-18) ++next_break;

  std::vector<double> x_try(num_unknowns_ * K);
  std::vector<uint8_t> conv(K, 0);
  while (t < t_stop - 1e-18) {
    if (options_.job_control != nullptr) {
      options_.job_control->throwIfInterrupted("ensemble-transient", t);
    }
    bool hits_break = false;
    double dt_eff = std::min(dt, dt_max);
    if (next_break < breaks.size()) {
      const double gap = breaks[next_break] - t;
      if (dt_eff >= gap - 1e-18) {
        dt_eff = gap;
        hits_break = true;
      } else if (dt_eff > 0.5 * gap) {
        dt_eff = 0.5 * gap;  // avoid a tiny sliver step before the breakpoint
      }
    }

    const IntegrationMethod method =
        (options_.method == IntegrationMethod::BackwardEuler ||
         steps_since_break < options_.be_steps_after_breakpoint)
            ? IntegrationMethod::BackwardEuler
            : IntegrationMethod::Trapezoidal;

    // Predictor warm start: seed Newton with the forward-Euler
    // extrapolation instead of the previous solution. The converged
    // answer is unchanged (Newton solves the same system to the same
    // tolerances); active-region steps just start one update closer,
    // which trims the per-step iteration count the K-wide device
    // evaluations are multiplied by. Skipped right after breakpoints,
    // where the history slope spans a discontinuity.
    x_try = x;
    if (dt_prev > 0.0 && steps_since_break >= 1) {
      const double r = dt_eff / dt_prev;
      for (size_t k = 0; k < x_try.size(); ++k) x_try[k] += (x[k] - x_prev[k]) * r;
    }
    size_t iters = 0;
    if (FaultInjector* injector = options_.fault_injector.get()) {
      injector->setStage(RecoveryStage::TransientStep);
    }
    const bool all_converged = newtonLanes(t + dt_eff, dt_eff, method, 1.0, options_.gmin,
                                           x_try, nullptr, conv.data(), &iters);
    total_newton_iterations_ += iters;

    if (!all_converged) {
      // Lockstep reject: every lane retries the smaller step, so the
      // shared time axis stays shared.
      ++rejected_steps_;
      dt = dt_eff * options_.dt_shrink;
      if (dt < options_.dt_min) {
        // Lanes that cannot advance even at dt_min drop out (with their
        // last attempt's failure record); survivors resume from a
        // cautious restart scale.
        for (size_t l = 0; l < K; ++l) {
          if (failed_[l] == 0 && !conv[l]) {
            failed_[l] = 1;
            recordLaneFailure(l, RecoveryStage::TransientStep);
          }
        }
        if (aliveLaneCount() == 0) {
          throw ConvergenceError("EnsembleSimulator: timestep underflow at t = " +
                                 std::to_string(t) + " on every lane");
        }
        dt = dt_max / 100.0;
      }
      continue;
    }

    // Predictor-based LTE, maxed over live lanes: the ensemble advances
    // with the dt every live lane accepts.
    double err = 0.0;
    if (dt_prev > 0.0 && steps_since_break >= 1) {
      for (size_t i = 0; i < num_unknowns_; ++i) {
        for (size_t l = 0; l < K; ++l) {
          if (failed_[l]) continue;
          const size_t k = i * K + l;
          const double slope = (x[k] - x_prev[k]) / dt_prev;
          const double pred = x[k] + slope * dt_eff;
          const double tol = options_.tran_vntol +
                             options_.tran_reltol * std::max(std::fabs(x_try[k]), std::fabs(x[k]));
          err = std::max(err, std::fabs(x_try[k] - pred) / tol);
        }
      }
    }

    if (err > 8.0 && dt_eff > 16.0 * options_.dt_min) {
      ++rejected_steps_;
      dt = dt_eff * options_.dt_shrink;
      continue;
    }

    // Accept on every lane.
    const double t_new = t + dt_eff;
    {
      const LaneContext ctx = contextFor(x_try, t_new, dt_eff, method, options_.gmin);
      const auto& devices = circuit_.devices();
      for (size_t i = 0; i < devices.size(); ++i) {
        if (devices[i]->supportsLanes()) devices[i]->acceptStepLanes(ctx, state_ptrs_[i]);
      }
    }
    x_prev = x;
    dt_prev = dt_eff;
    x = x_try;
    t = t_new;
    time_.push_back(t);
    data_.push_back(x);

    if (hits_break) {
      ++next_break;
      steps_since_break = 0;
      // Same restart rule as the scalar engine: cautious dt_max / 100
      // unless the LTE controller proved a larger scale safe pre-edge.
      double dt_restart = std::min(dt_eff, dt_max / 100.0);
      if (dt_lte_accepted > dt_restart) dt_restart = std::min(dt_lte_accepted, dt_max);
      dt = dt_restart;
      dt_lte_accepted = -1.0;
    } else {
      ++steps_since_break;
      const double grow = err > 1e-9 ? std::min(options_.dt_grow_max, 0.9 / std::sqrt(err))
                                     : options_.dt_grow_max;
      dt_lte_accepted = grow < options_.dt_grow_max ? dt_eff : -1.0;
      dt = dt_eff * std::max(0.5, grow);
    }
  }
}

std::vector<double> EnsembleSimulator::laneSolution(size_t step, size_t l) const {
  const std::vector<double>& soa = data_[step];
  std::vector<double> x(num_unknowns_);
  for (size_t i = 0; i < num_unknowns_; ++i) x[i] = soa[i * lanes_ + l];
  return x;
}

TransientResult EnsembleSimulator::laneResult(size_t l) const {
  TransientResult result(circuit_.nodeNames(), num_unknowns_);
  for (size_t step = 0; step < time_.size(); ++step) {
    result.append(time_[step], laneSolution(step, l));
  }
  result.total_newton_iterations = total_newton_iterations_;
  result.rejected_steps = rejected_steps_;
  return result;
}

}  // namespace vls
