#include "sim/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <string>

#include "base/error.hpp"
#include "numeric/lanes.hpp"

namespace vls {

namespace {

size_t checkedLanes(size_t lanes) {
  if (lanes == 0 || lanes > kMaxLanes) {
    throw InvalidInputError("EnsembleSimulator: lanes must be in [1, " +
                            std::to_string(kMaxLanes) + "], got " + std::to_string(lanes));
  }
  return lanes;
}

}  // namespace

EnsembleSimulator::EnsembleSimulator(Circuit& circuit, size_t lanes, SimOptions options)
    : circuit_(circuit),
      options_(options),
      num_nodes_(circuit.nodeCount()),
      num_unknowns_(circuit.nodeCount() + circuit.assignBranchIndices()),
      lanes_(checkedLanes(lanes)),
      sys_(num_nodes_, num_unknowns_ - num_nodes_, lanes_),
      assembler_(circuit, sys_) {
  const auto& devices = circuit_.devices();
  states_.resize(devices.size());
  state_ptrs_.resize(devices.size(), nullptr);
  for (size_t i = 0; i < devices.size(); ++i) {
    Device* dev = devices[i].get();
    if (dev->supportsLanes()) {
      states_[i] = dev->createLaneState(lanes_);
      state_ptrs_[i] = states_[i].get();
    } else if (!dev->laneFallbackSafe()) {
      throw InvalidInputError("EnsembleSimulator: device " + dev->name() +
                              " carries integration state but has no lane support; "
                              "run this circuit through the scalar Simulator");
    }
    device_index_[dev] = i;
  }
  zeros_.assign(lanes_, 0.0);
  failed_.assign(lanes_, 0);
  x_new_.resize(num_unknowns_ * lanes_);
  pending_.assign(lanes_, 0);
  lane_ok_.assign(lanes_, 1);
}

DeviceLaneState* EnsembleSimulator::laneState(const Device& dev) {
  auto it = device_index_.find(&dev);
  if (it == device_index_.end()) {
    throw InvalidInputError("EnsembleSimulator: device " + dev.name() +
                            " is not part of this circuit");
  }
  return state_ptrs_[it->second];
}

size_t EnsembleSimulator::aliveLaneCount() const {
  size_t n = 0;
  for (uint8_t f : failed_) n += f == 0 ? 1 : 0;
  return n;
}

LaneContext EnsembleSimulator::contextFor(const std::vector<double>& x, double time, double dt,
                                          IntegrationMethod method, double gmin) const {
  LaneContext ctx;
  ctx.x = std::span<const double>(x);
  ctx.zero = zeros_.data();
  ctx.lanes = lanes_;
  ctx.time = time;
  ctx.dt = dt;
  ctx.method = method;
  ctx.temperature = options_.temperatureK();
  ctx.gmin = gmin;
  return ctx;
}

bool EnsembleSimulator::newtonLanes(double time, double dt, IntegrationMethod method,
                                    double source_scale, double gmin, std::vector<double>& x,
                                    const uint8_t* live, uint8_t* converged,
                                    size_t* iterations) {
  const size_t K = lanes_;
  LaneContext ctx;
  ctx.zero = zeros_.data();
  ctx.lanes = K;
  ctx.time = time;
  ctx.dt = dt;
  ctx.method = method;
  ctx.temperature = options_.temperatureK();
  ctx.source_scale = source_scale;
  ctx.gmin = gmin;

  bool any_selected = false;
  for (size_t l = 0; l < K; ++l) {
    pending_[l] = live ? live[l] : static_cast<uint8_t>(failed_[l] == 0);
    converged[l] = 0;
    any_selected = any_selected || pending_[l] != 0;
  }
  if (!any_selected) return true;

  for (int iter = 0; iter < options_.max_newton_iter; ++iter) {
    bool any_pending = false;
    for (size_t l = 0; l < K; ++l) any_pending = any_pending || pending_[l] != 0;
    if (!any_pending) break;
    if (iterations) ++*iterations;

    ctx.x = std::span<const double>(x);
    assembler_.assemble(ctx, state_ptrs_);

    try {
      // Shared symbolic structure, per-lane numeric refactorization. A
      // lane whose pivot degrades under the shared order is deadened
      // (lane_ok_ = 0) without disturbing its siblings.
      lu_.refactor(sys_.matrix(), pending_.data(), lane_ok_.data());
    } catch (const NumericalError&) {
      for (size_t l = 0; l < K; ++l) pending_[l] = 0;
      break;
    }
    for (size_t l = 0; l < K; ++l) {
      if (pending_[l] && !lane_ok_[l]) pending_[l] = 0;
    }
    x_new_ = sys_.rhs();
    lu_.solveInPlace(x_new_, pending_.data());

    // Per-lane damping, bounding and tolerance checks — the scalar
    // newtonSolve formulas applied lane by lane. Converged lanes freeze:
    // their unknowns stop moving while siblings keep iterating.
    for (size_t l = 0; l < K; ++l) {
      if (!pending_[l]) continue;
      double max_delta = 0.0;
      for (size_t i = 0; i < num_unknowns_; ++i) {
        max_delta = std::max(max_delta, std::fabs(x_new_[i * K + l] - x[i * K + l]));
      }
      if (!std::isfinite(max_delta)) {
        pending_[l] = 0;
        continue;
      }
      double scale = 1.0;
      if (max_delta > options_.max_step_voltage) scale = options_.max_step_voltage / max_delta;

      bool conv = scale == 1.0;
      for (size_t i = 0; i < num_unknowns_; ++i) {
        const size_t k = i * K + l;
        const double next = x[k] + scale * (x_new_[k] - x[k]);
        const double bounded = std::clamp(next, -options_.voltage_bound, options_.voltage_bound);
        const double tol = (i < num_nodes_ ? options_.vntol : options_.abstol) +
                           options_.reltol * std::max(std::fabs(bounded), std::fabs(x[k]));
        if (std::fabs(bounded - x[k]) > tol) conv = false;
        x[k] = bounded;
      }
      if (conv && iter > 0) {
        converged[l] = 1;
        pending_[l] = 0;
      }
    }
  }

  for (size_t l = 0; l < K; ++l) {
    const bool selected = live ? live[l] != 0 : failed_[l] == 0;
    if (selected && !converged[l]) return false;
  }
  return true;
}

std::vector<double> EnsembleSimulator::solveOp() {
  const size_t K = lanes_;
  std::vector<double> x(num_unknowns_ * K, 0.0);
  std::vector<uint8_t> conv(K, 0);

  // 1) Direct Newton on every live lane.
  newtonLanes(0.0, 0.0, IntegrationMethod::None, 1.0, options_.gmin, x, nullptr, conv.data(),
              nullptr);

  // 2) Gmin ladder, in lockstep, for the holdouts. Lanes failing a rung
  // drop out permanently (the scalar fallback path owns source
  // stepping; a lane this stubborn is re-run there anyway).
  std::vector<uint8_t> retry(K, 0);
  bool any_retry = false;
  for (size_t l = 0; l < K; ++l) {
    if (failed_[l] == 0 && !conv[l]) {
      retry[l] = 1;
      any_retry = true;
    }
  }
  if (any_retry) {
    for (size_t i = 0; i < num_unknowns_; ++i) {
      for (size_t l = 0; l < K; ++l) {
        if (retry[l]) x[i * K + l] = 0.0;
      }
    }
    double gmin = 1e-2;
    for (int step = 0; step <= options_.gmin_steps; ++step) {
      newtonLanes(0.0, 0.0, IntegrationMethod::None, 1.0, gmin, x, retry.data(), conv.data(),
                  nullptr);
      bool any_left = false;
      for (size_t l = 0; l < K; ++l) {
        if (retry[l] && !conv[l]) {
          retry[l] = 0;
          failed_[l] = 1;
        }
        any_left = any_left || retry[l] != 0;
      }
      if (!any_left || gmin <= options_.gmin) break;
      gmin = std::max(gmin * 0.1, options_.gmin);
    }
  }

  if (aliveLaneCount() == 0) {
    throw ConvergenceError("EnsembleSimulator: operating point failed on every lane");
  }
  return x;
}

std::vector<double> EnsembleSimulator::solveOpAt(double time, std::vector<double> x0_soa) {
  x0_soa.resize(num_unknowns_ * lanes_, 0.0);
  std::vector<uint8_t> conv(lanes_, 0);
  newtonLanes(time, 0.0, IntegrationMethod::None, 1.0, options_.gmin, x0_soa, nullptr,
              conv.data(), nullptr);
  for (size_t l = 0; l < lanes_; ++l) {
    if (failed_[l] == 0 && !conv[l]) failed_[l] = 1;
  }
  if (aliveLaneCount() == 0) {
    throw ConvergenceError("EnsembleSimulator: solveOpAt failed on every lane at t = " +
                           std::to_string(time));
  }
  return x0_soa;
}

void EnsembleSimulator::transient(double t_stop, double dt_max, double dt_initial) {
  if (t_stop <= 0.0 || dt_max <= 0.0) throw InvalidInputError("transient: bad time arguments");
  const size_t K = lanes_;

  time_.clear();
  data_.clear();
  total_newton_iterations_ = 0;
  rejected_steps_ = 0;
  std::fill(failed_.begin(), failed_.end(), 0);

  // Operating point at t = 0 (per-lane failures already handled there).
  std::vector<double> x = solveOp();
  {
    const LaneContext ctx = contextFor(x, 0.0, 0.0, IntegrationMethod::None, options_.gmin);
    const auto& devices = circuit_.devices();
    for (size_t i = 0; i < devices.size(); ++i) {
      if (devices[i]->supportsLanes()) devices[i]->startTransientLanes(ctx, state_ptrs_[i]);
    }
  }
  time_.push_back(0.0);
  data_.push_back(x);

  // Breakpoints: shared across lanes (waveforms are lane-invariant;
  // only device parameters vary per lane).
  std::vector<double> breaks;
  for (const auto& dev : circuit_.devices()) dev->collectBreakpoints(t_stop, breaks);
  breaks.push_back(t_stop);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::fabs(a - b) < 1e-18; }),
               breaks.end());

  double t = 0.0;
  double dt = dt_initial > 0.0 ? dt_initial : dt_max / 100.0;
  dt = std::min(dt, dt_max);
  std::vector<double> x_prev = x;
  double dt_prev = 0.0;
  double dt_lte_accepted = -1.0;
  int steps_since_break = 0;
  size_t next_break = 0;
  while (next_break < breaks.size() && breaks[next_break] <= 1e-18) ++next_break;

  std::vector<double> x_try(num_unknowns_ * K);
  std::vector<uint8_t> conv(K, 0);
  while (t < t_stop - 1e-18) {
    bool hits_break = false;
    double dt_eff = std::min(dt, dt_max);
    if (next_break < breaks.size()) {
      const double gap = breaks[next_break] - t;
      if (dt_eff >= gap - 1e-18) {
        dt_eff = gap;
        hits_break = true;
      } else if (dt_eff > 0.5 * gap) {
        dt_eff = 0.5 * gap;  // avoid a tiny sliver step before the breakpoint
      }
    }

    const IntegrationMethod method =
        (options_.method == IntegrationMethod::BackwardEuler ||
         steps_since_break < options_.be_steps_after_breakpoint)
            ? IntegrationMethod::BackwardEuler
            : IntegrationMethod::Trapezoidal;

    x_try = x;
    size_t iters = 0;
    const bool all_converged = newtonLanes(t + dt_eff, dt_eff, method, 1.0, options_.gmin,
                                           x_try, nullptr, conv.data(), &iters);
    total_newton_iterations_ += iters;

    if (!all_converged) {
      // Lockstep reject: every lane retries the smaller step, so the
      // shared time axis stays shared.
      ++rejected_steps_;
      dt = dt_eff * options_.dt_shrink;
      if (dt < options_.dt_min) {
        // Lanes that cannot advance even at dt_min drop out; survivors
        // resume from a cautious restart scale.
        for (size_t l = 0; l < K; ++l) {
          if (failed_[l] == 0 && !conv[l]) failed_[l] = 1;
        }
        if (aliveLaneCount() == 0) {
          throw ConvergenceError("EnsembleSimulator: timestep underflow at t = " +
                                 std::to_string(t) + " on every lane");
        }
        dt = dt_max / 100.0;
      }
      continue;
    }

    // Predictor-based LTE, maxed over live lanes: the ensemble advances
    // with the dt every live lane accepts.
    double err = 0.0;
    if (dt_prev > 0.0 && steps_since_break >= 1) {
      for (size_t i = 0; i < num_unknowns_; ++i) {
        for (size_t l = 0; l < K; ++l) {
          if (failed_[l]) continue;
          const size_t k = i * K + l;
          const double slope = (x[k] - x_prev[k]) / dt_prev;
          const double pred = x[k] + slope * dt_eff;
          const double tol = options_.tran_vntol +
                             options_.tran_reltol * std::max(std::fabs(x_try[k]), std::fabs(x[k]));
          err = std::max(err, std::fabs(x_try[k] - pred) / tol);
        }
      }
    }

    if (err > 8.0 && dt_eff > 16.0 * options_.dt_min) {
      ++rejected_steps_;
      dt = dt_eff * options_.dt_shrink;
      continue;
    }

    // Accept on every lane.
    const double t_new = t + dt_eff;
    {
      const LaneContext ctx = contextFor(x_try, t_new, dt_eff, method, options_.gmin);
      const auto& devices = circuit_.devices();
      for (size_t i = 0; i < devices.size(); ++i) {
        if (devices[i]->supportsLanes()) devices[i]->acceptStepLanes(ctx, state_ptrs_[i]);
      }
    }
    x_prev = x;
    dt_prev = dt_eff;
    x = x_try;
    t = t_new;
    time_.push_back(t);
    data_.push_back(x);

    if (hits_break) {
      ++next_break;
      steps_since_break = 0;
      // Same restart rule as the scalar engine: cautious dt_max / 100
      // unless the LTE controller proved a larger scale safe pre-edge.
      double dt_restart = std::min(dt_eff, dt_max / 100.0);
      if (dt_lte_accepted > dt_restart) dt_restart = std::min(dt_lte_accepted, dt_max);
      dt = dt_restart;
      dt_lte_accepted = -1.0;
    } else {
      ++steps_since_break;
      const double grow = err > 1e-9 ? std::min(options_.dt_grow_max, 0.9 / std::sqrt(err))
                                     : options_.dt_grow_max;
      dt_lte_accepted = grow < options_.dt_grow_max ? dt_eff : -1.0;
      dt = dt_eff * std::max(0.5, grow);
    }
  }
}

std::vector<double> EnsembleSimulator::laneSolution(size_t step, size_t l) const {
  const std::vector<double>& soa = data_[step];
  std::vector<double> x(num_unknowns_);
  for (size_t i = 0; i < num_unknowns_; ++i) x[i] = soa[i * lanes_ + l];
  return x;
}

TransientResult EnsembleSimulator::laneResult(size_t l) const {
  TransientResult result(circuit_.nodeNames(), num_unknowns_);
  for (size_t step = 0; step < time_.size(); ++step) {
    result.append(time_[step], laneSolution(step, l));
  }
  result.total_newton_iterations = total_newton_iterations_;
  result.rejected_steps = rejected_steps_;
  return result;
}

}  // namespace vls
