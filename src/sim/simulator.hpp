// The analysis engine: Newton-Raphson nonlinear solve with homotopy
// fallbacks (gmin stepping, source stepping), DC operating point, DC
// sweep, and adaptive-timestep transient (trapezoidal with backward-
// Euler damping after discontinuities, predictor-based LTE control).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "circuit/assembly.hpp"
#include "circuit/circuit.hpp"
#include "circuit/mna.hpp"
#include "numeric/lu_bbd.hpp"
#include "numeric/lu_sparse.hpp"
#include "sim/ac.hpp"
#include "sim/noise.hpp"
#include "sim/options.hpp"
#include "sim/recovery.hpp"
#include "sim/result.hpp"

namespace vls {

class VoltageSource;

/// Cumulative wall-time attribution of the Newton loop's phases across
/// every solve this simulator has run (transient + OP + recovery rungs).
/// model_eval_sec is the portion of assembly_sec spent linearizing
/// device models — only separable under parallel assembly, where the
/// evaluate region is timed apart from the apply/reduce; it reads 0
/// with the serial assembler.
struct SimPhaseTimes {
  double assembly_sec = 0.0;
  double model_eval_sec = 0.0;
  double factor_sec = 0.0;
  double solve_sec = 0.0;
};

class Simulator {
 public:
  /// The circuit must outlive the simulator. Branch indices are
  /// assigned on construction; adding devices afterwards is an error.
  Simulator(Circuit& circuit, SimOptions options = {});

  /// Solve the DC operating point (sources at their t=0 values).
  /// Returns the full unknown vector.
  std::vector<double> solveOp();

  /// Solve OP starting from the supplied initial guess (warm start).
  std::vector<double> solveOp(std::vector<double> initial_guess);

  /// Warm-started DC solve with sources evaluated at `time` (used to
  /// measure true steady-state leakage after a transient has brought
  /// the circuit near the state of interest). Runs the full recovery
  /// ladder; throws RecoveryError (a ConvergenceError carrying the
  /// stage record) if every rung fails.
  std::vector<double> solveOpAt(double time, std::vector<double> initial_guess);

  /// Sweep the DC value of a source, warm-starting each point.
  DcSweepResult dcSweep(VoltageSource& source, double from, double to, double step);

  /// Adaptive transient from a fresh operating point.
  /// dt_max caps the step; dt_initial <= 0 picks dt_max / 100.
  TransientResult transient(double t_stop, double dt_max, double dt_initial = -1.0);

  /// AC small-signal sweep (log-spaced). Linearizes at the operating
  /// point; sources with a nonzero AC magnitude excite the system.
  AcResult ac(double f_start, double f_stop, int points_per_decade = 10);

  /// Output-referred noise analysis over [f_start, f_stop]: every
  /// device's physical generators (thermal/flicker/shot) are propagated
  /// to `output_node` through the linearized network.
  NoiseResult noise(const std::string& output_node, double f_start, double f_stop,
                    int points_per_decade = 10);

  size_t numUnknowns() const { return num_unknowns_; }
  const SimOptions& options() const { return options_; }
  SimOptions& options() { return options_; }

  /// Flat sparse LU used when no partition is installed (fill/ordering
  /// diagnostics for tests and benches).
  const SparseLu& flatLu() const { return lu_; }
  /// Partitioned BBD solver; null when solving flat.
  const BbdLu* bbdSolver() const { return bbd_.get(); }
  /// Parallel sharded assembler; null unless options.parallel_assembly.
  const ShardedAssembler* shardedAssembler() const { return sharded_.get(); }
  /// How the constructor routed the linear solve ("bbd (auto: 200 >= 24
  /// blocks)", "flat (forced)", "flat (no partition)", ...).
  const std::string& partitionDecision() const { return partition_decision_; }
  /// Phase wall-time attribution (see SimPhaseTimes).
  SimPhaseTimes phaseTimes() const;

  /// Evaluation context for post-processing a solution vector at a
  /// given time (measurement helpers).
  EvalContext contextFor(const std::vector<double>& x, double time = 0.0) const;

  /// Printable name of unknown `index` (node name or branch label) for
  /// diagnostics.
  std::string unknownName(size_t index) const;

 private:
  /// One Newton solve at fixed (time, dt, method, scale, gmin), with
  /// non-finite guards, fault-injection hooks, and (in the ptran stage)
  /// the anchor stamp. x holds the solution (or last iterate).
  NewtonOutcome newtonAttempt(double time, double dt, IntegrationMethod method,
                              double source_scale, double gmin, std::vector<double>& x,
                              const PtranAnchor* anchor = nullptr);

  /// DC solve through the recovery escalation ladder. Throws
  /// RecoveryError on failure; fills *diag (also on success) when given.
  std::vector<double> solveOpInternal(std::vector<double> x, const std::string& context,
                                      double time = 0.0,
                                      ConvergenceDiagnostics* diag = nullptr);

  /// Expand options_.partition's per-device labels into the per-unknown
  /// labels BbdLu consumes (shared nodes demote to the border).
  std::vector<int32_t> deriveUnknownPartition() const;

  /// Starting vector for cold OP solves: options_.nodeset (zero-padded
  /// to the unknown count) when installed, zeros otherwise.
  std::vector<double> coldStart() const;

  Circuit& circuit_;
  SimOptions options_;
  size_t num_unknowns_;
  size_t num_nodes_;
  /// Reused across Newton solves so the sparsity pattern (and its hash
  /// index) is built once per simulator, not once per iteration.
  MnaSystem system_;
  /// Stamp-tape assembly engine: the first Newton iteration of a given
  /// analysis mode records every device's entry handles; every later
  /// iteration replays with zero hash lookups (and, with
  /// options_.enable_bypass, skips unchanged-device model evaluation).
  Assembler assembler_;
  /// Parallel sharded assembly engine, constructed when
  /// options_.parallel_assembly; replaces assembler_ in the Newton loop.
  std::unique_ptr<ShardedAssembler> sharded_;
  /// Persistent factorization: the symbolic phase (pivot order + fill
  /// pattern) runs once per sparsity pattern; every later Newton
  /// iteration and transient step only refreshes the numeric values.
  /// Unused when bbd_ is active.
  SparseLu lu_;
  /// Partitioned bordered-block-diagonal solver, constructed when
  /// options_.partition is set and options_.partition_use routes to it
  /// (Auto consults recommendPartitionedSolve); replaces lu_ in the
  /// Newton loop.
  std::unique_ptr<BbdLu> bbd_;
  /// Constructor's flat-vs-BBD routing rationale (partitionDecision()).
  std::string partition_decision_;
  /// Cumulative phase wall times (phaseTimes()).
  SimPhaseTimes phases_;
  /// Per-iteration Newton scratch, allocated once per simulator.
  std::vector<double> x_new_;
};

}  // namespace vls
