// Analysis result containers. A transient result stores the full
// solution vector at every accepted timepoint; signals are extracted by
// node name (voltages) or branch index (currents).
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/node.hpp"
#include "sim/diagnostics.hpp"

namespace vls {

/// A named time series extracted from a result.
struct Signal {
  std::vector<double> time;
  std::vector<double> value;
};

class TransientResult {
 public:
  TransientResult(std::vector<std::string> node_names, size_t num_unknowns);

  void append(double time, const std::vector<double>& x);

  size_t steps() const { return time_.size(); }
  const std::vector<double>& time() const { return time_; }

  /// Voltage waveform of a node by name; ground returns all-zeros.
  Signal node(const std::string& name) const;
  /// Any unknown (voltage or branch current) by solution index.
  Signal unknown(size_t index) const;
  /// Raw value of unknown `index` at step `step`.
  double at(size_t step, size_t index) const { return data_[step][index]; }
  /// Full solution vector at a step.
  const std::vector<double>& solution(size_t step) const { return data_[step]; }

  size_t numUnknowns() const { return num_unknowns_; }
  const std::vector<std::string>& nodeNames() const { return node_names_; }

  /// Total Newton iterations and rejected steps (engine diagnostics).
  size_t total_newton_iterations = 0;
  size_t rejected_steps = 0;
  /// Recovery-ladder interventions that rescued a timestep (or the
  /// initial operating point): each entry records the stages run. Empty
  /// on a clean run.
  std::vector<ConvergenceDiagnostics> recovery_events;

 private:
  std::vector<std::string> node_names_;
  std::unordered_map<std::string, size_t> node_index_;
  size_t num_unknowns_;
  std::vector<double> time_;
  std::vector<std::vector<double>> data_;
};

/// DC sweep result: swept parameter values plus full solutions.
struct DcSweepResult {
  std::vector<double> sweep;
  std::vector<std::vector<double>> solutions;
  std::vector<std::string> node_names;
  /// Per-point convergence flag: a bistable cell mid-transition can
  /// defeat both warm-started and homotopy solves; such points repeat
  /// the previous solution and are flagged false.
  std::vector<bool> converged;
  /// Structured record for each non-converged point (and each point the
  /// cold homotopy had to rescue): which ladder stages ran and which
  /// node was worst.
  struct PointDiagnostics {
    size_t point_index = 0;
    ConvergenceDiagnostics diagnostics;
  };
  std::vector<PointDiagnostics> diagnostics;

  /// Voltage of `name` across the sweep.
  std::vector<double> node(const std::string& name) const;
  /// True when every point converged.
  bool allConverged() const;
};

}  // namespace vls
