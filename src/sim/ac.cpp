#include "sim/ac.hpp"

#include <cmath>

#include "base/error.hpp"

namespace vls {

AcResult::AcResult(std::vector<std::string> node_names, size_t num_unknowns)
    : node_names_(std::move(node_names)), num_unknowns_(num_unknowns) {}

size_t AcResult::indexOf(const std::string& node) const {
  for (size_t i = 0; i < node_names_.size(); ++i) {
    if (node_names_[i] == node) return i;
  }
  throw InvalidInputError("AcResult: unknown node '" + node + "'");
}

std::vector<double> AcResult::frequencies() const {
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(p.freq);
  return out;
}

std::vector<double> AcResult::magnitude(const std::string& node) const {
  const size_t idx = indexOf(node);
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(std::abs(p.x[idx]));
  return out;
}

std::vector<double> AcResult::magnitudeDb(const std::string& node) const {
  std::vector<double> out = magnitude(node);
  for (double& v : out) v = 20.0 * std::log10(std::max(v, 1e-30));
  return out;
}

std::vector<double> AcResult::phase(const std::string& node) const {
  const size_t idx = indexOf(node);
  std::vector<double> out;
  out.reserve(points_.size());
  for (const auto& p : points_) out.push_back(std::arg(p.x[idx]));
  return out;
}

std::optional<double> AcResult::cornerFrequency(const std::string& node) const {
  const std::vector<double> mag = magnitude(node);
  if (mag.empty()) return std::nullopt;
  const double target = mag.front() / std::sqrt(2.0);
  for (size_t i = 1; i < mag.size(); ++i) {
    if (mag[i] <= target && mag[i - 1] > target) {
      // Log-interpolate between the bracketing frequencies.
      const double f0 = points_[i - 1].freq;
      const double f1 = points_[i].freq;
      const double m0 = mag[i - 1];
      const double m1 = mag[i];
      const double frac = (m0 - target) / (m0 - m1);
      return f0 * std::pow(f1 / f0, frac);
    }
  }
  return std::nullopt;
}

}  // namespace vls
