// Lockstep ensemble simulator: K Monte-Carlo variants of one circuit
// topology advance through the same adaptive-timestep transient with
// structure-of-arrays state. One shared stamp tape and one shared
// sparse-LU symbolic structure serve every lane; per-lane values live
// in contiguous double[K] runs so device evaluation, assembly scatter
// and the LU elimination all run as vectorizable lane loops.
//
// Control flow mirrors the scalar Simulator exactly:
//  - Newton: per-lane damping, clamping and tolerance checks with the
//    scalar formulas; converged lanes freeze (their unknowns stop
//    moving) while the rest keep iterating.
//  - Timestep: one ensemble dt, chosen as the step every live lane
//    accepts (LTE err = max over live lanes). Breakpoints, the
//    BE-after-breakpoint damping and the post-edge dt restart rule are
//    shared verbatim with the scalar engine.
//  - Failure is per-lane: a lane whose Newton or pivot fails drops out
//    (laneFailed) without disturbing its siblings; the Monte-Carlo
//    driver re-runs such samples through the scalar reference path.
//
// The scalar Simulator remains the reference implementation; this
// engine is an opt-in throughput path whose per-lane results must
// match it within transient-tolerance scale.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/ensemble_assembly.hpp"
#include "numeric/lu_ensemble.hpp"
#include "sim/diagnostics.hpp"
#include "sim/options.hpp"
#include "sim/result.hpp"

namespace vls {

/// Why one ensemble lane permanently dropped out: which ladder stage it
/// died in, why its last Newton attempt failed, and which unknown was
/// implicated (worst-residual node, non-finite row, or collapsed
/// pivot). The Monte-Carlo driver surfaces this next to the scalar
/// re-run's own diagnostics.
struct LaneFailure {
  bool valid = false;  ///< true once the lane has actually failed
  RecoveryStage stage = RecoveryStage::DirectNewton;
  NewtonFailureReason reason = NewtonFailureReason::None;
  std::string node;     ///< offending unknown, when attributable
  std::string message;  ///< human-readable detail (fault description etc.)
};

class EnsembleSimulator {
 public:
  /// Throws InvalidInputError if lanes is 0 or exceeds kMaxLanes, or if
  /// the circuit contains a device that neither supports lanes nor is
  /// safe to run through the per-lane scalar fallback.
  EnsembleSimulator(Circuit& circuit, size_t lanes, SimOptions options);

  size_t lanes() const { return lanes_; }
  size_t numUnknowns() const { return num_unknowns_; }

  /// Per-lane state of one device (null for stateless devices). Cast to
  /// the device's concrete state type to install per-lane parameters,
  /// e.g. MosfetLaneState::setGeometry for Monte-Carlo perturbations.
  DeviceLaneState* laneState(const Device& dev);

  /// True once lane l has permanently dropped out (Newton, pivot or
  /// timestep failure). Its waveforms are unusable from the failure
  /// point on; re-run the sample through the scalar path.
  bool laneFailed(size_t l) const { return failed_[l] != 0; }
  size_t aliveLaneCount() const;

  /// Structured record of why lane l dropped out (valid == false while
  /// the lane is alive).
  const LaneFailure& laneFailure(size_t l) const { return lane_failures_[l]; }

  /// Install (or clear) a nodeset warm start for subsequent solveOp /
  /// transient calls: every lane's cold-start guess becomes the given
  /// AoS vector instead of zeros. The characterization farm seeds each
  /// grid batch with its slew-neighbor's converged operating point.
  void setNodeset(std::shared_ptr<const std::vector<double>> ns) {
    options_.nodeset = std::move(ns);
  }

  /// Lockstep operating point from zeros: direct Newton on every lane,
  /// then per-lane gmin and source-stepping ladders (shared schedules
  /// with the scalar RecoveryEngine) for the holdouts. Lanes that still
  /// fail are marked failed with a LaneFailure record. Returns the SoA
  /// solution (numUnknowns() * lanes doubles, lane-major per unknown).
  std::vector<double> solveOp();

  /// Warm-started DC solve at `time` for every live lane (static
  /// leakage probes), with a per-lane gmin-ladder retry for holdouts.
  /// Lanes that fail are marked failed; their slots keep the initial
  /// guess.
  std::vector<double> solveOpAt(double time, std::vector<double> x0_soa);

  /// Lockstep adaptive transient over [0, t_stop]. Throws
  /// ConvergenceError only when every lane has failed; partial lane
  /// failures are recorded and the run continues.
  void transient(double t_stop, double dt_max, double dt_initial = 0.0);

  // --- results of the last transient() -------------------------------
  size_t steps() const { return time_.size(); }
  const std::vector<double>& time() const { return time_; }
  /// SoA solution snapshot at an accepted step.
  const std::vector<double>& solutionSoA(size_t step) const { return data_[step]; }
  /// Lane l's solution vector (AoS) at an accepted step.
  std::vector<double> laneSolution(size_t step, size_t l) const;
  /// Lane l's full run gathered into a scalar-compatible result.
  TransientResult laneResult(size_t l) const;

  size_t totalNewtonIterations() const { return total_newton_iterations_; }
  size_t rejectedSteps() const { return rejected_steps_; }
  /// Device model evaluations skipped by bypass (SimOptions::enable_bypass;
  /// a device counts once per Newton iteration it sat quiet in all lanes).
  size_t bypassedEvaluations() const { return assembler_.bypassedEvaluations(); }

 private:
  LaneContext contextFor(const std::vector<double>& x, double time, double dt,
                         IntegrationMethod method, double gmin) const;
  /// Lockstep Newton on the lanes selected by `live` (null = all lanes
  /// not yet failed). Per-lane convergence flags go to `converged`;
  /// returns true when every selected lane converged. Mirrors
  /// Simulator::newtonAttempt per lane: same damping, bound and
  /// tolerance formulas, same `iter > 0` requirement, same non-finite
  /// guards and fault-injection hooks. Per-lane failure details land in
  /// attempt_failure_ (reason/node/message of the last attempt).
  bool newtonLanes(double time, double dt, IntegrationMethod method, double source_scale,
                   double gmin, std::vector<double>& x, const uint8_t* live,
                   uint8_t* converged, size_t* iterations);

  std::string unknownName(size_t index) const;
  /// Cold-start guess in SoA layout: zeros, or the options_.nodeset
  /// prefix broadcast to every lane.
  std::vector<double> coldStartSoA() const;
  /// Promote lane l's last attempt failure (attempt_failure_) into its
  /// permanent LaneFailure record, tagged with the ladder stage.
  void recordLaneFailure(size_t l, RecoveryStage stage);

  Circuit& circuit_;
  SimOptions options_;
  size_t num_nodes_ = 0;
  size_t num_unknowns_ = 0;
  size_t lanes_ = 1;

  EnsembleSystem sys_;
  EnsembleAssembler assembler_;
  EnsembleLu lu_;

  std::vector<std::unique_ptr<DeviceLaneState>> states_;
  std::vector<DeviceLaneState*> state_ptrs_;
  std::unordered_map<const Device*, size_t> device_index_;
  std::vector<double> zeros_;
  std::vector<uint8_t> failed_;
  std::vector<LaneFailure> lane_failures_;

  // Newton workspaces.
  std::vector<double> x_new_;
  std::vector<uint8_t> pending_;
  std::vector<uint8_t> lane_ok_;
  /// Last newtonLanes attempt: per-lane failure details (reason None
  /// for lanes that converged or were not selected).
  std::vector<LaneFailure> attempt_failure_;

  // Last transient run (shared time axis, SoA snapshots).
  std::vector<double> time_;
  std::vector<std::vector<double>> data_;
  size_t total_newton_iterations_ = 0;
  size_t rejected_steps_ = 0;
};

}  // namespace vls
