// Unified convergence-recovery engine: one escalation ladder — direct
// Newton, gmin stepping, source stepping, pseudo-transient continuation
// — shared by every solve entry point of the scalar simulator, with its
// homotopy schedules reused by the ensemble engine's lockstep ladder.
// The engine is generic over a "Newton attempt" callback so it knows
// nothing about assembly or LU; it owns only the escalation policy and
// the ConvergenceDiagnostics record, and throws RecoveryError (with the
// full record attached) when the whole ladder is exhausted.
//
// Pseudo-transient continuation is the standard last-resort homotopy:
// an artificial conductance g anchors every node voltage to the last
// converged point (diagonal += g, rhs += g * x_ref), equivalent to a
// backward-Euler step of size C/g with unit node capacitance. Each
// converged pseudo-step advances the anchor point and relaxes g (grows
// the pseudo-timestep); a failed step tightens g. When g falls below
// RecoveryPolicy::ptran_g_min the circuit is effectively at steady
// state and a plain Newton polish finishes the solve.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "sim/diagnostics.hpp"
#include "sim/fault_injection.hpp"
#include "sim/options.hpp"

namespace vls {

/// Result of one Newton attempt at fixed homotopy parameters.
struct NewtonOutcome {
  bool converged = false;
  size_t iterations = 0;     ///< Newton iterations actually run
  double worst_delta = 0.0;  ///< final worst unknown move [V or A]
  int worst_index = -1;      ///< unknown with the worst (or non-finite) move
  NewtonFailureReason failure = NewtonFailureReason::None;
  int singular_index = -1;   ///< unknown whose LU pivot collapsed
  std::string injected;      ///< fault-injection description, when one fired
  std::vector<NewtonTracePoint> trace;  ///< per-iteration worst moves (depth-capped)
};

/// Pseudo-transient anchor passed to the attempt callback during the
/// ptran stage (null in every other stage): the callback must add `g`
/// to every node diagonal and `g * (*x_ref)[n]` to every node RHS row
/// after assembly.
struct PtranAnchor {
  double g = 0.0;
  const std::vector<double>* x_ref = nullptr;
};

/// One Newton solve at fixed (source_scale, gmin, anchor), iterating x
/// in place. Implemented by Simulator::newtonAttempt.
using NewtonAttemptFn = std::function<NewtonOutcome(
    double source_scale, double gmin, std::vector<double>& x, const PtranAnchor* anchor)>;

class RecoveryEngine {
 public:
  /// `unknown_name` maps an unknown index to a printable name (node
  /// name, or a branch label). `injector` may be null; when set, the
  /// engine reports the active ladder stage to it so stage-masked
  /// faults arm and disarm correctly.
  /// `job` may be null; when set, every ladder stage entry is a
  /// cancellation point (on top of the per-iteration checks the
  /// attempt callback itself makes).
  RecoveryEngine(const RecoveryPolicy& policy, double gmin_final, NewtonAttemptFn attempt,
                 std::function<std::string(size_t)> unknown_name, FaultInjector* injector,
                 const JobControl* job = nullptr)
      : policy_(policy),
        gmin_final_(gmin_final),
        attempt_(std::move(attempt)),
        unknown_name_(std::move(unknown_name)),
        injector_(injector),
        job_(job) {}

  /// Run the ladder from x0. Returns the solution and, when diag_out is
  /// non-null, the full stage record (also on success, so callers can
  /// surface silent recoveries). Throws RecoveryError when every
  /// enabled stage fails.
  std::vector<double> solve(const std::vector<double>& x0, const std::string& context,
                            double time, ConvergenceDiagnostics* diag_out = nullptr);

  /// Gmin ladder values: gmin_start relaxed by 10x per rung down to
  /// gmin_final, at most gmin_steps + 1 entries. Shared with the
  /// ensemble engine's lockstep gmin stage.
  static std::vector<double> gminSchedule(const RecoveryPolicy& policy, double gmin_final);

  /// Source-stepping scales {1/N, 2/N, ..., 1}. Shared with the
  /// ensemble engine's lockstep source stage.
  static std::vector<double> sourceSchedule(const RecoveryPolicy& policy);

 private:
  void setStage(RecoveryStage stage);
  /// Copies a NewtonOutcome into a StageAttempt (accumulating
  /// iterations; names resolved through unknown_name_).
  void recordOutcome(StageAttempt& attempt, const NewtonOutcome& out) const;

  bool runDirect(std::vector<double>& x, const std::vector<double>& x0,
                 ConvergenceDiagnostics& diag);
  bool runGminStepping(std::vector<double>& x, const std::vector<double>& x0,
                       ConvergenceDiagnostics& diag);
  bool runSourceStepping(std::vector<double>& x, ConvergenceDiagnostics& diag);
  bool runPseudoTransient(std::vector<double>& x, const std::vector<double>& x0,
                          ConvergenceDiagnostics& diag);

  const RecoveryPolicy& policy_;
  double gmin_final_;
  NewtonAttemptFn attempt_;
  std::function<std::string(size_t)> unknown_name_;
  FaultInjector* injector_;
  const JobControl* job_;
};

/// The degrade-don't-abort retry policy: one escalation of `base` for
/// the second attempt at a failed unit of work (Monte-Carlo sample,
/// characterization grid point). Tighter gmin schedule (higher start,
/// more rungs), doubled source stepping and a longer pseudo-transient
/// leash — strictly more patient than the base policy, never less.
RecoveryPolicy escalatedRecoveryPolicy(const RecoveryPolicy& base);

}  // namespace vls
