// Structured convergence diagnostics. Every rung of the recovery
// escalation ladder (direct Newton, gmin stepping, source stepping,
// pseudo-transient continuation) records what it attempted, how far its
// Newton iterations got, and *why* it failed — by name: the worst-
// residual node, the node whose LU pivot collapsed, the device a fault
// was injected from. The record is attached to thrown ConvergenceErrors
// (as a RecoveryError) and to analysis results, so a failed Monte-Carlo
// sample or sweep point is attributable instead of a bare string.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "base/error.hpp"

namespace vls {

/// Rungs of the convergence-recovery escalation ladder, in order.
/// TransientStep tags Newton attempts made by the transient timestep
/// loop (whose "ladder" is dt shrinking rather than homotopy).
enum class RecoveryStage : uint8_t {
  DirectNewton = 0,
  GminStepping = 1,
  SourceStepping = 2,
  PseudoTransient = 3,
  TransientStep = 4,
};

const char* recoveryStageName(RecoveryStage stage);

/// Bit for stage `s` in a stage mask (fault injection arming).
constexpr unsigned recoveryStageBit(RecoveryStage s) { return 1u << static_cast<unsigned>(s); }
constexpr unsigned kAllRecoveryStages = 0xffffffffu;

/// Why one Newton attempt gave up.
enum class NewtonFailureReason : uint8_t {
  None = 0,        ///< converged
  IterationLimit,  ///< ran out of iterations without meeting tolerances
  NonFinite,       ///< NaN/Inf in the residual or solution (aborted immediately)
  SingularPivot,   ///< the LU factorization hit a collapsed pivot
  InjectedFault,   ///< a fault-injection hook forced the failure
};

const char* newtonFailureReasonName(NewtonFailureReason reason);

/// One point of a Newton residual trace: the worst unknown move of one
/// iteration. Traces are depth-capped (RecoveryPolicy::newton_trace_depth)
/// keeping the most recent iterations.
struct NewtonTracePoint {
  size_t iteration = 0;
  double worst_delta = 0.0;
};

/// What one ladder rung (stage) did. A stage may contain several
/// homotopy sub-steps ("rungs": gmin values, source scales, pseudo-
/// timesteps); the Newton fields describe the last attempt made.
struct StageAttempt {
  RecoveryStage stage = RecoveryStage::DirectNewton;
  bool converged = false;
  int rungs = 0;                 ///< homotopy sub-steps attempted within the stage
  size_t newton_iterations = 0;  ///< Newton iterations across the whole stage
  NewtonFailureReason failure = NewtonFailureReason::None;
  double worst_residual = 0.0;   ///< last attempt's worst unknown move [V or A]
  std::string worst_node;        ///< unknown with the worst residual (or the non-finite one)
  std::string singular_node;     ///< node whose pivot collapsed (SingularPivot only)
  std::string injected_fault;    ///< fault-injection description, when one fired
  std::string detail;            ///< stage parameters, e.g. "gmin=1e-06" or "scale=0.45"
  std::vector<NewtonTracePoint> trace;  ///< last attempt's per-iteration residual trace
};

/// Full record of one recovery ladder run (or one transient failure).
struct ConvergenceDiagnostics {
  std::string context;  ///< "operatingPoint", "solveOpAt", "dcSweep v=...", "transient"
  double time = 0.0;    ///< solve time (transient: failure time)
  double last_dt = 0.0; ///< transient only: last successfully accepted dt
  bool recovered = false;  ///< true when a rung after the first succeeded
  std::vector<StageAttempt> stages;  ///< attempts in escalation order

  /// Deepest stage attempted (null when empty).
  const StageAttempt* lastAttempt() const { return stages.empty() ? nullptr : &stages.back(); }
  /// Worst-residual (or offending) node of the deepest attempt.
  std::string worstNode() const;
  /// Name of the deepest stage attempted ("" when empty).
  std::string lastStageName() const;
  /// Multi-line human-readable report.
  std::string summary() const;
};

/// ConvergenceError carrying the structured record. Existing
/// `catch (const ConvergenceError&)` sites keep working; sites that
/// want attribution catch this subtype (or dynamic_cast).
class RecoveryError : public ConvergenceError {
 public:
  RecoveryError(const std::string& message, ConvergenceDiagnostics diagnostics);
  const ConvergenceDiagnostics& diagnostics() const { return diagnostics_; }

 private:
  ConvergenceDiagnostics diagnostics_;
};

}  // namespace vls
