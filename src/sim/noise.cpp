#include "sim/noise.hpp"

#include <cmath>

namespace vls {

double NoiseResult::rms() const { return std::sqrt(total_v2); }

}  // namespace vls
