#include "sim/recovery.hpp"

#include <algorithm>
#include <sstream>

#include "base/logging.hpp"

namespace vls {

namespace {

std::string formatValue(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

std::vector<double> RecoveryEngine::gminSchedule(const RecoveryPolicy& policy,
                                                 double gmin_final) {
  std::vector<double> schedule;
  double g = policy.gmin_start;
  for (int step = 0; step <= policy.gmin_steps; ++step) {
    schedule.push_back(g);
    if (g <= gmin_final) break;
    g = std::max(g * 0.1, gmin_final);
  }
  return schedule;
}

std::vector<double> RecoveryEngine::sourceSchedule(const RecoveryPolicy& policy) {
  std::vector<double> schedule;
  const int n = std::max(1, policy.source_steps);
  for (int step = 1; step <= n; ++step) {
    schedule.push_back(static_cast<double>(step) / n);
  }
  return schedule;
}

RecoveryPolicy escalatedRecoveryPolicy(const RecoveryPolicy& base) {
  RecoveryPolicy p = base;
  p.gmin_stepping = true;
  p.source_stepping = true;
  p.pseudo_transient = true;
  p.gmin_steps = std::max(base.gmin_steps * 2, base.gmin_steps + 4);
  p.gmin_start = std::max(base.gmin_start, 1e-1);
  p.source_steps = std::max(base.source_steps * 2, base.source_steps + 10);
  p.ptran_max_steps = std::max(base.ptran_max_steps * 2, base.ptran_max_steps + 100);
  return p;
}

void RecoveryEngine::setStage(RecoveryStage stage) {
  if (injector_ != nullptr) injector_->setStage(stage);
}

void RecoveryEngine::recordOutcome(StageAttempt& attempt, const NewtonOutcome& out) const {
  attempt.newton_iterations += out.iterations;
  attempt.converged = out.converged;
  attempt.failure = out.failure;
  attempt.worst_residual = out.worst_delta;
  attempt.worst_node = out.worst_index >= 0 ? unknown_name_(out.worst_index) : "";
  attempt.singular_node = out.singular_index >= 0 ? unknown_name_(out.singular_index) : "";
  if (!out.injected.empty()) attempt.injected_fault = out.injected;
  attempt.trace = out.trace;
}

bool RecoveryEngine::runDirect(std::vector<double>& x, const std::vector<double>& x0,
                               ConvergenceDiagnostics& diag) {
  setStage(RecoveryStage::DirectNewton);
  if (job_ != nullptr) job_->throwIfInterrupted("recovery:direct-newton", diag.time);
  StageAttempt& attempt = diag.stages.emplace_back();
  attempt.stage = RecoveryStage::DirectNewton;
  attempt.rungs = 1;
  x = x0;
  recordOutcome(attempt, attempt_(1.0, gmin_final_, x, nullptr));
  return attempt.converged;
}

bool RecoveryEngine::runGminStepping(std::vector<double>& x, const std::vector<double>& x0,
                                     ConvergenceDiagnostics& diag) {
  setStage(RecoveryStage::GminStepping);
  if (job_ != nullptr) job_->throwIfInterrupted("recovery:gmin-stepping", diag.time);
  StageAttempt& attempt = diag.stages.emplace_back();
  attempt.stage = RecoveryStage::GminStepping;
  x = x0;
  for (const double g : gminSchedule(policy_, gmin_final_)) {
    ++attempt.rungs;
    attempt.detail = "gmin=" + formatValue(g);
    recordOutcome(attempt, attempt_(1.0, g, x, nullptr));
    if (!attempt.converged) return false;
  }
  return true;
}

bool RecoveryEngine::runSourceStepping(std::vector<double>& x, ConvergenceDiagnostics& diag) {
  setStage(RecoveryStage::SourceStepping);
  if (job_ != nullptr) job_->throwIfInterrupted("recovery:source-stepping", diag.time);
  StageAttempt& attempt = diag.stages.emplace_back();
  attempt.stage = RecoveryStage::SourceStepping;
  x.assign(x.size(), 0.0);
  for (const double scale : sourceSchedule(policy_)) {
    ++attempt.rungs;
    attempt.detail = "scale=" + formatValue(scale);
    recordOutcome(attempt, attempt_(scale, gmin_final_, x, nullptr));
    if (!attempt.converged) return false;
  }
  return true;
}

bool RecoveryEngine::runPseudoTransient(std::vector<double>& x, const std::vector<double>& x0,
                                        ConvergenceDiagnostics& diag) {
  setStage(RecoveryStage::PseudoTransient);
  if (job_ != nullptr) job_->throwIfInterrupted("recovery:pseudo-transient", diag.time);
  StageAttempt& attempt = diag.stages.emplace_back();
  attempt.stage = RecoveryStage::PseudoTransient;
  x = x0;
  std::vector<double> x_ref = x0;  // last converged pseudo-state
  double g = policy_.ptran_g_start;
  for (int step = 0; step < policy_.ptran_max_steps; ++step) {
    if (g < policy_.ptran_g_min) break;  // effectively steady state
    ++attempt.rungs;
    attempt.detail = "g_anchor=" + formatValue(g);
    const PtranAnchor anchor{g, &x_ref};
    recordOutcome(attempt, attempt_(1.0, gmin_final_, x, &anchor));
    if (attempt.converged) {
      x_ref = x;
      g /= policy_.ptran_grow;
    } else {
      g *= policy_.ptran_shrink;
      x = x_ref;
      if (g > policy_.ptran_g_abort) return false;
    }
  }
  // Polish: plain Newton from the relaxed pseudo-steady state.
  ++attempt.rungs;
  attempt.detail = "polish";
  recordOutcome(attempt, attempt_(1.0, gmin_final_, x, nullptr));
  return attempt.converged;
}

std::vector<double> RecoveryEngine::solve(const std::vector<double>& x0,
                                          const std::string& context, double time,
                                          ConvergenceDiagnostics* diag_out) {
  ConvergenceDiagnostics diag;
  diag.context = context;
  diag.time = time;

  std::vector<double> x;
  bool done = runDirect(x, x0, diag);
  if (!done && policy_.gmin_stepping) {
    VLS_LOG_DEBUG("recovery: direct Newton failed, trying gmin stepping");
    done = runGminStepping(x, x0, diag);
  }
  if (!done && policy_.source_stepping) {
    VLS_LOG_DEBUG("recovery: gmin stepping failed, trying source stepping");
    done = runSourceStepping(x, diag);
  }
  if (!done && policy_.pseudo_transient) {
    VLS_LOG_DEBUG("recovery: source stepping failed, trying pseudo-transient continuation");
    done = runPseudoTransient(x, x0, diag);
  }

  setStage(RecoveryStage::DirectNewton);  // reset for the caller's next solve
  diag.recovered = done && diag.stages.size() > 1;
  if (diag_out != nullptr) *diag_out = diag;
  if (!done) {
    // Build the message before handing diag to the constructor: argument
    // evaluation order is unspecified, and the move may win.
    const std::string message = context + ": failed to converge after " +
                                std::to_string(diag.stages.size()) + " recovery stage(s)";
    throw RecoveryError(message, std::move(diag));
  }
  return x;
}

}  // namespace vls
