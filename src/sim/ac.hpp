// AC small-signal analysis. The circuit is linearized at the DC
// operating point: the real part of the MNA matrix is exactly the
// Newton Jacobian that the devices already stamp; the imaginary part
// collects each device's small-signal capacitances (and inductances on
// branch rows) through the ReactiveStamper. Each frequency point solves
// the 2n x 2n real-equivalent system
//     [ G  -wC ] [xr]   [br]
//     [ wC   G ] [xi] = [bi]
// with the same sparse LU used everywhere else.
#pragma once

#include <complex>
#include <optional>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/node.hpp"
#include "numeric/sparse_matrix.hpp"
#include "sim/result.hpp"

namespace vls {

/// One analysed frequency point: full complex solution vector.
struct AcPoint {
  double freq = 0.0;
  std::vector<std::complex<double>> x;
};

class AcResult {
 public:
  AcResult(std::vector<std::string> node_names, size_t num_unknowns);

  void append(AcPoint point) { points_.push_back(std::move(point)); }

  size_t size() const { return points_.size(); }
  const std::vector<AcPoint>& points() const { return points_; }

  /// Frequency axis.
  std::vector<double> frequencies() const;
  /// |V(node)| across frequency.
  std::vector<double> magnitude(const std::string& node) const;
  /// Magnitude in dB (20 log10).
  std::vector<double> magnitudeDb(const std::string& node) const;
  /// Phase [radians].
  std::vector<double> phase(const std::string& node) const;

  /// -3 dB corner relative to the lowest-frequency magnitude; nullopt
  /// if the response never drops below it.
  std::optional<double> cornerFrequency(const std::string& node) const;

 private:
  size_t indexOf(const std::string& node) const;
  std::vector<std::string> node_names_;
  size_t num_unknowns_;
  std::vector<AcPoint> points_;
};

}  // namespace vls
