#include "sim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "base/logging.hpp"
#include "devices/sources.hpp"
#include "numeric/lu_sparse.hpp"

namespace vls {

Simulator::Simulator(Circuit& circuit, SimOptions options)
    : circuit_(circuit), options_(options), num_nodes_(circuit.nodeCount()), system_(0, 0) {
  const size_t branches = circuit_.assignBranchIndices();
  num_unknowns_ = num_nodes_ + branches;
  system_ = MnaSystem(num_nodes_, branches);
}

EvalContext Simulator::contextFor(const std::vector<double>& x, double time) const {
  EvalContext ctx;
  ctx.x = std::span<const double>(x);
  ctx.time = time;
  ctx.dt = 0.0;
  ctx.method = IntegrationMethod::None;
  ctx.temperature = options_.temperatureK();
  ctx.gmin = options_.gmin;
  return ctx;
}

bool Simulator::newtonSolve(double time, double dt, IntegrationMethod method,
                            double source_scale, double gmin, std::vector<double>& x,
                            size_t* iterations) {
  MnaSystem& system = system_;

  EvalContext ctx;
  ctx.time = time;
  ctx.dt = dt;
  ctx.method = method;
  ctx.temperature = options_.temperatureK();
  ctx.source_scale = source_scale;
  ctx.gmin = gmin;

  AssemblyOptions assembly_opts;
  assembly_opts.enable_bypass = options_.enable_bypass;
  assembly_opts.bypass_tol = options_.bypass_tol;

  std::vector<double>& x_new = x_new_;
  for (int iter = 0; iter < options_.max_newton_iter; ++iter) {
    if (iterations) ++*iterations;
    ctx.x = std::span<const double>(x);
    // Bypass only after the settle iterations: every Newton solve
    // starts with full evaluations so fresh timesteps, committed
    // charge histories, and post-breakpoint states are re-linearized.
    assembly_opts.allow_bypass_now = iter >= options_.bypass_settle_iterations;
    assembler_.assemble(system, circuit_, ctx, assembly_opts);

    try {
      // Numeric-only refactorization on the fixed MNA pattern; the first
      // call (and any pivot degradation) runs the full symbolic pass.
      lu_.refactor(system.matrix());
      x_new = system.rhs();
      lu_.solveInPlace(x_new);
    } catch (const NumericalError&) {
      return false;
    }

    // Damping: scale the whole update if any component moves too far;
    // preserves the Newton direction.
    double max_delta = 0.0;
    for (size_t i = 0; i < num_unknowns_; ++i) {
      max_delta = std::max(max_delta, std::fabs(x_new[i] - x[i]));
    }
    if (!std::isfinite(max_delta)) return false;
    double scale = 1.0;
    if (max_delta > options_.max_step_voltage) scale = options_.max_step_voltage / max_delta;

    bool converged = scale == 1.0;
    for (size_t i = 0; i < num_unknowns_; ++i) {
      const double next = x[i] + scale * (x_new[i] - x[i]);
      const double bounded = std::clamp(next, -options_.voltage_bound, options_.voltage_bound);
      const double tol = (i < num_nodes_ ? options_.vntol : options_.abstol) +
                         options_.reltol * std::max(std::fabs(bounded), std::fabs(x[i]));
      if (std::fabs(bounded - x[i]) > tol) converged = false;
      x[i] = bounded;
    }
    if (converged && iter > 0) return true;
  }
  return false;
}

std::vector<double> Simulator::solveOp() { return solveOpInternal(std::vector<double>(num_unknowns_, 0.0)); }

std::vector<double> Simulator::solveOp(std::vector<double> initial_guess) {
  initial_guess.resize(num_unknowns_, 0.0);
  return solveOpInternal(std::move(initial_guess));
}

std::vector<double> Simulator::solveOpAt(double time, std::vector<double> initial_guess) {
  initial_guess.resize(num_unknowns_, 0.0);
  if (!newtonSolve(time, 0.0, IntegrationMethod::None, 1.0, options_.gmin, initial_guess)) {
    throw ConvergenceError("solveOpAt: Newton failed at t = " + std::to_string(time));
  }
  return initial_guess;
}

std::vector<double> Simulator::solveOpInternal(std::vector<double> x0) {
  // 1) Direct Newton.
  std::vector<double> x = x0;
  if (newtonSolve(0.0, 0.0, IntegrationMethod::None, 1.0, options_.gmin, x)) return x;

  // 2) Gmin stepping: solve with a large gmin, then relax it.
  VLS_LOG_DEBUG("OP: direct Newton failed, trying gmin stepping");
  x = x0;
  double gmin = 1e-2;
  bool ok = true;
  for (int step = 0; step <= options_.gmin_steps; ++step) {
    if (!newtonSolve(0.0, 0.0, IntegrationMethod::None, 1.0, gmin, x)) {
      ok = false;
      break;
    }
    if (gmin <= options_.gmin) break;
    gmin = std::max(gmin * 0.1, options_.gmin);
  }
  if (ok && gmin <= options_.gmin) return x;

  // 3) Source stepping: ramp all independent sources from zero.
  VLS_LOG_DEBUG("OP: gmin stepping failed, trying source stepping");
  x.assign(num_unknowns_, 0.0);
  for (int step = 1; step <= options_.source_steps; ++step) {
    const double scale = static_cast<double>(step) / options_.source_steps;
    if (!newtonSolve(0.0, 0.0, IntegrationMethod::None, scale, options_.gmin, x)) {
      throw ConvergenceError("Operating point failed to converge (source stepping at scale " +
                             std::to_string(scale) + ")");
    }
  }
  return x;
}

DcSweepResult Simulator::dcSweep(VoltageSource& source, double from, double to, double step) {
  if (step <= 0.0) throw InvalidInputError("dcSweep: step must be positive");
  DcSweepResult result;
  result.node_names = circuit_.nodeNames();
  const Waveform saved = source.waveform();
  std::vector<double> x = solveOp();  // bias with original value for a warm start

  const double span = to - from;
  const int points = static_cast<int>(std::floor(std::fabs(span) / step + 0.5)) + 1;
  const double dir = span >= 0.0 ? 1.0 : -1.0;
  for (int k = 0; k < points; ++k) {
    const double v = from + dir * static_cast<double>(k) * step;
    source.setWaveform(Waveform::dc(v));
    bool ok = newtonSolve(0.0, 0.0, IntegrationMethod::None, 1.0, options_.gmin, x);
    if (!ok) {
      // Fall back to a cold homotopy solve; a bistable cell caught
      // mid-transition can defeat that too — keep the previous point's
      // solution and flag it rather than aborting the sweep.
      try {
        x = solveOpInternal(std::vector<double>(num_unknowns_, 0.0));
        ok = true;
      } catch (const ConvergenceError&) {
        ok = false;
      }
    }
    result.sweep.push_back(v);
    result.solutions.push_back(x);
    result.converged.push_back(ok);
  }
  source.setWaveform(saved);
  return result;
}

AcResult Simulator::ac(double f_start, double f_stop, int points_per_decade) {
  if (f_start <= 0.0 || f_stop < f_start || points_per_decade < 1) {
    throw InvalidInputError("ac: bad frequency arguments");
  }
  // Linearization point.
  const std::vector<double> x_op = solveOpInternal(std::vector<double>(num_unknowns_, 0.0));
  EvalContext ctx = contextFor(x_op, 0.0);

  // Conductance part: the assembled Newton Jacobian at the OP.
  // One-shot system — the hashed path is the right tool here.
  MnaSystem g_sys(num_nodes_, num_unknowns_ - num_nodes_);
  assembleDirect(g_sys, circuit_, ctx);

  // Reactive part and AC excitation.
  SparseMatrix c_mat(num_unknowns_);
  ReactiveStamper reactive(c_mat, num_nodes_);
  std::vector<double> rhs_ac(num_unknowns_, 0.0);
  for (const auto& dev : circuit_.devices()) {
    dev->stampReactive(reactive, ctx);
    dev->stampAcSource(rhs_ac);
  }

  AcResult result(circuit_.nodeNames(), num_unknowns_);
  const size_t n = num_unknowns_;
  const double decades = std::log10(f_stop / f_start);
  const int total = std::max(1, static_cast<int>(std::ceil(decades * points_per_decade))) + 1;
  // Real-equivalent 2n system: the pattern is frequency-independent, so
  // build it once and refactor numerically per point.
  SparseMatrix big(2 * n);
  SparseLu lu;
  for (int k = 0; k < total; ++k) {
    const double f =
        total == 1 ? f_start
                   : f_start * std::pow(10.0, decades * static_cast<double>(k) / (total - 1));
    const double w = 2.0 * M_PI * f;
    big.clearValues();
    for (size_t e = 0; e < g_sys.matrix().entries().size(); ++e) {
      const auto& ent = g_sys.matrix().entries()[e];
      const double v = g_sys.matrix().value(e);
      big.add(ent.row, ent.col, v);
      big.add(ent.row + n, ent.col + n, v);
    }
    for (size_t e = 0; e < c_mat.entries().size(); ++e) {
      const auto& ent = c_mat.entries()[e];
      const double v = c_mat.value(e) * w;
      big.add(ent.row, ent.col + n, -v);
      big.add(ent.row + n, ent.col, v);
    }
    std::vector<double> rhs(2 * n, 0.0);
    for (size_t i = 0; i < n; ++i) rhs[i] = rhs_ac[i];
    lu.refactor(big);
    const std::vector<double> sol = lu.solve(rhs);
    AcPoint point;
    point.freq = f;
    point.x.resize(n);
    for (size_t i = 0; i < n; ++i) point.x[i] = {sol[i], sol[i + n]};
    result.append(std::move(point));
  }
  return result;
}

NoiseResult Simulator::noise(const std::string& output_node, double f_start, double f_stop,
                             int points_per_decade) {
  if (f_start <= 0.0 || f_stop < f_start || points_per_decade < 1) {
    throw InvalidInputError("noise: bad frequency arguments");
  }
  const auto out_id = circuit_.findNode(output_node);
  if (!out_id || isGround(*out_id)) {
    throw InvalidInputError("noise: unknown output node '" + output_node + "'");
  }
  const size_t out_idx = static_cast<size_t>(*out_id);

  const std::vector<double> x_op = solveOpInternal(std::vector<double>(num_unknowns_, 0.0));
  EvalContext ctx = contextFor(x_op, 0.0);

  MnaSystem g_sys(num_nodes_, num_unknowns_ - num_nodes_);
  assembleDirect(g_sys, circuit_, ctx);
  SparseMatrix c_mat(num_unknowns_);
  ReactiveStamper reactive(c_mat, num_nodes_);
  std::vector<NoiseSource> sources;
  for (const auto& dev : circuit_.devices()) {
    dev->stampReactive(reactive, ctx);
    dev->collectNoiseSources(sources, ctx);
  }

  NoiseResult result;
  result.output_node = output_node;
  result.contributions.resize(sources.size());
  for (size_t s = 0; s < sources.size(); ++s) result.contributions[s].label = sources[s].label;

  const size_t n = num_unknowns_;
  const double decades = std::log10(f_stop / f_start);
  const int total = std::max(1, static_cast<int>(std::ceil(decades * points_per_decade))) + 1;
  std::vector<double> prev_psd_per_src(sources.size(), 0.0);
  double prev_f = 0.0;
  SparseMatrix big(2 * n);
  SparseLu lu;
  for (int k = 0; k < total; ++k) {
    const double f =
        total == 1 ? f_start
                   : f_start * std::pow(10.0, decades * static_cast<double>(k) / (total - 1));
    const double w = 2.0 * M_PI * f;
    big.clearValues();
    for (size_t e = 0; e < g_sys.matrix().entries().size(); ++e) {
      const auto& ent = g_sys.matrix().entries()[e];
      const double v = g_sys.matrix().value(e);
      big.add(ent.row, ent.col, v);
      big.add(ent.row + n, ent.col + n, v);
    }
    for (size_t e = 0; e < c_mat.entries().size(); ++e) {
      const auto& ent = c_mat.entries()[e];
      const double v = c_mat.value(e) * w;
      big.add(ent.row, ent.col + n, -v);
      big.add(ent.row + n, ent.col, v);
    }
    lu.refactor(big);

    double psd_total = 0.0;
    for (size_t s = 0; s < sources.size(); ++s) {
      std::vector<double> rhs(2 * n, 0.0);
      // Unit current a -> b through the generator: leaves a, enters b.
      if (!isGround(sources[s].a)) rhs[static_cast<size_t>(sources[s].a)] -= 1.0;
      if (!isGround(sources[s].b)) rhs[static_cast<size_t>(sources[s].b)] += 1.0;
      const std::vector<double> sol = lu.solve(rhs);
      const double h2 = sol[out_idx] * sol[out_idx] + sol[out_idx + n] * sol[out_idx + n];
      const double psd = h2 * sources[s].psd(f);
      psd_total += psd;
      // Band integration (trapezoid in linear f) per source.
      if (k > 0) {
        result.contributions[s].v2 += 0.5 * (psd + prev_psd_per_src[s]) * (f - prev_f);
      }
      prev_psd_per_src[s] = psd;
    }
    result.freqs.push_back(f);
    result.output_psd.push_back(psd_total);
    prev_f = f;
  }
  for (const auto& c : result.contributions) result.total_v2 += c.v2;
  std::sort(result.contributions.begin(), result.contributions.end(),
            [](const NoiseContribution& a, const NoiseContribution& b) { return a.v2 > b.v2; });
  return result;
}

TransientResult Simulator::transient(double t_stop, double dt_max, double dt_initial) {
  if (t_stop <= 0.0 || dt_max <= 0.0) throw InvalidInputError("transient: bad time arguments");

  TransientResult result(circuit_.nodeNames(), num_unknowns_);

  // Operating point at t = 0.
  std::vector<double> x = solveOpInternal(std::vector<double>(num_unknowns_, 0.0));
  {
    EvalContext ctx = contextFor(x, 0.0);
    for (const auto& dev : circuit_.devices()) dev->startTransient(ctx);
  }
  result.append(0.0, x);

  // Breakpoints: source corners are hard barriers.
  std::vector<double> breaks;
  for (const auto& dev : circuit_.devices()) dev->collectBreakpoints(t_stop, breaks);
  breaks.push_back(t_stop);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::fabs(a - b) < 1e-18; }),
               breaks.end());

  double t = 0.0;
  double dt = dt_initial > 0.0 ? dt_initial : dt_max / 100.0;
  dt = std::min(dt, dt_max);
  std::vector<double> x_prev = x;       // solution one accepted step back
  double dt_prev = 0.0;
  // Last accepted dt that the LTE controller was actively limiting
  // (grow < dt_grow_max); -1 when the circuit was coasting at dt_max.
  double dt_lte_accepted = -1.0;
  int steps_since_break = 0;
  size_t next_break = 0;
  while (next_break < breaks.size() && breaks[next_break] <= 1e-18) ++next_break;

  std::vector<double> x_try(num_unknowns_);
  while (t < t_stop - 1e-18) {
    // Clamp the step to the next breakpoint.
    bool hits_break = false;
    double dt_eff = std::min(dt, dt_max);
    if (next_break < breaks.size()) {
      const double gap = breaks[next_break] - t;
      if (dt_eff >= gap - 1e-18) {
        dt_eff = gap;
        hits_break = true;
      } else if (dt_eff > 0.5 * gap) {
        dt_eff = 0.5 * gap;  // avoid a tiny sliver step before the breakpoint
      }
    }

    const IntegrationMethod method =
        (options_.method == IntegrationMethod::BackwardEuler ||
         steps_since_break < options_.be_steps_after_breakpoint)
            ? IntegrationMethod::BackwardEuler
            : IntegrationMethod::Trapezoidal;

    x_try = x;
    size_t iters = 0;
    const bool converged =
        newtonSolve(t + dt_eff, dt_eff, method, 1.0, options_.gmin, x_try, &iters);
    result.total_newton_iterations += iters;

    if (!converged) {
      ++result.rejected_steps;
      dt = dt_eff * options_.dt_shrink;
      if (dt < options_.dt_min) {
        throw ConvergenceError("transient: timestep underflow at t = " + std::to_string(t));
      }
      continue;
    }

    // Predictor-based local truncation error estimate.
    double err = 0.0;
    if (dt_prev > 0.0 && steps_since_break >= 1) {
      for (size_t i = 0; i < num_unknowns_; ++i) {
        const double slope = (x[i] - x_prev[i]) / dt_prev;
        const double pred = x[i] + slope * dt_eff;
        const double tol = options_.tran_vntol +
                           options_.tran_reltol * std::max(std::fabs(x_try[i]), std::fabs(x[i]));
        err = std::max(err, std::fabs(x_try[i] - pred) / tol);
      }
    }

    if (err > 8.0 && dt_eff > 16.0 * options_.dt_min) {
      // Reject: the step was too aggressive.
      ++result.rejected_steps;
      dt = dt_eff * options_.dt_shrink;
      continue;
    }

    // Accept.
    const double t_new = t + dt_eff;
    {
      EvalContext ctx;
      ctx.x = std::span<const double>(x_try);
      ctx.time = t_new;
      ctx.dt = dt_eff;
      ctx.method = method;
      ctx.temperature = options_.temperatureK();
      ctx.gmin = options_.gmin;
      for (const auto& dev : circuit_.devices()) dev->acceptStep(ctx);
    }
    x_prev = x;
    dt_prev = dt_eff;
    x = x_try;
    t = t_new;
    result.append(t, x);

    if (hits_break) {
      ++next_break;
      steps_since_break = 0;
      // Restart after an edge: cautious (dt_max / 100) by default. But
      // when the LTE controller was actively limiting dt before the
      // edge, its last accepted step is a proven-safe scale for this
      // circuit's dynamics — resuming there avoids re-growing from the
      // hard reset over dozens of accepted steps. The edge step itself
      // (dt_eff, clamped to the breakpoint gap) can be an arbitrarily
      // small sliver and says nothing about the circuit.
      double dt_restart = std::min(dt_eff, dt_max / 100.0);
      if (dt_lte_accepted > dt_restart) dt_restart = std::min(dt_lte_accepted, dt_max);
      dt = dt_restart;
      dt_lte_accepted = -1.0;
    } else {
      ++steps_since_break;
      const double grow = err > 1e-9 ? std::min(options_.dt_grow_max, 0.9 / std::sqrt(err))
                                     : options_.dt_grow_max;
      dt_lte_accepted = grow < options_.dt_grow_max ? dt_eff : -1.0;
      dt = dt_eff * std::max(0.5, grow);
    }
  }
  return result;
}

}  // namespace vls
