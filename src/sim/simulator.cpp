#include "sim/simulator.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "base/error.hpp"
#include "base/logging.hpp"
#include "devices/sources.hpp"
#include "numeric/lu_sparse.hpp"
#include "sim/fault_injection.hpp"
#include "sim/recovery.hpp"

namespace vls {

Simulator::Simulator(Circuit& circuit, SimOptions options)
    : circuit_(circuit), options_(options), num_nodes_(circuit.nodeCount()), system_(0, 0) {
  const size_t branches = circuit_.assignBranchIndices();
  num_unknowns_ = num_nodes_ + branches;
  system_ = MnaSystem(num_nodes_, branches);
  lu_.setOrdering(options_.lu_ordering);
  // Flat-vs-BBD routing: forcing wins, Auto consults the block-count
  // heuristic. Either way the partition stays available to the sharded
  // assembler below.
  if (options_.partition == nullptr) {
    partition_decision_ = "flat (no partition)";
  } else {
    const int32_t blocks = options_.partition->num_blocks;
    bool use_bbd = false;
    switch (options_.partition_use) {
      case PartitionUse::ForceBbd:
        use_bbd = true;
        partition_decision_ = "bbd (forced)";
        break;
      case PartitionUse::ForceFlat:
        partition_decision_ = "flat (forced)";
        break;
      case PartitionUse::Auto:
        use_bbd = recommendPartitionedSolve(blocks);
        partition_decision_ = std::string(use_bbd ? "bbd" : "flat") + " (auto: " +
                              std::to_string(blocks) + (use_bbd ? " >= " : " < ") +
                              std::to_string(kBbdAutoMinBlocks) + " blocks)";
        break;
    }
    if (use_bbd) {
      bbd_ = std::make_unique<BbdLu>(deriveUnknownPartition(), blocks, options_.lu_ordering,
                                     options_.bbd_latency);
    }
  }
  if (options_.parallel_assembly) {
    ShardedAssemblyConfig cfg;
    if (options_.partition != nullptr) {
      // Alias the partition's device labels without copying.
      cfg.device_shard = std::shared_ptr<const std::vector<int32_t>>(
          options_.partition, &options_.partition->device_block);
      cfg.num_shards = options_.partition->num_blocks;
    } else {
      cfg.num_shards = options_.assembly_shards;
    }
    cfg.num_threads = options_.assembly_threads;
    cfg.device_batch_width = options_.device_batch_width;
    sharded_ = std::make_unique<ShardedAssembler>(std::move(cfg));
  }
}

SimPhaseTimes Simulator::phaseTimes() const {
  SimPhaseTimes t = phases_;
  if (sharded_ != nullptr) t.model_eval_sec = sharded_->modelEvalSeconds();
  return t;
}

std::vector<int32_t> Simulator::deriveUnknownPartition() const {
  const PartitionSpec& spec = *options_.partition;
  const auto& devices = circuit_.devices();
  if (spec.device_block.size() != devices.size()) {
    throw InvalidInputError("PartitionSpec labels " + std::to_string(spec.device_block.size()) +
                            " devices, circuit has " + std::to_string(devices.size()));
  }
  // -2 = not yet touched by any device. A node interior to block b iff
  // every touching device is labelled b; any disagreement (including an
  // explicit -1 label) demotes it to the border. Branch unknowns follow
  // their device (assignBranchIndices hands them out in device order
  // starting at nodeCount()).
  std::vector<int32_t> part(num_unknowns_, -2);
  size_t next_branch = num_nodes_;
  for (size_t d = 0; d < devices.size(); ++d) {
    const int32_t blk = spec.device_block[d];
    const Device& dev = *devices[d];
    for (size_t t = 0; t < dev.terminalCount(); ++t) {
      const NodeId node = dev.terminalNode(t);
      if (isGround(node)) continue;
      int32_t& p = part[static_cast<size_t>(node)];
      if (p == -2) {
        p = blk;
      } else if (p != blk) {
        p = -1;
      }
    }
    for (size_t b = 0; b < dev.branchCount(); ++b) part[next_branch++] = blk;
  }
  // Unknowns no device touches (floating nodes) go to the border.
  for (int32_t& p : part) {
    if (p == -2) p = -1;
  }
  return part;
}

EvalContext Simulator::contextFor(const std::vector<double>& x, double time) const {
  EvalContext ctx;
  ctx.x = std::span<const double>(x);
  ctx.time = time;
  ctx.dt = 0.0;
  ctx.method = IntegrationMethod::None;
  ctx.temperature = options_.temperatureK();
  ctx.gmin = options_.gmin;
  return ctx;
}

std::string Simulator::unknownName(size_t index) const {
  if (index < num_nodes_) return circuit_.nodeName(static_cast<NodeId>(index));
  return "branch#" + std::to_string(index - num_nodes_);
}

NewtonOutcome Simulator::newtonAttempt(double time, double dt, IntegrationMethod method,
                                       double source_scale, double gmin,
                                       std::vector<double>& x, const PtranAnchor* anchor) {
  MnaSystem& system = system_;
  FaultInjector* injector = options_.fault_injector.get();

  EvalContext ctx;
  ctx.time = time;
  ctx.dt = dt;
  ctx.method = method;
  ctx.temperature = options_.temperatureK();
  ctx.source_scale = source_scale;
  ctx.gmin = gmin;

  AssemblyOptions assembly_opts;
  assembly_opts.enable_bypass = options_.enable_bypass;
  assembly_opts.bypass_tol = options_.bypass_tol;

  NewtonOutcome out;
  const int trace_depth = options_.recovery.newton_trace_depth;
  std::vector<double>& x_new = x_new_;
  using Clock = std::chrono::steady_clock;
  const auto seconds_since = [](Clock::time_point t0) {
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  for (int iter = 0; iter < options_.max_newton_iter; ++iter) {
    // Cancellation point: a cancel or deadline expiry stops the run
    // within one Newton iteration (the job-control contract).
    if (options_.job_control != nullptr) {
      options_.job_control->throwIfInterrupted("newton", time);
    }
    ++out.iterations;
    if (injector != nullptr && injector->shouldFailNewton(iter, time)) {
      out.failure = NewtonFailureReason::InjectedFault;
      out.injected = injector->describeNewtonFault();
      return out;
    }
    ctx.x = std::span<const double>(x);
    // Bypass only after the settle iterations: every Newton solve
    // starts with full evaluations so fresh timesteps, committed
    // charge histories, and post-breakpoint states are re-linearized.
    assembly_opts.allow_bypass_now = iter >= options_.bypass_settle_iterations;
    {
      const auto t0 = Clock::now();
      if (sharded_ != nullptr) {
        sharded_->assemble(system, circuit_, ctx, assembly_opts);
      } else {
        assembler_.assemble(system, circuit_, ctx, assembly_opts);
      }
      phases_.assembly_sec += seconds_since(t0);
    }

    // Pseudo-transient anchor: g on every node diagonal pulling toward
    // the last converged pseudo-state. Node diagonals already exist
    // (gmin stamps), so this never grows the pattern.
    if (anchor != nullptr) {
      SparseMatrix& m = system.matrix();
      std::vector<double>& rhs = system.rhs();
      for (size_t n = 0; n < num_nodes_; ++n) {
        m.add(n, n, anchor->g);
        rhs[n] += anchor->g * (*anchor->x_ref)[n];
      }
    }

    // Fault injection happens on the assembled system — never inside
    // device stamps, which would desync the record/replay tape.
    if (injector != nullptr) {
      std::string what;
      if (injector->applyStampFault(system, circuit_, time, &what)) out.injected = what;
      if (injector->applyPivotFault(system, circuit_, time, &what)) out.injected = what;
    }

    // Residual guard: a non-finite RHS entry names the offending row
    // directly (before the solve smears it over every unknown).
    for (size_t i = 0; i < num_unknowns_; ++i) {
      if (!std::isfinite(system.rhs()[i])) {
        out.failure = NewtonFailureReason::NonFinite;
        out.worst_index = static_cast<int>(i);
        return out;
      }
    }

    try {
      // Numeric-only refactorization on the fixed MNA pattern; the first
      // call (and any pivot degradation) runs the full symbolic pass.
      const auto t_factor = Clock::now();
      if (bbd_ != nullptr) {
        bbd_->refactor(system.matrix());
        phases_.factor_sec += seconds_since(t_factor);
        const auto t_solve = Clock::now();
        x_new = system.rhs();
        bbd_->solveInPlace(x_new);
        phases_.solve_sec += seconds_since(t_solve);
      } else {
        lu_.refactor(system.matrix());
        phases_.factor_sec += seconds_since(t_factor);
        const auto t_solve = Clock::now();
        x_new = system.rhs();
        lu_.solveInPlace(x_new);
        phases_.solve_sec += seconds_since(t_solve);
      }
    } catch (const NumericalError&) {
      out.failure = NewtonFailureReason::SingularPivot;
      out.singular_index = bbd_ != nullptr ? bbd_->lastSingularColumn() : lu_.lastSingularColumn();
      return out;
    }

    // Solution guard: abort on the first NaN/Inf unknown instead of
    // iterating to the limit (or silently "converging" on NaN, whose
    // comparisons are all false).
    for (size_t i = 0; i < num_unknowns_; ++i) {
      if (!std::isfinite(x_new[i])) {
        out.failure = NewtonFailureReason::NonFinite;
        out.worst_index = static_cast<int>(i);
        return out;
      }
    }

    // Damping: scale the whole update if any component moves too far;
    // preserves the Newton direction.
    double max_delta = 0.0;
    int worst = -1;
    for (size_t i = 0; i < num_unknowns_; ++i) {
      const double delta = std::fabs(x_new[i] - x[i]);
      if (delta > max_delta) {
        max_delta = delta;
        worst = static_cast<int>(i);
      }
    }
    out.worst_delta = max_delta;
    out.worst_index = worst;
    if (trace_depth > 0) {
      if (out.trace.size() >= static_cast<size_t>(trace_depth)) {
        out.trace.erase(out.trace.begin());
      }
      out.trace.push_back({static_cast<size_t>(iter), max_delta});
    }
    double scale = 1.0;
    if (max_delta > options_.max_step_voltage) scale = options_.max_step_voltage / max_delta;

    bool converged = scale == 1.0;
    for (size_t i = 0; i < num_unknowns_; ++i) {
      const double next = x[i] + scale * (x_new[i] - x[i]);
      const double bounded = std::clamp(next, -options_.voltage_bound, options_.voltage_bound);
      const double tol = (i < num_nodes_ ? options_.vntol : options_.abstol) +
                         options_.reltol * std::max(std::fabs(bounded), std::fabs(x[i]));
      if (std::fabs(bounded - x[i]) > tol) converged = false;
      x[i] = bounded;
    }
    if (converged && iter > 0) {
      out.converged = true;
      return out;
    }
  }
  out.failure = NewtonFailureReason::IterationLimit;
  return out;
}

std::vector<double> Simulator::coldStart() const {
  std::vector<double> x(num_unknowns_, 0.0);
  if (options_.nodeset != nullptr) {
    const std::vector<double>& ns = *options_.nodeset;
    const size_t n = std::min(ns.size(), num_unknowns_);
    std::copy(ns.begin(), ns.begin() + static_cast<ptrdiff_t>(n), x.begin());
  }
  return x;
}

std::vector<double> Simulator::solveOp() {
  return solveOpInternal(coldStart(), "operatingPoint");
}

std::vector<double> Simulator::solveOp(std::vector<double> initial_guess) {
  initial_guess.resize(num_unknowns_, 0.0);
  return solveOpInternal(std::move(initial_guess), "operatingPoint");
}

std::vector<double> Simulator::solveOpAt(double time, std::vector<double> initial_guess) {
  initial_guess.resize(num_unknowns_, 0.0);
  return solveOpInternal(std::move(initial_guess), "solveOpAt", time);
}

std::vector<double> Simulator::solveOpInternal(std::vector<double> x0, const std::string& context,
                                               double time, ConvergenceDiagnostics* diag) {
  RecoveryEngine engine(
      options_.recovery, options_.gmin,
      [this, time](double scale, double gmin, std::vector<double>& x,
                   const PtranAnchor* anchor) {
        return newtonAttempt(time, 0.0, IntegrationMethod::None, scale, gmin, x, anchor);
      },
      [this](size_t i) { return unknownName(i); }, options_.fault_injector.get(),
      options_.job_control.get());
  return engine.solve(x0, context, time, diag);
}

DcSweepResult Simulator::dcSweep(VoltageSource& source, double from, double to, double step) {
  if (step <= 0.0) throw InvalidInputError("dcSweep: step must be positive");
  DcSweepResult result;
  result.node_names = circuit_.nodeNames();
  const Waveform saved = source.waveform();
  std::vector<double> x = solveOp();  // bias with original value for a warm start

  const double span = to - from;
  const int points = static_cast<int>(std::floor(std::fabs(span) / step + 0.5)) + 1;
  const double dir = span >= 0.0 ? 1.0 : -1.0;
  FaultInjector* injector = options_.fault_injector.get();
  for (int k = 0; k < points; ++k) {
    const double v = from + dir * static_cast<double>(k) * step;
    source.setWaveform(Waveform::dc(v));
    if (injector != nullptr) injector->setStage(RecoveryStage::DirectNewton);
    bool ok = newtonAttempt(0.0, 0.0, IntegrationMethod::None, 1.0, options_.gmin, x).converged;
    if (!ok) {
      // Fall back to a cold homotopy solve through the full recovery
      // ladder; a bistable cell caught mid-transition can defeat that
      // too — keep the previous point's solution and flag it rather
      // than aborting the sweep. Either way the stage record lands in
      // result.diagnostics for this point.
      const std::string context = "dcSweep v=" + std::to_string(v);
      ConvergenceDiagnostics diag;
      try {
        x = solveOpInternal(coldStart(), context, 0.0, &diag);
        ok = true;
        result.diagnostics.push_back({static_cast<size_t>(k), std::move(diag)});
      } catch (const RecoveryError& e) {
        ok = false;
        result.diagnostics.push_back({static_cast<size_t>(k), e.diagnostics()});
      }
    }
    result.sweep.push_back(v);
    result.solutions.push_back(x);
    result.converged.push_back(ok);
  }
  source.setWaveform(saved);
  return result;
}

AcResult Simulator::ac(double f_start, double f_stop, int points_per_decade) {
  if (f_start <= 0.0 || f_stop < f_start || points_per_decade < 1) {
    throw InvalidInputError("ac: bad frequency arguments");
  }
  // Linearization point.
  const std::vector<double> x_op =
      solveOpInternal(coldStart(), "ac operating point");
  EvalContext ctx = contextFor(x_op, 0.0);

  // Conductance part: the assembled Newton Jacobian at the OP.
  // One-shot system — the hashed path is the right tool here.
  MnaSystem g_sys(num_nodes_, num_unknowns_ - num_nodes_);
  assembleDirect(g_sys, circuit_, ctx);

  // Reactive part and AC excitation.
  SparseMatrix c_mat(num_unknowns_);
  ReactiveStamper reactive(c_mat, num_nodes_);
  std::vector<double> rhs_ac(num_unknowns_, 0.0);
  for (const auto& dev : circuit_.devices()) {
    dev->stampReactive(reactive, ctx);
    dev->stampAcSource(rhs_ac);
  }

  AcResult result(circuit_.nodeNames(), num_unknowns_);
  const size_t n = num_unknowns_;
  const double decades = std::log10(f_stop / f_start);
  const int total = std::max(1, static_cast<int>(std::ceil(decades * points_per_decade))) + 1;
  // Real-equivalent 2n system: the pattern is frequency-independent, so
  // build it once and refactor numerically per point.
  SparseMatrix big(2 * n);
  SparseLu lu;
  lu.setOrdering(options_.lu_ordering);
  for (int k = 0; k < total; ++k) {
    const double f =
        total == 1 ? f_start
                   : f_start * std::pow(10.0, decades * static_cast<double>(k) / (total - 1));
    const double w = 2.0 * M_PI * f;
    big.clearValues();
    for (size_t e = 0; e < g_sys.matrix().entries().size(); ++e) {
      const auto& ent = g_sys.matrix().entries()[e];
      const double v = g_sys.matrix().value(e);
      big.add(ent.row, ent.col, v);
      big.add(ent.row + n, ent.col + n, v);
    }
    for (size_t e = 0; e < c_mat.entries().size(); ++e) {
      const auto& ent = c_mat.entries()[e];
      const double v = c_mat.value(e) * w;
      big.add(ent.row, ent.col + n, -v);
      big.add(ent.row + n, ent.col, v);
    }
    std::vector<double> rhs(2 * n, 0.0);
    for (size_t i = 0; i < n; ++i) rhs[i] = rhs_ac[i];
    lu.refactor(big);
    const std::vector<double> sol = lu.solve(rhs);
    AcPoint point;
    point.freq = f;
    point.x.resize(n);
    for (size_t i = 0; i < n; ++i) point.x[i] = {sol[i], sol[i + n]};
    result.append(std::move(point));
  }
  return result;
}

NoiseResult Simulator::noise(const std::string& output_node, double f_start, double f_stop,
                             int points_per_decade) {
  if (f_start <= 0.0 || f_stop < f_start || points_per_decade < 1) {
    throw InvalidInputError("noise: bad frequency arguments");
  }
  const auto out_id = circuit_.findNode(output_node);
  if (!out_id || isGround(*out_id)) {
    throw InvalidInputError("noise: unknown output node '" + output_node + "'");
  }
  const size_t out_idx = static_cast<size_t>(*out_id);

  const std::vector<double> x_op =
      solveOpInternal(coldStart(), "noise operating point");
  EvalContext ctx = contextFor(x_op, 0.0);

  MnaSystem g_sys(num_nodes_, num_unknowns_ - num_nodes_);
  assembleDirect(g_sys, circuit_, ctx);
  SparseMatrix c_mat(num_unknowns_);
  ReactiveStamper reactive(c_mat, num_nodes_);
  std::vector<NoiseSource> sources;
  for (const auto& dev : circuit_.devices()) {
    dev->stampReactive(reactive, ctx);
    dev->collectNoiseSources(sources, ctx);
  }

  NoiseResult result;
  result.output_node = output_node;
  result.contributions.resize(sources.size());
  for (size_t s = 0; s < sources.size(); ++s) result.contributions[s].label = sources[s].label;

  const size_t n = num_unknowns_;
  const double decades = std::log10(f_stop / f_start);
  const int total = std::max(1, static_cast<int>(std::ceil(decades * points_per_decade))) + 1;
  std::vector<double> prev_psd_per_src(sources.size(), 0.0);
  double prev_f = 0.0;
  SparseMatrix big(2 * n);
  SparseLu lu;
  lu.setOrdering(options_.lu_ordering);
  for (int k = 0; k < total; ++k) {
    const double f =
        total == 1 ? f_start
                   : f_start * std::pow(10.0, decades * static_cast<double>(k) / (total - 1));
    const double w = 2.0 * M_PI * f;
    big.clearValues();
    for (size_t e = 0; e < g_sys.matrix().entries().size(); ++e) {
      const auto& ent = g_sys.matrix().entries()[e];
      const double v = g_sys.matrix().value(e);
      big.add(ent.row, ent.col, v);
      big.add(ent.row + n, ent.col + n, v);
    }
    for (size_t e = 0; e < c_mat.entries().size(); ++e) {
      const auto& ent = c_mat.entries()[e];
      const double v = c_mat.value(e) * w;
      big.add(ent.row, ent.col + n, -v);
      big.add(ent.row + n, ent.col, v);
    }
    lu.refactor(big);

    double psd_total = 0.0;
    for (size_t s = 0; s < sources.size(); ++s) {
      std::vector<double> rhs(2 * n, 0.0);
      // Unit current a -> b through the generator: leaves a, enters b.
      if (!isGround(sources[s].a)) rhs[static_cast<size_t>(sources[s].a)] -= 1.0;
      if (!isGround(sources[s].b)) rhs[static_cast<size_t>(sources[s].b)] += 1.0;
      const std::vector<double> sol = lu.solve(rhs);
      const double h2 = sol[out_idx] * sol[out_idx] + sol[out_idx + n] * sol[out_idx + n];
      const double psd = h2 * sources[s].psd(f);
      psd_total += psd;
      // Band integration (trapezoid in linear f) per source.
      if (k > 0) {
        result.contributions[s].v2 += 0.5 * (psd + prev_psd_per_src[s]) * (f - prev_f);
      }
      prev_psd_per_src[s] = psd;
    }
    result.freqs.push_back(f);
    result.output_psd.push_back(psd_total);
    prev_f = f;
  }
  for (const auto& c : result.contributions) result.total_v2 += c.v2;
  std::sort(result.contributions.begin(), result.contributions.end(),
            [](const NoiseContribution& a, const NoiseContribution& b) { return a.v2 > b.v2; });
  return result;
}

TransientResult Simulator::transient(double t_stop, double dt_max, double dt_initial) {
  if (t_stop <= 0.0 || dt_max <= 0.0) throw InvalidInputError("transient: bad time arguments");

  TransientResult result(circuit_.nodeNames(), num_unknowns_);

  // Operating point at t = 0 (surface a rescued OP as a recovery event).
  ConvergenceDiagnostics op_diag;
  std::vector<double> x = solveOpInternal(coldStart(), "transient operating point", 0.0, &op_diag);
  if (op_diag.recovered) result.recovery_events.push_back(std::move(op_diag));
  {
    EvalContext ctx = contextFor(x, 0.0);
    for (const auto& dev : circuit_.devices()) dev->startTransient(ctx);
  }
  result.append(0.0, x);

  // Breakpoints: source corners are hard barriers.
  std::vector<double> breaks;
  for (const auto& dev : circuit_.devices()) dev->collectBreakpoints(t_stop, breaks);
  breaks.push_back(t_stop);
  std::sort(breaks.begin(), breaks.end());
  breaks.erase(std::unique(breaks.begin(), breaks.end(),
                           [](double a, double b) { return std::fabs(a - b) < 1e-18; }),
               breaks.end());

  double t = 0.0;
  double dt = dt_initial > 0.0 ? dt_initial : dt_max / 100.0;
  dt = std::min(dt, dt_max);
  std::vector<double> x_prev = x;       // solution one accepted step back
  double dt_prev = 0.0;
  // Last accepted dt that the LTE controller was actively limiting
  // (grow < dt_grow_max); -1 when the circuit was coasting at dt_max.
  double dt_lte_accepted = -1.0;
  int steps_since_break = 0;
  size_t next_break = 0;
  while (next_break < breaks.size() && breaks[next_break] <= 1e-18) ++next_break;

  std::vector<double> x_try(num_unknowns_);
  while (t < t_stop - 1e-18) {
    if (options_.job_control != nullptr) {
      options_.job_control->throwIfInterrupted("transient", t);
    }
    // Clamp the step to the next breakpoint.
    bool hits_break = false;
    double dt_eff = std::min(dt, dt_max);
    if (next_break < breaks.size()) {
      const double gap = breaks[next_break] - t;
      if (dt_eff >= gap - 1e-18) {
        dt_eff = gap;
        hits_break = true;
      } else if (dt_eff > 0.5 * gap) {
        dt_eff = 0.5 * gap;  // avoid a tiny sliver step before the breakpoint
      }
    }

    const IntegrationMethod method =
        (options_.method == IntegrationMethod::BackwardEuler ||
         steps_since_break < options_.be_steps_after_breakpoint)
            ? IntegrationMethod::BackwardEuler
            : IntegrationMethod::Trapezoidal;

    FaultInjector* injector = options_.fault_injector.get();
    const auto recordStep = [this](StageAttempt& attempt, const NewtonOutcome& o) {
      attempt.newton_iterations += o.iterations;
      attempt.converged = o.converged;
      attempt.failure = o.failure;
      attempt.worst_residual = o.worst_delta;
      attempt.worst_node = o.worst_index >= 0 ? unknownName(o.worst_index) : "";
      attempt.singular_node = o.singular_index >= 0 ? unknownName(o.singular_index) : "";
      if (!o.injected.empty()) attempt.injected_fault = o.injected;
      attempt.trace = o.trace;
    };

    x_try = x;
    if (injector != nullptr) injector->setStage(RecoveryStage::TransientStep);
    const NewtonOutcome step_out =
        newtonAttempt(t + dt_eff, dt_eff, method, 1.0, options_.gmin, x_try);
    result.total_newton_iterations += step_out.iterations;
    bool converged = step_out.converged;

    if (!converged) {
      ++result.rejected_steps;
      const double dt_next = dt_eff * options_.dt_shrink;
      if (dt_next >= options_.dt_min) {
        dt = dt_next;
        continue;
      }
      // dt is exhausted: one last gmin-ladder rescue at this very step
      // (the fixed-dt analogue of the OP ladder) before declaring
      // underflow — with the full stage record either way.
      ConvergenceDiagnostics diag;
      diag.context = "transient";
      diag.time = t;
      diag.last_dt = dt_prev;
      StageAttempt& step_attempt = diag.stages.emplace_back();
      step_attempt.stage = RecoveryStage::TransientStep;
      step_attempt.rungs = 1;
      step_attempt.detail = "dt=" + std::to_string(dt_eff);
      recordStep(step_attempt, step_out);
      bool rescued = false;
      if (options_.recovery.gmin_stepping) {
        if (injector != nullptr) injector->setStage(RecoveryStage::GminStepping);
        StageAttempt& gmin_attempt = diag.stages.emplace_back();
        gmin_attempt.stage = RecoveryStage::GminStepping;
        x_try = x;
        rescued = true;
        for (const double g : RecoveryEngine::gminSchedule(options_.recovery, options_.gmin)) {
          ++gmin_attempt.rungs;
          gmin_attempt.detail = "gmin=" + std::to_string(g);
          const NewtonOutcome o = newtonAttempt(t + dt_eff, dt_eff, method, 1.0, g, x_try);
          result.total_newton_iterations += o.iterations;
          recordStep(gmin_attempt, o);
          if (!o.converged) {
            rescued = false;
            break;
          }
        }
        if (injector != nullptr) injector->setStage(RecoveryStage::TransientStep);
      }
      if (!rescued) {
        throw RecoveryError("transient: timestep underflow at t = " + std::to_string(t),
                            std::move(diag));
      }
      diag.recovered = true;
      result.recovery_events.push_back(std::move(diag));
      converged = true;
    }

    // Predictor-based local truncation error estimate.
    double err = 0.0;
    if (dt_prev > 0.0 && steps_since_break >= 1) {
      for (size_t i = 0; i < num_unknowns_; ++i) {
        const double slope = (x[i] - x_prev[i]) / dt_prev;
        const double pred = x[i] + slope * dt_eff;
        const double tol = options_.tran_vntol +
                           options_.tran_reltol * std::max(std::fabs(x_try[i]), std::fabs(x[i]));
        err = std::max(err, std::fabs(x_try[i] - pred) / tol);
      }
    }

    if (err > 8.0 && dt_eff > 16.0 * options_.dt_min) {
      // Reject: the step was too aggressive.
      ++result.rejected_steps;
      dt = dt_eff * options_.dt_shrink;
      continue;
    }

    // Accept.
    const double t_new = t + dt_eff;
    {
      EvalContext ctx;
      ctx.x = std::span<const double>(x_try);
      ctx.time = t_new;
      ctx.dt = dt_eff;
      ctx.method = method;
      ctx.temperature = options_.temperatureK();
      ctx.gmin = options_.gmin;
      for (const auto& dev : circuit_.devices()) dev->acceptStep(ctx);
    }
    x_prev = x;
    dt_prev = dt_eff;
    x = x_try;
    t = t_new;
    result.append(t, x);

    if (hits_break) {
      ++next_break;
      steps_since_break = 0;
      // Restart after an edge: cautious (dt_max / 100) by default. But
      // when the LTE controller was actively limiting dt before the
      // edge, its last accepted step is a proven-safe scale for this
      // circuit's dynamics — resuming there avoids re-growing from the
      // hard reset over dozens of accepted steps. The edge step itself
      // (dt_eff, clamped to the breakpoint gap) can be an arbitrarily
      // small sliver and says nothing about the circuit.
      double dt_restart = std::min(dt_eff, dt_max / 100.0);
      if (dt_lte_accepted > dt_restart) dt_restart = std::min(dt_lte_accepted, dt_max);
      dt = dt_restart;
      dt_lte_accepted = -1.0;
    } else {
      ++steps_since_break;
      const double grow = err > 1e-9 ? std::min(options_.dt_grow_max, 0.9 / std::sqrt(err))
                                     : options_.dt_grow_max;
      dt_lte_accepted = grow < options_.dt_grow_max ? dt_eff : -1.0;
      dt = dt_eff * std::max(0.5, grow);
    }
  }
  return result;
}

}  // namespace vls
