// Small-signal noise analysis. Each device registers its physical noise
// generators (thermal 4kT/R and 4kT*gamma*gm, flicker KF/f, shot 2qI) as
// current sources across node pairs; for every frequency point the AC
// system is factored once and solved per generator to get the transfer
// to the output node. Reported: output noise PSD, per-device
// contributions, and the band-integrated RMS.
#pragma once

#include <string>
#include <vector>

#include "circuit/device.hpp"  // NoiseSource
#include "circuit/node.hpp"

namespace vls {

struct NoiseContribution {
  std::string label;
  double v2 = 0.0;  ///< band-integrated contribution at the output [V^2]
};

struct NoiseResult {
  std::string output_node;
  std::vector<double> freqs;
  std::vector<double> output_psd;  ///< [V^2/Hz] at each frequency
  std::vector<NoiseContribution> contributions;  ///< sorted, largest first
  double total_v2 = 0.0;   ///< band-integrated output noise power [V^2]
  double rms() const;      ///< sqrt(total_v2) [V]
};

}  // namespace vls
