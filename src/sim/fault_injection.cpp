#include "sim/fault_injection.hpp"

#include <sstream>

#include "circuit/circuit.hpp"
#include "circuit/ensemble_assembly.hpp"
#include "circuit/mna.hpp"

namespace vls {

namespace {

std::string formatValue(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

bool FaultInjector::armed(double time) const {
  if (time < spec_.arm_time) return false;
  if ((spec_.stage_mask & recoveryStageBit(stage_)) == 0) return false;
  if (spec_.max_fires >= 0 && fires_ >= static_cast<size_t>(spec_.max_fires)) return false;
  return true;
}

bool FaultInjector::shouldFailNewton(int iteration, double time) {
  if (spec_.fail_newton_at_iteration < 0 || iteration != spec_.fail_newton_at_iteration) {
    return false;
  }
  if (!armed(time)) return false;
  consumeFire();
  return true;
}

std::string FaultInjector::describeNewtonFault() const {
  if (spec_.fail_newton_at_iteration < 0) return "";
  return "injected Newton failure at iteration " +
         std::to_string(spec_.fail_newton_at_iteration);
}

size_t FaultInjector::stampRow(const Circuit& circuit) const {
  const Device* dev = circuit.findDevice(spec_.nan_stamp_device);
  if (dev == nullptr) {
    throw InvalidInputError("FaultInjector: unknown device '" + spec_.nan_stamp_device + "'");
  }
  for (size_t t = 0; t < dev->terminalCount(); ++t) {
    const NodeId n = dev->terminalNode(t);
    if (!isGround(n)) return static_cast<size_t>(n);
  }
  throw InvalidInputError("FaultInjector: device '" + spec_.nan_stamp_device +
                          "' has only ground terminals");
}

size_t FaultInjector::pivotColumn(const Circuit& circuit) const {
  const auto id = circuit.findNode(spec_.zero_pivot_node);
  if (!id || isGround(*id)) {
    throw InvalidInputError("FaultInjector: unknown pivot node '" + spec_.zero_pivot_node + "'");
  }
  return static_cast<size_t>(*id);
}

bool FaultInjector::applyStampFault(MnaSystem& system, const Circuit& circuit, double time,
                                    std::string* what) {
  if (spec_.nan_stamp_device.empty() || !armed(time)) return false;
  const size_t row = stampRow(circuit);
  system.rhs()[row] += spec_.stamp_value;
  consumeFire();
  if (what != nullptr) {
    *what = "injected " + formatValue(spec_.stamp_value) + " stamp from device '" +
            spec_.nan_stamp_device + "' at node '" + circuit.nodeName(static_cast<NodeId>(row)) +
            "'";
  }
  return true;
}

bool FaultInjector::applyPivotFault(MnaSystem& system, const Circuit& circuit, double time,
                                    std::string* what) {
  if (spec_.zero_pivot_node.empty() || !armed(time)) return false;
  const size_t col = pivotColumn(circuit);
  SparseMatrix& m = system.matrix();
  const auto& entries = m.entries();
  for (size_t h = 0; h < entries.size(); ++h) {
    if (entries[h].col == col) m.setAt(h, 0.0);
  }
  consumeFire();
  if (what != nullptr) {
    *what = "injected zero pivot at node '" + spec_.zero_pivot_node + "'";
  }
  return true;
}

bool FaultInjector::applyLaneStampFault(EnsembleSystem& system, const Circuit& circuit,
                                        double time, std::string* what) {
  if (spec_.nan_stamp_device.empty() || !armed(time)) return false;
  const size_t row = stampRow(circuit);
  double* rhs = system.rhsLanes(row);
  for (size_t l = 0; l < system.lanes(); ++l) {
    if (laneAffected(l)) rhs[l] += spec_.stamp_value;
  }
  consumeFire();
  if (what != nullptr) {
    *what = "injected " + formatValue(spec_.stamp_value) + " stamp from device '" +
            spec_.nan_stamp_device + "' at node '" + circuit.nodeName(static_cast<NodeId>(row)) +
            "'";
  }
  return true;
}

bool FaultInjector::applyLanePivotFault(EnsembleSystem& system, const Circuit& circuit,
                                        double time, std::string* what) {
  if (spec_.zero_pivot_node.empty() || !armed(time)) return false;
  const size_t col = pivotColumn(circuit);
  LaneMatrix& m = system.matrix();
  const auto& entries = m.entries();
  for (size_t h = 0; h < entries.size(); ++h) {
    if (entries[h].col != col) continue;
    double* vals = m.laneValues(h);
    for (size_t l = 0; l < system.lanes(); ++l) {
      if (laneAffected(l)) vals[l] = 0.0;
    }
  }
  consumeFire();
  if (what != nullptr) {
    *what = "injected zero pivot at node '" + spec_.zero_pivot_node + "'";
  }
  return true;
}

}  // namespace vls
