// Deterministic fault injection for the convergence-recovery engine.
// A FaultInjector, installed through SimOptions::fault_injector, can
//   * poison a named device's stamp with NaN/Inf (the non-finite
//     guards must abort the rung and name the node),
//   * fail a Newton attempt at iteration N (forcing the ladder to
//     escalate to the next rung),
//   * zero a chosen node's matrix column (forcing a singular pivot the
//     LU layer must attribute to that node).
// Faults are armed by simulation time, by recovery stage (so a fault
// can fire only inside, say, the gmin rung), and by a total firing
// budget — which is what makes "recoverable" scenarios expressible: a
// fault with max_fires=1 kills the direct-Newton rung once and the
// gmin rung then succeeds cleanly. Every ladder rung and diagnostic
// field is thereby testable instead of waiting for a pathological
// circuit to exercise it in production.
//
// An injector is mutable, single-simulation state: install a fresh
// instance per run (the Monte-Carlo driver does this per sample, and
// gives the ensemble scalar-re-run fallback its own fresh copy so the
// scalar and ensemble paths produce identical failure records).
#pragma once

#include <limits>
#include <string>

#include "sim/diagnostics.hpp"

namespace vls {

class Circuit;
class MnaSystem;
class EnsembleSystem;

struct FaultSpec {
  // --- what to break (set one or more) -------------------------------
  /// Poison this device's stamp: `stamp_value` is added to the RHS row
  /// of the device's first non-ground terminal after assembly.
  std::string nan_stamp_device;
  /// Value forced by nan_stamp_device (defaults to quiet NaN; set to
  /// +/-Inf to exercise the Inf guards).
  double stamp_value = std::numeric_limits<double>::quiet_NaN();
  /// Abort the Newton attempt at this (0-based) iteration; -1 disables.
  int fail_newton_at_iteration = -1;
  /// Zero this node's matrix column after assembly, forcing the LU
  /// factorization into a singular pivot at that node.
  std::string zero_pivot_node;

  // --- when it is armed ----------------------------------------------
  /// Fire only for solves at time >= arm_time (mid-transient faults).
  double arm_time = 0.0;
  /// Fire only in recovery stages whose recoveryStageBit() is set.
  unsigned stage_mask = kAllRecoveryStages;
  /// Total firings before the fault disarms; -1 = unlimited. A finite
  /// budget makes the fault recoverable by a later ladder rung.
  int max_fires = -1;
  /// Ensemble runs: poison only this lane (-1 = every lane). The
  /// scalar engine ignores this field.
  int lane = -1;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec) : spec_(std::move(spec)) {}

  const FaultSpec& spec() const { return spec_; }
  size_t fires() const { return fires_; }

  /// The recovery engine (and the transient loop) report the active
  /// ladder rung here; stage_mask gates firing on it.
  void setStage(RecoveryStage stage) { stage_ = stage; }
  RecoveryStage stage() const { return stage_; }

  /// Newton-iteration fault: true when the current attempt must be
  /// aborted at `iteration` (consumes one firing).
  bool shouldFailNewton(int iteration, double time);
  /// Human-readable description of the Newton fault ("" if disabled).
  std::string describeNewtonFault() const;

  /// Scalar stamp/pivot faults, applied to the assembled system.
  /// Append a description to *what and return true when fired.
  bool applyStampFault(MnaSystem& system, const Circuit& circuit, double time,
                       std::string* what);
  bool applyPivotFault(MnaSystem& system, const Circuit& circuit, double time,
                       std::string* what);

  /// Lane-aware variants for the ensemble engine: only lanes selected
  /// by spec().lane are poisoned.
  bool applyLaneStampFault(EnsembleSystem& system, const Circuit& circuit, double time,
                           std::string* what);
  bool applyLanePivotFault(EnsembleSystem& system, const Circuit& circuit, double time,
                           std::string* what);

  /// Whether lane l is a target of this injector (ensemble paths).
  bool laneAffected(size_t l) const {
    return spec_.lane < 0 || static_cast<size_t>(spec_.lane) == l;
  }

 private:
  bool armed(double time) const;
  void consumeFire() { ++fires_; }
  /// Resolve the poisoned device's RHS row (first non-ground terminal).
  size_t stampRow(const Circuit& circuit) const;
  /// Resolve the zeroed pivot's unknown index.
  size_t pivotColumn(const Circuit& circuit) const;

  FaultSpec spec_;
  RecoveryStage stage_ = RecoveryStage::DirectNewton;
  size_t fires_ = 0;
};

}  // namespace vls
