#include "sim/result.hpp"

#include "base/error.hpp"

namespace vls {

TransientResult::TransientResult(std::vector<std::string> node_names, size_t num_unknowns)
    : node_names_(std::move(node_names)), num_unknowns_(num_unknowns) {
  for (size_t i = 0; i < node_names_.size(); ++i) node_index_.emplace(node_names_[i], i);
}

void TransientResult::append(double time, const std::vector<double>& x) {
  time_.push_back(time);
  data_.push_back(x);
}

Signal TransientResult::node(const std::string& name) const {
  Signal s;
  s.time = time_;
  if (name == "0") {
    s.value.assign(time_.size(), 0.0);
    return s;
  }
  auto it = node_index_.find(name);
  if (it == node_index_.end()) {
    throw InvalidInputError("TransientResult::node: unknown node '" + name + "'");
  }
  s.value.reserve(time_.size());
  for (const auto& x : data_) s.value.push_back(x[it->second]);
  return s;
}

Signal TransientResult::unknown(size_t index) const {
  if (index >= num_unknowns_) throw InvalidInputError("TransientResult::unknown: bad index");
  Signal s;
  s.time = time_;
  s.value.reserve(time_.size());
  for (const auto& x : data_) s.value.push_back(x[index]);
  return s;
}

bool DcSweepResult::allConverged() const {
  for (bool ok : converged) {
    if (!ok) return false;
  }
  return true;
}

std::vector<double> DcSweepResult::node(const std::string& name) const {
  if (name == "0") return std::vector<double>(sweep.size(), 0.0);
  for (size_t i = 0; i < node_names.size(); ++i) {
    if (node_names[i] == name) {
      std::vector<double> out;
      out.reserve(solutions.size());
      for (const auto& x : solutions) out.push_back(x[i]);
      return out;
    }
  }
  throw InvalidInputError("DcSweepResult::node: unknown node '" + name + "'");
}

}  // namespace vls
