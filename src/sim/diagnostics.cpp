#include "sim/diagnostics.hpp"

#include <sstream>

namespace vls {

const char* recoveryStageName(RecoveryStage stage) {
  switch (stage) {
    case RecoveryStage::DirectNewton: return "direct-newton";
    case RecoveryStage::GminStepping: return "gmin-stepping";
    case RecoveryStage::SourceStepping: return "source-stepping";
    case RecoveryStage::PseudoTransient: return "pseudo-transient";
    case RecoveryStage::TransientStep: return "transient-step";
  }
  return "?";
}

const char* newtonFailureReasonName(NewtonFailureReason reason) {
  switch (reason) {
    case NewtonFailureReason::None: return "none";
    case NewtonFailureReason::IterationLimit: return "iteration-limit";
    case NewtonFailureReason::NonFinite: return "non-finite";
    case NewtonFailureReason::SingularPivot: return "singular-pivot";
    case NewtonFailureReason::InjectedFault: return "injected-fault";
  }
  return "?";
}

std::string ConvergenceDiagnostics::worstNode() const {
  const StageAttempt* a = lastAttempt();
  if (a == nullptr) return "";
  if (!a->worst_node.empty()) return a->worst_node;
  return a->singular_node;
}

std::string ConvergenceDiagnostics::lastStageName() const {
  const StageAttempt* a = lastAttempt();
  return a == nullptr ? "" : recoveryStageName(a->stage);
}

std::string ConvergenceDiagnostics::summary() const {
  std::ostringstream os;
  os << context << " at t=" << time;
  if (last_dt > 0.0) os << " (last good dt=" << last_dt << ")";
  os << (recovered ? ": recovered" : ": failed") << "\n";
  for (const StageAttempt& a : stages) {
    os << "  [" << recoveryStageName(a.stage) << "] "
       << (a.converged ? "converged" : newtonFailureReasonName(a.failure));
    if (a.rungs > 0) os << ", rungs=" << a.rungs;
    os << ", newton_iters=" << a.newton_iterations;
    if (!a.detail.empty()) os << ", " << a.detail;
    if (a.worst_residual > 0.0) os << ", worst_residual=" << a.worst_residual;
    if (!a.worst_node.empty()) os << ", worst_node='" << a.worst_node << "'";
    if (!a.singular_node.empty()) os << ", singular_pivot_node='" << a.singular_node << "'";
    if (!a.injected_fault.empty()) os << ", fault=" << a.injected_fault;
    os << "\n";
  }
  return os.str();
}

RecoveryError::RecoveryError(const std::string& message, ConvergenceDiagnostics diagnostics)
    : ConvergenceError(message + "\n" + diagnostics.summary()),
      diagnostics_(std::move(diagnostics)) {}

}  // namespace vls
