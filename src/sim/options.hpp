// Simulator tolerance and control knobs (SPICE-equivalent names where
// they exist).
#pragma once

#include "circuit/device.hpp"

namespace vls {

struct SimOptions {
  // Newton iteration.
  double reltol = 1e-3;       ///< relative convergence tolerance
  double vntol = 1e-6;        ///< absolute node-voltage tolerance [V]
  double abstol = 1e-12;      ///< absolute branch-current tolerance [A]
  double gmin = 1e-12;        ///< node-to-ground convergence conductance [S]
  int max_newton_iter = 120;  ///< iterations before declaring failure
  double max_step_voltage = 0.4;  ///< per-iteration Newton damping clamp [V]
  double voltage_bound = 20.0;    ///< hard |v| clamp [V]

  // SPICE-style device bypass (assembly fast path). Off by default: a
  // device whose terminal voltages moved less than bypass_tol since
  // its last linearization replays its recorded stamp values instead
  // of re-evaluating the model. The first bypass_settle_iterations of
  // every Newton solve always re-evaluate, so new timesteps, fresh
  // charge histories, and post-breakpoint states are never bypassed.
  bool enable_bypass = false;
  double bypass_tol = 1e-7;         ///< terminal-voltage move threshold [V]
  int bypass_settle_iterations = 2; ///< forced full evaluations per solve

  // Homotopy fallbacks for the operating point.
  int gmin_steps = 10;
  int source_steps = 20;

  // Transient control.
  IntegrationMethod method = IntegrationMethod::Trapezoidal;
  double tran_reltol = 2e-3;  ///< LTE relative tolerance
  double tran_vntol = 50e-6;  ///< LTE absolute tolerance [V]
  double dt_min = 1e-18;      ///< give up below this step [s]
  double dt_shrink = 0.4;     ///< rejection shrink factor
  double dt_grow_max = 2.0;   ///< max growth per accepted step
  int be_steps_after_breakpoint = 2;  ///< BE damping steps after discontinuities

  // Environment.
  double temperature_c = 27.0;

  double temperatureK() const { return temperature_c + 273.15; }
};

}  // namespace vls
