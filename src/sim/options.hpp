// Simulator tolerance and control knobs (SPICE-equivalent names where
// they exist).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "base/job_control.hpp"
#include "circuit/device.hpp"
#include "numeric/ordering.hpp"

namespace vls {

class FaultInjector;

/// Partition for the bordered-block-diagonal solve: device_block[d]
/// names the diagonal block of device d (index into
/// Circuit::devices()), or -1 to pin the device's unknowns to the
/// border. The simulator derives the per-unknown partition from this:
/// a node interior to a block iff every device touching it is in that
/// block, border otherwise; branch unknowns follow their device. Cell
/// generators that know the island structure (src/cells/fabric) emit
/// this directly.
struct PartitionSpec {
  std::vector<int32_t> device_block;
  int32_t num_blocks = 0;
};

/// How SimOptions::partition routes the Newton linear solve. Auto picks
/// flat ordered LU vs the bordered-block-diagonal solver from the block
/// count (recommendPartitionedSolve in numeric/lu_bbd.hpp): small
/// fabrics solve faster flat, the BBD Schur overhead only pays off once
/// there are enough blocks to amortize and parallelize. The partition
/// itself stays available to the sharded assembler in every mode.
enum class PartitionUse : uint8_t { Auto, ForceBbd, ForceFlat };

/// Controls the convergence-recovery escalation ladder shared by the
/// scalar and ensemble engines (see sim/recovery.hpp). Stages run in
/// order — direct Newton, gmin stepping, source stepping, pseudo-
/// transient continuation — each only when the previous one failed.
struct RecoveryPolicy {
  bool gmin_stepping = true;
  bool source_stepping = true;
  bool pseudo_transient = true;

  // Gmin stepping: start at gmin_start, relax by 10x per rung down to
  // the operating gmin, at most gmin_steps rungs.
  int gmin_steps = 10;
  double gmin_start = 1e-2;

  // Source stepping: ramp source_scale over source_steps equal steps.
  int source_steps = 20;

  // Pseudo-transient continuation: an artificial conductance g anchors
  // every node to the last converged point; g relaxes by ptran_grow per
  // converged pseudo-step (growing the pseudo-timestep) until below
  // ptran_g_min, then a plain Newton polish finishes. A failed step
  // tightens g by ptran_shrink; exceeding ptran_g_abort gives up.
  int ptran_max_steps = 200;
  double ptran_g_start = 1.0;     ///< initial anchor conductance [S]
  double ptran_g_min = 1e-9;      ///< anchor below which ptran hands to Newton
  double ptran_grow = 4.0;        ///< anchor relaxation per converged step
  double ptran_shrink = 8.0;      ///< anchor tightening per failed step
  double ptran_g_abort = 1e6;     ///< give up when g grows past this [S]

  /// Newton residual-trace depth kept per stage attempt (most recent
  /// iterations); 0 disables tracing.
  int newton_trace_depth = 8;
};

struct SimOptions {
  // Newton iteration.
  double reltol = 1e-3;       ///< relative convergence tolerance
  double vntol = 1e-6;        ///< absolute node-voltage tolerance [V]
  double abstol = 1e-12;      ///< absolute branch-current tolerance [A]
  double gmin = 1e-12;        ///< node-to-ground convergence conductance [S]
  int max_newton_iter = 120;  ///< iterations before declaring failure
  double max_step_voltage = 0.4;  ///< per-iteration Newton damping clamp [V]
  double voltage_bound = 20.0;    ///< hard |v| clamp [V]

  // SPICE-style device bypass (assembly fast path). Off by default: a
  // device whose terminal voltages moved less than bypass_tol since
  // its last linearization replays its recorded stamp values instead
  // of re-evaluating the model. The first bypass_settle_iterations of
  // every Newton solve always re-evaluate, so new timesteps, fresh
  // charge histories, and post-breakpoint states are never bypassed.
  bool enable_bypass = false;
  double bypass_tol = 1e-7;         ///< terminal-voltage move threshold [V]
  int bypass_settle_iterations = 2; ///< forced full evaluations per solve

  // Sparse-LU column pre-ordering. Natural keeps the historical
  // elimination order; MinDegree enables the fill-reducing ordering
  // (src/numeric/ordering) — solutions agree to within pivot-tolerance
  // semantics, and singular-pivot diagnostics stay in original unknown
  // ids either way. Essential at fabric scale, harmless on cells.
  LuOrdering lu_ordering = LuOrdering::Natural;

  // Partitioned bordered-block-diagonal solve (src/numeric/lu_bbd).
  // When set, Newton systems factor per-block in parallel coupled by a
  // Schur complement over the border unknowns; null solves flat.
  std::shared_ptr<const PartitionSpec> partition;
  // Per-block latency for the BBD path: blocks whose matrix values are
  // unchanged since the previous refactor keep their factors (quiet
  // islands on the bypass tape cost nothing).
  bool bbd_latency = true;
  // Flat-vs-BBD routing of the partition (see PartitionUse).
  PartitionUse partition_use = PartitionUse::Auto;

  // Parallel sharded assembly (circuit/assembly ShardedAssembler):
  // devices are sharded by the partition's island labels (hash fallback
  // without one), linearized on parallelForChunked workers with
  // same-model MOSFETs batched through the SoA lane kernels, and
  // applied with a deterministic border reduction — results are
  // bit-identical across every VLS_THREADS / assembly_threads /
  // device_batch_width setting, but differ from serial assembly at the
  // ~1e-7 relative level (lane kernels vs scalar exp). Off by default.
  bool parallel_assembly = false;
  int assembly_threads = 0;     ///< workers; 0 = the VLS_THREADS pool width
  int device_batch_width = 8;   ///< MOSFETs per lane-kernel pass [1, kMaxLanes]
  int assembly_shards = 0;      ///< hash-fallback shard count; 0 = auto

  // SPICE-style .nodeset: initial guess for every cold operating-point
  // solve (solveOp, the transient/ac/noise OP, dcSweep homotopy
  // restarts), indexed by unknown. Shorter vectors are zero-padded, so
  // a node-only nodeset (branch currents start at 0) is fine. Deeply
  // cascaded fabrics (src/analysis/fabric_bootstrap) need this: a cold
  // zero start defeats the whole recovery ladder past ~10 islands.
  std::shared_ptr<const std::vector<double>> nodeset;

  // Convergence-recovery escalation ladder (gmin / source stepping,
  // pseudo-transient continuation) shared by every solve entry point.
  RecoveryPolicy recovery;

  // Deterministic fault injection (tests): when set, the installed
  // injector may poison stamps, abort Newton attempts, or zero pivots
  // according to its FaultSpec. Null in production runs. Shared_ptr so
  // SimOptions stays copyable; install a fresh injector per simulation
  // (the injector carries mutable firing state).
  std::shared_ptr<FaultInjector> fault_injector;

  // Cooperative cancellation / wall-clock deadline (base/job_control).
  // When set, the engines check it at the top of every Newton
  // iteration, every transient time step and every recovery ladder
  // stage; a cancel or deadline expiry throws JobInterrupted (which is
  // NOT a vls::Error — per-unit failure isolation never swallows it).
  // Null in unbudgeted runs.
  std::shared_ptr<JobControl> job_control;

  // Transient control.
  IntegrationMethod method = IntegrationMethod::Trapezoidal;
  double tran_reltol = 2e-3;  ///< LTE relative tolerance
  double tran_vntol = 50e-6;  ///< LTE absolute tolerance [V]
  double dt_min = 1e-18;      ///< give up below this step [s]
  double dt_shrink = 0.4;     ///< rejection shrink factor
  double dt_grow_max = 2.0;   ///< max growth per accepted step
  int be_steps_after_breakpoint = 2;  ///< BE damping steps after discontinuities

  // Environment.
  double temperature_c = 27.0;

  double temperatureK() const { return temperature_c + 273.15; }
};

}  // namespace vls
