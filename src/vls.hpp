// Umbrella header: everything a downstream user needs to build and
// characterize voltage-level-shifter circuits with this library.
//
//   #include "vls.hpp"
//
// Layered structure (each header can also be included individually):
//   base/     units, errors, logging
//   numeric/  linear algebra, AD, RNG, statistics
//   circuit/  nodes, devices, MNA
//   devices/  R/C/L, sources, diode, BJT, MOSFET + model cards
//   sim/      OP, DC sweep, transient, AC
//   cells/    gates, the SS-TVS, all comparison shifters, interconnect
//   analysis/ measurements, harness, Monte-Carlo, corners, sweeps, area
//   io/       netlist parser/writer, CSV/JSON/Liberty, tables
#pragma once

#include "base/error.hpp"
#include "base/logging.hpp"
#include "base/units.hpp"

#include "numeric/dual.hpp"
#include "numeric/interpolation.hpp"
#include "numeric/rng.hpp"
#include "numeric/statistics.hpp"

#include "circuit/circuit.hpp"

#include "devices/bjt.hpp"
#include "devices/diode.hpp"
#include "devices/model_library.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"

#include "sim/simulator.hpp"

#include "cells/gates.hpp"
#include "cells/interconnect.hpp"
#include "cells/lcff.hpp"
#include "cells/level_shifters.hpp"
#include "cells/related_work.hpp"
#include "cells/sstvs.hpp"

#include "analysis/area.hpp"
#include "analysis/corners.hpp"
#include "analysis/measure.hpp"
#include "analysis/monte_carlo.hpp"
#include "analysis/routing_cost.hpp"
#include "analysis/sensitivity.hpp"
#include "analysis/static_margins.hpp"
#include "analysis/shifter_harness.hpp"
#include "analysis/sweep.hpp"

#include "io/ascii_plot.hpp"
#include "io/csv.hpp"
#include "io/json_writer.hpp"
#include "io/liberty_writer.hpp"
#include "io/netlist_parser.hpp"
#include "io/netlist_writer.hpp"
#include "io/table.hpp"
