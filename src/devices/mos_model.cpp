#include "devices/mos_model.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "numeric/lanes.hpp"

namespace vls {

MosOperating resolveOperating(const MosModelCard& card, const MosGeometry& geom,
                              double temperature) {
  const double w_eff = geom.w + geom.delta_w;
  const double l_eff = geom.l + geom.delta_l - 2.0 * card.dl;
  if (w_eff <= 0.0 || l_eff <= 0.0) {
    throw InvalidInputError("MOSFET geometry non-positive after variation");
  }
  MosOperating op;
  op.ut = thermalVoltage(temperature);
  op.vt = card.vt0 + geom.delta_vt - card.vt_tc * (temperature - card.tnom);
  op.beta = card.kp * std::pow(temperature / card.tnom, card.mu_exp) * (w_eff / l_eff);
  op.n = card.n_slope;
  return op;
}

void mosCoreCurrentLanes(const MosModelCard& card, size_t lanes, double ut, double n,
                         const double* vt, const double* beta, const double* vg,
                         const double* vd, const double* vs, double* ids, double* gg,
                         double* gd, double* gs) {
  const double sd = card.sigma_dibl;
  const double theta = card.theta;
  const double lambda = card.lambda;
  const double inv_2ut = 1.0 / (2.0 * ut);
  const double nut = n * ut;
  const double inv_nut = 1.0 / nut;
  // Partials of the forward/reverse softplus arguments w.r.t. the
  // normalized terminal voltages are lane-invariant:
  //   u_f = (vp - vs) / 2ut,  u_r = (vp - vd) / 2ut,
  //   vp  = (vg - vt + sd*(vd - vs)) / n.
  const double duf_g = inv_2ut / n;
  const double duf_d = sd * inv_2ut / n;
  const double duf_s = (-sd / n - 1.0) * inv_2ut;
  const double dur_g = inv_2ut / n;
  const double dur_d = (sd / n - 1.0) * inv_2ut;
  const double dur_s = -sd * inv_2ut / n;
#pragma omp simd
  for (size_t l = 0; l < lanes; ++l) {
    const double vp = (vg[l] - vt[l] + sd * (vd[l] - vs[l])) / n;
    const SoftplusVD f = fastSoftplus((vp - vs[l]) * inv_2ut);
    const SoftplusVD r = fastSoftplus((vp - vd[l]) * inv_2ut);
    const double ff = f.v * f.v;
    const double fr = r.v * r.v;
    const double is2 = 2.0 * n * beta[l] * ut * ut;
    const double i0 = is2 * (ff - fr);
    const double cf = 2.0 * f.v * f.d;  // d(ff)/d(u_f)
    const double cr = 2.0 * r.v * r.d;

    const double denom = 1.0 + theta * nut * (f.v + r.v);
    const double inv_den = 1.0 / denom;
    // d(denom) = theta * nut * (f.d * du_f + r.d * du_r)
    const double cden = theta * nut;

    // Channel-length modulation: sqrt(f_max) is the softplus value of
    // the higher-inverted side (ff = softplus^2).
    const bool use_f = ff > fr;
    const double sp_m = use_f ? f.v : r.v;
    const double dsp_g = use_f ? f.d * duf_g : r.d * dur_g;
    const double dsp_d = use_f ? f.d * duf_d : r.d * dur_d;
    const double dsp_s = use_f ? f.d * duf_s : r.d * dur_s;
    const double vds = vd[l] - vs[l];
    const double vabs = std::sqrt(vds * vds + 1e-8);
    const double dvabs_d = vds / vabs;
    const double vdsat = 2.0 * nut * sp_m + 4.0 * nut;
    const SoftplusVD spa = fastSoftplus((vabs - vdsat) * inv_nut);
    const double m_clm = 1.0 + lambda * nut * spa.v;
    // d(m_clm) = lambda * spa.d * (d(vabs) - 2*nut*d(sp_m))
    const double two_nut = 2.0 * nut;
    const double dmc_g = lambda * spa.d * (-two_nut * dsp_g);
    const double dmc_d = lambda * spa.d * (dvabs_d - two_nut * dsp_d);
    const double dmc_s = lambda * spa.d * (-dvabs_d - two_nut * dsp_s);

    const double i_val = i0 * m_clm * inv_den;
    ids[l] = i_val;
    gg[l] = (is2 * (cf * duf_g - cr * dur_g) * m_clm + i0 * dmc_g) * inv_den -
            i_val * cden * (f.d * duf_g + r.d * dur_g) * inv_den;
    gd[l] = (is2 * (cf * duf_d - cr * dur_d) * m_clm + i0 * dmc_d) * inv_den -
            i_val * cden * (f.d * duf_d + r.d * dur_d) * inv_den;
    gs[l] = (is2 * (cf * duf_s - cr * dur_s) * m_clm + i0 * dmc_s) * inv_den -
            i_val * cden * (f.d * duf_s + r.d * dur_s) * inv_den;
  }
}

void junctionCurrentLanes(size_t lanes, const double* i_sat, double n_j, double ut,
                          const double* v, double* i, double* g) {
  const double u_lim = 40.0;
  const double e_lim = std::exp(u_lim);
  const double inv_nut = 1.0 / (n_j * ut);
#pragma omp simd
  for (size_t l = 0; l < lanes; ++l) {
    const double u = v[l] * inv_nut;
    const double e = fastExp(u < u_lim ? u : u_lim);
    // Above the limit: value e_lim*(1 + (u - u_lim)) - 1, slope e_lim.
    const double i_exp = i_sat[l] * (e - 1.0);
    const double i_lin = i_sat[l] * (e_lim * (1.0 + (u - u_lim)) - 1.0);
    i[l] = u > u_lim ? i_lin : i_exp;
    g[l] = i_sat[l] * (u > u_lim ? e_lim : e) * inv_nut;
  }
}

}  // namespace vls
