#include "devices/mos_model.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"

namespace vls {

MosOperating resolveOperating(const MosModelCard& card, const MosGeometry& geom,
                              double temperature) {
  const double w_eff = geom.w + geom.delta_w;
  const double l_eff = geom.l + geom.delta_l - 2.0 * card.dl;
  if (w_eff <= 0.0 || l_eff <= 0.0) {
    throw InvalidInputError("MOSFET geometry non-positive after variation");
  }
  MosOperating op;
  op.ut = thermalVoltage(temperature);
  op.vt = card.vt0 + geom.delta_vt - card.vt_tc * (temperature - card.tnom);
  op.beta = card.kp * std::pow(temperature / card.tnom, card.mu_exp) * (w_eff / l_eff);
  op.n = card.n_slope;
  return op;
}

}  // namespace vls
