// Standalone junction diode (exponential DC + depletion capacitance).
#pragma once

#include <memory>

#include "circuit/device.hpp"

namespace vls {

struct DiodeParams {
  double i_sat = 1e-14;   ///< saturation current [A]
  double n_ideal = 1.0;   ///< ideality factor
  double cj0 = 0.0;       ///< zero-bias junction capacitance [F]
  double pb = 0.8;        ///< built-in potential [V]
  double mj = 0.5;        ///< grading coefficient
  double r_series = 0.0;  ///< series resistance folded into the stamp via gmin-safe limit
};

class Diode : public Device {
 public:
  Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  bool supportsBypass() const override { return true; }
  void startTransient(const EvalContext& ctx) override;
  void acceptStep(const EvalContext& ctx) override;
  bool supportsLanes() const override { return true; }
  std::unique_ptr<DeviceLaneState> createLaneState(size_t lanes) const override;
  void stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                  DeviceLaneState* state) override;
  void startTransientLanes(const LaneContext& ctx, DeviceLaneState* state) override;
  void acceptStepLanes(const LaneContext& ctx, DeviceLaneState* state) override;
  void stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) override;
  void collectNoiseSources(std::vector<NoiseSource>& sources,
                           const EvalContext& ctx) const override;
  size_t terminalCount() const override { return 2; }
  NodeId terminalNode(size_t t) const override { return t == 0 ? anode_ : cathode_; }
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

 private:
  double capAt(double v) const;

  NodeId anode_;
  NodeId cathode_;
  DiodeParams params_;
  ChargeHistory cap_hist_;
  double v_prev_ = 0.0;
};

}  // namespace vls
