#include "devices/diode.hpp"

#include <algorithm>
#include <cmath>

#include "base/units.hpp"
#include "circuit/ensemble_assembly.hpp"
#include "circuit/mna.hpp"
#include "devices/mos_model.hpp"
#include "numeric/lanes.hpp"

namespace vls {

namespace {

/// Per-lane depletion-cap charge history of a diode.
struct DiodeLaneState : DeviceLaneState {
  explicit DiodeLaneState(size_t n) : q(n, 0.0), i(n, 0.0), v_prev(n, 0.0) {}
  std::vector<double> q, i, v_prev;
};

}  // namespace

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode), params_(params) {}

double Diode::capAt(double v) const {
  if (params_.cj0 <= 0.0) return 0.0;
  const double fc = 0.5;
  const double knee = fc * params_.pb;
  if (v < knee) return params_.cj0 / std::pow(1.0 - v / params_.pb, params_.mj);
  const double c_knee = params_.cj0 / std::pow(1.0 - fc, params_.mj);
  const double slope = c_knee * params_.mj / (params_.pb * (1.0 - fc));
  return c_knee + slope * (v - knee);
}

void Diode::stamp(Stamper& stamper, const EvalContext& ctx) {
  const double ut = thermalVoltage(ctx.temperature);
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  const Dual<1> i = junctionCurrent(params_.i_sat, params_.n_ideal, ut, Dual<1>::seed(v, 0));
  stamper.conductance(anode_, cathode_, i.d[0]);
  stamper.currentSource(anode_, cathode_, i.v - i.d[0] * v);

  if (ctx.method != IntegrationMethod::None && params_.cj0 > 0.0) {
    const double c = capAt(v);
    const double q = cap_hist_.q + c * (v - v_prev_);
    const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, c, cap_hist_);
    stamper.conductance(anode_, cathode_, comp.geq);
    stamper.currentSource(anode_, cathode_, comp.i_now - comp.geq * v);
  }
}

void Diode::stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) {
  const double cap = capAt(ctx.v(anode_) - ctx.v(cathode_));
  if (cap > 0.0) stamper.capacitance(anode_, cathode_, cap);
}

void Diode::startTransient(const EvalContext& ctx) {
  v_prev_ = ctx.v(anode_) - ctx.v(cathode_);
  cap_hist_ = {};
}

void Diode::acceptStep(const EvalContext& ctx) {
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  const double c = capAt(v);
  const double q = cap_hist_.q + c * (v - v_prev_);
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, c, cap_hist_);
  cap_hist_.q = q;
  cap_hist_.i = comp.i_now;
  v_prev_ = v;
}

std::unique_ptr<DeviceLaneState> Diode::createLaneState(size_t lanes) const {
  return std::make_unique<DiodeLaneState>(lanes);
}

void Diode::stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                       DeviceLaneState* state) {
  auto& st = static_cast<DiodeLaneState&>(*state);
  const size_t K = ctx.lanes;
  const double ut = thermalVoltage(ctx.temperature);
  const double* va = ctx.v(anode_);
  const double* vc = ctx.v(cathode_);

  double v[kMaxLanes] = {}, i_sat[kMaxLanes] = {}, ij[kMaxLanes] = {}, gj[kMaxLanes] = {}, ieq[kMaxLanes] = {};
  for (size_t l = 0; l < K; ++l) {
    v[l] = va[l] - vc[l];
    i_sat[l] = params_.i_sat;
  }
  junctionCurrentLanes(K, i_sat, params_.n_ideal, ut, v, ij, gj);
  for (size_t l = 0; l < K; ++l) ieq[l] = ij[l] - gj[l] * v[l];
  stamper.conductance(anode_, cathode_, gj);
  stamper.currentSource(anode_, cathode_, ieq);

  if (ctx.method != IntegrationMethod::None && params_.cj0 > 0.0) {
    // Depletion cap, same knee linearization as capAt but branch-free.
    const double fc = 0.5;
    const double knee = fc * params_.pb;
    const double k_knee = std::pow(1.0 - fc, -params_.mj);
    const double k_slope = k_knee * params_.mj / (params_.pb * (1.0 - fc));
    const double inv_pb = 1.0 / params_.pb;
    const double k_g = (ctx.method == IntegrationMethod::Trapezoidal ? 2.0 : 1.0) / ctx.dt;
    const double tr = ctx.method == IntegrationMethod::Trapezoidal ? 1.0 : 0.0;
    double geq[kMaxLanes] = {}, iceq[kMaxLanes] = {};
    for (size_t l = 0; l < K; ++l) {
      const double arg = std::max(1.0 - v[l] * inv_pb, 1e-9);
      const double c_dep = params_.cj0 * fastExp(-params_.mj * fastLog(arg));
      const double c_lin = params_.cj0 * (k_knee + k_slope * (v[l] - knee));
      const double c = v[l] < knee ? c_dep : c_lin;
      const double dq = c * (v[l] - st.v_prev[l]);
      const double g_eq = k_g * c;
      const double i_now = k_g * dq - tr * st.i[l];
      geq[l] = g_eq;
      iceq[l] = i_now - g_eq * v[l];
    }
    stamper.conductance(anode_, cathode_, geq);
    stamper.currentSource(anode_, cathode_, iceq);
  }
}

void Diode::startTransientLanes(const LaneContext& ctx, DeviceLaneState* state) {
  auto& st = static_cast<DiodeLaneState&>(*state);
  const double* va = ctx.v(anode_);
  const double* vc = ctx.v(cathode_);
  for (size_t l = 0; l < ctx.lanes; ++l) {
    st.v_prev[l] = va[l] - vc[l];
    st.q[l] = 0.0;
    st.i[l] = 0.0;
  }
}

void Diode::acceptStepLanes(const LaneContext& ctx, DeviceLaneState* state) {
  auto& st = static_cast<DiodeLaneState&>(*state);
  const double* va = ctx.v(anode_);
  const double* vc = ctx.v(cathode_);
  const double k_g = (ctx.method == IntegrationMethod::Trapezoidal ? 2.0 : 1.0) / ctx.dt;
  const double tr = ctx.method == IntegrationMethod::Trapezoidal ? 1.0 : 0.0;
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const double v = va[l] - vc[l];
    const double c = capAt(v);
    const double dq = c * (v - st.v_prev[l]);
    st.i[l] = k_g * dq - tr * st.i[l];
    st.q[l] += dq;
    st.v_prev[l] = v;
  }
}

void Diode::collectNoiseSources(std::vector<NoiseSource>& sources,
                                const EvalContext& ctx) const {
  // Shot noise: S_i = 2 q |I_d|.
  const double i_d = std::fabs(terminalCurrent(0, ctx));
  const double psd = 2.0 * kElementaryCharge * i_d;
  if (psd > 0.0) {
    sources.push_back({name() + ".shot", anode_, cathode_, [psd](double) { return psd; }});
  }
}

double Diode::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const double ut = thermalVoltage(ctx.temperature);
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  const double i = junctionCurrent(params_.i_sat, params_.n_ideal, ut, Dual<1>(v)).v;
  return t == 0 ? i : -i;
}

}  // namespace vls
