#include "devices/diode.hpp"

#include <cmath>

#include "base/units.hpp"
#include "circuit/mna.hpp"
#include "devices/mos_model.hpp"

namespace vls {

Diode::Diode(std::string name, NodeId anode, NodeId cathode, DiodeParams params)
    : Device(std::move(name)), anode_(anode), cathode_(cathode), params_(params) {}

double Diode::capAt(double v) const {
  if (params_.cj0 <= 0.0) return 0.0;
  const double fc = 0.5;
  const double knee = fc * params_.pb;
  if (v < knee) return params_.cj0 / std::pow(1.0 - v / params_.pb, params_.mj);
  const double c_knee = params_.cj0 / std::pow(1.0 - fc, params_.mj);
  const double slope = c_knee * params_.mj / (params_.pb * (1.0 - fc));
  return c_knee + slope * (v - knee);
}

void Diode::stamp(Stamper& stamper, const EvalContext& ctx) {
  const double ut = thermalVoltage(ctx.temperature);
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  const Dual<1> i = junctionCurrent(params_.i_sat, params_.n_ideal, ut, Dual<1>::seed(v, 0));
  stamper.conductance(anode_, cathode_, i.d[0]);
  stamper.currentSource(anode_, cathode_, i.v - i.d[0] * v);

  if (ctx.method != IntegrationMethod::None && params_.cj0 > 0.0) {
    const double c = capAt(v);
    const double q = cap_hist_.q + c * (v - v_prev_);
    const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, c, cap_hist_);
    stamper.conductance(anode_, cathode_, comp.geq);
    stamper.currentSource(anode_, cathode_, comp.i_now - comp.geq * v);
  }
}

void Diode::stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) {
  const double cap = capAt(ctx.v(anode_) - ctx.v(cathode_));
  if (cap > 0.0) stamper.capacitance(anode_, cathode_, cap);
}

void Diode::startTransient(const EvalContext& ctx) {
  v_prev_ = ctx.v(anode_) - ctx.v(cathode_);
  cap_hist_ = {};
}

void Diode::acceptStep(const EvalContext& ctx) {
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  const double c = capAt(v);
  const double q = cap_hist_.q + c * (v - v_prev_);
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, c, cap_hist_);
  cap_hist_.q = q;
  cap_hist_.i = comp.i_now;
  v_prev_ = v;
}

void Diode::collectNoiseSources(std::vector<NoiseSource>& sources,
                                const EvalContext& ctx) const {
  // Shot noise: S_i = 2 q |I_d|.
  const double i_d = std::fabs(terminalCurrent(0, ctx));
  const double psd = 2.0 * kElementaryCharge * i_d;
  if (psd > 0.0) {
    sources.push_back({name() + ".shot", anode_, cathode_, [psd](double) { return psd; }});
  }
}

double Diode::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const double ut = thermalVoltage(ctx.temperature);
  const double v = ctx.v(anode_) - ctx.v(cathode_);
  const double i = junctionCurrent(params_.i_sat, params_.n_ideal, ut, Dual<1>(v)).v;
  return t == 0 ? i : -i;
}

}  // namespace vls
