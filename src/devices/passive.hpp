// Linear passive elements: resistor, capacitor, inductor.
#pragma once

#include <memory>
#include <vector>

#include "circuit/device.hpp"

namespace vls {

/// Per-lane charge history of a linear capacitor, plus an optional
/// per-lane capacitance override (*parameter* lanes: e.g. one output
/// load per characterization grid point). Lanes default to the
/// device's own C, so an ensemble without overrides stamps
/// bit-identically to the lane-invariant path.
struct CapacitorLaneState : DeviceLaneState {
  CapacitorLaneState(size_t n, double c) : q(n, 0.0), i(n, 0.0), cap(n, c) {}

  void setCapacitance(size_t lane, double c) { cap[lane] = c; }

  std::vector<double> q, i, cap;
};

class Resistor : public Device {
 public:
  Resistor(std::string name, NodeId a, NodeId b, double resistance);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  bool supportsLanes() const override { return true; }
  void stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                  DeviceLaneState* state) override;
  void collectNoiseSources(std::vector<NoiseSource>& sources,
                           const EvalContext& ctx) const override;
  size_t terminalCount() const override { return 2; }
  NodeId terminalNode(size_t t) const override { return t == 0 ? a_ : b_; }
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

  double resistance() const { return resistance_; }
  void setResistance(double r);

 private:
  NodeId a_;
  NodeId b_;
  double resistance_;
};

class Capacitor : public Device {
 public:
  Capacitor(std::string name, NodeId a, NodeId b, double capacitance, double initial_voltage = 0.0,
            bool use_ic = false);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  void startTransient(const EvalContext& ctx) override;
  void acceptStep(const EvalContext& ctx) override;
  bool supportsLanes() const override { return true; }
  std::unique_ptr<DeviceLaneState> createLaneState(size_t lanes) const override;
  void stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                  DeviceLaneState* state) override;
  void startTransientLanes(const LaneContext& ctx, DeviceLaneState* state) override;
  void acceptStepLanes(const LaneContext& ctx, DeviceLaneState* state) override;
  void stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) override;
  size_t terminalCount() const override { return 2; }
  NodeId terminalNode(size_t t) const override { return t == 0 ? a_ : b_; }
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

  double capacitance() const { return capacitance_; }
  /// Replace the capacitance (characterization load sweeps). Only valid
  /// between simulations: the charge history is in C*V units.
  void setCapacitance(double c);

 private:
  NodeId a_;
  NodeId b_;
  double capacitance_;
  double initial_voltage_;
  bool use_ic_;
  ChargeHistory history_;
  ChargeCompanion last_companion_;
};

class Inductor : public Device {
 public:
  Inductor(std::string name, NodeId a, NodeId b, double inductance);

  size_t branchCount() const override { return 1; }
  void assignBranches(size_t first_index) override { branch_ = first_index; }
  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  void startTransient(const EvalContext& ctx) override;
  void acceptStep(const EvalContext& ctx) override;
  /// Branch current / voltage history is shared scalar state, so the
  /// per-lane fallback would leak one lane's history into the next.
  bool laneFallbackSafe() const override { return false; }
  void stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) override;
  size_t terminalCount() const override { return 2; }
  NodeId terminalNode(size_t t) const override { return t == 0 ? a_ : b_; }
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

  double inductance() const { return inductance_; }

 private:
  NodeId a_;
  NodeId b_;
  double inductance_;
  size_t branch_ = 0;
  double i_prev_ = 0.0;
  double v_prev_ = 0.0;
};

}  // namespace vls
