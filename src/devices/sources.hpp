// Independent and controlled sources.
#pragma once

#include "circuit/device.hpp"
#include "devices/waveform.hpp"

namespace vls {

/// Per-lane waveform overrides of an independent source — *parameter*
/// lanes, as opposed to the Monte-Carlo *variation* lanes carried by
/// device geometry states: every lane excites the same topology with
/// its own drive waveform (e.g. one input-slew grid point per lane in
/// the characterization farm). Lanes without an override keep the
/// device's own waveform, so an ensemble with no overrides installed
/// stamps bit-identically to the lane-invariant path.
struct SourceLaneState : DeviceLaneState {
  explicit SourceLaneState(size_t n) : wave(n), has_override(n, 0) {}

  void setWaveform(size_t lane, Waveform w) {
    wave[lane] = std::move(w);
    has_override[lane] = 1;
    any_override = true;
  }

  std::vector<Waveform> wave;
  std::vector<uint8_t> has_override;
  bool any_override = false;
};

/// Independent voltage source (MNA branch element). Participates in
/// source-stepping homotopy: its value scales with ctx.source_scale.
class VoltageSource : public Device {
 public:
  VoltageSource(std::string name, NodeId plus, NodeId minus, Waveform waveform);
  VoltageSource(std::string name, NodeId plus, NodeId minus, double dc_value);

  size_t branchCount() const override { return 1; }
  void assignBranches(size_t first_index) override { branch_ = first_index; }
  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  bool supportsLanes() const override { return true; }
  std::unique_ptr<DeviceLaneState> createLaneState(size_t lanes) const override;
  void stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                  DeviceLaneState* state) override;
  size_t terminalCount() const override { return 2; }
  NodeId terminalNode(size_t t) const override { return t == 0 ? plus_ : minus_; }
  /// Current into the + terminal; -current() is the delivered current.
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;
  void collectBreakpoints(double t_stop, std::vector<double>& times) const override;
  void collectLaneBreakpoints(double t_stop, const DeviceLaneState* state,
                              std::vector<double>& times) const override;

  const Waveform& waveform() const { return waveform_; }
  void setWaveform(Waveform w) { waveform_ = std::move(w); }
  size_t branchIndex() const { return branch_; }

  /// AC excitation magnitude [V] (0 = quiet supply in AC analysis).
  void setAcMagnitude(double mag) { ac_magnitude_ = mag; }
  double acMagnitude() const { return ac_magnitude_; }
  void stampAcSource(std::vector<double>& rhs_real) const override;

  /// Branch current (positive flows + -> - inside the source, i.e. the
  /// source is absorbing). Supply current delivered = -branchCurrent.
  double branchCurrent(const EvalContext& ctx) const { return ctx.branch(branch_); }

 private:
  NodeId plus_;
  NodeId minus_;
  Waveform waveform_;
  size_t branch_ = 0;
  double ac_magnitude_ = 0.0;
};

/// Independent current source; current flows from + through the source
/// to - (i.e. injected into the - node).
class CurrentSource : public Device {
 public:
  CurrentSource(std::string name, NodeId plus, NodeId minus, Waveform waveform);
  CurrentSource(std::string name, NodeId plus, NodeId minus, double dc_value);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  bool supportsLanes() const override { return true; }
  std::unique_ptr<DeviceLaneState> createLaneState(size_t lanes) const override;
  void stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                  DeviceLaneState* state) override;
  size_t terminalCount() const override { return 2; }
  NodeId terminalNode(size_t t) const override { return t == 0 ? plus_ : minus_; }
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;
  void collectBreakpoints(double t_stop, std::vector<double>& times) const override;
  void collectLaneBreakpoints(double t_stop, const DeviceLaneState* state,
                              std::vector<double>& times) const override;

  const Waveform& waveform() const { return waveform_; }

 private:
  NodeId plus_;
  NodeId minus_;
  Waveform waveform_;
};

/// Voltage-controlled voltage source: v(p,m) = gain * v(cp,cm).
class Vcvs : public Device {
 public:
  Vcvs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus, NodeId ctrl_minus,
       double gain);

  size_t branchCount() const override { return 1; }
  void assignBranches(size_t first_index) override { branch_ = first_index; }
  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  size_t terminalCount() const override { return 4; }
  NodeId terminalNode(size_t t) const override;
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

 private:
  NodeId plus_;
  NodeId minus_;
  NodeId cp_;
  NodeId cm_;
  double gain_;
  size_t branch_ = 0;
};

/// Voltage-controlled current source: i(p->m) = gm * v(cp,cm).
class Vccs : public Device {
 public:
  Vccs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus, NodeId ctrl_minus, double gm);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  size_t terminalCount() const override { return 4; }
  NodeId terminalNode(size_t t) const override;
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

 private:
  NodeId plus_;
  NodeId minus_;
  NodeId cp_;
  NodeId cm_;
  double gm_;
};

/// Voltage-controlled switch with smooth (tanh-like) resistance
/// transition between r_off and r_on around a threshold.
class VSwitch : public Device {
 public:
  struct Params {
    double v_threshold = 0.5;
    double v_hysteresis_width = 0.05;  ///< transition width (smooth, no memory)
    double r_on = 1.0;
    double r_off = 1e9;
  };

  VSwitch(std::string name, NodeId a, NodeId b, NodeId ctrl_plus, NodeId ctrl_minus, Params params);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  size_t terminalCount() const override { return 4; }
  NodeId terminalNode(size_t t) const override;
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

 private:
  double conductanceAt(double vctrl) const;
  double dConductanceAt(double vctrl) const;

  NodeId a_;
  NodeId b_;
  NodeId cp_;
  NodeId cm_;
  Params params_;
};

}  // namespace vls
