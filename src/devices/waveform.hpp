// Time-domain source waveforms: DC, PULSE, PWL, SIN, EXP — the SPICE
// standard set. A waveform also reports its breakpoints (corner times)
// so the transient engine never steps over an input edge.
#pragma once

#include <string>
#include <vector>

namespace vls {

struct PulseSpec {
  double v1 = 0.0;      ///< initial value
  double v2 = 0.0;      ///< pulsed value
  double delay = 0.0;   ///< time of first edge start
  double rise = 1e-12;  ///< rise time
  double fall = 1e-12;  ///< fall time
  double width = 0.0;   ///< time at v2
  double period = 0.0;  ///< 0 = single pulse
};

struct SinSpec {
  double offset = 0.0;
  double amplitude = 0.0;
  double freq = 0.0;
  double delay = 0.0;
  double damping = 0.0;
};

struct ExpSpec {
  double v1 = 0.0;
  double v2 = 0.0;
  double rise_delay = 0.0;
  double rise_tau = 1e-9;
  double fall_delay = 0.0;
  double fall_tau = 1e-9;
};

class Waveform {
 public:
  /// Constant value (default-constructed waveform is DC 0).
  Waveform() = default;
  static Waveform dc(double value);
  static Waveform pulse(const PulseSpec& spec);
  /// Piecewise linear through (t, v) points; t strictly increasing.
  static Waveform pwl(std::vector<double> times, std::vector<double> values);
  static Waveform sine(const SinSpec& spec);
  static Waveform exponential(const ExpSpec& spec);

  double at(double time) const;

  /// Value before t=0 (the DC operating point value).
  double initialValue() const { return at(0.0); }

  /// Append corner times within [0, t_stop].
  void collectBreakpoints(double t_stop, std::vector<double>& times) const;

  /// Largest value the waveform attains (for swing checks).
  double maxValue(double t_stop) const;

  /// SPICE source-value text ("DC 1.2", "PULSE(0 1.2 ...)", ...).
  std::string toSpice() const;

 private:
  enum class Kind { Dc, Pulse, Pwl, Sin, Exp };
  Kind kind_ = Kind::Dc;
  double dc_ = 0.0;
  PulseSpec pulse_{};
  SinSpec sin_{};
  ExpSpec exp_{};
  std::vector<double> pwl_t_;
  std::vector<double> pwl_v_;
};

}  // namespace vls
