#include "devices/mosfet.hpp"

#include <cmath>

#include "base/error.hpp"
#include "circuit/mna.hpp"

namespace vls {
namespace {

constexpr size_t kD = 0;
constexpr size_t kG = 1;
constexpr size_t kS = 2;
constexpr size_t kB = 3;

double sigmoid(double x) {
  if (x > 40.0) return 1.0;
  if (x < -40.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, NodeId bulk,
               std::shared_ptr<const MosModelCard> card, MosGeometry geometry)
    : Device(std::move(name)), nodes_{drain, gate, source, bulk}, card_(std::move(card)),
      geometry_(geometry) {
  if (!card_) throw InvalidInputError("Mosfet " + this->name() + ": null model card");
}

const MosOperating& Mosfet::operating(double temperature) const {
  if (temperature != op_temperature_) {
    op_cache_ = resolveOperating(*card_, geometry_, temperature);
    op_temperature_ = temperature;
  }
  return op_cache_;
}

Mosfet::DcEval Mosfet::evalDc(const EvalContext& ctx) const {
  const double s = card_->sign();
  const MosOperating& op = operating(ctx.temperature);

  // Polarity-normalized, bulk-referenced voltages.
  const double vb = ctx.v(nodes_[kB]);
  using D3 = Dual<3>;
  const D3 vg = D3::seed(s * (ctx.v(nodes_[kG]) - vb), 0);
  const D3 vd = D3::seed(s * (ctx.v(nodes_[kD]) - vb), 1);
  const D3 vs = D3::seed(s * (ctx.v(nodes_[kS]) - vb), 2);

  const D3 i_norm = mosCoreCurrent(*card_, op, vg, vd, vs);

  DcEval out;
  out.ids = s * i_norm.v;
  // d(actual I)/d(actual v_k) = dI'/dv'_k for k in {g, d, s} (the two
  // polarity signs cancel); bulk partial follows from translation
  // invariance in the primed frame.
  out.g_g = i_norm.d[0];
  out.g_d = i_norm.d[1];
  out.g_s = i_norm.d[2];
  out.g_b = -(out.g_g + out.g_d + out.g_s);
  return out;
}

double Mosfet::drainCurrent(const EvalContext& ctx) const { return evalDc(ctx).ids; }

double Mosfet::junctionArea(bool drain) const {
  double& cached = junction_area_[drain ? 0 : 1];
  if (cached < 0.0) {
    const double configured = drain ? geometry_.area_d : geometry_.area_s;
    // Default diffusion: 2.5 gate lengths long.
    cached = configured > 0.0 ? configured : geometry_.effW() * 2.5 * geometry_.l;
  }
  return cached;
}

double Mosfet::junctionC0(bool drain) const {
  double& cached = junction_c0_[drain ? 0 : 1];
  if (cached < 0.0) {
    const double area = junctionArea(drain);
    // Area plus sidewall perimeter term (square-diffusion estimate).
    cached = card_->cj * area + card_->cjsw * 2.0 * (std::sqrt(area) * 2.0);
  }
  return cached;
}

double Mosfet::junctionCap(double v, double c0) const {
  // Depletion capacitance c0/(1 - v/pb)^mj, linearized above fc*pb.
  const MosModelCard& m = *card_;
  const double v_knee = m.fc * m.pb;
  if (v < v_knee) {
    return c0 / std::pow(1.0 - v / m.pb, m.mj);
  }
  const double c_knee = c0 / std::pow(1.0 - m.fc, m.mj);
  const double slope = c_knee * m.mj / (m.pb * (1.0 - m.fc));
  return c_knee + slope * (v - v_knee);
}

Mosfet::MeyerCaps Mosfet::meyerCaps(const EvalContext& ctx) const {
  const double s = card_->sign();
  const MosOperating& op = operating(ctx.temperature);
  const MosModelCard& m = *card_;

  const double vb = ctx.v(nodes_[kB]);
  const double vg = s * (ctx.v(nodes_[kG]) - vb);
  const double vd = s * (ctx.v(nodes_[kD]) - vb);
  const double vs = s * (ctx.v(nodes_[kS]) - vb);

  const double w_eff = geometry_.effW();
  const double l_eff = geometry_.l + geometry_.delta_l - 2.0 * m.dl;
  const double cox_area = m.cox() * w_eff * l_eff;

  // Smooth, polarity-symmetric Meyer partition. `sp` sweeps 0 (reverse
  // saturation) .. 0.5 (vds = 0) .. 1 (forward saturation); the
  // quadratic interpolant hits the Meyer landmarks Cgs/Cox = {0, 1/2,
  // 2/3} at those points and Cgd mirrors it, so nothing jumps when a
  // pass transistor's terminals swap roles mid-transient.
  const double k_soft = 2.0 * op.n * op.ut;
  const double v_min =
      -k_soft * std::log(std::exp(-vd / k_soft) + std::exp(-vs / k_soft));  // soft min(vd, vs)
  const double vp = (vg - op.vt) / op.n;
  const double x_inv = sigmoid((vp - v_min) / (2.0 * op.ut));  // 0 cutoff .. 1 inversion
  const double vgt = std::max(op.n * (vp - v_min), 0.0);
  const double vdsat = std::max(vgt / op.n, 4.0 * op.ut);
  const double sp = 0.5 * (1.0 + std::tanh((vd - vs) / vdsat));
  auto meyer = [&](double x) { return (-2.0 / 3.0) * x * x + (4.0 / 3.0) * x; };

  MeyerCaps caps;
  caps.cgs = cox_area * x_inv * meyer(sp) + m.cgso * w_eff;
  caps.cgd = cox_area * x_inv * meyer(1.0 - sp) + m.cgdo * w_eff;
  caps.cgb = cox_area * (1.0 - x_inv) * 0.7 + m.cgbo * l_eff;
  return caps;
}

void Mosfet::stampCap(Stamper& stamper, const EvalContext& ctx, NodeId a, NodeId b, double c,
                      CapState& state) {
  if (ctx.method == IntegrationMethod::None) return;
  const double v = ctx.v(a) - ctx.v(b);
  // Incremental (SPICE2 Meyer) charge: trapezoid of C over the voltage step.
  const double q = state.hist.q + c * (v - state.v_prev);
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, c, state.hist);
  stamper.conductance(a, b, comp.geq);
  stamper.currentSource(a, b, comp.i_now - comp.geq * v);
}

void Mosfet::acceptCap(const EvalContext& ctx, NodeId a, NodeId b, double c, CapState& state) {
  const double v = ctx.v(a) - ctx.v(b);
  const double q = state.hist.q + c * (v - state.v_prev);
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, c, state.hist);
  state.hist.q = q;
  state.hist.i = comp.i_now;
  state.v_prev = v;
}

void Mosfet::stamp(Stamper& stamper, const EvalContext& ctx) {
  const NodeId d = nodes_[kD];
  const NodeId g = nodes_[kG];
  const NodeId s_node = nodes_[kS];
  const NodeId b = nodes_[kB];

  // --- DC channel current: nonlinear 4-terminal companion ------------
  const DcEval dc = evalDc(ctx);
  const int id = stamper.nodeIndex(d);
  const int ig = stamper.nodeIndex(g);
  const int is = stamper.nodeIndex(s_node);
  const int ib = stamper.nodeIndex(b);
  const double vg0 = ctx.v(g);
  const double vd0 = ctx.v(d);
  const double vs0 = ctx.v(s_node);
  const double vb0 = ctx.v(b);

  // Current dc.ids flows d -> s. Jacobian rows for d (+) and s (-).
  auto stamp_row = [&](int row, double sign) {
    if (row < 0) return;
    if (ig >= 0) stamper.addMatrix(row, ig, sign * dc.g_g);
    if (id >= 0) stamper.addMatrix(row, id, sign * dc.g_d);
    if (is >= 0) stamper.addMatrix(row, is, sign * dc.g_s);
    if (ib >= 0) stamper.addMatrix(row, ib, sign * dc.g_b);
  };
  stamp_row(id, 1.0);
  stamp_row(is, -1.0);
  const double i_const =
      dc.ids - dc.g_g * vg0 - dc.g_d * vd0 - dc.g_s * vs0 - dc.g_b * vb0;
  stamper.currentSource(d, s_node, i_const);

  // --- Junction diodes (bulk-drain, bulk-source) ----------------------
  const double sgn = card_->sign();
  const MosOperating& op = operating(ctx.temperature);
  for (int which = 0; which < 2; ++which) {
    const NodeId diff = which == 0 ? d : s_node;
    const double area = junctionArea(which == 0);
    const double i_sat = card_->js * area;
    // Anode/cathode depend on polarity: NMOS junction conducts when
    // bulk is above diffusion.
    const Dual<1> v_ac = Dual<1>::seed(sgn * (ctx.v(b) - ctx.v(diff)), 0);
    const Dual<1> i_j = junctionCurrent(i_sat, card_->n_j, op.ut, v_ac);
    const double g_j = i_j.d[0];
    const double i0 = sgn * i_j.v;  // current bulk -> diffusion
    const double v_actual = ctx.v(b) - ctx.v(diff);
    stamper.conductance(b, diff, g_j);
    stamper.currentSource(b, diff, i0 - g_j * v_actual);
  }

  // --- Gate leakage (optional) ----------------------------------------
  if (card_->jg > 0.0) {
    const double area = geometry_.effW() * geometry_.l;
    const double vgb = ctx.v(g) - ctx.v(b);
    // Odd, smooth in vgb: i = Jg*A*sinh(2 vgb)/sinh(2).
    const double scale = card_->jg * area / std::sinh(2.0);
    const double i_gl = scale * std::sinh(2.0 * vgb);
    const double g_gl = scale * 2.0 * std::cosh(2.0 * vgb);
    stamper.conductance(g, b, g_gl);
    stamper.currentSource(g, b, i_gl - g_gl * vgb);
  }

  // --- Capacitances ----------------------------------------------------
  if (ctx.method != IntegrationMethod::None) {
    const MeyerCaps caps = meyerCaps(ctx);
    stampCap(stamper, ctx, g, s_node, caps.cgs, cap_gs_);
    stampCap(stamper, ctx, g, d, caps.cgd, cap_gd_);
    stampCap(stamper, ctx, g, b, caps.cgb, cap_gb_);
    const double cbd = junctionCap(sgn * (ctx.v(b) - ctx.v(d)), junctionC0(true));
    const double cbs = junctionCap(sgn * (ctx.v(b) - ctx.v(s_node)), junctionC0(false));
    stampCap(stamper, ctx, b, d, cbd, cap_bd_);
    stampCap(stamper, ctx, b, s_node, cbs, cap_bs_);
  }
}

void Mosfet::stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) {
  const MeyerCaps caps = meyerCaps(ctx);
  const double sgn = card_->sign();
  stamper.capacitance(nodes_[kG], nodes_[kS], caps.cgs);
  stamper.capacitance(nodes_[kG], nodes_[kD], caps.cgd);
  stamper.capacitance(nodes_[kG], nodes_[kB], caps.cgb);
  stamper.capacitance(nodes_[kB], nodes_[kD],
                      junctionCap(sgn * (ctx.v(nodes_[kB]) - ctx.v(nodes_[kD])),
                                  junctionC0(true)));
  stamper.capacitance(nodes_[kB], nodes_[kS],
                      junctionCap(sgn * (ctx.v(nodes_[kB]) - ctx.v(nodes_[kS])),
                                  junctionC0(false)));
}

void Mosfet::collectNoiseSources(std::vector<NoiseSource>& sources,
                                 const EvalContext& ctx) const {
  const DcEval dc = evalDc(ctx);
  const MosModelCard& m = *card_;
  // Channel thermal: S_i = 4kT * gamma * gm_eff across drain-source.
  // gm_eff uses the gate transconductance magnitude, which reduces to
  // the standard 2/3*gm in saturation and to g_channel in triode-ish
  // operation within the gamma factor's accuracy.
  const double gm_eff = std::max(std::fabs(dc.g_g), std::fabs(dc.g_d));
  const double s_thermal = 4.0 * kBoltzmann * ctx.temperature * m.gamma_noise * gm_eff;
  const NodeId d = nodes_[kD];
  const NodeId s_node = nodes_[kS];
  if (s_thermal > 0.0) {
    sources.push_back({name() + ".thermal", d, s_node, [s_thermal](double) { return s_thermal; }});
  }
  // Flicker: S_i = KF * |Id|^AF / (Cox W L f).
  const double id_abs = std::fabs(dc.ids);
  if (m.kf > 0.0 && id_abs > 0.0) {
    const double denom = m.cox() * geometry_.effW() * geometry_.l;
    const double scale = m.kf * std::pow(id_abs, m.af) / denom;
    sources.push_back(
        {name() + ".flicker", d, s_node, [scale](double f) { return scale / f; }});
  }
}

void Mosfet::startTransient(const EvalContext& ctx) {
  auto init = [&](NodeId a, NodeId b, CapState& state) {
    state.v_prev = ctx.v(a) - ctx.v(b);
    state.hist.q = 0.0;  // incremental Meyer charge: relative origin is fine
    state.hist.i = 0.0;
  };
  init(nodes_[kG], nodes_[kS], cap_gs_);
  init(nodes_[kG], nodes_[kD], cap_gd_);
  init(nodes_[kG], nodes_[kB], cap_gb_);
  init(nodes_[kB], nodes_[kD], cap_bd_);
  init(nodes_[kB], nodes_[kS], cap_bs_);
}

void Mosfet::acceptStep(const EvalContext& ctx) {
  const double sgn = card_->sign();
  const MeyerCaps caps = meyerCaps(ctx);
  acceptCap(ctx, nodes_[kG], nodes_[kS], caps.cgs, cap_gs_);
  acceptCap(ctx, nodes_[kG], nodes_[kD], caps.cgd, cap_gd_);
  acceptCap(ctx, nodes_[kG], nodes_[kB], caps.cgb, cap_gb_);
  const double cbd = junctionCap(sgn * (ctx.v(nodes_[kB]) - ctx.v(nodes_[kD])), junctionC0(true));
  const double cbs =
      junctionCap(sgn * (ctx.v(nodes_[kB]) - ctx.v(nodes_[kS])), junctionC0(false));
  acceptCap(ctx, nodes_[kB], nodes_[kD], cbd, cap_bd_);
  acceptCap(ctx, nodes_[kB], nodes_[kS], cbs, cap_bs_);
}

double Mosfet::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const DcEval dc = evalDc(ctx);
  const double sgn = card_->sign();
  const MosOperating& op = operating(ctx.temperature);
  auto junction = [&](bool drain_side) {
    const NodeId diff = drain_side ? nodes_[kD] : nodes_[kS];
    const double i_sat = card_->js * junctionArea(drain_side);
    const double v_ac = sgn * (ctx.v(nodes_[kB]) - ctx.v(diff));
    return sgn * junctionCurrent(i_sat, card_->n_j, op.ut, Dual<1>(v_ac)).v;
  };
  switch (t) {
    case kD: return dc.ids - junction(true);
    case kG: return 0.0;
    case kS: return -dc.ids - junction(false);
    case kB: return junction(true) + junction(false);
    default: throw InvalidInputError("Mosfet::terminalCurrent: bad terminal");
  }
}

}  // namespace vls
