#include "devices/mosfet.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "circuit/ensemble_assembly.hpp"
#include "circuit/mna.hpp"
#include "numeric/lanes.hpp"

namespace vls {
namespace {

constexpr size_t kD = 0;
constexpr size_t kG = 1;
constexpr size_t kS = 2;
constexpr size_t kB = 3;

double sigmoid(double x) {
  if (x > 40.0) return 1.0;
  if (x < -40.0) return 0.0;
  return 1.0 / (1.0 + std::exp(-x));
}

}  // namespace

Mosfet::Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, NodeId bulk,
               std::shared_ptr<const MosModelCard> card, MosGeometry geometry)
    : Device(std::move(name)), nodes_{drain, gate, source, bulk}, card_(std::move(card)),
      geometry_(geometry) {
  if (!card_) throw InvalidInputError("Mosfet " + this->name() + ": null model card");
}

const MosOperating& Mosfet::operating(double temperature) const {
  if (temperature != op_temperature_) {
    op_cache_ = resolveOperating(*card_, geometry_, temperature);
    op_temperature_ = temperature;
  }
  return op_cache_;
}

Mosfet::DcEval Mosfet::evalDc(const EvalContext& ctx) const {
  const double s = card_->sign();
  const MosOperating& op = operating(ctx.temperature);

  // Polarity-normalized, bulk-referenced voltages.
  const double vb = ctx.v(nodes_[kB]);
  using D3 = Dual<3>;
  const D3 vg = D3::seed(s * (ctx.v(nodes_[kG]) - vb), 0);
  const D3 vd = D3::seed(s * (ctx.v(nodes_[kD]) - vb), 1);
  const D3 vs = D3::seed(s * (ctx.v(nodes_[kS]) - vb), 2);

  const D3 i_norm = mosCoreCurrent(*card_, op, vg, vd, vs);

  DcEval out;
  out.ids = s * i_norm.v;
  // d(actual I)/d(actual v_k) = dI'/dv'_k for k in {g, d, s} (the two
  // polarity signs cancel); bulk partial follows from translation
  // invariance in the primed frame.
  out.g_g = i_norm.d[0];
  out.g_d = i_norm.d[1];
  out.g_s = i_norm.d[2];
  out.g_b = -(out.g_g + out.g_d + out.g_s);
  return out;
}

double Mosfet::drainCurrent(const EvalContext& ctx) const { return evalDc(ctx).ids; }

double Mosfet::junctionArea(bool drain) const {
  double& cached = junction_area_[drain ? 0 : 1];
  if (cached < 0.0) {
    const double configured = drain ? geometry_.area_d : geometry_.area_s;
    // Default diffusion: 2.5 gate lengths long.
    cached = configured > 0.0 ? configured : geometry_.effW() * 2.5 * geometry_.l;
  }
  return cached;
}

double Mosfet::junctionC0(bool drain) const {
  double& cached = junction_c0_[drain ? 0 : 1];
  if (cached < 0.0) {
    const double area = junctionArea(drain);
    // Area plus sidewall perimeter term (square-diffusion estimate).
    cached = card_->cj * area + card_->cjsw * 2.0 * (std::sqrt(area) * 2.0);
  }
  return cached;
}

double Mosfet::junctionCap(double v, double c0) const {
  // Depletion capacitance c0/(1 - v/pb)^mj, linearized above fc*pb.
  const MosModelCard& m = *card_;
  const double v_knee = m.fc * m.pb;
  if (v < v_knee) {
    return c0 / std::pow(1.0 - v / m.pb, m.mj);
  }
  const double c_knee = c0 / std::pow(1.0 - m.fc, m.mj);
  const double slope = c_knee * m.mj / (m.pb * (1.0 - m.fc));
  return c_knee + slope * (v - v_knee);
}

Mosfet::MeyerCaps Mosfet::meyerCaps(const EvalContext& ctx) const {
  const double s = card_->sign();
  const MosOperating& op = operating(ctx.temperature);
  const MosModelCard& m = *card_;

  const double vb = ctx.v(nodes_[kB]);
  const double vg = s * (ctx.v(nodes_[kG]) - vb);
  const double vd = s * (ctx.v(nodes_[kD]) - vb);
  const double vs = s * (ctx.v(nodes_[kS]) - vb);

  const double w_eff = geometry_.effW();
  const double l_eff = geometry_.l + geometry_.delta_l - 2.0 * m.dl;
  const double cox_area = m.cox() * w_eff * l_eff;

  // Smooth, polarity-symmetric Meyer partition. `sp` sweeps 0 (reverse
  // saturation) .. 0.5 (vds = 0) .. 1 (forward saturation); the
  // quadratic interpolant hits the Meyer landmarks Cgs/Cox = {0, 1/2,
  // 2/3} at those points and Cgd mirrors it, so nothing jumps when a
  // pass transistor's terminals swap roles mid-transient.
  const double k_soft = 2.0 * op.n * op.ut;
  const double v_min =
      -k_soft * std::log(std::exp(-vd / k_soft) + std::exp(-vs / k_soft));  // soft min(vd, vs)
  const double vp = (vg - op.vt) / op.n;
  const double x_inv = sigmoid((vp - v_min) / (2.0 * op.ut));  // 0 cutoff .. 1 inversion
  const double vgt = std::max(op.n * (vp - v_min), 0.0);
  const double vdsat = std::max(vgt / op.n, 4.0 * op.ut);
  const double sp = 0.5 * (1.0 + std::tanh((vd - vs) / vdsat));
  auto meyer = [&](double x) { return (-2.0 / 3.0) * x * x + (4.0 / 3.0) * x; };

  MeyerCaps caps;
  caps.cgs = cox_area * x_inv * meyer(sp) + m.cgso * w_eff;
  caps.cgd = cox_area * x_inv * meyer(1.0 - sp) + m.cgdo * w_eff;
  caps.cgb = cox_area * (1.0 - x_inv) * 0.7 + m.cgbo * l_eff;
  return caps;
}

void Mosfet::stampCap(Stamper& stamper, const EvalContext& ctx, NodeId a, NodeId b, double c,
                      CapState& state) {
  if (ctx.method == IntegrationMethod::None) return;
  const double v = ctx.v(a) - ctx.v(b);
  // Incremental (SPICE2 Meyer) charge: trapezoid of C over the voltage step.
  const double q = state.hist.q + c * (v - state.v_prev);
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, c, state.hist);
  stamper.conductance(a, b, comp.geq);
  stamper.currentSource(a, b, comp.i_now - comp.geq * v);
}

void Mosfet::acceptCap(const EvalContext& ctx, NodeId a, NodeId b, double c, CapState& state) {
  const double v = ctx.v(a) - ctx.v(b);
  const double q = state.hist.q + c * (v - state.v_prev);
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, c, state.hist);
  state.hist.q = q;
  state.hist.i = comp.i_now;
  state.v_prev = v;
}

void Mosfet::stamp(Stamper& stamper, const EvalContext& ctx) {
  const NodeId d = nodes_[kD];
  const NodeId g = nodes_[kG];
  const NodeId s_node = nodes_[kS];
  const NodeId b = nodes_[kB];

  // --- DC channel current: nonlinear 4-terminal companion ------------
  const DcEval dc = evalDc(ctx);
  const int id = stamper.nodeIndex(d);
  const int ig = stamper.nodeIndex(g);
  const int is = stamper.nodeIndex(s_node);
  const int ib = stamper.nodeIndex(b);
  const double vg0 = ctx.v(g);
  const double vd0 = ctx.v(d);
  const double vs0 = ctx.v(s_node);
  const double vb0 = ctx.v(b);

  // Current dc.ids flows d -> s. Jacobian rows for d (+) and s (-).
  auto stamp_row = [&](int row, double sign) {
    if (row < 0) return;
    if (ig >= 0) stamper.addMatrix(row, ig, sign * dc.g_g);
    if (id >= 0) stamper.addMatrix(row, id, sign * dc.g_d);
    if (is >= 0) stamper.addMatrix(row, is, sign * dc.g_s);
    if (ib >= 0) stamper.addMatrix(row, ib, sign * dc.g_b);
  };
  stamp_row(id, 1.0);
  stamp_row(is, -1.0);
  const double i_const =
      dc.ids - dc.g_g * vg0 - dc.g_d * vd0 - dc.g_s * vs0 - dc.g_b * vb0;
  stamper.currentSource(d, s_node, i_const);

  // --- Junction diodes (bulk-drain, bulk-source) ----------------------
  const double sgn = card_->sign();
  const MosOperating& op = operating(ctx.temperature);
  for (int which = 0; which < 2; ++which) {
    const NodeId diff = which == 0 ? d : s_node;
    const double area = junctionArea(which == 0);
    const double i_sat = card_->js * area;
    // Anode/cathode depend on polarity: NMOS junction conducts when
    // bulk is above diffusion.
    const Dual<1> v_ac = Dual<1>::seed(sgn * (ctx.v(b) - ctx.v(diff)), 0);
    const Dual<1> i_j = junctionCurrent(i_sat, card_->n_j, op.ut, v_ac);
    const double g_j = i_j.d[0];
    const double i0 = sgn * i_j.v;  // current bulk -> diffusion
    const double v_actual = ctx.v(b) - ctx.v(diff);
    stamper.conductance(b, diff, g_j);
    stamper.currentSource(b, diff, i0 - g_j * v_actual);
  }

  // --- Gate leakage (optional) ----------------------------------------
  if (card_->jg > 0.0) {
    const double area = geometry_.effW() * geometry_.l;
    const double vgb = ctx.v(g) - ctx.v(b);
    // Odd, smooth in vgb: i = Jg*A*sinh(2 vgb)/sinh(2).
    const double scale = card_->jg * area / std::sinh(2.0);
    const double i_gl = scale * std::sinh(2.0 * vgb);
    const double g_gl = scale * 2.0 * std::cosh(2.0 * vgb);
    stamper.conductance(g, b, g_gl);
    stamper.currentSource(g, b, i_gl - g_gl * vgb);
  }

  // --- Capacitances ----------------------------------------------------
  if (ctx.method != IntegrationMethod::None) {
    const MeyerCaps caps = meyerCaps(ctx);
    stampCap(stamper, ctx, g, s_node, caps.cgs, cap_gs_);
    stampCap(stamper, ctx, g, d, caps.cgd, cap_gd_);
    stampCap(stamper, ctx, g, b, caps.cgb, cap_gb_);
    const double cbd = junctionCap(sgn * (ctx.v(b) - ctx.v(d)), junctionC0(true));
    const double cbs = junctionCap(sgn * (ctx.v(b) - ctx.v(s_node)), junctionC0(false));
    stampCap(stamper, ctx, b, d, cbd, cap_bd_);
    stampCap(stamper, ctx, b, s_node, cbs, cap_bs_);
  }
}

void Mosfet::stampDeviceBatch(std::span<Device* const> devs, std::span<const uint32_t> op_begin,
                              std::span<const uint32_t> op_end, Stamper& stamper,
                              const EvalContext& ctx) {
  const size_t K = devs.size();
  // Every batch member shares card_ (the batch key), so polarity and
  // all card parameters are common; vt/beta/geometry vary per device.
  // The math below is strictly elementwise — assembled values are
  // bit-identical for every batch width.
  const double s = card_->sign();
  const double ut = thermalVoltage(ctx.temperature);
  const double n = card_->n_slope;
  const bool tran = ctx.method != IntegrationMethod::None;

  // --- gather device SoA (AoS state -> lanes across devices) ----------
  Mosfet* mos[kMaxLanes];
  double vt[kMaxLanes] = {}, beta[kMaxLanes] = {};
  double w_eff[kMaxLanes] = {}, l_eff[kMaxLanes] = {}, l_gate[kMaxLanes] = {};
  double vd0[kMaxLanes] = {}, vg0[kMaxLanes] = {}, vs0[kMaxLanes] = {}, vb0[kMaxLanes] = {};
  double vgn[kMaxLanes] = {}, vdn[kMaxLanes] = {}, vsn[kMaxLanes] = {};
  for (size_t l = 0; l < K; ++l) {
    mos[l] = static_cast<Mosfet*>(devs[l]);
    const MosOperating& op = mos[l]->operating(ctx.temperature);
    vt[l] = op.vt;
    beta[l] = op.beta;
    w_eff[l] = mos[l]->geometry_.effW();
    l_eff[l] = mos[l]->geometry_.l + mos[l]->geometry_.delta_l - 2.0 * card_->dl;
    l_gate[l] = mos[l]->geometry_.l;
    vd0[l] = ctx.v(mos[l]->nodes_[kD]);
    vg0[l] = ctx.v(mos[l]->nodes_[kG]);
    vs0[l] = ctx.v(mos[l]->nodes_[kS]);
    vb0[l] = ctx.v(mos[l]->nodes_[kB]);
    vgn[l] = s * (vg0[l] - vb0[l]);
    vdn[l] = s * (vd0[l] - vb0[l]);
    vsn[l] = s * (vs0[l] - vb0[l]);
  }

  // --- DC channel current (SoA core + hand-derived Jacobian) ----------
  double ids[kMaxLanes] = {}, gg[kMaxLanes] = {}, gd[kMaxLanes] = {}, gs[kMaxLanes] = {},
      gb[kMaxLanes] = {};
  mosCoreCurrentLanes(*card_, K, ut, n, vt, beta, vgn, vdn, vsn, ids, gg, gd, gs);
  double i_const[kMaxLanes] = {};
#pragma omp simd
  for (size_t l = 0; l < K; ++l) {
    ids[l] *= s;
    gb[l] = -(gg[l] + gd[l] + gs[l]);
    i_const[l] =
        ids[l] - gg[l] * vg0[l] - gd[l] * vd0[l] - gs[l] * vs0[l] - gb[l] * vb0[l];
  }

  // --- Junction diodes (bulk-drain, bulk-source) ----------------------
  double gj[2][kMaxLanes] = {}, j_rhs[2][kMaxLanes] = {};
  {
    double i_sat[kMaxLanes] = {}, v_ac[kMaxLanes] = {}, ij[kMaxLanes] = {};
    for (int which = 0; which < 2; ++which) {
      const double* vdiff = which == 0 ? vd0 : vs0;
      for (size_t l = 0; l < K; ++l) {
        i_sat[l] = card_->js * mos[l]->junctionArea(which == 0);
        v_ac[l] = s * (vb0[l] - vdiff[l]);
      }
      junctionCurrentLanes(K, i_sat, card_->n_j, ut, v_ac, ij, gj[which]);
      for (size_t l = 0; l < K; ++l) {
        j_rhs[which][l] = s * ij[l] - gj[which][l] * (vb0[l] - vdiff[l]);
      }
    }
  }

  // --- Gate leakage (optional; card-wide switch) ----------------------
  double g_gl[kMaxLanes] = {}, i_gl_rhs[kMaxLanes] = {};
  if (card_->jg > 0.0) {
    const double j_scale = card_->jg / std::sinh(2.0);
#pragma omp simd
    for (size_t l = 0; l < K; ++l) {
      const double scale = j_scale * w_eff[l] * l_gate[l];
      const double vgb = vg0[l] - vb0[l];
      const double e = fastExp(2.0 * vgb);
      const double ei = 1.0 / e;
      g_gl[l] = scale * (e + ei);
      i_gl_rhs[l] = scale * 0.5 * (e - ei) - g_gl[l] * vgb;
    }
  }

  // --- Capacitances (Meyer partition + junction depletion) ------------
  double cgs[kMaxLanes] = {}, cgd[kMaxLanes] = {}, cgb[kMaxLanes] = {};
  double cbd[kMaxLanes] = {}, cbs[kMaxLanes] = {};
  if (tran) {
    const MosModelCard& m = *card_;
    const double cox = m.cox();
    const double k_soft = 2.0 * n * ut;
    const double inv_k = 1.0 / k_soft;
    const double inv_2ut = 1.0 / (2.0 * ut);
#pragma omp simd
    for (size_t l = 0; l < K; ++l) {
      const double cox_area = cox * w_eff[l] * l_eff[l];
      const double v_min =
          -k_soft * fastLog(fastExp(-vdn[l] * inv_k) + fastExp(-vsn[l] * inv_k));
      const double vp = (vgn[l] - vt[l]) / n;
      const double x_inv = fastSigmoid((vp - v_min) * inv_2ut);
      const double vgt = std::max(n * (vp - v_min), 0.0);
      const double vdsat = std::max(vgt / n, 4.0 * ut);
      const double sp = 0.5 * (1.0 + fastTanh((vdn[l] - vsn[l]) / vdsat));
      const double sp_m = 1.0 - sp;
      const double meyer_s = (-2.0 / 3.0) * sp * sp + (4.0 / 3.0) * sp;
      const double meyer_d = (-2.0 / 3.0) * sp_m * sp_m + (4.0 / 3.0) * sp_m;
      cgs[l] = cox_area * x_inv * meyer_s + m.cgso * w_eff[l];
      cgd[l] = cox_area * x_inv * meyer_d + m.cgdo * w_eff[l];
      cgb[l] = cox_area * (1.0 - x_inv) * 0.7 + m.cgbo * l_eff[l];
    }
    double vj[kMaxLanes] = {}, jc0[kMaxLanes] = {};
    for (size_t l = 0; l < K; ++l) {
      vj[l] = s * (vb0[l] - vd0[l]);
      jc0[l] = mos[l]->junctionC0(true);
    }
    junctionCapLanes(K, vj, jc0, cbd);
    for (size_t l = 0; l < K; ++l) {
      vj[l] = s * (vb0[l] - vs0[l]);
      jc0[l] = mos[l]->junctionC0(false);
    }
    junctionCapLanes(K, vj, jc0, cbs);
  }

  // --- per-device emission, mirroring stamp()'s exact call order ------
  for (size_t l = 0; l < K; ++l) {
    Mosfet& dev = *mos[l];
    stamper.seek(op_begin[l]);
    const NodeId d = dev.nodes_[kD];
    const NodeId g = dev.nodes_[kG];
    const NodeId s_node = dev.nodes_[kS];
    const NodeId b = dev.nodes_[kB];
    const int id = stamper.nodeIndex(d);
    const int ig = stamper.nodeIndex(g);
    const int is = stamper.nodeIndex(s_node);
    const int ib = stamper.nodeIndex(b);
    const auto stamp_row = [&](int row, double sign) {
      if (row < 0) return;
      if (ig >= 0) stamper.addMatrix(row, ig, sign * gg[l]);
      if (id >= 0) stamper.addMatrix(row, id, sign * gd[l]);
      if (is >= 0) stamper.addMatrix(row, is, sign * gs[l]);
      if (ib >= 0) stamper.addMatrix(row, ib, sign * gb[l]);
    };
    stamp_row(id, 1.0);
    stamp_row(is, -1.0);
    stamper.currentSource(d, s_node, i_const[l]);
    for (int which = 0; which < 2; ++which) {
      const NodeId diff = which == 0 ? d : s_node;
      stamper.conductance(b, diff, gj[which][l]);
      stamper.currentSource(b, diff, j_rhs[which][l]);
    }
    if (card_->jg > 0.0) {
      stamper.conductance(g, b, g_gl[l]);
      stamper.currentSource(g, b, i_gl_rhs[l]);
    }
    if (tran) {
      dev.stampCap(stamper, ctx, g, s_node, cgs[l], dev.cap_gs_);
      dev.stampCap(stamper, ctx, g, d, cgd[l], dev.cap_gd_);
      dev.stampCap(stamper, ctx, g, b, cgb[l], dev.cap_gb_);
      dev.stampCap(stamper, ctx, b, d, cbd[l], dev.cap_bd_);
      dev.stampCap(stamper, ctx, b, s_node, cbs[l], dev.cap_bs_);
    }
    if (stamper.cursor() != op_end[l]) {
      throw Error("Mosfet '" + dev.name() +
                  "' changed its stamp sequence without a topology revision bump");
    }
  }
}

void Mosfet::stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) {
  const MeyerCaps caps = meyerCaps(ctx);
  const double sgn = card_->sign();
  stamper.capacitance(nodes_[kG], nodes_[kS], caps.cgs);
  stamper.capacitance(nodes_[kG], nodes_[kD], caps.cgd);
  stamper.capacitance(nodes_[kG], nodes_[kB], caps.cgb);
  stamper.capacitance(nodes_[kB], nodes_[kD],
                      junctionCap(sgn * (ctx.v(nodes_[kB]) - ctx.v(nodes_[kD])),
                                  junctionC0(true)));
  stamper.capacitance(nodes_[kB], nodes_[kS],
                      junctionCap(sgn * (ctx.v(nodes_[kB]) - ctx.v(nodes_[kS])),
                                  junctionC0(false)));
}

void Mosfet::collectNoiseSources(std::vector<NoiseSource>& sources,
                                 const EvalContext& ctx) const {
  const DcEval dc = evalDc(ctx);
  const MosModelCard& m = *card_;
  // Channel thermal: S_i = 4kT * gamma * gm_eff across drain-source.
  // gm_eff uses the gate transconductance magnitude, which reduces to
  // the standard 2/3*gm in saturation and to g_channel in triode-ish
  // operation within the gamma factor's accuracy.
  const double gm_eff = std::max(std::fabs(dc.g_g), std::fabs(dc.g_d));
  const double s_thermal = 4.0 * kBoltzmann * ctx.temperature * m.gamma_noise * gm_eff;
  const NodeId d = nodes_[kD];
  const NodeId s_node = nodes_[kS];
  if (s_thermal > 0.0) {
    sources.push_back({name() + ".thermal", d, s_node, [s_thermal](double) { return s_thermal; }});
  }
  // Flicker: S_i = KF * |Id|^AF / (Cox W L f).
  const double id_abs = std::fabs(dc.ids);
  if (m.kf > 0.0 && id_abs > 0.0) {
    const double denom = m.cox() * geometry_.effW() * geometry_.l;
    const double scale = m.kf * std::pow(id_abs, m.af) / denom;
    sources.push_back(
        {name() + ".flicker", d, s_node, [scale](double f) { return scale / f; }});
  }
}

void Mosfet::startTransient(const EvalContext& ctx) {
  auto init = [&](NodeId a, NodeId b, CapState& state) {
    state.v_prev = ctx.v(a) - ctx.v(b);
    state.hist.q = 0.0;  // incremental Meyer charge: relative origin is fine
    state.hist.i = 0.0;
  };
  init(nodes_[kG], nodes_[kS], cap_gs_);
  init(nodes_[kG], nodes_[kD], cap_gd_);
  init(nodes_[kG], nodes_[kB], cap_gb_);
  init(nodes_[kB], nodes_[kD], cap_bd_);
  init(nodes_[kB], nodes_[kS], cap_bs_);
}

void Mosfet::acceptStep(const EvalContext& ctx) {
  const double sgn = card_->sign();
  const MeyerCaps caps = meyerCaps(ctx);
  acceptCap(ctx, nodes_[kG], nodes_[kS], caps.cgs, cap_gs_);
  acceptCap(ctx, nodes_[kG], nodes_[kD], caps.cgd, cap_gd_);
  acceptCap(ctx, nodes_[kG], nodes_[kB], caps.cgb, cap_gb_);
  const double cbd = junctionCap(sgn * (ctx.v(nodes_[kB]) - ctx.v(nodes_[kD])), junctionC0(true));
  const double cbs =
      junctionCap(sgn * (ctx.v(nodes_[kB]) - ctx.v(nodes_[kS])), junctionC0(false));
  acceptCap(ctx, nodes_[kB], nodes_[kD], cbd, cap_bd_);
  acceptCap(ctx, nodes_[kB], nodes_[kS], cbs, cap_bs_);
}

// --- lane-batched (ensemble) evaluation ------------------------------

MosfetLaneState::MosfetLaneState(const MosGeometry& base, size_t lane_count)
    : lanes(lane_count), geom(lane_count, base), vt(lane_count, 0.0),
      beta(lane_count, 0.0), w_eff(lane_count, 0.0), l_eff(lane_count, 0.0),
      jarea_d(lane_count, 0.0), jarea_s(lane_count, 0.0), jc0_d(lane_count, 0.0),
      jc0_s(lane_count, 0.0), cap_gs(lane_count), cap_gd(lane_count),
      cap_gb(lane_count), cap_bd(lane_count), cap_bs(lane_count) {}

std::unique_ptr<DeviceLaneState> Mosfet::createLaneState(size_t lanes) const {
  return std::make_unique<MosfetLaneState>(geometry_, lanes);
}

void Mosfet::resolveLaneDerived(MosfetLaneState& s, double temperature) const {
  if (s.derived_valid && s.temperature == temperature) return;
  for (size_t l = 0; l < s.lanes; ++l) {
    const MosGeometry& g = s.geom[l];
    const MosOperating op = resolveOperating(*card_, g, temperature);
    s.vt[l] = op.vt;
    s.beta[l] = op.beta;
    s.w_eff[l] = g.effW();
    s.l_eff[l] = g.l + g.delta_l - 2.0 * card_->dl;
    const double area_d = g.area_d > 0.0 ? g.area_d : g.effW() * 2.5 * g.l;
    const double area_s = g.area_s > 0.0 ? g.area_s : g.effW() * 2.5 * g.l;
    s.jarea_d[l] = area_d;
    s.jarea_s[l] = area_s;
    s.jc0_d[l] = card_->cj * area_d + card_->cjsw * 2.0 * (std::sqrt(area_d) * 2.0);
    s.jc0_s[l] = card_->cj * area_s + card_->cjsw * 2.0 * (std::sqrt(area_s) * 2.0);
  }
  s.derived_valid = true;
  s.temperature = temperature;
}

void Mosfet::meyerCapsLanes(const MosfetLaneState& st, const LaneContext& ctx, double* cgs,
                            double* cgd, double* cgb) const {
  const double s = card_->sign();
  const MosModelCard& m = *card_;
  const double ut = thermalVoltage(ctx.temperature);
  const double n = m.n_slope;
  const double cox = m.cox();
  const double k_soft = 2.0 * n * ut;
  const double inv_k = 1.0 / k_soft;
  const double inv_2ut = 1.0 / (2.0 * ut);
  const double* vdl = ctx.v(nodes_[kD]);
  const double* vgl = ctx.v(nodes_[kG]);
  const double* vsl = ctx.v(nodes_[kS]);
  const double* vbl = ctx.v(nodes_[kB]);
#pragma omp simd
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const double vb = vbl[l];
    const double vg = s * (vgl[l] - vb);
    const double vd = s * (vdl[l] - vb);
    const double vs = s * (vsl[l] - vb);
    const double cox_area = cox * st.w_eff[l] * st.l_eff[l];
    const double v_min =
        -k_soft * fastLog(fastExp(-vd * inv_k) + fastExp(-vs * inv_k));
    const double vp = (vg - st.vt[l]) / n;
    const double x_inv = fastSigmoid((vp - v_min) * inv_2ut);
    const double vgt = std::max(n * (vp - v_min), 0.0);
    const double vdsat = std::max(vgt / n, 4.0 * ut);
    const double sp = 0.5 * (1.0 + fastTanh((vd - vs) / vdsat));
    const double sp_m = 1.0 - sp;
    const double meyer_s = (-2.0 / 3.0) * sp * sp + (4.0 / 3.0) * sp;
    const double meyer_d = (-2.0 / 3.0) * sp_m * sp_m + (4.0 / 3.0) * sp_m;
    cgs[l] = cox_area * x_inv * meyer_s + m.cgso * st.w_eff[l];
    cgd[l] = cox_area * x_inv * meyer_d + m.cgdo * st.w_eff[l];
    cgb[l] = cox_area * (1.0 - x_inv) * 0.7 + m.cgbo * st.l_eff[l];
  }
}

void Mosfet::junctionCapLanes(size_t lanes, const double* v, const double* c0,
                              double* c) const {
  const MosModelCard& m = *card_;
  const double v_knee = m.fc * m.pb;
  const double k_knee = std::pow(1.0 - m.fc, -m.mj);
  const double k_slope = k_knee * m.mj / (m.pb * (1.0 - m.fc));
  const double inv_pb = 1.0 / m.pb;
#pragma omp simd
  for (size_t l = 0; l < lanes; ++l) {
    // Clamp the depletion argument: lanes above the knee take the linear
    // branch, so the clamped value only keeps the dead computation finite.
    const double arg = std::max(1.0 - v[l] * inv_pb, 1e-9);
    const double c_dep = c0[l] * fastExp(-m.mj * fastLog(arg));
    const double c_lin = c0[l] * (k_knee + k_slope * (v[l] - v_knee));
    c[l] = v[l] < v_knee ? c_dep : c_lin;
  }
}

void Mosfet::stampCapLanes(LaneStamper& stamper, const LaneContext& ctx, NodeId a, NodeId b,
                           const double* c, MosfetLaneState::CapLanes& state) const {
  if (ctx.method == IntegrationMethod::None) return;
  const double* va = ctx.v(a);
  const double* vb = ctx.v(b);
  const double k_g = (ctx.method == IntegrationMethod::Trapezoidal ? 2.0 : 1.0) / ctx.dt;
  const double tr = ctx.method == IntegrationMethod::Trapezoidal ? 1.0 : 0.0;
  double geq[kMaxLanes] = {}, ieq[kMaxLanes] = {};
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const double v = va[l] - vb[l];
    const double dq = c[l] * (v - state.v_prev[l]);  // q - hist.q
    const double g_eq = k_g * c[l];
    const double i_now = k_g * dq - tr * state.i[l];
    geq[l] = g_eq;
    ieq[l] = i_now - g_eq * v;
  }
  stamper.conductance(a, b, geq);
  stamper.currentSource(a, b, ieq);
}

void Mosfet::acceptCapLanes(const LaneContext& ctx, NodeId a, NodeId b, const double* c,
                            MosfetLaneState::CapLanes& state) const {
  const double* va = ctx.v(a);
  const double* vb = ctx.v(b);
  const double k_g = (ctx.method == IntegrationMethod::Trapezoidal ? 2.0 : 1.0) / ctx.dt;
  const double tr = ctx.method == IntegrationMethod::Trapezoidal ? 1.0 : 0.0;
#pragma omp simd
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const double v = va[l] - vb[l];
    const double dq = c[l] * (v - state.v_prev[l]);
    state.i[l] = k_g * dq - tr * state.i[l];
    state.q[l] += dq;
    state.v_prev[l] = v;
  }
}

void Mosfet::stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                        DeviceLaneState* state) {
  auto& st = static_cast<MosfetLaneState&>(*state);
  const size_t K = ctx.lanes;
  resolveLaneDerived(st, ctx.temperature);
  const double s = card_->sign();
  const double ut = thermalVoltage(ctx.temperature);
  const double n = card_->n_slope;

  const NodeId d = nodes_[kD];
  const NodeId g = nodes_[kG];
  const NodeId s_node = nodes_[kS];
  const NodeId b = nodes_[kB];
  const double* vd0 = ctx.v(d);
  const double* vg0 = ctx.v(g);
  const double* vs0 = ctx.v(s_node);
  const double* vb0 = ctx.v(b);

  // --- DC channel current (SoA core + hand-derived Jacobian) ----------
  double vgn[kMaxLanes] = {}, vdn[kMaxLanes] = {}, vsn[kMaxLanes] = {};
#pragma omp simd
  for (size_t l = 0; l < K; ++l) {
    vgn[l] = s * (vg0[l] - vb0[l]);
    vdn[l] = s * (vd0[l] - vb0[l]);
    vsn[l] = s * (vs0[l] - vb0[l]);
  }
  double ids[kMaxLanes] = {}, gg[kMaxLanes] = {}, gd[kMaxLanes] = {}, gs[kMaxLanes] = {}, gb[kMaxLanes] = {};
  mosCoreCurrentLanes(*card_, K, ut, n, st.vt.data(), st.beta.data(), vgn, vdn, vsn, ids,
                      gg, gd, gs);
  double i_const[kMaxLanes] = {};
#pragma omp simd
  for (size_t l = 0; l < K; ++l) {
    ids[l] *= s;
    gb[l] = -(gg[l] + gd[l] + gs[l]);
    i_const[l] =
        ids[l] - gg[l] * vg0[l] - gd[l] * vd0[l] - gs[l] * vs0[l] - gb[l] * vb0[l];
  }
  const int id = stamper.nodeIndex(d);
  const int ig = stamper.nodeIndex(g);
  const int is = stamper.nodeIndex(s_node);
  const int ib = stamper.nodeIndex(b);
  auto stamp_row = [&](int row, double sign) {
    if (row < 0) return;
    if (ig >= 0) stamper.addMatrix(row, ig, gg, sign);
    if (id >= 0) stamper.addMatrix(row, id, gd, sign);
    if (is >= 0) stamper.addMatrix(row, is, gs, sign);
    if (ib >= 0) stamper.addMatrix(row, ib, gb, sign);
  };
  stamp_row(id, 1.0);
  stamp_row(is, -1.0);
  stamper.currentSource(d, s_node, i_const);

  // --- Junction diodes (bulk-drain, bulk-source) ----------------------
  double v_ac[kMaxLanes] = {}, i_sat[kMaxLanes] = {}, ij[kMaxLanes] = {}, gj[kMaxLanes] = {},
      i_rhs[kMaxLanes] = {};
  for (int which = 0; which < 2; ++which) {
    const NodeId diff = which == 0 ? d : s_node;
    const double* vdiff = which == 0 ? vd0 : vs0;
    const double* area = which == 0 ? st.jarea_d.data() : st.jarea_s.data();
    for (size_t l = 0; l < K; ++l) {
      i_sat[l] = card_->js * area[l];
      v_ac[l] = s * (vb0[l] - vdiff[l]);
    }
    junctionCurrentLanes(K, i_sat, card_->n_j, ut, v_ac, ij, gj);
    for (size_t l = 0; l < K; ++l) {
      i_rhs[l] = s * ij[l] - gj[l] * (vb0[l] - vdiff[l]);
    }
    stamper.conductance(b, diff, gj);
    stamper.currentSource(b, diff, i_rhs);
  }

  // --- Gate leakage (optional; constant per topology, tape-safe) ------
  if (card_->jg > 0.0) {
    double i_gl[kMaxLanes] = {}, g_gl[kMaxLanes] = {};
    const double j_scale = card_->jg / std::sinh(2.0);
#pragma omp simd
    for (size_t l = 0; l < K; ++l) {
      const double scale = j_scale * st.geom[l].effW() * st.geom[l].l;
      const double vgb = vg0[l] - vb0[l];
      const double e = fastExp(2.0 * vgb);
      const double ei = 1.0 / e;
      g_gl[l] = scale * (e + ei);                      // scale * 2 cosh(2 vgb)
      i_gl[l] = scale * 0.5 * (e - ei) - g_gl[l] * vgb;  // sinh term minus g*v
    }
    stamper.conductance(g, b, g_gl);
    stamper.currentSource(g, b, i_gl);
  }

  // --- Capacitances ----------------------------------------------------
  if (ctx.method != IntegrationMethod::None) {
    double cgs[kMaxLanes] = {}, cgd[kMaxLanes] = {}, cgb[kMaxLanes] = {};
    meyerCapsLanes(st, ctx, cgs, cgd, cgb);
    stampCapLanes(stamper, ctx, g, s_node, cgs, st.cap_gs);
    stampCapLanes(stamper, ctx, g, d, cgd, st.cap_gd);
    stampCapLanes(stamper, ctx, g, b, cgb, st.cap_gb);
    double vj[kMaxLanes] = {}, cbd[kMaxLanes] = {}, cbs[kMaxLanes] = {};
    for (size_t l = 0; l < K; ++l) vj[l] = s * (vb0[l] - vd0[l]);
    junctionCapLanes(K, vj, st.jc0_d.data(), cbd);
    for (size_t l = 0; l < K; ++l) vj[l] = s * (vb0[l] - vs0[l]);
    junctionCapLanes(K, vj, st.jc0_s.data(), cbs);
    stampCapLanes(stamper, ctx, b, d, cbd, st.cap_bd);
    stampCapLanes(stamper, ctx, b, s_node, cbs, st.cap_bs);
  }
}

void Mosfet::startTransientLanes(const LaneContext& ctx, DeviceLaneState* state) {
  auto& st = static_cast<MosfetLaneState&>(*state);
  auto init = [&](NodeId a, NodeId b, MosfetLaneState::CapLanes& cap) {
    const double* va = ctx.v(a);
    const double* vb = ctx.v(b);
    for (size_t l = 0; l < ctx.lanes; ++l) {
      cap.v_prev[l] = va[l] - vb[l];
      cap.q[l] = 0.0;
      cap.i[l] = 0.0;
    }
  };
  init(nodes_[kG], nodes_[kS], st.cap_gs);
  init(nodes_[kG], nodes_[kD], st.cap_gd);
  init(nodes_[kG], nodes_[kB], st.cap_gb);
  init(nodes_[kB], nodes_[kD], st.cap_bd);
  init(nodes_[kB], nodes_[kS], st.cap_bs);
}

void Mosfet::acceptStepLanes(const LaneContext& ctx, DeviceLaneState* state) {
  auto& st = static_cast<MosfetLaneState&>(*state);
  resolveLaneDerived(st, ctx.temperature);
  const double s = card_->sign();
  double cgs[kMaxLanes] = {}, cgd[kMaxLanes] = {}, cgb[kMaxLanes] = {};
  meyerCapsLanes(st, ctx, cgs, cgd, cgb);
  acceptCapLanes(ctx, nodes_[kG], nodes_[kS], cgs, st.cap_gs);
  acceptCapLanes(ctx, nodes_[kG], nodes_[kD], cgd, st.cap_gd);
  acceptCapLanes(ctx, nodes_[kG], nodes_[kB], cgb, st.cap_gb);
  double vj[kMaxLanes] = {}, cbd[kMaxLanes] = {}, cbs[kMaxLanes] = {};
  const double* vbl = ctx.v(nodes_[kB]);
  const double* vdl = ctx.v(nodes_[kD]);
  const double* vsl = ctx.v(nodes_[kS]);
  for (size_t l = 0; l < ctx.lanes; ++l) vj[l] = s * (vbl[l] - vdl[l]);
  junctionCapLanes(ctx.lanes, vj, st.jc0_d.data(), cbd);
  for (size_t l = 0; l < ctx.lanes; ++l) vj[l] = s * (vbl[l] - vsl[l]);
  junctionCapLanes(ctx.lanes, vj, st.jc0_s.data(), cbs);
  acceptCapLanes(ctx, nodes_[kB], nodes_[kD], cbd, st.cap_bd);
  acceptCapLanes(ctx, nodes_[kB], nodes_[kS], cbs, st.cap_bs);
}

double Mosfet::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const DcEval dc = evalDc(ctx);
  const double sgn = card_->sign();
  const MosOperating& op = operating(ctx.temperature);
  auto junction = [&](bool drain_side) {
    const NodeId diff = drain_side ? nodes_[kD] : nodes_[kS];
    const double i_sat = card_->js * junctionArea(drain_side);
    const double v_ac = sgn * (ctx.v(nodes_[kB]) - ctx.v(diff));
    return sgn * junctionCurrent(i_sat, card_->n_j, op.ut, Dual<1>(v_ac)).v;
  };
  switch (t) {
    case kD: return dc.ids - junction(true);
    case kG: return 0.0;
    case kS: return -dc.ids - junction(false);
    case kB: return junction(true) + junction(false);
    default: throw InvalidInputError("Mosfet::terminalCurrent: bad terminal");
  }
}

}  // namespace vls
