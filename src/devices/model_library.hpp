// Built-in 90 nm-class model cards calibrated to the behaviours the
// paper relies on (see DESIGN.md §4): PTM-like 90 nm NMOS/PMOS with the
// paper's stated threshold voltages — nominal 0.39 V (NMOS) / -0.39 V
// (PMOS), high-VT 0.49 V / -0.44 V, low-VT 0.19 V (NMOS, used for M8).
#pragma once

#include <memory>
#include <string_view>

#include "devices/mos_model.hpp"

namespace vls {

/// Shared-ownership handle; instances of one card share the object so a
/// Monte-Carlo run can rebuild cards once per sample.
using MosModelRef = std::shared_ptr<const MosModelCard>;

/// 90 nm process cards.
MosModelRef nmos90();      ///< nominal VT = 0.39 V
MosModelRef nmos90Hvt();   ///< high    VT = 0.49 V
MosModelRef nmos90Lvt();   ///< low     VT = 0.19 V
MosModelRef pmos90();      ///< nominal VT = -0.39 V
MosModelRef pmos90Hvt();   ///< high    VT = -0.44 V

/// Lookup by name ("nmos", "nmos_hvt", "nmos_lvt", "pmos", "pmos_hvt").
/// Throws InvalidInputError for unknown names.
MosModelRef modelByName(std::string_view name);

/// Minimum drawn channel length of the process [m].
inline constexpr double kProcessLmin = 100e-9;
/// Feature size used for variation sigmas (the paper: 3.34 % of 90 nm).
inline constexpr double kProcessFeature = 90e-9;

}  // namespace vls
