// EKV-style MOSFET model card and core current evaluation.
//
// The paper's experiments hinge on behaviours a digital table model
// cannot give: subthreshold leakage over a 0.8–1.4 V supply range,
// threshold drops across pass transistors (the ctrl node charges to
// min(VDDI, VDDO-VT8)), DIBL-driven leakage at high VDS, and smooth
// delay surfaces. The EKV charge-linearized core is continuous from
// weak to strong inversion with well-behaved derivatives, which keeps
// Newton iterations stable on floating storage nodes.
//
// Current (polarity-normalized, bulk-referenced voltages):
//   vp  = (vg - VTeff) / n,     VTeff = vt0 - sigma*vds
//   (body effect is intrinsic: effective source-referred VT shifts by
//    (n-1)*vsb through the bulk-referenced F terms)
//   F(u) = ln^2(1 + e^(u/2))    (interpolates e^u .. (u/2)^2)
//   I0  = 2 n beta Ut^2 [F((vp-vs)/Ut) - F((vp-vd)/Ut)]
//   I   = I0 * (1 + lambda*dv_clm) / (1 + theta*v_inv)
// evaluated on Dual<3> so the Jacobian stamps are exact.
#pragma once

#include <string>

#include "base/units.hpp"
#include "numeric/dual.hpp"

namespace vls {

enum class MosType { Nmos, Pmos };

/// Process model card (shared between instances).
struct MosModelCard {
  std::string name = "nmos";
  MosType type = MosType::Nmos;

  // DC core.
  double vt0 = 0.39;        ///< zero-bias threshold magnitude [V]
  double n_slope = 1.35;    ///< subthreshold slope / body-effect factor
  double gamma = 0.35;      ///< documentary body coefficient (= n-1) [V/V]
  double phi = 0.85;        ///< surface potential 2*phiF [V]
  double kp = 420e-6;       ///< transconductance mu*Cox [A/V^2]
  double theta = 0.90;      ///< mobility/velocity degradation [1/V]
  double lambda = 0.12;     ///< channel-length modulation [1/V]
  double sigma_dibl = 0.10; ///< VT reduction per volt of VDS [V/V]
  double dl = 10e-9;        ///< length reduction per side [m]

  // Capacitance.
  double tox = 2.05e-9;     ///< gate oxide thickness [m]
  double cgso = 2.0e-10;    ///< G-S overlap [F/m of width]
  double cgdo = 2.0e-10;    ///< G-D overlap [F/m of width]
  double cgbo = 1.0e-10;    ///< G-B overlap [F/m of length]
  double cj = 1.1e-3;       ///< junction area capacitance [F/m^2]
  double cjsw = 1.0e-10;    ///< junction sidewall capacitance [F/m]
  double pb = 0.80;         ///< junction built-in potential [V]
  double mj = 0.40;         ///< area grading coefficient
  double fc = 0.5;          ///< forward-bias linearization fraction

  // Junction leakage.
  double js = 1.0e-6;       ///< junction saturation density [A/m^2]
  double n_j = 1.2;         ///< junction ideality

  // Gate leakage (0 disables; direct-tunneling-like density).
  double jg = 0.0;          ///< [A/m^2] at |vgb| = 1 V

  // Noise.
  double gamma_noise = 0.85;  ///< channel thermal noise factor (2/3..1+)
  double kf = 2.0e-26;        ///< flicker coefficient [A^2 * m^2 * F / Hz ... KF/(Cox W L f)]
  double af = 1.0;            ///< flicker current exponent

  // Temperature behaviour (tnom = 300.15 K reference).
  double tnom = 300.15;
  double vt_tc = 1.0e-3;    ///< VT magnitude decrease [V/K]
  double mu_exp = -1.5;     ///< mobility exponent: kp*(T/tnom)^mu_exp

  /// Gate oxide capacitance per area [F/m^2].
  double cox() const { return kEpsilon0 * kEpsSiO2 / tox; }
  /// Polarity: +1 for NMOS, -1 for PMOS.
  double sign() const { return type == MosType::Nmos ? 1.0 : -1.0; }
};

/// Per-instance geometry and Monte-Carlo deviations.
struct MosGeometry {
  double w = 200e-9;        ///< drawn width [m]
  double l = 100e-9;        ///< drawn length [m]
  double delta_vt = 0.0;    ///< instance VT shift (process variation) [V]
  double delta_w = 0.0;     ///< instance width shift [m]
  double delta_l = 0.0;     ///< instance length shift [m]
  /// Junction areas; <=0 means derive from width (w * 2.5*l_min style).
  double area_d = -1.0;
  double area_s = -1.0;

  double effW() const { return w + delta_w; }
};

/// Temperature-resolved operating parameters for one instance.
struct MosOperating {
  double ut;       ///< thermal voltage [V]
  double vt;       ///< effective zero-bias threshold magnitude [V]
  double beta;     ///< kp(T) * Weff / Leff [A/V^2]
  double n;        ///< slope factor
};

/// Resolve temperature- and geometry-dependent quantities once per eval.
MosOperating resolveOperating(const MosModelCard& card, const MosGeometry& geom,
                              double temperature);

/// Core drain current on any scalar type (double or Dual<3>). All
/// voltages are bulk-referenced and polarity-normalized (NMOS view).
/// Returns the drain->source current of the normalized device.
template <typename T>
T mosCoreCurrent(const MosModelCard& card, const MosOperating& op, const T& vg, const T& vd,
                 const T& vs) {
  using std::sqrt;
  const double ut = op.ut;
  // Body effect is intrinsic to the bulk-referenced EKV formulation:
  // the effective source-referred threshold is vt + (n-1)*vsb, so the
  // slope factor doubles as the body-effect coefficient. No explicit
  // gamma term — adding one would double-count and cripple pass
  // transistors (gate overdrive would shrink by gamma AND 1/n).
  const T vt_eff = T(op.vt) - card.sigma_dibl * (vd - vs);
  const T vp = (vg - vt_eff) / op.n;

  const T ff = [&] { const T sp = softplus((vp - vs) / (2.0 * ut)); return sp * sp; }();
  const T fr = [&] { const T sp = softplus((vp - vd) / (2.0 * ut)); return sp * sp; }();

  const double is2 = 2.0 * op.n * op.beta * ut * ut;
  const T i0 = is2 * (ff - fr);

  // Mobility / velocity-saturation degradation: v_inv ~ inversion level
  // expressed in volts; reduces to (vgs-vt) in strong inversion.
  const T v_inv = op.n * ut * (sqrt(ff) + sqrt(fr));
  const T denom = 1.0 + card.theta * v_inv;

  // Channel-length modulation beyond saturation. Built from |vds| and
  // the higher-inverted side so the core stays drain/source
  // antisymmetric; zero at vds = 0 because (ff - fr) already vanishes
  // there (|vds| is smoothed to keep derivatives bounded).
  const T f_max = scalarValue(ff) > scalarValue(fr) ? ff : fr;
  const T vds_abs = sqrt((vd - vs) * (vd - vs) + T(1e-8));
  const T vdsat = 2.0 * op.n * ut * sqrt(f_max) + 4.0 * op.n * ut;
  const T dv_clm = op.n * ut * softplus((vds_abs - vdsat) / (op.n * ut));
  const T m_clm = 1.0 + card.lambda * dv_clm;

  return i0 * m_clm / denom;
}

/// Lane-wise (structure-of-arrays) core evaluation for the ensemble
/// engine: drain current and its partials w.r.t. the polarity-normalized
/// (vg, vd, vs) for `lanes` Monte-Carlo variants of one device in a
/// single pass. `ut` and `n` are temperature/process quantities shared
/// by every lane; `vt` and `beta` carry the per-sample variation. The
/// math mirrors mosCoreCurrent<Dual<3>> exactly (same softplus
/// saturation branches) but uses hand-derived partials and the
/// branch-free fastExp/fastLog kernels, so the per-lane loop body
/// auto-vectorizes. Scalar simulation remains the reference; agreement
/// is enforced by a differential test.
void mosCoreCurrentLanes(const MosModelCard& card, size_t lanes, double ut, double n,
                         const double* vt, const double* beta, const double* vg,
                         const double* vd, const double* vs, double* ids, double* gg,
                         double* gd, double* gs);

/// Lane-wise junction diode current + conductance, matching
/// junctionCurrent's linearized exponential (switch at 40
/// ideality-units, value and slope continuous).
void junctionCurrentLanes(size_t lanes, const double* i_sat, double n_j, double ut,
                          const double* v, double* i, double* g);

/// Junction (bulk-to-diffusion) diode current, polarity-normalized: the
/// anode-cathode voltage is `v` (negative when reverse biased). The
/// exponential is linearized above 10 ideality-units so a wild Newton
/// iterate cannot overflow; value and slope stay continuous at the
/// switch point.
template <typename T>
T junctionCurrent(double i_sat, double n_j, double ut, const T& v) {
  using std::exp;
  // 40 ideality-units (~1 V): far past any physical operating point, so
  // the linear extension only ever guards Newton iterates, never the
  // converged solution.
  const double u_lim = 40.0;
  const T u = v / (n_j * ut);
  if (u > T(u_lim)) {
    const double e = std::exp(u_lim);
    return i_sat * (e * (1.0 + (u - T(u_lim))) - 1.0);
  }
  return i_sat * (exp(u) - T(1.0));
}

}  // namespace vls
