#include "devices/passive.hpp"

#include "base/error.hpp"
#include "base/units.hpp"
#include "circuit/ensemble_assembly.hpp"
#include "circuit/mna.hpp"
#include "numeric/lanes.hpp"

namespace vls {

Resistor::Resistor(std::string name, NodeId a, NodeId b, double resistance)
    : Device(std::move(name)), a_(a), b_(b), resistance_(resistance) {
  if (resistance <= 0.0) throw InvalidInputError("Resistor " + this->name() + ": R must be > 0");
}

void Resistor::setResistance(double r) {
  if (r <= 0.0) throw InvalidInputError("Resistor " + name() + ": R must be > 0");
  resistance_ = r;
}

void Resistor::stamp(Stamper& stamper, const EvalContext&) {
  stamper.conductance(a_, b_, 1.0 / resistance_);
}

void Resistor::stampLanes(LaneStamper& stamper, const LaneContext&, DeviceLaneState*) {
  stamper.conductanceUniform(a_, b_, 1.0 / resistance_);
}

double Resistor::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const double i = (ctx.v(a_) - ctx.v(b_)) / resistance_;
  return t == 0 ? i : -i;
}

void Resistor::collectNoiseSources(std::vector<NoiseSource>& sources,
                                   const EvalContext& ctx) const {
  // Johnson-Nyquist: S_i = 4kT/R [A^2/Hz], white.
  const double psd = 4.0 * kBoltzmann * ctx.temperature / resistance_;
  sources.push_back({name() + ".thermal", a_, b_, [psd](double) { return psd; }});
}

Capacitor::Capacitor(std::string name, NodeId a, NodeId b, double capacitance,
                     double initial_voltage, bool use_ic)
    : Device(std::move(name)),
      a_(a),
      b_(b),
      capacitance_(capacitance),
      initial_voltage_(initial_voltage),
      use_ic_(use_ic) {
  if (capacitance <= 0.0) throw InvalidInputError("Capacitor " + this->name() + ": C must be > 0");
}

void Capacitor::setCapacitance(double c) {
  if (c <= 0.0) throw InvalidInputError("Capacitor " + name() + ": C must be > 0");
  capacitance_ = c;
}

void Capacitor::stamp(Stamper& stamper, const EvalContext& ctx) {
  if (ctx.method == IntegrationMethod::None) {
    // DC: open circuit. A tiny conductance keeps otherwise-floating
    // nodes pinned (the solver adds gmin separately; nothing needed).
    return;
  }
  const double v = ctx.v(a_) - ctx.v(b_);
  const double q = capacitance_ * v;
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, capacitance_, history_);
  last_companion_ = comp;
  stamper.conductance(a_, b_, comp.geq);
  stamper.currentSource(a_, b_, comp.i_now - comp.geq * v);
}

void Capacitor::startTransient(const EvalContext& ctx) {
  const double v = use_ic_ ? initial_voltage_ : ctx.v(a_) - ctx.v(b_);
  history_.q = capacitance_ * v;
  history_.i = 0.0;
}

void Capacitor::acceptStep(const EvalContext& ctx) {
  const double v = ctx.v(a_) - ctx.v(b_);
  const double q = capacitance_ * v;
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, capacitance_, history_);
  history_.q = q;
  history_.i = comp.i_now;
}

std::unique_ptr<DeviceLaneState> Capacitor::createLaneState(size_t lanes) const {
  return std::make_unique<CapacitorLaneState>(lanes, capacitance_);
}

void Capacitor::stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                           DeviceLaneState* state) {
  if (ctx.method == IntegrationMethod::None) return;  // DC: open circuit
  auto& st = static_cast<CapacitorLaneState&>(*state);
  const double* va = ctx.v(a_);
  const double* vb = ctx.v(b_);
  const double k_g = (ctx.method == IntegrationMethod::Trapezoidal ? 2.0 : 1.0) / ctx.dt;
  const double tr = ctx.method == IntegrationMethod::Trapezoidal ? 1.0 : 0.0;
  double geq[kMaxLanes] = {};
  double ieq[kMaxLanes] = {};
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const double v = va[l] - vb[l];
    const double q = st.cap[l] * v;
    geq[l] = k_g * st.cap[l];
    const double i_now = k_g * (q - st.q[l]) - tr * st.i[l];
    ieq[l] = i_now - geq[l] * v;
  }
  stamper.conductance(a_, b_, geq);
  stamper.currentSource(a_, b_, ieq);
}

void Capacitor::startTransientLanes(const LaneContext& ctx, DeviceLaneState* state) {
  auto& st = static_cast<CapacitorLaneState&>(*state);
  const double* va = ctx.v(a_);
  const double* vb = ctx.v(b_);
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const double v = use_ic_ ? initial_voltage_ : va[l] - vb[l];
    st.q[l] = st.cap[l] * v;
    st.i[l] = 0.0;
  }
}

void Capacitor::acceptStepLanes(const LaneContext& ctx, DeviceLaneState* state) {
  auto& st = static_cast<CapacitorLaneState&>(*state);
  const double* va = ctx.v(a_);
  const double* vb = ctx.v(b_);
  const double k_g = (ctx.method == IntegrationMethod::Trapezoidal ? 2.0 : 1.0) / ctx.dt;
  const double tr = ctx.method == IntegrationMethod::Trapezoidal ? 1.0 : 0.0;
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const double q = st.cap[l] * (va[l] - vb[l]);
    st.i[l] = k_g * (q - st.q[l]) - tr * st.i[l];
    st.q[l] = q;
  }
}

void Capacitor::stampReactive(ReactiveStamper& stamper, const EvalContext&) {
  stamper.capacitance(a_, b_, capacitance_);
}

double Capacitor::terminalCurrent(size_t t, const EvalContext& ctx) const {
  if (ctx.method == IntegrationMethod::None) return 0.0;
  const double v = ctx.v(a_) - ctx.v(b_);
  const double q = capacitance_ * v;
  const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, capacitance_, history_);
  return t == 0 ? comp.i_now : -comp.i_now;
}

Inductor::Inductor(std::string name, NodeId a, NodeId b, double inductance)
    : Device(std::move(name)), a_(a), b_(b), inductance_(inductance) {
  if (inductance <= 0.0) throw InvalidInputError("Inductor " + this->name() + ": L must be > 0");
}

void Inductor::stamp(Stamper& stamper, const EvalContext& ctx) {
  // Branch row: v(a) - v(b) - L di/dt = 0, discretized per method.
  const int row = static_cast<int>(branch_);
  const int ia = stamper.nodeIndex(a_);
  const int ib = stamper.nodeIndex(b_);
  if (ia >= 0) {
    stamper.addMatrix(ia, row, 1.0);
    stamper.addMatrix(row, ia, 1.0);
  }
  if (ib >= 0) {
    stamper.addMatrix(ib, row, -1.0);
    stamper.addMatrix(row, ib, -1.0);
  }
  switch (ctx.method) {
    case IntegrationMethod::None:
      // DC short: v(a) - v(b) = 0 (coefficient on branch current is 0).
      // Add a tiny series resistance for pivot stability.
      stamper.addMatrix(row, row, -1e-9);
      break;
    case IntegrationMethod::BackwardEuler: {
      const double req = inductance_ / ctx.dt;
      stamper.addMatrix(row, row, -req);
      stamper.addRhs(row, -req * i_prev_);
      break;
    }
    case IntegrationMethod::Trapezoidal: {
      const double req = 2.0 * inductance_ / ctx.dt;
      stamper.addMatrix(row, row, -req);
      stamper.addRhs(row, -req * i_prev_ - v_prev_);
      break;
    }
  }
}

void Inductor::startTransient(const EvalContext& ctx) {
  i_prev_ = ctx.branch(branch_);
  v_prev_ = ctx.v(a_) - ctx.v(b_);
}

void Inductor::acceptStep(const EvalContext& ctx) {
  i_prev_ = ctx.branch(branch_);
  v_prev_ = ctx.v(a_) - ctx.v(b_);
}

void Inductor::stampReactive(ReactiveStamper& stamper, const EvalContext&) {
  stamper.branchInductance(branch_, inductance_);
}

double Inductor::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const double i = ctx.branch(branch_);
  return t == 0 ? i : -i;
}

}  // namespace vls
