// Four-terminal MOSFET circuit element: EKV DC core (exact Jacobian via
// forward-mode AD), smooth Meyer gate capacitances with incremental
// charge integration, junction diodes with depletion capacitance, and
// optional gate leakage.
#pragma once

#include <array>
#include <memory>
#include <vector>

#include "circuit/device.hpp"
#include "devices/mos_model.hpp"

namespace vls {

/// Per-lane ensemble state of one Mosfet: per-sample geometry
/// overrides, lazily resolved per-lane derived quantities, and the
/// Meyer/junction charge histories. Public so the Monte-Carlo driver
/// can install per-sample geometry before an ensemble run; the Mosfet
/// object itself is never mutated by ensemble evaluation.
struct MosfetLaneState : DeviceLaneState {
  MosfetLaneState(const MosGeometry& base, size_t lane_count);

  void setGeometry(size_t lane, const MosGeometry& g) {
    geom[lane] = g;
    derived_valid = false;
  }

  size_t lanes;
  std::vector<MosGeometry> geom;

  // Derived per-lane quantities (resolved on first stamp per temperature).
  bool derived_valid = false;
  double temperature = -1.0;
  std::vector<double> vt, beta;          // core variation (SoA)
  std::vector<double> w_eff, l_eff;      // caps / gate leakage
  std::vector<double> jarea_d, jarea_s;  // junction areas [m^2]
  std::vector<double> jc0_d, jc0_s;      // junction cap prefactors [F]

  struct CapLanes {
    std::vector<double> q, i, v_prev;
    explicit CapLanes(size_t n) : q(n, 0.0), i(n, 0.0), v_prev(n, 0.0) {}
  };
  CapLanes cap_gs, cap_gd, cap_gb, cap_bd, cap_bs;
};

class Mosfet : public Device {
 public:
  /// Terminal order follows SPICE: drain, gate, source, bulk.
  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, NodeId bulk,
         std::shared_ptr<const MosModelCard> card, MosGeometry geometry);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  bool supportsBypass() const override { return true; }
  /// Same-card MOSFETs batch together: the card fixes polarity and all
  /// model parameters, so one SoA lane-kernel pass covers the batch.
  const void* deviceBatchKey() const override { return card_.get(); }
  void stampDeviceBatch(std::span<Device* const> devs, std::span<const uint32_t> op_begin,
                        std::span<const uint32_t> op_end, Stamper& stamper,
                        const EvalContext& ctx) override;
  void startTransient(const EvalContext& ctx) override;
  void acceptStep(const EvalContext& ctx) override;
  bool supportsLanes() const override { return true; }
  std::unique_ptr<DeviceLaneState> createLaneState(size_t lanes) const override;
  void stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                  DeviceLaneState* state) override;
  void startTransientLanes(const LaneContext& ctx, DeviceLaneState* state) override;
  void acceptStepLanes(const LaneContext& ctx, DeviceLaneState* state) override;
  void stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) override;
  void collectNoiseSources(std::vector<NoiseSource>& sources,
                           const EvalContext& ctx) const override;

  size_t terminalCount() const override { return 4; }
  NodeId terminalNode(size_t t) const override { return nodes_[t]; }
  /// DC (channel + junction + gate-leak) current into terminal t.
  /// Capacitive displacement currents are excluded.
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

  const MosModelCard& model() const { return *card_; }
  const MosGeometry& geometry() const { return geometry_; }
  /// Mutable geometry access invalidates the cached derived quantities
  /// (operating point, junction areas/capacitance prefactors).
  MosGeometry& geometry() {
    invalidateDerived();
    return geometry_;
  }
  /// Replace instance geometry (Monte-Carlo perturbations).
  void setGeometry(const MosGeometry& g) {
    geometry_ = g;
    invalidateDerived();
  }

  /// Drain current (positive = conventional current into the drain for
  /// NMOS in normal operation) at the given solution.
  double drainCurrent(const EvalContext& ctx) const;

 private:
  struct DcEval {
    double ids;  // current d -> s (device polarity applied)
    double g_g, g_d, g_s, g_b;
  };
  DcEval evalDc(const EvalContext& ctx) const;

  struct CapState {
    ChargeHistory hist;
    double v_prev = 0.0;
  };

  // Meyer capacitance values at the given terminal voltages.
  struct MeyerCaps {
    double cgs, cgd, cgb;
  };
  MeyerCaps meyerCaps(const EvalContext& ctx) const;
  double junctionArea(bool drain) const;
  /// Zero-bias junction capacitance prefactor (area + sidewall terms).
  double junctionC0(bool drain) const;
  double junctionCap(double v_anode_cathode, double c0) const;

  /// Temperature/geometry-derived operating point, memoized so it is
  /// resolved once per analysis instead of several times per stamp.
  const MosOperating& operating(double temperature) const;
  void invalidateDerived() {
    op_temperature_ = -1.0;
    junction_area_[0] = junction_area_[1] = -1.0;
    junction_c0_[0] = junction_c0_[1] = -1.0;
  }

  void stampCap(Stamper& stamper, const EvalContext& ctx, NodeId a, NodeId b, double c,
                CapState& state);
  void acceptCap(const EvalContext& ctx, NodeId a, NodeId b, double c, CapState& state);

  // --- lane-batched (ensemble) helpers -------------------------------
  void resolveLaneDerived(MosfetLaneState& s, double temperature) const;
  /// Meyer caps for all lanes (outputs are double[lanes] scratch).
  void meyerCapsLanes(const MosfetLaneState& s, const LaneContext& ctx, double* cgs,
                      double* cgd, double* cgb) const;
  /// Depletion cap for all lanes (same knee linearization as
  /// junctionCap, evaluated branch-free).
  void junctionCapLanes(size_t lanes, const double* v, const double* c0, double* c) const;
  void stampCapLanes(LaneStamper& stamper, const LaneContext& ctx, NodeId a, NodeId b,
                     const double* c, MosfetLaneState::CapLanes& state) const;
  void acceptCapLanes(const LaneContext& ctx, NodeId a, NodeId b, const double* c,
                      MosfetLaneState::CapLanes& state) const;

  std::array<NodeId, 4> nodes_;  // d, g, s, b
  std::shared_ptr<const MosModelCard> card_;
  MosGeometry geometry_;

  // Charge histories: gs, gd, gb, bd, bs.
  CapState cap_gs_, cap_gd_, cap_gb_, cap_bd_, cap_bs_;

  // Memoized derived quantities (-1 = unresolved). Temperatures are in
  // kelvin (always positive), areas/prefactors strictly positive.
  mutable MosOperating op_cache_{};
  mutable double op_temperature_ = -1.0;
  mutable double junction_area_[2] = {-1.0, -1.0};  // [drain, source]
  mutable double junction_c0_[2] = {-1.0, -1.0};
};

}  // namespace vls
