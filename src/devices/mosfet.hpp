// Four-terminal MOSFET circuit element: EKV DC core (exact Jacobian via
// forward-mode AD), smooth Meyer gate capacitances with incremental
// charge integration, junction diodes with depletion capacitance, and
// optional gate leakage.
#pragma once

#include <array>
#include <memory>

#include "circuit/device.hpp"
#include "devices/mos_model.hpp"

namespace vls {

class Mosfet : public Device {
 public:
  /// Terminal order follows SPICE: drain, gate, source, bulk.
  Mosfet(std::string name, NodeId drain, NodeId gate, NodeId source, NodeId bulk,
         std::shared_ptr<const MosModelCard> card, MosGeometry geometry);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  bool supportsBypass() const override { return true; }
  void startTransient(const EvalContext& ctx) override;
  void acceptStep(const EvalContext& ctx) override;
  void stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) override;
  void collectNoiseSources(std::vector<NoiseSource>& sources,
                           const EvalContext& ctx) const override;

  size_t terminalCount() const override { return 4; }
  NodeId terminalNode(size_t t) const override { return nodes_[t]; }
  /// DC (channel + junction + gate-leak) current into terminal t.
  /// Capacitive displacement currents are excluded.
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

  const MosModelCard& model() const { return *card_; }
  const MosGeometry& geometry() const { return geometry_; }
  /// Mutable geometry access invalidates the cached derived quantities
  /// (operating point, junction areas/capacitance prefactors).
  MosGeometry& geometry() {
    invalidateDerived();
    return geometry_;
  }
  /// Replace instance geometry (Monte-Carlo perturbations).
  void setGeometry(const MosGeometry& g) {
    geometry_ = g;
    invalidateDerived();
  }

  /// Drain current (positive = conventional current into the drain for
  /// NMOS in normal operation) at the given solution.
  double drainCurrent(const EvalContext& ctx) const;

 private:
  struct DcEval {
    double ids;  // current d -> s (device polarity applied)
    double g_g, g_d, g_s, g_b;
  };
  DcEval evalDc(const EvalContext& ctx) const;

  struct CapState {
    ChargeHistory hist;
    double v_prev = 0.0;
  };

  // Meyer capacitance values at the given terminal voltages.
  struct MeyerCaps {
    double cgs, cgd, cgb;
  };
  MeyerCaps meyerCaps(const EvalContext& ctx) const;
  double junctionArea(bool drain) const;
  /// Zero-bias junction capacitance prefactor (area + sidewall terms).
  double junctionC0(bool drain) const;
  double junctionCap(double v_anode_cathode, double c0) const;

  /// Temperature/geometry-derived operating point, memoized so it is
  /// resolved once per analysis instead of several times per stamp.
  const MosOperating& operating(double temperature) const;
  void invalidateDerived() {
    op_temperature_ = -1.0;
    junction_area_[0] = junction_area_[1] = -1.0;
    junction_c0_[0] = junction_c0_[1] = -1.0;
  }

  void stampCap(Stamper& stamper, const EvalContext& ctx, NodeId a, NodeId b, double c,
                CapState& state);
  void acceptCap(const EvalContext& ctx, NodeId a, NodeId b, double c, CapState& state);

  std::array<NodeId, 4> nodes_;  // d, g, s, b
  std::shared_ptr<const MosModelCard> card_;
  MosGeometry geometry_;

  // Charge histories: gs, gd, gb, bd, bs.
  CapState cap_gs_, cap_gd_, cap_gb_, cap_bd_, cap_bs_;

  // Memoized derived quantities (-1 = unresolved). Temperatures are in
  // kelvin (always positive), areas/prefactors strictly positive.
  mutable MosOperating op_cache_{};
  mutable double op_temperature_ = -1.0;
  mutable double junction_area_[2] = {-1.0, -1.0};  // [drain, source]
  mutable double junction_c0_[2] = {-1.0, -1.0};
};

}  // namespace vls
