#include "devices/model_library.hpp"

#include "base/error.hpp"
#include "base/string_util.hpp"

namespace vls {
namespace {

MosModelCard baseNmos() {
  MosModelCard m;
  m.name = "nmos";
  m.type = MosType::Nmos;
  m.vt0 = 0.39;
  m.n_slope = 1.28;
  m.gamma = 0.35;
  m.phi = 0.85;
  m.kp = 440e-6;
  m.theta = 0.95;
  m.lambda = 0.12;
  m.sigma_dibl = 0.07;
  m.tox = 2.05e-9;
  m.cgso = m.cgdo = 2.0e-10;
  m.cgbo = 1.0e-10;
  m.cj = 1.1e-3;
  m.cjsw = 1.0e-10;
  m.js = 1.0e-6;
  m.vt_tc = 1.0e-3;
  m.mu_exp = -1.5;
  return m;
}

MosModelCard basePmos() {
  MosModelCard m = baseNmos();
  m.name = "pmos";
  m.type = MosType::Pmos;
  m.vt0 = 0.39;  // magnitude; polarity handled by type
  m.kp = 110e-6;
  m.theta = 0.65;
  m.sigma_dibl = 0.06;
  return m;
}

}  // namespace

MosModelRef nmos90() {
  static const MosModelRef card = std::make_shared<MosModelCard>(baseNmos());
  return card;
}

MosModelRef nmos90Hvt() {
  static const MosModelRef card = [] {
    MosModelCard m = baseNmos();
    m.name = "nmos_hvt";
    m.vt0 = 0.49;
    return std::make_shared<MosModelCard>(m);
  }();
  return card;
}

MosModelRef nmos90Lvt() {
  static const MosModelRef card = [] {
    MosModelCard m = baseNmos();
    m.name = "nmos_lvt";
    m.vt0 = 0.19;
    return std::make_shared<MosModelCard>(m);
  }();
  return card;
}

MosModelRef pmos90() {
  static const MosModelRef card = std::make_shared<MosModelCard>(basePmos());
  return card;
}

MosModelRef pmos90Hvt() {
  static const MosModelRef card = [] {
    MosModelCard m = basePmos();
    m.name = "pmos_hvt";
    m.vt0 = 0.44;
    return std::make_shared<MosModelCard>(m);
  }();
  return card;
}

MosModelRef modelByName(std::string_view name) {
  if (iequals(name, "nmos")) return nmos90();
  if (iequals(name, "nmos_hvt")) return nmos90Hvt();
  if (iequals(name, "nmos_lvt")) return nmos90Lvt();
  if (iequals(name, "pmos")) return pmos90();
  if (iequals(name, "pmos_hvt")) return pmos90Hvt();
  throw InvalidInputError("Unknown MOS model '" + std::string(name) + "'");
}

}  // namespace vls
