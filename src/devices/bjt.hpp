// Bipolar junction transistor (Ebers-Moll transport formulation with
// exact AD Jacobians). Not needed by the paper's CMOS cells, but a
// SPICE-class simulator without a BJT is not a SPICE-class simulator;
// also exercises the solver on a second exponential device family.
#pragma once

#include <memory>

#include "circuit/device.hpp"

namespace vls {

enum class BjtType { Npn, Pnp };

struct BjtModelCard {
  std::string name = "npn";
  BjtType type = BjtType::Npn;
  double i_sat = 1e-16;    ///< transport saturation current [A]
  double beta_f = 100.0;   ///< forward current gain
  double beta_r = 1.0;     ///< reverse current gain
  double n_f = 1.0;        ///< forward emission coefficient
  double n_r = 1.0;        ///< reverse emission coefficient
  double vaf = 80.0;       ///< forward Early voltage [V] (0 disables)
  double cje = 0.0;        ///< B-E zero-bias junction cap [F]
  double cjc = 0.0;        ///< B-C zero-bias junction cap [F]

  double sign() const { return type == BjtType::Npn ? 1.0 : -1.0; }
};

using BjtModelRef = std::shared_ptr<const BjtModelCard>;

class Bjt : public Device {
 public:
  /// Terminal order: collector, base, emitter.
  Bjt(std::string name, NodeId collector, NodeId base, NodeId emitter, BjtModelRef card);

  void stamp(Stamper& stamper, const EvalContext& ctx) override;
  bool supportsBypass() const override { return true; }
  /// Junction-cap charge histories are scalar state shared across lanes,
  /// so per-lane scalar fallback would corrupt them in transients.
  bool laneFallbackSafe() const override { return false; }
  void startTransient(const EvalContext& ctx) override;
  void acceptStep(const EvalContext& ctx) override;
  void stampReactive(ReactiveStamper& stamper, const EvalContext& ctx) override;
  void collectNoiseSources(std::vector<NoiseSource>& sources,
                           const EvalContext& ctx) const override;

  size_t terminalCount() const override { return 3; }
  NodeId terminalNode(size_t t) const override;
  double terminalCurrent(size_t t, const EvalContext& ctx) const override;

  const BjtModelCard& model() const { return *card_; }

 private:
  struct Currents {
    double ic, ib;          // collector and base terminal currents (into device)
    double dic_dvbe, dic_dvbc;
    double dib_dvbe, dib_dvbc;
  };
  Currents eval(const EvalContext& ctx) const;

  NodeId c_;
  NodeId b_;
  NodeId e_;
  BjtModelRef card_;
  ChargeHistory cap_be_, cap_bc_;
  double v_be_prev_ = 0.0;
  double v_bc_prev_ = 0.0;
};

}  // namespace vls
