#include "devices/waveform.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "numeric/interpolation.hpp"

namespace vls {

Waveform Waveform::dc(double value) {
  Waveform w;
  w.kind_ = Kind::Dc;
  w.dc_ = value;
  return w;
}

Waveform Waveform::pulse(const PulseSpec& spec) {
  if (spec.rise <= 0.0 || spec.fall <= 0.0) {
    throw InvalidInputError("Waveform::pulse: rise/fall must be positive");
  }
  Waveform w;
  w.kind_ = Kind::Pulse;
  w.pulse_ = spec;
  return w;
}

Waveform Waveform::pwl(std::vector<double> times, std::vector<double> values) {
  if (times.size() != values.size() || times.empty()) {
    throw InvalidInputError("Waveform::pwl: need equal, nonzero point counts");
  }
  for (size_t i = 1; i < times.size(); ++i) {
    if (times[i] <= times[i - 1]) throw InvalidInputError("Waveform::pwl: times must increase");
  }
  Waveform w;
  w.kind_ = Kind::Pwl;
  w.pwl_t_ = std::move(times);
  w.pwl_v_ = std::move(values);
  return w;
}

Waveform Waveform::sine(const SinSpec& spec) {
  Waveform w;
  w.kind_ = Kind::Sin;
  w.sin_ = spec;
  return w;
}

Waveform Waveform::exponential(const ExpSpec& spec) {
  Waveform w;
  w.kind_ = Kind::Exp;
  w.exp_ = spec;
  return w;
}

double Waveform::at(double time) const {
  switch (kind_) {
    case Kind::Dc:
      return dc_;
    case Kind::Pulse: {
      const PulseSpec& p = pulse_;
      double t = time - p.delay;
      if (t < 0.0) return p.v1;
      const double cycle = p.rise + p.width + p.fall;
      if (p.period > 0.0) t = std::fmod(t, p.period);
      if (t < p.rise) return p.v1 + (p.v2 - p.v1) * (t / p.rise);
      if (t < p.rise + p.width) return p.v2;
      if (t < cycle) return p.v2 + (p.v1 - p.v2) * ((t - p.rise - p.width) / p.fall);
      return p.v1;
    }
    case Kind::Pwl:
      return interpLinear(pwl_t_, pwl_v_, time);
    case Kind::Sin: {
      const SinSpec& s = sin_;
      if (time < s.delay) return s.offset;
      const double t = time - s.delay;
      const double damp = s.damping > 0.0 ? std::exp(-s.damping * t) : 1.0;
      return s.offset + s.amplitude * damp * std::sin(2.0 * M_PI * s.freq * t);
    }
    case Kind::Exp: {
      const ExpSpec& e = exp_;
      double v = e.v1;
      if (time > e.rise_delay) v += (e.v2 - e.v1) * (1.0 - std::exp(-(time - e.rise_delay) / e.rise_tau));
      if (time > e.fall_delay && e.fall_delay > e.rise_delay) {
        v += (e.v1 - e.v2) * (1.0 - std::exp(-(time - e.fall_delay) / e.fall_tau));
      }
      return v;
    }
  }
  return 0.0;
}

void Waveform::collectBreakpoints(double t_stop, std::vector<double>& times) const {
  switch (kind_) {
    case Kind::Dc:
    case Kind::Sin:
    case Kind::Exp:
      return;  // smooth or constant — timestep control handles them
    case Kind::Pulse: {
      const PulseSpec& p = pulse_;
      const double cycle = p.rise + p.width + p.fall;
      const double period = p.period > 0.0 ? p.period : t_stop + cycle + 1.0;
      for (double t0 = p.delay; t0 <= t_stop; t0 += period) {
        const double corners[4] = {t0, t0 + p.rise, t0 + p.rise + p.width, t0 + cycle};
        for (double c : corners) {
          if (c >= 0.0 && c <= t_stop) times.push_back(c);
        }
        if (p.period <= 0.0) break;
      }
      return;
    }
    case Kind::Pwl:
      for (double t : pwl_t_) {
        if (t >= 0.0 && t <= t_stop) times.push_back(t);
      }
      return;
  }
}

std::string Waveform::toSpice() const {
  char buf[96];
  auto num = [&](double v) {
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return std::string(buf);
  };
  switch (kind_) {
    case Kind::Dc:
      return "DC " + num(dc_);
    case Kind::Pulse:
      return "PULSE(" + num(pulse_.v1) + " " + num(pulse_.v2) + " " + num(pulse_.delay) + " " +
             num(pulse_.rise) + " " + num(pulse_.fall) + " " + num(pulse_.width) + " " +
             num(pulse_.period) + ")";
    case Kind::Pwl: {
      std::string out = "PWL(";
      for (size_t i = 0; i < pwl_t_.size(); ++i) {
        if (i) out += ' ';
        out += num(pwl_t_[i]) + " " + num(pwl_v_[i]);
      }
      return out + ")";
    }
    case Kind::Sin:
      return "SIN(" + num(sin_.offset) + " " + num(sin_.amplitude) + " " + num(sin_.freq) + " " +
             num(sin_.delay) + " " + num(sin_.damping) + ")";
    case Kind::Exp:
      return "EXP(" + num(exp_.v1) + " " + num(exp_.v2) + " " + num(exp_.rise_delay) + " " +
             num(exp_.rise_tau) + " " + num(exp_.fall_delay) + " " + num(exp_.fall_tau) + ")";
  }
  return "DC 0";
}

double Waveform::maxValue(double t_stop) const {
  switch (kind_) {
    case Kind::Dc:
      return dc_;
    case Kind::Pulse:
      return std::max(pulse_.v1, pulse_.v2);
    case Kind::Pwl: {
      double m = pwl_v_.front();
      for (size_t i = 0; i < pwl_t_.size(); ++i) {
        if (pwl_t_[i] <= t_stop) m = std::max(m, pwl_v_[i]);
      }
      return m;
    }
    case Kind::Sin:
      return sin_.offset + std::fabs(sin_.amplitude);
    case Kind::Exp:
      return std::max(exp_.v1, exp_.v2);
  }
  return 0.0;
}

}  // namespace vls
