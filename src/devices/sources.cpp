#include "devices/sources.hpp"

#include <cmath>

#include "base/error.hpp"
#include "circuit/ensemble_assembly.hpp"
#include "circuit/mna.hpp"
#include "numeric/lanes.hpp"

namespace vls {

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus, Waveform waveform)
    : Device(std::move(name)), plus_(plus), minus_(minus), waveform_(std::move(waveform)) {}

VoltageSource::VoltageSource(std::string name, NodeId plus, NodeId minus, double dc_value)
    : VoltageSource(std::move(name), plus, minus, Waveform::dc(dc_value)) {}

void VoltageSource::stamp(Stamper& stamper, const EvalContext& ctx) {
  const double v = waveform_.at(ctx.time) * ctx.source_scale;
  stamper.voltageBranch(branch_, plus_, minus_, v);
}

std::unique_ptr<DeviceLaneState> VoltageSource::createLaneState(size_t lanes) const {
  return std::make_unique<SourceLaneState>(lanes);
}

void VoltageSource::stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                               DeviceLaneState* state) {
  const auto* st = static_cast<const SourceLaneState*>(state);
  if (st == nullptr || !st->any_override) {
    // No parameter lanes installed: the same drive waveform excites
    // every variant (the Monte-Carlo case).
    const double v = waveform_.at(ctx.time) * ctx.source_scale;
    stamper.voltageBranchUniform(branch_, plus_, minus_, v);
    return;
  }
  double v[kMaxLanes];
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const Waveform& w = st->has_override[l] ? st->wave[l] : waveform_;
    v[l] = w.at(ctx.time) * ctx.source_scale;
  }
  stamper.voltageBranch(branch_, plus_, minus_, v);
}

double VoltageSource::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const double i = ctx.branch(branch_);
  return t == 0 ? i : -i;
}

void VoltageSource::collectBreakpoints(double t_stop, std::vector<double>& times) const {
  waveform_.collectBreakpoints(t_stop, times);
}

void VoltageSource::collectLaneBreakpoints(double t_stop, const DeviceLaneState* state,
                                           std::vector<double>& times) const {
  const auto* st = static_cast<const SourceLaneState*>(state);
  if (st == nullptr || !st->any_override) {
    collectBreakpoints(t_stop, times);
    return;
  }
  for (size_t l = 0; l < st->wave.size(); ++l) {
    (st->has_override[l] ? st->wave[l] : waveform_).collectBreakpoints(t_stop, times);
  }
}

void VoltageSource::stampAcSource(std::vector<double>& rhs_real) const {
  if (ac_magnitude_ != 0.0) rhs_real[branch_] += ac_magnitude_;
}

CurrentSource::CurrentSource(std::string name, NodeId plus, NodeId minus, Waveform waveform)
    : Device(std::move(name)), plus_(plus), minus_(minus), waveform_(std::move(waveform)) {}

CurrentSource::CurrentSource(std::string name, NodeId plus, NodeId minus, double dc_value)
    : CurrentSource(std::move(name), plus, minus, Waveform::dc(dc_value)) {}

void CurrentSource::stamp(Stamper& stamper, const EvalContext& ctx) {
  stamper.currentSource(plus_, minus_, waveform_.at(ctx.time) * ctx.source_scale);
}

std::unique_ptr<DeviceLaneState> CurrentSource::createLaneState(size_t lanes) const {
  return std::make_unique<SourceLaneState>(lanes);
}

void CurrentSource::stampLanes(LaneStamper& stamper, const LaneContext& ctx,
                               DeviceLaneState* state) {
  const auto* st = static_cast<const SourceLaneState*>(state);
  if (st == nullptr || !st->any_override) {
    stamper.currentSourceUniform(plus_, minus_, waveform_.at(ctx.time) * ctx.source_scale);
    return;
  }
  double i[kMaxLanes];
  for (size_t l = 0; l < ctx.lanes; ++l) {
    const Waveform& w = st->has_override[l] ? st->wave[l] : waveform_;
    i[l] = w.at(ctx.time) * ctx.source_scale;
  }
  stamper.currentSource(plus_, minus_, i);
}

double CurrentSource::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const double i = waveform_.at(ctx.time) * ctx.source_scale;
  return t == 0 ? i : -i;
}

void CurrentSource::collectBreakpoints(double t_stop, std::vector<double>& times) const {
  waveform_.collectBreakpoints(t_stop, times);
}

void CurrentSource::collectLaneBreakpoints(double t_stop, const DeviceLaneState* state,
                                           std::vector<double>& times) const {
  const auto* st = static_cast<const SourceLaneState*>(state);
  if (st == nullptr || !st->any_override) {
    collectBreakpoints(t_stop, times);
    return;
  }
  for (size_t l = 0; l < st->wave.size(); ++l) {
    (st->has_override[l] ? st->wave[l] : waveform_).collectBreakpoints(t_stop, times);
  }
}

Vcvs::Vcvs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus, NodeId ctrl_minus,
           double gain)
    : Device(std::move(name)), plus_(plus), minus_(minus), cp_(ctrl_plus), cm_(ctrl_minus),
      gain_(gain) {}

void Vcvs::stamp(Stamper& stamper, const EvalContext&) {
  // Branch row: v(p) - v(m) - gain*(v(cp) - v(cm)) = 0.
  stamper.voltageBranch(branch_, plus_, minus_, 0.0);
  const int row = static_cast<int>(branch_);
  const int icp = stamper.nodeIndex(cp_);
  const int icm = stamper.nodeIndex(cm_);
  if (icp >= 0) stamper.addMatrix(row, icp, -gain_);
  if (icm >= 0) stamper.addMatrix(row, icm, gain_);
}

NodeId Vcvs::terminalNode(size_t t) const {
  switch (t) {
    case 0: return plus_;
    case 1: return minus_;
    case 2: return cp_;
    default: return cm_;
  }
}

double Vcvs::terminalCurrent(size_t t, const EvalContext& ctx) const {
  if (t == 0) return ctx.branch(branch_);
  if (t == 1) return -ctx.branch(branch_);
  return 0.0;
}

Vccs::Vccs(std::string name, NodeId plus, NodeId minus, NodeId ctrl_plus, NodeId ctrl_minus,
           double gm)
    : Device(std::move(name)), plus_(plus), minus_(minus), cp_(ctrl_plus), cm_(ctrl_minus),
      gm_(gm) {}

void Vccs::stamp(Stamper& stamper, const EvalContext&) {
  stamper.transconductance(plus_, minus_, cp_, cm_, gm_);
}

NodeId Vccs::terminalNode(size_t t) const {
  switch (t) {
    case 0: return plus_;
    case 1: return minus_;
    case 2: return cp_;
    default: return cm_;
  }
}

double Vccs::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const double i = gm_ * (ctx.v(cp_) - ctx.v(cm_));
  if (t == 0) return i;
  if (t == 1) return -i;
  return 0.0;
}

VSwitch::VSwitch(std::string name, NodeId a, NodeId b, NodeId ctrl_plus, NodeId ctrl_minus,
                 Params params)
    : Device(std::move(name)), a_(a), b_(b), cp_(ctrl_plus), cm_(ctrl_minus), params_(params) {
  if (params_.r_on <= 0.0 || params_.r_off <= 0.0) {
    throw InvalidInputError("VSwitch " + this->name() + ": resistances must be > 0");
  }
}

double VSwitch::conductanceAt(double vctrl) const {
  // Log-space blend keeps the conductance positive and smooth.
  const double g_on = 1.0 / params_.r_on;
  const double g_off = 1.0 / params_.r_off;
  const double s = std::tanh((vctrl - params_.v_threshold) / params_.v_hysteresis_width);
  const double blend = 0.5 * (1.0 + s);  // 0..1
  return std::exp(std::log(g_off) + blend * (std::log(g_on) - std::log(g_off)));
}

double VSwitch::dConductanceAt(double vctrl) const {
  const double g = conductanceAt(vctrl);
  const double s = std::tanh((vctrl - params_.v_threshold) / params_.v_hysteresis_width);
  const double dblend = 0.5 * (1.0 - s * s) / params_.v_hysteresis_width;
  return g * dblend * (std::log(1.0 / params_.r_on) - std::log(1.0 / params_.r_off));
}

void VSwitch::stamp(Stamper& stamper, const EvalContext& ctx) {
  const double vctrl = ctx.v(cp_) - ctx.v(cm_);
  const double vab = ctx.v(a_) - ctx.v(b_);
  const double g = conductanceAt(vctrl);
  const double dg = dConductanceAt(vctrl);
  // i = g(vctrl) * vab, linearized in both vab and vctrl:
  //   i ~= g*vab' + (dg*vab)*vctrl' + [i0 - g*vab - dg*vab*vctrl].
  stamper.conductance(a_, b_, g);
  stamper.transconductance(a_, b_, cp_, cm_, dg * vab);
  stamper.currentSource(a_, b_, -dg * vab * vctrl);
}

NodeId VSwitch::terminalNode(size_t t) const {
  switch (t) {
    case 0: return a_;
    case 1: return b_;
    case 2: return cp_;
    default: return cm_;
  }
}

double VSwitch::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const double i = conductanceAt(ctx.v(cp_) - ctx.v(cm_)) * (ctx.v(a_) - ctx.v(b_));
  if (t == 0) return i;
  if (t == 1) return -i;
  return 0.0;
}

}  // namespace vls
