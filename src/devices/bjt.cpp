#include "devices/bjt.hpp"

#include <cmath>

#include "base/error.hpp"
#include "base/units.hpp"
#include "circuit/mna.hpp"
#include "devices/mos_model.hpp"  // junctionCurrent limiting helper

namespace vls {

Bjt::Bjt(std::string name, NodeId collector, NodeId base, NodeId emitter, BjtModelRef card)
    : Device(std::move(name)), c_(collector), b_(base), e_(emitter), card_(std::move(card)) {
  if (!card_) throw InvalidInputError("Bjt " + this->name() + ": null model card");
}

NodeId Bjt::terminalNode(size_t t) const {
  switch (t) {
    case 0: return c_;
    case 1: return b_;
    default: return e_;
  }
}

Bjt::Currents Bjt::eval(const EvalContext& ctx) const {
  const BjtModelCard& m = *card_;
  const double s = m.sign();
  const double ut = thermalVoltage(ctx.temperature);
  using D2 = Dual<2>;
  const D2 vbe = D2::seed(s * (ctx.v(b_) - ctx.v(e_)), 0);
  const D2 vbc = D2::seed(s * (ctx.v(b_) - ctx.v(c_)), 1);

  // Transport currents with overflow-limited exponentials.
  const D2 i_f = junctionCurrent(m.i_sat, m.n_f, ut, vbe);
  const D2 i_r = junctionCurrent(m.i_sat, m.n_r, ut, vbc);
  // Early effect on the transport current only: (1 - vbc/VAF).
  const D2 early = m.vaf > 0.0 ? D2(1.0) - vbc / m.vaf : D2(1.0);
  const D2 i_t = (i_f - i_r) * early;
  const D2 ic = i_t - i_r / m.beta_r;
  const D2 ib = i_f / m.beta_f + i_r / m.beta_r;

  Currents out;
  out.ic = s * ic.v;
  out.ib = s * ib.v;
  out.dic_dvbe = ic.d[0];
  out.dic_dvbc = ic.d[1];
  out.dib_dvbe = ib.d[0];
  out.dib_dvbc = ib.d[1];
  return out;
}

void Bjt::stamp(Stamper& stamper, const EvalContext& ctx) {
  const Currents cur = eval(ctx);
  const double vb = ctx.v(b_);
  const double vc = ctx.v(c_);
  const double ve = ctx.v(e_);
  const int row_b = stamper.nodeIndex(b_);
  const int row_c = stamper.nodeIndex(c_);
  const int row_e = stamper.nodeIndex(e_);

  // Each terminal current LEAVES its node into the device. Chain rule
  // from (vbe, vbc) to node voltages:
  //   d/dvb = d/dvbe + d/dvbc;  d/dve = -d/dvbe;  d/dvc = -d/dvbc.
  struct Lin {
    double gb, gc, ge, i;
  };
  auto lin = [&](double d_dvbe, double d_dvbc, double i_val) {
    return Lin{d_dvbe + d_dvbc, -d_dvbc, -d_dvbe, i_val};
  };
  const Lin lin_c = lin(cur.dic_dvbe, cur.dic_dvbc, cur.ic);
  const Lin lin_b = lin(cur.dib_dvbe, cur.dib_dvbc, cur.ib);
  const Lin lin_e =
      lin(-(cur.dic_dvbe + cur.dib_dvbe), -(cur.dic_dvbc + cur.dib_dvbc), -(cur.ic + cur.ib));

  auto stamp_node = [&](int row, const Lin& l) {
    if (row < 0) return;
    if (row_b >= 0) stamper.addMatrix(row, row_b, l.gb);
    if (row_c >= 0) stamper.addMatrix(row, row_c, l.gc);
    if (row_e >= 0) stamper.addMatrix(row, row_e, l.ge);
    // Companion constant: the linear stamp must reproduce l.i at the
    // expansion point; the leftover goes to the RHS (negated because
    // the current leaves the node).
    const double i0 = l.i - (l.gb * vb + l.gc * vc + l.ge * ve);
    stamper.addRhs(row, -i0);
  };
  stamp_node(row_c, lin_c);
  stamp_node(row_b, lin_b);
  stamp_node(row_e, lin_e);
}

void Bjt::startTransient(const EvalContext& ctx) {
  v_be_prev_ = ctx.v(b_) - ctx.v(e_);
  v_bc_prev_ = ctx.v(b_) - ctx.v(c_);
  cap_be_ = {};
  cap_bc_ = {};
}

void Bjt::acceptStep(const EvalContext& ctx) {
  auto advance = [&](ChargeHistory& hist, double& v_prev, double cap, double v_now) {
    const double q = hist.q + cap * (v_now - v_prev);
    const ChargeCompanion comp = integrateCharge(ctx.method, ctx.dt, q, cap, hist);
    hist.q = q;
    hist.i = comp.i_now;
    v_prev = v_now;
  };
  advance(cap_be_, v_be_prev_, card_->cje, ctx.v(b_) - ctx.v(e_));
  advance(cap_bc_, v_bc_prev_, card_->cjc, ctx.v(b_) - ctx.v(c_));
}

void Bjt::stampReactive(ReactiveStamper& stamper, const EvalContext&) {
  if (card_->cje > 0.0) stamper.capacitance(b_, e_, card_->cje);
  if (card_->cjc > 0.0) stamper.capacitance(b_, c_, card_->cjc);
}

void Bjt::collectNoiseSources(std::vector<NoiseSource>& sources, const EvalContext& ctx) const {
  const Currents cur = eval(ctx);
  const double s_ic = 2.0 * kElementaryCharge * std::fabs(cur.ic);
  const double s_ib = 2.0 * kElementaryCharge * std::fabs(cur.ib);
  if (s_ic > 0.0) {
    sources.push_back({name() + ".shot_c", c_, e_, [s_ic](double) { return s_ic; }});
  }
  if (s_ib > 0.0) {
    sources.push_back({name() + ".shot_b", b_, e_, [s_ib](double) { return s_ib; }});
  }
}

double Bjt::terminalCurrent(size_t t, const EvalContext& ctx) const {
  const Currents cur = eval(ctx);
  switch (t) {
    case 0: return cur.ic;
    case 1: return cur.ib;
    default: return -(cur.ic + cur.ib);
  }
}

}  // namespace vls
