// Distributed-RC interconnect. The paper's motivation is routing: CVS
// needs the source domain's supply routed to every consumer, SS-VS only
// needs signal wires. This module models those wires (pi-ladder RC) so
// system-level examples and the routing-cost bench can quantify the
// difference.
#pragma once

#include <string>
#include <vector>

#include "circuit/circuit.hpp"

namespace vls {

/// 90 nm-class global wire parameters (per metre).
struct WireSpec {
  double length = 100e-6;        ///< [m]
  double r_per_m = 250e3;        ///< series resistance [ohm/m] (thin global wire)
  double c_per_m = 200e-12;      ///< ground capacitance [F/m]
  int segments = 8;              ///< pi-ladder sections
};

struct WireHandles {
  NodeId a = kGround;
  NodeId b = kGround;
  std::vector<NodeId> taps;  ///< internal ladder nodes (excludes a/b)
  double total_r = 0.0;
  double total_c = 0.0;
};

/// Build an RC pi-ladder between a and b.
WireHandles buildWire(Circuit& c, const std::string& prefix, NodeId a, NodeId b,
                      const WireSpec& spec = {});

/// Elmore delay of the wire itself (50% step response estimate).
double wireElmoreDelay(const WireSpec& spec);

/// Elmore delay including a driver resistance and a load capacitance.
double wireElmoreDelay(const WireSpec& spec, double r_driver, double c_load);

}  // namespace vls
