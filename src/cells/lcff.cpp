#include "cells/lcff.hpp"

namespace vls {

LcffHandles buildLcff(Circuit& c, const std::string& prefix, NodeId d, NodeId clk, NodeId q,
                      NodeId vddo, const LcffSizing& sz) {
  LcffHandles h;
  h.d = d;
  h.clk = clk;
  h.q = q;
  h.d_shifted = c.node(prefix + ".dsh");
  h.master = c.node(prefix + ".m");

  // Domain crossing: the SS-TVS converts the VDDI-swing data to a full
  // VDDO swing (inverted) using only the destination rail.
  SstvsHandles shift = buildSstvs(c, prefix + ".xls", d, h.d_shifted, vddo, sz.shifter);
  h.fets = shift.fets;

  // Local clock complement.
  const NodeId clkb = c.node(prefix + ".clkb");
  GateHandles cinv = buildInverter(c, prefix + ".cinv", clk, clkb, vddo, sz.inv);
  h.fets.insert(h.fets.end(), cinv.fets.begin(), cinv.fets.end());

  // Master latch: transparent while clk = 0.
  const NodeId m_in = h.master;
  const NodeId m_out = c.node(prefix + ".mb");
  GateHandles tg1 =
      buildTgate(c, prefix + ".tg1", h.d_shifted, m_in, clkb, clk, vddo, sz.tg);
  GateHandles minv = buildInverter(c, prefix + ".minv", m_in, m_out, vddo, sz.inv);
  GateHandles mkeep = buildInverter(c, prefix + ".mkeep", m_out, m_in, vddo, sz.keeper);
  for (const auto* g : {&tg1, &minv, &mkeep}) {
    h.fets.insert(h.fets.end(), g->fets.begin(), g->fets.end());
  }

  // Slave latch: transparent while clk = 1; output buffered so
  // q = d (the SS-TVS inversion cancels against the master inverter).
  const NodeId s_in = c.node(prefix + ".s");
  const NodeId s_b = c.node(prefix + ".sb");
  GateHandles tg2 = buildTgate(c, prefix + ".tg2", m_out, s_in, clk, clkb, vddo, sz.tg);
  GateHandles sinv = buildInverter(c, prefix + ".sinv", s_in, s_b, vddo, sz.inv);
  GateHandles skeep = buildInverter(c, prefix + ".skeep", s_b, s_in, vddo, sz.keeper);
  GateHandles qinv = buildInverter(c, prefix + ".qinv", s_b, q, vddo, sz.inv);
  for (const auto* g : {&tg2, &sinv, &skeep, &qinv}) {
    h.fets.insert(h.fets.end(), g->fets.begin(), g->fets.end());
  }
  return h;
}

}  // namespace vls
