// Comparison cells from the paper's related-work section (Section 2):
//
//  * Puri et al. [13]: the original single-supply up-shifter — a
//    diode-connected NMOS drops VDDO to power the input inverter, so a
//    VDDI-high input can turn the inverter PMOS off. No restoration:
//    limited range and high leakage once VDDO - VDDI exceeds a VT,
//    which is precisely the weakness [6] and the SS-TVS address.
//
//  * Tan & Sun [9]-style bootstrapped shifter: a coupling capacitor,
//    precharged through a diode-connected device, kicks the pull-up
//    gate below ground / above the rail during transitions to speed up
//    conversion ("bootstrapped gate drive to minimize voltage swings").
//    Demonstrates the bootstrapping technique the paper cites; needs
//    dual rails in its practical forms, single-supply here for the
//    up-shift direction only.
#pragma once

#include <string>

#include "cells/gates.hpp"
#include "cells/sizing.hpp"
#include "circuit/circuit.hpp"

namespace vls {

struct SsvsPuriSizing {
  MosSize diode{520e-9, 100e-9};
  InverterSizing inv{{390e-9, 100e-9}, {390e-9, 100e-9}};
  InverterSizing out_inv{{780e-9, 100e-9}, {390e-9, 100e-9}};
};

struct SsvsPuriHandles {
  NodeId in = kGround;
  NodeId out = kGround;   ///< non-inverting overall (two inverters)
  NodeId in_b = kGround;  ///< dropped-rail inverter output
  NodeId vvdd = kGround;  ///< diode-dropped virtual rail
  MosList fets;
};

/// [13]-style shifter: in -> inverter (vvdd rail) -> inverter (VDDO).
/// Valid for modest VDDO - VDDI; leaks heavily beyond a threshold drop.
SsvsPuriHandles buildSsvsPuri(Circuit& c, const std::string& prefix, NodeId in, NodeId out,
                              NodeId vddo, const SsvsPuriSizing& sz = {});

struct BootstrapSizing {
  double boost_cap = 3e-15;          ///< coupling capacitor [F]
  MosSize precharge{200e-9, 100e-9}; ///< diode-connected precharge NMOS
  MosSize pull_up{700e-9, 100e-9};   ///< bootstrapped PMOS pull-up
  MosSize pull_down{390e-9, 100e-9}; ///< input NMOS pull-down
  MosSize keeper{140e-9, 100e-9};    ///< level keeper PMOS
  InverterSizing inv{};              ///< local input buffer (VDDO rail)
};

struct BootstrapHandles {
  NodeId in = kGround;
  NodeId out = kGround;    ///< inverting
  NodeId boot = kGround;   ///< bootstrapped gate node
  MosList fets;
};

/// [9]-style bootstrapped up-shifter (single supply, VDDI <= VDDO):
/// the input couples through C_boost onto the PMOS pull-up gate, which
/// is precharged to ~VDDO - VT; a falling input kicks the gate below
/// its precharge level, turning the pull-up on hard despite the small
/// input swing. A keeper latches the full rail afterwards.
BootstrapHandles buildBootstrapShifter(Circuit& c, const std::string& prefix, NodeId in,
                                       NodeId out, NodeId vddo, const BootstrapSizing& sz = {});

}  // namespace vls
