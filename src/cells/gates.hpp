// Primitive gate generators. Each builder adds transistors to a Circuit
// under an instance prefix ("x1.") and returns the handles needed for
// probing and Monte-Carlo perturbation. All builders follow the paper's
// convention: PMOS bulks tie to the cell's VDD rail, NMOS bulks to
// ground.
#pragma once

#include <string>
#include <vector>

#include "cells/sizing.hpp"
#include "circuit/circuit.hpp"
#include "devices/model_library.hpp"
#include "devices/mosfet.hpp"

namespace vls {

/// Transistors a cell created, for variation studies and area estimates.
using MosList = std::vector<Mosfet*>;

/// Convenience: add one MOSFET with the library defaults.
Mosfet& addMos(Circuit& c, const std::string& name, NodeId d, NodeId g, NodeId s, NodeId b,
               const MosModelRef& model, MosSize size);

struct GateHandles {
  NodeId out = kGround;
  MosList fets;
};

/// Static CMOS inverter: out = !in.
GateHandles buildInverter(Circuit& c, const std::string& prefix, NodeId in, NodeId out, NodeId vdd,
                          const InverterSizing& sz = {},
                          const MosModelRef& pmodel = pmos90(),
                          const MosModelRef& nmodel = nmos90());

/// Two-input NOR: out = !(a | b). The PMOS driven by `b` sits next to
/// VDD; the PMOS driven by `a` is next to the output. The SS-TVS relies
/// on this ordering: its node2 (input b) must be able to cut the supply
/// path even when `a` is driven from a lower voltage domain.
GateHandles buildNor2(Circuit& c, const std::string& prefix, NodeId a, NodeId b, NodeId out,
                      NodeId vdd, const Nor2Sizing& sz = {},
                      const MosModelRef& pmodel = pmos90(),
                      const MosModelRef& nmodel = nmos90());

/// Two-input NAND: out = !(a & b).
GateHandles buildNand2(Circuit& c, const std::string& prefix, NodeId a, NodeId b, NodeId out,
                       NodeId vdd, const Nand2Sizing& sz = {},
                       const MosModelRef& pmodel = pmos90(),
                       const MosModelRef& nmodel = nmos90());

/// Transmission gate between a and b; conducts when ctrl=1 (ctrl_b=0).
GateHandles buildTgate(Circuit& c, const std::string& prefix, NodeId a, NodeId b, NodeId ctrl,
                       NodeId ctrl_b, NodeId vdd, const TgateSizing& sz = {},
                       const MosModelRef& pmodel = pmos90(),
                       const MosModelRef& nmodel = nmos90());

/// 2:1 multiplexer from two transmission gates: out = sel ? in1 : in0.
GateHandles buildMux2(Circuit& c, const std::string& prefix, NodeId in0, NodeId in1, NodeId sel,
                      NodeId sel_b, NodeId out, NodeId vdd, const TgateSizing& sz = {},
                      const MosModelRef& pmodel = pmos90(),
                      const MosModelRef& nmodel = nmos90());

/// Inverter chain of `stages` inverters from `in`; returns the chain
/// output node (internal nodes are "<prefix>.b<k>").
GateHandles buildBufferChain(Circuit& c, const std::string& prefix, NodeId in, NodeId vdd,
                             int stages, const InverterSizing& sz = {},
                             const MosModelRef& pmodel = pmos90(),
                             const MosModelRef& nmodel = nmos90());

/// NMOS configured as a MOS capacitor: gate on `node`, S=D=B grounded.
Mosfet& buildMosCap(Circuit& c, const std::string& name, NodeId node, MosSize size,
                    const MosModelRef& nmodel = nmos90());

}  // namespace vls
