#include "cells/level_shifters.hpp"

namespace vls {

CvsHandles buildCvs(Circuit& c, const std::string& prefix, NodeId in, NodeId out, NodeId vddi,
                    NodeId vddo, const CvsSizing& sz) {
  CvsHandles h;
  h.in = in;
  h.out = out;
  h.in_b = c.node(prefix + ".inb");
  h.out_b = c.node(prefix + ".outb");

  // VDDI-domain complement generator.
  GateHandles inv = buildInverter(c, prefix + ".inv", in, h.in_b, vddi, sz.input_inv);
  h.fets = inv.fets;

  // Cross-coupled VDDO stage: MN1 gate=in pulls out_b; MN2 gate=in_b
  // pulls out; MP1/MP2 latch. With in=1: out_b -> 0, MP2 on, out -> VDDO.
  h.fets.push_back(&addMos(c, prefix + ".mp1", h.out_b, out, vddo, vddo, pmos90(), sz.pull_up));
  h.fets.push_back(&addMos(c, prefix + ".mp2", out, h.out_b, vddo, vddo, pmos90(), sz.pull_up));
  h.fets.push_back(&addMos(c, prefix + ".mn1", h.out_b, in, kGround, kGround, nmos90(),
                           sz.pull_down));
  h.fets.push_back(&addMos(c, prefix + ".mn2", out, h.in_b, kGround, kGround, nmos90(),
                           sz.pull_down));
  return h;
}

SsvsKhanHandles buildSsvsKhan(Circuit& c, const std::string& prefix, NodeId in, NodeId out,
                              NodeId vddo, const SsvsKhanSizing& sz) {
  SsvsKhanHandles h;
  h.in = in;
  h.out = out;      // the inverting node: the diode-rail inverter output
  h.in_b = out;     // alias: out IS the local complement
  h.vvdd = c.node(prefix + ".vvdd");
  h.out_b = c.node(prefix + ".outb");

  // Diode-connected NMOS drops the rail for the input inverter so its
  // PMOS shuts off when the input high level is a VT below VDDO
  // (the [13] trick that [6] builds on).
  h.fets.push_back(&addMos(c, prefix + ".mnd", vddo, vddo, h.vvdd, kGround, nmos90(), sz.diode));
  // Weak feedback PMOS restores the virtual rail to full VDDO while the
  // output is low (input high). This keeps the next rising edge crisp
  // but re-creates the leakage signature [13]/[6] are known for: with
  // the rail at VDDO and the input high at VDDI < VDDO, the inverter
  // PMOS sits near |VGS| = VDDO - VDDI and leaks strongly when that
  // difference approaches a threshold voltage. High-VT helps but cannot
  // eliminate it -- which is the premise of the SS-TVS paper.
  h.fets.push_back(&addMos(c, prefix + ".mpf", h.vvdd, out, vddo, vddo, pmos90(), sz.feedback));

  // Input inverter on the (nominally dropped) rail; high-VT PMOS.
  GateHandles inv = buildInverter(c, prefix + ".inv", in, out, h.vvdd, sz.inv, pmos90Hvt());
  h.fets.insert(h.fets.end(), inv.fets.begin(), inv.fets.end());

  // Level restoration ([6]'s improvement over [13]): a full-VDDO
  // inverter senses `out` and a PMOS keeper pulls `out` the rest of the
  // way to VDDO once it has risen past the VDDO/2 threshold. The
  // rising edge therefore goes vvdd-starved-PMOS -> keeper
  // regeneration, which is what makes this shifter slow compared with
  // the SS-TVS.
  GateHandles inv2 = buildInverter(c, prefix + ".inv2", out, h.out_b, vddo, sz.inv);
  h.fets.insert(h.fets.end(), inv2.fets.begin(), inv2.fets.end());
  h.fets.push_back(&addMos(c, prefix + ".mpk", out, h.out_b, vddo, vddo, pmos90(), sz.pull_up));
  return h;
}

CombinedVsHandles buildCombinedVs(Circuit& c, const std::string& prefix, NodeId in, NodeId out,
                                  NodeId sel, NodeId sel_b, NodeId vddo,
                                  const CombinedVsSizing& sz) {
  CombinedVsHandles h;
  h.in = in;
  h.out = out;
  h.sel = sel;
  h.sel_b = sel_b;
  h.inv_in = c.node(prefix + ".invin");
  h.inv_out = c.node(prefix + ".invout");
  h.ssvs_in = c.node(prefix + ".ssvsin");
  h.ssvs_out = c.node(prefix + ".ssvsout");

  // Input transmission gates: SS-VS path enabled by sel, inverter path
  // by sel_b.
  GateHandles tg_ssvs =
      buildTgate(c, prefix + ".tgs", in, h.ssvs_in, sel, sel_b, vddo, sz.input_tg);
  GateHandles tg_inv =
      buildTgate(c, prefix + ".tgi", in, h.inv_in, sel_b, sel, vddo, sz.input_tg);
  h.fets = tg_ssvs.fets;
  h.fets.insert(h.fets.end(), tg_inv.fets.begin(), tg_inv.fets.end());

  // Weak keepers ground a deselected path's input so it cannot float.
  h.fets.push_back(
      &addMos(c, prefix + ".mks", h.ssvs_in, sel_b, kGround, kGround, nmos90Hvt(), sz.hold_down));
  h.fets.push_back(
      &addMos(c, prefix + ".mki", h.inv_in, sel, kGround, kGround, nmos90Hvt(), sz.hold_down));

  // The two conversion paths (both inverting).
  GateHandles inv = buildInverter(c, prefix + ".inv", h.inv_in, h.inv_out, vddo, sz.inv);
  h.fets.insert(h.fets.end(), inv.fets.begin(), inv.fets.end());
  SsvsKhanHandles ssvs = buildSsvsKhan(c, prefix + ".ssvs", h.ssvs_in, h.ssvs_out, vddo, sz.ssvs);
  h.fets.insert(h.fets.end(), ssvs.fets.begin(), ssvs.fets.end());

  // Output multiplexer: out = sel ? ssvs_out : inv_out.
  GateHandles mux = buildMux2(c, prefix + ".mux", h.inv_out, h.ssvs_out, sel, sel_b, out, vddo,
                              sz.mux_tg);
  h.fets.insert(h.fets.end(), mux.fets.begin(), mux.fets.end());
  return h;
}

}  // namespace vls
