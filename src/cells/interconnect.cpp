#include "cells/interconnect.hpp"

#include "base/error.hpp"
#include "devices/passive.hpp"

namespace vls {

WireHandles buildWire(Circuit& c, const std::string& prefix, NodeId a, NodeId b,
                      const WireSpec& spec) {
  if (spec.segments < 1) throw InvalidInputError("buildWire: need at least one segment");
  WireHandles h;
  h.a = a;
  h.b = b;
  h.total_r = spec.r_per_m * spec.length;
  h.total_c = spec.c_per_m * spec.length;
  const double r_seg = h.total_r / spec.segments;
  const double c_half = h.total_c / spec.segments / 2.0;

  NodeId prev = a;
  for (int k = 0; k < spec.segments; ++k) {
    const NodeId next =
        (k + 1 == spec.segments) ? b : c.node(prefix + ".n" + std::to_string(k));
    // Pi section: C/2 at each end of the series R.
    c.add<Capacitor>(prefix + ".ca" + std::to_string(k), prev, kGround, c_half);
    c.add<Resistor>(prefix + ".r" + std::to_string(k), prev, next, r_seg);
    c.add<Capacitor>(prefix + ".cb" + std::to_string(k), next, kGround, c_half);
    if (next != b) h.taps.push_back(next);
    prev = next;
  }
  return h;
}

double wireElmoreDelay(const WireSpec& spec) {
  // Distributed line: 0.377 * R * C to 50% (ln2/2 exact for RC line is
  // 0.38 RC; use the classical 0.377).
  return 0.377 * (spec.r_per_m * spec.length) * (spec.c_per_m * spec.length);
}

double wireElmoreDelay(const WireSpec& spec, double r_driver, double c_load) {
  const double rw = spec.r_per_m * spec.length;
  const double cw = spec.c_per_m * spec.length;
  // Elmore with lumped driver/load: ln2*(Rd*(Cw+Cl)) + 0.377*Rw*Cw + ln2*Rw*Cl.
  return 0.693 * r_driver * (cw + c_load) + 0.377 * rw * cw + 0.693 * rw * c_load;
}

}  // namespace vls
