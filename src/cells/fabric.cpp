#include "cells/fabric.hpp"

#include "base/error.hpp"
#include "cells/gates.hpp"
#include "cells/related_work.hpp"
#include "devices/passive.hpp"

namespace vls {

FabricHandles buildFabric(Circuit& c, const FabricSpec& spec) {
  if (spec.islands < 1) throw InvalidInputError("buildFabric: need at least one island");
  if (spec.logic_stages < 1) throw InvalidInputError("buildFabric: need at least one logic stage");
  if (spec.supplies.empty()) throw InvalidInputError("buildFabric: need at least one supply");
  if (!c.devices().empty()) {
    throw InvalidInputError("buildFabric: circuit must be empty (device_island covers all devices)");
  }

  FabricHandles fab;
  const int n = spec.islands;

  // Tags every device added since the last call with its island.
  const auto mark = [&](int32_t island) { fab.device_island.resize(c.devices().size(), island); };

  // Global nets first: primary input, every rail, every boundary net.
  fab.primary_in = c.node("pi");
  std::vector<NodeId> rails(static_cast<size_t>(n));
  for (int k = 0; k < n; ++k) rails[k] = c.node("isl" + std::to_string(k) + ".vdd");
  std::vector<NodeId> bnodes(n > 1 ? static_cast<size_t>(n - 1) : 0);
  for (int k = 0; k + 1 < n; ++k) bnodes[k] = c.node("bnd" + std::to_string(k));

  fab.islands.resize(static_cast<size_t>(n));
  NodeId next_in = fab.primary_in;
  for (int k = 0; k < n; ++k) {
    const std::string pfx = "isl" + std::to_string(k);
    FabricIsland& isl = fab.islands[k];
    isl.rail = rails[k];
    isl.supply = spec.supplies[static_cast<size_t>(k) % spec.supplies.size()];
    isl.in = next_in;

    c.add<VoltageSource>(pfx + ".vsup", isl.rail, kGround, Waveform::dc(isl.supply));
    if (k == 0) {
      PulseSpec pulse = spec.input_pulse;
      if (pulse.v2 == 0.0) pulse.v2 = isl.supply;
      fab.input = &c.add<VoltageSource>("vin", fab.primary_in, kGround, Waveform::pulse(pulse));
    }
    const GateHandles logic = buildBufferChain(c, pfx + ".logic", isl.in, isl.rail,
                                               spec.logic_stages);
    isl.out = logic.out;
    c.add<Capacitor>(pfx + ".cl", isl.out, kGround, spec.load_cap);
    mark(k);

    if (k + 1 < n) {
      // Boundary k -> k+1: the wire belongs to the driver island, the
      // shifters to the receiver; they meet only at the boundary net.
      FabricBoundary bnd;
      bnd.node = bnodes[k];
      bnd.from_island = k;
      bnd.to_island = k + 1;
      buildWire(c, pfx + ".wire", isl.out, bnd.node, spec.wire);
      mark(k);

      const std::string rpfx = "isl" + std::to_string(k + 1);
      const NodeId shifted = c.node(rpfx + ".in");
      bnd.shifter = buildSstvs(c, rpfx + ".shift", bnd.node, shifted, rails[k + 1]);
      if (spec.related_work_shifters) {
        buildSsvsPuri(c, rpfx + ".puri", bnd.node, c.node(rpfx + ".puri_out"), rails[k + 1]);
        buildBootstrapShifter(c, rpfx + ".boot", bnd.node, c.node(rpfx + ".boot_out"),
                              rails[k + 1]);
      }
      mark(k + 1);
      fab.boundaries.push_back(std::move(bnd));
      next_in = shifted;
    }
  }
  fab.final_out = fab.islands.back().out;
  return fab;
}

std::shared_ptr<const PartitionSpec> makePartitionSpec(const FabricHandles& fabric) {
  auto spec = std::make_shared<PartitionSpec>();
  spec->device_block = fabric.device_island;
  spec->num_blocks = static_cast<int32_t>(fabric.islands.size());
  return spec;
}

void applyFabricSolverOptions(SimOptions& opt, const FabricHandles& fabric) {
  opt.partition = makePartitionSpec(fabric);
  opt.lu_ordering = LuOrdering::MinDegree;
  opt.enable_bypass = true;
  opt.parallel_assembly = true;
}

}  // namespace vls
