// Device sizing for every cell. The paper prints its W/L values only in
// the (unavailable) Figure 4, so these are our own sizes, chosen for the
// delay/leakage trade-off the paper describes and kept in the same
// sub-micron class (see DESIGN.md §4).
#pragma once

#include "base/units.hpp"

namespace vls {

/// Drawn size of one transistor.
struct MosSize {
  double w = 200e-9;
  double l = 100e-9;
};

struct InverterSizing {
  MosSize p{780e-9, 100e-9};
  MosSize n{390e-9, 100e-9};
};

struct Nor2Sizing {
  MosSize p{1100e-9, 100e-9}; ///< each series PMOS (stack of two)
  MosSize n{260e-9, 100e-9};  ///< each parallel NMOS
};

struct Nand2Sizing {
  MosSize p{520e-9, 100e-9};
  MosSize n{520e-9, 100e-9};
};

struct TgateSizing {
  MosSize p{390e-9, 100e-9};
  MosSize n{200e-9, 100e-9};
};

/// SS-TVS of Figure 4 (our reconstruction; device roles per DESIGN.md).
struct SstvsSizing {
  Nor2Sizing nor{};
  MosSize m1{900e-9, 100e-9};  ///< NMOS, gate=ctrl, discharges node2 into in
  MosSize m2{240e-9, 100e-9};  ///< PMOS, gate=out, passes charge to ctrl
  MosSize m3{140e-9, 240e-9};  ///< PMOS, gate=node1, charges node2; long and
                               ///< narrow so M1 wins the ratioed fight
  MosSize m4{300e-9, 100e-9};  ///< PMOS high-VT, gate=in (node1 pull-up head)
  MosSize m5{200e-9, 100e-9};  ///< PMOS, gate=node2 (node1 pull-up foot)
  MosSize m6{300e-9, 100e-9};  ///< NMOS high-VT, gate=in, pulls node1 low
  MosSize m7{300e-9, 100e-9};  ///< NMOS, gate=in, charge path from VDDO
  MosSize m8{160e-9, 100e-9};  ///< NMOS low-VT, gate=VDDO, charge path from in
  MosSize mc{700e-9, 250e-9};  ///< MOS capacitor on ctrl (gate cap ~ 3 fF)

  bool m4_high_vt = true;  ///< ablation toggle
  bool m6_high_vt = true;  ///< ablation toggle
  bool m8_low_vt = true;   ///< ablation toggle
};

/// Conventional dual-supply level shifter (Figure 1).
struct CvsSizing {
  InverterSizing input_inv{};       ///< VDDI-domain inverter producing inb
  MosSize pull_up{420e-9, 100e-9};  ///< MP1 / MP2 cross-coupled pair
  MosSize pull_down{520e-9, 100e-9};///< MN1 / MN2
};

/// Single-supply VS of Khan et al. [6] (reconstruction; DESIGN.md §4).
struct SsvsKhanSizing {
  MosSize diode{520e-9, 100e-9};     ///< diode-connected NMOS supply drop
  MosSize feedback{140e-9, 100e-9};  ///< weak PMOS restoring the virtual rail
  InverterSizing inv{{390e-9, 100e-9}, {390e-9, 100e-9}};  ///< dropped-rail inverter (HVT PMOS)
  MosSize pull_up{140e-9, 100e-9};   ///< weak level-restore keeper PMOS
  MosSize pull_down{520e-9, 100e-9}; ///< (reserved)
};

/// Combined VS of Figure 6 (inverter + SS-VS + input TGs + output mux).
struct CombinedVsSizing {
  TgateSizing input_tg{};
  InverterSizing inv{};
  SsvsKhanSizing ssvs{};
  TgateSizing mux_tg{};
  MosSize hold_down{140e-9, 100e-9};  ///< keeper grounding a disabled path input
};

}  // namespace vls
