// Floorplan-scale voltage-island fabric generator. The paper's shifter
// is deployed by the thousands on voltage-island boundaries (the
// Yu/Dong/Goto floorplanning papers in PAPERS.md); this builder
// produces that workload from the existing cell library: a chain of N
// islands, each with its own supply rail and local logic, joined by
// RC interconnect (src/cells/interconnect) and an SS-TVS level shifter
// (plus optional related-work comparison shifters) at every boundary.
//
// The returned handle exposes the structure the solver exploits:
// per-island membership of every device (device_island) and the
// boundary nets between islands, so makePartitionSpec() can hand the
// simulator a bordered-block-diagonal partition where each island is a
// diagonal block and only the boundary nets couple them.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cells/interconnect.hpp"
#include "cells/sstvs.hpp"
#include "circuit/circuit.hpp"
#include "devices/sources.hpp"
#include "devices/waveform.hpp"
#include "sim/options.hpp"

namespace vls {

struct FabricSpec {
  int islands = 3;        ///< voltage islands in the chain (>= 1)
  int logic_stages = 4;   ///< inverters in each island's buffer chain
  /// Island k's rail voltage is supplies[k % supplies.size()], so
  /// adjacent islands genuinely differ and every boundary shifts level.
  /// Ascending within the cycle: up-shift boundaries are the paper's
  /// use case, and the related-work bootstrap shifter has no stable,
  /// Newton-reachable DC point on a shallow down-shift boundary (its
  /// boosted internal node limit-cycles), which a {1.0, 0.8, 1.2}-style
  /// cycle would create at every third boundary.
  std::vector<double> supplies = {0.8, 1.0, 1.2};
  WireSpec wire{};        ///< boundary interconnect (pi-ladder RC)
  double load_cap = 2e-15;  ///< logic-output load per island [F]
  /// Also hang the related-work comparison shifters (Puri-style and
  /// bootstrapped) off every boundary net, as the floorplanning papers'
  /// mixed-cell assignments do.
  bool related_work_shifters = true;
  /// Primary input pulse at island 0. v2 == 0 means "island 0's rail".
  PulseSpec input_pulse{0.0, 0.0, 1e-9, 50e-12, 50e-12, 4e-9, 8e-9};
};

struct FabricIsland {
  NodeId rail = kGround;
  NodeId in = kGround;   ///< logic input (shifter output for islands > 0)
  NodeId out = kGround;  ///< logic output (drives the boundary wire)
  double supply = 0.0;
};

struct FabricBoundary {
  NodeId node = kGround;  ///< border net: wire end (driver side) = shifter input
  int from_island = 0;
  int to_island = 0;
  SstvsHandles shifter;   ///< the SS-TVS carrying the signal across
};

struct FabricHandles {
  std::vector<FabricIsland> islands;
  std::vector<FabricBoundary> boundaries;
  NodeId primary_in = kGround;
  NodeId final_out = kGround;      ///< last island's logic output
  VoltageSource* input = nullptr;  ///< primary input source
  /// Island of every device, aligned with Circuit::devices(). Boundary
  /// wires belong to the driving island, boundary shifters to the
  /// receiving one — the boundary net itself is the only coupling.
  std::vector<int32_t> device_island;
};

/// Build a fabric into an empty circuit (throws InvalidInputError
/// otherwise — device_island must cover the whole device list). Global
/// nets (primary input, rails, boundary nets) are created before any
/// island internals, the flattening order of a hierarchical netlist:
/// natural column order then carries genuine long-range fill, which is
/// exactly what LuOrdering::MinDegree exists to remove.
FabricHandles buildFabric(Circuit& c, const FabricSpec& spec = {});

/// Partition for SimOptions: one diagonal block per island.
std::shared_ptr<const PartitionSpec> makePartitionSpec(const FabricHandles& fabric);

/// Install the full fabric solve stack on `opt`: the island partition
/// (flat-vs-BBD routing stays with opt.partition_use), min-degree
/// ordering, device bypass, and parallel sharded assembly over the
/// island labels. Individual knobs can be overridden afterwards.
void applyFabricSolverOptions(SimOptions& opt, const FabricHandles& fabric);

}  // namespace vls
