// The paper's contribution: the Single-Supply True Voltage Level
// Shifter (SS-TVS, Figure 4), reconstructed from the operational
// description in Section 3 of the paper (see DESIGN.md §4 for the
// reconstruction argument).
//
// Topology (all bulk connections: PMOS -> VDDO, NMOS -> GND):
//
//   out   = NOR2(in, node2), supply VDDO; the node2-driven PMOS sits
//           next to VDDO so a risen node2 cuts the leakage path even
//           when `in` (at VDDI < VDDO) cannot fully turn its PMOS off.
//   M6    : NMOS (high-VT), gate=in       -- pulls node1 low when in=1
//   M3    : PMOS,           gate=node1    -- charges node2 to VDDO
//   M4    : PMOS (high-VT), gate=in       -- node1 restore, head
//   M5    : PMOS,           gate=node2    -- node1 restore, foot
//   M1    : NMOS,           gate=ctrl, source=in, drain=node2
//           -- discharges node2 into the fallen input; never on while
//              in=1 because ctrl cannot exceed in by VT there
//   M7    : NMOS,           gate=in,   VDDO <-> nodeA
//   M8    : NMOS (low-VT),  gate=VDDO, in   <-> nodeA
//   M2    : PMOS,           gate=out,  nodeA <-> ctrl
//           -- while in=1 (out=0), M2 conducts and ctrl charges to
//              min(VDDI, VDDO-VT8) or min(VDDO, VDDI-VT7); as out rises
//              M2 turns off and ctrl partially discharges through M8
//   MC    : NMOS gate capacitor on ctrl (storage)
#pragma once

#include <string>

#include "cells/gates.hpp"
#include "cells/sizing.hpp"
#include "circuit/circuit.hpp"

namespace vls {

struct SstvsHandles {
  NodeId in = kGround;
  NodeId out = kGround;
  NodeId node1 = kGround;
  NodeId node2 = kGround;
  NodeId ctrl = kGround;
  NodeId node_a = kGround;
  MosList fets;  ///< every transistor including the NOR gate and MC
};

/// Instantiate one SS-TVS between `in` and `out`, powered by vddo only.
SstvsHandles buildSstvs(Circuit& c, const std::string& prefix, NodeId in, NodeId out, NodeId vddo,
                        const SstvsSizing& sz = {});

}  // namespace vls
