#include "cells/sstvs.hpp"

namespace vls {

SstvsHandles buildSstvs(Circuit& c, const std::string& prefix, NodeId in, NodeId out, NodeId vddo,
                        const SstvsSizing& sz) {
  SstvsHandles h;
  h.in = in;
  h.out = out;
  h.node1 = c.node(prefix + ".node1");
  h.node2 = c.node(prefix + ".node2");
  h.ctrl = c.node(prefix + ".ctrl");
  h.node_a = c.node(prefix + ".nodea");

  const MosModelRef nmos = nmos90();
  const MosModelRef pmos = pmos90();
  const MosModelRef m4_model = sz.m4_high_vt ? pmos90Hvt() : pmos90();
  const MosModelRef m6_model = sz.m6_high_vt ? nmos90Hvt() : nmos90();
  const MosModelRef m8_model = sz.m8_low_vt ? nmos90Lvt() : nmos90();

  // Output NOR (supply = VDDO). Input `in` near the output, node2 next
  // to VDDO -- the ordering the leakage argument depends on.
  GateHandles nor = buildNor2(c, prefix + ".nor", in, h.node2, out, vddo, sz.nor);
  h.fets = nor.fets;

  // node1 pull-down and restore.
  h.fets.push_back(&addMos(c, prefix + ".m6", h.node1, in, kGround, kGround, m6_model, sz.m6));
  const NodeId mid45 = c.node(prefix + ".mid45");
  h.fets.push_back(&addMos(c, prefix + ".m4", mid45, in, vddo, vddo, m4_model, sz.m4));
  h.fets.push_back(&addMos(c, prefix + ".m5", h.node1, h.node2, mid45, vddo, pmos, sz.m5));

  // node2 pull-up and conditional discharge into the input.
  h.fets.push_back(&addMos(c, prefix + ".m3", h.node2, h.node1, vddo, vddo, pmos, sz.m3));
  h.fets.push_back(&addMos(c, prefix + ".m1", h.node2, h.ctrl, in, kGround, nmos, sz.m1));

  // ctrl charging network: (M7 || M8) -> nodeA -> M2 -> ctrl.
  h.fets.push_back(&addMos(c, prefix + ".m7", vddo, in, h.node_a, kGround, nmos, sz.m7));
  h.fets.push_back(&addMos(c, prefix + ".m8", in, vddo, h.node_a, kGround, m8_model, sz.m8));
  h.fets.push_back(&addMos(c, prefix + ".m2", h.node_a, out, h.ctrl, vddo, pmos, sz.m2));

  // Storage capacitor on ctrl.
  h.fets.push_back(&buildMosCap(c, prefix + ".mc", h.ctrl, sz.mc));
  return h;
}

}  // namespace vls
