// Level-converting flip-flop (LCFF): the natural next step the paper's
// conclusion points at — absorbing level conversion into the sequential
// element at a domain boundary instead of placing a separate shifter.
// Our LCFF clocks VDDI-domain data into a VDDO-domain master/slave
// latch pair; the data input enters through an SS-TVS, so the flop
// needs only the destination supply and works for either rail ordering.
#pragma once

#include <string>

#include "cells/gates.hpp"
#include "cells/sizing.hpp"
#include "cells/sstvs.hpp"
#include "circuit/circuit.hpp"

namespace vls {

struct LcffSizing {
  SstvsSizing shifter{};
  InverterSizing inv{{520e-9, 100e-9}, {260e-9, 100e-9}};
  TgateSizing tg{{520e-9, 100e-9}, {390e-9, 100e-9}};
  /// Keepers are long-channel so the write path wins the ratioed fight.
  InverterSizing keeper{{140e-9, 400e-9}, {140e-9, 400e-9}};
};

struct LcffHandles {
  NodeId d = kGround;      ///< data input (VDDI swing)
  NodeId clk = kGround;    ///< clock (VDDO swing)
  NodeId q = kGround;      ///< output (VDDO swing)
  NodeId d_shifted = kGround;  ///< internal: level-shifted (inverted) data
  NodeId master = kGround;     ///< master latch node
  MosList fets;
};

/// Positive-edge-triggered level-converting DFF powered by vddo only.
/// Note: q follows d (the internal SS-TVS inversion is cancelled by the
/// latch inverter chain parity).
LcffHandles buildLcff(Circuit& c, const std::string& prefix, NodeId d, NodeId clk, NodeId q,
                      NodeId vddo, const LcffSizing& sz = {});

}  // namespace vls
