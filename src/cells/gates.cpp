#include "cells/gates.hpp"

namespace vls {

Mosfet& addMos(Circuit& c, const std::string& name, NodeId d, NodeId g, NodeId s, NodeId b,
               const MosModelRef& model, MosSize size) {
  MosGeometry geom;
  geom.w = size.w;
  geom.l = size.l;
  return c.add<Mosfet>(name, d, g, s, b, model, geom);
}

GateHandles buildInverter(Circuit& c, const std::string& prefix, NodeId in, NodeId out, NodeId vdd,
                          const InverterSizing& sz, const MosModelRef& pmodel,
                          const MosModelRef& nmodel) {
  GateHandles h;
  h.out = out;
  h.fets.push_back(&addMos(c, prefix + ".mp", out, in, vdd, vdd, pmodel, sz.p));
  h.fets.push_back(&addMos(c, prefix + ".mn", out, in, kGround, kGround, nmodel, sz.n));
  return h;
}

GateHandles buildNor2(Circuit& c, const std::string& prefix, NodeId a, NodeId b, NodeId out,
                      NodeId vdd, const Nor2Sizing& sz, const MosModelRef& pmodel,
                      const MosModelRef& nmodel) {
  GateHandles h;
  h.out = out;
  const NodeId mid = c.node(prefix + ".pmid");
  h.fets.push_back(&addMos(c, prefix + ".mpb", mid, b, vdd, vdd, pmodel, sz.p));
  h.fets.push_back(&addMos(c, prefix + ".mpa", out, a, mid, vdd, pmodel, sz.p));
  h.fets.push_back(&addMos(c, prefix + ".mna", out, a, kGround, kGround, nmodel, sz.n));
  h.fets.push_back(&addMos(c, prefix + ".mnb", out, b, kGround, kGround, nmodel, sz.n));
  return h;
}

GateHandles buildNand2(Circuit& c, const std::string& prefix, NodeId a, NodeId b, NodeId out,
                       NodeId vdd, const Nand2Sizing& sz, const MosModelRef& pmodel,
                       const MosModelRef& nmodel) {
  GateHandles h;
  h.out = out;
  const NodeId mid = c.node(prefix + ".nmid");
  h.fets.push_back(&addMos(c, prefix + ".mpa", out, a, vdd, vdd, pmodel, sz.p));
  h.fets.push_back(&addMos(c, prefix + ".mpb", out, b, vdd, vdd, pmodel, sz.p));
  h.fets.push_back(&addMos(c, prefix + ".mna", out, a, mid, kGround, nmodel, sz.n));
  h.fets.push_back(&addMos(c, prefix + ".mnb", mid, b, kGround, kGround, nmodel, sz.n));
  return h;
}

GateHandles buildTgate(Circuit& c, const std::string& prefix, NodeId a, NodeId b, NodeId ctrl,
                       NodeId ctrl_b, NodeId vdd, const TgateSizing& sz,
                       const MosModelRef& pmodel, const MosModelRef& nmodel) {
  GateHandles h;
  h.out = b;
  h.fets.push_back(&addMos(c, prefix + ".mn", a, ctrl, b, kGround, nmodel, sz.n));
  h.fets.push_back(&addMos(c, prefix + ".mp", a, ctrl_b, b, vdd, pmodel, sz.p));
  return h;
}

GateHandles buildMux2(Circuit& c, const std::string& prefix, NodeId in0, NodeId in1, NodeId sel,
                      NodeId sel_b, NodeId out, NodeId vdd, const TgateSizing& sz,
                      const MosModelRef& pmodel, const MosModelRef& nmodel) {
  GateHandles h;
  h.out = out;
  // in0 path conducts when sel=0; in1 path when sel=1.
  GateHandles t0 = buildTgate(c, prefix + ".tg0", in0, out, sel_b, sel, vdd, sz, pmodel, nmodel);
  GateHandles t1 = buildTgate(c, prefix + ".tg1", in1, out, sel, sel_b, vdd, sz, pmodel, nmodel);
  h.fets.insert(h.fets.end(), t0.fets.begin(), t0.fets.end());
  h.fets.insert(h.fets.end(), t1.fets.begin(), t1.fets.end());
  return h;
}

GateHandles buildBufferChain(Circuit& c, const std::string& prefix, NodeId in, NodeId vdd,
                             int stages, const InverterSizing& sz, const MosModelRef& pmodel,
                             const MosModelRef& nmodel) {
  GateHandles h;
  NodeId prev = in;
  for (int k = 0; k < stages; ++k) {
    const NodeId next = c.node(prefix + ".b" + std::to_string(k));
    GateHandles inv =
        buildInverter(c, prefix + ".inv" + std::to_string(k), prev, next, vdd, sz, pmodel, nmodel);
    h.fets.insert(h.fets.end(), inv.fets.begin(), inv.fets.end());
    prev = next;
  }
  h.out = prev;
  return h;
}

Mosfet& buildMosCap(Circuit& c, const std::string& name, NodeId node, MosSize size,
                    const MosModelRef& nmodel) {
  MosGeometry geom;
  geom.w = size.w;
  geom.l = size.l;
  return c.add<Mosfet>(name, kGround, node, kGround, kGround, nmodel, geom);
}

}  // namespace vls
