// The comparison circuits from the paper:
//   * CVS  -- the conventional dual-supply level shifter of Figure 1.
//   * SS-VS of Khan et al. [6] -- single-supply up-shifter
//     (reconstruction; see DESIGN.md §4).
//   * Combined VS of Figure 6 -- inverter || SS-VS behind input
//     transmission gates and an output mux, steered by an external
//     control signal indicating whether VDDI < VDDO.
#pragma once

#include <string>

#include "cells/gates.hpp"
#include "cells/sizing.hpp"
#include "circuit/circuit.hpp"

namespace vls {

struct CvsHandles {
  NodeId in = kGround;
  NodeId in_b = kGround;  ///< internal complement (VDDI domain)
  NodeId out = kGround;
  NodeId out_b = kGround;
  MosList fets;
};

/// Conventional level shifter: needs BOTH supplies (vddi for the input
/// inverter, vddo for the cross-coupled output stage). Non-inverting.
CvsHandles buildCvs(Circuit& c, const std::string& prefix, NodeId in, NodeId out, NodeId vddi,
                    NodeId vddo, const CvsSizing& sz = {});

struct SsvsKhanHandles {
  NodeId in = kGround;
  NodeId out = kGround;      ///< inverting output
  NodeId in_b = kGround;     ///< local complement (virtual-rail inverter)
  NodeId vvdd = kGround;     ///< diode-dropped virtual rail
  NodeId out_b = kGround;    ///< second latch node (follows in)
  MosList fets;
};

/// Single-supply level shifter of [6]: valid only for VDDI <= VDDO.
/// Inverting (out = !in at VDDO swing).
SsvsKhanHandles buildSsvsKhan(Circuit& c, const std::string& prefix, NodeId in, NodeId out,
                              NodeId vddo, const SsvsKhanSizing& sz = {});

struct CombinedVsHandles {
  NodeId in = kGround;
  NodeId out = kGround;
  NodeId sel = kGround;     ///< 1 selects the SS-VS path (VDDI < VDDO)
  NodeId sel_b = kGround;
  NodeId inv_in = kGround;
  NodeId inv_out = kGround;
  NodeId ssvs_in = kGround;
  NodeId ssvs_out = kGround;
  MosList fets;
};

/// Combined VS of Figure 6. `sel` must be driven externally at VDDO
/// swing: sel=1 routes in -> TG -> SS-VS -> mux -> out; sel=0 routes
/// in -> TG -> inverter -> mux -> out. The deselected path's input is
/// grounded by a weak keeper so it cannot float to mid-rail.
CombinedVsHandles buildCombinedVs(Circuit& c, const std::string& prefix, NodeId in, NodeId out,
                                  NodeId sel, NodeId sel_b, NodeId vddo,
                                  const CombinedVsSizing& sz = {});

}  // namespace vls
