#include "cells/related_work.hpp"

#include "devices/passive.hpp"

namespace vls {

SsvsPuriHandles buildSsvsPuri(Circuit& c, const std::string& prefix, NodeId in, NodeId out,
                              NodeId vddo, const SsvsPuriSizing& sz) {
  SsvsPuriHandles h;
  h.in = in;
  h.out = out;
  h.in_b = c.node(prefix + ".inb");
  h.vvdd = c.node(prefix + ".vvdd");

  // Diode-connected rail drop ([13]'s entire trick).
  h.fets.push_back(&addMos(c, prefix + ".mnd", vddo, vddo, h.vvdd, kGround, nmos90(), sz.diode));
  GateHandles inv1 = buildInverter(c, prefix + ".inv1", in, h.in_b, h.vvdd, sz.inv);
  h.fets.insert(h.fets.end(), inv1.fets.begin(), inv1.fets.end());
  // Full-rail output inverter; its PMOS sees in_b's reduced high level,
  // which is where the leakage goes once vvdd - VDDI exceeds a VT.
  GateHandles inv2 = buildInverter(c, prefix + ".inv2", h.in_b, out, vddo, sz.out_inv);
  h.fets.insert(h.fets.end(), inv2.fets.begin(), inv2.fets.end());
  return h;
}

BootstrapHandles buildBootstrapShifter(Circuit& c, const std::string& prefix, NodeId in,
                                       NodeId out, NodeId vddo, const BootstrapSizing& sz) {
  BootstrapHandles h;
  h.in = in;
  h.out = out;
  h.boot = c.node(prefix + ".boot");

  // Precharge: diode-connected NMOS parks the bootstrapped gate at
  // ~VDDO - VT while the input is static.
  h.fets.push_back(
      &addMos(c, prefix + ".mpre", vddo, vddo, h.boot, kGround, nmos90(), sz.precharge));
  // Coupling capacitor: input edges kick the gate past its park level.
  c.add<Capacitor>(prefix + ".cboot", in, h.boot, sz.boost_cap);

  // Output stage: bootstrapped PMOS pull-up vs input-driven pull-down.
  h.fets.push_back(&addMos(c, prefix + ".mpu", out, h.boot, vddo, vddo, pmos90(), sz.pull_up));
  h.fets.push_back(&addMos(c, prefix + ".mpd", out, in, kGround, kGround, nmos90(),
                           sz.pull_down));

  // Keeper latches the rail once the output has risen (the boot node
  // drifts back to its park level and the pull-up weakens).
  const NodeId out_b = c.node(prefix + ".outb");
  GateHandles inv = buildInverter(c, prefix + ".inv", out, out_b, vddo, sz.inv);
  h.fets.insert(h.fets.end(), inv.fets.begin(), inv.fets.end());
  h.fets.push_back(&addMos(c, prefix + ".mk", out, out_b, vddo, vddo, pmos90(), sz.keeper));
  return h;
}

}  // namespace vls
