// Waveform measurements: threshold crossings, propagation delays,
// windowed averages, supply current/power extraction. These implement
// the paper's metric definitions: rising (falling) delay is the delay
// of the rising (falling) *output* edge; leakage high/low is the supply
// current with the output settled high/low.
#pragma once

#include <optional>

#include "devices/sources.hpp"
#include "numeric/interpolation.hpp"
#include "sim/result.hpp"

namespace vls {

/// First crossing of `level` in the given direction at or after `from`.
std::optional<double> crossTime(const Signal& s, double level, CrossDir dir, double from = 0.0);

/// All crossings after `from`.
std::vector<double> crossTimes(const Signal& s, double level, CrossDir dir, double from = 0.0);

/// crossTime with Hermite-cubic refinement of the crossing abscissa
/// (firstCrossingCubic): time-grid-robust, so measurements taken from
/// two different adaptive-step runs of the same waveform agree to
/// O(dt^3). The characterization farm uses this for every table metric.
std::optional<double> crossTimeCubic(const Signal& s, double level, CrossDir dir,
                                     double from = 0.0);

/// transitionTime measured on cubic-refined crossings.
std::optional<double> transitionTimeCubic(const Signal& s, double v_low, double v_high,
                                          CrossDir dir, double from = 0.0);

/// 50%-to-50% propagation delay: input crosses `in_level` (direction
/// in_dir) at/after `from`, output then crosses `out_level` (out_dir).
/// nullopt if either edge is missing.
std::optional<double> propagationDelay(const Signal& input, const Signal& output, double in_level,
                                       CrossDir in_dir, double out_level, CrossDir out_dir,
                                       double from = 0.0);

/// Mean of the signal over [t0, t1] (trapezoidal).
double averageValue(const Signal& s, double t0, double t1);

/// Min / max over [t0, t1].
double minValue(const Signal& s, double t0, double t1);
double maxValue(const Signal& s, double t0, double t1);

/// 10%-90% rise (or 90%-10% fall) time of the first such edge after `from`.
std::optional<double> transitionTime(const Signal& s, double v_low, double v_high, CrossDir dir,
                                     double from = 0.0);

/// Current delivered by a voltage source (positive = flowing out of the
/// + terminal into the circuit), as a time series.
Signal supplyCurrent(const TransientResult& result, const VoltageSource& source);

/// Average power delivered by a DC supply over [t0, t1] [W].
double averageSupplyPower(const TransientResult& result, const VoltageSource& source, double t0,
                          double t1);

/// Charge delivered over [t0, t1] [C].
double deliveredCharge(const TransientResult& result, const VoltageSource& source, double t0,
                       double t1);

/// Switching energy of one transition: supply energy over
/// [t_edge, t_edge + window] minus the static baseline power times the
/// window (so leakage does not masquerade as switching energy) [J].
double transitionEnergy(const TransientResult& result, const VoltageSource& source,
                        double t_edge, double window, double baseline_power = 0.0);

}  // namespace vls
