#include "analysis/routing_cost.hpp"

#include <cmath>
#include <set>

#include "base/error.hpp"

namespace vls {
namespace {

double manhattan(const ModuleSpec& a, const ModuleSpec& b) {
  return std::fabs(a.x - b.x) + std::fabs(a.y - b.y);
}

}  // namespace

RoutingReport compareRoutingCost(const std::vector<ModuleSpec>& modules,
                                 const std::vector<SignalBundle>& signals,
                                 const RoutingCostModel& model) {
  RoutingReport rep;
  std::set<std::pair<size_t, size_t>> imported_rails;  // (supply module, importing module)
  for (const SignalBundle& s : signals) {
    if (s.from >= modules.size() || s.to >= modules.size()) {
      throw InvalidInputError("compareRoutingCost: bad module index");
    }
    const ModuleSpec& src = modules[s.from];
    const ModuleSpec& dst = modules[s.to];
    const double dist = manhattan(src, dst) * model.detour;

    rep.signal_wirelength += dist * s.count;
    rep.signal_area += dist * model.signal_width * s.count;

    // CVS at the destination needs the SOURCE supply only for
    // low-to-high conversion (an inverter handles high-to-low).
    if (src.vdd < dst.vdd) {
      if (imported_rails.emplace(s.from, s.to).second) {
        ++rep.cvs_extra_rails;
        rep.cvs_supply_wirelength += dist;
        rep.cvs_supply_area += dist * model.supply_width;
      }
      // Dual-polarity alternative: one extra wire per crossing signal.
      rep.dual_extra_wires += s.count;
      rep.dual_extra_area += dist * model.signal_width * s.count;
    }
  }
  return rep;
}

void paperFourModuleSystem(std::vector<ModuleSpec>& modules,
                           std::vector<SignalBundle>& signals, double die_edge,
                           int signals_per_pair) {
  modules = {
      {"m08", 0.8, 0.0, 0.0},
      {"m10", 1.0, die_edge, 0.0},
      {"m12", 1.2, 0.0, die_edge},
      {"m14", 1.4, die_edge, die_edge},
  };
  signals.clear();
  for (size_t i = 0; i < modules.size(); ++i) {
    for (size_t j = 0; j < modules.size(); ++j) {
      if (i != j) signals.push_back({i, j, signals_per_pair});
    }
  }
}

}  // namespace vls
