// Static transfer characteristics and noise margins of a level shifter:
// VIL/VIH (unity-gain points of the DC transfer curve), VOL/VOH, and
// the derived noise margins NML/NMH referred to the input domain. The
// paper characterizes dynamics only; any cell library release would
// also publish these.
#pragma once

#include "analysis/shifter_harness.hpp"

namespace vls {

struct StaticMargins {
  double vol = 0.0;  ///< output low with input at VDDI [V]
  double voh = 0.0;  ///< output high with input at 0 [V]
  double vil = 0.0;  ///< input low threshold (first unity-gain point) [V]
  double vih = 0.0;  ///< input high threshold (second unity-gain point) [V]
  double nml = 0.0;  ///< low noise margin  = VIL - VOL(driver side: 0) [V]
  double nmh = 0.0;  ///< high noise margin = VDDI - VIH [V]
  bool regenerative = false;  ///< max |gain| > 1 somewhere in the transition
  double peak_gain = 0.0;     ///< max |dVout/dVin|
  /// False when the DC curve never transitions: the cell is edge/charge
  /// operated in this direction (true of the SS-TVS up-shift path,
  /// whose M1 gate drive exists only as stored ctrl charge — a
  /// quasi-static ramp lets ctrl track the input through M2 and the
  /// output never flips). Static margins are then meaningless.
  bool static_transition = false;
  /// Any sweep points where even homotopy failed (bistable snapping).
  bool fully_converged = true;
};

/// DC-sweep the input of the given shifter configuration and extract
/// the static margins. The ctrl-node state of the SS-TVS is
/// preconditioned by solving the input-high OP first, then sweeping
/// downward and upward (the cell is dynamic; the DC curve uses the
/// conservative stored-ctrl state).
StaticMargins measureStaticMargins(const HarnessConfig& config, double step = 5e-3);

}  // namespace vls
