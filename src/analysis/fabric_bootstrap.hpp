// DC bootstrap for voltage-island fabrics. A cold zero start defeats
// the recovery ladder once a fabric chains more than a handful of
// SSTVS stages (the shifter's internal latch multiplies the number of
// wrong basins with every island). The fabric is spatially periodic
// with the supply cycle, so the fix is cheap: solve a prototype of
// supplies.size() + 1 islands flat — always small, always converges —
// and tile its node voltages across the full fabric by name. The
// result goes into SimOptions::nodeset.
#pragma once

#include <vector>

#include "cells/fabric.hpp"
#include "circuit/circuit.hpp"

namespace vls {

/// Per-node DC guess for a circuit built by buildFabric(c, spec).
/// Indexed by NodeId; pad with zeros for branch unknowns (or install
/// as SimOptions::nodeset, which pads automatically).
std::vector<double> fabricDcGuess(const Circuit& c, const FabricSpec& spec);

}  // namespace vls
