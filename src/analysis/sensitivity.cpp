#include "analysis/sensitivity.hpp"

#include <algorithm>
#include <cmath>

#include "base/parallel.hpp"

namespace vls {
namespace {

ShifterMetrics measureWithVtShift(const HarnessConfig& config, size_t device_index,
                                  double delta_vt) {
  ShifterTestbench tb(config);
  tb.dutFets()[device_index]->geometry().delta_vt = delta_vt;
  return tb.measure();
}

}  // namespace

SensitivityReport analyzeVtSensitivity(const HarnessConfig& config, double vt_step) {
  SensitivityReport report;
  ShifterTestbench probe(config);
  const size_t n = probe.dutFets().size();

  // The 2n probe simulations (+/- step per device) are independent:
  // dispatch them across the worker pool into pre-sized slots, then
  // combine the central differences serially.
  std::vector<ShifterMetrics> hi_all(n), lo_all(n);
  parallelFor(2 * n, [&](size_t t) {
    const size_t i = t / 2;
    const bool up = (t % 2) == 0;
    (up ? hi_all : lo_all)[i] = measureWithVtShift(config, i, up ? vt_step : -vt_step);
  });

  double variance_rise = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const std::string name = probe.dutFets()[i]->name();
    const double vt_nominal = probe.dutFets()[i]->model().vt0;
    const ShifterMetrics& hi = hi_all[i];
    const ShifterMetrics& lo = lo_all[i];

    SensitivityEntry e;
    e.device = name;
    const double inv2h = 1.0 / (2.0 * vt_step);
    e.d_delay_rise = (hi.delay_rise - lo.delay_rise) * inv2h;
    e.d_delay_fall = (hi.delay_fall - lo.delay_fall) * inv2h;
    e.d_leak_high = (hi.leakage_high - lo.leakage_high) * inv2h;
    e.d_leak_low = (hi.leakage_low - lo.leakage_low) * inv2h;
    const double sigma_vt = 0.0334 * vt_nominal;  // the paper's sigma
    e.sigma_contrib_rise = std::fabs(e.d_delay_rise) * sigma_vt;
    variance_rise += e.sigma_contrib_rise * e.sigma_contrib_rise;
    report.entries.push_back(std::move(e));
  }
  report.predicted_sigma_rise = std::sqrt(variance_rise);
  std::sort(report.entries.begin(), report.entries.end(),
            [](const SensitivityEntry& a, const SensitivityEntry& b) {
              return a.sigma_contrib_rise > b.sigma_contrib_rise;
            });
  return report;
}

}  // namespace vls
