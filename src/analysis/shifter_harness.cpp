#include "analysis/shifter_harness.hpp"

#include <algorithm>
#include <cmath>

#include "analysis/measure.hpp"
#include "base/error.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "sim/ensemble.hpp"
#include "sim/simulator.hpp"

namespace vls {

const char* shifterKindName(ShifterKind kind) {
  switch (kind) {
    case ShifterKind::Sstvs: return "SS-TVS";
    case ShifterKind::CombinedVs: return "Combined VS";
    case ShifterKind::InverterOnly: return "Inverter";
    case ShifterKind::SsvsKhan: return "SS-VS [6]";
    case ShifterKind::SsvsPuri: return "SS-VS [13]";
    case ShifterKind::Bootstrap: return "Bootstrap [9]";
  }
  return "?";
}

bool shifterKindInverting(ShifterKind kind) {
  return kind != ShifterKind::SsvsPuri;  // [13] here is two cascaded inverters
}

ShifterTestbench::ShifterTestbench(HarnessConfig config) : config_(std::move(config)) {
  if (config_.bits.empty()) throw InvalidInputError("HarnessConfig: empty bit sequence");
  build();
}

Waveform ShifterTestbench::stimulusWaveform(double edge_time) const {
  // PWL over the bit slots plus the two static leakage states: in=0
  // (output high for inverting DUTs), then in=1. Through the driver
  // inverter the PWL carries the *complement* of the bit sequence (the
  // driver restores polarity); direct drive carries the bits verbatim.
  std::vector<int> levels = config_.bits;
  levels.push_back(0);
  levels.push_back(1);

  std::vector<double> ts;
  std::vector<double> vs;
  auto slot_duration = [&](size_t k) {
    return k < config_.bits.size() ? config_.bit_period : config_.leak_settle;
  };
  double t = 0.0;
  for (size_t k = 0; k < levels.size(); ++k) {
    const bool high = config_.direct_drive ? levels[k] != 0 : levels[k] == 0;
    const double v = high ? config_.vddi : 0.0;
    if (k == 0) {
      ts.push_back(0.0);
      vs.push_back(v);
    } else {
      // The edge must land inside its slot — slow characterization
      // ramps can exceed the short static-state slots appended after
      // the bits, where only the settled level matters.
      ts.push_back(t + std::min(edge_time, 0.9 * slot_duration(k)));
      vs.push_back(v);
    }
    t += slot_duration(k);
    ts.push_back(t);
    vs.push_back(v);
  }
  return Waveform::pwl(ts, vs);
}

void ShifterTestbench::build() {
  Circuit& c = circuit_;
  const NodeId vddo = c.node("vddo");
  const NodeId vddi = c.node("vddi");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");

  vddo_src_ = &c.add<VoltageSource>("v_vddo", vddo, kGround, config_.vddo);
  vddi_src_ = &c.add<VoltageSource>("v_vddi", vddi, kGround, config_.vddi);

  t_bits_end_ = static_cast<double>(config_.bits.size()) * config_.bit_period;
  t_leak_high_start_ = t_bits_end_;
  t_leak_low_start_ = t_bits_end_ + config_.leak_settle;
  t_stop_ = t_bits_end_ + 2.0 * config_.leak_settle;

  if (config_.direct_drive) {
    // The PWL drives the DUT input directly: the input slew is exactly
    // the PWL edge time (characterization farm).
    vin_src_ = &c.add<VoltageSource>("v_in", in, kGround, stimulusWaveform(config_.edge_time));
  } else {
    const NodeId drv = c.node("drv");
    vin_src_ = &c.add<VoltageSource>("v_in", drv, kGround, stimulusWaveform(config_.edge_time));
    // Same-sized driver inverter in the VDDI domain.
    buildInverter(c, "xdrv", drv, in, vddi, config_.inverter);
  }

  // Fixed output load (the paper: 1 fF).
  load_cap_ = &c.add<Capacitor>("c_load", out, kGround, config_.load_cap);

  probe_nodes_ = {"in", "out"};

  switch (config_.kind) {
    case ShifterKind::Sstvs: {
      SstvsHandles h = buildSstvs(c, "xdut", in, out, vddo, config_.sstvs);
      dut_fets_ = h.fets;
      probe_nodes_.push_back(c.nodeName(h.node1));
      probe_nodes_.push_back(c.nodeName(h.node2));
      probe_nodes_.push_back(c.nodeName(h.ctrl));
      break;
    }
    case ShifterKind::CombinedVs: {
      const NodeId sel = c.node("sel");
      const NodeId sel_b = c.node("selb");
      const bool up_shift = config_.vddi < config_.vddo;
      c.add<VoltageSource>("v_sel", sel, kGround, up_shift ? config_.vddo : 0.0);
      c.add<VoltageSource>("v_selb", sel_b, kGround, up_shift ? 0.0 : config_.vddo);
      CombinedVsHandles h = buildCombinedVs(c, "xdut", in, out, sel, sel_b, vddo,
                                            config_.combined);
      dut_fets_ = h.fets;
      probe_nodes_.push_back(c.nodeName(h.inv_out));
      probe_nodes_.push_back(c.nodeName(h.ssvs_out));
      break;
    }
    case ShifterKind::InverterOnly: {
      GateHandles h = buildInverter(c, "xdut", in, out, vddo, config_.inverter);
      dut_fets_ = h.fets;
      break;
    }
    case ShifterKind::SsvsKhan: {
      SsvsKhanHandles h = buildSsvsKhan(c, "xdut", in, out, vddo, config_.ssvs);
      dut_fets_ = h.fets;
      probe_nodes_.push_back(c.nodeName(h.vvdd));
      probe_nodes_.push_back(c.nodeName(h.in_b));
      break;
    }
    case ShifterKind::SsvsPuri: {
      SsvsPuriHandles h = buildSsvsPuri(c, "xdut", in, out, vddo, config_.puri);
      dut_fets_ = h.fets;
      probe_nodes_.push_back(c.nodeName(h.vvdd));
      probe_nodes_.push_back(c.nodeName(h.in_b));
      break;
    }
    case ShifterKind::Bootstrap: {
      BootstrapHandles h = buildBootstrapShifter(c, "xdut", in, out, vddo, config_.bootstrap);
      dut_fets_ = h.fets;
      probe_nodes_.push_back(c.nodeName(h.boot));
      break;
    }
  }
  inverting_ = shifterKindInverting(config_.kind);
}

const TransientResult& ShifterTestbench::lastRun() const {
  if (!last_run_) throw InvalidInputError("ShifterTestbench: no run yet");
  return *last_run_;
}

std::vector<std::string> ShifterTestbench::probeNodes() const { return probe_nodes_; }

ShifterMetrics ShifterTestbench::measure() {
  SimOptions opts = config_.sim;
  opts.temperature_c = config_.temperature_c;
  Simulator sim(circuit_, opts);
  last_run_ = std::make_unique<TransientResult>(
      sim.transient(t_stop_, config_.dt_max, config_.edge_time / 4.0));
  return extractMetrics(*last_run_, [&](double t_probe, const std::vector<double>& x0) {
    return sim.solveOpAt(t_probe, x0);
  });
}

std::vector<EnsembleSample> ShifterTestbench::measureEnsemble(
    const std::vector<std::vector<MosGeometry>>& lane_geoms) {
  const size_t lanes = lane_geoms.size();
  if (lanes == 0) throw InvalidInputError("measureEnsemble: no lanes");
  SimOptions opts = config_.sim;
  opts.temperature_c = config_.temperature_c;
  EnsembleSimulator sim(circuit_, lanes, opts);
  for (size_t f = 0; f < dut_fets_.size(); ++f) {
    auto* state = static_cast<MosfetLaneState*>(sim.laneState(*dut_fets_[f]));
    for (size_t l = 0; l < lanes; ++l) {
      if (lane_geoms[l].size() != dut_fets_.size()) {
        throw InvalidInputError("measureEnsemble: geometry row size != dutFets() size");
      }
      state->setGeometry(l, lane_geoms[l][f]);
    }
  }
  sim.transient(t_stop_, config_.dt_max, config_.edge_time / 4.0);

  // Static leakage probes, ensemble-native: both probe instants are
  // shared by every lane (the stimulus is lane-invariant), so solve
  // each once for all lanes and gather per lane below. The probe times
  // mirror extractMetrics' leak_at calls exactly.
  const double win = config_.leak_settle * config_.leak_window_frac;
  const double t_probe_a = t_leak_high_start_ + config_.leak_settle - 0.5 * win;
  const double t_probe_b = t_stop_ - 0.5 * win;
  auto warm_step = [&](double t_probe) {
    size_t step = sim.steps() - 1;
    while (step > 0 && sim.time()[step] > t_probe) --step;
    return step;
  };
  const std::vector<double> leak_a = sim.solveOpAt(t_probe_a, sim.solutionSoA(warm_step(t_probe_a)));
  const std::vector<double> leak_b = sim.solveOpAt(t_probe_b, sim.solutionSoA(warm_step(t_probe_b)));

  std::vector<EnsembleSample> out(lanes);
  for (size_t l = 0; l < lanes; ++l) {
    if (sim.laneFailed(l)) {
      out[l].failure = sim.laneFailure(l);  // ok stays false: re-run scalar
      continue;
    }
    const TransientResult run = sim.laneResult(l);
    auto gather = [&](const std::vector<double>& soa) {
      std::vector<double> x(sim.numUnknowns());
      for (size_t i = 0; i < x.size(); ++i) x[i] = soa[i * lanes + l];
      return x;
    };
    const std::vector<double> x_a = gather(leak_a);
    const std::vector<double> x_b = gather(leak_b);
    out[l].metrics = extractMetrics(run, [&](double t_probe, const std::vector<double>&) {
      return t_probe < 0.5 * (t_probe_a + t_probe_b) ? x_a : x_b;
    });
    out[l].ok = true;
  }
  return out;
}

ShifterMetrics ShifterTestbench::extractMetrics(const TransientResult& run,
                                                const LeakSolver& solve_op_at) const {
  const Signal in_sig = run.node("in");
  const Signal out_sig = run.node("out");
  const double vmi = 0.5 * config_.vddi;
  const double vmo = 0.5 * config_.vddo;

  ShifterMetrics m;

  // Delays: every input edge inside the bit phase maps to an output
  // edge — of the opposite direction for inverting DUTs, the same
  // direction otherwise. Worst case wins.
  const std::vector<double> all_rise = crossTimes(in_sig, vmi, CrossDir::Rising, 0.0);
  const std::vector<double> all_fall = crossTimes(in_sig, vmi, CrossDir::Falling, 0.0);
  const std::vector<double>& in_fall = inverting_ ? all_fall : all_rise;  // -> output rises
  const std::vector<double>& in_rise = inverting_ ? all_rise : all_fall;  // -> output falls
  std::vector<double> powers_rise;
  std::vector<double> powers_fall;
  for (double t_edge : in_fall) {
    if (t_edge > t_bits_end_) continue;  // transition into the leak phases
    const auto t_out = crossTime(out_sig, vmo, CrossDir::Rising, t_edge);
    if (t_out) m.delay_rise = std::max(m.delay_rise, *t_out - t_edge);
    const double w1 = std::min(t_edge + config_.bit_period, run.time().back());
    powers_rise.push_back(averageSupplyPower(run, *vddo_src_, t_edge, w1));
  }
  for (double t_edge : in_rise) {
    if (t_edge > t_bits_end_) continue;  // transition into the leak phases
    const auto t_out = crossTime(out_sig, vmo, CrossDir::Falling, t_edge);
    if (t_out) m.delay_fall = std::max(m.delay_fall, *t_out - t_edge);
    const double w1 = std::min(t_edge + config_.bit_period, run.time().back());
    powers_fall.push_back(averageSupplyPower(run, *vddo_src_, t_edge, w1));
  }
  auto mean_of = [](const std::vector<double>& xs) {
    if (xs.empty()) return 0.0;
    double acc = 0.0;
    for (double x : xs) acc += x;
    return acc / static_cast<double>(xs.size());
  };
  m.power_rise = mean_of(powers_rise);
  m.power_fall = mean_of(powers_fall);

  // Leakage: true steady state, obtained by warm-starting a DC solve
  // from the end of each settled transient phase. A finite averaging
  // window would still contain the (subthreshold-limited, ~1/t) ctrl
  // recharge current of the SS-TVS and overstate its leakage.
  const double win = config_.leak_settle * config_.leak_window_frac;
  const double t_high_1 = t_leak_high_start_ + config_.leak_settle;
  const double t_low_1 = t_stop_;
  auto leak_at = [&](double t_probe, double& vddo_leak, double& vddi_leak) {
    size_t step = run.steps() - 1;
    while (step > 0 && run.time()[step] > t_probe) --step;
    const std::vector<double> x = solve_op_at(t_probe, run.solution(step));
    vddo_leak = std::fabs(x[vddo_src_->branchIndex()]);
    vddi_leak = std::fabs(x[vddi_src_->branchIndex()]);
  };
  // The first appended phase holds in=0 (output high for inverting
  // DUTs, low otherwise); the second holds in=1.
  if (inverting_) {
    leak_at(t_high_1 - 0.5 * win, m.leakage_high, m.leakage_high_vddi);
    leak_at(t_low_1 - 0.5 * win, m.leakage_low, m.leakage_low_vddi);
  } else {
    leak_at(t_high_1 - 0.5 * win, m.leakage_low, m.leakage_low_vddi);
    leak_at(t_low_1 - 0.5 * win, m.leakage_high, m.leakage_high_vddi);
  }

  // Functional check: in each settled window the output must sit within
  // 10% of the correct rail.
  const double tol = 0.1 * config_.vddo;
  bool ok = true;
  auto settled_out = [&](double t0, double t1) { return averageValue(out_sig, t0, t1); };
  auto out_for_bit = [&](int bit) {
    const bool high = inverting_ ? bit == 0 : bit != 0;
    return high ? config_.vddo : 0.0;
  };
  for (size_t k = 0; k < config_.bits.size(); ++k) {
    const double t1 = static_cast<double>(k + 1) * config_.bit_period;
    const double t0 = t1 - 0.15 * config_.bit_period;
    if (std::fabs(settled_out(t0, t1) - out_for_bit(config_.bits[k])) > tol) ok = false;
  }
  if (std::fabs(settled_out(t_high_1 - win, t_high_1) - out_for_bit(0)) > tol) ok = false;
  if (std::fabs(settled_out(t_low_1 - win, t_low_1) - out_for_bit(1)) > tol) ok = false;
  m.functional = ok;
  return m;
}

ShifterMetrics measureShifter(const HarnessConfig& config) {
  ShifterTestbench tb(config);
  return tb.measure();
}

ShifterMetrics measureShifterWorstCase(const HarnessConfig& config) {
  // Adversarial input histories: what matters is how much charge the
  // ctrl node holds when the input falls (the paper's "worst-case input
  // sequence"). A runt high pulse leaves ctrl lowest.
  std::vector<HarnessConfig> variants;
  {
    HarnessConfig v = config;
    v.bits = {1, 0, 1, 0};
    variants.push_back(v);
  }
  {
    HarnessConfig v = config;
    v.bits = {1, 1, 0, 1, 0};
    variants.push_back(v);
  }
  {
    HarnessConfig v = config;
    v.bits = {1, 0, 1, 0, 1, 0, 1, 0};
    v.bit_period = config.bit_period * 0.4;
    variants.push_back(v);
  }

  ShifterMetrics worst;
  worst.functional = true;
  bool first = true;
  for (const auto& v : variants) {
    const ShifterMetrics m = measureShifter(v);
    if (first) {
      worst = m;
      first = false;
      continue;
    }
    worst.delay_rise = std::max(worst.delay_rise, m.delay_rise);
    worst.delay_fall = std::max(worst.delay_fall, m.delay_fall);
    worst.power_rise = std::max(worst.power_rise, m.power_rise);
    worst.power_fall = std::max(worst.power_fall, m.power_fall);
    worst.leakage_high = std::max(worst.leakage_high, m.leakage_high);
    worst.leakage_low = std::max(worst.leakage_low, m.leakage_low);
    worst.leakage_high_vddi = std::max(worst.leakage_high_vddi, m.leakage_high_vddi);
    worst.leakage_low_vddi = std::max(worst.leakage_low_vddi, m.leakage_low_vddi);
    worst.functional = worst.functional && m.functional;
  }
  return worst;
}

}  // namespace vls
