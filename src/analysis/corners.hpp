// Process-corner analysis: deterministic worst-case device skews
// (fast/slow NMOS x fast/slow PMOS, plus temperature and supply
// derating) complementing the statistical Monte-Carlo engine. The
// paper validates the SS-TVS under random variation; corners answer
// the sign-off question a library team would ask next.
#pragma once

#include <string>
#include <vector>

#include "analysis/shifter_harness.hpp"

namespace vls {

struct CornerSpec {
  std::string name = "TT";
  double nmos_dvt = 0.0;     ///< NMOS VT shift [V] (negative = fast)
  double pmos_dvt = 0.0;     ///< PMOS VT magnitude shift [V]
  double dw_frac = 0.0;      ///< width skew as a fraction
  double dl_frac = 0.0;      ///< length skew as a fraction
  double temperature_c = 27.0;
  double supply_scale = 1.0; ///< multiplies both VDDI and VDDO
};

/// The standard five-corner set at the given VT skew (default 3 sigma
/// of the paper's distribution = 10% of nominal VT).
std::vector<CornerSpec> standardCorners(double vt_skew_frac = 0.10);

struct CornerResult {
  CornerSpec corner;
  ShifterMetrics metrics;
};

/// Characterize one configuration across corners. Device skews apply to
/// the DUT transistors only (as in the paper's Monte-Carlo).
std::vector<CornerResult> runCorners(const HarnessConfig& base,
                                     const std::vector<CornerSpec>& corners);

}  // namespace vls
