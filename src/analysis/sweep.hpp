// 2-D supply sweep engine (Figures 8/9 and the functional-range claim):
// run the harness over a VDDI x VDDO grid and collect delays and
// functionality.
#pragma once

#include <functional>
#include <vector>

#include "analysis/shifter_harness.hpp"

namespace vls {

struct SweepPoint {
  double vddi = 0.0;
  double vddo = 0.0;
  ShifterMetrics metrics;
  /// Set when the point's simulation threw (metrics.functional is then
  /// forced false): the thrown message, plus the deepest recovery-
  /// ladder stage and implicated node when the throw carried
  /// ConvergenceDiagnostics.
  std::string error;
  std::string failure_stage;
  std::string failure_node;
};

struct Sweep2dConfig {
  double v_min = 0.8;
  double v_max = 1.4;
  double step = 0.05;
  /// Called after each point (progress reporting); may be null. Calls
  /// are serialized, but arrive in completion order when threads > 1.
  std::function<void(const SweepPoint&, size_t done, size_t total)> on_point;
  /// Worker threads for the grid: 0 = parallelThreadCount().
  int threads = 0;
};

struct Sweep2dResult {
  std::vector<double> vddi_axis;
  std::vector<double> vddo_axis;
  std::vector<SweepPoint> points;  ///< row-major: vddi outer, vddo inner

  const SweepPoint& at(size_t i_vddi, size_t i_vddo) const {
    return points[i_vddi * vddo_axis.size() + i_vddo];
  }
  size_t functionalCount() const;
};

/// Sweep `base` (its vddi/vddo are overwritten) over the grid.
Sweep2dResult sweepSupplies(const HarnessConfig& base, const Sweep2dConfig& config);

}  // namespace vls
