#include "analysis/corners.hpp"

#include "base/logging.hpp"
#include "base/parallel.hpp"

namespace vls {

std::vector<CornerSpec> standardCorners(double k) {
  std::vector<CornerSpec> out;
  out.push_back({"TT", 0.0, 0.0, 0.0, 0.0, 27.0, 1.0});
  // Fast: lower VT, wider/shorter; slow: the reverse. Hot-slow and
  // cold-fast pair the electrical and environmental worst cases.
  out.push_back({"FF", -k * 0.39, -k * 0.39, +0.05, -0.05, 0.0, 1.05});
  out.push_back({"SS", +k * 0.39, +k * 0.39, -0.05, +0.05, 90.0, 0.95});
  out.push_back({"FS", -k * 0.39, +k * 0.39, 0.0, 0.0, 27.0, 1.0});
  out.push_back({"SF", +k * 0.39, -k * 0.39, 0.0, 0.0, 27.0, 1.0});
  return out;
}

std::vector<CornerResult> runCorners(const HarnessConfig& base,
                                     const std::vector<CornerSpec>& corners) {
  // Corners are independent simulations: run them across the worker
  // pool, each writing its pre-sized slot.
  std::vector<CornerResult> results(corners.size());
  parallelFor(corners.size(), [&](size_t i) {
    const CornerSpec& corner = corners[i];
    HarnessConfig cfg = base;
    cfg.temperature_c = corner.temperature_c;
    cfg.vddi = base.vddi * corner.supply_scale;
    cfg.vddo = base.vddo * corner.supply_scale;
    ShifterTestbench tb(cfg);
    for (Mosfet* fet : tb.dutFets()) {
      MosGeometry g = fet->geometry();
      const bool is_nmos = fet->model().type == MosType::Nmos;
      g.delta_vt = is_nmos ? corner.nmos_dvt : corner.pmos_dvt;
      g.delta_w = g.w * corner.dw_frac;
      g.delta_l = g.l * corner.dl_frac;
      fet->setGeometry(g);
    }
    CornerResult r;
    r.corner = corner;
    try {
      r.metrics = tb.measure();
    } catch (const Error& e) {
      VLS_LOG_WARN("corner %s failed: %s", corner.name.c_str(), e.what());
      r.metrics.functional = false;
    }
    results[i] = std::move(r);
  });
  return results;
}

}  // namespace vls
