// Monte-Carlo process/temperature variation engine (paper Tables 3/4):
// channel width, channel length and threshold voltage varied
// independently per device; temperature applied globally. Sigmas follow
// the paper: sigma(W) = sigma(L) = 3.34% of the 90 nm feature size,
// sigma(VT) = 3.34% of each device's nominal VT (3 sigma = 10%).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/shifter_harness.hpp"
#include "numeric/statistics.hpp"

namespace vls {

struct VariationSpec {
  double sigma_w = 0.0334 * 90e-9;   ///< absolute width sigma [m]
  double sigma_l = 0.0334 * 90e-9;   ///< absolute length sigma [m]
  double sigma_vt_rel = 0.0334;      ///< VT sigma as a fraction of nominal
};

struct MonteCarloConfig {
  int samples = 1000;
  uint64_t seed = 20080310;  ///< deterministic by default (DATE 2008 ;-)
  VariationSpec variation{};
  /// Worker threads for the sample loop: 0 = parallelThreadCount()
  /// (VLS_THREADS env override, else hardware concurrency).
  int threads = 0;
};

/// Raw per-sample metric vectors plus their summaries.
///
/// Determinism: each sample draws from its own RNG stream derived
/// serially from the seed, and results are gathered in sample order, so
/// every vector here is bit-identical for any thread count. Samples
/// whose simulation threw contribute no metric entries; their ids are
/// in failed_samples, so metric index i maps to the i-th sample id not
/// listed there as thrown.
struct MonteCarloResult {
  std::vector<double> delay_rise, delay_fall;
  std::vector<double> power_rise, power_fall;
  std::vector<double> leakage_high, leakage_low;
  /// Sample indices that failed: simulation threw, or the shifter was
  /// measured non-functional. Size equals functional_failures.
  std::vector<int> failed_samples;
  int functional_failures = 0;
  int samples = 0;

  Summary delayRise() const { return summarize(delay_rise); }
  Summary delayFall() const { return summarize(delay_fall); }
  Summary powerRise() const { return summarize(power_rise); }
  Summary powerFall() const { return summarize(power_fall); }
  Summary leakageHigh() const { return summarize(leakage_high); }
  Summary leakageLow() const { return summarize(leakage_low); }
};

/// Run the harness `config.samples` times with fresh random device
/// perturbations each time (DUT devices only, as in the paper).
MonteCarloResult runMonteCarlo(const HarnessConfig& harness, const MonteCarloConfig& config);

}  // namespace vls
