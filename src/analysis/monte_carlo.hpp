// Monte-Carlo process/temperature variation engine (paper Tables 3/4):
// channel width, channel length and threshold voltage varied
// independently per device; temperature applied globally. Sigmas follow
// the paper: sigma(W) = sigma(L) = 3.34% of the 90 nm feature size,
// sigma(VT) = 3.34% of each device's nominal VT (3 sigma = 10%).
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/shifter_harness.hpp"
#include "numeric/statistics.hpp"
#include "sim/fault_injection.hpp"

namespace vls {

struct VariationSpec {
  double sigma_w = 0.0334 * 90e-9;   ///< absolute width sigma [m]
  double sigma_l = 0.0334 * 90e-9;   ///< absolute length sigma [m]
  double sigma_vt_rel = 0.0334;      ///< VT sigma as a fraction of nominal
};

struct MonteCarloConfig {
  int samples = 1000;
  uint64_t seed = 20080310;  ///< deterministic by default (DATE 2008 ;-)
  VariationSpec variation{};
  /// Worker threads for the sample loop: 0 = parallelThreadCount()
  /// (VLS_THREADS env override, else hardware concurrency).
  int threads = 0;
  /// Lanes per lockstep ensemble batch: 1 (default) runs every sample
  /// through the scalar reference Simulator; K > 1 batches K
  /// consecutive samples into one EnsembleSimulator run (SoA lanes,
  /// shared LU structure). Per-sample RNG draws are identical in both
  /// modes, and lanes that drop out of a lockstep run are transparently
  /// re-run scalar, so failure semantics do not change. Values above
  /// kMaxLanes are clamped; composes with `threads` (each worker
  /// thread runs whole batches).
  int ensemble_width = 1;
  /// Deterministic fault injection: when fault_sample >= 0, that
  /// sample's simulation runs with a fresh FaultInjector built from
  /// `fault`. In ensemble mode the batch containing the sample gets a
  /// lane-targeted copy, and a failed lane's scalar re-run gets its own
  /// fresh instance — fire budgets never leak between attempts, so the
  /// scalar and ensemble paths produce identical failed_samples.
  int fault_sample = -1;
  FaultSpec fault{};
};

/// Why a sample is listed in MonteCarloResult::failed_samples.
enum class FailureKind : uint8_t {
  SimulationError,  ///< the sample's simulation threw (no metric entries)
  NonFunctional,    ///< simulated fine, but the output missed a rail
};

struct SampleFailure {
  int id = 0;
  FailureKind kind = FailureKind::SimulationError;
  /// Recovery attribution (SimulationError only): the deepest ladder
  /// stage that ran, the implicated unknown, and the thrown message.
  /// Empty for NonFunctional records and for throws that carried no
  /// ConvergenceDiagnostics.
  std::string stage;
  std::string node;
  std::string message;
  friend bool operator==(const SampleFailure&, const SampleFailure&) = default;
};

/// Raw per-sample metric vectors plus their summaries.
///
/// Determinism: each sample draws from its own RNG stream derived
/// serially from the seed, and results are gathered in sample order, so
/// every vector here is bit-identical for any thread count. Samples
/// whose simulation threw contribute no metric entries; their ids are
/// in failed_samples, so metric index i maps to the i-th sample id not
/// listed there as thrown.
struct MonteCarloResult {
  std::vector<double> delay_rise, delay_fall;
  std::vector<double> power_rise, power_fall;
  std::vector<double> leakage_high, leakage_low;
  /// Per-sample failure records in ascending id order, split by reason:
  /// the simulation threw (SimulationError) or the shifter simulated
  /// fine but was measured non-functional (NonFunctional).
  std::vector<SampleFailure> failed_samples;
  /// Samples measured non-functional (kind == NonFunctional).
  int functional_failures = 0;
  /// Samples whose simulation threw (kind == SimulationError).
  int simulation_errors = 0;
  int samples = 0;

  /// Ids of all failed samples, both kinds, ascending.
  std::vector<int> failedIds() const {
    std::vector<int> ids;
    ids.reserve(failed_samples.size());
    for (const SampleFailure& f : failed_samples) ids.push_back(f.id);
    return ids;
  }

  Summary delayRise() const { return summarize(delay_rise); }
  Summary delayFall() const { return summarize(delay_fall); }
  Summary powerRise() const { return summarize(power_rise); }
  Summary powerFall() const { return summarize(power_fall); }
  Summary leakageHigh() const { return summarize(leakage_high); }
  Summary leakageLow() const { return summarize(leakage_low); }
};

/// Run the harness `config.samples` times with fresh random device
/// perturbations each time (DUT devices only, as in the paper).
MonteCarloResult runMonteCarlo(const HarnessConfig& harness, const MonteCarloConfig& config);

}  // namespace vls
