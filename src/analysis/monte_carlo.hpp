// Monte-Carlo process/temperature variation engine (paper Tables 3/4):
// channel width, channel length and threshold voltage varied
// independently per device; temperature applied globally. Sigmas follow
// the paper: sigma(W) = sigma(L) = 3.34% of the 90 nm feature size,
// sigma(VT) = 3.34% of each device's nominal VT (3 sigma = 10%).
//
// The engine scales from the paper's 1000-sample tables to 10^6+
// samples: work items are whole ensemble batches on the work-stealing
// pool (threads x ensemble_width composes multiplicatively), a
// streaming mode summarizes through O(1) accumulators instead of
// materializing six per-sample vectors, and Latin-hypercube / Sobol
// sampling modes converge variability statistics with far fewer
// samples than plain pseudo-random draws.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/shifter_harness.hpp"
#include "base/job_control.hpp"
#include "numeric/qmc.hpp"
#include "numeric/statistics.hpp"
#include "sim/fault_injection.hpp"

namespace vls {

struct VariationSpec {
  double sigma_w = 0.0334 * 90e-9;   ///< absolute width sigma [m]
  double sigma_l = 0.0334 * 90e-9;   ///< absolute length sigma [m]
  double sigma_vt_rel = 0.0334;      ///< VT sigma as a fraction of nominal
  /// Global temperature sigma [degC]; 0 (the default) disables the
  /// temperature dimension entirely, preserving the historical draw
  /// order. When enabled, each sample draws one extra deviate after
  /// its per-device geometry draws. Per-sample temperature is applied
  /// through the scalar engine: ensemble lanes share one thermal
  /// context, so runMonteCarlo forces ensemble_width = 1.
  double sigma_temperature_c = 0.0;
};

/// One sample's fully-derived perturbations: what the evaluator (real
/// testbench or surrogate) receives. Depends only on (config, id).
struct MonteCarloSample {
  int id = 0;
  /// Perturbed DUT geometries, in dutFets() order.
  std::vector<MosGeometry> geometries;
  double temperature_c = 27.0;
};

struct MonteCarloConfig {
  int samples = 1000;
  uint64_t seed = 20080310;  ///< deterministic by default (DATE 2008 ;-)
  VariationSpec variation{};
  /// Worker threads for the sample loop: 0 = parallelThreadCount()
  /// (VLS_THREADS env override, else hardware concurrency).
  int threads = 0;
  /// Lanes per lockstep ensemble batch: 1 (default) runs every sample
  /// through the scalar reference Simulator; K > 1 batches K
  /// consecutive samples into one EnsembleSimulator run (SoA lanes,
  /// shared LU structure). Per-sample draws are identical in both
  /// modes, and lanes that drop out of a lockstep run are transparently
  /// re-run scalar, so failure semantics do not change. Values above
  /// kMaxLanes are clamped; composes with `threads` (each worker
  /// thread runs whole batches, chunks of batches under the
  /// work-stealing scheduler).
  int ensemble_width = 1;
  /// How per-sample perturbations are drawn. All modes satisfy the
  /// serial-derivation contract (sample s sees identical draws for any
  /// thread count, width, and streaming setting): Pseudo derives one
  /// xoshiro stream per sample, LatinHypercube/Sobol map index-
  /// addressable low-discrepancy points through the inverse normal
  /// CDF. Sobol requires 3*|dutFets|(+1 with temperature variation)
  /// <= SobolSequence::kMaxDims.
  SamplingMode sampling = SamplingMode::Pseudo;
  /// Streaming-statistics mode: per-sample metric vectors are never
  /// materialized; summaries come from O(1) Welford + P-squared
  /// accumulators (MonteCarloResult::stream). failed_samples,
  /// functional_failures and simulation_errors stay bit-identical to
  /// the exact path; quantile summaries agree within estimator
  /// accuracy. Off by default: the exact path remains the reference.
  bool streaming = false;
  /// Optional sample evaluator replacing the transient testbench:
  /// given the fully-derived sample, return its metrics (throwing
  /// vls::Error marks the sample as SimulationError). Used by
  /// benchmarks and tests to exercise the scheduler/statistics layers
  /// at 10^6+ samples where full transients are infeasible — see
  /// makeSurrogateEvaluator. Fault injection is ignored on this path.
  std::function<ShifterMetrics(const MonteCarloSample&)> evaluator;
  /// Deterministic fault injection: when fault_sample >= 0, that
  /// sample's simulation runs with a fresh FaultInjector built from
  /// `fault`. In ensemble mode the batch containing the sample gets a
  /// lane-targeted copy, and a failed lane's scalar re-run gets its own
  /// fresh instance — fire budgets never leak between attempts, so the
  /// scalar and ensemble paths produce identical failed_samples.
  int fault_sample = -1;
  FaultSpec fault{};
  /// Degrade-don't-abort retry budget: a sample whose scalar
  /// simulation throws is retried up to this many times under
  /// escalatedRecoveryPolicy (tighter gmin schedule, doubled source
  /// stepping) before being recorded as a SimulationError. Every
  /// attempt gets a fresh fault injector (budgets re-fire), so
  /// injected-fault samples keep their failed ids. 0 disables.
  int max_retries = 1;
  /// Cooperative cancellation / wall-clock deadline (base/job_control):
  /// threaded into the worker pool, every Newton loop and the recovery
  /// ladder. A cancel or deadline expiry aborts runMonteCarlo with
  /// JobInterrupted; progress since the last checkpoint is lost, the
  /// checkpoint file survives. Null = unbudgeted.
  std::shared_ptr<JobControl> job;
  /// Checkpoint/resume: when non-empty, the run executes in sequential
  /// epochs of checkpoint_interval samples and atomically rewrites this
  /// file (versioned + CRC-guarded, see io/checkpoint) after each
  /// epoch. An existing compatible file resumes from its completed-id
  /// watermark; resumed runs produce bit-identical results to
  /// uninterrupted runs with the same config. In streaming mode,
  /// checkpointing also makes accumulation epoch-ordered, so streaming
  /// summaries become bit-identical across thread counts (the
  /// unchecked-pointed streaming path stays mutex-ordered/approximate).
  /// An incompatible file (different seed/mode/width/...) throws.
  std::string checkpoint_path;
  /// Samples per checkpoint epoch; 0 = auto (max(1024, samples/16)),
  /// always rounded up to a multiple of the ensemble width.
  int checkpoint_interval = 0;
};

/// Why a sample is listed in MonteCarloResult::failed_samples.
enum class FailureKind : uint8_t {
  SimulationError,  ///< the sample's simulation threw (no metric entries)
  NonFunctional,    ///< simulated fine, but the output missed a rail
};

struct SampleFailure {
  int id = 0;
  FailureKind kind = FailureKind::SimulationError;
  /// Recovery attribution (SimulationError only): the deepest ladder
  /// stage that ran, the implicated unknown, and the thrown message.
  /// Empty for NonFunctional records and for throws that carried no
  /// ConvergenceDiagnostics.
  std::string stage;
  std::string node;
  std::string message;
  friend bool operator==(const SampleFailure&, const SampleFailure&) = default;
};

/// Streaming-mode summaries (one per reported metric), precomputed at
/// gather time from the O(1) accumulators.
struct StreamingSummaries {
  Summary delay_rise, delay_fall;
  Summary power_rise, power_fall;
  Summary leakage_high, leakage_low;
};

/// Per-sample metric vectors (exact mode) or streaming summaries, plus
/// the failure records.
///
/// Determinism: each sample's draws depend only on (seed, sampling
/// mode, sample index) and results are gathered in sample order, so in
/// exact mode every vector here is bit-identical for any thread count
/// and ensemble width — and failed_samples is bit-identical across
/// streaming on/off as well. Samples whose simulation threw contribute
/// no metric entries; their ids are in failed_samples, so metric index
/// i maps to the i-th sample id not listed there as thrown.
struct MonteCarloResult {
  std::vector<double> delay_rise, delay_fall;
  std::vector<double> power_rise, power_fall;
  std::vector<double> leakage_high, leakage_low;
  /// Per-sample failure records in ascending id order, split by reason:
  /// the simulation threw (SimulationError) or the shifter simulated
  /// fine but was measured non-functional (NonFunctional).
  std::vector<SampleFailure> failed_samples;
  /// Samples measured non-functional (kind == NonFunctional).
  int functional_failures = 0;
  /// Samples whose simulation threw (kind == SimulationError).
  int simulation_errors = 0;
  int samples = 0;
  /// True when the run used MonteCarloConfig::streaming: the metric
  /// vectors above are empty and `stream` holds the summaries.
  bool streaming = false;
  StreamingSummaries stream{};
  /// Degrade-don't-abort counters: samples that needed an escalated
  /// second attempt, and how many of those then converged.
  int retried_samples = 0;
  int retry_recovered = 0;
  /// Completed-id watermark loaded from a checkpoint (0 = fresh run).
  int resumed_samples = 0;

  /// Ids of all failed samples, both kinds, ascending.
  std::vector<int> failedIds() const {
    std::vector<int> ids;
    ids.reserve(failed_samples.size());
    for (const SampleFailure& f : failed_samples) ids.push_back(f.id);
    return ids;
  }

  Summary delayRise() const { return streaming ? stream.delay_rise : summarize(delay_rise); }
  Summary delayFall() const { return streaming ? stream.delay_fall : summarize(delay_fall); }
  Summary powerRise() const { return streaming ? stream.power_rise : summarize(power_rise); }
  Summary powerFall() const { return streaming ? stream.power_fall : summarize(power_fall); }
  Summary leakageHigh() const {
    return streaming ? stream.leakage_high : summarize(leakage_high);
  }
  Summary leakageLow() const { return streaming ? stream.leakage_low : summarize(leakage_low); }
};

/// Run the harness `config.samples` times with fresh random device
/// perturbations each time (DUT devices only, as in the paper).
MonteCarloResult runMonteCarlo(const HarnessConfig& harness, const MonteCarloConfig& config);

/// Closed-form response-surface stand-in for the transient testbench:
/// metric scales and W/L/VT/temperature sensitivities representative of
/// the SS-TVS cell, plus a deterministic rare non-functional region in
/// the deep VT tail (~0.1% of samples at paper sigmas). Microseconds
/// per sample instead of tens of milliseconds, so benchmarks and tests
/// can exercise scheduling, streaming statistics and QMC convergence at
/// 10^5..10^7 samples. Not a circuit model — characterization results
/// must come from the real harness.
std::function<ShifterMetrics(const MonteCarloSample&)> makeSurrogateEvaluator(
    const HarnessConfig& harness);

}  // namespace vls
