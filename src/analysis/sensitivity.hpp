// Per-device sensitivity analysis: finite-difference derivatives of the
// harness metrics with respect to each DUT transistor's threshold
// voltage (and optionally width). Explains the Monte-Carlo sigmas of
// Tables 3/4 mechanistically: the variance decomposes as
// sigma_metric^2 ~ sum_i (dM/dVT_i)^2 sigma_VT_i^2 under the paper's
// independent-variation model.
#pragma once

#include <string>
#include <vector>

#include "analysis/shifter_harness.hpp"

namespace vls {

struct SensitivityEntry {
  std::string device;       ///< DUT transistor name
  double d_delay_rise = 0;  ///< s per volt of VT shift
  double d_delay_fall = 0;
  double d_leak_high = 0;   ///< A per volt
  double d_leak_low = 0;
  /// Predicted contribution to the rising-delay sigma under the
  /// paper's VT sigma (3.34% of that device's nominal VT).
  double sigma_contrib_rise = 0;
};

struct SensitivityReport {
  std::vector<SensitivityEntry> entries;  ///< sorted by |sigma_contrib_rise|
  double predicted_sigma_rise = 0;        ///< RSS of contributions [s]
};

/// Central-difference sensitivity scan over every DUT transistor.
/// `vt_step` is the probe step [V].
SensitivityReport analyzeVtSensitivity(const HarnessConfig& config, double vt_step = 10e-3);

}  // namespace vls
