// Quantifies the paper's Figures 2/3 argument: in a multi-voltage
// system, conventional level shifters (CVS) force every receiving
// domain to import the supply rail of each lower-voltage domain that
// talks to it; dual-polarity signalling avoids the rails but doubles
// the crossing signal wires; single-supply shifters need neither.
// This model counts rails/wires and estimates routing area from module
// placement, so the qualitative figures become numbers.
#pragma once

#include <string>
#include <vector>

namespace vls {

struct ModuleSpec {
  std::string name;
  double vdd = 1.0;   ///< domain supply [V]
  double x = 0.0;     ///< placement [m]
  double y = 0.0;
};

struct SignalBundle {
  size_t from = 0;  ///< module index
  size_t to = 0;
  int count = 1;    ///< signals in the bundle
};

struct RoutingCostModel {
  double signal_width = 0.2e-6;   ///< routed signal wire width [m]
  double supply_width = 3.0e-6;   ///< supply rail width (IR-drop sized) [m]
  /// Manhattan detour factor for actual routes vs point-to-point.
  double detour = 1.2;
};

struct RoutingReport {
  // Conventional (CVS, Figure 2): imported supply rails.
  int cvs_extra_rails = 0;            ///< distinct (supply -> module) imports
  double cvs_supply_wirelength = 0.0; ///< [m]
  double cvs_supply_area = 0.0;       ///< [m^2]
  // Dual-polarity alternative (send in and in_b): extra signal wires.
  int dual_extra_wires = 0;
  double dual_extra_area = 0.0;
  // Single-supply shifters (SS-VS/SS-TVS, Figure 3): nothing extra.
  double ssvs_extra_area = 0.0;
  // Common baseline: the signal wiring everyone pays.
  double signal_wirelength = 0.0;
  double signal_area = 0.0;
};

/// Evaluate the three interfacing strategies for a placed multi-voltage
/// system. A CVS at module `to` receiving from `from` needs the `from`
/// supply imported iff vdd(from) < vdd(to) (an inverter suffices the
/// other way, as the paper notes); each distinct imported rail is
/// routed once per importing module.
RoutingReport compareRoutingCost(const std::vector<ModuleSpec>& modules,
                                 const std::vector<SignalBundle>& signals,
                                 const RoutingCostModel& model = {});

/// The paper's four-module example system (0.8/1.0/1.2/1.4 V) on a
/// 2 x 2 floorplan with an all-to-all signal mesh.
void paperFourModuleSystem(std::vector<ModuleSpec>& modules,
                           std::vector<SignalBundle>& signals, double die_edge = 2e-3,
                           int signals_per_pair = 16);

}  // namespace vls
