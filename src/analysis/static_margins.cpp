#include "analysis/static_margins.hpp"

#include <algorithm>
#include <cmath>

#include "base/error.hpp"
#include "sim/simulator.hpp"

namespace vls {

StaticMargins measureStaticMargins(const HarnessConfig& config, double step) {
  // Direct-drive testbench (no driver inverter: the sweep needs exact
  // input levels).
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("v_vddo", vddo, kGround, config.vddo);
  auto& vin = c.add<VoltageSource>("v_in", in, kGround, config.vddi);

  switch (config.kind) {
    case ShifterKind::Sstvs:
      buildSstvs(c, "xdut", in, out, vddo, config.sstvs);
      break;
    case ShifterKind::SsvsKhan:
      buildSsvsKhan(c, "xdut", in, out, vddo, config.ssvs);
      break;
    case ShifterKind::SsvsPuri:
      buildSsvsPuri(c, "xdut", in, out, vddo, config.puri);
      break;
    case ShifterKind::Bootstrap:
      buildBootstrapShifter(c, "xdut", in, out, vddo, config.bootstrap);
      break;
    case ShifterKind::InverterOnly:
      buildInverter(c, "xdut", in, out, vddo, config.inverter);
      break;
    case ShifterKind::CombinedVs: {
      const NodeId sel = c.node("sel");
      const NodeId selb = c.node("selb");
      const bool up = config.vddi < config.vddo;
      c.add<VoltageSource>("v_sel", sel, kGround, up ? config.vddo : 0.0);
      c.add<VoltageSource>("v_selb", selb, kGround, up ? 0.0 : config.vddo);
      buildCombinedVs(c, "xdut", in, out, sel, selb, vddo, config.combined);
      break;
    }
  }

  SimOptions opts = config.sim;
  opts.temperature_c = config.temperature_c;
  Simulator sim(c, opts);
  // Condition at input high (unique OP; charges the SS-TVS ctrl node),
  // then sweep down to 0 with warm starts.
  sim.solveOp();
  const DcSweepResult down = sim.dcSweep(vin, config.vddi, 0.0, step);

  // Ascending order for analysis.
  std::vector<double> vin_axis(down.sweep.rbegin(), down.sweep.rend());
  std::vector<double> vout = down.node("out");
  std::reverse(vout.begin(), vout.end());
  if (vin_axis.size() < 3) throw InvalidInputError("measureStaticMargins: sweep too coarse");

  StaticMargins m;
  const bool inverting = shifterKindInverting(config.kind);
  m.voh = inverting ? vout.front() : vout.back();
  m.vol = inverting ? vout.back() : vout.front();

  // Unity-gain points from centered differences.
  double vil = vin_axis.front();
  double vih = vin_axis.back();
  bool found_first = false;
  for (size_t i = 1; i + 1 < vin_axis.size(); ++i) {
    const double gain =
        (vout[i + 1] - vout[i - 1]) / (vin_axis[i + 1] - vin_axis[i - 1]);
    m.peak_gain = std::max(m.peak_gain, std::fabs(gain));
    if (std::fabs(gain) >= 1.0) {
      if (!found_first) {
        vil = vin_axis[i];
        found_first = true;
      }
      vih = vin_axis[i];
    }
  }
  m.vil = vil;
  m.vih = vih;
  m.regenerative = m.peak_gain > 1.0;
  m.fully_converged = down.allConverged();
  // A static transition exists when the output actually spans the rail.
  const double swing = std::fabs(m.voh - m.vol);
  m.static_transition = swing > 0.5 * config.vddo && found_first;
  m.nml = m.static_transition ? m.vil : 0.0;
  m.nmh = m.static_transition ? config.vddi - m.vih : 0.0;
  return m;
}

}  // namespace vls
