// Lane-batched Liberty NLDM characterization farm. Every cell kind is
// swept over an input-slew x output-load grid at several (VDDI, VDDO,
// temperature, process) corners, producing the delay / transition /
// switching-energy tables a .lib NLDM group needs.
//
// Perf core: grid points of one (cell, corner) share the testbench
// topology and differ only in the PWL input edge time and the load
// capacitance — *parameter* lanes. K grid points at a time are mapped
// onto the SoA ensemble engine (SourceLaneState waveform overrides +
// CapacitorLaneState load overrides), so one stamp tape and one
// symbolic LU factorization serve the whole table while the (cell,
// corner) tasks fan out across the VLS_THREADS worker pool. Each batch
// warm-starts its operating point from the previous batch's converged
// t=0 solution (SPICE .nodeset) — grid neighbors sit at the same DC
// state, so the Newton ladder collapses to a couple of iterations.
//
// The scalar per-point loop (use_lanes = false) is the reference
// implementation; the lane path must reproduce its tables within
// CharGrid::lane_rel_tol (enforced by tests and the perf-smoke CI).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "analysis/corners.hpp"
#include "analysis/shifter_harness.hpp"
#include "base/job_control.hpp"

namespace vls {

/// One library characterization corner: supplies, die temperature and
/// a process skew applied to the DUT transistors.
struct CharCorner {
  std::string name = "tt_0p80v_1p20v_25c";
  double vddi = 0.8;
  double vddo = 1.2;
  double temperature_c = 25.0;
  CornerSpec process{};  ///< DUT device skew (dvt / dw / dl); supplies above win
};

/// The default library corner set: typical and slow-hot (the sign-off
/// pair a timing library ships at minimum).
std::vector<CharCorner> standardCharCorners();

/// Characterization grid and engine knobs.
struct CharGrid {
  /// index_1: input transition times, 10-90% [s].
  std::vector<double> slews = {10e-12, 30e-12, 60e-12, 120e-12, 240e-12};
  /// index_2: output load capacitances [F].
  std::vector<double> loads = {0.5e-15, 1e-15, 2e-15, 4e-15, 8e-15};

  /// Lane-batched engine (false = scalar per-point reference loop).
  bool use_lanes = true;
  /// Grid points per ensemble batch, clamped to [1, kMaxLanes].
  size_t lane_width = 8;
  /// Warm-start each batch / point from its predecessor's operating point.
  bool warm_start = true;
  /// Run the driver-loaded static harness (leakage / functional) per
  /// cell. Perf benches turn it off to time the grid alone.
  bool static_metrics = true;
  /// Optional evaluation order of the flattened grid (size slews*loads;
  /// empty = row-major). The grid-shuffle test uses this to show the
  /// warm-start chain does not change converged results.
  std::vector<size_t> point_order;

  /// Documented agreement bound between the lane and scalar paths:
  /// full-scale relative error per metric family — for each of the
  /// four timing tables, max |lane - scalar| over the grid divided by
  /// the scalar table's peak magnitude; the two power tables share one
  /// full scale, the cell's peak switching energy. Full-scale is the
  /// NLDM-meaningful contract: per-entry relative error would divide
  /// femtosecond-level solver reproducibility noise by near-zero
  /// entries (a sub-picosecond inverter delay, the near-cancelling
  /// quiet-slot energy integral) and report unbounded disagreement
  /// where the tables are in fact bit-for-bit usable.
  double lane_rel_tol = 1e-3;

  double bit_period = 1e-9;     ///< slot length per stimulus bit
  double settle = 0.05e-9;      ///< appended static-state hold (stimulus tail)
  double dt_max = 5e-12;        ///< transient step ceiling (accuracy floor)
  double tran_reltol = 1e-4;    ///< tightened LTE tolerance for table accuracy
};

/// One grid point's measured metrics (all SI units).
struct CharPoint {
  double slew = 0.0;        ///< input transition (10-90%) [s]
  double load = 0.0;        ///< output load [F]
  double delay_rise = 0.0;  ///< 50% input -> 50% rising output [s]
  double delay_fall = 0.0;  ///< 50% input -> 50% falling output [s]
  double trans_rise = 0.0;  ///< 10-90% rising output transition [s]
  double trans_fall = 0.0;  ///< 90-10% falling output transition [s]
  double energy_rise = 0.0; ///< supply energy of the rising-output slot [J]
  double energy_fall = 0.0; ///< supply energy of the falling-output slot [J]
  bool ok = false;          ///< converged and output reached both rails
};

/// Structured per-unit failure record (degrade-don't-abort): one grid
/// point whose simulation kept throwing through the scalar fallback
/// AND an escalated-recovery retry. The point stays in the table as a
/// hole (ok == false); the .lib writer annotates it and the farm's
/// exit report lists it instead of aborting the run.
struct CharPointFailure {
  size_t point = 0;    ///< flattened grid index (si * loads + li)
  double slew = 0.0;   ///< input transition of the failed point [s]
  double load = 0.0;   ///< output load of the failed point [F]
  int attempts = 0;    ///< scalar attempts made (1 + retries)
  std::string stage;   ///< deepest recovery ladder stage reached
  std::string node;    ///< worst/offending unknown, when attributed
  std::string message; ///< the final thrown message
};

/// The full table set of one (cell, corner): points in row-major
/// slews-major order (point index = si * loads.size() + li).
struct CharTable {
  ShifterKind kind = ShifterKind::Sstvs;
  CharCorner corner{};
  std::vector<double> slews;
  std::vector<double> loads;
  std::vector<CharPoint> points;
  ShifterMetrics static_metrics{};  ///< leakage / functional (scalar harness)
  double area_m2 = 0.0;
  bool inverting = true;

  /// Points that dropped out of a lane batch and were re-run through
  /// the scalar reference path.
  size_t scalar_fallbacks = 0;
  /// Points whose scalar run threw and needed an escalated-recovery
  /// retry (degrade-don't-abort); includes both recovered points and
  /// the ones that ended up in `failures`.
  size_t retried_points = 0;
  /// Grid points that failed every attempt: holes in the table
  /// (ok == false), annotated in the .lib output.
  std::vector<CharPointFailure> failures;

  const CharPoint& at(size_t si, size_t li) const { return points[si * loads.size() + li]; }
};

struct CharRequest {
  std::vector<ShifterKind> kinds = {ShifterKind::Sstvs, ShifterKind::CombinedVs,
                                    ShifterKind::InverterOnly, ShifterKind::SsvsPuri};
  std::vector<CharCorner> corners;  ///< empty = standardCharCorners()
  CharGrid grid{};
  HarnessConfig base{};  ///< sizing / sim-option seed (supplies overridden per corner)

  /// Degrade-don't-abort retry budget per grid point: a point whose
  /// scalar run throws is retried this many times under
  /// escalatedRecoveryPolicy before being recorded as a
  /// CharPointFailure hole. 0 disables retries (a failing point holes
  /// immediately).
  int max_retries = 1;
  /// Cooperative cancellation / deadline, threaded into every solver
  /// loop of every task (see base/job_control). unitDone() fires once
  /// per completed lane batch / scalar point.
  std::shared_ptr<JobControl> job;
  /// Checkpoint/resume: when non-empty, per-(cell, corner) progress —
  /// measured points, batch cursor, warm-start chain state — is
  /// atomically rewritten to this file after every lane batch / scalar
  /// point. An existing compatible file resumes mid-grid; resumed
  /// farms produce bit-identical tables (and .lib text) to
  /// uninterrupted runs. An incompatible file throws.
  std::string checkpoint_path;
};

/// Per-task resilience plumbing characterizeCells hands to each
/// characterizeCell call; default-constructed = no job control, one
/// retry, no checkpointing (the standalone-call behavior).
struct CharCellControl {
  std::shared_ptr<JobControl> job;  ///< cancellation/deadline token
  int max_retries = 1;              ///< escalated retries per failing point
  /// Serialized progress to resume from (null = fresh task).
  const std::vector<uint8_t>* resume = nullptr;
  /// Progress sink, called with the serialized task state after every
  /// completed batch/point and once at task completion (null = off).
  std::function<void(const std::vector<uint8_t>&)> save;
};

/// Characterize every (kind, corner) pair; tasks fan out across the
/// VLS_THREADS pool, each running its grid through the lane-batched
/// ensemble engine (or the scalar loop when grid.use_lanes is false).
/// Results are ordered kinds-major: result[k * corners + c].
std::vector<CharTable> characterizeCells(const CharRequest& request);

/// One (kind, corner) grid — the unit of work characterizeCells
/// parallelizes over; exposed for tests and benches.
CharTable characterizeCell(ShifterKind kind, const CharCorner& corner, const CharGrid& grid,
                           const HarnessConfig& base, const CharCellControl& control = {});

}  // namespace vls
