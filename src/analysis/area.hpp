// Analytic standard-cell area estimator (substitute for the paper's
// Cadence Virtuoso layout, Figure 7). Uses scaled 90 nm design rules:
// each transistor occupies (L + 2 * contacted diffusion extension) by
// (W + diffusion spacing); the cell packs devices in two rows (PMOS /
// NMOS) at a utilization typical for hand layout.
#pragma once

#include "cells/gates.hpp"

namespace vls {

struct AreaRules {
  double diff_extension = 140e-9;  ///< contacted S/D extension per side [m]
  double width_overhead = 120e-9;  ///< inter-device spacing along width [m]
  double utilization = 0.52;       ///< packing efficiency incl. wells/rails
};

/// Estimated layout area of a set of transistors [m^2].
double estimateCellArea(const MosList& fets, const AreaRules& rules = {});

/// Estimated bounding box assuming the paper's tall-narrow aspect
/// (width 0.837 um x height 5.355 um => aspect ~ 6.4).
struct CellBox {
  double width;
  double height;
};
CellBox estimateCellBox(const MosList& fets, double aspect_h_over_w = 6.4,
                        const AreaRules& rules = {});

}  // namespace vls
