#include "analysis/fabric_bootstrap.hpp"

#include <algorithm>
#include <cctype>
#include <string>
#include <unordered_map>

#include "sim/simulator.hpp"

namespace vls {

namespace {

// Parses "<prefix><index><rest>" (e.g. "isl17.logic.b0" -> 17,
// ".logic.b0"). Returns -1 when `name` does not start with `prefix`
// followed by a digit.
int parseIndexed(const std::string& name, const char* prefix, std::string* rest) {
  const size_t plen = std::char_traits<char>::length(prefix);
  if (name.compare(0, plen, prefix) != 0) return -1;
  size_t pos = plen;
  if (pos >= name.size() || !std::isdigit(static_cast<unsigned char>(name[pos]))) return -1;
  int index = 0;
  while (pos < name.size() && std::isdigit(static_cast<unsigned char>(name[pos]))) {
    index = index * 10 + (name[pos] - '0');
    ++pos;
  }
  *rest = name.substr(pos);
  return index;
}

}  // namespace

std::vector<double> fabricDcGuess(const Circuit& c, const FabricSpec& spec) {
  // Prototype: two full supply cycles past island 0, so its second
  // cycle (islands P+1 .. 2P) sits in the bulk periodic state — far
  // enough from both the driven head and the unloaded tail that its
  // node voltages are the infinite-chain fixed point. Interior islands
  // of the full fabric tile from that band; a one-cycle prototype is
  // NOT sufficient (its islands still carry head/tail boundary effects,
  // and the accumulated error across a long latch cascade pushes the
  // tiled guess out of Newton's basin).
  const int p = static_cast<int>(spec.supplies.size());
  const int proto_islands = std::min(spec.islands, 2 * p + 2);

  // Even the prototype defeats a cold start once it chains a few
  // shifters, so grow it one island at a time: a size-m prototype
  // reuses the size-(m-1) solution by name (islands 0..m-2 are
  // literally the same subcircuit), leaving only the newly appended
  // island cold — one cold island at the end of a settled chain is
  // always within Newton's reach.
  std::unordered_map<std::string, double> proto_v;
  for (int m = 1; m <= proto_islands; ++m) {
    FabricSpec proto_spec = spec;
    proto_spec.islands = m;
    Circuit proto;
    buildFabric(proto, proto_spec);
    SimOptions opts;
    // The appended island can sit on a down-shift boundary that a cold
    // start cannot climb; a patient pseudo-transient closes the gap.
    opts.recovery.ptran_max_steps = 2000;
    opts.recovery.ptran_grow = 2.0;
    if (!proto_v.empty()) {
      auto warm = std::make_shared<std::vector<double>>(proto.nodeCount(), 0.0);
      std::string rest;
      for (size_t i = 0; i < proto.nodeCount(); ++i) {
        const std::string& name = proto.nodeName(static_cast<NodeId>(i));
        auto it = proto_v.find(name);
        if (it == proto_v.end()) {
          // New island m-1: borrow island m-2's DC state (same
          // structure, input low either way; only the rail differs) and
          // pin its rail at the programmed supply.
          const int k = parseIndexed(name, "isl", &rest);
          if (k == m - 1) {
            if (rest == ".vdd") {
              (*warm)[i] = spec.supplies[static_cast<size_t>(k) % spec.supplies.size()];
              continue;
            }
            it = proto_v.find("isl" + std::to_string(k - 1) + rest);
          }
        }
        if (it != proto_v.end()) (*warm)[i] = it->second;
      }
      opts.nodeset = std::move(warm);
    }
    Simulator sim(proto, opts);
    const std::vector<double> px = sim.solveOp();
    proto_v.clear();
    proto_v.reserve(proto.nodeCount());
    for (size_t i = 0; i < proto.nodeCount(); ++i) {
      proto_v.emplace(proto.nodeName(static_cast<NodeId>(i)), px[i]);
    }
  }

  // Head islands (0 .. P) map to themselves; everything deeper maps to
  // the bulk band at matching supply phase. Boundary nets follow their
  // driving island's index.
  const auto protoIndex = [&](int k) { return k <= p ? k : p + 1 + (k - (p + 1)) % p; };
  std::vector<double> guess(c.nodeCount(), 0.0);
  std::string rest;
  for (size_t i = 0; i < c.nodeCount(); ++i) {
    const std::string& name = c.nodeName(static_cast<NodeId>(i));
    std::string proto_name = name;
    int k = parseIndexed(name, "isl", &rest);
    if (k >= 0) {
      proto_name = "isl" + std::to_string(protoIndex(k)) + rest;
    } else if ((k = parseIndexed(name, "bnd", &rest)) >= 0) {
      proto_name = "bnd" + std::to_string(protoIndex(k)) + rest;
    }
    const auto it = proto_v.find(proto_name);
    if (it != proto_v.end()) guess[i] = it->second;
  }
  return guess;
}

}  // namespace vls
