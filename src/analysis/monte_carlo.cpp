#include "analysis/monte_carlo.hpp"

#include "base/logging.hpp"
#include "numeric/rng.hpp"

namespace vls {

MonteCarloResult runMonteCarlo(const HarnessConfig& harness, const MonteCarloConfig& config) {
  MonteCarloResult result;
  result.samples = config.samples;
  Rng rng(config.seed);

  for (int s = 0; s < config.samples; ++s) {
    ShifterTestbench tb(harness);
    for (Mosfet* fet : tb.dutFets()) {
      MosGeometry g = fet->geometry();
      g.delta_w = rng.gaussian(0.0, config.variation.sigma_w);
      g.delta_l = rng.gaussian(0.0, config.variation.sigma_l);
      g.delta_vt = rng.gaussian(0.0, config.variation.sigma_vt_rel * fet->model().vt0);
      fet->setGeometry(g);
    }
    ShifterMetrics m;
    try {
      m = tb.measure();
    } catch (const Error& e) {
      VLS_LOG_WARN("Monte-Carlo sample %d failed: %s", s, e.what());
      ++result.functional_failures;
      continue;
    }
    if (!m.functional) ++result.functional_failures;
    result.delay_rise.push_back(m.delay_rise);
    result.delay_fall.push_back(m.delay_fall);
    result.power_rise.push_back(m.power_rise);
    result.power_fall.push_back(m.power_fall);
    result.leakage_high.push_back(m.leakage_high);
    result.leakage_low.push_back(m.leakage_low);
    if ((s + 1) % 100 == 0) VLS_LOG_INFO("Monte-Carlo: %d / %d samples", s + 1, config.samples);
  }
  return result;
}

}  // namespace vls
