#include "analysis/monte_carlo.hpp"

#include <atomic>
#include <cstdint>

#include "base/logging.hpp"
#include "base/parallel.hpp"
#include "numeric/rng.hpp"

namespace vls {

MonteCarloResult runMonteCarlo(const HarnessConfig& harness, const MonteCarloConfig& config) {
  MonteCarloResult result;
  result.samples = config.samples;
  const size_t n = config.samples > 0 ? static_cast<size_t>(config.samples) : 0;

  // Derive one independent RNG stream per sample up front (serially), so
  // the perturbations depend only on (seed, sample index) — never on the
  // thread count or completion order.
  Rng root(config.seed);
  std::vector<Rng> streams;
  streams.reserve(n);
  for (size_t s = 0; s < n; ++s) streams.push_back(root.split());

  std::vector<ShifterMetrics> metrics(n);
  std::vector<uint8_t> threw(n, 0);
  std::atomic<int> done{0};
  parallelFor(
      n,
      [&](size_t s) {
        Rng rng = streams[s];
        ShifterTestbench tb(harness);
        for (Mosfet* fet : tb.dutFets()) {
          MosGeometry g = fet->geometry();
          g.delta_w = rng.gaussian(0.0, config.variation.sigma_w);
          g.delta_l = rng.gaussian(0.0, config.variation.sigma_l);
          g.delta_vt = rng.gaussian(0.0, config.variation.sigma_vt_rel * fet->model().vt0);
          fet->setGeometry(g);
        }
        try {
          metrics[s] = tb.measure();
        } catch (const Error& e) {
          VLS_LOG_WARN("Monte-Carlo sample %zu failed: %s", s, e.what());
          threw[s] = 1;
        }
        const int d = ++done;
        if (d % 100 == 0) VLS_LOG_INFO("Monte-Carlo: %d / %d samples", d, config.samples);
      },
      config.threads);

  // Serial gather in sample order: identical output for any thread count.
  for (size_t s = 0; s < n; ++s) {
    if (threw[s]) {
      result.failed_samples.push_back(static_cast<int>(s));
      ++result.functional_failures;
      continue;
    }
    const ShifterMetrics& m = metrics[s];
    if (!m.functional) {
      result.failed_samples.push_back(static_cast<int>(s));
      ++result.functional_failures;
    }
    result.delay_rise.push_back(m.delay_rise);
    result.delay_fall.push_back(m.delay_fall);
    result.power_rise.push_back(m.power_rise);
    result.power_fall.push_back(m.power_fall);
    result.leakage_high.push_back(m.leakage_high);
    result.leakage_low.push_back(m.leakage_low);
  }
  return result;
}

}  // namespace vls
