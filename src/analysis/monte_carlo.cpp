#include "analysis/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "base/error.hpp"
#include "base/logging.hpp"
#include "base/parallel.hpp"
#include "io/checkpoint.hpp"
#include "numeric/lanes.hpp"
#include "numeric/rng.hpp"
#include "sim/diagnostics.hpp"
#include "sim/recovery.hpp"

namespace vls {

namespace {

/// Per-fet nominal state snapshotted from one testbench build, so
/// sample derivation never needs a live circuit (the draw order and
/// values are identical to perturbing a fresh testbench in place).
struct FetNominal {
  MosGeometry base;
  double vt0 = 0.0;
};

/// Serially-derived per-sample perturbations. The draw order (per fet:
/// delta_w, delta_l, delta_vt; then the optional temperature deviate)
/// is the determinism contract shared by every execution path: a
/// sample's perturbations depend only on (seed, sampling mode, sample
/// index) — never on thread count, completion order, ensemble width or
/// streaming mode. Pseudo mode consumes one pre-split xoshiro stream
/// per sample; LHS/Sobol map index-addressable low-discrepancy points
/// through the inverse normal CDF with the same dimension order.
class SampleDrawer {
 public:
  SampleDrawer(const MonteCarloConfig& config, size_t n, const MosList& fets,
               double nominal_temperature_c)
      : mode_(config.sampling),
        variation_(config.variation),
        nominal_temperature_c_(nominal_temperature_c) {
    nominals_.reserve(fets.size());
    for (const Mosfet* fet : fets) nominals_.push_back({fet->geometry(), fet->model().vt0});
    vary_temperature_ = variation_.sigma_temperature_c > 0.0;
    dims_ = 3 * nominals_.size() + (vary_temperature_ ? 1 : 0);
    switch (mode_) {
      case SamplingMode::Pseudo: {
        Rng root(config.seed);
        streams_.reserve(n);
        for (size_t s = 0; s < n; ++s) streams_.push_back(root.split());
        break;
      }
      case SamplingMode::LatinHypercube:
        lhs_ = std::make_unique<LatinHypercube>(static_cast<unsigned>(dims_),
                                                n > 0 ? n : 1, config.seed);
        break;
      case SamplingMode::Sobol:
        if (dims_ > SobolSequence::kMaxDims) {
          throw InvalidInputError("runMonteCarlo: Sobol sampling supports at most " +
                                  std::to_string(SobolSequence::kMaxDims) +
                                  " dimensions; this DUT needs " + std::to_string(dims_));
        }
        sobol_ = std::make_unique<SobolSequence>(static_cast<unsigned>(dims_), config.seed);
        break;
    }
  }

  bool variesTemperature() const { return vary_temperature_; }

  MonteCarloSample draw(size_t s) const {
    MonteCarloSample out;
    out.id = static_cast<int>(s);
    out.temperature_c = nominal_temperature_c_;
    out.geometries.reserve(nominals_.size());
    if (mode_ == SamplingMode::Pseudo) {
      Rng rng = streams_[s];
      for (const FetNominal& fet : nominals_) {
        MosGeometry g = fet.base;
        g.delta_w = rng.gaussian(0.0, variation_.sigma_w);
        g.delta_l = rng.gaussian(0.0, variation_.sigma_l);
        g.delta_vt = rng.gaussian(0.0, variation_.sigma_vt_rel * fet.vt0);
        out.geometries.push_back(g);
      }
      if (vary_temperature_) {
        out.temperature_c += rng.gaussian(0.0, variation_.sigma_temperature_c);
      }
    } else {
      std::vector<double> u(dims_);
      if (lhs_) {
        lhs_->point(s, u.data());
      } else {
        sobol_->point(s, u.data());
      }
      size_t d = 0;
      for (const FetNominal& fet : nominals_) {
        MosGeometry g = fet.base;
        g.delta_w = variation_.sigma_w * inverseNormalCdf(u[d++]);
        g.delta_l = variation_.sigma_l * inverseNormalCdf(u[d++]);
        g.delta_vt = variation_.sigma_vt_rel * fet.vt0 * inverseNormalCdf(u[d++]);
        out.geometries.push_back(g);
      }
      if (vary_temperature_) {
        out.temperature_c += variation_.sigma_temperature_c * inverseNormalCdf(u[d++]);
      }
    }
    return out;
  }

 private:
  SamplingMode mode_;
  VariationSpec variation_;
  double nominal_temperature_c_;
  bool vary_temperature_ = false;
  size_t dims_ = 0;
  std::vector<FetNominal> nominals_;
  std::vector<Rng> streams_;
  std::unique_ptr<LatinHypercube> lhs_;
  std::unique_ptr<SobolSequence> sobol_;
};

void writeFailure(CheckpointWriter& w, const SampleFailure& f) {
  w.u64(static_cast<uint64_t>(f.id));
  w.u8(static_cast<uint8_t>(f.kind));
  w.str(f.stage);
  w.str(f.node);
  w.str(f.message);
}

SampleFailure readFailure(CheckpointReader& r) {
  SampleFailure f;
  f.id = static_cast<int>(r.u64());
  f.kind = static_cast<FailureKind>(r.u8());
  f.stage = r.str();
  f.node = r.str();
  f.message = r.str();
  return f;
}

void writeMetrics(CheckpointWriter& w, const ShifterMetrics& m) {
  w.f64(m.delay_rise);
  w.f64(m.delay_fall);
  w.f64(m.power_rise);
  w.f64(m.power_fall);
  w.f64(m.leakage_high);
  w.f64(m.leakage_low);
  w.f64(m.leakage_high_vddi);
  w.f64(m.leakage_low_vddi);
  w.u8(m.functional ? 1 : 0);
}

ShifterMetrics readMetrics(CheckpointReader& r) {
  ShifterMetrics m;
  m.delay_rise = r.f64();
  m.delay_fall = r.f64();
  m.power_rise = r.f64();
  m.power_fall = r.f64();
  m.leakage_high = r.f64();
  m.leakage_low = r.f64();
  m.leakage_high_vddi = r.f64();
  m.leakage_low_vddi = r.f64();
  m.functional = r.u8() != 0;
  return m;
}

/// Shared result sink for the exact and streaming paths. Exact mode
/// writes pre-sized per-sample slots (gathered serially in id order);
/// streaming mode feeds O(1) accumulators under a mutex and keeps only
/// the (rare) failure records, sorted by id at gather time — the
/// record *contents* depend only on the sample, so failed_samples is
/// bit-identical to the exact path for any thread count.
///
/// Checkpointed streaming runs use the `ordered` variant instead: the
/// current epoch buffers per-sample slots and endEpoch() folds them
/// into the accumulators serially in id order. The P² estimators are
/// ingestion-order sensitive, so this is what makes checkpointed
/// streaming summaries bit-identical across thread counts and across
/// kill/resume (the accumulator state at every epoch boundary — the
/// only state a checkpoint stores — no longer depends on scheduling).
class ResultSink {
 public:
  ResultSink(bool streaming, size_t n, bool ordered)
      : streaming_(streaming), ordered_(streaming && ordered), n_(n) {
    if (!streaming_) {
      metrics_.resize(n);
      threw_.assign(n, 0);
      throw_info_.resize(n);
    }
  }

  void beginEpoch(size_t begin, size_t end) {
    if (!ordered_) return;
    epoch_begin_ = begin;
    epoch_metrics_.assign(end - begin, ShifterMetrics{});
    epoch_threw_.assign(end - begin, 0);
    epoch_info_.assign(end - begin, SampleFailure{});
  }

  void endEpoch(size_t begin, size_t end) {
    if (!ordered_) return;
    // Serial fold in id order (see class comment).
    for (size_t s = begin; s < end; ++s) {
      const size_t k = s - epoch_begin_;
      if (epoch_threw_[k]) {
        failures_.push_back(std::move(epoch_info_[k]));
        ++simulation_errors_;
        continue;
      }
      accumulate(s, epoch_metrics_[k]);
    }
  }

  void addMetrics(size_t s, const ShifterMetrics& m) {
    if (!streaming_) {
      metrics_[s] = m;
      return;
    }
    if (ordered_) {
      epoch_metrics_[s - epoch_begin_] = m;  // distinct slots: no lock needed
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    accumulate(s, m);
  }

  void addThrow(size_t s, SampleFailure failure) {
    if (!streaming_) {
      threw_[s] = 1;
      throw_info_[s] = std::move(failure);
      return;
    }
    if (ordered_) {
      epoch_threw_[s - epoch_begin_] = 1;
      epoch_info_[s - epoch_begin_] = std::move(failure);
      return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    failures_.push_back(std::move(failure));
    ++simulation_errors_;
  }

  /// Serialize everything needed to resume after `watermark` completed
  /// samples: accumulator + failure state (streaming) or the per-sample
  /// slots in [0, watermark) (exact).
  void saveState(CheckpointWriter& w, size_t watermark) const {
    if (streaming_) {
      w.f64vec(delay_rise_.saveState());
      w.f64vec(delay_fall_.saveState());
      w.f64vec(power_rise_.saveState());
      w.f64vec(power_fall_.saveState());
      w.f64vec(leakage_high_.saveState());
      w.f64vec(leakage_low_.saveState());
      w.u64(static_cast<uint64_t>(functional_failures_));
      w.u64(static_cast<uint64_t>(simulation_errors_));
      w.u64(failures_.size());
      for (const SampleFailure& f : failures_) writeFailure(w, f);
      return;
    }
    for (size_t s = 0; s < watermark; ++s) {
      w.u8(threw_[s]);
      if (threw_[s]) {
        writeFailure(w, throw_info_[s]);
      } else {
        writeMetrics(w, metrics_[s]);
      }
    }
  }

  void loadState(CheckpointReader& r, size_t watermark) {
    if (streaming_) {
      delay_rise_.restoreState(r.f64vec());
      delay_fall_.restoreState(r.f64vec());
      power_rise_.restoreState(r.f64vec());
      power_fall_.restoreState(r.f64vec());
      leakage_high_.restoreState(r.f64vec());
      leakage_low_.restoreState(r.f64vec());
      functional_failures_ = static_cast<int>(r.u64());
      simulation_errors_ = static_cast<int>(r.u64());
      const uint64_t n_failures = r.u64();
      failures_.clear();
      for (uint64_t i = 0; i < n_failures; ++i) failures_.push_back(readFailure(r));
      return;
    }
    for (size_t s = 0; s < watermark; ++s) {
      threw_[s] = r.u8();
      if (threw_[s]) {
        throw_info_[s] = readFailure(r);
      } else {
        metrics_[s] = readMetrics(r);
      }
    }
  }

  void gather(MonteCarloResult& result) {
    if (streaming_) {
      std::sort(failures_.begin(), failures_.end(),
                [](const SampleFailure& a, const SampleFailure& b) { return a.id < b.id; });
      result.failed_samples = std::move(failures_);
      result.functional_failures = functional_failures_;
      result.simulation_errors = simulation_errors_;
      result.stream.delay_rise = delay_rise_.summary();
      result.stream.delay_fall = delay_fall_.summary();
      result.stream.power_rise = power_rise_.summary();
      result.stream.power_fall = power_fall_.summary();
      result.stream.leakage_high = leakage_high_.summary();
      result.stream.leakage_low = leakage_low_.summary();
      return;
    }
    // Serial gather in sample order: identical output for any thread
    // count and ensemble width.
    for (size_t s = 0; s < n_; ++s) {
      if (threw_[s]) {
        result.failed_samples.push_back(throw_info_[s]);
        ++result.simulation_errors;
        continue;
      }
      const ShifterMetrics& m = metrics_[s];
      if (!m.functional) {
        result.failed_samples.push_back({static_cast<int>(s), FailureKind::NonFunctional});
        ++result.functional_failures;
      }
      result.delay_rise.push_back(m.delay_rise);
      result.delay_fall.push_back(m.delay_fall);
      result.power_rise.push_back(m.power_rise);
      result.power_fall.push_back(m.power_fall);
      result.leakage_high.push_back(m.leakage_high);
      result.leakage_low.push_back(m.leakage_low);
    }
  }

 private:
  void accumulate(size_t s, const ShifterMetrics& m) {
    delay_rise_.add(m.delay_rise);
    delay_fall_.add(m.delay_fall);
    power_rise_.add(m.power_rise);
    power_fall_.add(m.power_fall);
    leakage_high_.add(m.leakage_high);
    leakage_low_.add(m.leakage_low);
    if (!m.functional) {
      failures_.push_back({static_cast<int>(s), FailureKind::NonFunctional, {}, {}, {}});
      ++functional_failures_;
    }
  }

  bool streaming_;
  bool ordered_;
  size_t n_;
  // Exact mode: pre-sized per-sample slots.
  std::vector<ShifterMetrics> metrics_;
  std::vector<uint8_t> threw_;
  std::vector<SampleFailure> throw_info_;
  // Streaming mode: O(1) accumulators + failure records only.
  std::mutex mutex_;
  StreamingSummary delay_rise_, delay_fall_;
  StreamingSummary power_rise_, power_fall_;
  StreamingSummary leakage_high_, leakage_low_;
  std::vector<SampleFailure> failures_;
  int functional_failures_ = 0;
  int simulation_errors_ = 0;
  // Ordered (checkpointed) streaming: current-epoch slot buffers.
  size_t epoch_begin_ = 0;
  std::vector<ShifterMetrics> epoch_metrics_;
  std::vector<uint8_t> epoch_threw_;
  std::vector<SampleFailure> epoch_info_;
};

}  // namespace

MonteCarloResult runMonteCarlo(const HarnessConfig& harness, const MonteCarloConfig& config) {
  MonteCarloResult result;
  result.samples = config.samples;
  result.streaming = config.streaming;
  const size_t n = config.samples > 0 ? static_cast<size_t>(config.samples) : 0;

  // Derive every sample's perturbations from a one-off nominal
  // snapshot, serially up front (Pseudo) or index-addressably
  // (LHS/Sobol) — see SampleDrawer for the determinism contract.
  std::unique_ptr<SampleDrawer> drawer;
  {
    ShifterTestbench nominal_tb(harness);
    drawer = std::make_unique<SampleDrawer>(config, n, nominal_tb.dutFets(),
                                            harness.temperature_c);
  }

  size_t width = static_cast<size_t>(
      std::clamp<int>(config.ensemble_width, 1, static_cast<int>(kMaxLanes)));
  if (width > 1 && drawer->variesTemperature()) {
    // Lockstep lanes share one thermal context; per-sample temperature
    // runs through the scalar engine (results stay width-invariant by
    // construction — the width is simply not exercised).
    VLS_LOG_INFO("Monte-Carlo: temperature variation enabled; ensemble width %zu runs scalar",
                 width);
    width = 1;
  }

  // Checkpoint epochs: the run executes [0,n) in sequential epochs of
  // `interval` samples, checkpointing at each boundary. Epochs are
  // width-aligned so a lockstep batch never straddles a boundary (the
  // batch grouping — and with it every lane result — must be identical
  // between a resumed and an uninterrupted run).
  const bool use_ckpt = !config.checkpoint_path.empty() && n > 0;
  size_t interval = n;
  if (use_ckpt) {
    interval = config.checkpoint_interval > 0 ? static_cast<size_t>(config.checkpoint_interval)
                                              : std::max<size_t>(1024, n / 16);
    interval = ((std::max(interval, width) + width - 1) / width) * width;
  }

  ResultSink sink(config.streaming, n, use_ckpt);
  std::atomic<int> done{0};
  std::atomic<int> retried{0};
  std::atomic<int> retry_recovered{0};
  const int log_step = std::max(100, config.samples / 10);
  auto report = [&](int count) {
    const int d = done += count;
    if (d / log_step != (d - count) / log_step) {
      VLS_LOG_INFO("Monte-Carlo: %d / %d samples", d, config.samples);
    }
    if (config.job) config.job->unitDone(static_cast<uint64_t>(count));
  };
  const bool fault_armed =
      config.fault_sample >= 0 && static_cast<size_t>(config.fault_sample) < n;
  // Per-sample harness config. Injectors are mutable single-run state
  // (stage + firing count), so every simulation attempt gets a fresh
  // instance: the targeted sample from config.fault, everyone else a
  // copy of whatever spec the caller put on harness.sim (never the
  // shared instance itself, whose fire budget would race across
  // samples and diverge between the scalar and ensemble paths).
  auto harness_for = [&](size_t s, double temperature_c) {
    HarnessConfig h = harness;
    h.temperature_c = temperature_c;
    h.sim.job_control = config.job;
    if (fault_armed && s == static_cast<size_t>(config.fault_sample)) {
      FaultSpec spec = config.fault;
      spec.lane = -1;  // scalar engine: the whole run is the target
      h.sim.fault_injector = std::make_shared<FaultInjector>(spec);
    } else if (h.sim.fault_injector) {
      h.sim.fault_injector = std::make_shared<FaultInjector>(h.sim.fault_injector->spec());
    }
    return h;
  };
  auto record_throw = [&](size_t s, const Error& e) {
    VLS_LOG_WARN("Monte-Carlo sample %zu failed: %s", s, e.what());
    SampleFailure f;
    f.id = static_cast<int>(s);
    f.kind = FailureKind::SimulationError;
    f.message = e.what();
    if (const auto* re = dynamic_cast<const RecoveryError*>(&e)) {
      f.stage = re->diagnostics().lastStageName();
      f.node = re->diagnostics().worstNode();
    }
    sink.addThrow(s, std::move(f));
  };
  // Scalar reference simulation of one sample with fixed perturbations.
  // This path owns the failed_samples record: ensemble lanes that drop
  // out are re-run here, so the attribution strings are produced by the
  // same engine either way. Degrade-don't-abort: a throw is retried up
  // to config.max_retries times under escalatedRecoveryPolicy (fresh
  // fault injector per attempt — budgets re-fire) before the sample is
  // recorded as a SimulationError. JobInterrupted is not a vls::Error,
  // so cancellation cuts straight through this ladder.
  auto run_scalar = [&](const MonteCarloSample& sample) {
    const size_t s = static_cast<size_t>(sample.id);
    const int attempts = 1 + std::max(0, config.max_retries);
    for (int attempt = 0; attempt < attempts; ++attempt) {
      HarnessConfig h = harness_for(s, sample.temperature_c);
      if (attempt > 0) h.sim.recovery = escalatedRecoveryPolicy(h.sim.recovery);
      ShifterTestbench tb(h);
      MosList& fets = tb.dutFets();
      for (size_t f = 0; f < fets.size(); ++f) fets[f]->setGeometry(sample.geometries[f]);
      try {
        sink.addMetrics(s, tb.measure());
        if (attempt > 0) ++retry_recovered;
        return;
      } catch (const Error& e) {
        if (attempt + 1 < attempts) {
          ++retried;
          VLS_LOG_WARN("Monte-Carlo sample %zu failed (%s); retrying escalated", s, e.what());
          continue;
        }
        record_throw(s, e);
      }
    }
  };

  const ParallelOptions pool{config.threads, 0, config.job.get()};
  // One epoch's dispatch over [begin, end); begin/end are width-aligned
  // (except end == n).
  auto dispatch = [&](size_t begin, size_t end) {
    const size_t count_range = end - begin;
    if (config.evaluator) {
      // Evaluator path (surrogate models): no circuits, no fault
      // injection — pure sample derivation + metric evaluation, used to
      // exercise scheduling/statistics at 10^6+ samples.
      parallelForChunked(
          count_range,
          [&](size_t i) {
            const size_t s = begin + i;
            const MonteCarloSample sample = drawer->draw(s);
            try {
              sink.addMetrics(s, config.evaluator(sample));
            } catch (const Error& e) {
              record_throw(s, e);
            }
            report(1);
          },
          pool);
    } else if (width <= 1) {
      // Scalar path: one Simulator per sample.
      parallelForChunked(
          count_range,
          [&](size_t i) {
            run_scalar(drawer->draw(begin + i));
            report(1);
          },
          pool);
    } else {
      // Ensemble path: `width` consecutive samples per lockstep batch,
      // whole batches (chunks of batches, under work stealing) per
      // worker thread — threads x width composes multiplicatively.
      // Lanes that drop out of a batch (and whole batches that fail
      // outright) fall back to the scalar path with the very same
      // perturbations, so failed_samples semantics are unchanged.
      const size_t num_batches = (count_range + width - 1) / width;
      parallelForChunked(
          num_batches,
          [&](size_t bi) {
            const size_t s0 = begin + bi * width;
            const size_t count = std::min(width, end - s0);
            const size_t b = s0 / width;  // global batch id (logging)
            // The batch holding the fault target gets a lane-targeted
            // copy of the spec: only that lane is poisoned, its siblings
            // run clean. A fresh injector per batch keeps the firing
            // budget independent of which batch runs first.
            HarnessConfig batch_harness = harness;
            batch_harness.sim.job_control = config.job;
            if (fault_armed && static_cast<size_t>(config.fault_sample) >= s0 &&
                static_cast<size_t>(config.fault_sample) < s0 + count) {
              FaultSpec spec = config.fault;
              spec.lane = config.fault_sample - static_cast<int>(s0);
              batch_harness.sim.fault_injector = std::make_shared<FaultInjector>(spec);
            } else if (batch_harness.sim.fault_injector) {
              batch_harness.sim.fault_injector =
                  std::make_shared<FaultInjector>(batch_harness.sim.fault_injector->spec());
            }
            ShifterTestbench tb(batch_harness);
            std::vector<MonteCarloSample> samples;
            samples.reserve(count);
            std::vector<std::vector<MosGeometry>> lane_geoms(count);
            for (size_t l = 0; l < count; ++l) {
              samples.push_back(drawer->draw(s0 + l));
              lane_geoms[l] = samples.back().geometries;
            }
            std::vector<EnsembleSample> batch;
            try {
              batch = tb.measureEnsemble(lane_geoms);
            } catch (const Error& e) {
              VLS_LOG_WARN("Monte-Carlo ensemble batch %zu failed (%s); samples re-run scalar",
                           b, e.what());
              batch.assign(count, EnsembleSample{});
            }
            for (size_t l = 0; l < count; ++l) {
              if (batch[l].ok) {
                sink.addMetrics(s0 + l, batch[l].metrics);
              } else {
                if (batch[l].failure.valid) {
                  VLS_LOG_WARN(
                      "Monte-Carlo sample %zu dropped out of lane %zu (%s in %s, node '%s'); "
                      "re-running scalar",
                      s0 + l, l, newtonFailureReasonName(batch[l].failure.reason),
                      recoveryStageName(batch[l].failure.stage), batch[l].failure.node.c_str());
                }
                run_scalar(samples[l]);
              }
            }
            report(static_cast<int>(count));
          },
          pool);
    }
  };

  // Config fingerprint stored in (and validated against) a checkpoint:
  // every knob that changes sample draws, batching, or epoch structure.
  auto write_header = [&](CheckpointWriter& w) {
    w.u32(1);  // MC payload sub-version
    w.u64(config.seed);
    w.u8(static_cast<uint8_t>(config.sampling));
    w.u64(n);
    w.u8(config.streaming ? 1 : 0);
    w.u64(width);
    w.u64(interval);
    w.u64(static_cast<uint64_t>(static_cast<int64_t>(config.fault_sample)));
    w.u64(static_cast<uint64_t>(std::max(0, config.max_retries)));
    w.f64(config.variation.sigma_w);
    w.f64(config.variation.sigma_l);
    w.f64(config.variation.sigma_vt_rel);
    w.f64(config.variation.sigma_temperature_c);
  };
  auto check_header = [&](CheckpointReader& r) {
    CheckpointWriter expected;
    write_header(expected);
    CheckpointWriter got;
    got.u32(r.u32());
    got.u64(r.u64());
    got.u8(r.u8());
    got.u64(r.u64());
    got.u8(r.u8());
    got.u64(r.u64());
    got.u64(r.u64());
    got.u64(r.u64());
    got.u64(r.u64());
    got.f64(r.f64());
    got.f64(r.f64());
    got.f64(r.f64());
    got.f64(r.f64());
    if (got.bytes() != expected.bytes()) {
      throw InvalidInputError("runMonteCarlo: checkpoint '" + config.checkpoint_path +
                              "' was written by an incompatible configuration");
    }
  };

  size_t start = 0;
  if (use_ckpt && checkpointFileExists(config.checkpoint_path)) {
    CheckpointReader r = readCheckpointFile(config.checkpoint_path, kCheckpointKindMonteCarlo);
    check_header(r);
    start = r.u64();
    retried = static_cast<int>(r.u64());
    retry_recovered = static_cast<int>(r.u64());
    sink.loadState(r, start);
    result.resumed_samples = static_cast<int>(start);
    VLS_LOG_INFO("Monte-Carlo: resuming from checkpoint '%s' at sample %zu / %zu",
                 config.checkpoint_path.c_str(), start, n);
  }

  for (size_t e = start; e < n; e += interval) {
    const size_t e_end = std::min(n, e + interval);
    sink.beginEpoch(e, e_end);
    dispatch(e, e_end);
    sink.endEpoch(e, e_end);
    if (use_ckpt) {
      CheckpointWriter w;
      write_header(w);
      w.u64(e_end);
      w.u64(static_cast<uint64_t>(retried.load()));
      w.u64(static_cast<uint64_t>(retry_recovered.load()));
      sink.saveState(w, e_end);
      writeCheckpointFile(config.checkpoint_path, kCheckpointKindMonteCarlo, w);
    }
  }

  sink.gather(result);
  result.retried_samples = retried.load();
  result.retry_recovered = retry_recovered.load();
  return result;
}

std::function<ShifterMetrics(const MonteCarloSample&)> makeSurrogateEvaluator(
    const HarnessConfig& harness) {
  // Metric scales loosely calibrated to the SS-TVS testbench at
  // 0.8 V -> 1.2 V, 27 C (the BENCH_perf.json newton_workload run),
  // with first-order supply scaling so surrogate sweeps still react to
  // harness settings. Sensitivities: delays grow with VT and L, shrink
  // with W; switching power moves the other way; leakage is
  // exponentially VT- and temperature-sensitive (subthreshold).
  const double supply = harness.vddo > 0.0 ? harness.vddo / 1.2 : 1.0;
  const double t0 = harness.temperature_c;
  return [supply, t0](const MonteCarloSample& sample) {
    double a_vt = 0.0, a_w = 0.0, a_l = 0.0, worst_vt = 0.0;
    for (const MosGeometry& g : sample.geometries) {
      a_vt += g.delta_vt;
      a_w += g.delta_w / g.w;
      a_l += g.delta_l / g.l;
      worst_vt = std::max(worst_vt, std::fabs(g.delta_vt));
    }
    const double nf = sample.geometries.empty() ? 1.0 : double(sample.geometries.size());
    a_vt /= nf * 0.39;  // normalize to the nominal NMOS VT
    a_w /= nf;
    a_l /= nf;
    const double dT = sample.temperature_c - t0;
    ShifterMetrics m;
    m.delay_rise = 155e-12 / supply * std::exp(1.8 * a_vt + 0.9 * a_l - 0.7 * a_w + 0.0022 * dT);
    m.delay_fall = 118e-12 / supply * std::exp(1.5 * a_vt + 0.8 * a_l - 0.6 * a_w + 0.0019 * dT);
    m.power_rise =
        2.3e-6 * supply * supply * std::exp(-0.6 * a_vt + 0.8 * a_w - 0.3 * a_l + 0.0008 * dT);
    m.power_fall =
        1.9e-6 * supply * supply * std::exp(-0.5 * a_vt + 0.7 * a_w - 0.3 * a_l + 0.0008 * dT);
    m.leakage_high = 1.4e-9 * supply * std::exp(-9.0 * a_vt + 0.9 * a_w + 0.035 * dT);
    m.leakage_low = 0.9e-9 * supply * std::exp(-8.0 * a_vt + 0.8 * a_w + 0.035 * dT);
    // Deterministic rare-tail failure region: a single deep-VT outlier
    // device (~3.9 sigma at the paper's sigmas) breaks the cell.
    m.functional = worst_vt < 0.050;
    return m;
  };
}

}  // namespace vls
