#include "analysis/monte_carlo.hpp"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>

#include "base/logging.hpp"
#include "base/parallel.hpp"
#include "numeric/lanes.hpp"
#include "numeric/rng.hpp"
#include "sim/diagnostics.hpp"

namespace vls {

namespace {

/// One sample's perturbed DUT geometries, in dutFets() order. The draw
/// order (per fet: delta_w, delta_l, delta_vt) is the determinism
/// contract shared by the scalar and ensemble paths: both consume the
/// sample's RNG stream identically, so switching ensemble_width never
/// changes which perturbations a sample id receives.
std::vector<MosGeometry> drawGeometries(Rng& rng, const MosList& fets,
                                        const VariationSpec& variation) {
  std::vector<MosGeometry> geoms;
  geoms.reserve(fets.size());
  for (const Mosfet* fet : fets) {
    MosGeometry g = fet->geometry();
    g.delta_w = rng.gaussian(0.0, variation.sigma_w);
    g.delta_l = rng.gaussian(0.0, variation.sigma_l);
    g.delta_vt = rng.gaussian(0.0, variation.sigma_vt_rel * fet->model().vt0);
    geoms.push_back(g);
  }
  return geoms;
}

}  // namespace

MonteCarloResult runMonteCarlo(const HarnessConfig& harness, const MonteCarloConfig& config) {
  MonteCarloResult result;
  result.samples = config.samples;
  const size_t n = config.samples > 0 ? static_cast<size_t>(config.samples) : 0;

  // Derive one independent RNG stream per sample up front (serially), so
  // the perturbations depend only on (seed, sample index) — never on the
  // thread count, completion order, or ensemble width.
  Rng root(config.seed);
  std::vector<Rng> streams;
  streams.reserve(n);
  for (size_t s = 0; s < n; ++s) streams.push_back(root.split());

  std::vector<ShifterMetrics> metrics(n);
  std::vector<uint8_t> threw(n, 0);
  std::vector<SampleFailure> throw_info(n);
  std::atomic<int> done{0};
  auto report = [&](int count) {
    const int d = done += count;
    if (d / 100 != (d - count) / 100) {
      VLS_LOG_INFO("Monte-Carlo: %d / %d samples", d, config.samples);
    }
  };
  const bool fault_armed =
      config.fault_sample >= 0 && static_cast<size_t>(config.fault_sample) < n;
  // Per-sample harness config. Injectors are mutable single-run state
  // (stage + firing count), so every simulation attempt gets a fresh
  // instance: the targeted sample from config.fault, everyone else a
  // copy of whatever spec the caller put on harness.sim (never the
  // shared instance itself, whose fire budget would race across
  // samples and diverge between the scalar and ensemble paths).
  auto harness_for = [&](size_t s) {
    HarnessConfig h = harness;
    if (fault_armed && s == static_cast<size_t>(config.fault_sample)) {
      FaultSpec spec = config.fault;
      spec.lane = -1;  // scalar engine: the whole run is the target
      h.sim.fault_injector = std::make_shared<FaultInjector>(spec);
    } else if (h.sim.fault_injector) {
      h.sim.fault_injector = std::make_shared<FaultInjector>(h.sim.fault_injector->spec());
    }
    return h;
  };
  auto record_throw = [&](size_t s, const Error& e) {
    VLS_LOG_WARN("Monte-Carlo sample %zu failed: %s", s, e.what());
    threw[s] = 1;
    SampleFailure& f = throw_info[s];
    f.id = static_cast<int>(s);
    f.kind = FailureKind::SimulationError;
    f.message = e.what();
    if (const auto* re = dynamic_cast<const RecoveryError*>(&e)) {
      f.stage = re->diagnostics().lastStageName();
      f.node = re->diagnostics().worstNode();
    }
  };
  // Scalar reference simulation of one sample with fixed perturbations.
  // This path owns the failed_samples record: ensemble lanes that drop
  // out are re-run here, so the attribution strings are produced by the
  // same engine either way.
  auto run_scalar = [&](size_t s, const std::vector<MosGeometry>& geoms) {
    ShifterTestbench tb(harness_for(s));
    MosList& fets = tb.dutFets();
    for (size_t f = 0; f < fets.size(); ++f) fets[f]->setGeometry(geoms[f]);
    try {
      metrics[s] = tb.measure();
    } catch (const Error& e) {
      record_throw(s, e);
    }
  };

  const size_t width = static_cast<size_t>(
      std::clamp<int>(config.ensemble_width, 1, static_cast<int>(kMaxLanes)));
  if (width <= 1) {
    // Scalar path: one Simulator per sample.
    parallelFor(
        n,
        [&](size_t s) {
          Rng rng = streams[s];
          ShifterTestbench tb(harness_for(s));
          const std::vector<MosGeometry> geoms =
              drawGeometries(rng, tb.dutFets(), config.variation);
          MosList& fets = tb.dutFets();
          for (size_t f = 0; f < fets.size(); ++f) fets[f]->setGeometry(geoms[f]);
          try {
            metrics[s] = tb.measure();
          } catch (const Error& e) {
            record_throw(s, e);
          }
          report(1);
        },
        config.threads);
  } else {
    // Ensemble path: `width` consecutive samples per lockstep batch,
    // batches distributed across worker threads. Lanes that drop out of
    // a batch (and whole batches that fail outright) fall back to the
    // scalar path with the very same perturbations, so failed_samples
    // semantics are unchanged.
    const size_t num_batches = (n + width - 1) / width;
    parallelFor(
        num_batches,
        [&](size_t b) {
          const size_t s0 = b * width;
          const size_t count = std::min(width, n - s0);
          // The batch holding the fault target gets a lane-targeted
          // copy of the spec: only that lane is poisoned, its siblings
          // run clean. A fresh injector per batch keeps the firing
          // budget independent of which batch runs first.
          HarnessConfig batch_harness = harness;
          if (fault_armed && static_cast<size_t>(config.fault_sample) >= s0 &&
              static_cast<size_t>(config.fault_sample) < s0 + count) {
            FaultSpec spec = config.fault;
            spec.lane = config.fault_sample - static_cast<int>(s0);
            batch_harness.sim.fault_injector = std::make_shared<FaultInjector>(spec);
          } else if (batch_harness.sim.fault_injector) {
            batch_harness.sim.fault_injector =
                std::make_shared<FaultInjector>(batch_harness.sim.fault_injector->spec());
          }
          ShifterTestbench tb(batch_harness);
          std::vector<std::vector<MosGeometry>> lane_geoms(count);
          for (size_t l = 0; l < count; ++l) {
            Rng rng = streams[s0 + l];
            lane_geoms[l] = drawGeometries(rng, tb.dutFets(), config.variation);
          }
          std::vector<EnsembleSample> batch;
          try {
            batch = tb.measureEnsemble(lane_geoms);
          } catch (const Error& e) {
            VLS_LOG_WARN("Monte-Carlo ensemble batch %zu failed (%s); samples re-run scalar",
                         b, e.what());
            batch.assign(count, EnsembleSample{});
          }
          for (size_t l = 0; l < count; ++l) {
            if (batch[l].ok) {
              metrics[s0 + l] = batch[l].metrics;
            } else {
              if (batch[l].failure.valid) {
                VLS_LOG_WARN(
                    "Monte-Carlo sample %zu dropped out of lane %zu (%s in %s, node '%s'); "
                    "re-running scalar",
                    s0 + l, l, newtonFailureReasonName(batch[l].failure.reason),
                    recoveryStageName(batch[l].failure.stage), batch[l].failure.node.c_str());
              }
              run_scalar(s0 + l, lane_geoms[l]);
            }
          }
          report(static_cast<int>(count));
        },
        config.threads);
  }

  // Serial gather in sample order: identical output for any thread count.
  for (size_t s = 0; s < n; ++s) {
    if (threw[s]) {
      result.failed_samples.push_back(throw_info[s]);
      ++result.simulation_errors;
      continue;
    }
    const ShifterMetrics& m = metrics[s];
    if (!m.functional) {
      result.failed_samples.push_back({static_cast<int>(s), FailureKind::NonFunctional});
      ++result.functional_failures;
    }
    result.delay_rise.push_back(m.delay_rise);
    result.delay_fall.push_back(m.delay_fall);
    result.power_rise.push_back(m.power_rise);
    result.power_fall.push_back(m.power_fall);
    result.leakage_high.push_back(m.leakage_high);
    result.leakage_low.push_back(m.leakage_low);
  }
  return result;
}

}  // namespace vls
