#include "analysis/sweep.hpp"

#include <cmath>

#include "base/error.hpp"

namespace vls {

size_t Sweep2dResult::functionalCount() const {
  size_t n = 0;
  for (const auto& p : points) {
    if (p.metrics.functional) ++n;
  }
  return n;
}

Sweep2dResult sweepSupplies(const HarnessConfig& base, const Sweep2dConfig& config) {
  if (config.step <= 0.0 || config.v_max < config.v_min) {
    throw InvalidInputError("sweepSupplies: bad grid");
  }
  Sweep2dResult result;
  const int n = static_cast<int>(std::floor((config.v_max - config.v_min) / config.step + 0.5)) + 1;
  for (int k = 0; k < n; ++k) {
    result.vddi_axis.push_back(config.v_min + k * config.step);
  }
  result.vddo_axis = result.vddi_axis;

  const size_t total = result.vddi_axis.size() * result.vddo_axis.size();
  result.points.reserve(total);
  size_t done = 0;
  for (double vddi : result.vddi_axis) {
    for (double vddo : result.vddo_axis) {
      HarnessConfig cfg = base;
      cfg.vddi = vddi;
      cfg.vddo = vddo;
      SweepPoint p;
      p.vddi = vddi;
      p.vddo = vddo;
      try {
        p.metrics = measureShifter(cfg);
      } catch (const Error&) {
        p.metrics.functional = false;
      }
      ++done;
      if (config.on_point) config.on_point(p, done, total);
      result.points.push_back(std::move(p));
    }
  }
  return result;
}

}  // namespace vls
