#include "analysis/sweep.hpp"

#include <atomic>
#include <cmath>
#include <mutex>

#include "base/error.hpp"
#include "base/parallel.hpp"
#include "sim/diagnostics.hpp"

namespace vls {

size_t Sweep2dResult::functionalCount() const {
  size_t n = 0;
  for (const auto& p : points) {
    if (p.metrics.functional) ++n;
  }
  return n;
}

Sweep2dResult sweepSupplies(const HarnessConfig& base, const Sweep2dConfig& config) {
  if (config.step <= 0.0 || config.v_max < config.v_min) {
    throw InvalidInputError("sweepSupplies: bad grid");
  }
  Sweep2dResult result;
  const int n = static_cast<int>(std::floor((config.v_max - config.v_min) / config.step + 0.5)) + 1;
  for (int k = 0; k < n; ++k) {
    result.vddi_axis.push_back(config.v_min + k * config.step);
  }
  result.vddo_axis = result.vddi_axis;

  // Grid points are independent simulations: dispatch them across the
  // worker pool, each writing its pre-sized row-major slot so the result
  // layout never depends on completion order.
  const size_t cols = result.vddo_axis.size();
  const size_t total = result.vddi_axis.size() * cols;
  result.points.resize(total);
  std::atomic<size_t> done{0};
  std::mutex progress_mutex;
  parallelFor(
      total,
      [&](size_t idx) {
        HarnessConfig cfg = base;
        cfg.vddi = result.vddi_axis[idx / cols];
        cfg.vddo = result.vddo_axis[idx % cols];
        SweepPoint p;
        p.vddi = cfg.vddi;
        p.vddo = cfg.vddo;
        try {
          p.metrics = measureShifter(cfg);
        } catch (const Error& e) {
          p.metrics.functional = false;
          p.error = e.what();
          if (const auto* re = dynamic_cast<const RecoveryError*>(&e)) {
            p.failure_stage = re->diagnostics().lastStageName();
            p.failure_node = re->diagnostics().worstNode();
          }
        }
        const size_t d = ++done;
        if (config.on_point) {
          // Progress callbacks are serialized; `d` counts completions,
          // which under parallel execution need not follow grid order.
          std::lock_guard<std::mutex> lock(progress_mutex);
          config.on_point(p, d, total);
        }
        result.points[idx] = std::move(p);
      },
      config.threads);
  return result;
}

}  // namespace vls
