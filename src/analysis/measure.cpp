#include "analysis/measure.hpp"

#include <algorithm>

#include "base/error.hpp"

namespace vls {

std::optional<double> crossTime(const Signal& s, double level, CrossDir dir, double from) {
  return firstCrossing(s.time, s.value, level, dir, from);
}

std::vector<double> crossTimes(const Signal& s, double level, CrossDir dir, double from) {
  return allCrossings(s.time, s.value, level, dir, from);
}

std::optional<double> crossTimeCubic(const Signal& s, double level, CrossDir dir, double from) {
  return firstCrossingCubic(s.time, s.value, level, dir, from);
}

std::optional<double> transitionTimeCubic(const Signal& s, double v_low, double v_high,
                                          CrossDir dir, double from) {
  const double lo = v_low + 0.1 * (v_high - v_low);
  const double hi = v_low + 0.9 * (v_high - v_low);
  if (dir == CrossDir::Rising) {
    const auto t_lo = crossTimeCubic(s, lo, CrossDir::Rising, from);
    if (!t_lo) return std::nullopt;
    const auto t_hi = crossTimeCubic(s, hi, CrossDir::Rising, *t_lo);
    if (!t_hi) return std::nullopt;
    return *t_hi - *t_lo;
  }
  const auto t_hi = crossTimeCubic(s, hi, CrossDir::Falling, from);
  if (!t_hi) return std::nullopt;
  const auto t_lo = crossTimeCubic(s, lo, CrossDir::Falling, *t_hi);
  if (!t_lo) return std::nullopt;
  return *t_lo - *t_hi;
}

std::optional<double> propagationDelay(const Signal& input, const Signal& output, double in_level,
                                       CrossDir in_dir, double out_level, CrossDir out_dir,
                                       double from) {
  const auto t_in = crossTime(input, in_level, in_dir, from);
  if (!t_in) return std::nullopt;
  const auto t_out = crossTime(output, out_level, out_dir, *t_in);
  if (!t_out) return std::nullopt;
  return *t_out - *t_in;
}

double averageValue(const Signal& s, double t0, double t1) {
  if (t1 <= t0) throw InvalidInputError("averageValue: empty window");
  return integrateTrapezoid(s.time, s.value, t0, t1) / (t1 - t0);
}

double minValue(const Signal& s, double t0, double t1) {
  double m = interpLinear(s.time, s.value, t0);
  for (size_t i = 0; i < s.time.size(); ++i) {
    if (s.time[i] >= t0 && s.time[i] <= t1) m = std::min(m, s.value[i]);
  }
  return std::min(m, interpLinear(s.time, s.value, t1));
}

double maxValue(const Signal& s, double t0, double t1) {
  double m = interpLinear(s.time, s.value, t0);
  for (size_t i = 0; i < s.time.size(); ++i) {
    if (s.time[i] >= t0 && s.time[i] <= t1) m = std::max(m, s.value[i]);
  }
  return std::max(m, interpLinear(s.time, s.value, t1));
}

std::optional<double> transitionTime(const Signal& s, double v_low, double v_high, CrossDir dir,
                                     double from) {
  const double lo = v_low + 0.1 * (v_high - v_low);
  const double hi = v_low + 0.9 * (v_high - v_low);
  if (dir == CrossDir::Rising) {
    const auto t_lo = crossTime(s, lo, CrossDir::Rising, from);
    if (!t_lo) return std::nullopt;
    const auto t_hi = crossTime(s, hi, CrossDir::Rising, *t_lo);
    if (!t_hi) return std::nullopt;
    return *t_hi - *t_lo;
  }
  const auto t_hi = crossTime(s, hi, CrossDir::Falling, from);
  if (!t_hi) return std::nullopt;
  const auto t_lo = crossTime(s, lo, CrossDir::Falling, *t_hi);
  if (!t_lo) return std::nullopt;
  return *t_lo - *t_hi;
}

Signal supplyCurrent(const TransientResult& result, const VoltageSource& source) {
  Signal s = result.unknown(source.branchIndex());
  // Branch current is defined flowing from the external circuit into
  // the + terminal; a supply *delivers* the negative of that.
  for (double& v : s.value) v = -v;
  return s;
}

double averageSupplyPower(const TransientResult& result, const VoltageSource& source, double t0,
                          double t1) {
  if (t1 <= t0) throw InvalidInputError("averageSupplyPower: empty window");
  const Signal i = supplyCurrent(result, source);
  std::vector<double> p(i.value.size());
  for (size_t k = 0; k < i.value.size(); ++k) {
    p[k] = i.value[k] * source.waveform().at(i.time[k]);
  }
  return integrateTrapezoid(i.time, p, t0, t1) / (t1 - t0);
}

double deliveredCharge(const TransientResult& result, const VoltageSource& source, double t0,
                       double t1) {
  const Signal i = supplyCurrent(result, source);
  return integrateTrapezoid(i.time, i.value, t0, t1);
}

double transitionEnergy(const TransientResult& result, const VoltageSource& source,
                        double t_edge, double window, double baseline_power) {
  const double p_avg = averageSupplyPower(result, source, t_edge, t_edge + window);
  return (p_avg - baseline_power) * window;
}

}  // namespace vls
