#include "analysis/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "analysis/area.hpp"
#include "analysis/measure.hpp"
#include "base/error.hpp"
#include "base/logging.hpp"
#include "base/parallel.hpp"
#include "devices/mosfet.hpp"
#include "numeric/lanes.hpp"
#include "sim/simulator.hpp"

namespace vls {

namespace {

/// A linear 0-100% PWL ramp whose 10-90% portion equals `slew`.
double rampFor(double slew) { return slew / 0.8; }

void applyProcessSkew(ShifterTestbench& tb, const CornerSpec& corner) {
  for (Mosfet* fet : tb.dutFets()) {
    MosGeometry g = fet->geometry();
    const bool is_nmos = fet->model().type == MosType::Nmos;
    g.delta_vt = is_nmos ? corner.nmos_dvt : corner.pmos_dvt;
    g.delta_w = g.w * corner.dw_frac;
    g.delta_l = g.l * corner.dl_frac;
    fet->setGeometry(g);
  }
}

/// Metric extraction of one grid point from one transient run. The
/// stimulus is bits {1, 0, 1}: the input falls at t = period and rises
/// at t = 2*period, so each run carries exactly one output rise and one
/// output fall (in DUT-polarity-dependent order).
CharPoint measurePoint(const TransientResult& run, const HarnessConfig& cfg, bool inverting,
                       const VoltageSource& vddo_src, double slew, double load) {
  CharPoint p;
  p.slew = slew;
  p.load = load;

  const Signal in_sig = run.node("in");
  const Signal out_sig = run.node("out");
  const double vmi = 0.5 * cfg.vddi;
  const double vmo = 0.5 * cfg.vddo;
  const double period = cfg.bit_period;

  // Cubic-refined crossings: the lane and scalar engines integrate the
  // same waveform on different adaptive time grids, and the linear
  // interpolant's O(dt^2) crossing error is the dominant disagreement
  // between them at these tolerances.
  const auto t_in_fall = crossTimeCubic(in_sig, vmi, CrossDir::Falling, 0.5 * period);
  const auto t_in_rise = crossTimeCubic(in_sig, vmi, CrossDir::Rising, 1.5 * period);
  if (!t_in_fall || !t_in_rise) return p;  // ok stays false

  // Inverting DUTs: falling input -> rising output (slot 1), rising
  // input -> falling output (slot 2). Non-inverting: the reverse map.
  const double t_rise_in = inverting ? *t_in_fall : *t_in_rise;
  const double t_fall_in = inverting ? *t_in_rise : *t_in_fall;
  const double rise_slot = inverting ? period : 2.0 * period;
  const double fall_slot = inverting ? 2.0 * period : period;

  const auto t_out_rise = crossTimeCubic(out_sig, vmo, CrossDir::Rising, t_rise_in);
  const auto t_out_fall = crossTimeCubic(out_sig, vmo, CrossDir::Falling, t_fall_in);
  const auto tr = transitionTimeCubic(out_sig, 0.1 * cfg.vddo, 0.9 * cfg.vddo, CrossDir::Rising,
                                      rise_slot);
  const auto tf = transitionTimeCubic(out_sig, 0.1 * cfg.vddo, 0.9 * cfg.vddo, CrossDir::Falling,
                                      fall_slot);
  if (!t_out_rise || !t_out_fall || !tr || !tf) return p;
  p.delay_rise = *t_out_rise - t_rise_in;
  p.delay_fall = *t_out_fall - t_fall_in;
  p.trans_rise = *tr;
  p.trans_fall = *tf;

  // Output-domain supply energy of each transition's bit slot. The slot
  // is long relative to the edge, so this is the NLDM switching energy
  // plus one slot of leakage (negligible at these periods).
  p.energy_rise = averageSupplyPower(run, vddo_src, rise_slot, rise_slot + period) * period;
  p.energy_fall = averageSupplyPower(run, vddo_src, fall_slot, fall_slot + period) * period;

  // Functional gate: the output must settle within 10% of the correct
  // rail at the end of every bit slot.
  const double tol = 0.1 * cfg.vddo;
  bool ok = true;
  for (size_t k = 0; k < cfg.bits.size(); ++k) {
    const double t1 = static_cast<double>(k + 1) * period;
    const bool high = inverting ? cfg.bits[k] == 0 : cfg.bits[k] != 0;
    const double target = high ? cfg.vddo : 0.0;
    if (std::fabs(averageValue(out_sig, t1 - 0.15 * period, t1) - target) > tol) ok = false;
  }
  p.ok = ok;
  return p;
}

/// Evaluation order of the flattened grid: the configured permutation
/// when it is one, row-major otherwise.
std::vector<size_t> gridOrder(const CharGrid& grid) {
  const size_t n = grid.slews.size() * grid.loads.size();
  if (grid.point_order.size() == n) {
    std::vector<size_t> seen(n, 0);
    for (size_t idx : grid.point_order) {
      if (idx >= n || seen[idx]++) {
        throw InvalidInputError("CharGrid::point_order is not a permutation of the grid");
      }
    }
    return grid.point_order;
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

/// One scalar reference point: fresh Simulator over the (re-stimulated)
/// shared testbench, warm-started from `nodeset` when given. Returns
/// the converged t=0 operating point through `op_out` for chaining.
CharPoint runScalarPoint(ShifterTestbench& tb, const CharGrid& grid, double slew, double load,
                         const std::shared_ptr<const std::vector<double>>& nodeset,
                         std::shared_ptr<const std::vector<double>>* op_out) {
  const HarnessConfig& cfg = tb.config();
  const double ramp = rampFor(slew);
  tb.vinSource()->setWaveform(tb.stimulusWaveform(ramp));
  tb.loadCapacitor()->setCapacitance(load);

  SimOptions opts = cfg.sim;
  opts.temperature_c = cfg.temperature_c;
  opts.tran_reltol = grid.tran_reltol;
  if (grid.warm_start) opts.nodeset = nodeset;
  Simulator sim(tb.circuit(), opts);
  const TransientResult run = sim.transient(tb.tStop(), grid.dt_max, ramp / 4.0);
  if (op_out != nullptr && grid.warm_start) {
    *op_out = std::make_shared<const std::vector<double>>(run.solution(0));
  }
  return measurePoint(run, cfg, tb.inverting(), *tb.vddoSource(), slew, load);
}

}  // namespace

std::vector<CharCorner> standardCharCorners() {
  std::vector<CharCorner> out;
  {
    CharCorner c;
    c.name = "tt_0p80v_1p20v_25c";
    out.push_back(c);
  }
  {
    // Slow-hot sign-off corner: slow devices, derated supplies, 85 C.
    CharCorner c;
    c.name = "ss_0p72v_1p08v_85c";
    c.vddi = 0.72;
    c.vddo = 1.08;
    c.temperature_c = 85.0;
    c.process = {"SS", +0.039, +0.039, -0.05, +0.05, 85.0, 1.0};
    out.push_back(c);
  }
  return out;
}

CharTable characterizeCell(ShifterKind kind, const CharCorner& corner, const CharGrid& grid,
                           const HarnessConfig& base) {
  if (grid.slews.empty() || grid.loads.empty()) {
    throw InvalidInputError("characterizeCell: empty slew or load axis");
  }
  for (double s : grid.slews) {
    if (rampFor(s) >= grid.bit_period) {
      throw InvalidInputError("characterizeCell: input ramp exceeds the bit period");
    }
  }

  HarnessConfig cfg = base;
  cfg.kind = kind;
  cfg.direct_drive = true;
  cfg.vddi = corner.vddi;
  cfg.vddo = corner.vddo;
  cfg.temperature_c = corner.temperature_c;
  cfg.bits = {1, 0, 1};  // one falling and one rising input edge
  cfg.bit_period = grid.bit_period;
  cfg.leak_settle = grid.settle;
  cfg.edge_time = rampFor(grid.slews.front());
  cfg.load_cap = grid.loads.front();
  cfg.dt_max = grid.dt_max;
  cfg.sim.tran_reltol = grid.tran_reltol;

  CharTable table;
  table.kind = kind;
  table.corner = corner;
  table.slews = grid.slews;
  table.loads = grid.loads;
  table.inverting = shifterKindInverting(kind);
  table.points.resize(grid.slews.size() * grid.loads.size());

  ShifterTestbench tb(cfg);
  applyProcessSkew(tb, corner.process);
  table.area_m2 = estimateCellArea(tb.dutFets());

  const std::vector<size_t> order = gridOrder(grid);
  const size_t n_loads = grid.loads.size();

  if (!grid.use_lanes) {
    std::shared_ptr<const std::vector<double>> op;
    for (size_t idx : order) {
      table.points[idx] = runScalarPoint(tb, grid, grid.slews[idx / n_loads],
                                         grid.loads[idx % n_loads], op, &op);
    }
  } else {
    const size_t K = std::clamp<size_t>(grid.lane_width, 1, kMaxLanes);
    SimOptions opts = cfg.sim;
    opts.temperature_c = cfg.temperature_c;
    // Lane-engine tuning: SPICE device bypass. Iteration 0 of every
    // solve still fully re-linearizes, so stored values replayed for
    // quiet devices always come from the same timestep; the scalar
    // reference loop keeps bypass off (accuracy is checked against it
    // within grid.lane_rel_tol).
    opts.enable_bypass = true;
    opts.bypass_settle_iterations = 1;
    // 1e-4 V quiet threshold: devices are only bypassed while their
    // terminals sit still (supply rails, settled internal nodes), far
    // from the measured 10/50/90% crossings; the residual error this
    // admits is well inside lane_rel_tol and is covered by the
    // lane-vs-scalar checks in tests and the bench.
    opts.bypass_tol = 1e-4;
    EnsembleSimulator sim(tb.circuit(), K, opts);
    auto* src_state = static_cast<SourceLaneState*>(sim.laneState(*tb.vinSource()));
    auto* cap_state = static_cast<CapacitorLaneState*>(sim.laneState(*tb.loadCapacitor()));

    std::shared_ptr<const std::vector<double>> op;
    std::vector<size_t> retry;  // lane-failed points, re-run scalar below
    for (size_t b = 0; b < order.size(); b += K) {
      double min_ramp = rampFor(grid.slews.back());
      for (size_t l = 0; l < K; ++l) {
        // Short batches pad by repeating the last point: padded lanes
        // converge trivially and their results are simply discarded.
        const size_t idx = order[std::min(b + l, order.size() - 1)];
        const double ramp = rampFor(grid.slews[idx / n_loads]);
        src_state->setWaveform(l, tb.stimulusWaveform(ramp));
        cap_state->setCapacitance(l, grid.loads[idx % n_loads]);
        min_ramp = std::min(min_ramp, ramp);
      }
      if (grid.warm_start) sim.setNodeset(op);
      sim.transient(tb.tStop(), grid.dt_max, min_ramp / 4.0);
      if (grid.warm_start) {
        // Seed the next batch from this batch's converged t=0 state
        // (lane 0 by convention; all lanes share the same DC state).
        op = std::make_shared<const std::vector<double>>(sim.laneSolution(0, 0));
      }
      for (size_t l = 0; l < K && b + l < order.size(); ++l) {
        const size_t idx = order[b + l];
        if (sim.laneFailed(l)) {
          retry.push_back(idx);
          continue;
        }
        table.points[idx] = measurePoint(sim.laneResult(l), cfg, table.inverting,
                                         *tb.vddoSource(), grid.slews[idx / n_loads],
                                         grid.loads[idx % n_loads]);
      }
    }
    // Lane dropouts re-run through the scalar reference path.
    table.scalar_fallbacks = retry.size();
    for (size_t idx : retry) {
      VLS_LOG_WARN("characterize %s/%s: lane dropout at point %zu, scalar re-run",
                   shifterKindName(kind), corner.name.c_str(), idx);
      table.points[idx] = runScalarPoint(tb, grid, grid.slews[idx / n_loads],
                                         grid.loads[idx % n_loads], op, nullptr);
    }
  }

  // Static .lib data (leakage, functionality) from the paper's own
  // driver-loaded harness at this corner.
  if (grid.static_metrics) {
    HarnessConfig mcfg = base;
    mcfg.kind = kind;
    mcfg.vddi = corner.vddi;
    mcfg.vddo = corner.vddo;
    mcfg.temperature_c = corner.temperature_c;
    ShifterTestbench mtb(mcfg);
    applyProcessSkew(mtb, corner.process);
    try {
      table.static_metrics = mtb.measure();
    } catch (const Error& e) {
      VLS_LOG_WARN("characterize %s/%s: static harness failed: %s", shifterKindName(kind),
                   corner.name.c_str(), e.what());
      table.static_metrics.functional = false;
    }
  }
  return table;
}

std::vector<CharTable> characterizeCells(const CharRequest& request) {
  const std::vector<CharCorner> corners =
      request.corners.empty() ? standardCharCorners() : request.corners;
  const size_t n_tasks = request.kinds.size() * corners.size();
  std::vector<CharTable> tables(n_tasks);
  // (cell, corner) tasks are independent; the grid inside each one
  // runs lane-batched, so the farm fills both axes of the machine.
  parallelForChunked(
      n_tasks,
      [&](size_t t) {
        const ShifterKind kind = request.kinds[t / corners.size()];
        const CharCorner& corner = corners[t % corners.size()];
        tables[t] = characterizeCell(kind, corner, request.grid, request.base);
      },
      ParallelOptions{0, 1});
  return tables;
}

}  // namespace vls
