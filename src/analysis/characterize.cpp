#include "analysis/characterize.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <mutex>

#include "analysis/area.hpp"
#include "analysis/measure.hpp"
#include "base/error.hpp"
#include "base/logging.hpp"
#include "base/parallel.hpp"
#include "devices/mosfet.hpp"
#include "io/checkpoint.hpp"
#include "numeric/lanes.hpp"
#include "sim/recovery.hpp"
#include "sim/simulator.hpp"

namespace vls {

namespace {

/// A linear 0-100% PWL ramp whose 10-90% portion equals `slew`.
double rampFor(double slew) { return slew / 0.8; }

void applyProcessSkew(ShifterTestbench& tb, const CornerSpec& corner) {
  for (Mosfet* fet : tb.dutFets()) {
    MosGeometry g = fet->geometry();
    const bool is_nmos = fet->model().type == MosType::Nmos;
    g.delta_vt = is_nmos ? corner.nmos_dvt : corner.pmos_dvt;
    g.delta_w = g.w * corner.dw_frac;
    g.delta_l = g.l * corner.dl_frac;
    fet->setGeometry(g);
  }
}

/// Metric extraction of one grid point from one transient run. The
/// stimulus is bits {1, 0, 1}: the input falls at t = period and rises
/// at t = 2*period, so each run carries exactly one output rise and one
/// output fall (in DUT-polarity-dependent order).
CharPoint measurePoint(const TransientResult& run, const HarnessConfig& cfg, bool inverting,
                       const VoltageSource& vddo_src, double slew, double load) {
  CharPoint p;
  p.slew = slew;
  p.load = load;

  const Signal in_sig = run.node("in");
  const Signal out_sig = run.node("out");
  const double vmi = 0.5 * cfg.vddi;
  const double vmo = 0.5 * cfg.vddo;
  const double period = cfg.bit_period;

  // Cubic-refined crossings: the lane and scalar engines integrate the
  // same waveform on different adaptive time grids, and the linear
  // interpolant's O(dt^2) crossing error is the dominant disagreement
  // between them at these tolerances.
  const auto t_in_fall = crossTimeCubic(in_sig, vmi, CrossDir::Falling, 0.5 * period);
  const auto t_in_rise = crossTimeCubic(in_sig, vmi, CrossDir::Rising, 1.5 * period);
  if (!t_in_fall || !t_in_rise) return p;  // ok stays false

  // Inverting DUTs: falling input -> rising output (slot 1), rising
  // input -> falling output (slot 2). Non-inverting: the reverse map.
  const double t_rise_in = inverting ? *t_in_fall : *t_in_rise;
  const double t_fall_in = inverting ? *t_in_rise : *t_in_fall;
  const double rise_slot = inverting ? period : 2.0 * period;
  const double fall_slot = inverting ? 2.0 * period : period;

  const auto t_out_rise = crossTimeCubic(out_sig, vmo, CrossDir::Rising, t_rise_in);
  const auto t_out_fall = crossTimeCubic(out_sig, vmo, CrossDir::Falling, t_fall_in);
  const auto tr = transitionTimeCubic(out_sig, 0.1 * cfg.vddo, 0.9 * cfg.vddo, CrossDir::Rising,
                                      rise_slot);
  const auto tf = transitionTimeCubic(out_sig, 0.1 * cfg.vddo, 0.9 * cfg.vddo, CrossDir::Falling,
                                      fall_slot);
  if (!t_out_rise || !t_out_fall || !tr || !tf) return p;
  p.delay_rise = *t_out_rise - t_rise_in;
  p.delay_fall = *t_out_fall - t_fall_in;
  p.trans_rise = *tr;
  p.trans_fall = *tf;

  // Output-domain supply energy of each transition's bit slot. The slot
  // is long relative to the edge, so this is the NLDM switching energy
  // plus one slot of leakage (negligible at these periods).
  p.energy_rise = averageSupplyPower(run, vddo_src, rise_slot, rise_slot + period) * period;
  p.energy_fall = averageSupplyPower(run, vddo_src, fall_slot, fall_slot + period) * period;

  // Functional gate: the output must settle within 10% of the correct
  // rail at the end of every bit slot.
  const double tol = 0.1 * cfg.vddo;
  bool ok = true;
  for (size_t k = 0; k < cfg.bits.size(); ++k) {
    const double t1 = static_cast<double>(k + 1) * period;
    const bool high = inverting ? cfg.bits[k] == 0 : cfg.bits[k] != 0;
    const double target = high ? cfg.vddo : 0.0;
    if (std::fabs(averageValue(out_sig, t1 - 0.15 * period, t1) - target) > tol) ok = false;
  }
  p.ok = ok;
  return p;
}

/// Evaluation order of the flattened grid: the configured permutation
/// when it is one, row-major otherwise.
std::vector<size_t> gridOrder(const CharGrid& grid) {
  const size_t n = grid.slews.size() * grid.loads.size();
  if (grid.point_order.size() == n) {
    std::vector<size_t> seen(n, 0);
    for (size_t idx : grid.point_order) {
      if (idx >= n || seen[idx]++) {
        throw InvalidInputError("CharGrid::point_order is not a permutation of the grid");
      }
    }
    return grid.point_order;
  }
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

/// One scalar reference point: fresh Simulator over the (re-stimulated)
/// shared testbench, warm-started from `nodeset` when given. Returns
/// the converged t=0 operating point through `op_out` for chaining. A
/// non-null `recovery_override` replaces the recovery ladder policy
/// (escalated retry attempts). Any configured fault injector is
/// re-instantiated fresh per call, so its firing budget re-fires on
/// every attempt — retries cannot silently out-wait an injected fault.
CharPoint runScalarPoint(ShifterTestbench& tb, const CharGrid& grid, double slew, double load,
                         const std::shared_ptr<const std::vector<double>>& nodeset,
                         std::shared_ptr<const std::vector<double>>* op_out,
                         const RecoveryPolicy* recovery_override = nullptr) {
  const HarnessConfig& cfg = tb.config();
  const double ramp = rampFor(slew);
  tb.vinSource()->setWaveform(tb.stimulusWaveform(ramp));
  tb.loadCapacitor()->setCapacitance(load);

  SimOptions opts = cfg.sim;
  opts.temperature_c = cfg.temperature_c;
  opts.tran_reltol = grid.tran_reltol;
  if (grid.warm_start) opts.nodeset = nodeset;
  if (recovery_override != nullptr) opts.recovery = *recovery_override;
  if (opts.fault_injector) {
    opts.fault_injector = std::make_shared<FaultInjector>(opts.fault_injector->spec());
  }
  Simulator sim(tb.circuit(), opts);
  const TransientResult run = sim.transient(tb.tStop(), grid.dt_max, ramp / 4.0);
  if (op_out != nullptr && grid.warm_start) {
    *op_out = std::make_shared<const std::vector<double>>(run.solution(0));
  }
  return measurePoint(run, cfg, tb.inverting(), *tb.vddoSource(), slew, load);
}

// ---------------------------------------------------------------------------
// Per-task checkpoint payload: the full measured-point store, the
// batch cursor (in grid-order-entry units, batch-aligned on the lane
// path), the pending scalar-retry list and the warm-start chain state.
// Completed tasks store the finished table (incl. static metrics and
// failure records) so a resumed farm skips them entirely. Doubles are
// raw IEEE-754 bits end to end, which is what makes a killed-then-
// resumed farm reproduce the uninterrupted .lib text bit for bit.
// ---------------------------------------------------------------------------

void writeCharPoint(CheckpointWriter& w, const CharPoint& p) {
  w.f64(p.slew);
  w.f64(p.load);
  w.f64(p.delay_rise);
  w.f64(p.delay_fall);
  w.f64(p.trans_rise);
  w.f64(p.trans_fall);
  w.f64(p.energy_rise);
  w.f64(p.energy_fall);
  w.u8(p.ok ? 1 : 0);
}

CharPoint readCharPoint(CheckpointReader& r) {
  CharPoint p;
  p.slew = r.f64();
  p.load = r.f64();
  p.delay_rise = r.f64();
  p.delay_fall = r.f64();
  p.trans_rise = r.f64();
  p.trans_fall = r.f64();
  p.energy_rise = r.f64();
  p.energy_fall = r.f64();
  p.ok = r.u8() != 0;
  return p;
}

void writeShifterMetrics(CheckpointWriter& w, const ShifterMetrics& m) {
  w.f64(m.delay_rise);
  w.f64(m.delay_fall);
  w.f64(m.power_rise);
  w.f64(m.power_fall);
  w.f64(m.leakage_high);
  w.f64(m.leakage_low);
  w.f64(m.leakage_high_vddi);
  w.f64(m.leakage_low_vddi);
  w.u8(m.functional ? 1 : 0);
}

ShifterMetrics readShifterMetrics(CheckpointReader& r) {
  ShifterMetrics m;
  m.delay_rise = r.f64();
  m.delay_fall = r.f64();
  m.power_rise = r.f64();
  m.power_fall = r.f64();
  m.leakage_high = r.f64();
  m.leakage_low = r.f64();
  m.leakage_high_vddi = r.f64();
  m.leakage_low_vddi = r.f64();
  m.functional = r.u8() != 0;
  return m;
}

struct TaskProgress {
  bool done = false;
  size_t cursor = 0;  ///< completed grid-order entries (main loop)
  std::vector<CharPoint> points;
  std::vector<size_t> retry;  ///< points pending the scalar retry phase
  bool has_op = false;
  std::vector<double> op;  ///< warm-start chain state at the cursor
  // Stored once done:
  size_t scalar_fallbacks = 0;
  size_t retried_points = 0;
  std::vector<CharPointFailure> failures;
  ShifterMetrics static_metrics{};
  double area_m2 = 0.0;
  bool inverting = true;
};

std::vector<uint8_t> serializeProgress(const TaskProgress& prog) {
  CheckpointWriter w;
  w.u8(prog.done ? 1 : 0);
  w.u64(prog.points.size());
  for (const CharPoint& p : prog.points) writeCharPoint(w, p);
  if (!prog.done) {
    w.u64(prog.cursor);
    w.u64(prog.retry.size());
    for (size_t idx : prog.retry) w.u64(idx);
    w.u8(prog.has_op ? 1 : 0);
    w.f64vec(prog.op);
  } else {
    w.u64(prog.scalar_fallbacks);
    w.u64(prog.retried_points);
    w.u64(prog.failures.size());
    for (const CharPointFailure& f : prog.failures) {
      w.u64(f.point);
      w.f64(f.slew);
      w.f64(f.load);
      w.u64(static_cast<uint64_t>(f.attempts));
      w.str(f.stage);
      w.str(f.node);
      w.str(f.message);
    }
    writeShifterMetrics(w, prog.static_metrics);
    w.f64(prog.area_m2);
    w.u8(prog.inverting ? 1 : 0);
  }
  return w.bytes();
}

TaskProgress deserializeProgress(const std::vector<uint8_t>& bytes, size_t expected_points) {
  CheckpointReader r{bytes};
  TaskProgress prog;
  prog.done = r.u8() != 0;
  const uint64_t n = r.u64();
  if (n != expected_points) {
    throw InvalidInputError("characterize: checkpointed task has a different grid size");
  }
  prog.points.reserve(n);
  for (uint64_t i = 0; i < n; ++i) prog.points.push_back(readCharPoint(r));
  if (!prog.done) {
    prog.cursor = r.u64();
    const uint64_t n_retry = r.u64();
    for (uint64_t i = 0; i < n_retry; ++i) {
      const uint64_t idx = r.u64();
      if (idx >= expected_points) {
        throw InvalidInputError("characterize: checkpointed retry index out of range");
      }
      prog.retry.push_back(idx);
    }
    prog.has_op = r.u8() != 0;
    prog.op = r.f64vec();
    if (prog.cursor > expected_points) {
      throw InvalidInputError("characterize: checkpointed cursor out of range");
    }
  } else {
    prog.scalar_fallbacks = r.u64();
    prog.retried_points = r.u64();
    const uint64_t n_fail = r.u64();
    for (uint64_t i = 0; i < n_fail; ++i) {
      CharPointFailure f;
      f.point = r.u64();
      f.slew = r.f64();
      f.load = r.f64();
      f.attempts = static_cast<int>(r.u64());
      f.stage = r.str();
      f.node = r.str();
      f.message = r.str();
      prog.failures.push_back(std::move(f));
    }
    prog.static_metrics = readShifterMetrics(r);
    prog.area_m2 = r.f64();
    prog.inverting = r.u8() != 0;
  }
  return prog;
}

}  // namespace

std::vector<CharCorner> standardCharCorners() {
  std::vector<CharCorner> out;
  {
    CharCorner c;
    c.name = "tt_0p80v_1p20v_25c";
    out.push_back(c);
  }
  {
    // Slow-hot sign-off corner: slow devices, derated supplies, 85 C.
    CharCorner c;
    c.name = "ss_0p72v_1p08v_85c";
    c.vddi = 0.72;
    c.vddo = 1.08;
    c.temperature_c = 85.0;
    c.process = {"SS", +0.039, +0.039, -0.05, +0.05, 85.0, 1.0};
    out.push_back(c);
  }
  return out;
}

CharTable characterizeCell(ShifterKind kind, const CharCorner& corner, const CharGrid& grid,
                           const HarnessConfig& base, const CharCellControl& control) {
  if (grid.slews.empty() || grid.loads.empty()) {
    throw InvalidInputError("characterizeCell: empty slew or load axis");
  }
  for (double s : grid.slews) {
    if (rampFor(s) >= grid.bit_period) {
      throw InvalidInputError("characterizeCell: input ramp exceeds the bit period");
    }
  }

  HarnessConfig cfg = base;
  cfg.kind = kind;
  cfg.direct_drive = true;
  cfg.vddi = corner.vddi;
  cfg.vddo = corner.vddo;
  cfg.temperature_c = corner.temperature_c;
  cfg.bits = {1, 0, 1};  // one falling and one rising input edge
  cfg.bit_period = grid.bit_period;
  cfg.leak_settle = grid.settle;
  cfg.edge_time = rampFor(grid.slews.front());
  cfg.load_cap = grid.loads.front();
  cfg.dt_max = grid.dt_max;
  cfg.sim.tran_reltol = grid.tran_reltol;
  cfg.sim.job_control = control.job;

  CharTable table;
  table.kind = kind;
  table.corner = corner;
  table.slews = grid.slews;
  table.loads = grid.loads;
  table.inverting = shifterKindInverting(kind);
  const size_t n_points = grid.slews.size() * grid.loads.size();
  table.points.resize(n_points);

  const std::vector<size_t> order = gridOrder(grid);
  const size_t n_loads = grid.loads.size();

  // Resume: a completed task short-circuits from its stored table; a
  // partial one restores the point store, cursor, retry list and
  // warm-start chain state and continues mid-grid.
  std::shared_ptr<const std::vector<double>> op;
  std::vector<size_t> retry;  // points pending the scalar retry phase
  size_t cursor = 0;
  if (control.resume != nullptr) {
    TaskProgress prog = deserializeProgress(*control.resume, n_points);
    if (prog.done) {
      table.points = std::move(prog.points);
      table.scalar_fallbacks = prog.scalar_fallbacks;
      table.retried_points = prog.retried_points;
      table.failures = std::move(prog.failures);
      table.static_metrics = prog.static_metrics;
      table.area_m2 = prog.area_m2;
      table.inverting = prog.inverting;
      return table;
    }
    table.points = std::move(prog.points);
    retry = std::move(prog.retry);
    cursor = prog.cursor;
    if (prog.has_op) op = std::make_shared<const std::vector<double>>(std::move(prog.op));
  }

  ShifterTestbench tb(cfg);
  applyProcessSkew(tb, corner.process);
  table.area_m2 = estimateCellArea(tb.dutFets());

  auto save_partial = [&](size_t new_cursor) {
    if (!control.save) return;
    TaskProgress prog;
    prog.cursor = new_cursor;
    prog.points = table.points;
    prog.retry = retry;
    if (op) {
      prog.has_op = true;
      prog.op = *op;
    }
    control.save(serializeProgress(prog));
  };
  auto unit_done = [&] {
    if (control.job) control.job->unitDone();
  };

  if (!grid.use_lanes) {
    for (size_t oi = cursor; oi < order.size(); ++oi) {
      const size_t idx = order[oi];
      try {
        table.points[idx] = runScalarPoint(tb, grid, grid.slews[idx / n_loads],
                                           grid.loads[idx % n_loads], op, &op);
      } catch (const Error& e) {
        // Degrade, don't abort: queue for the escalated retry phase.
        VLS_LOG_WARN("characterize %s/%s: point %zu threw (%s); queued for escalated retry",
                     shifterKindName(kind), corner.name.c_str(), idx, e.what());
        retry.push_back(idx);
      }
      save_partial(oi + 1);
      unit_done();
    }
  } else {
    const size_t K = std::clamp<size_t>(grid.lane_width, 1, kMaxLanes);
    SimOptions opts = cfg.sim;
    opts.temperature_c = cfg.temperature_c;
    // Lane-engine tuning: SPICE device bypass. Iteration 0 of every
    // solve still fully re-linearizes, so stored values replayed for
    // quiet devices always come from the same timestep; the scalar
    // reference loop keeps bypass off (accuracy is checked against it
    // within grid.lane_rel_tol).
    opts.enable_bypass = true;
    opts.bypass_settle_iterations = 1;
    // 1e-4 V quiet threshold: devices are only bypassed while their
    // terminals sit still (supply rails, settled internal nodes), far
    // from the measured 10/50/90% crossings; the residual error this
    // admits is well inside lane_rel_tol and is covered by the
    // lane-vs-scalar checks in tests and the bench.
    opts.bypass_tol = 1e-4;
    EnsembleSimulator sim(tb.circuit(), K, opts);
    auto* src_state = static_cast<SourceLaneState*>(sim.laneState(*tb.vinSource()));
    auto* cap_state = static_cast<CapacitorLaneState*>(sim.laneState(*tb.loadCapacitor()));

    for (size_t b = cursor; b < order.size(); b += K) {
      double min_ramp = rampFor(grid.slews.back());
      for (size_t l = 0; l < K; ++l) {
        // Short batches pad by repeating the last point: padded lanes
        // converge trivially and their results are simply discarded.
        const size_t idx = order[std::min(b + l, order.size() - 1)];
        const double ramp = rampFor(grid.slews[idx / n_loads]);
        src_state->setWaveform(l, tb.stimulusWaveform(ramp));
        cap_state->setCapacitance(l, grid.loads[idx % n_loads]);
        min_ramp = std::min(min_ramp, ramp);
      }
      if (grid.warm_start) sim.setNodeset(op);
      bool batch_ok = true;
      try {
        sim.transient(tb.tStop(), grid.dt_max, min_ramp / 4.0);
      } catch (const Error& e) {
        // Degrade, don't abort: the whole batch falls back to the
        // scalar path (JobInterrupted is not an Error and propagates).
        VLS_LOG_WARN("characterize %s/%s: lane batch at %zu threw (%s); scalar fallback",
                     shifterKindName(kind), corner.name.c_str(), b, e.what());
        batch_ok = false;
        for (size_t l = 0; l < K && b + l < order.size(); ++l) retry.push_back(order[b + l]);
      }
      if (batch_ok) {
        if (grid.warm_start) {
          // Seed the next batch from this batch's converged t=0 state
          // (lane 0 by convention; all lanes share the same DC state).
          op = std::make_shared<const std::vector<double>>(sim.laneSolution(0, 0));
        }
        for (size_t l = 0; l < K && b + l < order.size(); ++l) {
          const size_t idx = order[b + l];
          if (sim.laneFailed(l)) {
            retry.push_back(idx);
            continue;
          }
          table.points[idx] = measurePoint(sim.laneResult(l), cfg, table.inverting,
                                           *tb.vddoSource(), grid.slews[idx / n_loads],
                                           grid.loads[idx % n_loads]);
        }
      }
      save_partial(std::min(b + K, order.size()));
      unit_done();
    }
    // Lane dropouts re-run through the scalar reference path.
    table.scalar_fallbacks = retry.size();
  }

  // Escalated retry phase (degrade-don't-abort): every queued point —
  // lane dropout, failed batch member, or thrown scalar run — gets up
  // to 1 + max_retries scalar attempts, the later ones under a
  // tightened recovery ladder. A point that exhausts its attempts is
  // recorded as a structured CharPointFailure and left as a table hole
  // (ok == false) — the farm keeps going and the .lib writer annotates
  // the gap. This phase is not checkpointed mid-flight: it re-runs
  // deterministically from the stored chain state on resume.
  const int max_attempts = 1 + std::max(0, control.max_retries);
  const RecoveryPolicy escalated = escalatedRecoveryPolicy(cfg.sim.recovery);
  for (size_t idx : retry) {
    const double slew = grid.slews[idx / n_loads];
    const double load = grid.loads[idx % n_loads];
    VLS_LOG_WARN("characterize %s/%s: point %zu re-run scalar", shifterKindName(kind),
                 corner.name.c_str(), idx);
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      try {
        table.points[idx] = runScalarPoint(tb, grid, slew, load, op, nullptr,
                                           attempt > 0 ? &escalated : nullptr);
        break;
      } catch (const Error& e) {
        if (attempt == 0 && max_attempts > 1) ++table.retried_points;
        if (attempt + 1 < max_attempts) {
          VLS_LOG_WARN("characterize %s/%s: point %zu threw (%s); retrying escalated",
                       shifterKindName(kind), corner.name.c_str(), idx, e.what());
          continue;
        }
        CharPointFailure f;
        f.point = idx;
        f.slew = slew;
        f.load = load;
        f.attempts = max_attempts;
        if (const auto* re = dynamic_cast<const RecoveryError*>(&e)) {
          f.stage = re->diagnostics().lastStageName();
          f.node = re->diagnostics().worstNode();
        }
        f.message = e.what();
        VLS_LOG_WARN("characterize %s/%s: point %zu failed all %d attempt(s) (%s); "
                     "leaving table hole",
                     shifterKindName(kind), corner.name.c_str(), idx, max_attempts, e.what());
        CharPoint hole;
        hole.slew = slew;
        hole.load = load;
        table.points[idx] = hole;
        table.failures.push_back(std::move(f));
      }
    }
    unit_done();
  }

  // Static .lib data (leakage, functionality) from the paper's own
  // driver-loaded harness at this corner.
  if (grid.static_metrics) {
    HarnessConfig mcfg = base;
    mcfg.kind = kind;
    mcfg.vddi = corner.vddi;
    mcfg.vddo = corner.vddo;
    mcfg.temperature_c = corner.temperature_c;
    mcfg.sim.job_control = control.job;
    ShifterTestbench mtb(mcfg);
    applyProcessSkew(mtb, corner.process);
    try {
      table.static_metrics = mtb.measure();
    } catch (const Error& e) {
      VLS_LOG_WARN("characterize %s/%s: static harness failed: %s", shifterKindName(kind),
                   corner.name.c_str(), e.what());
      table.static_metrics.functional = false;
    }
  }

  if (control.save) {
    TaskProgress prog;
    prog.done = true;
    prog.points = table.points;
    prog.scalar_fallbacks = table.scalar_fallbacks;
    prog.retried_points = table.retried_points;
    prog.failures = table.failures;
    prog.static_metrics = table.static_metrics;
    prog.area_m2 = table.area_m2;
    prog.inverting = table.inverting;
    control.save(serializeProgress(prog));
  }
  return table;
}

std::vector<CharTable> characterizeCells(const CharRequest& request) {
  const std::vector<CharCorner> corners =
      request.corners.empty() ? standardCharCorners() : request.corners;
  const size_t n_tasks = request.kinds.size() * corners.size();
  std::vector<CharTable> tables(n_tasks);

  // Request fingerprint stored in (and validated against) a farm
  // checkpoint: every request knob that shapes the task list, the grid
  // or the engine configuration. (Device sizing in `base` is assumed
  // constant across a resume, like the netlist itself.)
  const std::vector<uint8_t> fingerprint = [&] {
    CheckpointWriter w;
    w.u32(1);  // farm payload sub-version
    w.u64(request.kinds.size());
    for (ShifterKind k : request.kinds) w.u8(static_cast<uint8_t>(k));
    w.u64(corners.size());
    for (const CharCorner& c : corners) {
      w.str(c.name);
      w.f64(c.vddi);
      w.f64(c.vddo);
      w.f64(c.temperature_c);
      w.str(c.process.name);
      w.f64(c.process.nmos_dvt);
      w.f64(c.process.pmos_dvt);
      w.f64(c.process.dw_frac);
      w.f64(c.process.dl_frac);
      w.f64(c.process.temperature_c);
      w.f64(c.process.supply_scale);
    }
    w.f64vec(request.grid.slews);
    w.f64vec(request.grid.loads);
    w.u8(request.grid.use_lanes ? 1 : 0);
    w.u64(request.grid.lane_width);
    w.u8(request.grid.warm_start ? 1 : 0);
    w.u8(request.grid.static_metrics ? 1 : 0);
    w.u64(request.grid.point_order.size());
    for (size_t idx : request.grid.point_order) w.u64(idx);
    w.f64(request.grid.bit_period);
    w.f64(request.grid.settle);
    w.f64(request.grid.dt_max);
    w.f64(request.grid.tran_reltol);
    w.u64(static_cast<uint64_t>(std::max(0, request.max_retries)));
    return w.bytes();
  }();

  // Whole-farm checkpoint: a blob of serialized per-task progress,
  // atomically rewritten after every completed batch/point anywhere in
  // the farm (writes serialized under one mutex).
  const bool use_ckpt = !request.checkpoint_path.empty();
  std::vector<std::vector<uint8_t>> progress(n_tasks);
  std::vector<uint8_t> have_progress(n_tasks, 0);
  if (use_ckpt && checkpointFileExists(request.checkpoint_path)) {
    CheckpointReader r = readCheckpointFile(request.checkpoint_path, kCheckpointKindCharFarm);
    if (r.blob() != fingerprint) {
      throw InvalidInputError("characterizeCells: checkpoint '" + request.checkpoint_path +
                              "' was written by an incompatible request");
    }
    const uint64_t n_entries = r.u64();
    for (uint64_t i = 0; i < n_entries; ++i) {
      const uint64_t t = r.u64();
      if (t >= n_tasks) {
        throw InvalidInputError("characterizeCells: checkpointed task index out of range");
      }
      progress[t] = r.blob();
      have_progress[t] = 1;
    }
    VLS_LOG_INFO("characterizeCells: resuming %llu task(s) from '%s'",
                 static_cast<unsigned long long>(n_entries), request.checkpoint_path.c_str());
  }
  std::mutex ckpt_mutex;
  auto save_farm = [&] {  // callers hold ckpt_mutex
    CheckpointWriter w;
    w.blob(fingerprint);
    uint64_t count = 0;
    for (size_t t = 0; t < n_tasks; ++t) count += have_progress[t] ? 1 : 0;
    w.u64(count);
    for (size_t t = 0; t < n_tasks; ++t) {
      if (!have_progress[t]) continue;
      w.u64(t);
      w.blob(progress[t]);
    }
    writeCheckpointFile(request.checkpoint_path, kCheckpointKindCharFarm, w);
  };

  // (cell, corner) tasks are independent; the grid inside each one
  // runs lane-batched, so the farm fills both axes of the machine.
  parallelForChunked(
      n_tasks,
      [&](size_t t) {
        const ShifterKind kind = request.kinds[t / corners.size()];
        const CharCorner& corner = corners[t % corners.size()];
        CharCellControl control;
        control.job = request.job;
        control.max_retries = request.max_retries;
        std::vector<uint8_t> resume_bytes;
        if (have_progress[t]) {
          resume_bytes = progress[t];
          control.resume = &resume_bytes;
        }
        if (use_ckpt) {
          control.save = [&, t](const std::vector<uint8_t>& bytes) {
            std::lock_guard<std::mutex> lock(ckpt_mutex);
            progress[t] = bytes;
            have_progress[t] = 1;
            save_farm();
          };
        }
        tables[t] = characterizeCell(kind, corner, request.grid, request.base, control);
      },
      ParallelOptions{0, 1, request.job.get()});

  // Exit report: the farm finishes with holes instead of aborting —
  // say so loudly, once, with per-table attribution in the records.
  size_t holes = 0;
  size_t retried = 0;
  for (const CharTable& t : tables) {
    holes += t.failures.size();
    retried += t.retried_points;
  }
  if (holes > 0 || retried > 0) {
    VLS_LOG_WARN(
        "characterizeCells: completed degraded — %zu retried point(s), %zu unrecovered "
        "hole(s) across %zu task(s); holes are annotated in the .lib output",
        retried, holes, n_tasks);
  }
  return tables;
}

}  // namespace vls
