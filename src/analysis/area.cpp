#include "analysis/area.hpp"

#include <cmath>

namespace vls {

double estimateCellArea(const MosList& fets, const AreaRules& rules) {
  double active = 0.0;
  for (const Mosfet* fet : fets) {
    const MosGeometry& g = fet->geometry();
    const double dx = g.l + 2.0 * rules.diff_extension;
    const double dy = g.w + rules.width_overhead;
    active += dx * dy;
  }
  return active / rules.utilization;
}

CellBox estimateCellBox(const MosList& fets, double aspect_h_over_w, const AreaRules& rules) {
  const double area = estimateCellArea(fets, rules);
  CellBox box;
  box.width = std::sqrt(area / aspect_h_over_w);
  box.height = box.width * aspect_h_over_w;
  return box;
}

}  // namespace vls
