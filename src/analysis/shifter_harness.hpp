// Level-shifter characterization testbench, mirroring the paper's
// experimental setup: the DUT is driven through a same-sized inverter
// from the VDDI domain, loaded with a fixed 1 fF capacitor, and
// characterized for rising/falling delay, rising/falling switching
// power, and leakage with the output high and low. All DUTs here are
// inverting (the paper's comparison baseline has the same property).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cells/level_shifters.hpp"
#include "cells/related_work.hpp"
#include "cells/sstvs.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/ensemble.hpp"
#include "sim/options.hpp"
#include "sim/result.hpp"

namespace vls {

enum class ShifterKind {
  Sstvs,        ///< the paper's cell
  CombinedVs,   ///< Figure 6 baseline (inverter + Khan SS-VS + steering)
  InverterOnly, ///< bare inverter (best cell when VDDI > VDDO)
  SsvsKhan,     ///< bare Khan [6] SS-VS (valid VDDI < VDDO only)
  SsvsPuri,     ///< Puri et al. [13] diode-rail shifter (related work)
  Bootstrap,    ///< Tan & Sun [9]-style bootstrapped shifter (related work)
};

const char* shifterKindName(ShifterKind kind);

/// Whether the DUT inverts (most do; [13]'s two-stage version does not).
bool shifterKindInverting(ShifterKind kind);

struct HarnessConfig {
  ShifterKind kind = ShifterKind::Sstvs;
  double vddi = 0.8;
  double vddo = 1.2;
  double temperature_c = 27.0;
  double load_cap = 1e-15;

  /// Drive the DUT input node directly from the PWL source instead of
  /// through the restoring driver inverter. The characterization farm
  /// uses this so the input slew of a grid point is exactly the PWL
  /// edge time, not the driver's (load-dependent) output slope.
  bool direct_drive = false;

  /// Input stimulus: logic levels of the DUT input node per bit slot.
  /// Sequences start with 1 so the t=0 operating point is the unique,
  /// well-conditioned in=1 state (the SS-TVS latch is bistable at in=0
  /// before its ctrl node has ever been charged — same as real silicon
  /// at power-up, resolved by the first input pulse).
  std::vector<int> bits = {1, 0, 1, 0};
  double bit_period = 1e-9;
  double edge_time = 20e-12;
  /// Hold time for each static leakage state appended after the bits.
  double leak_settle = 2e-9;
  /// Leakage averaging window (fraction of leak_settle, taken at the end).
  double leak_window_frac = 0.25;

  SstvsSizing sstvs{};
  CombinedVsSizing combined{};
  SsvsKhanSizing ssvs{};
  InverterSizing inverter{};
  SsvsPuriSizing puri{};
  BootstrapSizing bootstrap{};

  SimOptions sim{};
  double dt_max = 50e-12;
};

struct ShifterMetrics {
  double delay_rise = 0.0;    ///< worst rising-output delay [s]
  double delay_fall = 0.0;    ///< worst falling-output delay [s]
  double power_rise = 0.0;    ///< mean VDDO power around rising-output edges [W]
  double power_fall = 0.0;    ///< mean VDDO power around falling-output edges [W]
  double leakage_high = 0.0;  ///< VDDO leakage, output high [A]
  double leakage_low = 0.0;   ///< VDDO leakage, output low [A]
  double leakage_high_vddi = 0.0;  ///< input-domain leakage share [A]
  double leakage_low_vddi = 0.0;
  bool functional = false;    ///< output reached both rails correctly
};

/// One lane's outcome of an ensemble measurement. `ok` is false when
/// the lane dropped out of the lockstep run (Newton / pivot / timestep
/// failure); such samples must be re-run through the scalar path.
/// `failure` carries the lane's drop-out attribution (stage, reason,
/// implicated node) when one was recorded.
struct EnsembleSample {
  ShifterMetrics metrics{};
  bool ok = false;
  LaneFailure failure{};
};

/// Builds the full testbench circuit for one configuration. The
/// transistor list of the DUT is exposed for Monte-Carlo perturbation;
/// call measure() after any perturbation.
class ShifterTestbench {
 public:
  explicit ShifterTestbench(HarnessConfig config);

  ShifterTestbench(const ShifterTestbench&) = delete;
  ShifterTestbench& operator=(const ShifterTestbench&) = delete;

  /// DUT transistors (driver and supplies excluded).
  const MosList& dutFets() const { return dut_fets_; }
  MosList& dutFets() { return dut_fets_; }

  /// Run the transient and extract all metrics.
  ShifterMetrics measure();

  /// Lockstep ensemble measurement: one EnsembleSimulator run covering
  /// lane_geoms.size() Monte-Carlo variants of this testbench.
  /// lane_geoms[lane][f] is the geometry of dutFets()[f] in that lane.
  /// The scalar measure() path is untouched — this never perturbs the
  /// Mosfet objects themselves.
  std::vector<EnsembleSample> measureEnsemble(
      const std::vector<std::vector<MosGeometry>>& lane_geoms);

  /// The transient of the last measure() call (waveform export).
  const TransientResult& lastRun() const;

  Circuit& circuit() { return circuit_; }
  const HarnessConfig& config() const { return config_; }

  /// Names of the DUT-internal probe nodes (for the Fig. 5 bench).
  std::vector<std::string> probeNodes() const;

  // --- characterization-farm hooks -----------------------------------
  /// The configured input stimulus rebuilt with a different edge time:
  /// same bit sequence, periods and leak phases, only the ramps change.
  /// The farm installs one of these per lane (SourceLaneState) to sweep
  /// input slew across an ensemble.
  Waveform stimulusWaveform(double edge_time) const;

  VoltageSource* vinSource() { return vin_src_; }
  VoltageSource* vddoSource() { return vddo_src_; }
  VoltageSource* vddiSource() { return vddi_src_; }
  Capacitor* loadCapacitor() { return load_cap_; }
  double tBitsEnd() const { return t_bits_end_; }
  double tStop() const { return t_stop_; }
  bool inverting() const { return inverting_; }

 private:
  void build();

  /// Shared metric extraction for the scalar and ensemble paths:
  /// delays/powers/functionality from the run's waveforms, leakage from
  /// `solve_op_at(t_probe, warm_start)` — a warm-started DC solve in
  /// the scalar path, a gather from the ensemble's batched leak solves
  /// in the lane path.
  using LeakSolver =
      std::function<std::vector<double>(double t_probe, const std::vector<double>& x0)>;
  ShifterMetrics extractMetrics(const TransientResult& run, const LeakSolver& solve_op_at) const;

  HarnessConfig config_;
  Circuit circuit_;
  MosList dut_fets_;
  VoltageSource* vddo_src_ = nullptr;
  VoltageSource* vddi_src_ = nullptr;
  VoltageSource* vin_src_ = nullptr;
  Capacitor* load_cap_ = nullptr;
  std::vector<std::string> probe_nodes_;
  bool inverting_ = true;
  std::unique_ptr<TransientResult> last_run_;
  double t_bits_end_ = 0.0;
  double t_leak_high_start_ = 0.0;
  double t_leak_low_start_ = 0.0;
  double t_stop_ = 0.0;
};

/// Characterize one configuration with its given stimulus.
ShifterMetrics measureShifter(const HarnessConfig& config);

/// The paper reports worst-case delays over input sequences (the ctrl
/// node voltage at the falling input edge depends on history). Runs a
/// canned set of adversarial sequences (long high, double high, fast
/// toggling, short runt pulse) and returns per-metric worst cases.
ShifterMetrics measureShifterWorstCase(const HarnessConfig& config);

}  // namespace vls
