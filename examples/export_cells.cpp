// Export every cell in the library as a SPICE deck — the schematics of
// the paper's Figures 1, 4 and 6 in netlist form, runnable by this
// project's netlist_runner or any external simulator that accepts the
// documented model-card subset.
//
//   $ ./export_cells [output_directory]
#include <cstdio>
#include <string>

#include "cells/level_shifters.hpp"
#include "cells/sstvs.hpp"
#include "devices/sources.hpp"
#include "io/netlist_writer.hpp"

using namespace vls;

namespace {

void exportOne(const std::string& dir, const std::string& file, const std::string& title,
               Circuit& c) {
  const std::string path = dir + "/" + file;
  writeNetlistFile(path, c, title);
  std::printf("  wrote %s (%zu devices)\n", path.c_str(), c.devices().size());
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : ".";

  std::printf("exporting cell schematics as SPICE decks to %s\n", dir.c_str());
  {
    Circuit c;
    const NodeId vi = c.node("vddi");
    const NodeId vo = c.node("vddo");
    c.add<VoltageSource>("v_vddi", vi, kGround, 0.8);
    c.add<VoltageSource>("v_vddo", vo, kGround, 1.2);
    c.add<VoltageSource>("v_in", c.node("in"), kGround, 0.8);
    buildCvs(c, "x", c.node("in"), c.node("out"), vi, vo, {});
    exportOne(dir, "cvs.sp", "conventional dual-supply level shifter (paper Figure 1)", c);
  }
  {
    Circuit c;
    const NodeId vo = c.node("vddo");
    c.add<VoltageSource>("v_vddo", vo, kGround, 1.2);
    c.add<VoltageSource>("v_in", c.node("in"), kGround, 0.8);
    buildSsvsKhan(c, "x", c.node("in"), c.node("out"), vo, {});
    exportOne(dir, "ssvs_khan.sp", "single-supply VS of Khan et al. [6] (reconstruction)", c);
  }
  {
    Circuit c;
    const NodeId vo = c.node("vddo");
    c.add<VoltageSource>("v_vddo", vo, kGround, 1.2);
    c.add<VoltageSource>("v_in", c.node("in"), kGround, 0.8);
    buildSstvs(c, "x", c.node("in"), c.node("out"), vo, {});
    exportOne(dir, "sstvs.sp", "single-supply TRUE voltage level shifter (paper Figure 4)", c);
  }
  {
    Circuit c;
    const NodeId vo = c.node("vddo");
    c.add<VoltageSource>("v_vddo", vo, kGround, 1.2);
    c.add<VoltageSource>("v_in", c.node("in"), kGround, 0.8);
    c.add<VoltageSource>("v_sel", c.node("sel"), kGround, 1.2);
    c.add<VoltageSource>("v_selb", c.node("selb"), kGround, 0.0);
    buildCombinedVs(c, "x", c.node("in"), c.node("out"), c.node("sel"), c.node("selb"), vo, {});
    exportOne(dir, "combined_vs.sp", "combined VS: inverter + SS-VS of [6] (paper Figure 6)", c);
  }
  return 0;
}
