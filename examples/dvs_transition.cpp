// Dynamic voltage scaling scenario (the paper's core motivation): a
// block's supply ramps from 1.3 V down to 0.85 V and back WHILE it is
// exchanging data with a fixed 1.0 V domain through one SS-TVS. The
// relationship VDDI <> VDDO inverts mid-flight; a conventional solution
// would need its control signal re-evaluated, the SS-TVS just keeps
// working.
#include <cstdio>

#include "analysis/measure.hpp"
#include "cells/sstvs.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

using namespace vls;

int main() {
  Circuit ckt;
  const NodeId vddi = ckt.node("vddi");  // DVS domain (transmitter)
  const NodeId vddo = ckt.node("vddo");  // fixed 1.0 V domain (receiver)
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");

  // DVS ramp: hold 1.3 V, ramp to 0.85 V, hold, ramp back.
  ckt.add<VoltageSource>(
      "v_vddi", vddi, kGround,
      Waveform::pwl({0.0, 6e-9, 10e-9, 16e-9, 20e-9, 30e-9}, {1.3, 1.3, 0.85, 0.85, 1.3, 1.3}));
  ckt.add<VoltageSource>("v_vddo", vddo, kGround, 1.0);

  // The transmitter keeps toggling throughout the ramp: a pulse train
  // whose HIGH level follows the DVS rail (driver inverter in the DVS
  // domain takes care of that automatically).
  PulseSpec p;
  p.v1 = 0.0;  // driver input low -> `in` starts high (conditioned state)
  p.v2 = 1.3;
  p.delay = 1e-9;
  p.rise = p.fall = 30e-12;
  p.width = 1.4e-9;
  p.period = 3e-9;
  const NodeId drv = ckt.node("drv");
  // Clamp the pulse source to the DVS rail through the driver inverter:
  // the inverter output can never exceed vddi.
  ckt.add<VoltageSource>("v_drv", drv, kGround, Waveform::pulse(p));
  buildInverter(ckt, "xdrv", drv, in, vddi);

  buildSstvs(ckt, "xshift", in, out, vddo);
  ckt.add<Capacitor>("c_load", out, kGround, 1e-15);

  Simulator sim(ckt);
  const TransientResult tran = sim.transient(30e-9, 100e-12);

  // The driver output `in` toggles every 1.5 ns; the (inverting)
  // shifter output must produce a matching full-swing edge for every
  // input edge, at every instantaneous VDDI between 0.85 and 1.3 V.
  const Signal s_in = tran.node("in");
  const Signal s_out = tran.node("out");
  const Signal s_rail = tran.node("vddi");
  size_t edges = 0;
  size_t good = 0;
  for (double t_edge : crossTimes(s_in, 0.42, CrossDir::Falling, 0.5e-9)) {
    if (t_edge > 28e-9) break;
    ++edges;
    const auto t_out = crossTime(s_out, 0.5, CrossDir::Rising, t_edge);
    const double rail = interpLinear(s_rail.time, s_rail.value, t_edge);
    if (t_out && *t_out - t_edge < 1.0e-9) {
      ++good;
      std::printf("  in fell at %5.2f ns (VDDI=%.3f V): out rose after %6.1f ps\n",
                  t_edge * 1e9, rail, (*t_out - t_edge) * 1e12);
    } else {
      std::printf("  in fell at %5.2f ns (VDDI=%.3f V): OUTPUT EDGE MISSING\n", t_edge * 1e9,
                  rail);
    }
  }
  std::printf("%zu / %zu rising conversions correct across the DVS ramp\n", good, edges);
  std::printf("(VDDI crossed VDDO=1.0 V twice during the run: the same SS-TVS handled\n"
              " up-shift and down-shift phases without any control signal)\n");
  return good == edges && edges >= 5 ? 0 : 1;
}
