// Level-converting flip-flop pipeline: a two-stage register chain where
// the data crosses from a 0.8 V producer domain into a 1.2 V consumer
// domain THROUGH the flop itself (the paper's future-work direction —
// fold the level shifter into the sequential element). Only the
// destination supply is routed to the boundary flop.
#include <cstdio>

#include "cells/lcff.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "numeric/interpolation.hpp"
#include "sim/simulator.hpp"

using namespace vls;

int main() {
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const NodeId d = c.node("d");
  const NodeId clk = c.node("clk");
  const NodeId q1 = c.node("q1");
  const NodeId q2 = c.node("q2");

  c.add<VoltageSource>("v_vddo", vddo, kGround, 1.2);
  // 500 MHz clock in the consumer domain.
  PulseSpec ck;
  ck.v1 = 0.0;
  ck.v2 = 1.2;
  ck.delay = 1e-9;
  ck.rise = ck.fall = 20e-12;
  ck.width = 1e-9 - 20e-12;
  ck.period = 2e-9;
  c.add<VoltageSource>("v_clk", clk, kGround, Waveform::pulse(ck));

  // Producer data (0.8 V swing): pattern 1,0,1,1 on a 2 ns beat, edges
  // placed mid-cycle so setup is comfortable.
  c.add<VoltageSource>(
      "v_d", d, kGround,
      Waveform::pwl({0.0, 2.4e-9, 2.42e-9, 4.4e-9, 4.42e-9}, {0.8, 0.8, 0.0, 0.0, 0.8}));

  // Boundary flop converts 0.8 V data into the 1.2 V domain; the second
  // flop is an ordinary (same-domain) register built from the same cell.
  buildLcff(c, "xff1", d, clk, q1, vddo, {});
  LcffSizing plain;  // second stage sees full-swing data; same cell works
  buildLcff(c, "xff2", q1, clk, q2, vddo, plain);
  c.add<Capacitor>("cl1", q1, kGround, 1e-15);
  c.add<Capacitor>("cl2", q2, kGround, 1e-15);

  Simulator sim(c);
  const TransientResult tr = sim.transient(10e-9, 50e-12);

  const Signal s1 = tr.node("q1");
  const Signal s2 = tr.node("q2");
  std::printf("domain-crossing register pipeline (0.8 V data -> 1.2 V flops, 500 MHz):\n");
  std::printf("  %-8s %-6s %-6s %-6s\n", "t (ns)", "d", "q1", "q2");
  const Signal sd = tr.node("d");
  bool ok = true;
  // Sample just before each rising edge (data stable) and verify the
  // one- and two-cycle delayed pipeline contents.
  // d just before the 1/3/5/7 ns edges: 1, 0, 1, 1; q2 lags q1 by one.
  int expected_q1[] = {-1, 1, 0, 1, 1};
  int expected_q2[] = {-1, -1, 1, 0, 1};
  for (int edge = 1; edge <= 4; ++edge) {
    const double t_probe = 2.0e-9 * edge + 0.9e-9;  // just before next edge
    const double vq1 = interpLinear(s1.time, s1.value, t_probe);
    const double vq2 = interpLinear(s2.time, s2.value, t_probe);
    std::printf("  %-8.2f %-6.2f %-6.2f %-6.2f\n", t_probe * 1e9,
                interpLinear(sd.time, sd.value, t_probe), vq1, vq2);
    if (expected_q1[edge] >= 0 && std::fabs(vq1 - 1.2 * expected_q1[edge]) > 0.1) ok = false;
    if (expected_q2[edge] >= 0 && std::fabs(vq2 - 1.2 * expected_q2[edge]) > 0.1) ok = false;
  }
  std::printf(ok ? "PASS: the 0.8 V pattern marched through the 1.2 V pipeline intact\n"
                 : "FAIL: pipeline corrupted the pattern\n");
  return ok ? 0 : 1;
}
