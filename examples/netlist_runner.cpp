// A miniature SPICE: parse a netlist file (or a built-in demo deck),
// run the analyses it requests, and print/save results.
//
//   $ ./netlist_runner mydeck.sp [--csv out.csv]
//   $ ./netlist_runner            # runs the built-in demo deck
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "devices/sources.hpp"
#include "io/csv.hpp"
#include "io/netlist_parser.hpp"
#include "io/netlist_writer.hpp"
#include "sim/simulator.hpp"

using namespace vls;

namespace {

const char* kDemoDeck = R"(demo: SS-TVS written as a plain netlist (reconstructed Figure 4)
* supplies and stimulus
vvddo vddo 0 1.2
vin in 0 PULSE(0.8 0 1n 20p 20p 1n 2n)

* output NOR (node2-driven PMOS next to the rail)
mpb pmid node2 vddo vddo pmos     w=1.1u  l=0.1u
mpa out  in    pmid vddo pmos     w=1.1u  l=0.1u
mna out  in    0    0    nmos     w=0.26u l=0.1u
mnb out  node2 0    0    nmos     w=0.26u l=0.1u

* node1 pull-down / restore, node2 pull-up / conditional discharge
m6 node1 in    0     0    nmos_hvt w=0.3u  l=0.1u
m4 mid45 in    vddo  vddo pmos_hvt w=0.3u  l=0.1u
m5 node1 node2 mid45 vddo pmos     w=0.2u  l=0.1u
m3 node2 node1 vddo  vddo pmos     w=0.14u l=0.24u
m1 node2 ctrl  in    0    nmos     w=0.9u  l=0.1u

* ctrl charging network and storage cap
m7 vddo in   nodea 0    nmos     w=0.3u  l=0.1u
m8 in   vddo nodea 0    nmos_lvt w=0.16u l=0.1u
m2 nodea out ctrl  vddo pmos     w=0.24u l=0.1u
mc 0 ctrl 0 0 nmos w=0.7u l=0.25u

cload out 0 1f
.tran 10p 4n
.save in out node1 node2 ctrl
.end
)";

}  // namespace

int main(int argc, char** argv) {
  std::string csv_path;
  std::string deck_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--csv=", 6) == 0) {
      csv_path = argv[i] + 6;
    } else {
      deck_path = argv[i];
    }
  }

  try {
    ParsedNetlist nl =
        deck_path.empty() ? parseNetlist(kDemoDeck) : parseNetlistFile(deck_path);
    std::printf("deck: %s\n", nl.title.c_str());
    std::printf("devices: %zu, nodes: %zu, analyses: %zu, T=%.1f C\n",
                nl.circuit.devices().size(), nl.circuit.nodeCount(), nl.analyses.size(),
                nl.temperature_c);

    SimOptions opts;
    opts.temperature_c = nl.temperature_c;
    Simulator sim(nl.circuit, opts);

    if (nl.analyses.empty()) {
      nl.analyses.push_back({AnalysisCommand::Kind::Op, 0, 0, "", 0, 0, 0});
    }
    for (const AnalysisCommand& a : nl.analyses) {
      switch (a.kind) {
        case AnalysisCommand::Kind::Op: {
          const auto x = sim.solveOp();
          std::printf("\n.op results:\n");
          for (size_t n = 0; n < nl.circuit.nodeCount(); ++n) {
            std::printf("  v(%s) = %.6f V\n", nl.circuit.nodeNames()[n].c_str(), x[n]);
          }
          break;
        }
        case AnalysisCommand::Kind::Tran: {
          const auto tr = sim.transient(a.tran_stop, std::max(a.tran_step * 10.0, a.tran_step));
          std::printf("\n.tran %g s: %zu points\n", a.tran_stop, tr.steps());
          const auto& probes =
              nl.save_nodes.empty() ? nl.circuit.nodeNames() : nl.save_nodes;
          // Print initial/final values per probe.
          for (const auto& node : probes) {
            const Signal s = tr.node(node);
            std::printf("  %-10s start %.4f V  end %.4f V  min %.4f  max %.4f\n", node.c_str(),
                        s.value.front(), s.value.back(),
                        *std::min_element(s.value.begin(), s.value.end()),
                        *std::max_element(s.value.begin(), s.value.end()));
          }
          if (!csv_path.empty()) {
            writeWaveformsCsv(csv_path, tr, probes);
            std::printf("waveforms written to %s\n", csv_path.c_str());
          }
          break;
        }
        case AnalysisCommand::Kind::Ac: {
          const auto res = sim.ac(a.ac_fstart, a.ac_fstop, a.ac_points_per_decade);
          std::printf("\n.ac dec %d %g %g: %zu points\n", a.ac_points_per_decade, a.ac_fstart,
                      a.ac_fstop, res.size());
          const auto& probes = nl.save_nodes.empty() ? nl.circuit.nodeNames() : nl.save_nodes;
          for (const auto& node : probes) {
            const auto mag = res.magnitudeDb(node);
            const auto corner = res.cornerFrequency(node);
            std::printf("  %-10s %.2f dB at %g Hz .. %.2f dB at %g Hz%s\n", node.c_str(),
                        mag.front(), a.ac_fstart, mag.back(), a.ac_fstop,
                        corner ? (" (corner " + std::to_string(*corner) + " Hz)").c_str() : "");
          }
          break;
        }
        case AnalysisCommand::Kind::DcSweep: {
          auto* src = dynamic_cast<VoltageSource*>(nl.circuit.findDevice(a.dc_source));
          if (!src) {
            std::fprintf(stderr, "unknown sweep source %s\n", a.dc_source.c_str());
            return 1;
          }
          const auto res = sim.dcSweep(*src, a.dc_from, a.dc_to, a.dc_step);
          std::printf("\n.dc %s: %zu points\n", a.dc_source.c_str(), res.sweep.size());
          break;
        }
      }
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
