// Cell characterization: sweep a level shifter over supply pairs and
// emit a liberty-style summary table plus a CSV — the flow a standard-
// cell library team would run on the SS-TVS.
//
//   $ ./characterize_cell [--kind=sstvs|combined|inverter|khan] [--step=0.2]
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>

#include "analysis/area.hpp"
#include "analysis/sweep.hpp"
#include "cells/sstvs.hpp"
#include "io/csv.hpp"
#include "io/liberty_writer.hpp"
#include "io/table.hpp"

using namespace vls;

int main(int argc, char** argv) {
  ShifterKind kind = ShifterKind::Sstvs;
  double step = 0.2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--kind=", 0) == 0) {
      const std::string k = arg.substr(7);
      if (k == "sstvs") kind = ShifterKind::Sstvs;
      else if (k == "combined") kind = ShifterKind::CombinedVs;
      else if (k == "inverter") kind = ShifterKind::InverterOnly;
      else if (k == "khan") kind = ShifterKind::SsvsKhan;
    } else if (arg.rfind("--step=", 0) == 0) {
      step = std::atof(arg.c_str() + 7);
    }
  }

  HarnessConfig base;
  base.kind = kind;
  std::printf("characterizing %s over VDDI x VDDO in [0.8, 1.4] V, step %.3f V\n",
              shifterKindName(kind), step);

  Sweep2dConfig cfg;
  cfg.v_min = 0.8;
  cfg.v_max = 1.4;
  cfg.step = step;
  cfg.on_point = [](const SweepPoint& p, size_t done, size_t total) {
    if (done % 10 == 0 || done == total) {
      std::fprintf(stderr, "  %zu/%zu (vddi=%.2f vddo=%.2f)\n", done, total, p.vddi, p.vddo);
    }
  };
  const Sweep2dResult r = sweepSupplies(base, cfg);

  Table t({"VDDI (V)", "VDDO (V)", "rise (ps)", "fall (ps)", "leak hi (nA)", "leak lo (nA)",
           "ok"});
  std::vector<CsvColumn> cols = {{"vddi", {}}, {"vddo", {}},      {"delay_rise", {}},
                                 {"delay_fall", {}}, {"leak_high", {}}, {"leak_low", {}}};
  for (const auto& p : r.points) {
    const auto& m = p.metrics;
    t.addRow({Table::fmt(p.vddi, 3), Table::fmt(p.vddo, 3),
              Table::fmtScaled(m.delay_rise, 1e-12, 1), Table::fmtScaled(m.delay_fall, 1e-12, 1),
              Table::fmtScaled(m.leakage_high, 1e-9, 3), Table::fmtScaled(m.leakage_low, 1e-9, 3),
              m.functional ? "y" : "N"});
    cols[0].values.push_back(p.vddi);
    cols[1].values.push_back(p.vddo);
    cols[2].values.push_back(m.delay_rise);
    cols[3].values.push_back(m.delay_fall);
    cols[4].values.push_back(m.leakage_high);
    cols[5].values.push_back(m.leakage_low);
  }
  t.print(std::cout);
  const std::string csv = "characterization.csv";
  writeCsv(csv, cols);
  std::printf("table written to %s; functional %zu/%zu\n", csv.c_str(), r.functionalCount(),
              r.points.size());

  // Liberty export: one .lib cell per functional corner.
  double area_um2 = 0.0;
  {
    Circuit tmp;
    const SstvsHandles h = buildSstvs(tmp, "x", tmp.node("i"), tmp.node("o"), tmp.node("v"), {});
    area_um2 = estimateCellArea(h.fets) * 1e12;
  }
  std::vector<LibertyCellData> lib_cells;
  for (const auto& p : r.points) {
    if (!p.metrics.functional) continue;
    LibertyCellData cell;
    char name[64];
    std::snprintf(name, sizeof name, "LS_%s_%03d_%03d", shifterKindName(kind),
                  static_cast<int>(p.vddi * 100), static_cast<int>(p.vddo * 100));
    for (char* ch = name; *ch; ++ch) {
      if (*ch == ' ' || *ch == '-' || *ch == '[' || *ch == ']') *ch = '_';
    }
    cell.cell_name = name;
    cell.vddi = p.vddi;
    cell.vddo = p.vddo;
    cell.area_um2 = area_um2;
    cell.inverting = shifterKindInverting(kind);
    cell.metrics = p.metrics;
    lib_cells.push_back(std::move(cell));
  }
  writeLibertyFile("characterization.lib", {}, lib_cells);
  std::printf("liberty library written to characterization.lib (%zu cells)\n",
              lib_cells.size());
  return 0;
}
