// The paper's Figure 3 scenario: a multi-voltage SoC where four modules
// (0.8 / 1.0 / 1.2 / 1.4 V domains) exchange signals through SS-TVS
// cells using only each *destination* domain's supply — no cross-domain
// supply routing, no control signals.
//
// A token bit hops around the ring 0.8 -> 1.0 -> 1.2 -> 1.4 -> 0.8,
// crossing four shifters (two up-shifts, one up, one big down-shift).
// The example verifies the bit arrives intact at every hop and prints
// per-hop latency.
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/measure.hpp"
#include "cells/sstvs.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

using namespace vls;

int main() {
  const std::vector<double> rails = {0.8, 1.0, 1.2, 1.4};
  Circuit ckt;

  // Domain supplies.
  std::vector<NodeId> vdd(rails.size());
  for (size_t k = 0; k < rails.size(); ++k) {
    vdd[k] = ckt.node("vdd" + std::to_string(k));
    ckt.add<VoltageSource>("v_vdd" + std::to_string(k), vdd[k], kGround, rails[k]);
  }

  // Stimulus in domain 0: a 1 -> 0 -> 1 pattern (the shifters invert,
  // so each hop flips polarity; we track the expected parity).
  PulseSpec p;
  p.v1 = rails[0];
  p.v2 = 0.0;
  p.delay = 1.0e-9;
  p.rise = p.fall = 20e-12;
  p.width = 2.0e-9;
  const NodeId src = ckt.node("src");
  ckt.add<VoltageSource>("v_src", src, kGround, Waveform::pulse(p));

  // Ring of shifters: each stage re-buffers in its own domain, then
  // level-shifts into the next domain using ONLY that domain's rail.
  NodeId stage_in = src;
  std::vector<NodeId> hop_out;
  for (size_t k = 0; k < rails.size(); ++k) {
    const size_t next = (k + 1) % rails.size();
    const std::string tag = std::to_string(k) + std::to_string(next);
    // In-domain buffer (restores edges inside domain k).
    const NodeId buffered = ckt.node("buf" + tag);
    buildInverter(ckt, "xbuf" + tag, stage_in, buffered, vdd[k]);
    // Cross-domain SS-TVS powered by the DESTINATION rail only.
    const NodeId shifted = ckt.node("hop" + tag);
    buildSstvs(ckt, "xshift" + tag, buffered, shifted, vdd[next]);
    ckt.add<Capacitor>("cl" + tag, shifted, kGround, 1e-15);
    hop_out.push_back(shifted);
    stage_in = shifted;
  }

  Simulator sim(ckt);
  const TransientResult tran = sim.transient(8e-9, 50e-12);

  std::printf("SoC ring: src pulse in the %.1f V domain hops through %zu SS-TVS stages\n",
              rails[0], rails.size());
  const Signal s_src = tran.node("src");
  double t_prev = *crossTime(s_src, rails[0] / 2, CrossDir::Falling, 0.5e-9);
  bool ok = true;
  // src falls; buffer inverts; shifter inverts again => each hop output
  // FALLS on the first event.
  for (size_t k = 0; k < hop_out.size(); ++k) {
    const size_t next = (k + 1) % rails.size();
    const Signal s = tran.node(ckt.nodeName(hop_out[k]));
    const auto t_edge = crossTime(s, rails[next] / 2, CrossDir::Falling, t_prev);
    if (!t_edge) {
      std::printf("  hop %zu (%.1f -> %.1f V): EDGE LOST\n", k, rails[k], rails[next]);
      ok = false;
      break;
    }
    const double swing_hi = maxValue(s, 0.0, 0.9e-9);
    std::printf("  hop %zu (%.1f -> %.1f V): latency %6.1f ps, settled high %.3f V\n", k,
                rails[k], rails[next], (*t_edge - t_prev) * 1e12, swing_hi);
    if (std::fabs(swing_hi - rails[next]) > 0.1 * rails[next]) ok = false;
    t_prev = *t_edge;
  }
  std::printf(ok ? "PASS: token crossed every domain with full-swing restoration\n"
                 : "FAIL\n");
  return ok ? 0 : 1;
}
