// Quickstart: build a circuit programmatically, run DC and transient
// analyses, and take measurements — the 60-second tour of the library.
//
//   $ ./quickstart
//
// Builds an inverter driving the paper's SS-TVS level shifter from a
// 0.8 V domain into a 1.2 V domain, measures its propagation delays and
// leakage, and prints the waveforms' key points.
#include <cstdio>

#include "analysis/measure.hpp"
#include "cells/sstvs.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

using namespace vls;

int main() {
  // 1. Describe the circuit. Nodes are created by name on first use.
  Circuit ckt;
  const NodeId vddi = ckt.node("vddi");  // 0.8 V input domain
  const NodeId vddo = ckt.node("vddo");  // 1.2 V output domain
  const NodeId in = ckt.node("in");
  const NodeId out = ckt.node("out");

  ckt.add<VoltageSource>("v_vddi", vddi, kGround, 0.8);
  ckt.add<VoltageSource>("v_vddo", vddo, kGround, 1.2);

  // A pulse source behind a driver inverter gives `in` a realistic edge.
  PulseSpec pulse;
  pulse.v1 = 0.0;  // driver input low -> `in` starts HIGH (well-defined state)
  pulse.v2 = 0.8;
  pulse.delay = 1e-9;
  pulse.rise = pulse.fall = 20e-12;
  pulse.width = 1e-9;
  pulse.period = 0.0;
  const NodeId drv = ckt.node("drv");
  ckt.add<VoltageSource>("v_pulse", drv, kGround, Waveform::pulse(pulse));
  buildInverter(ckt, "xdrv", drv, in, vddi);

  // The paper's single-supply true voltage level shifter, powered only
  // by the destination rail, plus the paper's 1 fF load.
  const SstvsHandles dut = buildSstvs(ckt, "xshift", in, out, vddo);
  ckt.add<Capacitor>("c_load", out, kGround, 1.0e-15);

  // 2. DC operating point.
  Simulator sim(ckt);
  const std::vector<double> op = sim.solveOp();
  std::printf("DC operating point: in=%.3f V out=%.3f V node2=%.3f V ctrl=%.3f V\n",
              op[in], op[out], op[dut.node2], op[dut.ctrl]);

  // 3. Transient: 4 ns, 50 ps max step (the engine refines at edges).
  const TransientResult tran = sim.transient(4e-9, 50e-12);
  std::printf("transient: %zu accepted steps, %zu Newton iterations\n", tran.steps(),
              tran.total_newton_iterations);

  // 4. Measurements.
  const Signal s_in = tran.node("in");
  const Signal s_out = tran.node("out");
  // The pulse drives the driver inverter, so `in` FALLS at ~1 ns and
  // the (inverting) shifter output RISES.
  const auto d_rise =
      propagationDelay(s_in, s_out, 0.4, CrossDir::Falling, 0.6, CrossDir::Rising, 0.5e-9);
  const auto d_fall =
      propagationDelay(s_in, s_out, 0.4, CrossDir::Rising, 0.6, CrossDir::Falling, 1.5e-9);
  if (d_rise) std::printf("rising-output delay:  %.1f ps\n", *d_rise * 1e12);
  if (d_fall) std::printf("falling-output delay: %.1f ps\n", *d_fall * 1e12);

  auto* v_vddo = dynamic_cast<VoltageSource*>(ckt.findDevice("v_vddo"));
  std::printf("VDDO energy over the window: %.2f fJ\n",
              averageSupplyPower(tran, *v_vddo, 0.0, 4e-9) * 4e-9 * 1e15);
  return (d_rise && d_fall) ? 0 : 1;
}
