// Analog analyses tour: AC transfer function and output noise of (a) a
// biased CMOS amplifier stage and (b) the SS-TVS output in its static
// states — the small-signal side of the library that complements the
// paper's large-signal characterization.
#include <cstdio>

#include "cells/sstvs.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "io/ascii_plot.hpp"
#include "sim/simulator.hpp"

using namespace vls;

int main() {
  // --- (a) inverter used as an analog amplifier ------------------------
  {
    Circuit c;
    const NodeId vdd = c.node("vdd");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
    auto& vin = c.add<VoltageSource>("vin", in, kGround, 0.58);  // near VM
    vin.setAcMagnitude(1.0);
    buildInverter(c, "x", in, out, vdd);
    c.add<Capacitor>("cl", out, kGround, 10e-15);
    Simulator sim(c);

    const AcResult ac = sim.ac(1e6, 1e12, 6);
    const auto mags = ac.magnitudeDb("out");
    std::printf("inverter-as-amplifier (biased at VM):\n");
    std::printf("  low-frequency gain: %.1f dB\n", mags.front());
    if (const auto corner = ac.cornerFrequency("out")) {
      std::printf("  -3 dB bandwidth:    %.2f GHz\n", *corner * 1e-9);
    }

    const NoiseResult nz = sim.noise("out", 1e3, 1e10, 5);
    std::printf("  output noise (1 kHz - 10 GHz): %.2f uV rms; top contributors:\n",
                nz.rms() * 1e6);
    for (size_t i = 0; i < std::min<size_t>(3, nz.contributions.size()); ++i) {
      std::printf("    %-16s %.3g V^2\n", nz.contributions[i].label.c_str(),
                  nz.contributions[i].v2);
    }
  }

  // --- (b) SS-TVS output node, static low-to-high configuration --------
  {
    Circuit c;
    const NodeId vddo = c.node("vddo");
    const NodeId in = c.node("in");
    const NodeId out = c.node("out");
    c.add<VoltageSource>("vo", vddo, kGround, 1.2);
    c.add<VoltageSource>("vin", in, kGround, 0.8);  // output low state
    buildSstvs(c, "xdut", in, out, vddo, {});
    c.add<Capacitor>("cl", out, kGround, 1e-15);
    Simulator sim(c);
    const NoiseResult nz = sim.noise("out", 1e3, 1e10, 5);
    std::printf("\nSS-TVS output noise, static in=0.8V @ VDDO=1.2V: %.2f uV rms\n",
                nz.rms() * 1e6);
    std::printf("  dominant generator: %s\n",
                nz.contributions.empty() ? "-" : nz.contributions.front().label.c_str());
  }
  return 0;
}
