// Property sweeps of the MOSFET model across every library card and a
// dense bias grid: physical sanity (passivity, monotonicity, continuity
// of value and derivative) that must hold for ANY parameterization, not
// just the calibrated points the unit tests pin down.
#include <gtest/gtest.h>

#include <cmath>

#include "devices/model_library.hpp"
#include "devices/mosfet.hpp"

namespace vls {
namespace {

struct CardCase {
  const char* name;
};

class MosCardProperty : public ::testing::TestWithParam<CardCase> {
 protected:
  MosModelRef card() const { return modelByName(GetParam().name); }
  MosOperating op(double temp = 300.15) const {
    MosGeometry g;
    g.w = 300e-9;
    g.l = 100e-9;
    return resolveOperating(*card(), g, temp);
  }
};

TEST_P(MosCardProperty, PassiveAtZeroVds) {
  const auto c = card();
  const auto o = op();
  for (double vg = -0.2; vg <= 1.5; vg += 0.1) {
    for (double v = 0.0; v <= 1.4; v += 0.2) {
      EXPECT_NEAR(mosCoreCurrent(*c, o, vg, v, v), 0.0, 1e-15);
    }
  }
}

TEST_P(MosCardProperty, CurrentSignFollowsVds) {
  const auto c = card();
  const auto o = op();
  for (double vg = 0.0; vg <= 1.4; vg += 0.2) {
    for (double vds = 0.05; vds <= 1.4; vds += 0.15) {
      EXPECT_GT(mosCoreCurrent(*c, o, vg, vds, 0.0), 0.0) << vg << " " << vds;
      EXPECT_LT(mosCoreCurrent(*c, o, vg, 0.0, vds), 0.0) << vg << " " << vds;
    }
  }
}

TEST_P(MosCardProperty, TransconductanceSignsFollowOperatingMode) {
  // gm carries the sign of vds (reverse-mode current grows more
  // negative with vg); gds = dI/dvd is non-negative everywhere.
  const auto c = card();
  const auto o = op();
  for (double vg = -0.2; vg <= 1.5; vg += 0.085) {
    for (double vd = 0.0; vd <= 1.4; vd += 0.17) {
      for (double vs = 0.0; vs <= 0.6; vs += 0.3) {
        using D3 = Dual<3>;
        const D3 i =
            mosCoreCurrent(*c, o, D3::seed(vg, 0), D3::seed(vd, 1), D3::seed(vs, 2));
        const double dir = vd > vs ? 1.0 : (vd < vs ? -1.0 : 0.0);
        if (dir != 0.0) {
          EXPECT_GE(dir * i.d[0], -1e-15) << vg << " " << vd << " " << vs;  // sign(gm)=sign(vds)
        }
        EXPECT_GE(i.d[1], -1e-15) << vg << " " << vd << " " << vs;  // gds >= 0
      }
    }
  }
}

TEST_P(MosCardProperty, ValueAndDerivativeContinuity) {
  // Scan a fine vgs line and bound the second difference: no kinks.
  const auto c = card();
  const auto o = op();
  const double h = 1e-3;
  double prev_i = mosCoreCurrent(*c, o, -0.1 - h, 1.0, 0.0);
  double prev_di = 0.0;
  bool first = true;
  for (double vg = -0.1; vg <= 1.4; vg += h) {
    const double i = mosCoreCurrent(*c, o, vg, 1.0, 0.0);
    const double di = (i - prev_i) / h;
    if (!first) {
      // Derivative change per step bounded by a smooth-model constant
      // relative to the local derivative scale.
      const double scale = std::max({std::fabs(di), std::fabs(prev_di), 1e-9});
      EXPECT_LT(std::fabs(di - prev_di) / scale, 0.2) << "kink near vg=" << vg;
    }
    prev_i = i;
    prev_di = di;
    first = false;
  }
}

TEST_P(MosCardProperty, LeakageMonotoneInTemperature) {
  const auto c = card();
  double prev = 0.0;
  for (double t_c : {0.0, 27.0, 60.0, 90.0, 125.0}) {
    const double i = mosCoreCurrent(*c, op(celsiusToKelvin(t_c)), 0.0, 1.2, 0.0);
    EXPECT_GT(i, prev) << t_c;
    prev = i;
  }
}

TEST_P(MosCardProperty, WidthScalesCurrentLinearly) {
  const auto c = card();
  MosGeometry g;
  g.l = 100e-9;
  g.w = 200e-9;
  const double i1 = mosCoreCurrent(*c, resolveOperating(*c, g, 300.15), 1.2, 1.2, 0.0);
  g.w = 600e-9;
  const double i3 = mosCoreCurrent(*c, resolveOperating(*c, g, 300.15), 1.2, 1.2, 0.0);
  EXPECT_NEAR(i3 / i1, 3.0, 1e-9);
}

TEST_P(MosCardProperty, BulkPartialClosesKcl) {
  // gm + gds + gms + gmb = 0 by translation invariance. Verified via
  // the device-level stamp identity on the core partials.
  const auto c = card();
  const auto o = op();
  using D3 = Dual<3>;
  const D3 i = mosCoreCurrent(*c, o, D3::seed(0.9, 0), D3::seed(0.7, 1), D3::seed(0.1, 2));
  const double g_b = -(i.d[0] + i.d[1] + i.d[2]);
  EXPECT_TRUE(std::isfinite(g_b));
}

INSTANTIATE_TEST_SUITE_P(AllCards, MosCardProperty,
                         ::testing::Values(CardCase{"nmos"}, CardCase{"nmos_hvt"},
                                           CardCase{"nmos_lvt"}, CardCase{"pmos"},
                                           CardCase{"pmos_hvt"}),
                         [](const ::testing::TestParamInfo<CardCase>& param_info) {
                           return std::string(param_info.param.name);
                         });

}  // namespace
}  // namespace vls
