// Properties of the EKV MOSFET core: region behaviour, continuity,
// derivative consistency (AD vs finite differences), polarity symmetry,
// temperature response. These are the invariants the paper's leakage
// and delay results rest on.
#include "devices/mosfet.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "devices/model_library.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

MosOperating opFor(const MosModelCard& card, double w = 260e-9, double l = 100e-9,
                   double temp = 300.15) {
  MosGeometry g;
  g.w = w;
  g.l = l;
  return resolveOperating(card, g, temp);
}

TEST(MosCore, ZeroVdsZeroCurrent) {
  const MosModelCard& m = *nmos90();
  const MosOperating op = opFor(m);
  for (double vg : {0.0, 0.3, 0.6, 1.2}) {
    for (double v : {0.0, 0.4, 1.0}) {
      EXPECT_NEAR(mosCoreCurrent(m, op, vg, v, v), 0.0, 1e-18) << vg << " " << v;
    }
  }
}

TEST(MosCore, SignFlipsWithTerminalSwap) {
  // Without DIBL the core is source/drain symmetric: I(d,s) = -I(s,d).
  MosModelCard m = *nmos90();
  m.sigma_dibl = 0.0;
  const MosOperating op = opFor(m);
  const double i_fwd = mosCoreCurrent(m, op, 1.0, 0.8, 0.2);
  const double i_rev = mosCoreCurrent(m, op, 1.0, 0.2, 0.8);
  EXPECT_NEAR(i_fwd, -i_rev, std::fabs(i_fwd) * 1e-9);
}

TEST(MosCore, MonotonicInVgs) {
  const MosModelCard& m = *nmos90();
  const MosOperating op = opFor(m);
  double prev = -1.0;
  for (double vg = 0.0; vg <= 1.4; vg += 0.01) {
    const double i = mosCoreCurrent(m, op, vg, 1.2, 0.0);
    EXPECT_GT(i, prev) << "vg=" << vg;
    prev = i;
  }
}

TEST(MosCore, MonotonicInVds) {
  const MosModelCard& m = *nmos90();
  const MosOperating op = opFor(m);
  double prev = -1.0;
  for (double vd = 0.0; vd <= 1.4; vd += 0.01) {
    const double i = mosCoreCurrent(m, op, 0.9, vd, 0.0);
    EXPECT_GE(i, prev) << "vd=" << vd;
    prev = i;
  }
}

TEST(MosCore, SubthresholdSlopeMatchesSlopeFactor) {
  const MosModelCard& m = *nmos90();
  const MosOperating op = opFor(m);
  // Deep subthreshold: I ~ exp(vg / (n ut)).
  const double i1 = mosCoreCurrent(m, op, 0.10, 1.2, 0.0);
  const double i2 = mosCoreCurrent(m, op, 0.15, 1.2, 0.0);
  const double n_measured = 0.05 / (op.ut * std::log(i2 / i1));
  EXPECT_NEAR(n_measured, m.n_slope, 0.05);
}

TEST(MosCore, DiblRaisesLeakage) {
  const MosModelCard& m = *nmos90();
  const MosOperating op = opFor(m);
  const double i_lo = mosCoreCurrent(m, op, 0.0, 0.1, 0.0);
  const double i_hi = mosCoreCurrent(m, op, 0.0, 1.2, 0.0);
  // Expected boost ~ exp(sigma * dV / (n ut)) plus the drain-side term.
  EXPECT_GT(i_hi / i_lo, std::exp(m.sigma_dibl * 1.0 / (m.n_slope * op.ut)));
}

TEST(MosCore, BodyEffectThroughSourceVoltage) {
  // Raising the source (and gate with it) reduces current because the
  // bulk-referenced formulation embeds the (n-1)*vsb threshold shift.
  const MosModelCard& m = *nmos90();
  const MosOperating op = opFor(m);
  const double i0 = mosCoreCurrent(m, op, 0.8, 1.2, 0.0);
  const double i1 = mosCoreCurrent(m, op, 0.8 + 0.4, 1.2 + 0.4, 0.4);
  EXPECT_LT(i1, i0);
  // Effective VT shift ~ (n-1) * vsb ~ 0.11 V for 0.4 V of vsb.
  EXPECT_GT(i1, i0 * 0.05);
}

TEST(MosCore, HighVtLeaksLess) {
  const MosOperating nom = opFor(*nmos90());
  const MosOperating hvt = opFor(*nmos90Hvt());
  const double i_nom = mosCoreCurrent(*nmos90(), nom, 0.0, 1.2, 0.0);
  const double i_hvt = mosCoreCurrent(*nmos90Hvt(), hvt, 0.0, 1.2, 0.0);
  EXPECT_LT(i_hvt, i_nom / 5.0);
}

TEST(MosCore, LowVtLeaksMore) {
  const MosOperating nom = opFor(*nmos90());
  const MosOperating lvt = opFor(*nmos90Lvt());
  const double i_nom = mosCoreCurrent(*nmos90(), nom, 0.0, 1.2, 0.0);
  const double i_lvt = mosCoreCurrent(*nmos90Lvt(), lvt, 0.0, 1.2, 0.0);
  EXPECT_GT(i_lvt, i_nom * 5.0);
}

TEST(MosCore, TemperatureRaisesLeakageLowersDrive) {
  const MosModelCard& m = *nmos90();
  const MosOperating cold = opFor(m, 260e-9, 100e-9, celsiusToKelvin(27.0));
  const MosOperating hot = opFor(m, 260e-9, 100e-9, celsiusToKelvin(90.0));
  EXPECT_GT(mosCoreCurrent(m, hot, 0.0, 1.2, 0.0), mosCoreCurrent(m, cold, 0.0, 1.2, 0.0));
  EXPECT_LT(mosCoreCurrent(m, hot, 1.2, 1.2, 0.0), mosCoreCurrent(m, cold, 1.2, 1.2, 0.0));
}

TEST(MosCore, AdDerivativesMatchFiniteDifference) {
  const MosModelCard& m = *nmos90();
  const MosOperating op = opFor(m);
  const double h = 1e-6;
  for (double vg : {0.2, 0.5, 0.9, 1.3}) {
    for (double vd : {0.05, 0.4, 1.2}) {
      for (double vs : {0.0, 0.2}) {
        using D3 = Dual<3>;
        const D3 i = mosCoreCurrent(m, op, D3::seed(vg, 0), D3::seed(vd, 1), D3::seed(vs, 2));
        const double gm_fd = (mosCoreCurrent(m, op, vg + h, vd, vs) -
                              mosCoreCurrent(m, op, vg - h, vd, vs)) /
                             (2 * h);
        const double gd_fd = (mosCoreCurrent(m, op, vg, vd + h, vs) -
                              mosCoreCurrent(m, op, vg, vd - h, vs)) /
                             (2 * h);
        const double gs_fd = (mosCoreCurrent(m, op, vg, vd, vs + h) -
                              mosCoreCurrent(m, op, vg, vd, vs - h)) /
                             (2 * h);
        const double scale = std::max(std::fabs(i.v) / op.ut, 1e-9);
        EXPECT_NEAR(i.d[0], gm_fd, scale * 1e-3) << vg << " " << vd << " " << vs;
        EXPECT_NEAR(i.d[1], gd_fd, scale * 1e-3);
        EXPECT_NEAR(i.d[2], gs_fd, scale * 1e-3);
      }
    }
  }
}

TEST(MosCore, IonIoffRatioIsProcessLike) {
  const MosModelCard& m = *nmos90();
  const MosOperating op = opFor(m);
  const double ion = mosCoreCurrent(m, op, 1.2, 1.2, 0.0);
  const double ioff = mosCoreCurrent(m, op, 0.0, 1.2, 0.0);
  EXPECT_GT(ion / ioff, 1e4);
  EXPECT_LT(ion / ioff, 1e8);
  // Drive in the hundreds of uA/um class.
  const double ion_per_um = ion / 0.26;
  EXPECT_GT(ion_per_um, 300.0e-6);
  EXPECT_LT(ion_per_um, 3000.0e-6);
}

TEST(Mosfet, PmosInverterComplement) {
  // NMOS+PMOS inverter: out follows !in at both rails.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  auto& vin = c.add<VoltageSource>("vin", in, kGround, 0.0);
  MosGeometry gp;
  gp.w = 520e-9;
  MosGeometry gn;
  gn.w = 260e-9;
  c.add<Mosfet>("mp", out, in, vdd, vdd, pmos90(), gp);
  c.add<Mosfet>("mn", out, in, kGround, kGround, nmos90(), gn);
  Simulator sim(c);
  auto x = sim.solveOp();
  EXPECT_NEAR(x[out], 1.2, 1e-3);
  vin.setWaveform(Waveform::dc(1.2));
  x = sim.solveOp();
  EXPECT_NEAR(x[out], 0.0, 1e-3);
}

TEST(Mosfet, PassGateThresholdDrop) {
  // NMOS pass device with gate at VDD passes VDD minus an effective VT.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId src = c.node("s");
  const NodeId dst = c.node("d");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  c.add<VoltageSource>("vs", src, kGround, 1.2);
  MosGeometry g;
  g.w = 260e-9;
  c.add<Mosfet>("mn", src, vdd, dst, kGround, nmos90(), g);
  c.add<Resistor>("rl", dst, kGround, 1e9);  // tiny load defines the level
  Simulator sim(c);
  const auto x = sim.solveOp();
  // Expect roughly VDD - VT - body ~ 0.55..0.85 V.
  EXPECT_GT(x[dst], 0.5);
  EXPECT_LT(x[dst], 0.95);
}

TEST(Mosfet, GeometryVariationMovesCurrent) {
  const MosModelCard& m = *nmos90();
  MosGeometry g;
  g.w = 260e-9;
  g.l = 100e-9;
  const double i0 = mosCoreCurrent(m, resolveOperating(m, g, 300.15), 1.2, 1.2, 0.0);
  g.delta_w = 26e-9;  // +10% W
  const double i_w = mosCoreCurrent(m, resolveOperating(m, g, 300.15), 1.2, 1.2, 0.0);
  EXPECT_NEAR(i_w / i0, 1.1, 0.02);
  g.delta_w = 0.0;
  g.delta_vt = 0.05;
  const double i_vt = mosCoreCurrent(m, resolveOperating(m, g, 300.15), 1.2, 1.2, 0.0);
  EXPECT_LT(i_vt, i0);
}

TEST(Mosfet, InvalidGeometryThrows) {
  MosGeometry g;
  g.w = 100e-9;
  g.delta_w = -200e-9;
  EXPECT_THROW(resolveOperating(*nmos90(), g, 300.15), InvalidInputError);
}

TEST(Mosfet, GateLeakageOptIn) {
  MosModelCard card = *nmos90();
  card.jg = 10.0;  // strong for test visibility [A/m^2]
  auto ref = std::make_shared<const MosModelCard>(card);
  Circuit c;
  const NodeId g = c.node("g");
  c.add<VoltageSource>("vg", g, kGround, 1.2);
  MosGeometry geom;
  geom.w = 1e-6;
  geom.l = 1e-6;
  auto& fet = c.add<Mosfet>("m", kGround, g, kGround, kGround, ref, geom);
  (void)fet;
  Simulator sim(c);
  const auto x = sim.solveOp();
  const EvalContext ctx = sim.contextFor(x);
  // Gate current must flow (source delivers it).
  auto* vg = dynamic_cast<VoltageSource*>(c.findDevice("vg"));
  ASSERT_NE(vg, nullptr);
  EXPECT_GT(std::fabs(vg->branchCurrent(ctx)), 1e-12);
}

}  // namespace
}  // namespace vls
