#include "devices/diode.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interpolation.hpp"

#include "base/units.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Diode, ForwardDropAgainstShockley) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId k = c.node("k");
  c.add<VoltageSource>("v", a, kGround, 5.0);
  c.add<Resistor>("r", a, k, 1000.0);
  DiodeParams p;
  p.i_sat = 1e-14;
  c.add<Diode>("d", k, kGround, p);
  Simulator sim(c);
  const auto x = sim.solveOp();
  const double vd = x[k];
  const double id = (5.0 - vd) / 1000.0;
  // Shockley self-consistency: id = Is(exp(vd/ut)-1).
  const double ut = thermalVoltage(sim.options().temperatureK());
  EXPECT_NEAR(id, p.i_sat * (std::exp(vd / ut) - 1.0), id * 1e-3);
  EXPECT_GT(vd, 0.5);
  EXPECT_LT(vd, 0.8);
}

TEST(Diode, ReverseSaturation) {
  Circuit c;
  const NodeId k = c.node("k");
  c.add<VoltageSource>("v", k, kGround, 5.0);  // reverse biased
  DiodeParams p;
  p.i_sat = 1e-12;
  auto& d = c.add<Diode>("d", kGround, k, p);
  Simulator sim(c);
  const auto x = sim.solveOp();
  const EvalContext ctx = sim.contextFor(x);
  EXPECT_NEAR(d.terminalCurrent(0, ctx), -1e-12, 1e-14);
}

TEST(Diode, ExponentLimitingSurvivesHugeForwardGuess) {
  // A 10 V source directly across the diode must not overflow Newton.
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v", a, kGround, 10.0);
  c.add<Resistor>("r", a, c.node("k"), 10.0);
  c.add<Diode>("d", c.node("k"), kGround, DiodeParams{});
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_GT(x[c.node("k")], 0.7);
  EXPECT_LT(x[c.node("k")], 1.3);
}

TEST(Diode, TemperatureRaisesLeakageExponent) {
  DiodeParams p;
  p.i_sat = 1e-14;
  Circuit c;
  const NodeId k = c.node("k");
  c.add<VoltageSource>("v", k, kGround, 0.6);
  auto& d = c.add<Diode>("d", k, kGround, p);
  SimOptions cold;
  cold.temperature_c = 0.0;
  SimOptions hot;
  hot.temperature_c = 100.0;
  Simulator sim_cold(c, cold);
  const auto x = sim_cold.solveOp();
  const double i_cold = d.terminalCurrent(0, sim_cold.contextFor(x));
  Simulator sim_hot(c, hot);
  const auto x2 = sim_hot.solveOp();
  const double i_hot = d.terminalCurrent(0, sim_hot.contextFor(x2));
  // Same forward voltage at higher T -> smaller exponent -> less
  // current with a fixed i_sat (the i_sat(T) increase is not modeled on
  // the bare diode; the MOSFET card handles temperature instead).
  EXPECT_LT(i_hot, i_cold);
}

TEST(Diode, JunctionCapSlowsTransient) {
  // Step into R + diode-with-cap: node settles to the diode drop with a
  // finite rise governed by the capacitance.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId k = c.node("k");
  PulseSpec ps;
  ps.v1 = 0;
  ps.v2 = 1.0;
  ps.rise = ps.fall = 1e-12;
  ps.width = 1e-6;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(ps));
  c.add<Resistor>("r", a, k, 10000.0);
  DiodeParams p;
  p.cj0 = 1e-12;
  c.add<Diode>("d", k, kGround, p);
  Simulator sim(c);
  const auto tr = sim.transient(100e-9, 1e-9);
  const Signal vk = tr.node("k");
  // Early: still charging; late: settled near the diode's operating point.
  EXPECT_LT(interpLinear(vk.time, vk.value, 3e-9), 0.35);
  const double v_late = interpLinear(vk.time, vk.value, 95e-9);
  EXPECT_GT(v_late, 0.4);
}

}  // namespace
}  // namespace vls
