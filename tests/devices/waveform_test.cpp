#include "devices/waveform.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include <algorithm>

#include "base/error.hpp"

namespace vls {
namespace {

TEST(Waveform, DcIsConstant) {
  const Waveform w = Waveform::dc(1.2);
  EXPECT_DOUBLE_EQ(w.at(0.0), 1.2);
  EXPECT_DOUBLE_EQ(w.at(1e9), 1.2);
  EXPECT_DOUBLE_EQ(w.maxValue(1.0), 1.2);
  std::vector<double> bp;
  w.collectBreakpoints(1.0, bp);
  EXPECT_TRUE(bp.empty());
}

TEST(Waveform, PulseShape) {
  PulseSpec p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.delay = 1e-9;
  p.rise = 1e-10;
  p.fall = 2e-10;
  p.width = 5e-10;
  p.period = 0.0;
  const Waveform w = Waveform::pulse(p);
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(1e-9), 0.0);
  EXPECT_NEAR(w.at(1e-9 + 5e-11), 0.5, 1e-12);  // mid-rise
  EXPECT_DOUBLE_EQ(w.at(1.3e-9), 1.0);          // flat top
  EXPECT_NEAR(w.at(1e-9 + 1e-10 + 5e-10 + 1e-10), 0.5, 1e-12);  // mid-fall
  EXPECT_DOUBLE_EQ(w.at(5e-9), 0.0);            // back to v1
}

TEST(Waveform, PulsePeriodic) {
  PulseSpec p;
  p.v1 = 0.0;
  p.v2 = 1.0;
  p.rise = p.fall = 1e-11;
  p.width = 4e-10;
  p.period = 1e-9;
  const Waveform w = Waveform::pulse(p);
  EXPECT_DOUBLE_EQ(w.at(2e-10), 1.0);
  EXPECT_DOUBLE_EQ(w.at(1e-9 + 2e-10), 1.0);
  EXPECT_DOUBLE_EQ(w.at(7e-10), 0.0);
  EXPECT_DOUBLE_EQ(w.at(1e-9 + 7e-10), 0.0);
}

TEST(Waveform, PulseRejectsZeroEdges) {
  PulseSpec p;
  p.rise = 0.0;
  EXPECT_THROW(Waveform::pulse(p), InvalidInputError);
}

TEST(Waveform, PulseBreakpointsCoverCorners) {
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 1e-9;
  p.rise = p.fall = 1e-10;
  p.width = 3e-10;
  const Waveform w = Waveform::pulse(p);
  std::vector<double> bp;
  w.collectBreakpoints(10e-9, bp);
  ASSERT_EQ(bp.size(), 4u);
  EXPECT_DOUBLE_EQ(bp[0], 1e-9);
  EXPECT_DOUBLE_EQ(bp[3], 1e-9 + 1e-10 + 3e-10 + 1e-10);
}

TEST(Waveform, PwlInterpolatesAndClamps) {
  const Waveform w = Waveform::pwl({0.0, 1.0, 2.0}, {0.0, 2.0, 0.0});
  EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.at(1.5), 1.0);
  EXPECT_DOUBLE_EQ(w.at(3.0), 0.0);
  EXPECT_DOUBLE_EQ(w.maxValue(2.0), 2.0);
}

TEST(Waveform, PwlRejectsNonIncreasing) {
  EXPECT_THROW(Waveform::pwl({0.0, 0.0}, {1.0, 2.0}), InvalidInputError);
  EXPECT_THROW(Waveform::pwl({1.0, 0.5}, {1.0, 2.0}), InvalidInputError);
  EXPECT_THROW(Waveform::pwl({}, {}), InvalidInputError);
}

TEST(Waveform, SineBasics) {
  SinSpec s;
  s.offset = 1.0;
  s.amplitude = 0.5;
  s.freq = 1e6;
  const Waveform w = Waveform::sine(s);
  EXPECT_DOUBLE_EQ(w.at(0.0), 1.0);
  EXPECT_NEAR(w.at(0.25e-6), 1.5, 1e-9);
  EXPECT_NEAR(w.at(0.75e-6), 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(w.maxValue(1.0), 1.5);
}

TEST(Waveform, SineDelayAndDamping) {
  SinSpec s;
  s.amplitude = 1.0;
  s.freq = 1e6;
  s.delay = 1e-6;
  s.damping = 1e6;
  const Waveform w = Waveform::sine(s);
  EXPECT_DOUBLE_EQ(w.at(0.5e-6), 0.0);  // before delay
  EXPECT_NEAR(w.at(1.25e-6), std::exp(-0.25), 1e-9);
}

TEST(Waveform, ExpRise) {
  ExpSpec e;
  e.v1 = 0.0;
  e.v2 = 1.0;
  e.rise_delay = 0.0;
  e.rise_tau = 1e-9;
  e.fall_delay = 0.0;  // no fall phase
  const Waveform w = Waveform::exponential(e);
  EXPECT_NEAR(w.at(1e-9), 1.0 - std::exp(-1.0), 1e-9);
}

TEST(Waveform, ToSpiceRoundTrippableText) {
  EXPECT_EQ(Waveform::dc(1.2).toSpice(), "DC 1.2");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1.2;
  p.rise = p.fall = 1e-11;
  p.width = 1e-9;
  const std::string s = Waveform::pulse(p).toSpice();
  EXPECT_NE(s.find("PULSE("), std::string::npos);
  const std::string pw = Waveform::pwl({0.0, 1e-9}, {0.0, 1.0}).toSpice();
  EXPECT_NE(pw.find("PWL("), std::string::npos);
}

}  // namespace
}  // namespace vls
