#include "devices/passive.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interpolation.hpp"

#include "circuit/circuit.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Resistor, RejectsNonPositive) {
  Circuit c;
  const NodeId a = c.node("a");
  EXPECT_THROW(c.add<Resistor>("r", a, kGround, 0.0), InvalidInputError);
  EXPECT_THROW(c.add<Resistor>("r2", a, kGround, -1.0), InvalidInputError);
}

TEST(Resistor, DividerOp) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 3.0);
  c.add<Resistor>("r1", a, b, 2000.0);
  auto& r2 = c.add<Resistor>("r2", b, kGround, 1000.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[b], 1.0, 1e-9);
  const EvalContext ctx = sim.contextFor(x);
  EXPECT_NEAR(r2.terminalCurrent(0, ctx), 1e-3, 1e-12);
  EXPECT_NEAR(r2.terminalCurrent(1, ctx), -1e-3, 1e-12);
}

TEST(Capacitor, OpenInDc) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 2.0);
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("c", b, kGround, 1e-12);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[b], 2.0, 1e-6);  // no DC current through C
}

TEST(Capacitor, RcChargeCurve) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 0.0;
  p.rise = 1e-15;
  p.fall = 1e-15;
  p.width = 1e-6;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("c", b, kGround, 1e-12);  // tau = 1 ns
  Simulator sim(c);
  const auto tr = sim.transient(5e-9, 2e-11);
  const Signal vb = tr.node("b");
  for (double mult : {0.5, 1.0, 2.0, 3.0}) {
    const double expected = 1.0 - std::exp(-mult);
    EXPECT_NEAR(interpLinear(vb.time, vb.value, mult * 1e-9), expected, 4e-3) << mult;
  }
}

TEST(Capacitor, InitialConditionHonored) {
  Circuit c;
  const NodeId b = c.node("b");
  c.add<Resistor>("r", b, kGround, 1000.0);
  c.add<Capacitor>("c", b, kGround, 1e-12, 1.0, /*use_ic=*/true);
  Simulator sim(c);
  const auto tr = sim.transient(3e-9, 2e-11);
  const Signal vb = tr.node("b");
  // Discharges from the IC of 1 V with tau = 1 ns. The t=0 operating
  // point itself is 0 V (IC applies at transient start), so check decay
  // relative to the IC from shortly after t=0.
  EXPECT_NEAR(interpLinear(vb.time, vb.value, 1e-9), std::exp(-1.0), 0.05);
}

TEST(Inductor, DcShortAndRlRiseTime) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.rise = 1e-15;
  p.fall = 1e-15;
  p.width = 1e-3;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, b, 100.0);
  c.add<Inductor>("l", b, kGround, 1e-7);  // tau = L/R = 1 ns
  Simulator sim(c);
  const auto tr = sim.transient(5e-9, 2e-11);
  // Inductor current rises as (V/R)(1 - e^{-t/tau}).
  // v(b) = V e^{-t/tau} decays correspondingly.
  const Signal vb = tr.node("b");
  EXPECT_NEAR(interpLinear(vb.time, vb.value, 1e-9), std::exp(-1.0), 6e-3);
  EXPECT_NEAR(interpLinear(vb.time, vb.value, 3e-9), std::exp(-3.0), 6e-3);
}

TEST(Inductor, EnergyConservationLcOscillator) {
  // LC tank started from a charged capacitor: oscillation period
  // 2*pi*sqrt(LC); trapezoidal integration should hold amplitude.
  Circuit c;
  const NodeId a = c.node("a");
  c.add<Capacitor>("c", a, kGround, 1e-12, 1.0, true);
  c.add<Inductor>("l", a, kGround, 1e-6);  // f0 ~ 159 MHz, T ~ 6.28 ns
  Simulator sim(c);
  const auto tr = sim.transient(12.6e-9, 2e-11);
  const Signal va = tr.node("a");
  // After one full period the voltage should return near +1 V.
  const double period = 2.0 * M_PI * std::sqrt(1e-6 * 1e-12);
  EXPECT_NEAR(interpLinear(va.time, va.value, period), 1.0, 0.03);
  // Half period: inverted.
  EXPECT_NEAR(interpLinear(va.time, va.value, period / 2.0), -1.0, 0.03);
}

}  // namespace
}  // namespace vls
