#include "devices/model_library.hpp"

#include <gtest/gtest.h>

#include "base/error.hpp"

namespace vls {
namespace {

TEST(ModelLibrary, PaperThresholds) {
  // The paper states: nominal VT 0.39 V (NMOS) / -0.39 V (PMOS);
  // high-VT 0.49 V / -0.44 V; low-VT 0.19 V for M8.
  EXPECT_DOUBLE_EQ(nmos90()->vt0, 0.39);
  EXPECT_DOUBLE_EQ(nmos90Hvt()->vt0, 0.49);
  EXPECT_DOUBLE_EQ(nmos90Lvt()->vt0, 0.19);
  EXPECT_DOUBLE_EQ(pmos90()->vt0, 0.39);
  EXPECT_DOUBLE_EQ(pmos90Hvt()->vt0, 0.44);
}

TEST(ModelLibrary, Types) {
  EXPECT_EQ(nmos90()->type, MosType::Nmos);
  EXPECT_EQ(pmos90()->type, MosType::Pmos);
  EXPECT_DOUBLE_EQ(nmos90()->sign(), 1.0);
  EXPECT_DOUBLE_EQ(pmos90()->sign(), -1.0);
}

TEST(ModelLibrary, SharedInstances) {
  EXPECT_EQ(nmos90().get(), nmos90().get());
  EXPECT_NE(nmos90().get(), nmos90Hvt().get());
}

TEST(ModelLibrary, LookupByName) {
  EXPECT_EQ(modelByName("nmos").get(), nmos90().get());
  EXPECT_EQ(modelByName("NMOS_HVT").get(), nmos90Hvt().get());
  EXPECT_EQ(modelByName("pmos_hvt").get(), pmos90Hvt().get());
  EXPECT_THROW(modelByName("bsim4"), InvalidInputError);
}

TEST(ModelLibrary, PmosWeakerThanNmos) {
  EXPECT_LT(pmos90()->kp, nmos90()->kp);
}

TEST(ModelLibrary, OxideCapacitance) {
  // 90 nm class: Cox around 15-18 fF/um^2.
  EXPECT_GT(nmos90()->cox(), 13e-3);
  EXPECT_LT(nmos90()->cox(), 20e-3);
}

}  // namespace
}  // namespace vls
