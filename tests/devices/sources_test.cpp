#include "devices/sources.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include "numeric/interpolation.hpp"

#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(VoltageSource, DcAndBranchCurrent) {
  Circuit c;
  const NodeId a = c.node("a");
  auto& v = c.add<VoltageSource>("v", a, kGround, 5.0);
  c.add<Resistor>("r", a, kGround, 1000.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[a], 5.0, 1e-9);
  const EvalContext ctx = sim.contextFor(x);
  // 5 mA delivered: branch current (into +) is -5 mA.
  EXPECT_NEAR(v.branchCurrent(ctx), -5e-3, 1e-9);
  EXPECT_NEAR(v.terminalCurrent(0, ctx), -5e-3, 1e-9);
  EXPECT_NEAR(v.terminalCurrent(1, ctx), 5e-3, 1e-9);
}

TEST(CurrentSource, DrivesResistor) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<CurrentSource>("i", kGround, a, 1e-3);  // 1 mA into node a
  c.add<Resistor>("r", a, kGround, 1000.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[a], 1.0, 1e-9);
}

TEST(Vcvs, Gain) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("v", in, kGround, 0.25);
  c.add<Vcvs>("e", out, kGround, in, kGround, 4.0);
  c.add<Resistor>("r", out, kGround, 1000.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[out], 1.0, 1e-9);
}

TEST(Vccs, Transconductance) {
  Circuit c;
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("v", in, kGround, 2.0);
  // gm*v(in) = 2 mA flows out -> gnd inside the source, i.e. pulled out
  // of node `out`.
  c.add<Vccs>("g", out, kGround, in, kGround, 1e-3);
  c.add<Resistor>("r", out, kGround, 500.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[out], -1.0, 1e-9);
}

TEST(VSwitch, OnOffResistance) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId ctl = c.node("ctl");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  auto& vc = c.add<VoltageSource>("vc", ctl, kGround, 0.0);
  VSwitch::Params p;
  p.v_threshold = 0.5;
  p.r_on = 100.0;
  p.r_off = 1e9;
  c.add<VSwitch>("s", a, b, ctl, kGround, p);
  c.add<Resistor>("rl", b, kGround, 100.0);
  Simulator sim(c);
  auto x = sim.solveOp();
  EXPECT_LT(x[b], 1e-3);  // switch off: divider with 1e9 ohm
  vc.setWaveform(Waveform::dc(1.0));
  x = sim.solveOp();
  EXPECT_NEAR(x[b], 0.5, 1e-3);  // on: 100/100 divider
}

TEST(VSwitch, RejectsNonPositiveResistance) {
  Circuit c;
  const NodeId a = c.node("a");
  VSwitch::Params p;
  p.r_on = 0.0;
  EXPECT_THROW(c.add<VSwitch>("s", a, kGround, a, kGround, p), InvalidInputError);
}

TEST(VoltageSource, PulseDrivesTransient) {
  Circuit c;
  const NodeId a = c.node("a");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 1e-9;
  p.rise = p.fall = 1e-11;
  p.width = 1e-9;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, kGround, 1000.0);
  Simulator sim(c);
  const auto tr = sim.transient(3e-9, 5e-11);
  const Signal va = tr.node("a");
  EXPECT_NEAR(interpLinear(va.time, va.value, 0.5e-9), 0.0, 1e-9);
  EXPECT_NEAR(interpLinear(va.time, va.value, 1.5e-9), 1.0, 1e-9);
  EXPECT_NEAR(interpLinear(va.time, va.value, 2.9e-9), 0.0, 1e-9);
  // The breakpoint times must be hit exactly (samples exist there).
  bool found = false;
  for (double t : va.time) {
    if (std::fabs(t - 1e-9) < 1e-18) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace vls
