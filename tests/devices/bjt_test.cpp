#include "devices/bjt.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "numeric/interpolation.hpp"

#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

BjtModelRef npn() {
  static const BjtModelRef card = std::make_shared<BjtModelCard>();
  return card;
}

BjtModelRef pnp() {
  static const BjtModelRef card = [] {
    BjtModelCard m;
    m.name = "pnp";
    m.type = BjtType::Pnp;
    return std::make_shared<BjtModelCard>(m);
  }();
  return card;
}

TEST(Bjt, ForwardActiveGain) {
  // Common-emitter: base driven through a big resistor, collector
  // through a load; check ic ~ beta * ib.
  Circuit c;
  const NodeId vcc = c.node("vcc");
  const NodeId vb = c.node("vb");
  const NodeId base = c.node("base");
  const NodeId col = c.node("col");
  c.add<VoltageSource>("vcc", vcc, kGround, 5.0);
  c.add<VoltageSource>("vbb", vb, kGround, 2.0);
  c.add<Resistor>("rb", vb, base, 1e6);
  c.add<Resistor>("rc", vcc, col, 1000.0);
  auto& q = c.add<Bjt>("q1", col, base, kGround, npn());
  Simulator sim(c);
  const auto x = sim.solveOp();
  const EvalContext ctx = sim.contextFor(x);
  const double ib = q.terminalCurrent(1, ctx);
  const double ic = q.terminalCurrent(0, ctx);
  EXPECT_GT(ib, 1e-7);
  EXPECT_NEAR(ic / ib, 100.0, 12.0);  // beta_f with Early-effect slack
  // KCL at the device: ie = -(ic + ib).
  EXPECT_NEAR(q.terminalCurrent(2, ctx), -(ic + ib), 1e-12);
}

TEST(Bjt, CutoffLeaksOnlySaturationCurrent) {
  Circuit c;
  const NodeId vcc = c.node("vcc");
  const NodeId col = c.node("col");
  c.add<VoltageSource>("vcc", vcc, kGround, 5.0);
  c.add<Resistor>("rc", vcc, col, 1000.0);
  auto& q = c.add<Bjt>("q1", col, kGround, kGround, npn());
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[col], 5.0, 1e-3);
  EXPECT_LT(std::fabs(q.terminalCurrent(0, sim.contextFor(x))), 1e-9);
}

TEST(Bjt, EmitterFollowerLevelShift) {
  // Follower output sits ~0.7 V below the base.
  Circuit c;
  const NodeId vcc = c.node("vcc");
  const NodeId base = c.node("base");
  const NodeId emit = c.node("emit");
  c.add<VoltageSource>("vcc", vcc, kGround, 5.0);
  c.add<VoltageSource>("vb", base, kGround, 2.0);
  c.add<Bjt>("q1", vcc, base, emit, npn());
  c.add<Resistor>("re", emit, kGround, 10000.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[emit], 2.0 - 0.68, 0.1);
}

TEST(Bjt, PnpComplement) {
  // PNP follower from the negative side: emitter above the base by Vbe.
  Circuit c;
  const NodeId vcc = c.node("vcc");
  const NodeId base = c.node("base");
  const NodeId emit = c.node("emit");
  c.add<VoltageSource>("vcc", vcc, kGround, 5.0);
  c.add<VoltageSource>("vb", base, kGround, 3.0);
  c.add<Bjt>("q1", kGround, base, emit, pnp());  // collector to ground
  c.add<Resistor>("re", vcc, emit, 10000.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[emit], 3.0 + 0.68, 0.1);
}

TEST(Bjt, EarlyEffectGivesFiniteOutputResistance) {
  auto ic_at = [](double vce) {
    Circuit c;
    const NodeId col = c.node("col");
    const NodeId base = c.node("base");
    c.add<VoltageSource>("vc", col, kGround, vce);
    c.add<VoltageSource>("vb", base, kGround, 0.65);
    auto& q = c.add<Bjt>("q1", col, base, kGround, npn());
    Simulator sim(c);
    const auto x = sim.solveOp();
    return q.terminalCurrent(0, sim.contextFor(x));
  };
  const double i1 = ic_at(1.0);
  const double i2 = ic_at(4.0);
  EXPECT_GT(i2, i1 * 1.01);  // slope from VAF
  EXPECT_LT(i2, i1 * 1.2);
}

TEST(Bjt, SwitchingTransient) {
  // Saturating switch: base pulse drives the collector rail-to-rail.
  Circuit c;
  const NodeId vcc = c.node("vcc");
  const NodeId bdrv = c.node("bdrv");
  const NodeId base = c.node("base");
  const NodeId col = c.node("col");
  c.add<VoltageSource>("vcc", vcc, kGround, 5.0);
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 5.0;
  p.delay = 10e-9;
  p.rise = p.fall = 1e-9;
  p.width = 40e-9;
  c.add<VoltageSource>("vb", bdrv, kGround, Waveform::pulse(p));
  c.add<Resistor>("rb", bdrv, base, 10e3);
  c.add<Resistor>("rc", vcc, col, 1e3);
  BjtModelCard m;
  m.cje = 1e-12;
  m.cjc = 0.5e-12;
  c.add<Bjt>("q1", col, base, kGround, std::make_shared<BjtModelCard>(m));
  Simulator sim(c);
  const auto tr = sim.transient(100e-9, 1e-9);
  const Signal vcol = tr.node("col");
  EXPECT_NEAR(interpLinear(vcol.time, vcol.value, 5e-9), 5.0, 0.05);   // off
  EXPECT_LT(interpLinear(vcol.time, vcol.value, 40e-9), 0.5);          // saturated on
  EXPECT_NEAR(interpLinear(vcol.time, vcol.value, 95e-9), 5.0, 0.2);   // off again
}

}  // namespace
}  // namespace vls
