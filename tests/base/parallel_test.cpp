#include "base/parallel.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace vls {
namespace {

// Exercise the work-stealing scheduler across worker counts and chunk
// sizes: every index must be visited exactly once, regardless of how
// chunks are popped and stolen.
TEST(ParallelFor, EveryIndexVisitedExactlyOnce) {
  for (const size_t count : {size_t{1}, size_t{7}, size_t{64}, size_t{1000}, size_t{4099}}) {
    for (const int threads : {1, 2, 4, 7}) {
      for (const size_t chunk : {size_t{0}, size_t{1}, size_t{3}, size_t{1024}}) {
        std::vector<std::atomic<int>> hits(count);
        for (auto& h : hits) h.store(0);
        parallelForChunked(
            count, [&](size_t i) { hits[i].fetch_add(1, std::memory_order_relaxed); },
            ParallelOptions{threads, chunk});
        for (size_t i = 0; i < count; ++i) {
          ASSERT_EQ(hits[i].load(), 1) << "index " << i << " count " << count << " threads "
                                       << threads << " chunk " << chunk;
        }
      }
    }
  }
}

TEST(ParallelFor, ZeroCountIsNoOp) {
  bool called = false;
  parallelForChunked(0, [&](size_t) { called = true; }, ParallelOptions{4, 0});
  EXPECT_FALSE(called);
}

TEST(ParallelFor, FunctionWrapperDelegates) {
  std::vector<std::atomic<int>> hits(257);
  for (auto& h : hits) h.store(0);
  parallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); }, 3);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

// Exception semantics: the first exception wins, is rethrown on the
// calling thread with its type intact, and the join never deadlocks
// even with stolen chunks in flight on other workers.
TEST(ParallelFor, FirstExceptionIsRethrownWithType) {
  EXPECT_THROW(
      parallelForChunked(
          100,
          [](size_t i) {
            if (i == 37) throw std::out_of_range("boom at 37");
          },
          ParallelOptions{4, 1}),
      std::out_of_range);
}

TEST(ParallelFor, ManyConcurrentThrowsPropagateExactlyOne) {
  // Every index throws: whichever lands first must surface, once, with
  // all workers joined (repeat to shake out interleavings).
  for (int rep = 0; rep < 20; ++rep) {
    std::atomic<int> started{0};
    try {
      parallelForChunked(
          64,
          [&](size_t i) {
            started.fetch_add(1);
            throw std::runtime_error("sample " + std::to_string(i));
          },
          ParallelOptions{4, 1});
      FAIL() << "expected an exception";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("sample "), std::string::npos);
    }
    EXPECT_GE(started.load(), 1);
  }
}

TEST(ParallelFor, ExceptionCancelsRemainingChunks) {
  // With chunk = 1 and an immediate throw, cancellation must keep the
  // scheduler from visiting all of a large range (cooperative: chunks
  // already popped still finish).
  std::atomic<int> visited{0};
  try {
    parallelForChunked(
        1 << 20,
        [&](size_t) {
          visited.fetch_add(1, std::memory_order_relaxed);
          throw std::runtime_error("cancel");
        },
        ParallelOptions{2, 1});
    FAIL() << "expected an exception";
  } catch (const std::runtime_error&) {
  }
  EXPECT_LT(visited.load(), 1 << 20);
}

// Nested guard: a parallelFor issued from inside a worker body must run
// inline on that worker's thread (no pool-in-pool oversubscription, no
// deadlock), and inParallelRegion() reports the nesting.
TEST(ParallelFor, NestedCallsRunInlineOnWorkerThread) {
  EXPECT_FALSE(inParallelRegion());
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  std::atomic<int> inner_off_thread{0};
  std::atomic<int> not_flagged{0};
  parallelForChunked(
      8,
      [&](size_t) {
        if (!inParallelRegion()) not_flagged.fetch_add(1);
        const std::thread::id self = std::this_thread::get_id();
        parallelForChunked(
            16,
            [&](size_t) {
              inner.fetch_add(1, std::memory_order_relaxed);
              if (std::this_thread::get_id() != self) inner_off_thread.fetch_add(1);
            },
            ParallelOptions{4, 1});
        outer.fetch_add(1, std::memory_order_relaxed);
      },
      ParallelOptions{4, 1});
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8 * 16);
  EXPECT_EQ(inner_off_thread.load(), 0) << "nested call escaped its worker thread";
  EXPECT_EQ(not_flagged.load(), 0);
  EXPECT_FALSE(inParallelRegion());
}

TEST(ParallelFor, NestedExceptionPropagatesThroughBothLevels) {
  EXPECT_THROW(
      parallelForChunked(
          4,
          [](size_t) {
            parallelForChunked(4, [](size_t j) {
              if (j == 2) throw std::logic_error("inner");
            });
          },
          ParallelOptions{2, 1}),
      std::logic_error);
  EXPECT_FALSE(inParallelRegion());
}

TEST(ParallelAutoChunk, StaysWithinBounds) {
  EXPECT_EQ(parallelAutoChunk(0, 4), 1u);
  EXPECT_EQ(parallelAutoChunk(7, 4), 1u);
  EXPECT_EQ(parallelAutoChunk(64, 4), 2u);
  EXPECT_EQ(parallelAutoChunk(size_t{1} << 40, 2), 2048u);  // clamped
  EXPECT_GE(parallelAutoChunk(100, 0), 1u);                 // workers=0 tolerated
}

TEST(ParallelScheduler, ReportsKindAndThreads) {
  EXPECT_STREQ(parallelSchedulerName(), "chunked-work-stealing-pooled");
  EXPECT_GE(parallelThreadCount(), 1);
}

// VLS_THREADS is user input: only a clean positive decimal integer is
// honored; everything else falls back to the hardware width instead of
// silently launching 0 or 8 workers off a typo like "8x".
class ParallelThreadCountEnv : public ::testing::Test {
 protected:
  void SetUp() override {
    if (const char* old = std::getenv("VLS_THREADS")) {
      saved_ = old;
      had_ = true;
    }
  }
  void TearDown() override {
    if (had_) {
      setenv("VLS_THREADS", saved_.c_str(), 1);
    } else {
      unsetenv("VLS_THREADS");
    }
  }
  std::string saved_;
  bool had_ = false;
};

TEST_F(ParallelThreadCountEnv, ValidValueIsHonored) {
  setenv("VLS_THREADS", "3", 1);
  EXPECT_EQ(parallelThreadCount(), 3);
}

TEST_F(ParallelThreadCountEnv, UnsetFallsBackToHardware) {
  unsetenv("VLS_THREADS");
  EXPECT_GE(parallelThreadCount(), 1);
}

TEST_F(ParallelThreadCountEnv, GarbageFallsBackToHardware) {
  const int fallback = [] {
    unsetenv("VLS_THREADS");
    return parallelThreadCount();
  }();
  for (const char* bad : {"abc", "8x", "1.5", "", " ", "0x4"}) {
    setenv("VLS_THREADS", bad, 1);
    EXPECT_EQ(parallelThreadCount(), fallback) << "VLS_THREADS='" << bad << "'";
  }
}

TEST_F(ParallelThreadCountEnv, NonPositiveFallsBackToHardware) {
  const int fallback = [] {
    unsetenv("VLS_THREADS");
    return parallelThreadCount();
  }();
  for (const char* bad : {"0", "-2", "-999999999999999999999"}) {
    setenv("VLS_THREADS", bad, 1);
    EXPECT_EQ(parallelThreadCount(), fallback) << "VLS_THREADS='" << bad << "'";
  }
}

TEST_F(ParallelThreadCountEnv, AbsurdlyLargeValueFallsBackToHardware) {
  const int fallback = [] {
    unsetenv("VLS_THREADS");
    return parallelThreadCount();
  }();
  // Beyond the 2^20 sanity cap, and beyond what strtol can represent.
  for (const char* bad : {"2097152", "99999999999999999999"}) {
    setenv("VLS_THREADS", bad, 1);
    EXPECT_EQ(parallelThreadCount(), fallback) << "VLS_THREADS='" << bad << "'";
  }
}

}  // namespace
}  // namespace vls
