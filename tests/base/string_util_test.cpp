#include "base/string_util.hpp"

#include <gtest/gtest.h>

namespace vls {
namespace {

TEST(StringUtil, TrimRemovesSurroundingWhitespace) {
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(trim("hello"), "hello");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim(""), "");
}

TEST(StringUtil, CaseConversion) {
  EXPECT_EQ(toLower("MixedCase123"), "mixedcase123");
  EXPECT_EQ(toUpper("MixedCase123"), "MIXEDCASE123");
}

TEST(StringUtil, SplitFieldsDropsEmpty) {
  const auto fields = splitFields("  a   b\tc  ");
  ASSERT_EQ(fields.size(), 3u);
  EXPECT_EQ(fields[0], "a");
  EXPECT_EQ(fields[1], "b");
  EXPECT_EQ(fields[2], "c");
}

TEST(StringUtil, SplitFieldsEmptyInput) { EXPECT_TRUE(splitFields("   ").empty()); }

TEST(StringUtil, CaseInsensitiveCompare) {
  EXPECT_TRUE(iequals("PULSE", "pulse"));
  EXPECT_FALSE(iequals("PULSE", "puls"));
  EXPECT_TRUE(istartsWith("PULSE(0 1)", "pulse"));
  EXPECT_FALSE(istartsWith("PU", "pulse"));
}

TEST(StringUtil, ParseSpiceNumberPlain) {
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("-3e-9"), -3e-9);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("  42 "), 42.0);
}

TEST(StringUtil, ParseSpiceNumberSuffixes) {
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("1k"), 1e3);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("2.2meg"), 2.2e6);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("10u"), 10e-6);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("15p"), 15e-12);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("1f"), 1e-15);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("3n"), 3e-9);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("5m"), 5e-3);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("7g"), 7e9);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("1t"), 1e12);
}

TEST(StringUtil, ParseSpiceNumberWithUnit) {
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("15pF"), 15e-12);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("1.2V"), 1.2);
  EXPECT_DOUBLE_EQ(*parseSpiceNumber("100nS"), 100e-9);
}

TEST(StringUtil, ParseSpiceNumberRejectsGarbage) {
  EXPECT_FALSE(parseSpiceNumber("abc").has_value());
  EXPECT_FALSE(parseSpiceNumber("").has_value());
  EXPECT_FALSE(parseSpiceNumber("1.5x!").has_value());
  EXPECT_FALSE(parseSpiceNumber("1k2").has_value());
}

}  // namespace
}  // namespace vls
