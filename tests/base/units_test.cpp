#include "base/units.hpp"

#include <gtest/gtest.h>

namespace vls {
namespace {

using namespace vls::literals;

TEST(Units, ThermalVoltageAtRoomTemperature) {
  // kT/q at 300.15 K is about 25.87 mV.
  EXPECT_NEAR(thermalVoltage(300.15), 25.87e-3, 0.05e-3);
}

TEST(Units, ThermalVoltageScalesLinearly) {
  EXPECT_NEAR(thermalVoltage(600.0) / thermalVoltage(300.0), 2.0, 1e-12);
}

TEST(Units, CelsiusConversion) {
  EXPECT_DOUBLE_EQ(celsiusToKelvin(27.0), 300.15);
  EXPECT_DOUBLE_EQ(celsiusToKelvin(-273.15), 0.0);
}

TEST(Units, Literals) {
  EXPECT_DOUBLE_EQ(1.2_V, 1.2);
  EXPECT_DOUBLE_EQ(800.0_mV, 0.8);
  EXPECT_DOUBLE_EQ(1.0_fF, 1e-15);
  EXPECT_DOUBLE_EQ(22.0_ps, 22e-12);
  EXPECT_DOUBLE_EQ(2.0_ns, 2e-9);
  EXPECT_DOUBLE_EQ(90_nm, 90e-9);
  EXPECT_DOUBLE_EQ(0.837_um, 0.837e-6);
  EXPECT_DOUBLE_EQ(20.8_nA, 20.8e-9);
  EXPECT_DOUBLE_EQ(1.0_kOhm, 1000.0);
}

TEST(Units, OxideCapacitanceSanity) {
  // Cox = eps0 * 3.9 / 2.05nm is about 16.8 fF/um^2.
  const double cox = kEpsilon0 * kEpsSiO2 / 2.05e-9;
  EXPECT_NEAR(cox, 16.8e-3, 0.5e-3);  // F/m^2
}

}  // namespace
}  // namespace vls
