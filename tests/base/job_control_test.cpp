// Cooperative job control: the cancellation token, the monotonic
// deadline, the deterministic unit-watermark auto-cancel, and the
// structured JobInterrupted diagnostic — plus the contract that an
// interruption is NOT a vls::Error (degrade/retry handlers that catch
// Error must never swallow a cancellation).
#include "base/job_control.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "base/error.hpp"
#include "base/parallel.hpp"

namespace vls {
namespace {

TEST(JobControl, StartsUninterrupted) {
  JobControl job;
  EXPECT_FALSE(job.cancelled());
  EXPECT_FALSE(job.deadlineExpired());
  EXPECT_FALSE(job.interrupted());
  EXPECT_NO_THROW(job.throwIfInterrupted("newton"));
}

TEST(JobControl, CancelSurfacesStructuredDiagnostic) {
  JobControl job;
  job.cancel();
  EXPECT_TRUE(job.cancelled());
  EXPECT_TRUE(job.interrupted());
  try {
    job.throwIfInterrupted("transient", 1.25e-9);
    FAIL() << "expected JobInterrupted";
  } catch (const JobInterrupted& e) {
    EXPECT_EQ(e.reason(), JobInterruptReason::Cancelled);
    EXPECT_EQ(e.stage(), "transient");
    EXPECT_DOUBLE_EQ(e.simTime(), 1.25e-9);
    EXPECT_GE(e.elapsedSeconds(), 0.0);
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("transient"), std::string::npos);
  }
}

TEST(JobControl, DeadlineExpires) {
  JobControl job;
  job.setDeadline(-1.0);  // already past
  EXPECT_TRUE(job.deadlineExpired());
  try {
    job.throwIfInterrupted("newton");
    FAIL() << "expected JobInterrupted";
  } catch (const JobInterrupted& e) {
    EXPECT_EQ(e.reason(), JobInterruptReason::DeadlineExpired);
    EXPECT_EQ(e.stage(), "newton");
  }
}

TEST(JobControl, FutureDeadlineDoesNotFire) {
  JobControl job;
  job.setDeadline(3600.0);
  EXPECT_FALSE(job.deadlineExpired());
  EXPECT_NO_THROW(job.throwIfInterrupted("newton"));
}

TEST(JobControl, CancelAfterUnitsIsDeterministic) {
  JobControl job;
  job.cancelAfterUnits(3);
  job.unitDone();
  EXPECT_FALSE(job.interrupted());
  job.unitDone();
  EXPECT_FALSE(job.interrupted());
  job.unitDone();
  EXPECT_TRUE(job.cancelled());
}

TEST(JobControl, UnitDoneBatchCountsCrossThreshold) {
  JobControl job;
  job.cancelAfterUnits(10);
  job.unitDone(4);
  EXPECT_FALSE(job.interrupted());
  job.unitDone(7);  // 11 >= 10
  EXPECT_TRUE(job.cancelled());
}

TEST(JobControl, InterruptionIsNotAVlsError) {
  // Degrade-don't-abort handlers catch `const Error&`; a cancellation
  // must fly straight past them.
  JobControl job;
  job.cancel();
  bool caught_as_error = false;
  bool caught_as_interrupt = false;
  try {
    try {
      job.throwIfInterrupted("recovery:gmin-stepping");
    } catch (const Error&) {
      caught_as_error = true;
    }
  } catch (const JobInterrupted&) {
    caught_as_interrupt = true;
  }
  EXPECT_FALSE(caught_as_error);
  EXPECT_TRUE(caught_as_interrupt);
}

TEST(JobControl, CancelStopsParallelFor) {
  // A cancel from outside the pool stops a parallel region: workers
  // observe the token at chunk boundaries and the region rethrows the
  // interruption. Run under TSan in CI (concurrent cancel vs checks).
  JobControl job;
  std::atomic<int> visited{0};
  ParallelOptions opt;
  opt.num_threads = 4;
  opt.chunk = 1;
  opt.job = &job;
  EXPECT_THROW(
      parallelForChunked(
          100000,
          [&](size_t i) {
            if (i == 0) job.cancel();
            visited.fetch_add(1, std::memory_order_relaxed);
          },
          opt),
      JobInterrupted);
  // Cooperative, not instant: some work runs, but nowhere near all.
  EXPECT_LT(visited.load(), 100000);
}

TEST(JobControl, ConcurrentCancelAndChecksAreRaceFree) {
  // Pure token contention: one thread cancels while others poll.
  JobControl job;
  std::atomic<bool> any_interrupted{false};
  std::vector<std::thread> pollers;
  pollers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    pollers.emplace_back([&] {
      while (!job.interrupted()) {
      }
      any_interrupted.store(true);
    });
  }
  job.cancel();
  for (std::thread& th : pollers) th.join();
  EXPECT_TRUE(any_interrupted.load());
}

TEST(JobControl, ReasonNames) {
  EXPECT_STREQ(jobInterruptReasonName(JobInterruptReason::Cancelled), "cancelled");
  EXPECT_STREQ(jobInterruptReasonName(JobInterruptReason::DeadlineExpired),
               "deadline-expired");
}

}  // namespace
}  // namespace vls
