#include "base/error.hpp"

#include <gtest/gtest.h>

#include "base/logging.hpp"

namespace vls {
namespace {

TEST(Error, HierarchyIsCatchableAsBase) {
  try {
    throw ConvergenceError("did not converge");
  } catch (const Error& e) {
    EXPECT_STREQ(e.what(), "did not converge");
  }
}

TEST(Error, DistinctTypes) {
  EXPECT_THROW(throw InvalidInputError("x"), InvalidInputError);
  EXPECT_THROW(throw NumericalError("x"), NumericalError);
  // An InvalidInputError is not a NumericalError.
  bool caught_specific = false;
  try {
    throw InvalidInputError("x");
  } catch (const NumericalError&) {
    FAIL() << "wrong handler";
  } catch (const InvalidInputError&) {
    caught_specific = true;
  }
  EXPECT_TRUE(caught_specific);
}

TEST(Error, FormatMessage) {
  EXPECT_EQ(formatMessage("node %s at %.2f V", "out", 1.25), "node out at 1.25 V");
  EXPECT_EQ(formatMessage("plain"), "plain");
}

TEST(Logging, LevelFiltering) {
  const LogLevel saved = logLevel();
  setLogLevel(LogLevel::Error);
  // Nothing to assert on output; exercise the path for coverage and
  // make sure level round-trips.
  logf(LogLevel::Debug, "suppressed %d", 1);
  EXPECT_EQ(logLevel(), LogLevel::Error);
  setLogLevel(saved);
}

}  // namespace
}  // namespace vls
