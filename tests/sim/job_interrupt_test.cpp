// Cancellation and deadlines inside the solver stack: a set token (or
// an expired deadline) must stop a scalar or ensemble run at the next
// Newton-iteration / time-step boundary and surface as JobInterrupted —
// never as a convergence failure, and never swallowed by the recovery
// ladder's catch (const Error&) degrade handlers.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "base/job_control.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/ensemble.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

void buildDivider(Circuit& c) {
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 1.2);
  c.add<Resistor>("r1", a, b, 1000.0);
  c.add<Resistor>("r2", b, kGround, 1000.0);
  c.add<Capacitor>("cb", b, kGround, 1e-13);
}

SimOptions withJob(const std::shared_ptr<JobControl>& job) {
  SimOptions opts;
  opts.job_control = job;
  return opts;
}

TEST(JobInterrupt, PreCancelledOpStopsBeforeOneNewtonIteration) {
  Circuit c;
  buildDivider(c);
  auto job = std::make_shared<JobControl>();
  Simulator sim(c, withJob(job));
  job->cancel();
  try {
    sim.solveOp();
    FAIL() << "expected JobInterrupted";
  } catch (const JobInterrupted& e) {
    EXPECT_EQ(e.reason(), JobInterruptReason::Cancelled);
    // The token is observed at an iteration boundary, so the stage is
    // one of the solver's named checkpoints, not an empty string.
    EXPECT_FALSE(e.stage().empty());
    EXPECT_NE(std::string(e.what()).find("cancelled"), std::string::npos);
  }
}

TEST(JobInterrupt, PreCancelledTransientThrows) {
  Circuit c;
  buildDivider(c);
  auto job = std::make_shared<JobControl>();
  Simulator sim(c, withJob(job));
  job->cancel();
  EXPECT_THROW(sim.transient(1e-9, 1e-11), JobInterrupted);
}

TEST(JobInterrupt, ExpiredDeadlineStopsTransient) {
  Circuit c;
  buildDivider(c);
  auto job = std::make_shared<JobControl>();
  Simulator sim(c, withJob(job));
  job->setDeadline(-1.0);  // already past before the first step
  try {
    sim.transient(1e-9, 1e-11);
    FAIL() << "expected JobInterrupted";
  } catch (const JobInterrupted& e) {
    EXPECT_EQ(e.reason(), JobInterruptReason::DeadlineExpired);
    EXPECT_GE(e.elapsedSeconds(), 0.0);
  }
}

TEST(JobInterrupt, FutureDeadlineLetsTheRunFinish) {
  Circuit c;
  buildDivider(c);
  auto job = std::make_shared<JobControl>();
  Simulator sim(c, withJob(job));
  job->setDeadline(3600.0);
  const auto tr = sim.transient(1e-9, 1e-11);
  EXPECT_NEAR(tr.time().back(), 1e-9, 1e-15);
}

TEST(JobInterrupt, EnsemblePreCancelledOpThrows) {
  Circuit c;
  buildDivider(c);
  auto job = std::make_shared<JobControl>();
  EnsembleSimulator ens(c, 4, withJob(job));
  job->cancel();
  EXPECT_THROW(ens.solveOp(), JobInterrupted);
}

TEST(JobInterrupt, EnsemblePreCancelledTransientThrows) {
  Circuit c;
  buildDivider(c);
  auto job = std::make_shared<JobControl>();
  EnsembleSimulator ens(c, 2, withJob(job));
  job->cancel();
  EXPECT_THROW(ens.transient(1e-9, 1e-11), JobInterrupted);
}

TEST(JobInterrupt, InterruptionIsNotSwallowedByErrorHandlers) {
  // The degrade-don't-abort paths catch `const Error&` around solver
  // calls; an interruption must fly past such a handler untouched.
  Circuit c;
  buildDivider(c);
  auto job = std::make_shared<JobControl>();
  Simulator sim(c, withJob(job));
  job->cancel();
  bool swallowed = false;
  bool surfaced = false;
  try {
    try {
      sim.solveOp();
    } catch (const Error&) {
      swallowed = true;  // would mask the cancellation — must not happen
    }
  } catch (const JobInterrupted&) {
    surfaced = true;
  }
  EXPECT_FALSE(swallowed);
  EXPECT_TRUE(surfaced);
}

TEST(JobInterrupt, NoJobControlRunsUnaffected) {
  Circuit c;
  buildDivider(c);
  Simulator sim(c);
  EXPECT_NO_THROW(sim.solveOp());
}

}  // namespace
}  // namespace vls
