// Integration-accuracy property tests: the adaptive trapezoidal engine
// against closed-form linear-circuit responses over a parameter sweep.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "numeric/interpolation.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

struct RcCase {
  double r;
  double c;
};

class RcAccuracyTest : public ::testing::TestWithParam<RcCase> {};

TEST_P(RcAccuracyTest, StepResponseWithinTolerance) {
  const auto [r, cap] = GetParam();
  const double tau = r * cap;
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.rise = p.fall = tau * 1e-5;
  p.width = tau * 100;
  ckt.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  ckt.add<Resistor>("r", a, b, r);
  ckt.add<Capacitor>("c", b, kGround, cap);
  Simulator sim(ckt);
  const auto tr = sim.transient(5.0 * tau, tau / 20.0);
  const Signal vb = tr.node("b");
  for (double mult : {0.3, 1.0, 2.0, 4.0}) {
    const double expect = 1.0 - std::exp(-mult);
    EXPECT_NEAR(interpLinear(vb.time, vb.value, mult * tau), expect, 6e-3)
        << "R=" << r << " C=" << cap << " t/tau=" << mult;
  }
}

INSTANTIATE_TEST_SUITE_P(TimeConstants, RcAccuracyTest,
                         ::testing::Values(RcCase{1e3, 1e-12},   // 1 ns
                                           RcCase{1e4, 1e-12},   // 10 ns
                                           RcCase{1e2, 1e-15},   // 0.1 ps-class
                                           RcCase{1e6, 1e-9},    // 1 ms
                                           RcCase{50.0, 2e-12}));

class SineTrackingTest : public ::testing::TestWithParam<double> {};

TEST_P(SineTrackingTest, RcLowPassGainAndPhase) {
  // Drive RC with a sine at f; compare steady-state amplitude against
  // |H| = 1/sqrt(1+(2 pi f tau)^2).
  const double freq = GetParam();
  const double r = 1e3;
  const double cap = 1e-12;
  const double tau = r * cap;
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  SinSpec s;
  s.amplitude = 1.0;
  s.freq = freq;
  ckt.add<VoltageSource>("v", a, kGround, Waveform::sine(s));
  ckt.add<Resistor>("r", a, b, r);
  ckt.add<Capacitor>("c", b, kGround, cap);
  Simulator sim(ckt);
  const double t_stop = 10.0 / freq + 10.0 * tau;
  Simulator sim2(ckt);
  const auto tr = sim2.transient(t_stop, 1.0 / (freq * 60.0));
  const Signal vb = tr.node("b");
  // Amplitude over the last two periods.
  const double t0 = t_stop - 2.0 / freq;
  double amp = 0.0;
  for (size_t i = 0; i < vb.time.size(); ++i) {
    if (vb.time[i] >= t0) amp = std::max(amp, std::fabs(vb.value[i]));
  }
  const double w_tau = 2.0 * M_PI * freq * tau;
  const double expect = 1.0 / std::sqrt(1.0 + w_tau * w_tau);
  EXPECT_NEAR(amp, expect, expect * 0.05 + 5e-3) << "f=" << freq;
}

INSTANTIATE_TEST_SUITE_P(Frequencies, SineTrackingTest,
                         ::testing::Values(1e7, 1e8, 1.59e8, 1e9));

TEST(TransientAccuracy, RlcRingdownFrequencyAndDecay) {
  // Series RLC: R=20, L=1uH, C=1pF -> f0 ~ 159 MHz, Q ~ 50.
  Circuit ckt;
  const NodeId a = ckt.node("a");
  const NodeId b = ckt.node("b");
  ckt.add<Capacitor>("c", a, kGround, 1e-12, 1.0, true);
  ckt.add<Resistor>("r", a, b, 20.0);
  ckt.add<Inductor>("l", b, kGround, 1e-6);
  Simulator sim(ckt);
  const auto tr = sim.transient(30e-9, 3e-11);
  const Signal va = tr.node("a");
  const auto zeros = allCrossings(va.time, va.value, 0.0, CrossDir::Rising, 1e-9);
  ASSERT_GE(zeros.size(), 3u);
  const double period = zeros[2] - zeros[1];
  const double f_meas = 1.0 / period;
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(1e-6 * 1e-12));
  EXPECT_NEAR(f_meas, f0, f0 * 0.02);
  // Envelope decay: alpha = R/(2L) = 1e7 -> e-fold in 100 ns; at 30 ns
  // amplitude should still exceed 0.6.
  double late_amp = 0.0;
  for (size_t i = 0; i < va.time.size(); ++i) {
    if (va.time[i] > 25e-9) late_amp = std::max(late_amp, std::fabs(va.value[i]));
  }
  EXPECT_GT(late_amp, 0.55);
  EXPECT_LT(late_amp, 1.0);
}

}  // namespace
}  // namespace vls
