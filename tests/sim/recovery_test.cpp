#include "sim/recovery.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "cells/gates.hpp"
#include "circuit/circuit.hpp"
#include "devices/diode.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/ensemble.hpp"
#include "sim/fault_injection.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

SimOptions withFault(FaultSpec spec) {
  SimOptions opts;
  opts.fault_injector = std::make_shared<FaultInjector>(spec);
  return opts;
}

// Inverter biased at its switching threshold: nonlinear but solvable by
// every ladder rung, so the rescue stage is chosen by the fault mask.
void buildInverterOp(Circuit& c) {
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.6);
  buildInverter(c, "x", in, out, vdd);
}

// DC-driven RC: flat transient, so any timestep drama is injected.
void buildRc(Circuit& c) {
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("cap", b, kGround, 1e-12);
}

TEST(RecoverySchedules, GminLadderSpansStartToOperatingGmin) {
  const RecoveryPolicy policy;
  const std::vector<double> s = RecoveryEngine::gminSchedule(policy, 1e-12);
  ASSERT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.front(), policy.gmin_start);
  EXPECT_DOUBLE_EQ(s.back(), 1e-12);
  EXPECT_LE(s.size(), static_cast<size_t>(policy.gmin_steps) + 1);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_LT(s[i], s[i - 1]);
}

TEST(RecoverySchedules, SourceRampEndsAtUnity) {
  const RecoveryPolicy policy;
  const std::vector<double> s = RecoveryEngine::sourceSchedule(policy);
  ASSERT_EQ(s.size(), static_cast<size_t>(policy.source_steps));
  EXPECT_NEAR(s.front(), 1.0 / policy.source_steps, 1e-15);
  EXPECT_DOUBLE_EQ(s.back(), 1.0);
  for (size_t i = 1; i < s.size(); ++i) EXPECT_GT(s[i], s[i - 1]);
}

TEST(Recovery, GminRungRescuesInjectedDirectFailure) {
  Circuit ref_c;
  buildInverterOp(ref_c);
  Simulator ref(ref_c);
  const std::vector<double> expected = ref.solveOp();

  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton);
  Simulator sim(c, withFault(spec));
  const std::vector<double> x = sim.solveOp();
  for (size_t i = 0; i < expected.size(); ++i) EXPECT_NEAR(x[i], expected[i], 1e-6);
}

TEST(Recovery, LadderExhaustionThrowsWithFullStageRecord) {
  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;  // every rung of every stage dies
  Simulator sim(c, withFault(spec));
  try {
    sim.solveOp();
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    const ConvergenceDiagnostics& d = e.diagnostics();
    EXPECT_EQ(d.context, "operatingPoint");
    EXPECT_FALSE(d.recovered);
    ASSERT_EQ(d.stages.size(), 4u);
    EXPECT_EQ(d.stages[0].stage, RecoveryStage::DirectNewton);
    EXPECT_EQ(d.stages[1].stage, RecoveryStage::GminStepping);
    EXPECT_EQ(d.stages[2].stage, RecoveryStage::SourceStepping);
    EXPECT_EQ(d.stages[3].stage, RecoveryStage::PseudoTransient);
    for (const StageAttempt& a : d.stages) {
      EXPECT_FALSE(a.converged);
      EXPECT_EQ(a.failure, NewtonFailureReason::InjectedFault);
      EXPECT_FALSE(a.injected_fault.empty());
    }
    EXPECT_EQ(d.lastStageName(), "pseudo-transient");
    EXPECT_NE(std::string(e.what()).find("failed to converge"), std::string::npos);
  }
}

TEST(Recovery, DisabledStagesAreSkipped) {
  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  SimOptions opts = withFault(spec);
  opts.recovery.gmin_stepping = false;
  opts.recovery.source_stepping = false;
  opts.recovery.pseudo_transient = false;
  Simulator sim(c, opts);
  try {
    sim.solveOp();
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    ASSERT_EQ(e.diagnostics().stages.size(), 1u);
    EXPECT_EQ(e.diagnostics().stages[0].stage, RecoveryStage::DirectNewton);
  }
}

TEST(Recovery, TransientOpRecoveryIsRecorded) {
  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton);
  spec.max_fires = 1;
  Simulator sim(c, withFault(spec));
  const TransientResult r = sim.transient(1e-12, 1e-12);
  ASSERT_GE(r.recovery_events.size(), 1u);
  const ConvergenceDiagnostics& d = r.recovery_events.front();
  EXPECT_EQ(d.context, "transient operating point");
  EXPECT_TRUE(d.recovered);
  ASSERT_EQ(d.stages.size(), 2u);
  EXPECT_EQ(d.stages[0].failure, NewtonFailureReason::InjectedFault);
  EXPECT_EQ(d.stages[1].stage, RecoveryStage::GminStepping);
  EXPECT_TRUE(d.stages[1].converged);
}

TEST(Recovery, FaultInsideGminRungEscalatesToSourceStepping) {
  // Two firings: one kills direct Newton, the second fires *inside* the
  // first gmin rung. The ladder must escalate once more and land the
  // solve in source stepping.
  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton) |
                    recoveryStageBit(RecoveryStage::GminStepping);
  spec.max_fires = 2;
  Simulator sim(c, withFault(spec));
  const TransientResult r = sim.transient(1e-12, 1e-12);
  ASSERT_GE(r.recovery_events.size(), 1u);
  const ConvergenceDiagnostics& d = r.recovery_events.front();
  EXPECT_TRUE(d.recovered);
  ASSERT_EQ(d.stages.size(), 3u);
  EXPECT_EQ(d.stages[1].stage, RecoveryStage::GminStepping);
  EXPECT_EQ(d.stages[1].failure, NewtonFailureReason::InjectedFault);
  EXPECT_EQ(d.stages[2].stage, RecoveryStage::SourceStepping);
  EXPECT_TRUE(d.stages[2].converged);
}

TEST(Recovery, PseudoTransientIsTheLastResortRung) {
  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton) |
                    recoveryStageBit(RecoveryStage::GminStepping) |
                    recoveryStageBit(RecoveryStage::SourceStepping);
  Simulator sim(c, withFault(spec));
  const TransientResult r = sim.transient(1e-12, 1e-12);
  ASSERT_GE(r.recovery_events.size(), 1u);
  const ConvergenceDiagnostics& d = r.recovery_events.front();
  EXPECT_TRUE(d.recovered);
  ASSERT_EQ(d.stages.size(), 4u);
  EXPECT_EQ(d.stages.back().stage, RecoveryStage::PseudoTransient);
  EXPECT_TRUE(d.stages.back().converged);
  EXPECT_GT(d.stages.back().rungs, 1);
}

TEST(Recovery, SolveOpAtRunsTheLadder) {
  // Satellite: solveOpAt used to throw on the first Newton failure; it
  // must now escalate like every other DC entry point.
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v", a, kGround, Waveform::pwl({0.0, 1e-9}, {0.0, 2.0}));
  c.add<Resistor>("r", a, kGround, 1000.0);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton);
  spec.max_fires = 1;
  Simulator sim(c, withFault(spec));
  const auto x = sim.solveOpAt(0.5e-9, std::vector<double>(sim.numUnknowns(), 0.0));
  EXPECT_NEAR(x[a], 1.0, 1e-9);
}

TEST(Recovery, DcSweepRecordsRescuedPoints) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  auto& vs = c.add<VoltageSource>("v", a, kGround, 0.0);
  c.add<Resistor>("r", a, b, 100.0);
  c.add<Diode>("d", b, kGround, DiodeParams{});
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton);
  Simulator sim(c, withFault(spec));
  const DcSweepResult r = sim.dcSweep(vs, 0.0, 1.0, 0.5);
  EXPECT_TRUE(r.allConverged());
  ASSERT_EQ(r.diagnostics.size(), 3u);  // every warm start was sabotaged
  for (size_t k = 0; k < r.diagnostics.size(); ++k) {
    EXPECT_EQ(r.diagnostics[k].point_index, k);
    const ConvergenceDiagnostics& d = r.diagnostics[k].diagnostics;
    EXPECT_TRUE(d.recovered);
    EXPECT_EQ(d.lastStageName(), "gmin-stepping");
    EXPECT_EQ(d.stages.front().failure, NewtonFailureReason::InjectedFault);
  }
}

TEST(Recovery, MidTransientUnderflowRescuedByGminLadder) {
  Circuit c;
  buildRc(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.arm_time = 1e-9;
  spec.stage_mask = recoveryStageBit(RecoveryStage::TransientStep);
  spec.max_fires = 30;
  Simulator sim(c, withFault(spec));
  const TransientResult r = sim.transient(2e-9, 1e-10);
  ASSERT_GE(r.recovery_events.size(), 1u);
  const ConvergenceDiagnostics& d = r.recovery_events.front();
  EXPECT_EQ(d.context, "transient");
  EXPECT_TRUE(d.recovered);
  EXPECT_GT(d.time, 0.5e-9);
  EXPECT_GT(d.last_dt, 0.0);
  ASSERT_EQ(d.stages.size(), 2u);
  EXPECT_EQ(d.stages[0].stage, RecoveryStage::TransientStep);
  EXPECT_EQ(d.stages[0].failure, NewtonFailureReason::InjectedFault);
  EXPECT_EQ(d.stages[1].stage, RecoveryStage::GminStepping);
  EXPECT_TRUE(d.stages[1].converged);
  // The run itself must complete with the right physics.
  const Signal vb = r.node("b");
  EXPECT_NEAR(vb.value.back(), 1.0, 1e-3);
}

TEST(Recovery, TransientUnderflowCarriesDiagnosticsPayload) {
  Circuit c;
  buildRc(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.arm_time = 1e-9;
  spec.stage_mask = recoveryStageBit(RecoveryStage::TransientStep) |
                    recoveryStageBit(RecoveryStage::GminStepping);
  Simulator sim(c, withFault(spec));
  try {
    sim.transient(2e-9, 1e-10);
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    EXPECT_NE(std::string(e.what()).find("underflow"), std::string::npos);
    const ConvergenceDiagnostics& d = e.diagnostics();
    EXPECT_EQ(d.context, "transient");
    EXPECT_FALSE(d.recovered);
    EXPECT_GT(d.time, 0.5e-9);   // failure time
    EXPECT_GT(d.last_dt, 0.0);   // last successfully accepted dt
    ASSERT_EQ(d.stages.size(), 2u);
    EXPECT_EQ(d.stages[0].stage, RecoveryStage::TransientStep);
    EXPECT_EQ(d.stages[1].stage, RecoveryStage::GminStepping);
    EXPECT_EQ(d.stages[1].failure, NewtonFailureReason::InjectedFault);
  }
}

// --- ensemble lane salvage & attribution ------------------------------

TEST(EnsembleRecovery, LaneFaultSalvagedByGminLadder) {
  Circuit ref_c;
  buildInverterOp(ref_c);
  Simulator ref(ref_c);
  const std::vector<double> expected = ref.solveOp();

  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.stage_mask = recoveryStageBit(RecoveryStage::DirectNewton);
  spec.lane = 1;
  EnsembleSimulator ens(c, 3, withFault(spec));
  const std::vector<double> soa = ens.solveOp();
  EXPECT_EQ(ens.aliveLaneCount(), 3u);
  EXPECT_FALSE(ens.laneFailure(1).valid);
  for (size_t l = 0; l < 3; ++l) {
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_NEAR(soa[i * 3 + l], expected[i], 1e-6) << "unknown " << i << " lane " << l;
    }
  }
}

TEST(EnsembleRecovery, ExhaustedLaneRecordsStageAndReason) {
  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;  // all ensemble stages for this lane
  spec.lane = 1;
  EnsembleSimulator ens(c, 3, withFault(spec));
  const std::vector<double> soa = ens.solveOp();
  EXPECT_EQ(ens.aliveLaneCount(), 2u);
  EXPECT_TRUE(ens.laneFailed(1));
  const LaneFailure& f = ens.laneFailure(1);
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.stage, RecoveryStage::SourceStepping);
  EXPECT_EQ(f.reason, NewtonFailureReason::InjectedFault);
  EXPECT_FALSE(f.message.empty());
  // Siblings still solved.
  Circuit ref_c;
  buildInverterOp(ref_c);
  Simulator ref(ref_c);
  const std::vector<double> expected = ref.solveOp();
  EXPECT_NEAR(soa[ref_c.node("out") * 3 + 0], expected[ref_c.node("out")], 1e-6);
}

TEST(EnsembleRecovery, LanePivotFaultNamesCollapsedNode) {
  Circuit c;
  buildInverterOp(c);
  FaultSpec spec;
  spec.zero_pivot_node = "out";
  spec.lane = 0;
  EnsembleSimulator ens(c, 2, withFault(spec));
  ens.solveOp();
  EXPECT_TRUE(ens.laneFailed(0));
  EXPECT_FALSE(ens.laneFailed(1));
  const LaneFailure& f = ens.laneFailure(0);
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.reason, NewtonFailureReason::SingularPivot);
  EXPECT_EQ(f.node, "out");
}

TEST(EnsembleRecovery, MidTransientLaneDropRecordsTransientStage) {
  Circuit c;
  buildRc(c);
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.arm_time = 1e-9;
  spec.stage_mask = recoveryStageBit(RecoveryStage::TransientStep);
  spec.lane = 1;
  EnsembleSimulator ens(c, 2, withFault(spec));
  ens.transient(2e-9, 1e-10);
  EXPECT_TRUE(ens.laneFailed(1));
  EXPECT_FALSE(ens.laneFailed(0));
  const LaneFailure& f = ens.laneFailure(1);
  ASSERT_TRUE(f.valid);
  EXPECT_EQ(f.stage, RecoveryStage::TransientStep);
  EXPECT_EQ(f.reason, NewtonFailureReason::InjectedFault);
  // The surviving lane finishes the run with the right physics.
  const TransientResult lane0 = ens.laneResult(0);
  EXPECT_NEAR(lane0.node("b").value.back(), 1.0, 1e-3);
}

TEST(Recovery, SingularPivotAttributionSurvivesReordering) {
  // A zeroed column must be blamed on the same node whether or not the
  // LU runs behind a fill-reducing column permutation: singular-column
  // reports are always in original (un-permuted) coordinates.
  for (const LuOrdering ordering : {LuOrdering::Natural, LuOrdering::MinDegree}) {
    Circuit c;
    buildInverterOp(c);
    FaultSpec spec;
    spec.zero_pivot_node = "out";
    SimOptions opts = withFault(spec);
    opts.lu_ordering = ordering;
    Simulator sim(c, opts);
    try {
      sim.solveOp();
      FAIL() << "expected RecoveryError with ordering " << luOrderingName(ordering);
    } catch (const RecoveryError& e) {
      const ConvergenceDiagnostics& d = e.diagnostics();
      ASSERT_FALSE(d.stages.empty());
      for (const StageAttempt& a : d.stages) {
        EXPECT_EQ(a.failure, NewtonFailureReason::SingularPivot) << luOrderingName(ordering);
        EXPECT_EQ(a.singular_node, "out") << luOrderingName(ordering);
      }
    }
  }
}

}  // namespace
}  // namespace vls
