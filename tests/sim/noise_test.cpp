// Noise analysis against closed-form results: kT/C noise of an RC
// filter, 4kTR of a divider, shot noise of a biased diode.
#include <gtest/gtest.h>

#include <cmath>

#include "base/units.hpp"
#include "circuit/circuit.hpp"
#include "devices/diode.hpp"
#include "devices/model_library.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Noise, BadArgumentsThrow) {
  Circuit c;
  c.add<Resistor>("r", c.node("a"), kGround, 1.0);
  Simulator sim(c);
  EXPECT_THROW(sim.noise("a", -1.0, 1e6), InvalidInputError);
  EXPECT_THROW(sim.noise("zzz", 1.0, 1e6), InvalidInputError);
}

TEST(Noise, ResistorSpotNoiseMatches4kTR) {
  // Output directly across R (driven by a noiseless ideal source is
  // absent; the node floats through R to ground => transfer = R).
  Circuit c;
  const NodeId a = c.node("a");
  c.add<Resistor>("r", a, kGround, 10e3);
  Simulator sim(c);
  const NoiseResult res = sim.noise("a", 1e3, 1e3, 1);
  // Spot PSD: i_n^2 * R^2 = (4kT/R) R^2 = 4kTR.
  const double expect = 4.0 * kBoltzmann * 300.15 * 10e3;
  ASSERT_FALSE(res.output_psd.empty());
  EXPECT_NEAR(res.output_psd.front(), expect, expect * 1e-3);
}

TEST(Noise, RcFilterIntegratesToKTOverC) {
  // The classic: total output noise of R-C is kT/C, independent of R.
  for (double r : {1e3, 100e3}) {
    Circuit c;
    const NodeId a = c.node("a");
    const NodeId b = c.node("b");
    c.add<VoltageSource>("v", a, kGround, 0.0);  // noiseless bias
    c.add<Resistor>("r", a, b, r);
    const double cap = 1e-12;
    c.add<Capacitor>("cb", b, kGround, cap);
    Simulator sim(c);
    // Band must cover well past the corner 1/(2 pi R C).
    const NoiseResult res = sim.noise("b", 1e2, 1e13, 8);
    const double expect = kBoltzmann * 300.15 / cap;
    EXPECT_NEAR(res.total_v2, expect, expect * 0.05) << "R=" << r;
  }
}

TEST(Noise, DividerContributionsSplit) {
  // Two equal resistors to a noiseless rail: both contribute equally.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r1", a, b, 10e3);
  c.add<Resistor>("r2", b, kGround, 10e3);
  Simulator sim(c);
  const NoiseResult res = sim.noise("b", 1e3, 1e6, 2);
  ASSERT_EQ(res.contributions.size(), 2u);
  EXPECT_NEAR(res.contributions[0].v2, res.contributions[1].v2,
              res.contributions[0].v2 * 1e-6);
}

TEST(Noise, DiodeShotNoiseScalesWithBias) {
  auto spot = [](double bias_v) {
    Circuit c;
    const NodeId a = c.node("a");
    const NodeId k = c.node("k");
    c.add<VoltageSource>("v", a, kGround, bias_v);
    c.add<Resistor>("r", a, k, 100e3);
    c.add<Diode>("d", k, kGround, DiodeParams{});
    Simulator sim(c);
    const NoiseResult res = sim.noise("k", 1e3, 1e3, 1);
    return res.output_psd.front();
  };
  // Stronger bias -> more shot current but much lower diode impedance:
  // output-referred spot noise DROPS with bias (r_d = nVt/I dominates).
  EXPECT_GT(spot(0.7), spot(2.0));
}

TEST(Noise, MosfetAmplifierFlickerCorner) {
  // Common-source stage: flicker dominates at low f, thermal at high f.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId g = c.node("g");
  const NodeId d = c.node("d");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  c.add<VoltageSource>("vg", g, kGround, 0.55);
  c.add<Resistor>("rl", vdd, d, 20e3);
  MosGeometry geom;
  geom.w = 1e-6;
  geom.l = 100e-9;
  c.add<Mosfet>("m1", d, g, kGround, kGround, nmos90(), geom);
  Simulator sim(c);
  const NoiseResult res = sim.noise("d", 1e3, 1e9, 4);
  // PSD at 1 kHz must exceed PSD at 100 MHz (flicker tail).
  EXPECT_GT(res.output_psd.front(), res.output_psd.back());
  // The flicker contribution of m1 is present and labelled.
  bool found_flicker = false;
  for (const auto& contrib : res.contributions) {
    if (contrib.label == "m1.flicker") found_flicker = true;
  }
  EXPECT_TRUE(found_flicker);
}

TEST(Noise, ContributionsSumToTotal) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r1", a, b, 5e3);
  c.add<Resistor>("r2", b, kGround, 7e3);
  c.add<Capacitor>("cb", b, kGround, 1e-12);
  Simulator sim(c);
  const NoiseResult res = sim.noise("b", 1e3, 1e12, 6);
  double sum = 0.0;
  for (const auto& contrib : res.contributions) sum += contrib.v2;
  EXPECT_NEAR(sum, res.total_v2, res.total_v2 * 1e-12);
  EXPECT_GT(res.rms(), 0.0);
  EXPECT_NEAR(res.rms() * res.rms(), res.total_v2, res.total_v2 * 1e-12);
}

}  // namespace
}  // namespace vls
