#include "sim/ensemble.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "base/error.hpp"
#include "cells/gates.hpp"
#include "circuit/circuit.hpp"
#include "devices/mosfet.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "numeric/interpolation.hpp"
#include "numeric/lanes.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

// Resistive bridge shared by the linear tests.
void buildBridge(Circuit& c) {
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId d = c.node("d");
  c.add<VoltageSource>("v", a, kGround, 10.0);
  c.add<Resistor>("r1", a, b, 100.0);
  c.add<Resistor>("r2", b, kGround, 100.0);
  c.add<Resistor>("r3", a, d, 200.0);
  c.add<Resistor>("r4", d, kGround, 200.0);
  c.add<Resistor>("r5", b, d, 50.0);
}

TEST(Ensemble, RejectsBadLaneCount) {
  Circuit c;
  buildBridge(c);
  EXPECT_THROW(EnsembleSimulator(c, 0, SimOptions{}), InvalidInputError);
  EXPECT_THROW(EnsembleSimulator(c, kMaxLanes + 1, SimOptions{}), InvalidInputError);
}

TEST(Ensemble, RejectsLaneUnsafeDevice) {
  // Inductors carry per-instance transient state but no lane
  // implementation, so the per-lane scalar fallback would alias one
  // history across lanes: the constructor must refuse.
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Inductor>("l", a, kGround, 1e-9);
  EXPECT_THROW(EnsembleSimulator(c, 2, SimOptions{}), InvalidInputError);
}

TEST(Ensemble, OpMatchesScalarLinear) {
  Circuit c;
  buildBridge(c);
  Simulator scalar(c);
  const std::vector<double> ref = scalar.solveOp();

  EnsembleSimulator ens(c, 4, SimOptions{});
  const std::vector<double> soa = ens.solveOp();
  ASSERT_EQ(ens.aliveLaneCount(), 4u);
  for (size_t l = 0; l < 4; ++l) {
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_NEAR(soa[i * 4 + l], ref[i], 1e-9) << "unknown " << i << " lane " << l;
    }
  }
}

TEST(Ensemble, OpMatchesScalarInverter) {
  // Nonlinear OP near the switching threshold: every identical lane
  // must land on the scalar operating point.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.6);
  buildInverter(c, "x", in, out, vdd);

  Simulator scalar(c);
  const std::vector<double> ref = scalar.solveOp();

  EnsembleSimulator ens(c, 3, SimOptions{});
  const std::vector<double> soa = ens.solveOp();
  ASSERT_EQ(ens.aliveLaneCount(), 3u);
  for (size_t l = 0; l < 3; ++l) {
    EXPECT_NEAR(soa[out * 3 + l], ref[out], 1e-6) << "lane " << l;
  }
}

TEST(Ensemble, TransientMatchesScalarRc) {
  // Linear RC charge: with identical lanes the lockstep engine takes
  // the same adaptive steps as the scalar reference, so the time axes
  // and waveforms agree to solver precision.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  PulseSpec p;
  p.v2 = 1.0;
  p.delay = 0.5e-9;
  p.width = 1e-6;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("cb", b, kGround, 1e-12);

  Simulator scalar(c);
  const TransientResult ref = scalar.transient(8e-9, 4e-11);

  EnsembleSimulator ens(c, 2, SimOptions{});
  ens.transient(8e-9, 4e-11);
  ASSERT_EQ(ens.aliveLaneCount(), 2u);
  ASSERT_EQ(ens.steps(), ref.time().size());
  for (size_t l = 0; l < 2; ++l) {
    const TransientResult lane = ens.laneResult(l);
    ASSERT_EQ(lane.time().size(), ref.time().size());
    for (size_t s = 0; s < ref.time().size(); ++s) {
      EXPECT_NEAR(lane.time()[s], ref.time()[s], 1e-18);
      EXPECT_NEAR(lane.solution(s)[b], ref.solution(s)[b], 1e-9);
    }
  }
}

TEST(Ensemble, PerturbedLanesTrackPerLaneScalar) {
  // Install a different NMOS width per lane and check each lane settles
  // where a scalar Simulator with the same geometry settles. This is
  // the Monte-Carlo contract at device granularity.
  const double widths[3] = {-20e-9, 0.0, 20e-9};

  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.55);
  GateHandles inv = buildInverter(c, "x", in, out, vdd);
  Mosfet* nmos = inv.fets[1]->model().type == MosType::Nmos ? inv.fets[1] : inv.fets[0];

  EnsembleSimulator ens(c, 3, SimOptions{});
  auto* state = static_cast<MosfetLaneState*>(ens.laneState(*nmos));
  ASSERT_NE(state, nullptr);
  const MosGeometry base = nmos->geometry();
  for (size_t l = 0; l < 3; ++l) {
    MosGeometry g = base;
    g.delta_w = widths[l];
    state->setGeometry(l, g);
  }
  const std::vector<double> soa = ens.solveOp();
  ASSERT_EQ(ens.aliveLaneCount(), 3u);

  std::vector<double> lane_out(3);
  for (size_t l = 0; l < 3; ++l) {
    MosGeometry g = base;
    g.delta_w = widths[l];
    nmos->setGeometry(g);
    Simulator scalar(c);
    const std::vector<double> ref = scalar.solveOp();
    lane_out[l] = soa[out * 3 + l];
    EXPECT_NEAR(lane_out[l], ref[out], 1e-6) << "lane " << l;
  }
  nmos->setGeometry(base);
  // The perturbation must actually move the operating point.
  EXPECT_GT(std::abs(lane_out[0] - lane_out[2]), 1e-3);
}

TEST(Ensemble, BypassSkipsQuietDevicesAndPreservesWaveforms) {
  // Lane-widened SPICE bypass: with enable_bypass the assembler must
  // actually skip quiet-device model evaluations (the pulse leaves the
  // inverter idle most of the run) without moving the waveforms beyond
  // bypass-tolerance scale. Off by default.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  PulseSpec p;
  p.v2 = 1.2;
  p.delay = 0.5e-9;
  p.width = 1.5e-9;
  p.rise = 50e-12;
  p.fall = 50e-12;
  c.add<VoltageSource>("vin", in, kGround, Waveform::pulse(p));
  buildInverter(c, "x", in, out, vdd);
  c.add<Capacitor>("cl", out, kGround, 2e-15);

  EnsembleSimulator plain(c, 2, SimOptions{});
  plain.transient(4e-9, 2e-11);
  ASSERT_EQ(plain.aliveLaneCount(), 2u);
  EXPECT_EQ(plain.bypassedEvaluations(), 0u);

  SimOptions opts;
  opts.enable_bypass = true;
  opts.bypass_settle_iterations = 1;
  EnsembleSimulator bypassed(c, 2, opts);
  bypassed.transient(4e-9, 2e-11);
  ASSERT_EQ(bypassed.aliveLaneCount(), 2u);
  EXPECT_GT(bypassed.bypassedEvaluations(), 0u);

  const Signal ref = plain.laneResult(0).node("out");
  const Signal got = bypassed.laneResult(1).node("out");
  for (double t = 0.0; t <= 4e-9; t += 0.05e-9) {
    EXPECT_NEAR(interpLinear(got.time, got.value, t), interpLinear(ref.time, ref.value, t), 1e-4)
        << "t = " << t;
  }
}

TEST(Ensemble, SolveOpAtEvaluatesSourcesAtTime) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v", a, kGround, Waveform::pwl({0.0, 1e-9}, {0.0, 2.0}));
  c.add<Resistor>("r", a, kGround, 1000.0);
  EnsembleSimulator ens(c, 2, SimOptions{});
  const std::vector<double> x =
      ens.solveOpAt(0.5e-9, std::vector<double>(ens.numUnknowns() * 2, 0.0));
  EXPECT_NEAR(x[a * 2 + 0], 1.0, 1e-9);
  EXPECT_NEAR(x[a * 2 + 1], 1.0, 1e-9);
}

}  // namespace
}  // namespace vls
