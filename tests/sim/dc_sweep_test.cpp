#include <gtest/gtest.h>

#include <cmath>

#include "cells/gates.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(DcSweep, LinearRampOnDivider) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  auto& v = c.add<VoltageSource>("v", a, kGround, 0.0);
  c.add<Resistor>("r1", a, b, 1000.0);
  c.add<Resistor>("r2", b, kGround, 1000.0);
  Simulator sim(c);
  const auto res = sim.dcSweep(v, 0.0, 2.0, 0.5);
  ASSERT_EQ(res.sweep.size(), 5u);
  const auto vb = res.node("b");
  for (size_t i = 0; i < res.sweep.size(); ++i) {
    EXPECT_NEAR(vb[i], res.sweep[i] / 2.0, 1e-9);
  }
}

TEST(DcSweep, DescendingDirection) {
  Circuit c;
  const NodeId a = c.node("a");
  auto& v = c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 100.0);
  Simulator sim(c);
  const auto res = sim.dcSweep(v, 1.0, 0.0, 0.25);
  ASSERT_EQ(res.sweep.size(), 5u);
  EXPECT_DOUBLE_EQ(res.sweep.front(), 1.0);
  EXPECT_DOUBLE_EQ(res.sweep.back(), 0.0);
}

TEST(DcSweep, RestoresSourceWaveform) {
  Circuit c;
  const NodeId a = c.node("a");
  auto& v = c.add<VoltageSource>("v", a, kGround, 0.7);
  c.add<Resistor>("r", a, kGround, 100.0);
  Simulator sim(c);
  sim.dcSweep(v, 0.0, 1.0, 0.5);
  EXPECT_DOUBLE_EQ(v.waveform().at(0.0), 0.7);
}

TEST(DcSweep, InverterVtcIsMonotoneAndRailToRail) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  auto& vin = c.add<VoltageSource>("vin", in, kGround, 0.0);
  buildInverter(c, "x", in, out, vdd);
  Simulator sim(c);
  const auto res = sim.dcSweep(vin, 0.0, 1.2, 0.05);
  const auto vout = res.node("out");
  EXPECT_NEAR(vout.front(), 1.2, 2e-3);
  EXPECT_NEAR(vout.back(), 0.0, 2e-3);
  for (size_t i = 1; i < vout.size(); ++i) {
    EXPECT_LE(vout[i], vout[i - 1] + 1e-6) << "non-monotone at " << i;
  }
  // Switching threshold in a sane band (PMOS/NMOS ratioed for ~VDD/2).
  double vm = 0.0;
  for (size_t i = 1; i < vout.size(); ++i) {
    if (vout[i] < res.sweep[i]) {  // crossing v(out) = v(in)
      vm = res.sweep[i];
      break;
    }
  }
  EXPECT_GT(vm, 0.4);
  EXPECT_LT(vm, 0.8);
}

TEST(DcSweep, GainAtMidpointExceedsOne) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  auto& vin = c.add<VoltageSource>("vin", in, kGround, 0.0);
  buildInverter(c, "x", in, out, vdd);
  Simulator sim(c);
  const auto res = sim.dcSweep(vin, 0.4, 0.8, 0.01);
  const auto vout = res.node("out");
  double max_gain = 0.0;
  for (size_t i = 1; i < vout.size(); ++i) {
    max_gain = std::max(max_gain, -(vout[i] - vout[i - 1]) / 0.01);
  }
  EXPECT_GT(max_gain, 4.0);  // regenerative digital gain
}

TEST(DcSweep, BadStepThrows) {
  Circuit c;
  auto& v = c.add<VoltageSource>("v", c.node("a"), kGround, 0.0);
  c.add<Resistor>("r", c.node("a"), kGround, 1.0);
  Simulator sim(c);
  EXPECT_THROW(sim.dcSweep(v, 0.0, 1.0, 0.0), InvalidInputError);
}

}  // namespace
}  // namespace vls
