#include <gtest/gtest.h>

#include <cmath>

#include "cells/gates.hpp"
#include "circuit/circuit.hpp"
#include "devices/diode.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Op, LinearNetwork) {
  // Wheatstone-ish resistive mesh.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId d = c.node("d");
  c.add<VoltageSource>("v", a, kGround, 10.0);
  c.add<Resistor>("r1", a, b, 100.0);
  c.add<Resistor>("r2", b, kGround, 100.0);
  c.add<Resistor>("r3", a, d, 200.0);
  c.add<Resistor>("r4", d, kGround, 200.0);
  c.add<Resistor>("r5", b, d, 50.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  // Balanced bridge: both dividers sit at 5 V, no current through r5.
  EXPECT_NEAR(x[b], 5.0, 1e-9);
  EXPECT_NEAR(x[d], 5.0, 1e-9);
}

TEST(Op, FloatingNodePinnedByGmin) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId fl = c.node("float");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 1000.0);
  c.add<Capacitor>("cf", fl, a, 1e-15);  // only capacitive connection
  Simulator sim(c);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[fl], 0.0, 1e-6);  // gmin ties it to ground in DC
}

TEST(Op, WarmStartMatchesColdStart) {
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  c.add<VoltageSource>("vin", in, kGround, 0.6);
  buildInverter(c, "x", in, out, vdd);
  Simulator sim(c);
  const auto cold = sim.solveOp();
  const auto warm = sim.solveOp(cold);
  for (size_t i = 0; i < cold.size(); ++i) EXPECT_NEAR(cold[i], warm[i], 1e-6);
}

TEST(Op, SolveOpAtEvaluatesSourcesAtTime) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v", a, kGround, Waveform::pwl({0.0, 1e-9}, {0.0, 2.0}));
  c.add<Resistor>("r", a, kGround, 1000.0);
  Simulator sim(c);
  const auto x = sim.solveOpAt(0.5e-9, std::vector<double>(sim.numUnknowns(), 0.0));
  EXPECT_NEAR(x[a], 1.0, 1e-9);
}

TEST(Op, CrossCoupledLatchFindsAStableState) {
  // Two cross-coupled inverters with no input: bistable. Homotopy must
  // land on one valid digital state (not metastable midpoint is not
  // required, but rails must be consistent if reached).
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId q = c.node("q");
  const NodeId qb = c.node("qb");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  buildInverter(c, "x1", q, qb, vdd);
  buildInverter(c, "x2", qb, q, vdd);
  Simulator sim(c);
  const auto x = sim.solveOp();
  // Consistency: q and qb must be complements of the same inverter pair
  // (sum near VDD if digital, or both at the metastable point).
  const double vq = x[q];
  const double vqb = x[qb];
  EXPECT_NEAR(vq + vqb, 1.2, 0.4);
}

TEST(Op, SeriesDiodeChainNeedsHomotopy) {
  // A stiff exponential chain from a large supply exercises the gmin /
  // source-stepping fallbacks.
  Circuit c;
  NodeId prev = c.node("a");
  c.add<VoltageSource>("v", prev, kGround, 12.0);
  c.add<Resistor>("r", prev, c.node("n0"), 50.0);
  prev = c.node("n0");
  for (int i = 0; i < 6; ++i) {
    const NodeId next = c.node("n" + std::to_string(i + 1));
    c.add<Diode>("d" + std::to_string(i), prev, next, DiodeParams{});
    prev = next;
  }
  c.add<Resistor>("rl", prev, kGround, 10.0);
  Simulator sim(c);
  const auto x = sim.solveOp();
  // Six forward drops of ~0.75-1.0 V each (high current), the rest on R.
  const double chain_drop = x[c.node("n0")] - x[prev];
  EXPECT_GT(chain_drop, 3.5);
  EXPECT_LT(chain_drop, 6.5);
}

TEST(Op, SingularWithoutGminThrows) {
  // Two ideal voltage sources in parallel with different values cannot
  // be satisfied: expect a convergence/numerical error, not a hang.
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v1", a, kGround, 1.0);
  c.add<VoltageSource>("v2", a, kGround, 2.0);
  Simulator sim(c);
  EXPECT_THROW(sim.solveOp(), Error);
}

}  // namespace
}  // namespace vls
