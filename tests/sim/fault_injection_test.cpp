#include "sim/fault_injection.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <memory>

#include "base/error.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

// Linear divider used by the end-to-end injection tests: trivially
// solvable, so any failure is the injector's doing.
void buildDivider(Circuit& c) {
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r1", a, b, 1000.0);
  c.add<Resistor>("r2", b, kGround, 1000.0);
}

TEST(FaultInjector, StageMaskGatesNewtonFault) {
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.stage_mask = recoveryStageBit(RecoveryStage::GminStepping);
  FaultInjector inj(spec);
  // Default stage is DirectNewton: masked out.
  EXPECT_FALSE(inj.shouldFailNewton(0, 0.0));
  EXPECT_EQ(inj.fires(), 0u);
  inj.setStage(RecoveryStage::GminStepping);
  EXPECT_FALSE(inj.shouldFailNewton(1, 0.0));  // wrong iteration
  EXPECT_TRUE(inj.shouldFailNewton(0, 0.0));
  EXPECT_EQ(inj.fires(), 1u);
  inj.setStage(RecoveryStage::SourceStepping);
  EXPECT_FALSE(inj.shouldFailNewton(0, 0.0));
}

TEST(FaultInjector, ArmTimeGatesFiring) {
  FaultSpec spec;
  spec.fail_newton_at_iteration = 2;
  spec.arm_time = 1e-9;
  FaultInjector inj(spec);
  EXPECT_FALSE(inj.shouldFailNewton(2, 0.5e-9));
  EXPECT_TRUE(inj.shouldFailNewton(2, 1.5e-9));
}

TEST(FaultInjector, FiringBudgetDisarms) {
  FaultSpec spec;
  spec.fail_newton_at_iteration = 0;
  spec.max_fires = 2;
  FaultInjector inj(spec);
  EXPECT_TRUE(inj.shouldFailNewton(0, 0.0));
  EXPECT_TRUE(inj.shouldFailNewton(0, 0.0));
  EXPECT_FALSE(inj.shouldFailNewton(0, 0.0));  // budget exhausted
  EXPECT_EQ(inj.fires(), 2u);
  EXPECT_FALSE(inj.describeNewtonFault().empty());
}

TEST(FaultInjector, UnknownStampDeviceThrowsInvalidInput) {
  Circuit c;
  buildDivider(c);
  SimOptions opts;
  FaultSpec spec;
  spec.nan_stamp_device = "no_such_device";
  opts.fault_injector = std::make_shared<FaultInjector>(spec);
  Simulator sim(c, opts);
  EXPECT_THROW(sim.solveOp(), InvalidInputError);
}

TEST(FaultInjector, UnknownPivotNodeThrowsInvalidInput) {
  Circuit c;
  buildDivider(c);
  SimOptions opts;
  FaultSpec spec;
  spec.zero_pivot_node = "no_such_node";
  opts.fault_injector = std::make_shared<FaultInjector>(spec);
  Simulator sim(c, opts);
  EXPECT_THROW(sim.solveOp(), InvalidInputError);
}

TEST(FaultInjector, NanStampDefeatsEveryStageAndNamesNode) {
  // Unlimited NaN stamps poison every ladder rung: the non-finite RHS
  // guard must abort each one and the record must name the stamped row.
  Circuit c;
  buildDivider(c);
  SimOptions opts;
  FaultSpec spec;
  spec.nan_stamp_device = "r2";  // first non-ground terminal: node b
  opts.fault_injector = std::make_shared<FaultInjector>(spec);
  Simulator sim(c, opts);
  try {
    sim.solveOp();
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    const ConvergenceDiagnostics& d = e.diagnostics();
    ASSERT_FALSE(d.stages.empty());
    for (const StageAttempt& a : d.stages) {
      EXPECT_EQ(a.failure, NewtonFailureReason::NonFinite);
      EXPECT_EQ(a.worst_node, "b");
      EXPECT_FALSE(a.injected_fault.empty());
    }
    EXPECT_EQ(d.worstNode(), "b");
    EXPECT_FALSE(d.recovered);
  }
}

TEST(FaultInjector, InfStampAlsoCaughtByGuards) {
  Circuit c;
  buildDivider(c);
  SimOptions opts;
  FaultSpec spec;
  spec.nan_stamp_device = "r2";
  spec.stamp_value = std::numeric_limits<double>::infinity();
  opts.fault_injector = std::make_shared<FaultInjector>(spec);
  Simulator sim(c, opts);
  EXPECT_THROW(sim.solveOp(), RecoveryError);
}

TEST(FaultInjector, SingleFireStampIsRecoveredByLadder) {
  // One NaN stamp kills the direct rung; the gmin rung then runs clean
  // and the solve must land on the unpoisoned answer.
  Circuit c;
  buildDivider(c);
  SimOptions opts;
  FaultSpec spec;
  spec.nan_stamp_device = "r2";
  spec.max_fires = 1;
  auto injector = std::make_shared<FaultInjector>(spec);
  opts.fault_injector = injector;
  Simulator sim(c, opts);
  const auto x = sim.solveOp();
  EXPECT_EQ(injector->fires(), 1u);
  EXPECT_NEAR(x[c.node("b")], 0.5, 1e-9);
}

TEST(FaultInjector, ZeroPivotAttributesSingularNode) {
  Circuit c;
  buildDivider(c);
  SimOptions opts;
  FaultSpec spec;
  spec.zero_pivot_node = "b";
  opts.fault_injector = std::make_shared<FaultInjector>(spec);
  Simulator sim(c, opts);
  try {
    sim.solveOp();
    FAIL() << "expected RecoveryError";
  } catch (const RecoveryError& e) {
    const StageAttempt* last = e.diagnostics().lastAttempt();
    ASSERT_NE(last, nullptr);
    EXPECT_EQ(last->failure, NewtonFailureReason::SingularPivot);
    EXPECT_EQ(last->singular_node, "b");
    EXPECT_EQ(e.diagnostics().worstNode(), "b");
  }
}

TEST(FaultInjector, ZeroPivotSingleFireRecovers) {
  Circuit c;
  buildDivider(c);
  SimOptions opts;
  FaultSpec spec;
  spec.zero_pivot_node = "b";
  spec.max_fires = 1;
  opts.fault_injector = std::make_shared<FaultInjector>(spec);
  Simulator sim(c, opts);
  const auto x = sim.solveOp();
  EXPECT_NEAR(x[c.node("b")], 0.5, 1e-9);
}

}  // namespace
}  // namespace vls
