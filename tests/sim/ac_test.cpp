// AC small-signal analysis against closed-form transfer functions.
#include <gtest/gtest.h>

#include <cmath>

#include "cells/gates.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Ac, BadArgumentsThrow) {
  Circuit c;
  c.add<Resistor>("r", c.node("a"), kGround, 1.0);
  Simulator sim(c);
  EXPECT_THROW(sim.ac(0.0, 1e6), InvalidInputError);
  EXPECT_THROW(sim.ac(1e6, 1e3), InvalidInputError);
}

TEST(Ac, RcLowPassMagnitudeAndPhase) {
  // R=1k, C=1p: f_c = 1/(2 pi RC) ~ 159 MHz.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  auto& v = c.add<VoltageSource>("v", a, kGround, 0.0);
  v.setAcMagnitude(1.0);
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("cb", b, kGround, 1e-12);
  Simulator sim(c);
  const AcResult res = sim.ac(1e6, 1e11, 10);

  const auto freqs = res.frequencies();
  const auto mag = res.magnitude("b");
  const auto ph = res.phase("b");
  const double tau = 1e-9;
  for (size_t i = 0; i < freqs.size(); ++i) {
    const double wt = 2.0 * M_PI * freqs[i] * tau;
    const double expect_mag = 1.0 / std::sqrt(1.0 + wt * wt);
    EXPECT_NEAR(mag[i], expect_mag, expect_mag * 1e-6) << freqs[i];
    EXPECT_NEAR(ph[i], -std::atan(wt), 1e-6) << freqs[i];
  }
  const auto corner = res.cornerFrequency("b");
  ASSERT_TRUE(corner);
  EXPECT_NEAR(*corner, 1.0 / (2.0 * M_PI * tau), 0.03 / (2.0 * M_PI * tau));
}

TEST(Ac, RlcSeriesResonance) {
  // Series RLC driven by AC: current peaks at f0 = 1/(2 pi sqrt(LC)).
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId d = c.node("d");
  auto& v = c.add<VoltageSource>("v", a, kGround, 0.0);
  v.setAcMagnitude(1.0);
  c.add<Resistor>("r", a, b, 10.0);
  c.add<Inductor>("l", b, d, 1e-6);
  c.add<Capacitor>("cc", d, kGround, 1e-12);
  Simulator sim(c);
  const AcResult res = sim.ac(1e7, 1e9, 40);
  // Voltage across the capacitor peaks near f0 with Q = sqrt(L/C)/R = 100.
  const auto freqs = res.frequencies();
  const auto mag = res.magnitude("d");
  size_t peak = 0;
  for (size_t i = 1; i < mag.size(); ++i) {
    if (mag[i] > mag[peak]) peak = i;
  }
  const double f0 = 1.0 / (2.0 * M_PI * std::sqrt(1e-6 * 1e-12));
  EXPECT_NEAR(freqs[peak], f0, f0 * 0.1);
  EXPECT_GT(mag[peak], 20.0);  // high-Q peaking
}

TEST(Ac, VoltageDividerIsFrequencyFlat) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  auto& v = c.add<VoltageSource>("v", a, kGround, 0.0);
  v.setAcMagnitude(2.0);
  c.add<Resistor>("r1", a, b, 1000.0);
  c.add<Resistor>("r2", b, kGround, 1000.0);
  Simulator sim(c);
  const AcResult res = sim.ac(1e3, 1e9, 5);
  for (double m : res.magnitude("b")) EXPECT_NEAR(m, 1.0, 1e-9);
}

TEST(Ac, InverterSmallSignalGainAtMidrail) {
  // Bias an inverter near its switching threshold: the small-signal
  // gain |vout/vin| must exceed the large-signal regenerative gain
  // floor at low frequency and roll off at high frequency.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  const NodeId in = c.node("in");
  const NodeId out = c.node("out");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  auto& vin = c.add<VoltageSource>("vin", in, kGround, 0.58);
  vin.setAcMagnitude(1.0);
  buildInverter(c, "x", in, out, vdd);
  c.add<Capacitor>("cl", out, kGround, 10e-15);
  Simulator sim(c);
  const AcResult res = sim.ac(1e6, 1e12, 8);
  const auto mag = res.magnitude("out");
  EXPECT_GT(mag.front(), 3.0);            // low-frequency gain
  EXPECT_LT(mag.back(), mag.front() / 10.0);  // rolled off
  const auto corner = res.cornerFrequency("out");
  ASSERT_TRUE(corner);
  EXPECT_GT(*corner, 1e8);   // gm/C in a plausible band
  EXPECT_LT(*corner, 1e11);
}

TEST(Ac, QuietSupplyContributesNothing) {
  // No AC magnitude set anywhere: response is identically zero.
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 100.0);
  Simulator sim(c);
  const AcResult res = sim.ac(1e6, 1e8, 3);
  for (double m : res.magnitude("a")) EXPECT_NEAR(m, 0.0, 1e-15);
}

TEST(Ac, MosfetCapacitancesLoadTheDriver) {
  // A source driving only a MOSFET gate through a resistor sees an RC
  // corner set by the (nonzero) gate capacitance.
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId g = c.node("g");
  auto& v = c.add<VoltageSource>("v", a, kGround, 0.6);
  v.setAcMagnitude(1.0);
  c.add<Resistor>("r", a, g, 1e5);
  MosGeometry geom;
  geom.w = 2e-6;
  geom.l = 1e-6;
  c.add<Mosfet>("m", kGround, g, kGround, kGround, nmos90(), geom);
  Simulator sim(c);
  const AcResult res = sim.ac(1e4, 1e12, 6);
  const auto corner = res.cornerFrequency("g");
  ASSERT_TRUE(corner);
  // Gate cap ~ Cox*W*L ~ 34 fF -> corner ~ 1/(2 pi * 1e5 * 34f) ~ 47 MHz.
  EXPECT_GT(*corner, 5e6);
  EXPECT_LT(*corner, 5e8);
}

}  // namespace
}  // namespace vls
