#include <gtest/gtest.h>

#include <cmath>

#include "cells/gates.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "numeric/interpolation.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(Transient, BadArgumentsThrow) {
  Circuit c;
  c.add<Resistor>("r", c.node("a"), kGround, 1.0);
  Simulator sim(c);
  EXPECT_THROW(sim.transient(0.0, 1e-12), InvalidInputError);
  EXPECT_THROW(sim.transient(1e-9, 0.0), InvalidInputError);
}

TEST(Transient, StartsFromOperatingPoint) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  c.add<VoltageSource>("v", a, kGround, 2.0);
  c.add<Resistor>("r1", a, b, 1000.0);
  c.add<Resistor>("r2", b, kGround, 1000.0);
  c.add<Capacitor>("cb", b, kGround, 1e-12);
  Simulator sim(c);
  const auto tr = sim.transient(1e-9, 1e-11);
  // DC start: no transient on a settled node.
  const Signal vb = tr.node("b");
  for (size_t i = 0; i < vb.value.size(); ++i) EXPECT_NEAR(vb.value[i], 1.0, 1e-6);
}

TEST(Transient, TimeAxisIsStrictlyIncreasingAndHitsStop) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<VoltageSource>("v", a, kGround, 1.0);
  c.add<Resistor>("r", a, kGround, 100.0);
  Simulator sim(c);
  const auto tr = sim.transient(1e-9, 1e-10);
  const auto& t = tr.time();
  ASSERT_GE(t.size(), 2u);
  EXPECT_DOUBLE_EQ(t.front(), 0.0);
  EXPECT_NEAR(t.back(), 1e-9, 1e-15);
  for (size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i], t[i - 1]);
}

TEST(Transient, AdaptiveStepsRefineAtEdges) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.delay = 5e-9;
  p.rise = p.fall = 1e-11;
  p.width = 2e-9;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("cb", b, kGround, 1e-13);
  Simulator sim(c);
  const auto tr = sim.transient(10e-9, 5e-10);
  // Count samples in the quiet first 4 ns vs the busy 5-6 ns window.
  size_t quiet = 0;
  size_t busy = 0;
  for (double t : tr.time()) {
    if (t < 4e-9) ++quiet;
    if (t >= 5e-9 && t < 6e-9) ++busy;
  }
  EXPECT_GT(busy, quiet / 2);  // denser sampling around the edge
}

TEST(Transient, RcMatchesAnalyticClosely) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.rise = p.fall = 1e-14;
  p.width = 1e-6;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, b, 1000.0);
  c.add<Capacitor>("cb", b, kGround, 1e-12);
  Simulator sim(c);
  const auto tr = sim.transient(6e-9, 3e-11);
  const Signal vb = tr.node("b");
  double max_err = 0.0;
  for (size_t i = 0; i < vb.time.size(); ++i) {
    const double expect = 1.0 - std::exp(-vb.time[i] / 1e-9);
    max_err = std::max(max_err, std::fabs(vb.value[i] - expect));
  }
  EXPECT_LT(max_err, 5e-3);
}

TEST(Transient, CapacitorChargeConservationOnChain) {
  // Charge delivered by the source equals the charge stored on the
  // capacitors at the end (series R only dissipates energy, not charge).
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  const NodeId d = c.node("d");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.rise = p.fall = 1e-13;
  p.width = 1e-6;
  auto& v = c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r1", a, b, 100.0);
  c.add<Capacitor>("c1", b, kGround, 1e-12);
  c.add<Resistor>("r2", b, d, 100.0);
  c.add<Capacitor>("c2", d, kGround, 2e-12);
  Simulator sim(c);
  const auto tr = sim.transient(5e-9, 2e-11);

  // Integrate source current.
  Signal i = tr.unknown(v.branchIndex());
  for (double& s : i.value) s = -s;
  const double q_delivered = integrateTrapezoid(i.time, i.value, 0.0, 5e-9);
  const double vb = tr.node("b").value.back();
  const double vd = tr.node("d").value.back();
  const double q_stored = 1e-12 * vb + 2e-12 * vd;
  EXPECT_NEAR(q_delivered, q_stored, q_stored * 0.02);
}

TEST(Transient, InverterRingOscillatorOscillates) {
  // 3-stage ring: self-sustained oscillation is a strong end-to-end
  // check of MOSFET caps + transient control.
  Circuit c;
  const NodeId vdd = c.node("vdd");
  c.add<VoltageSource>("vdd", vdd, kGround, 1.2);
  const NodeId n0 = c.node("n0");
  const NodeId n1 = c.node("n1");
  const NodeId n2 = c.node("n2");
  buildInverter(c, "i0", n0, n1, vdd);
  buildInverter(c, "i1", n1, n2, vdd);
  buildInverter(c, "i2", n2, n0, vdd);
  // Kick it out of the metastable OP.
  c.add<CurrentSource>("kick", kGround, n0,
                       Waveform::pwl({0.0, 1e-11, 2e-11}, {0.0, 50e-6, 0.0}));
  Simulator sim(c);
  const auto tr = sim.transient(3e-9, 2e-11);
  const Signal v0 = tr.node("n0");
  const auto crossings = allCrossings(v0.time, v0.value, 0.6, CrossDir::Rising, 0.3e-9);
  EXPECT_GE(crossings.size(), 3u) << "ring did not oscillate";
  if (crossings.size() >= 3) {
    const double period = crossings[2] - crossings[1];
    // 3-stage minimal-inverter ring at 1.2 V, 90 nm class: tens of ps.
    EXPECT_GT(period, 10e-12);
    EXPECT_LT(period, 500e-12);
  }
}

TEST(Transient, DiagnosticsAreTracked) {
  Circuit c;
  const NodeId a = c.node("a");
  PulseSpec p;
  p.v1 = 0;
  p.v2 = 1;
  p.rise = p.fall = 1e-12;
  p.width = 1e-10;
  c.add<VoltageSource>("v", a, kGround, Waveform::pulse(p));
  c.add<Resistor>("r", a, kGround, 100.0);
  Simulator sim(c);
  const auto tr = sim.transient(1e-9, 1e-10);
  EXPECT_GT(tr.total_newton_iterations, tr.steps());
}

}  // namespace
}  // namespace vls
