// SPICE-style device bypass (SimOptions::enable_bypass): transient
// waveforms with bypass enabled must track the non-bypass solution
// within the LTE tolerance, and the paper's characterization delays
// must be unchanged. Bypass is opt-in and off by default.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "analysis/shifter_harness.hpp"
#include "cells/sstvs.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TransientResult runSstvsTransient(bool bypass) {
  Circuit c;
  const NodeId vddo = c.node("vddo");
  const NodeId in = c.node("in");
  c.add<VoltageSource>("vo", vddo, kGround, 1.2);
  PulseSpec p;
  p.v1 = 0.8;
  p.v2 = 0.0;
  p.delay = 0.2e-9;
  p.rise = p.fall = 20e-12;
  p.width = 0.4e-9;
  c.add<VoltageSource>("vin", in, kGround, Waveform::pulse(p));
  buildSstvs(c, "x", in, c.node("out"), vddo, {});
  c.add<Capacitor>("cl", c.node("out"), kGround, 1e-15);
  SimOptions opt;
  opt.enable_bypass = bypass;
  Simulator sim(c, opt);
  return sim.transient(1e-9, 20e-12);
}

double interpolate(const Signal& s, double t) {
  const auto it = std::lower_bound(s.time.begin(), s.time.end(), t);
  if (it == s.time.begin()) return s.value.front();
  if (it == s.time.end()) return s.value.back();
  const size_t hi = static_cast<size_t>(it - s.time.begin());
  const size_t lo = hi - 1;
  const double w = (t - s.time[lo]) / (s.time[hi] - s.time[lo]);
  return s.value[lo] + w * (s.value[hi] - s.value[lo]);
}

TEST(Bypass, OffByDefault) {
  EXPECT_FALSE(SimOptions{}.enable_bypass);
}

TEST(Bypass, TransientWaveformMatchesReference) {
  const TransientResult ref = runSstvsTransient(false);
  const TransientResult byp = runSstvsTransient(true);
  const Signal a = ref.node("out");
  const Signal b = byp.node("out");
  ASSERT_GT(a.time.size(), 2u);
  ASSERT_GT(b.time.size(), 2u);

  // Compare on a uniform grid. Both runs take independent adaptive
  // step sequences, so on fast edges allow the LTE band to scale with
  // the local slew (a sub-picosecond step placement difference is not
  // a solution difference); on flat regions the bound stays tight.
  const SimOptions opt;
  const double swing = 1.2;
  const double t_end = std::min(a.time.back(), b.time.back());
  const double grid_dt = 1e-12;
  double worst_margin = 0.0;
  for (double t = 0.0; t <= t_end; t += grid_dt) {
    const double va = interpolate(a, t);
    const double vb = interpolate(b, t);
    const double slope =
        std::fabs(interpolate(a, t + grid_dt) - interpolate(a, std::max(0.0, t - grid_dt))) /
        (2.0 * grid_dt);
    const double tol = opt.tran_reltol * swing + opt.tran_vntol + slope * 2e-12;
    worst_margin = std::max(worst_margin, std::fabs(va - vb) - tol);
  }
  EXPECT_LE(worst_margin, 0.0) << "bypass waveform drifted past the LTE band";
}

TEST(Bypass, CharacterizationDelaysUnchanged) {
  HarnessConfig off;
  off.kind = ShifterKind::Sstvs;
  HarnessConfig on = off;
  on.sim.enable_bypass = true;

  const ShifterMetrics m_off = measureShifter(off);
  const ShifterMetrics m_on = measureShifter(on);
  EXPECT_TRUE(m_off.functional);
  EXPECT_TRUE(m_on.functional);

  // Table-1/Table-2 delays are quoted at picosecond resolution; bypass
  // must not move them beyond measurement noise.
  const double tol_rise = 0.01 * m_off.delay_rise + 0.5e-12;
  const double tol_fall = 0.01 * m_off.delay_fall + 0.5e-12;
  EXPECT_NEAR(m_on.delay_rise, m_off.delay_rise, tol_rise);
  EXPECT_NEAR(m_on.delay_fall, m_off.delay_fall, tol_fall);
}

}  // namespace
}  // namespace vls
