// Stamp-tape assembly engine: replayed assembly must be bit-identical
// to hashed assembly in every analysis context, tapes must invalidate
// on topology changes, stale tapes must be detected rather than
// silently misapplied, and bypass must reproduce a full evaluation at
// an unchanged linearization point exactly.
#include "circuit/assembly.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "base/error.hpp"
#include "cells/sstvs.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"

namespace vls {
namespace {

/// SS-TVS cell plus passives and an inductor branch: exercises every
/// Stamper entry point (conductance, current source, transconductance
/// via the MOSFET Jacobian rows, voltage branch, raw matrix/RHS).
struct AssemblyFixture {
  Circuit c;
  size_t branches = 0;
  std::vector<double> x;
  NodeId out = kGround;

  AssemblyFixture() {
    const NodeId vddo = c.node("vddo");
    const NodeId in = c.node("in");
    out = c.node("out");
    c.add<VoltageSource>("vo", vddo, kGround, 1.2);
    c.add<VoltageSource>("vin", in, kGround, 0.8);
    buildSstvs(c, "x", in, out, vddo, {});
    c.add<Resistor>("rl", out, kGround, 1e6);
    c.add<Capacitor>("cl", out, kGround, 1e-15);
    const NodeId lout = c.node("lout");
    c.add<Inductor>("lw", out, lout, 1e-9);
    c.add<Resistor>("rlout", lout, kGround, 1e3);
    branches = c.assignBranchIndices();
    x.resize(c.nodeCount() + branches);
    for (size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.1 * static_cast<double>(i % 13);  // plausible, nonzero, deterministic
    }
  }

  EvalContext ctx(IntegrationMethod method = IntegrationMethod::None, double dt = 0.0,
                  double gmin = 1e-12, double source_scale = 1.0) const {
    EvalContext e;
    e.x = x;
    e.method = method;
    e.dt = dt;
    e.gmin = gmin;
    e.source_scale = source_scale;
    return e;
  }

  MnaSystem system() const { return MnaSystem(c.nodeCount(), branches); }
};

/// Exact (bitwise) equality of two assembled systems. Dense comparison
/// makes the check independent of pattern insertion order.
void expectIdentical(const MnaSystem& actual, const MnaSystem& expected, const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  const auto da = actual.matrix().toDense();
  const auto de = expected.matrix().toDense();
  for (size_t i = 0; i < da.size(); ++i) {
    for (size_t j = 0; j < da[i].size(); ++j) {
      EXPECT_EQ(da[i][j], de[i][j]) << label << ": matrix (" << i << ", " << j << ")";
    }
  }
  for (size_t i = 0; i < actual.rhs().size(); ++i) {
    EXPECT_EQ(actual.rhs()[i], expected.rhs()[i]) << label << ": rhs " << i;
  }
}

TEST(AssemblyTape, ReplayBitIdenticalAcrossContexts) {
  AssemblyFixture f;
  // Transient contexts need committed integration state.
  {
    const EvalContext tctx = f.ctx(IntegrationMethod::Trapezoidal, 1e-12);
    for (const auto& dev : f.c.devices()) dev->startTransient(tctx);
  }

  struct Case {
    const char* label;
    EvalContext ctx;
  };
  const Case cases[] = {
      {"op", f.ctx()},
      {"gmin step 1e-2", f.ctx(IntegrationMethod::None, 0.0, 1e-2)},
      {"gmin step 1e-3", f.ctx(IntegrationMethod::None, 0.0, 1e-3)},
      {"source step 0.5", f.ctx(IntegrationMethod::None, 0.0, 1e-12, 0.5)},
      {"tran trapezoidal", f.ctx(IntegrationMethod::Trapezoidal, 1e-12)},
      {"tran backward euler", f.ctx(IntegrationMethod::BackwardEuler, 2e-12)},
  };

  MnaSystem reference = f.system();
  MnaSystem tape_sys = f.system();
  Assembler assembler;
  for (const Case& kase : cases) {
    assembleDirect(reference, f.c, kase.ctx);
    // First call per analysis mode records, every later call replays;
    // both must match hashed assembly exactly.
    assembler.assemble(tape_sys, f.c, kase.ctx);
    expectIdentical(tape_sys, reference, kase.label);
    assembler.assemble(tape_sys, f.c, kase.ctx);
    expectIdentical(tape_sys, reference, kase.label);
  }
  // One tape per analysis mode: DC and transient.
  EXPECT_EQ(assembler.recordings(), 2u);
  EXPECT_EQ(assembler.replays(), 10u);
}

TEST(AssemblyTape, InvalidatedWhenDeviceAdded) {
  AssemblyFixture f;
  const EvalContext ctx = f.ctx();
  MnaSystem sys = f.system();
  Assembler assembler;
  assembler.assemble(sys, f.c, ctx);
  assembler.assemble(sys, f.c, ctx);
  ASSERT_EQ(assembler.recordings(), 1u);

  // Topology change between existing nodes: the revision bump must
  // force a re-record, and the result must match hashed assembly.
  f.c.add<Resistor>("rx", f.out, kGround, 2e6);
  assembler.assemble(sys, f.c, ctx);
  EXPECT_EQ(assembler.recordings(), 2u);
  MnaSystem reference = f.system();
  assembleDirect(reference, f.c, ctx);
  expectIdentical(sys, reference, "after adding device");
}

TEST(AssemblyTape, InvalidatedWhenBranchesReassigned) {
  AssemblyFixture f;
  const EvalContext ctx = f.ctx();
  MnaSystem sys = f.system();
  Assembler assembler;
  assembler.assemble(sys, f.c, ctx);
  ASSERT_EQ(assembler.recordings(), 1u);

  f.c.assignBranchIndices();
  assembler.assemble(sys, f.c, ctx);
  EXPECT_EQ(assembler.recordings(), 2u);
}

TEST(AssemblyTape, InvalidatedAcrossSystems) {
  AssemblyFixture f;
  const EvalContext ctx = f.ctx();
  MnaSystem sys_a = f.system();
  MnaSystem sys_b = f.system();
  Assembler assembler;
  assembler.assemble(sys_a, f.c, ctx);
  // A different target system has its own handle space: the tape must
  // not replay handles recorded against another matrix.
  assembler.assemble(sys_b, f.c, ctx);
  EXPECT_EQ(assembler.recordings(), 2u);
}

/// A device whose stamp sequence can be mutated without a topology
/// revision bump — illegal, and the engine must detect it.
class TogglingDevice : public Device {
 public:
  TogglingDevice(std::string name, NodeId a) : Device(std::move(name)), a_(a) {}
  void stamp(Stamper& stamper, const EvalContext&) override {
    stamper.currentSource(kGround, a_, 1e-6);
    if (extra) stamper.conductance(a_, kGround, 1e-6);
  }
  size_t terminalCount() const override { return 1; }
  NodeId terminalNode(size_t) const override { return a_; }

  bool extra = false;

 private:
  NodeId a_;
};

TEST(AssemblyTape, StaleStampSequenceDetected) {
  Circuit c;
  const NodeId n0 = c.node("n0");
  TogglingDevice& toggle = c.add<TogglingDevice>("tg", n0);
  c.add<Resistor>("r0", n0, kGround, 1e3);
  const size_t branches = c.assignBranchIndices();
  std::vector<double> x(c.nodeCount() + branches, 0.0);
  EvalContext ctx;
  ctx.x = x;

  MnaSystem sys(c.nodeCount(), branches);
  Assembler assembler;
  assembler.assemble(sys, c, ctx);
  toggle.extra = true;  // changes the stamp sequence, no revision bump
  EXPECT_THROW(assembler.assemble(sys, c, ctx), Error);
}

TEST(AssemblyBypass, ReplaysExactValuesAtUnchangedPoint) {
  AssemblyFixture f;
  const EvalContext tctx = f.ctx(IntegrationMethod::Trapezoidal, 1e-12);
  for (const auto& dev : f.c.devices()) dev->startTransient(tctx);

  MnaSystem reference = f.system();
  assembleDirect(reference, f.c, tctx);

  MnaSystem sys = f.system();
  Assembler assembler;
  AssemblyOptions opts;
  opts.enable_bypass = true;
  opts.allow_bypass_now = true;
  assembler.assemble(sys, f.c, tctx, opts);  // records
  assembler.assemble(sys, f.c, tctx, opts);  // replays, bypass engages
  EXPECT_GT(assembler.bypassedEvaluations(), 0u);
  expectIdentical(sys, reference, "bypassed assembly at unchanged x");
}

TEST(AssemblyBypass, MovedVoltagesForceReevaluation) {
  AssemblyFixture f;
  const EvalContext tctx = f.ctx(IntegrationMethod::Trapezoidal, 1e-12);
  for (const auto& dev : f.c.devices()) dev->startTransient(tctx);

  MnaSystem sys = f.system();
  Assembler assembler;
  AssemblyOptions opts;
  opts.enable_bypass = true;
  opts.allow_bypass_now = true;
  assembler.assemble(sys, f.c, tctx, opts);

  // Move every node voltage well past bypass_tol: no device may be
  // bypassed and the result must match hashed assembly at the new x.
  std::vector<double> moved = f.x;
  for (double& v : moved) v += 0.01;
  EvalContext mctx = tctx;
  mctx.x = moved;
  assembler.assemble(sys, f.c, mctx, opts);
  EXPECT_EQ(assembler.bypassedEvaluations(), 0u);

  MnaSystem reference = f.system();
  assembleDirect(reference, f.c, mctx);
  expectIdentical(sys, reference, "moved voltages");
}

}  // namespace
}  // namespace vls
