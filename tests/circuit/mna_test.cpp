#include "circuit/mna.hpp"

#include <gtest/gtest.h>

#include "circuit/device.hpp"
#include "numeric/lu_sparse.hpp"

namespace vls {
namespace {

TEST(Mna, ConductanceStampPattern) {
  MnaSystem sys(2, 0);
  Stamper st(sys);
  st.conductance(0, 1, 0.5);
  const auto d = sys.matrix().toDense();
  EXPECT_DOUBLE_EQ(d[0][0], 0.5);
  EXPECT_DOUBLE_EQ(d[1][1], 0.5);
  EXPECT_DOUBLE_EQ(d[0][1], -0.5);
  EXPECT_DOUBLE_EQ(d[1][0], -0.5);
}

TEST(Mna, GroundEntriesDropped) {
  MnaSystem sys(1, 0);
  Stamper st(sys);
  st.conductance(0, kGround, 2.0);
  st.currentSource(kGround, 0, 1.0);  // 1 A into node 0
  const auto d = sys.matrix().toDense();
  EXPECT_DOUBLE_EQ(d[0][0], 2.0);
  EXPECT_DOUBLE_EQ(sys.rhs()[0], 1.0);
  // Solve: v = i/g.
  const auto x = SparseLu(sys.matrix()).solve(sys.rhs());
  EXPECT_NEAR(x[0], 0.5, 1e-14);
}

TEST(Mna, CurrentSourceSigns) {
  MnaSystem sys(2, 0);
  Stamper st(sys);
  st.currentSource(0, 1, 2.0);  // 2 A flows 0 -> 1 through the element
  EXPECT_DOUBLE_EQ(sys.rhs()[0], -2.0);
  EXPECT_DOUBLE_EQ(sys.rhs()[1], 2.0);
}

TEST(Mna, VoltageBranchSolvesDivider) {
  // v1 = 2 V across node0; R from node0 to node1; R from node1 to gnd.
  MnaSystem sys(2, 1);
  Stamper st(sys);
  st.conductance(0, 1, 1.0);
  st.conductance(1, kGround, 1.0);
  st.voltageBranch(2, 0, kGround, 2.0);
  const auto x = SparseLu(sys.matrix()).solve(sys.rhs());
  EXPECT_NEAR(x[0], 2.0, 1e-12);
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  // Branch current: source delivers 1 A, so current into + is -1.
  EXPECT_NEAR(x[2], -1.0, 1e-12);
}

TEST(Mna, TransconductanceStamp) {
  MnaSystem sys(3, 0);
  Stamper st(sys);
  st.transconductance(0, 1, 2, kGround, 0.1);
  const auto d = sys.matrix().toDense();
  EXPECT_DOUBLE_EQ(d[0][2], 0.1);
  EXPECT_DOUBLE_EQ(d[1][2], -0.1);
}

TEST(Mna, ClearPreservesPattern) {
  MnaSystem sys(2, 0);
  Stamper st(sys);
  st.conductance(0, 1, 1.0);
  const size_t nnz = sys.matrix().nonZeros();
  sys.clear();
  EXPECT_EQ(sys.matrix().nonZeros(), nnz);
  EXPECT_DOUBLE_EQ(sys.rhs()[0], 0.0);
}

TEST(ChargeCompanion, BackwardEuler) {
  ChargeHistory h{1.0e-15, 0.0};  // 1 fC stored
  const auto comp = integrateCharge(IntegrationMethod::BackwardEuler, 1e-12, 2.0e-15, 1e-15, h);
  EXPECT_NEAR(comp.geq, 1e-3, 1e-15);             // C/dt
  EXPECT_NEAR(comp.i_now, 1e-3, 1e-15);           // dq/dt
}

TEST(ChargeCompanion, Trapezoidal) {
  ChargeHistory h{1.0e-15, 0.5e-3};
  const auto comp = integrateCharge(IntegrationMethod::Trapezoidal, 1e-12, 2.0e-15, 1e-15, h);
  EXPECT_NEAR(comp.geq, 2e-3, 1e-15);
  EXPECT_NEAR(comp.i_now, 2.0 * 1e-3 - 0.5e-3, 1e-15);
}

TEST(ChargeCompanion, DcIsOpen) {
  ChargeHistory h{};
  const auto comp = integrateCharge(IntegrationMethod::None, 0.0, 5.0, 1.0, h);
  EXPECT_DOUBLE_EQ(comp.geq, 0.0);
  EXPECT_DOUBLE_EQ(comp.i_now, 0.0);
}

}  // namespace
}  // namespace vls
