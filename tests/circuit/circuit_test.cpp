#include "circuit/circuit.hpp"

#include <gtest/gtest.h>

#include "devices/passive.hpp"
#include "devices/sources.hpp"

namespace vls {
namespace {

TEST(Circuit, NodeCreationAndLookup) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  EXPECT_NE(a, b);
  EXPECT_EQ(c.node("a"), a);  // idempotent
  EXPECT_EQ(c.nodeCount(), 2u);
  EXPECT_EQ(c.nodeName(a), "a");
  ASSERT_TRUE(c.findNode("b").has_value());
  EXPECT_EQ(*c.findNode("b"), b);
  EXPECT_FALSE(c.findNode("zzz").has_value());
}

TEST(Circuit, GroundAliases) {
  Circuit c;
  EXPECT_EQ(c.node("0"), kGround);
  EXPECT_EQ(c.node("gnd"), kGround);
  EXPECT_EQ(c.node("GND"), kGround);
  EXPECT_EQ(c.nodeCount(), 0u);
  EXPECT_EQ(c.nodeName(kGround), "0");
  EXPECT_TRUE(isGround(kGround));
  EXPECT_FALSE(isGround(c.node("x")));
}

TEST(Circuit, DeviceOwnershipAndLookup) {
  Circuit c;
  const NodeId a = c.node("a");
  auto& r = c.add<Resistor>("r1", a, kGround, 100.0);
  EXPECT_EQ(c.findDevice("r1"), &r);
  EXPECT_EQ(c.findDevice("nope"), nullptr);
  EXPECT_EQ(c.devices().size(), 1u);
}

TEST(Circuit, DuplicateDeviceNameRejected) {
  Circuit c;
  const NodeId a = c.node("a");
  c.add<Resistor>("r1", a, kGround, 100.0);
  EXPECT_THROW(c.add<Resistor>("r1", a, kGround, 200.0), InvalidInputError);
}

TEST(Circuit, BranchIndexAssignment) {
  Circuit c;
  const NodeId a = c.node("a");
  const NodeId b = c.node("b");
  auto& v1 = c.add<VoltageSource>("v1", a, kGround, 1.0);
  c.add<Resistor>("r1", a, b, 100.0);
  auto& v2 = c.add<VoltageSource>("v2", b, kGround, 2.0);
  const size_t branches = c.assignBranchIndices();
  EXPECT_EQ(branches, 2u);
  // Branch unknowns follow the node unknowns in declaration order.
  EXPECT_EQ(v1.branchIndex(), c.nodeCount());
  EXPECT_EQ(v2.branchIndex(), c.nodeCount() + 1);
}

TEST(Circuit, NodeNamePreservedPerIndex) {
  Circuit c;
  c.node("x");
  c.node("y");
  c.node("z");
  const auto& names = c.nodeNames();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "x");
  EXPECT_EQ(names[2], "z");
}

}  // namespace
}  // namespace vls
