// Parallel sharded assembly: replayed sharded assembly must agree with
// hashed assembly (lane-kernel model evaluation differs from the
// scalar path at the ~1e-7 relative level, so agreement is near, not
// bitwise), and must be BIT-identical across worker counts, device-
// batch widths, and shard label sources. Bypass, stale-tape detection,
// and label validation carry over from the serial engine.
#include "circuit/assembly.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "base/error.hpp"
#include "cells/sstvs.hpp"
#include "circuit/circuit.hpp"
#include "devices/passive.hpp"
#include "devices/sources.hpp"

namespace vls {
namespace {

/// A row of SS-TVS cells on a shared vddo rail, one island label per
/// cell; the supplies carry label -1 (hash-distributed). Many same-card
/// MOSFETs per shard, so the device-batched path really engages.
struct ShardedFixture {
  Circuit c;
  size_t branches = 0;
  std::vector<double> x;
  std::shared_ptr<std::vector<int32_t>> labels = std::make_shared<std::vector<int32_t>>();
  int num_islands;

  explicit ShardedFixture(int islands = 4) : num_islands(islands) {
    const NodeId vddo = c.node("vddo");
    c.add<VoltageSource>("vo", vddo, kGround, 1.2);
    labels->push_back(-1);
    for (int k = 0; k < islands; ++k) {
      const std::string p = "i" + std::to_string(k);
      const NodeId in = c.node(p + "_in");
      const NodeId out = c.node(p + "_out");
      c.add<VoltageSource>("v" + p, in, kGround, 0.8);
      labels->push_back(-1);
      buildSstvs(c, p, in, out, vddo, {});
      c.add<Resistor>("r" + p, out, kGround, 1e6);
      c.add<Capacitor>("c" + p, out, kGround, 1e-15);
      labels->resize(c.devices().size(), k);
    }
    branches = c.assignBranchIndices();
    x.resize(c.nodeCount() + branches);
    for (size_t i = 0; i < x.size(); ++i) {
      x[i] = 0.1 * static_cast<double>(i % 13);
    }
  }

  EvalContext ctx(IntegrationMethod method = IntegrationMethod::None, double dt = 0.0,
                  double gmin = 1e-12, double source_scale = 1.0) const {
    EvalContext e;
    e.x = x;
    e.method = method;
    e.dt = dt;
    e.gmin = gmin;
    e.source_scale = source_scale;
    return e;
  }

  MnaSystem system() const { return MnaSystem(c.nodeCount(), branches); }

  ShardedAssemblyConfig config(int threads = 1, int width = 8) const {
    ShardedAssemblyConfig cfg;
    cfg.device_shard = labels;
    cfg.num_shards = num_islands;
    cfg.num_threads = threads;
    cfg.device_batch_width = width;
    return cfg;
  }
};

/// Exact (bitwise) equality of two assembled systems.
void expectIdentical(const MnaSystem& actual, const MnaSystem& expected, const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  const auto da = actual.matrix().toDense();
  const auto de = expected.matrix().toDense();
  for (size_t i = 0; i < da.size(); ++i) {
    for (size_t j = 0; j < da[i].size(); ++j) {
      EXPECT_EQ(da[i][j], de[i][j]) << label << ": matrix (" << i << ", " << j << ")";
    }
  }
  for (size_t i = 0; i < actual.rhs().size(); ++i) {
    EXPECT_EQ(actual.rhs()[i], expected.rhs()[i]) << label << ": rhs " << i;
  }
}

/// Near equality: lane-kernel (fastExp) vs scalar (std::exp) model
/// evaluation puts sharded replay within ~1e-7 relative of hashed
/// assembly, never bitwise.
void expectClose(const MnaSystem& actual, const MnaSystem& expected, const char* label) {
  ASSERT_EQ(actual.size(), expected.size()) << label;
  const auto da = actual.matrix().toDense();
  const auto de = expected.matrix().toDense();
  for (size_t i = 0; i < da.size(); ++i) {
    for (size_t j = 0; j < da[i].size(); ++j) {
      const double tol = 1e-9 + 1e-5 * std::fabs(de[i][j]);
      EXPECT_NEAR(da[i][j], de[i][j], tol) << label << ": matrix (" << i << ", " << j << ")";
    }
  }
  for (size_t i = 0; i < actual.rhs().size(); ++i) {
    const double tol = 1e-9 + 1e-5 * std::fabs(expected.rhs()[i]);
    EXPECT_NEAR(actual.rhs()[i], expected.rhs()[i], tol) << label << ": rhs " << i;
  }
}

TEST(ShardedAssembly, RecordMatchesDirectReplayMatchesClosely) {
  ShardedFixture f;
  {
    const EvalContext tctx = f.ctx(IntegrationMethod::Trapezoidal, 1e-12);
    for (const auto& dev : f.c.devices()) dev->startTransient(tctx);
  }
  struct Case {
    const char* label;
    EvalContext ctx;
  };
  const Case cases[] = {
      {"op", f.ctx()},
      {"gmin step", f.ctx(IntegrationMethod::None, 0.0, 1e-3)},
      {"source step", f.ctx(IntegrationMethod::None, 0.0, 1e-12, 0.5)},
      {"tran trapezoidal", f.ctx(IntegrationMethod::Trapezoidal, 1e-12)},
  };

  MnaSystem reference = f.system();
  MnaSystem sys = f.system();
  ShardedAssembler sharded(f.config());
  for (const Case& kase : cases) {
    assembleDirect(reference, f.c, kase.ctx);
    // The recording pass evaluates models scalar — bit-identical to
    // hashed assembly. Replays go through the lane kernels — close.
    sharded.assemble(sys, f.c, kase.ctx);
    if (sharded.replays() == 0) expectIdentical(sys, reference, kase.label);
    sharded.assemble(sys, f.c, kase.ctx);
    expectClose(sys, reference, kase.label);
  }
  EXPECT_EQ(sharded.recordings(), 2u);
  EXPECT_GT(sharded.replays(), 0u);
  EXPECT_GT(sharded.batchedEvaluations(), 0u);
  EXPECT_EQ(sharded.shardCount(), 4u);
}

TEST(ShardedAssembly, BitIdenticalAcrossThreadCounts) {
  ShardedFixture f;
  const EvalContext ctx = f.ctx();
  MnaSystem sys1 = f.system();
  MnaSystem sys4 = f.system();
  ShardedAssembler a1(f.config(/*threads=*/1));
  ShardedAssembler a4(f.config(/*threads=*/4));
  for (int pass = 0; pass < 3; ++pass) {
    a1.assemble(sys1, f.c, ctx);
    a4.assemble(sys4, f.c, ctx);
    expectIdentical(sys4, sys1, "threads 4 vs 1");
  }
}

TEST(ShardedAssembly, BitIdenticalAcrossBatchWidths) {
  ShardedFixture f;
  const EvalContext ctx = f.ctx();
  MnaSystem sys_w8 = f.system();
  MnaSystem sys_w1 = f.system();
  MnaSystem sys_w3 = f.system();
  ShardedAssembler w8(f.config(1, /*width=*/8));
  ShardedAssembler w1(f.config(1, /*width=*/1));
  ShardedAssembler w3(f.config(1, /*width=*/3));
  for (int pass = 0; pass < 2; ++pass) {
    w8.assemble(sys_w8, f.c, ctx);
    w1.assemble(sys_w1, f.c, ctx);
    w3.assemble(sys_w3, f.c, ctx);
  }
  // Width only chunks the batch; every width runs the same elementwise
  // lane kernels, so assembled values are bitwise invariant.
  expectIdentical(sys_w1, sys_w8, "width 1 vs 8");
  expectIdentical(sys_w3, sys_w8, "width 3 vs 8");
  EXPECT_GT(w1.batchedEvaluations(), 0u);
}

TEST(ShardedAssembly, BypassReplaysExactValues) {
  ShardedFixture f;
  const EvalContext tctx = f.ctx(IntegrationMethod::Trapezoidal, 1e-12);
  for (const auto& dev : f.c.devices()) dev->startTransient(tctx);

  AssemblyOptions settle;  // bypass enabled but gated off (settle iterations)
  settle.enable_bypass = true;
  AssemblyOptions opts = settle;
  opts.allow_bypass_now = true;
  MnaSystem sys = f.system();
  MnaSystem sys_reference = f.system();
  ShardedAssembler sharded(f.config());
  sharded.assemble(sys, f.c, tctx, settle);  // records (scalar values)
  sharded.assemble(sys, f.c, tctx, settle);  // replays, stores lane-kernel values
  sharded.assemble(sys, f.c, tctx, opts);    // replays, bypass engages
  EXPECT_GT(sharded.bypassedEvaluations(), 0u);

  // A fully bypassed replay re-applies the values the previous replay
  // stored — bitwise equal to a fresh assembler's replay at the same x.
  ShardedAssembler fresh(f.config());
  fresh.assemble(sys_reference, f.c, tctx);
  fresh.assemble(sys_reference, f.c, tctx);
  expectIdentical(sys, sys_reference, "bypassed replay at unchanged x");
}

TEST(ShardedAssembly, HashFallbackWithoutLabels) {
  ShardedFixture f;
  const EvalContext ctx = f.ctx();
  MnaSystem reference = f.system();
  assembleDirect(reference, f.c, ctx);

  ShardedAssemblyConfig cfg;  // no labels: hash-distributed shards
  cfg.num_threads = 2;
  MnaSystem sys = f.system();
  ShardedAssembler sharded(cfg);
  sharded.assemble(sys, f.c, ctx);
  sharded.assemble(sys, f.c, ctx);
  expectClose(sys, reference, "hash fallback");
  EXPECT_GE(sharded.shardCount(), 1u);
}

TEST(ShardedAssembly, ValidatesLabels) {
  ShardedFixture f;
  const EvalContext ctx = f.ctx();
  {
    ShardedAssemblyConfig cfg = f.config();
    auto short_labels = std::make_shared<std::vector<int32_t>>(3, 0);
    cfg.device_shard = short_labels;
    MnaSystem sys = f.system();
    ShardedAssembler sharded(cfg);
    EXPECT_THROW(sharded.assemble(sys, f.c, ctx), InvalidInputError);
  }
  {
    ShardedAssemblyConfig cfg = f.config();
    auto big_labels = std::make_shared<std::vector<int32_t>>(*f.labels);
    (*big_labels)[2] = 1000;  // >= num_shards
    cfg.device_shard = big_labels;
    MnaSystem sys = f.system();
    ShardedAssembler sharded(cfg);
    EXPECT_THROW(sharded.assemble(sys, f.c, ctx), InvalidInputError);
  }
}

/// A device whose stamp sequence can be mutated without a topology
/// revision bump — illegal, and the sharded engine must detect it too.
class TogglingDevice : public Device {
 public:
  TogglingDevice(std::string name, NodeId a) : Device(std::move(name)), a_(a) {}
  void stamp(Stamper& stamper, const EvalContext&) override {
    stamper.currentSource(kGround, a_, 1e-6);
    if (extra) stamper.conductance(a_, kGround, 1e-6);
  }
  size_t terminalCount() const override { return 1; }
  NodeId terminalNode(size_t) const override { return a_; }

  bool extra = false;

 private:
  NodeId a_;
};

TEST(ShardedAssembly, StaleStampSequenceDetected) {
  Circuit c;
  const NodeId n0 = c.node("n0");
  TogglingDevice& toggle = c.add<TogglingDevice>("tg", n0);
  c.add<Resistor>("r0", n0, kGround, 1e3);
  const size_t branches = c.assignBranchIndices();
  std::vector<double> x(c.nodeCount() + branches, 0.0);
  EvalContext ctx;
  ctx.x = x;

  MnaSystem sys(c.nodeCount(), branches);
  ShardedAssembler sharded;
  sharded.assemble(sys, c, ctx);
  toggle.extra = true;  // changes the stamp sequence, no revision bump
  EXPECT_THROW(sharded.assemble(sys, c, ctx), Error);
}

}  // namespace
}  // namespace vls
