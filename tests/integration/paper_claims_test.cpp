// End-to-end checks of the paper's headline claims (the "shape" of
// Tables 1 and 2). Absolute picoseconds/nanoamps are model-card
// dependent; these tests pin down orderings and coarse ratios, and
// EXPERIMENTS.md records the exact numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/shifter_harness.hpp"

namespace vls {
namespace {

struct Comparison {
  ShifterMetrics sstvs;
  ShifterMetrics combined;
};

Comparison compareAt(double vddi, double vddo) {
  HarnessConfig cfg;
  cfg.vddi = vddi;
  cfg.vddo = vddo;
  cfg.kind = ShifterKind::Sstvs;
  Comparison out;
  out.sstvs = measureShifterWorstCase(cfg);
  cfg.kind = ShifterKind::CombinedVs;
  out.combined = measureShifterWorstCase(cfg);
  return out;
}

class PaperTable : public ::testing::Test {
 protected:
  static const Comparison& lowToHigh() {
    static const Comparison c = compareAt(0.8, 1.2);
    return c;
  }
  static const Comparison& highToLow() {
    static const Comparison c = compareAt(1.2, 0.8);
    return c;
  }
};

TEST_F(PaperTable, BothCellsFunctionalBothDirections) {
  EXPECT_TRUE(lowToHigh().sstvs.functional);
  EXPECT_TRUE(lowToHigh().combined.functional);
  EXPECT_TRUE(highToLow().sstvs.functional);
  EXPECT_TRUE(highToLow().combined.functional);
}

TEST_F(PaperTable, Table1SstvsFasterRising) {
  // Paper: 5.5x faster rising output for 0.8 -> 1.2 V.
  EXPECT_GT(lowToHigh().combined.delay_rise, 1.5 * lowToHigh().sstvs.delay_rise);
}

TEST_F(PaperTable, Table1SstvsFasterFalling) {
  // Paper: 1.5x faster falling output.
  EXPECT_GT(lowToHigh().combined.delay_fall, 1.2 * lowToHigh().sstvs.delay_fall);
}

TEST_F(PaperTable, Table1SstvsMuchLowerLeakageOutputLow) {
  // Paper: 19.5x lower leakage with the output low (this is the state
  // where the combined VS's VDDI-high-on-VDDO-PMOS path burns).
  EXPECT_GT(lowToHigh().combined.leakage_low, 10.0 * lowToHigh().sstvs.leakage_low);
}

TEST_F(PaperTable, Table2SstvsNotSlowerRising) {
  // Paper: 1.3x faster rising for 1.2 -> 0.8 V.
  EXPECT_LE(highToLow().sstvs.delay_rise, 1.15 * highToLow().combined.delay_rise);
}

TEST_F(PaperTable, Table2SstvsFasterFalling) {
  // Paper: 2.2x faster falling.
  EXPECT_GT(highToLow().combined.delay_fall, 1.5 * highToLow().sstvs.delay_fall);
}

TEST_F(PaperTable, Table2SstvsLowerLeakageOutputLow) {
  // Paper: 9.3x lower leakage with the output low.
  EXPECT_GT(highToLow().combined.leakage_low, 5.0 * highToLow().sstvs.leakage_low);
}

TEST_F(PaperTable, SstvsLeakageOrderingMatchesPaper) {
  // Paper Tables 1/2 for the SS-TVS itself: leakage with output high
  // exceeds leakage with output low in both directions (20.8 > 3.6 nA
  // and 7.3 > 3.9 nA).
  EXPECT_GT(lowToHigh().sstvs.leakage_high, lowToHigh().sstvs.leakage_low);
  EXPECT_GT(highToLow().sstvs.leakage_high, highToLow().sstvs.leakage_low);
}

TEST_F(PaperTable, SstvsLeakageIsNanoampClass) {
  // All four SS-TVS leakage states are single/double-digit nA or below
  // (paper: 3.6 - 20.8 nA).
  for (double leak : {lowToHigh().sstvs.leakage_high, lowToHigh().sstvs.leakage_low,
                      highToLow().sstvs.leakage_high, highToLow().sstvs.leakage_low}) {
    EXPECT_LT(leak, 60e-9);
  }
}

TEST_F(PaperTable, DelaysAreTensOfPicoseconds) {
  // Same technology class as the paper (22 - 35 ps reported; our cards
  // land within a small multiple).
  for (double d : {lowToHigh().sstvs.delay_rise, lowToHigh().sstvs.delay_fall,
                   highToLow().sstvs.delay_rise, highToLow().sstvs.delay_fall}) {
    EXPECT_GT(d, 5e-12);
    EXPECT_LT(d, 300e-12);
  }
}

TEST_F(PaperTable, NoControlSignalNeededBySstvs) {
  // Structural claim: the SS-TVS testbench contains no sel/selb
  // sources, the combined VS one does.
  HarnessConfig cfg;
  cfg.kind = ShifterKind::Sstvs;
  ShifterTestbench tvs(cfg);
  EXPECT_EQ(tvs.circuit().findDevice("v_sel"), nullptr);
  cfg.kind = ShifterKind::CombinedVs;
  ShifterTestbench comb(cfg);
  EXPECT_NE(comb.circuit().findDevice("v_sel"), nullptr);
}

}  // namespace
}  // namespace vls
