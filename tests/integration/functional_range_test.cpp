// The paper's Section 4 range claims: correct conversion for all
// VDDI/VDDO combinations in [0.8, 1.4] V, at 27/60/90 C, and under
// Monte-Carlo process variation (100% yield).
#include <gtest/gtest.h>

#include "analysis/monte_carlo.hpp"
#include "analysis/sweep.hpp"

namespace vls {
namespace {

class TemperatureRange : public ::testing::TestWithParam<double> {};

TEST_P(TemperatureRange, FunctionalAcrossSupplies) {
  HarnessConfig base;
  base.kind = ShifterKind::Sstvs;
  base.temperature_c = GetParam();
  Sweep2dConfig cfg;
  cfg.v_min = 0.8;
  cfg.v_max = 1.4;
  cfg.step = 0.3;
  const Sweep2dResult r = sweepSupplies(base, cfg);
  EXPECT_EQ(r.functionalCount(), r.points.size()) << "T=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(PaperTemperatures, TemperatureRange, ::testing::Values(27.0, 60.0, 90.0));

TEST(MonteCarloYield, AllSamplesFunctionalBothDirections) {
  // Paper: "In all Monte Carlo simulations, our SS-TVS was able to
  // convert the voltage level correctly." Reduced sample count here;
  // bench_table3/4 run the full 1000.
  for (auto [vddi, vddo] : {std::pair{0.8, 1.2}, std::pair{1.2, 0.8}}) {
    HarnessConfig h;
    h.kind = ShifterKind::Sstvs;
    h.vddi = vddi;
    h.vddo = vddo;
    MonteCarloConfig mc;
    mc.samples = 25;
    mc.seed = 99;
    const MonteCarloResult r = runMonteCarlo(h, mc);
    EXPECT_EQ(r.functional_failures, 0) << vddi << "->" << vddo;
  }
}

TEST(MonteCarloSpread, SstvsTighterThanCombined) {
  // Paper Tables 3/4 report absolute standard deviations, and the
  // SS-TVS's are lower than the combined VS's for every metric. Check
  // the two delay sigmas and the output-low leakage sigma.
  HarnessConfig h;
  h.vddi = 0.8;
  h.vddo = 1.2;
  MonteCarloConfig mc;
  mc.samples = 30;
  mc.seed = 5;

  h.kind = ShifterKind::Sstvs;
  const MonteCarloResult tvs = runMonteCarlo(h, mc);
  h.kind = ShifterKind::CombinedVs;
  const MonteCarloResult comb = runMonteCarlo(h, mc);
  EXPECT_LT(tvs.delayRise().stddev, comb.delayRise().stddev);
  EXPECT_LT(tvs.delayFall().stddev, comb.delayFall().stddev);
  EXPECT_LT(tvs.leakageLow().stddev, comb.leakageLow().stddev);
}

TEST(EqualSupplies, DegeneratesToCleanBuffering) {
  // VDDI = VDDO must also work (a DVS crossover moment).
  for (double v : {0.8, 1.1, 1.4}) {
    HarnessConfig h;
    h.kind = ShifterKind::Sstvs;
    h.vddi = v;
    h.vddo = v;
    const ShifterMetrics m = measureShifter(h);
    EXPECT_TRUE(m.functional) << v;
  }
}

TEST(SmallDeltas, FiveMillivoltApart) {
  // The paper sweeps in 5 mV steps; check a pair of nearly-equal rails
  // on both sides.
  for (auto [vddi, vddo] : {std::pair{1.0, 1.005}, std::pair{1.005, 1.0}}) {
    HarnessConfig h;
    h.kind = ShifterKind::Sstvs;
    h.vddi = vddi;
    h.vddo = vddo;
    const ShifterMetrics m = measureShifter(h);
    EXPECT_TRUE(m.functional) << vddi << "->" << vddo;
  }
}

}  // namespace
}  // namespace vls
