// Cross-cell property sweeps: invariants that must hold for every
// shifter kind in its valid operating region, parameterized over
// (cell, direction).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/shifter_harness.hpp"
#include "io/netlist_writer.hpp"
#include "io/netlist_parser.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

struct CellDir {
  ShifterKind kind;
  double vddi;
  double vddo;
};

std::string caseName(const ::testing::TestParamInfo<CellDir>& info) {
  std::string name = shifterKindName(info.param.kind);
  for (char& ch : name) {
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  }
  return name + (info.param.vddi < info.param.vddo ? "_up" : "_down");
}

class ShifterProperty : public ::testing::TestWithParam<CellDir> {};

TEST_P(ShifterProperty, FunctionalInValidRegion) {
  HarnessConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.vddi = GetParam().vddi;
  cfg.vddo = GetParam().vddo;
  const ShifterMetrics m = measureShifter(cfg);
  EXPECT_TRUE(m.functional);
  EXPECT_GT(m.delay_rise, 0.0);
  EXPECT_GT(m.delay_fall, 0.0);
  EXPECT_GE(m.leakage_high, 0.0);
  EXPECT_GE(m.leakage_low, 0.0);
}

TEST_P(ShifterProperty, DelaysFiniteAndSubNanosecond) {
  HarnessConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.vddi = GetParam().vddi;
  cfg.vddo = GetParam().vddo;
  const ShifterMetrics m = measureShifter(cfg);
  EXPECT_LT(m.delay_rise, 1e-9);
  EXPECT_LT(m.delay_fall, 1e-9);
}

TEST_P(ShifterProperty, DeterministicRemeasurement) {
  HarnessConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.vddi = GetParam().vddi;
  cfg.vddo = GetParam().vddo;
  const ShifterMetrics a = measureShifter(cfg);
  const ShifterMetrics b = measureShifter(cfg);
  EXPECT_DOUBLE_EQ(a.delay_rise, b.delay_rise);
  EXPECT_DOUBLE_EQ(a.leakage_high, b.leakage_high);
}

TEST_P(ShifterProperty, SlowerEdgesOnlyStretchDelaysModerately) {
  // Doubling the input edge time must not break the cell and should not
  // scale the 50%-50% delay by more than the edge change itself.
  HarnessConfig fast;
  fast.kind = GetParam().kind;
  fast.vddi = GetParam().vddi;
  fast.vddo = GetParam().vddo;
  HarnessConfig slow = fast;
  slow.edge_time = fast.edge_time * 2.0;
  const ShifterMetrics mf = measureShifter(fast);
  const ShifterMetrics ms = measureShifter(slow);
  EXPECT_TRUE(ms.functional);
  EXPECT_LT(ms.delay_rise, mf.delay_rise + 2.0 * fast.edge_time);
}

TEST_P(ShifterProperty, TestbenchExportsToValidNetlist) {
  // The whole bench (DUT + driver + sources) must round-trip through
  // the netlist writer and parser into an equally solvable circuit.
  HarnessConfig cfg;
  cfg.kind = GetParam().kind;
  cfg.vddi = GetParam().vddi;
  cfg.vddo = GetParam().vddo;
  ShifterTestbench tb(cfg);
  const std::string deck = writeNetlist(tb.circuit(), "roundtrip");
  ParsedNetlist nl = parseNetlist(deck);
  EXPECT_EQ(nl.circuit.devices().size(), tb.circuit().devices().size());
  Simulator sim(nl.circuit);
  EXPECT_NO_THROW(sim.solveOp());
}

INSTANTIATE_TEST_SUITE_P(
    CellsAndDirections, ShifterProperty,
    ::testing::Values(CellDir{ShifterKind::Sstvs, 0.8, 1.2},
                      CellDir{ShifterKind::Sstvs, 1.2, 0.8},
                      CellDir{ShifterKind::CombinedVs, 0.8, 1.2},
                      CellDir{ShifterKind::CombinedVs, 1.2, 0.8},
                      CellDir{ShifterKind::SsvsKhan, 0.8, 1.2},
                      CellDir{ShifterKind::SsvsPuri, 0.8, 1.2},
                      CellDir{ShifterKind::Bootstrap, 0.8, 1.2},
                      CellDir{ShifterKind::InverterOnly, 1.2, 0.8}),
    caseName);

}  // namespace
}  // namespace vls
