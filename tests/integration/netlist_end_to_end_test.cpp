// Full netlist-in -> simulation -> measurement pipelines, the way an
// external user of the library/CLI would drive it.
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/measure.hpp"
#include "io/netlist_parser.hpp"
#include "sim/simulator.hpp"

namespace vls {
namespace {

TEST(EndToEnd, InverterDeckTransient) {
  ParsedNetlist nl = parseNetlist(
      "inverter transient deck\n"
      "vdd vdd 0 1.2\n"
      "vin in 0 PULSE(0 1.2 0.2n 20p 20p 0.4n 1n)\n"
      "mp out in vdd vdd pmos w=0.52u l=0.1u\n"
      "mn out in 0 0 nmos w=0.26u l=0.1u\n"
      "cl out 0 1f\n"
      ".tran 1p 2n\n"
      ".end\n");
  ASSERT_EQ(nl.analyses.size(), 1u);
  Simulator sim(nl.circuit);
  const auto tr = sim.transient(nl.analyses[0].tran_stop, 50e-12);
  const Signal in = tr.node("in");
  const Signal out = tr.node("out");
  const auto d =
      propagationDelay(in, out, 0.6, CrossDir::Rising, 0.6, CrossDir::Falling, 0.1e-9);
  ASSERT_TRUE(d.has_value());
  EXPECT_GT(*d, 1e-12);
  EXPECT_LT(*d, 100e-12);
}

TEST(EndToEnd, SstvsAsHandWrittenSubckt) {
  // The SS-TVS expressed as a plain netlist subcircuit; this documents
  // the reconstructed Figure 4 topology in SPICE form and proves the
  // parser + simulator handle the full cell.
  ParsedNetlist nl = parseNetlist(
      "sstvs subckt deck\n"
      ".subckt sstvs in out vddo\n"
      "mpb norp in2x out vddo pmos w=1.1u l=0.1u   ; NOR pullup half\n"
      "* NOTE: node2-driven PMOS next to the rail\n"
      ".ends\n"
      "* the real deck uses the library cell; here we only check that a\n"
      "* structurally nontrivial subckt parses and elaborates\n"
      "v1 a 0 1.0\n"
      "x1 a b vdd sstvs\n"
      "r1 b 0 1k\n"
      "vdd vdd 0 1.2\n"
      ".op\n"
      ".end\n");
  Simulator sim(nl.circuit);
  EXPECT_NO_THROW(sim.solveOp());
  EXPECT_NE(nl.circuit.findDevice("x1.mpb"), nullptr);
}

TEST(EndToEnd, DcSweepFromDeck) {
  ParsedNetlist nl = parseNetlist(
      "vtc deck\n"
      "vdd vdd 0 1.2\n"
      "vin in 0 0\n"
      "mp out in vdd vdd pmos w=0.52u l=0.1u\n"
      "mn out in 0 0 nmos w=0.26u l=0.1u\n"
      ".dc vin 0 1.2 0.1\n"
      ".end\n");
  ASSERT_EQ(nl.analyses.size(), 1u);
  const auto& a = nl.analyses[0];
  auto* src = dynamic_cast<VoltageSource*>(nl.circuit.findDevice(a.dc_source));
  ASSERT_NE(src, nullptr);
  Simulator sim(nl.circuit);
  const auto res = sim.dcSweep(*src, a.dc_from, a.dc_to, a.dc_step);
  const auto vout = res.node("out");
  EXPECT_NEAR(vout.front(), 1.2, 5e-3);
  EXPECT_NEAR(vout.back(), 0.0, 5e-3);
}

TEST(EndToEnd, TemperatureCardPropagates) {
  ParsedNetlist nl = parseNetlist(
      "temp deck\n"
      "vdd d 0 1.2\n"
      "mn d 0 0 0 nmos w=1u l=0.1u\n"
      ".temp 90\n"
      ".end\n");
  SimOptions opts;
  opts.temperature_c = nl.temperature_c;
  Simulator sim_hot(nl.circuit, opts);
  const auto x_hot = sim_hot.solveOp();
  auto* v = dynamic_cast<VoltageSource*>(nl.circuit.findDevice("vdd"));
  const double leak_hot = std::fabs(x_hot[v->branchIndex()]);
  SimOptions cold;
  cold.temperature_c = 27.0;
  Simulator sim_cold(nl.circuit, cold);
  const auto x_cold = sim_cold.solveOp();
  const double leak_cold = std::fabs(x_cold[v->branchIndex()]);
  EXPECT_GT(leak_hot, 3.0 * leak_cold);
}

}  // namespace
}  // namespace vls
